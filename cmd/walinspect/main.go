// Command walinspect dumps and validates a write-ahead-log image: it
// scans the frame stream (length + CRC32C framing, see internal/wal),
// reports the classification recovery would act on — last checkpoint,
// schemas in effect, redo commits, CSN high-water mark — and flags a
// torn or corrupt tail. With -repair it truncates the file to the valid
// prefix, exactly what engine recovery would do.
//
// The argument may be a single log file or a directory of wal.NNNN
// segments (the -wal-segment-size layout): a directory is validated as
// a segmented layout — contiguous indices, no corruption in sealed
// segments — and classified as the concatenated stream, with frames
// allowed to straddle segment boundaries.
//
// Usage:
//
//	walinspect run.wal            # summary + torn-tail verdict
//	walinspect -frames run.wal    # additionally dump every frame
//	walinspect -repair run.wal    # truncate a torn tail in place
//	walinspect waldir/            # segmented: validate + classify wal.NNNN files
//	walinspect -repair waldir/    # truncate the torn tail across segments
//
// Exit status is 1 on a torn tail left unrepaired, 2 on usage, I/O or
// segment-layout errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"sicost/internal/wal"
)

func main() {
	var (
		frames = flag.Bool("frames", false, "dump every decoded frame")
		repair = flag.Bool("repair", false, "truncate a torn tail in place")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: walinspect [-frames] [-repair] <logfile|segmentdir>")
		os.Exit(2)
	}
	path := flag.Arg(0)
	st, err := os.Stat(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "walinspect:", err)
		os.Exit(2)
	}
	if st.IsDir() {
		inspectSegments(path, *frames, *repair)
		return
	}
	b, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "walinspect:", err)
		os.Exit(2)
	}

	info := wal.Classify(b)
	fmt.Printf("%s: %d bytes, %d valid frames in %d bytes\n", path, len(b), info.Frames, info.ValidBytes)

	if *frames {
		dumpFrames(b)
	}

	printClassification(info)

	if info.TornBytes == 0 {
		fmt.Println("tail: clean")
		return
	}
	fmt.Printf("tail: TORN — %d bytes past offset %d do not decode\n", info.TornBytes, info.ValidBytes)
	if !*repair {
		fmt.Println("run with -repair to truncate to the valid prefix")
		os.Exit(1)
	}
	if err := os.WriteFile(path, b[:info.ValidBytes], 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "walinspect: repair:", err)
		os.Exit(2)
	}
	fmt.Printf("repaired: truncated to %d bytes\n", info.ValidBytes)
}

// printClassification prints the recovery-relevant view of a classified
// log: checkpoint, schemas, redo span and CSN high-water mark.
func printClassification(info *wal.RecoveryInfo) {
	if info.Checkpoint != nil {
		rows := 0
		for _, t := range info.Checkpoint.Tables {
			rows += len(t.Rows)
		}
		fmt.Printf("checkpoint: CSN %d, %d tables, %d rows\n", info.Checkpoint.CSN, len(info.Checkpoint.Tables), rows)
	} else {
		fmt.Println("checkpoint: none (recovery replays the full log)")
	}
	for _, s := range info.Schemas {
		fmt.Printf("schema: %s (%d columns, %d unique indexes)\n", s.Name, len(s.Columns), len(s.Unique))
	}
	if n := len(info.Commits); n > 0 {
		fmt.Printf("redo: %d commits, CSN %d..%d\n", n, info.Commits[0].CSN, info.Commits[n-1].CSN)
	} else {
		fmt.Println("redo: no commits beyond the checkpoint")
	}
	fmt.Printf("high-water CSN: %d\n", info.HighCSN)
}

// inspectSegments validates and classifies a directory of wal.NNNN
// segments: layout errors (index gaps, duplicates, corruption inside a
// sealed segment) are fatal; a torn tail in the LAST segment is the
// same repairable condition as in a flat log, truncated across
// segments with -repair.
func inspectSegments(dir string, frames, repair bool) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "walinspect:", err)
		os.Exit(2)
	}
	var segs []wal.SegmentData
	var total int
	for _, e := range entries {
		idx, ok := wal.ParseSegmentName(e.Name())
		if !ok {
			continue
		}
		b, err := os.ReadFile(dir + string(os.PathSeparator) + e.Name())
		if err != nil {
			fmt.Fprintln(os.Stderr, "walinspect:", err)
			os.Exit(2)
		}
		fmt.Printf("%s: %d bytes\n", e.Name(), len(b))
		segs = append(segs, wal.SegmentData{Index: idx, Data: b})
		total += len(b)
	}
	if len(segs) == 0 {
		fmt.Fprintf(os.Stderr, "walinspect: %s: no wal.NNNN segments\n", dir)
		os.Exit(2)
	}
	info, err := wal.ClassifySegments(segs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "walinspect:", err)
		os.Exit(2)
	}
	fmt.Printf("%s: %d segments, %d bytes, %d valid frames in %d bytes\n",
		dir, info.Segments, total, info.Frames, info.ValidBytes)
	if frames {
		var all []byte
		for _, s := range segs {
			all = append(all, s.Data...)
		}
		dumpFrames(all)
	}
	printClassification(info)

	if info.TornBytes == 0 {
		fmt.Println("tail: clean")
		return
	}
	fmt.Printf("tail: TORN — %d bytes past stream offset %d do not decode\n", info.TornBytes, info.ValidBytes)
	if !repair {
		fmt.Println("run with -repair to truncate to the valid prefix")
		os.Exit(1)
	}
	sl, err := wal.OpenSegmentLog(dir, 1<<30)
	if err != nil {
		fmt.Fprintln(os.Stderr, "walinspect: repair:", err)
		os.Exit(2)
	}
	if err := sl.TruncateTail(int64(info.ValidBytes)); err != nil {
		sl.Close()
		fmt.Fprintln(os.Stderr, "walinspect: repair:", err)
		os.Exit(2)
	}
	sl.Close()
	fmt.Printf("repaired: truncated to %d bytes\n", info.ValidBytes)
}

// dumpFrames walks the log and prints one line per decodable frame.
func dumpFrames(b []byte) {
	off := 0
	for i := 0; ; i++ {
		f, n, err := wal.DecodeFrameAt(b, off)
		if err != nil {
			return
		}
		switch {
		case f.Commit != nil:
			fmt.Printf("  [%d] @%d commit tx=%d csn=%d rows=%d (%d bytes)\n",
				i, off, f.Commit.TxID, f.Commit.CSN, len(f.Commit.Rows), n)
		case f.Checkpoint != nil:
			rows := 0
			for _, t := range f.Checkpoint.Tables {
				rows += len(t.Rows)
			}
			fmt.Printf("  [%d] @%d checkpoint csn=%d tables=%d rows=%d (%d bytes)\n",
				i, off, f.Checkpoint.CSN, len(f.Checkpoint.Tables), rows, n)
		case f.Schema != nil:
			fmt.Printf("  [%d] @%d schema %s (%d bytes)\n", i, off, f.Schema.Name, n)
		}
		off += n
	}
}

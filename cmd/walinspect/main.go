// Command walinspect dumps and validates a write-ahead-log image: it
// scans the frame stream (length + CRC32C framing, see internal/wal),
// reports the classification recovery would act on — last checkpoint,
// schemas in effect, redo commits, CSN high-water mark — and flags a
// torn or corrupt tail. With -repair it truncates the file to the valid
// prefix, exactly what engine recovery would do.
//
// The argument may be a single log file or a directory of wal.NNNN
// segments (the -wal-segment-size layout): a directory is validated as
// a segmented layout — contiguous indices, no corruption in sealed
// segments — and classified as the concatenated stream, with frames
// allowed to straddle segment boundaries.
//
// Fuzzy incremental checkpoints appear as delta-begin/delta-rows/
// delta-end frame triples; the classification reports the folded chain
// (root plus complete links) exactly as recovery would fold it. For
// point-in-time recovery over retired segments, -archive merges a
// directory of archived wal.NNNN segments in front of the live ones
// before validating and classifying the combined layout.
//
// Usage:
//
//	walinspect run.wal                  # summary + torn-tail verdict
//	walinspect -frames run.wal          # additionally dump every frame
//	walinspect -repair run.wal          # truncate a torn tail in place
//	walinspect waldir/                  # segmented: validate + classify wal.NNNN files
//	walinspect -repair waldir/          # truncate the torn tail across segments
//	walinspect -archive waldir/archive waldir/   # classify archived + live segments
//
// Exit status is 1 on a torn tail left unrepaired, 2 on usage, I/O or
// segment-layout errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"sicost/internal/wal"
)

func main() {
	var (
		frames  = flag.Bool("frames", false, "dump every decoded frame")
		repair  = flag.Bool("repair", false, "truncate a torn tail in place")
		archive = flag.String("archive", "", "directory of archived wal.NNNN segments to merge before the live ones (PITR)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: walinspect [-frames] [-repair] [-archive dir] <logfile|segmentdir>")
		os.Exit(2)
	}
	path := flag.Arg(0)
	st, err := os.Stat(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "walinspect:", err)
		os.Exit(2)
	}
	if st.IsDir() {
		if *repair && *archive != "" {
			fmt.Fprintln(os.Stderr, "walinspect: -repair cannot be combined with -archive (repair the live directory alone)")
			os.Exit(2)
		}
		inspectSegments(path, *archive, *frames, *repair)
		return
	}
	if *archive != "" {
		fmt.Fprintln(os.Stderr, "walinspect: -archive requires a segment directory argument")
		os.Exit(2)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "walinspect:", err)
		os.Exit(2)
	}

	info := wal.Classify(b)
	fmt.Printf("%s: %d bytes, %d valid frames in %d bytes\n", path, len(b), info.Frames, info.ValidBytes)

	if *frames {
		dumpFrames(b)
	}

	printClassification(info)

	if info.TornBytes == 0 {
		fmt.Println("tail: clean")
		return
	}
	fmt.Printf("tail: TORN — %d bytes past offset %d do not decode\n", info.TornBytes, info.ValidBytes)
	if !*repair {
		fmt.Println("run with -repair to truncate to the valid prefix")
		os.Exit(1)
	}
	if err := os.WriteFile(path, b[:info.ValidBytes], 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "walinspect: repair:", err)
		os.Exit(2)
	}
	fmt.Printf("repaired: truncated to %d bytes\n", info.ValidBytes)
}

// printClassification prints the recovery-relevant view of a classified
// log: checkpoint, schemas, redo span and CSN high-water mark.
func printClassification(info *wal.RecoveryInfo) {
	if info.Checkpoint != nil {
		rows := 0
		for _, t := range info.Checkpoint.Tables {
			rows += len(t.Rows)
		}
		if info.ChainLinks > 0 {
			fmt.Printf("checkpoint: CSN %d, %d tables, %d rows (folded from a chain of %d delta links)\n",
				info.Checkpoint.CSN, len(info.Checkpoint.Tables), rows, info.ChainLinks)
		} else {
			fmt.Printf("checkpoint: CSN %d, %d tables, %d rows\n", info.Checkpoint.CSN, len(info.Checkpoint.Tables), rows)
		}
	} else {
		fmt.Println("checkpoint: none (recovery replays the full log)")
	}
	for _, s := range info.Schemas {
		fmt.Printf("schema: %s (%d columns, %d unique indexes)\n", s.Name, len(s.Columns), len(s.Unique))
	}
	if n := len(info.Commits); n > 0 {
		fmt.Printf("redo: %d commits, CSN %d..%d\n", n, info.Commits[0].CSN, info.Commits[n-1].CSN)
	} else {
		fmt.Println("redo: no commits beyond the checkpoint")
	}
	fmt.Printf("high-water CSN: %d\n", info.HighCSN)
}

// inspectSegments validates and classifies a directory of wal.NNNN
// segments: layout errors (index gaps, duplicates, corruption inside a
// sealed segment) are fatal; a torn tail in the LAST segment is the
// same repairable condition as in a flat log, truncated across
// segments with -repair.
func inspectSegments(dir, archiveDir string, frames, repair bool) {
	segs, total := readSegments(dir)
	if archiveDir != "" {
		arch, atotal := readSegments(archiveDir)
		segs = append(arch, segs...)
		total += atotal
		sort.Slice(segs, func(i, j int) bool { return segs[i].Index < segs[j].Index })
	}
	if len(segs) == 0 {
		fmt.Fprintf(os.Stderr, "walinspect: %s: no wal.NNNN segments\n", dir)
		os.Exit(2)
	}
	info, err := wal.ClassifySegments(segs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "walinspect:", err)
		os.Exit(2)
	}
	fmt.Printf("%s: %d segments, %d bytes, %d valid frames in %d bytes\n",
		dir, info.Segments, total, info.Frames, info.ValidBytes)
	printSegmentSpans(segs)
	if frames {
		var all []byte
		for _, s := range segs {
			all = append(all, s.Data...)
		}
		dumpFrames(all)
	}
	printClassification(info)

	if info.TornBytes == 0 {
		fmt.Println("tail: clean")
		return
	}
	fmt.Printf("tail: TORN — %d bytes past stream offset %d do not decode\n", info.TornBytes, info.ValidBytes)
	if !repair {
		fmt.Println("run with -repair to truncate to the valid prefix")
		os.Exit(1)
	}
	sl, err := wal.OpenSegmentLog(dir, 1<<30)
	if err != nil {
		fmt.Fprintln(os.Stderr, "walinspect: repair:", err)
		os.Exit(2)
	}
	if err := sl.TruncateTail(int64(info.ValidBytes)); err != nil {
		sl.Close()
		fmt.Fprintln(os.Stderr, "walinspect: repair:", err)
		os.Exit(2)
	}
	sl.Close()
	fmt.Printf("repaired: truncated to %d bytes\n", info.ValidBytes)
}

// readSegments loads every wal.NNNN file of dir, sorted by index.
func readSegments(dir string) ([]wal.SegmentData, int) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "walinspect:", err)
		os.Exit(2)
	}
	var segs []wal.SegmentData
	total := 0
	for _, e := range entries {
		idx, ok := wal.ParseSegmentName(e.Name())
		if !ok {
			continue
		}
		b, err := os.ReadFile(dir + string(os.PathSeparator) + e.Name())
		if err != nil {
			fmt.Fprintln(os.Stderr, "walinspect:", err)
			os.Exit(2)
		}
		segs = append(segs, wal.SegmentData{Index: idx, Data: b})
		total += len(b)
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].Index < segs[j].Index })
	return segs, total
}

// printSegmentSpans prints one line per segment with the commit-CSN
// range of the frames that START inside it — the map a point-in-time
// recovery uses to pick which segment prefix to restore. Frames are
// decoded from the concatenation (they may straddle boundaries) and
// attributed to the segment holding their first byte.
func printSegmentSpans(segs []wal.SegmentData) {
	var all []byte
	starts := make([]int, len(segs))
	for i, s := range segs {
		starts[i] = len(all)
		all = append(all, s.Data...)
	}
	type span struct{ lo, hi uint64 }
	spans := make([]span, len(segs))
	seg := 0
	for off := 0; off < len(all); {
		f, n, err := wal.DecodeFrameAt(all, off)
		if err != nil {
			break
		}
		for seg+1 < len(segs) && off >= starts[seg+1] {
			seg++
		}
		if f.Commit != nil {
			sp := &spans[seg]
			if sp.lo == 0 || f.Commit.CSN < sp.lo {
				sp.lo = f.Commit.CSN
			}
			if f.Commit.CSN > sp.hi {
				sp.hi = f.Commit.CSN
			}
		}
		off += n
	}
	for i, s := range segs {
		if spans[i].lo == 0 {
			fmt.Printf("  %s: %d bytes, no commits\n", wal.SegmentName(s.Index), len(s.Data))
			continue
		}
		fmt.Printf("  %s: %d bytes, commits CSN %d..%d\n",
			wal.SegmentName(s.Index), len(s.Data), spans[i].lo, spans[i].hi)
	}
}

// dumpFrames walks the log and prints one line per decodable frame.
func dumpFrames(b []byte) {
	off := 0
	for i := 0; ; i++ {
		f, n, err := wal.DecodeFrameAt(b, off)
		if err != nil {
			return
		}
		switch {
		case f.Commit != nil:
			fmt.Printf("  [%d] @%d commit tx=%d csn=%d rows=%d (%d bytes)\n",
				i, off, f.Commit.TxID, f.Commit.CSN, len(f.Commit.Rows), n)
		case f.Checkpoint != nil:
			rows := 0
			for _, t := range f.Checkpoint.Tables {
				rows += len(t.Rows)
			}
			fmt.Printf("  [%d] @%d checkpoint csn=%d tables=%d rows=%d (%d bytes)\n",
				i, off, f.Checkpoint.CSN, len(f.Checkpoint.Tables), rows, n)
		case f.Schema != nil:
			fmt.Printf("  [%d] @%d schema %s (%d bytes)\n", i, off, f.Schema.Name, n)
		case f.DeltaBegin != nil:
			kind := "delta"
			if f.DeltaBegin.Base == 0 {
				kind = "full"
			}
			fmt.Printf("  [%d] @%d delta-begin %s csn=%d base=%d schemas=%d (%d bytes)\n",
				i, off, kind, f.DeltaBegin.CSN, f.DeltaBegin.Base, len(f.DeltaBegin.Schemas), n)
		case f.DeltaRows != nil:
			fmt.Printf("  [%d] @%d delta-rows csn=%d rows=%d (%d bytes)\n",
				i, off, f.DeltaRows.CSN, len(f.DeltaRows.Rows), n)
		case f.DeltaEnd != nil:
			fmt.Printf("  [%d] @%d delta-end csn=%d rows=%d (%d bytes)\n",
				i, off, f.DeltaEnd.CSN, f.DeltaEnd.Rows, n)
		}
		off += n
	}
}

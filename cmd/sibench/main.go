// Command sibench regenerates the tables and figures of "The Cost of
// Serializability on Platforms That Use Snapshot Isolation" (ICDE 2008)
// on the simulated platforms of this repository.
//
// Usage:
//
//	sibench -exp fig5a                 # one figure, quick profile
//	sibench -exp all -reps 5 -measure 10s -ramp 3s   # closer to paper scale
//	sibench -exp fig7 -csv out/        # also write CSV series
//	sibench -list
//
// The quick defaults regenerate a figure in seconds; the paper's own
// protocol (30s ramp, 60s measurement, 5 repetitions, MPL 1..30) is
// reachable through the flags.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"sicost/internal/experiments"
)

func main() {
	var (
		expFlag   = flag.String("exp", "", "experiment id(s), comma-separated, or 'all'")
		list      = flag.Bool("list", false, "list available experiments")
		scale     = flag.Float64("scale", 1.0, "simulated-hardware time scale (1 = default profile, 4 ≈ paper hardware)")
		ramp      = flag.Duration("ramp", 200*time.Millisecond, "warm-up interval per point (paper: 30s)")
		measure   = flag.Duration("measure", 1*time.Second, "measurement interval per point (paper: 60s)")
		reps      = flag.Int("reps", 2, "repetitions per point (paper: 5)")
		mpls      = flag.String("mpls", "1,3,5,10,15,20,25,30", "comma-separated MPL sweep")
		customers = flag.Int("customers", 18000, "customers loaded (paper: 18000)")
		seed      = flag.Int64("seed", 20080407, "base random seed")
		csvDir    = flag.String("csv", "", "directory to write per-experiment CSV files")
		quiet     = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-22s %s\n", e.ID, e.Title)
		}
		return
	}
	if *expFlag == "" {
		fmt.Fprintln(os.Stderr, "sibench: -exp required (or -list); e.g. -exp fig5a")
		os.Exit(2)
	}

	cfg := experiments.Config{
		Scale: *scale, Ramp: *ramp, Measure: *measure,
		Reps: *reps, Customers: *customers, Seed: *seed,
	}
	if !*quiet {
		cfg.Log = os.Stderr
	}
	for _, part := range strings.Split(*mpls, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fmt.Fprintf(os.Stderr, "sibench: bad -mpls entry %q: %v\n", part, err)
			os.Exit(2)
		}
		cfg.MPLs = append(cfg.MPLs, n)
	}

	var ids []string
	if *expFlag == "all" {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*expFlag, ",")
	}

	for _, id := range ids {
		id = strings.TrimSpace(id)
		exp, err := experiments.ByID(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sibench:", err)
			os.Exit(2)
		}
		start := time.Now()
		res, err := exp.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sibench: %s failed: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(experiments.Render(res))
		if !*quiet {
			fmt.Fprintf(os.Stderr, "[%s done in %v]\n", id, time.Since(start).Round(time.Millisecond))
		}
		if *csvDir != "" && len(res.Series) > 0 {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "sibench:", err)
				os.Exit(1)
			}
			path := filepath.Join(*csvDir, res.ID+".csv")
			if err := os.WriteFile(path, []byte(experiments.RenderCSV(res)), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "sibench:", err)
				os.Exit(1)
			}
			if !*quiet {
				fmt.Fprintf(os.Stderr, "[wrote %s]\n", path)
			}
		}
	}
}

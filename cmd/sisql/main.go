// Command sisql is an interactive SQL shell over the sicost engine with
// the SmallBank database pre-loaded: useful for poking at snapshot
// isolation by hand (open two terminals, BEGIN in both, and reproduce
// the §II-C interleavings yourself — within one process, sessions are
// numbered and switched with \1, \2, ...).
//
//	go run ./cmd/sisql
//	sql> SELECT Balance FROM Checking WHERE CustomerId = 7
//	sql> BEGIN
//	sql> UPDATE Checking SET Balance = Balance + 100 WHERE CustomerId = 7
//	sql> COMMIT
//
// The shell is an in-process transport over the same session layer the
// network server (cmd/sisqld) uses, so statement semantics, abort
// classification and transaction lifecycle cannot diverge between the
// two — including disconnect safety: quitting with open transactions
// rolls them back.
//
// Meta commands: \1..\9 switch session, \mode prints the engine mode,
// \q quits (rolling back any open transactions).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"sicost/internal/core"
	"sicost/internal/engine"
	"sicost/internal/server"
	"sicost/internal/smallbank"
)

func main() {
	var (
		mode      = flag.String("mode", "si", "concurrency control: si, 2pl or ssi")
		platform  = flag.String("platform", "postgres", "platform: postgres or commercial")
		customers = flag.Int("customers", 100, "SmallBank customers to load")
	)
	flag.Parse()

	cfg := engine.Config{Mode: core.SnapshotFUW, Platform: core.PlatformPostgres}
	switch *mode {
	case "si":
	case "2pl":
		cfg.Mode = core.Strict2PL
	case "ssi":
		cfg.Mode = core.SerializableSI
	default:
		fmt.Fprintf(os.Stderr, "sisql: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	if *platform == "commercial" {
		cfg.Platform = core.PlatformCommercial
	}

	db := engine.Open(cfg)
	defer db.Close()
	if err := smallbank.CreateSchema(db); err != nil {
		fmt.Fprintln(os.Stderr, "sisql:", err)
		os.Exit(1)
	}
	if _, err := smallbank.Load(db, smallbank.LoadConfig{Customers: *customers, Seed: 1}); err != nil {
		fmt.Fprintln(os.Stderr, "sisql:", err)
		os.Exit(1)
	}
	fmt.Printf("sicost SQL shell — %s/%s, SmallBank with %d customers (names %q..)\n",
		cfg.Mode, cfg.Platform, *customers, smallbank.CustomerName(0))
	fmt.Println(`dialect: SELECT/UPDATE/INSERT/DELETE with "WHERE col = value", BEGIN/COMMIT/ROLLBACK; \q quits`)

	sessions := map[int]*server.Session{1: server.NewSession(db, server.SessionConfig{})}
	cur := 1
	// quit rolls back every session's open transaction before the shell
	// exits — the shell honors the same disconnect-safety contract as a
	// dropped network connection.
	quit := func() {
		for id, sess := range sessions {
			if sess.Close() {
				fmt.Printf("(session %d: open transaction rolled back)\n", id)
			}
		}
	}
	scanner := bufio.NewScanner(os.Stdin)
	for {
		fmt.Printf("sql[%d]> ", cur)
		if !scanner.Scan() {
			quit()
			return
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, `\`) {
			switch {
			case line == `\q`:
				quit()
				return
			case line == `\mode`:
				fmt.Printf("%s on %s\n", cfg.Mode, cfg.Platform)
			case len(line) == 2 && line[1] >= '1' && line[1] <= '9':
				cur = int(line[1] - '0')
				if sessions[cur] == nil {
					sessions[cur] = server.NewSession(db, server.SessionConfig{})
					fmt.Printf("(new session %d)\n", cur)
				}
			default:
				fmt.Println(`meta commands: \1..\9 sessions, \mode, \q`)
			}
			continue
		}
		render(sessions[cur].Execute(line))
	}
}

// render prints one structured response the way a shell user reads it.
func render(r server.Response) {
	if r.Err != "" {
		fmt.Println("error:", r.Err)
		if r.Retriable {
			fmt.Println("(transient failure: the transaction is aborted; ROLLBACK and retry)")
		}
		return
	}
	switch {
	case r.Rows != nil:
		for _, row := range r.Rows {
			parts := make([]string, len(row))
			for i, v := range row {
				parts[i] = fmt.Sprint(v)
			}
			fmt.Println(strings.Join(parts, " | "))
		}
		fmt.Printf("(%d row)\n", len(r.Rows))
	case r.Status == "OK":
		fmt.Printf("OK (%d row)\n", r.Affected)
	default:
		fmt.Println(r.Status)
	}
}

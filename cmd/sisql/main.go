// Command sisql is an interactive SQL shell over the sicost engine with
// the SmallBank database pre-loaded: useful for poking at snapshot
// isolation by hand (open two terminals, BEGIN in both, and reproduce
// the §II-C interleavings yourself — within one process, sessions are
// numbered and switched with \1, \2, ...).
//
//	go run ./cmd/sisql
//	sql> SELECT Balance FROM Checking WHERE CustomerId = 7
//	sql> BEGIN
//	sql> UPDATE Checking SET Balance = Balance + 100 WHERE CustomerId = 7
//	sql> COMMIT
//
// Meta commands: \1..\9 switch session, \mode prints the engine mode,
// \q quits.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"sicost/internal/core"
	"sicost/internal/engine"
	"sicost/internal/smallbank"
	"sicost/internal/sqlmini"
)

func main() {
	var (
		mode      = flag.String("mode", "si", "concurrency control: si, 2pl or ssi")
		platform  = flag.String("platform", "postgres", "platform: postgres or commercial")
		customers = flag.Int("customers", 100, "SmallBank customers to load")
	)
	flag.Parse()

	cfg := engine.Config{Mode: core.SnapshotFUW, Platform: core.PlatformPostgres}
	switch *mode {
	case "si":
	case "2pl":
		cfg.Mode = core.Strict2PL
	case "ssi":
		cfg.Mode = core.SerializableSI
	default:
		fmt.Fprintf(os.Stderr, "sisql: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	if *platform == "commercial" {
		cfg.Platform = core.PlatformCommercial
	}

	db := engine.Open(cfg)
	defer db.Close()
	if err := smallbank.CreateSchema(db); err != nil {
		fmt.Fprintln(os.Stderr, "sisql:", err)
		os.Exit(1)
	}
	if _, err := smallbank.Load(db, smallbank.LoadConfig{Customers: *customers, Seed: 1}); err != nil {
		fmt.Fprintln(os.Stderr, "sisql:", err)
		os.Exit(1)
	}
	fmt.Printf("sicost SQL shell — %s/%s, SmallBank with %d customers (names %q..)\n",
		cfg.Mode, cfg.Platform, *customers, smallbank.CustomerName(0))
	fmt.Println(`dialect: SELECT/UPDATE/INSERT/DELETE with "WHERE col = value", BEGIN/COMMIT/ROLLBACK; \q quits`)

	sessions := map[int]*sqlmini.Session{1: sqlmini.NewSession(db)}
	cur := 1
	scanner := bufio.NewScanner(os.Stdin)
	for {
		fmt.Printf("sql[%d]> ", cur)
		if !scanner.Scan() {
			return
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, `\`) {
			switch {
			case line == `\q`:
				return
			case line == `\mode`:
				fmt.Printf("%s on %s\n", cfg.Mode, cfg.Platform)
			case len(line) == 2 && line[1] >= '1' && line[1] <= '9':
				cur = int(line[1] - '0')
				if sessions[cur] == nil {
					sessions[cur] = sqlmini.NewSession(db)
					fmt.Printf("(new session %d)\n", cur)
				}
			default:
				fmt.Println(`meta commands: \1..\9 sessions, \mode, \q`)
			}
			continue
		}
		if err := run(sessions[cur], line); err != nil {
			fmt.Println("error:", err)
			if core.IsRetriable(err) {
				fmt.Println("(serialization failure: the transaction is aborted; ROLLBACK and retry)")
			}
		}
	}
}

func run(sess *sqlmini.Session, line string) error {
	switch strings.ToUpper(strings.TrimSuffix(line, ";")) {
	case "BEGIN":
		if err := sess.Begin(); err != nil {
			return err
		}
		fmt.Println("BEGIN")
		return nil
	case "COMMIT":
		if err := sess.Commit(); err != nil {
			return err
		}
		fmt.Println("COMMIT")
		return nil
	case "ROLLBACK":
		sess.Rollback()
		fmt.Println("ROLLBACK")
		return nil
	}
	stmt, err := sqlmini.Parse(line)
	if err != nil {
		return err
	}
	if stmt.Kind == sqlmini.StmtSelect {
		rows, err := sess.Query(stmt, nil)
		if err != nil {
			return err
		}
		for _, row := range rows {
			parts := make([]string, len(row))
			for i, v := range row {
				parts[i] = v.String()
			}
			fmt.Println(strings.Join(parts, " | "))
		}
		fmt.Printf("(%d row)\n", len(rows))
		return nil
	}
	n, err := sess.Exec(stmt, nil)
	if err != nil {
		return err
	}
	fmt.Printf("OK (%d row)\n", n)
	return nil
}

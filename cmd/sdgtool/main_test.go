package main

import (
	"os"
	"path/filepath"
	"testing"

	"sicost/internal/sdg"
	"sicost/internal/smallbank"
)

func TestParseMix(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "mix.json")
	const doc = `{
	  "programs": [
	    {"name": "P", "accesses": [
	      {"table": "T", "cols": ["V"], "param": "x", "kind": "r"},
	      {"table": "T", "cols": ["V"], "param": "x", "kind": "w"},
	      {"table": "U", "cols": ["V"], "param": "x", "kind": "pr"},
	      {"table": "C", "cols": ["V"], "param": "0", "fixed": true, "kind": "w"}
	    ]}
	  ]
	}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	progs, err := parseMix(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) != 1 || len(progs[0].Accesses) != 4 {
		t.Fatalf("parsed %+v", progs)
	}
	a := progs[0].Accesses
	if a[0].Kind != sdg.Read || a[1].Kind != sdg.Write || a[2].Kind != sdg.PredRead {
		t.Fatalf("kinds = %v %v %v", a[0].Kind, a[1].Kind, a[2].Kind)
	}
	if !a[3].Fixed {
		t.Fatal("fixed flag lost")
	}

	// Bad kind rejected.
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"programs":[{"name":"P","accesses":[{"table":"T","kind":"zz"}]}]}`), 0o644)
	if _, err := parseMix(bad); err == nil {
		t.Fatal("bad kind accepted")
	}
	// Bad JSON rejected; missing file rejected.
	os.WriteFile(bad, []byte(`{`), 0o644)
	if _, err := parseMix(bad); err == nil {
		t.Fatal("bad JSON accepted")
	}
	if _, err := parseMix(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestParseTechnique(t *testing.T) {
	cases := map[string]sdg.Technique{
		"materialize": sdg.Materialize,
		"promote-upd": sdg.PromoteUpdate,
		"promote-sfu": sdg.PromoteSFU,
	}
	for s, want := range cases {
		got, err := parseTechnique(s)
		if err != nil || got != want {
			t.Fatalf("parseTechnique(%s) = %v, %v", s, got, err)
		}
	}
	if _, err := parseTechnique("nope"); err == nil {
		t.Fatal("unknown technique accepted")
	}
}

func TestApplyFix(t *testing.T) {
	base := smallbank.BasePrograms()
	progs, err := applyFix(base, "WC->TS:promote-upd")
	if err != nil {
		t.Fatal(err)
	}
	g, err := sdg.New(progs...)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsSafe() {
		t.Fatal("fix did not repair the mix")
	}

	progs2, err := applyFix(base, "all:materialize")
	if err != nil {
		t.Fatal(err)
	}
	g2, err := sdg.New(progs2...)
	if err != nil {
		t.Fatal(err)
	}
	if len(g2.VulnerableEdges()) != 0 {
		t.Fatal("all:materialize left vulnerable edges")
	}

	for _, bad := range []string{"nocolon", "X->Y:materialize", "WC->TS:zz", "junk:materialize"} {
		if _, err := applyFix(base, bad); err == nil {
			t.Fatalf("bad fix %q accepted", bad)
		}
	}
}

func TestRunAdviseSmoke(t *testing.T) {
	if err := runAdvise(smallbank.BasePrograms(), "postgres", 20, 1000); err != nil {
		t.Fatal(err)
	}
	if err := runAdvise(smallbank.BasePrograms(), "commercial", 20, 1000); err != nil {
		t.Fatal(err)
	}
	if err := runAdvise(smallbank.BasePrograms(), "martian", 20, 1000); err == nil {
		t.Fatal("unknown platform accepted")
	}
}

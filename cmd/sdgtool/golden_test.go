package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"sicost/internal/sdg"
	"sicost/internal/smallbank"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update to create): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden.\n--- want\n%s--- got\n%s", name, want, got)
	}
}

// TestReportGolden pins the default `sdgtool` output: the SDG analysis
// of the built-in SmallBank mix, the paper's running example. Drift here
// means the SDG theory output changed, which a reviewer should see.
func TestReportGolden(t *testing.T) {
	got, err := report(smallbank.BasePrograms(), false)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "smallbank_report.golden", got)
}

// TestDotGolden pins `sdgtool -dot`.
func TestDotGolden(t *testing.T) {
	got, err := report(smallbank.BasePrograms(), true)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "smallbank_dot.golden", got)
}

// TestFixedReportGolden pins `sdgtool -fix all:materialize`: the
// modification block plus the report of the repaired mix, which must
// contain no dangerous structures.
func TestFixedReportGolden(t *testing.T) {
	progs, mods, err := sdg.NeutralizeAll(smallbank.BasePrograms(), sdg.Materialize)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := report(progs, false)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "smallbank_fixed_report.golden", describeMods(mods)+rep)
}

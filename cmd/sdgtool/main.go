// Command sdgtool analyses a transaction-program mix with the Static
// Dependency Graph theory: it prints the SDG (vulnerable edges marked),
// the dangerous structures, the minimal sets of edges to repair, and —
// with -fix — the modified program mix after applying a technique.
//
// With no input file it analyses the built-in SmallBank mix. A custom
// mix is described in JSON:
//
//	{
//	  "programs": [
//	    {"name": "P", "accesses": [
//	      {"table": "T", "cols": ["V"], "param": "x", "kind": "r"},
//	      {"table": "U", "cols": ["V"], "param": "x", "kind": "w"}
//	    ]}
//	  ]
//	}
//
// kinds: "r" read, "w" write, "pr" predicate read. Add "fixed": true for
// constant-row accesses.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"sicost/internal/advisor"
	"sicost/internal/core"
	"sicost/internal/engine"
	"sicost/internal/experiments"
	"sicost/internal/sdg"
	"sicost/internal/smallbank"
)

type jsonAccess struct {
	Table string   `json:"table"`
	Cols  []string `json:"cols"`
	Param string   `json:"param"`
	Fixed bool     `json:"fixed"`
	Kind  string   `json:"kind"`
}

type jsonProgram struct {
	Name     string       `json:"name"`
	Accesses []jsonAccess `json:"accesses"`
}

type jsonMix struct {
	Programs []jsonProgram `json:"programs"`
}

func parseMix(path string) ([]*sdg.Program, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var mix jsonMix
	if err := json.Unmarshal(data, &mix); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	var progs []*sdg.Program
	for _, jp := range mix.Programs {
		p := &sdg.Program{Name: jp.Name}
		for _, ja := range jp.Accesses {
			var kind sdg.AccessKind
			switch ja.Kind {
			case "r":
				kind = sdg.Read
			case "w":
				kind = sdg.Write
			case "pr":
				kind = sdg.PredRead
			default:
				return nil, fmt.Errorf("program %s: unknown access kind %q", jp.Name, ja.Kind)
			}
			p.Accesses = append(p.Accesses, sdg.Access{
				Table: ja.Table, Cols: ja.Cols, Param: ja.Param, Fixed: ja.Fixed, Kind: kind,
			})
		}
		progs = append(progs, p)
	}
	return progs, nil
}

func main() {
	var (
		input    = flag.String("mix", "", "JSON program-mix file (default: built-in SmallBank)")
		fix      = flag.String("fix", "", "apply a repair: '<from>-><to>:<materialize|promote-upd|promote-sfu>' or 'all:<technique>'")
		dot      = flag.Bool("dot", false, "emit Graphviz dot instead of the text report")
		advise   = flag.Bool("advise", false, "rank repair options by predicted throughput (the paper's future-work tool)")
		platName = flag.String("platform", "postgres", "platform profile for -advise: postgres or commercial")
		mpl      = flag.Int("mpl", 20, "MPL for -advise predictions")
		hotspot  = flag.Int("hotspot", 1000, "hotspot size for -advise predictions")
	)
	flag.Parse()

	var progs []*sdg.Program
	var err error
	if *input == "" {
		progs = smallbank.BasePrograms()
	} else if progs, err = parseMix(*input); err != nil {
		fmt.Fprintln(os.Stderr, "sdgtool:", err)
		os.Exit(1)
	}

	if *fix != "" {
		progs, err = applyFix(progs, *fix)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sdgtool:", err)
			os.Exit(1)
		}
	}

	if *advise {
		if err := runAdvise(progs, *platName, *mpl, *hotspot); err != nil {
			fmt.Fprintln(os.Stderr, "sdgtool:", err)
			os.Exit(1)
		}
		return
	}

	out, err := report(progs, *dot)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdgtool:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}

// report renders the command's main output for a program mix: the SDG
// text report, or its Graphviz form when dot is set.
func report(progs []*sdg.Program, dot bool) (string, error) {
	g, err := sdg.New(progs...)
	if err != nil {
		return "", err
	}
	if dot {
		return g.ToDOT("sdg"), nil
	}
	return g.Describe(), nil
}

// runAdvise ranks repair options with the analytic performance model
// (internal/advisor), assuming a uniform transaction mix over the
// programs.
func runAdvise(progs []*sdg.Program, platName string, mpl, hotspot int) error {
	weights := make(map[string]float64, len(progs))
	for _, p := range progs {
		weights[p.Name] = 1.0 / float64(len(progs))
	}
	var plat advisor.Platform
	switch platName {
	case "postgres":
		plat = advisor.Platform{
			Name:  core.PlatformPostgres,
			Res:   experiments.PostgresResources(1),
			Fsync: experiments.LogDevice(1).FsyncLatency,
			Cost:  engine.DefaultCostModel(core.PlatformPostgres),
		}
	case "commercial":
		plat = advisor.Platform{
			Name:  core.PlatformCommercial,
			Res:   experiments.CommercialResources(1),
			Fsync: experiments.LogDevice(1).FsyncLatency,
			Cost:  engine.DefaultCostModel(core.PlatformCommercial),
		}
	default:
		return fmt.Errorf("unknown platform %q", platName)
	}
	preds, err := advisor.Advise(progs, advisor.Workload{
		Weights: weights, HotspotSize: hotspot, HotspotProb: 0.9, MPL: mpl,
	}, plat)
	if err != nil {
		return err
	}
	fmt.Printf("Repair options ranked by predicted throughput (%s, MPL %d, hotspot %d):\n\n",
		platName, mpl, hotspot)
	fmt.Print(advisor.Render(preds))
	fmt.Println("\nRecommended:", preds[0].Option.Name)
	return nil
}

func parseTechnique(s string) (sdg.Technique, error) {
	switch s {
	case "materialize":
		return sdg.Materialize, nil
	case "promote-upd":
		return sdg.PromoteUpdate, nil
	case "promote-sfu":
		return sdg.PromoteSFU, nil
	default:
		return 0, fmt.Errorf("unknown technique %q (want materialize, promote-upd or promote-sfu)", s)
	}
}

func applyFix(progs []*sdg.Program, spec string) ([]*sdg.Program, error) {
	parts := strings.SplitN(spec, ":", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("bad -fix %q (want 'edge:technique')", spec)
	}
	tech, err := parseTechnique(parts[1])
	if err != nil {
		return nil, err
	}
	if parts[0] == "all" {
		out, mods, err := sdg.NeutralizeAll(progs, tech)
		if err != nil {
			return nil, err
		}
		reportMods(mods)
		return out, nil
	}
	ft := strings.SplitN(parts[0], "->", 2)
	if len(ft) != 2 {
		return nil, fmt.Errorf("bad edge %q (want 'From->To')", parts[0])
	}
	g, err := sdg.New(progs...)
	if err != nil {
		return nil, err
	}
	edge := g.Edge(ft[0], ft[1])
	if edge == nil {
		return nil, fmt.Errorf("no edge %s->%s in the SDG", ft[0], ft[1])
	}
	out, mods, err := sdg.Neutralize(progs, edge, tech)
	if err != nil {
		return nil, err
	}
	reportMods(mods)
	return out, nil
}

func reportMods(mods []sdg.Modification) {
	fmt.Print(describeMods(mods))
}

// describeMods renders the applied-modification block printed before a
// -fix report. Sorts its argument.
func describeMods(mods []sdg.Modification) string {
	sdg.SortModifications(mods)
	var b strings.Builder
	b.WriteString("Applied modifications:\n")
	for _, m := range mods {
		fmt.Fprintf(&b, "  %-12s += %s   (%s, edge %s)\n", m.Program, m.Add, m.Technique, m.Edge)
	}
	b.WriteString("\n")
	return b.String()
}

// Command tracecheck validates and summarizes a transaction-lifecycle
// trace in the JSONL wire format (internal/trace). It is the consumer
// side of `smallbank -trace out.jsonl`: the CI trace-smoke target runs
// it over a short capture to pin both the schema (every line must
// decode) and the lifecycle invariants (begin-before-use, one terminal
// event per transaction, paired lock waits, taxonomy-bounded reasons).
//
// With -check it additionally replays the stream through the online
// windowed isolation checker (internal/onlinecheck): dependency cycles
// and — under -mode si or ssi — snapshot-isolation rule violations are
// reported with their structured evidence, and the exit status turns
// nonzero. A recorded anomaly thereby becomes a regression artifact:
// commit the JSONL, and `tracecheck -check` re-convicts it forever.
//
// Usage:
//
//	tracecheck run.jsonl
//	tracecheck -check -mode si run.jsonl
//	smallbank -trace /dev/stdout ... | tracecheck -allow-gaps -q -
//
// -allow-gaps relaxes the wait/wake pairing and terminal-event checks
// for truncated captures (the recorder drops events rather than block
// when a ring fills); schema-level checks still apply. Exit status is 0
// for a valid stream, 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sicost/internal/onlinecheck"
	"sicost/internal/trace"
)

func main() {
	allowGaps := flag.Bool("allow-gaps", false, "tolerate truncated streams (unpaired waits, missing terminals)")
	quiet := flag.Bool("q", false, "suppress the summary; only report validity")
	check := flag.Bool("check", false, "replay the stream through the online isolation checker")
	mode := flag.String("mode", "si", "isolation expectation for -check: si or ssi enforce the SI read/write rules, 2pl checks cycles only")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: tracecheck [-allow-gaps] [-q] [-check [-mode si|ssi|2pl]] <trace.jsonl | ->\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(os.Stdout, flag.Arg(0), options{
		allowGaps: *allowGaps, quiet: *quiet, check: *check, mode: *mode,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: %v\n", err)
		os.Exit(1)
	}
}

// options carries the flag set into run, which tests drive directly.
type options struct {
	allowGaps, quiet, check bool
	mode                    string
}

func run(out io.Writer, path string, opts options) error {
	var in io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	events, err := trace.ParseJSONL(in)
	if err != nil {
		return err
	}
	if err := trace.ValidateWith(events, trace.ValidateOptions{AllowGaps: opts.allowGaps}); err != nil {
		return err
	}
	if !opts.quiet {
		fmt.Fprintln(out, trace.Summarize(events))
	}
	if opts.check {
		var siRules bool
		switch opts.mode {
		case "si", "ssi":
			siRules = true
		case "2pl":
			siRules = false
		default:
			return fmt.Errorf("unknown -mode %q (want si, ssi or 2pl)", opts.mode)
		}
		rep := onlinecheck.Run(events, onlinecheck.Config{SIRules: siRules})
		fmt.Fprint(out, rep.Describe())
		if !rep.Serializable || rep.SIViolations != 0 {
			return fmt.Errorf("isolation violations detected (%d cycle(s), %d SI-rule violation(s))",
				rep.Stats.Cycles, rep.SIViolations)
		}
	}
	fmt.Fprintf(out, "ok: %d events\n", len(events))
	return nil
}

// Command tracecheck validates and summarizes a transaction-lifecycle
// trace in the JSONL wire format (internal/trace). It is the consumer
// side of `smallbank -trace out.jsonl`: the CI trace-smoke target runs
// it over a short capture to pin both the schema (every line must
// decode) and the lifecycle invariants (begin-before-use, one terminal
// event per transaction, paired lock waits, taxonomy-bounded reasons).
//
// Usage:
//
//	tracecheck run.jsonl
//	smallbank -trace /dev/stdout ... | tracecheck -allow-gaps -q -
//
// -allow-gaps relaxes the wait/wake pairing and terminal-event checks
// for truncated captures (the recorder drops events rather than block
// when a ring fills); schema-level checks still apply. Exit status is 0
// for a valid stream, 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sicost/internal/trace"
)

func main() {
	allowGaps := flag.Bool("allow-gaps", false, "tolerate truncated streams (unpaired waits, missing terminals)")
	quiet := flag.Bool("q", false, "suppress the summary; only report validity")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: tracecheck [-allow-gaps] [-q] <trace.jsonl | ->\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *allowGaps, *quiet); err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: %v\n", err)
		os.Exit(1)
	}
}

func run(path string, allowGaps, quiet bool) error {
	var in io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	events, err := trace.ParseJSONL(in)
	if err != nil {
		return err
	}
	if err := trace.ValidateWith(events, trace.ValidateOptions{AllowGaps: allowGaps}); err != nil {
		return err
	}
	if !quiet {
		fmt.Println(trace.Summarize(events))
	}
	fmt.Printf("ok: %d events\n", len(events))
	return nil
}

package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sicost/internal/core"
	"sicost/internal/engine"
	"sicost/internal/trace"
)

var update = flag.Bool("update", false, "regenerate testdata golden traces")

// writeSkewTrace executes the canonical write-skew history on a real
// engine under plain snapshot isolation — two transactions read the
// same two rows and each updates the one the other read — with a
// logical clock, so the recorded stream is bit-identical across runs.
// SI commits both (disjoint write sets pass First-Updater-Wins), and
// the execution is not serializable.
func writeSkewTrace(t *testing.T) []trace.Event {
	t.Helper()
	var tick int64
	rec := trace.New(trace.Options{Clock: func() int64 { tick++; return tick }})
	db := engine.Open(engine.Config{Mode: core.SnapshotFUW, Platform: core.PlatformPostgres, Tracer: rec})
	defer db.Close()
	schema := &core.Schema{
		Name: "T",
		Columns: []core.Column{
			{Name: "K", Kind: core.KindInt, NotNull: true},
			{Name: "V", Kind: core.KindInt, NotNull: true},
		},
		PK: 0,
	}
	if err := db.CreateTable(schema); err != nil {
		t.Fatal(err)
	}
	seed := db.Begin()
	for k := int64(0); k < 2; k++ {
		if err := seed.Insert("T", core.Record{core.Int(k), core.Int(1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}

	t1, t2 := db.Begin(), db.Begin()
	for _, tx := range []*engine.Tx{t1, t2} {
		for k := int64(0); k < 2; k++ {
			if _, err := tx.Get("T", core.Int(k)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := t1.Update("T", core.Int(0), core.Record{core.Int(0), core.Int(-1)}); err != nil {
		t.Fatal(err)
	}
	if err := t2.Update("T", core.Int(1), core.Record{core.Int(1), core.Int(-1)}); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatalf("t1 must commit under SI: %v", err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatalf("t2 must commit under SI (write skew): %v", err)
	}
	return rec.Drain()
}

// TestWriteSkewGolden pins the committed regression trace: the same
// deterministic execution must re-encode to the identical JSONL bytes.
// Run with -update to regenerate after an intentional schema change.
func TestWriteSkewGolden(t *testing.T) {
	events := writeSkewTrace(t)
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "writeskew.jsonl")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("recorded trace diverged from %s (run with -update if the wire format changed)", golden)
	}
}

// TestCheckConvictsWriteSkew is the regression gate the golden trace
// exists for: replaying it with -check must detect the write-skew
// cycle, print the structured violation, and fail — under the SI
// expectation and under the cycles-only 2PL expectation alike.
func TestCheckConvictsWriteSkew(t *testing.T) {
	for _, mode := range []string{"si", "ssi", "2pl"} {
		t.Run(mode, func(t *testing.T) {
			var out bytes.Buffer
			err := run(&out, filepath.Join("testdata", "writeskew.jsonl"), options{
				quiet: true, check: true, mode: mode,
			})
			if err == nil {
				t.Fatalf("write-skew trace passed -check -mode %s:\n%s", mode, out.String())
			}
			if !strings.Contains(err.Error(), "isolation violations") {
				t.Fatalf("unexpected failure: %v", err)
			}
			if !strings.Contains(out.String(), "write skew") {
				t.Fatalf("verdict does not name the anomaly:\n%s", out.String())
			}
		})
	}
}

// TestCheckPassesCleanTrace: a serial history replayed with -check in
// every mode stays exit-clean and keeps printing the ok trailer.
func TestCheckPassesCleanTrace(t *testing.T) {
	var tick int64
	rec := trace.New(trace.Options{Clock: func() int64 { tick++; return tick }})
	db := engine.Open(engine.Config{Mode: core.SnapshotFUW, Platform: core.PlatformPostgres, Tracer: rec})
	defer db.Close()
	schema := &core.Schema{
		Name:    "T",
		Columns: []core.Column{{Name: "K", Kind: core.KindInt, NotNull: true}},
		PK:      0,
	}
	if err := db.CreateTable(schema); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 5; i++ {
		tx := db.Begin()
		if err := tx.Insert("T", core.Record{core.Int(i)}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "serial.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteJSONL(f, rec.Drain()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"si", "2pl"} {
		var out bytes.Buffer
		if err := run(&out, path, options{quiet: true, check: true, mode: mode}); err != nil {
			t.Fatalf("clean serial trace failed -check -mode %s: %v\n%s", mode, err, out.String())
		}
		if !strings.Contains(out.String(), "ok: ") {
			t.Fatalf("missing ok trailer:\n%s", out.String())
		}
	}
	var out bytes.Buffer
	if err := run(&out, path, options{check: true, mode: "serializable"}); err == nil {
		t.Fatal("unknown -mode accepted")
	}
}

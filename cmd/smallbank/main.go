// Command smallbank runs one SmallBank workload configuration and prints
// the full statistics breakdown: throughput, per-type commits, aborts by
// reason, response-time distribution, WAL activity and (optionally) a
// runtime serializability verdict.
//
// Examples:
//
//	smallbank -strategy SI -mpl 20
//	smallbank -strategy MaterializeBW -mpl 20 -hotspot 10 -balmix 0.6
//	smallbank -strategy PromoteWT-sfu -platform commercial -mpl 25
//	smallbank -strategy SI -check          # MVSG checker + live online checker
//	smallbank -strategies                  # list strategies
//	smallbank -chaos -mode 2pl -check      # fault-injected run + invariant audit
//	smallbank -crash -crash-cycles 20      # crash/recover chaos + durability audit
//	smallbank -wal run.wal                 # durable log file (resumes if non-empty)
//	smallbank -retry backoff -retry-base 200us -retry-cap 20ms
//	smallbank -trace run.jsonl             # dump the lifecycle event trace
//	smallbank -pprof localhost:6060        # serve pprof/expvar while running
//	smallbank -open -rate 20000            # open-system run at a fixed offered load
//	smallbank -open -rate 20000 -admission # ... behind the adaptive admission gate
//	smallbank -deadline 50ms               # per-transaction time budget
//	smallbank -wal waldir -wal-segment-size 1048576 -ckpt-bytes 4194304 -retire
//	                                       # fuzzy incremental checkpoints + online
//	                                       # segment retirement (bounded log)
//	smallbank -crash -crash-segment-size 4096 -crash-fuzzy
//	                                       # crash chaos with the fuzzy machinery live
package main

import (
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the -pprof server
	"os"
	"time"

	"sicost/internal/admission"
	"sicost/internal/checker"
	"sicost/internal/core"
	"sicost/internal/engine"
	"sicost/internal/experiments"
	"sicost/internal/faultinject"
	"sicost/internal/onlinecheck"
	"sicost/internal/smallbank"
	"sicost/internal/trace"
	"sicost/internal/wal"
	"sicost/internal/workload"
)

func main() {
	var (
		strategyName = flag.String("strategy", "SI", "strategy name (see -strategies)")
		listStrats   = flag.Bool("strategies", false, "list strategies and exit")
		platform     = flag.String("platform", "postgres", "platform profile: postgres or commercial")
		mode         = flag.String("mode", "si", "concurrency control: si, 2pl or ssi")
		mpl          = flag.Int("mpl", 20, "multiprogramming level")
		customers    = flag.Int("customers", 18000, "customers loaded")
		hotspot      = flag.Int("hotspot", 1000, "hotspot size")
		hotProb      = flag.Float64("hotprob", 0.9, "fraction of transactions on the hotspot")
		balMix       = flag.Float64("balmix", 0, "Balance fraction (0 = uniform mix)")
		ramp         = flag.Duration("ramp", 500*time.Millisecond, "ramp-up")
		measure      = flag.Duration("measure", 2*time.Second, "measurement interval")
		scale        = flag.Float64("scale", 1.0, "simulated-hardware time scale")
		seed         = flag.Int64("seed", 1, "random seed")
		check        = flag.Bool("check", false, "attach the MVSG serializability checker and the online windowed checker")
		chaos        = flag.Bool("chaos", false, "arm the default fault plan and audit the standing invariants")
		crash        = flag.Bool("crash", false, "run the crash/recover chaos harness and audit the durability contract")
		crashCycles  = flag.Int("crash-cycles", 20, "crash/recover cycles for -crash")
		crashAsync   = flag.Bool("crash-async", false, "-crash: asynchronous-commit mode, auditing the durable-prefix contract")
		crashSegSize = flag.Int64("crash-segment-size", 0, "-crash: segmented log rotated at this many bytes (0 = flat device)")
		walPath      = flag.String("wal", "", "durable log file; a non-empty file is recovered instead of loaded")
		walAsync     = flag.Bool("wal-async", false, "asynchronous commit (synchronous_commit=off): publish before durable")
		walSegSize   = flag.Int64("wal-segment-size", 0, "rotate the log into wal.NNNN segments at this many bytes; -wal names a directory")
		walPrealloc  = flag.Int64("wal-prealloc", 0, "create wal.NNNN segments at this physical size up front (needs -wal-segment-size)")
		ckptBytes    = flag.Int64("ckpt-bytes", 0, "fuzzy incremental checkpoint after this many bytes of log growth (0 = off)")
		ckptChain    = flag.Int("ckpt-chain", 0, "delta links per chain before a full link re-roots it (0 = engine default)")
		retire       = flag.Bool("retire", false, "retire fully-covered wal.NNNN segments after each chain re-root (needs -wal-segment-size)")
		archiveDir   = flag.String("archive", "", "copy retired segments into this directory before deleting (PITR; needs -retire)")
		crashFuzzy   = flag.Bool("crash-fuzzy", false, "-crash: fuzzy checkpoints + segment retirement live during the rotation")
		lockTimeout  = flag.Duration("locktimeout", 0, "per-transaction lock-wait timeout (0 = wait forever)")
		retryKind    = flag.String("retry", "immediate", "retry policy: immediate or backoff")
		retries      = flag.Int("retries", 50, "max retries per interaction")
		retryBase    = flag.Duration("retry-base", 200*time.Microsecond, "backoff policy: first backoff step")
		retryCap     = flag.Duration("retry-cap", 20*time.Millisecond, "backoff policy: per-step cap")
		retryJitter  = flag.Float64("retry-jitter", 0.5, "backoff policy: jitter fraction in [0,1]")
		retryBudget  = flag.Duration("retry-budget", 0, "backoff policy: total backoff budget per interaction (0 = unlimited)")
		tracePath    = flag.String("trace", "", "write the transaction-lifecycle event trace to this JSONL file")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
		open         = flag.Bool("open", false, "open-system driver: Poisson arrivals at -rate instead of -mpl closed loops")
		rate         = flag.Float64("rate", 10000, "-open: offered load in arrivals per second")
		admit        = flag.Bool("admission", false, "adaptive admission control in front of Begin (AIMD + abort-storm circuit breaker)")
		admitLimit   = flag.Int("admission-limit", 0, "admission: initial concurrency limit (0 = controller default)")
		admitQueue   = flag.Int("admission-queue", 0, "admission: wait-queue bound; Begins past it are shed (0 = controller default)")
		maxInFlight  = flag.Int("max-inflight", 0, "-open: driver backstop on concurrent virtual clients (0 = driver default)")
		txDeadline   = flag.Duration("deadline", 0, "per-transaction time budget; expiry aborts with the deadline reason (0 = none)")
		sharedRate   = flag.Float64("retry-shared-rate", 0, "shared retry budget: tokens/sec refill across all clients (0 = no shared budget)")
		sharedBurst  = flag.Float64("retry-shared-burst", 0, "shared retry budget: bucket capacity (default: refill rate)")
	)
	flag.Parse()

	if *listStrats {
		for _, s := range smallbank.Strategies() {
			sound := "sound on both platforms"
			switch {
			case s.Name == "SI":
				sound = "no serializability guarantee"
			case !s.SoundOn(core.PlatformPostgres):
				sound = "sound on commercial only"
			}
			fmt.Printf("%-22s %s\n", s.Name, sound)
		}
		return
	}

	strategy, err := smallbank.ByName(*strategyName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smallbank:", err)
		os.Exit(2)
	}

	var engCfg engine.Config
	switch *platform {
	case "postgres":
		engCfg = experiments.PostgresDB(*scale)
	case "commercial":
		engCfg = experiments.CommercialDB(*scale)
	default:
		fmt.Fprintf(os.Stderr, "smallbank: unknown platform %q\n", *platform)
		os.Exit(2)
	}
	switch *mode {
	case "si":
	case "2pl":
		engCfg.Mode = core.Strict2PL
	case "ssi":
		engCfg.Mode = core.SerializableSI
	default:
		fmt.Fprintf(os.Stderr, "smallbank: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	if !strategy.SoundOn(engCfg.Platform) && strategy.GuaranteesSerializable() {
		fmt.Fprintf(os.Stderr, "warning: %s is NOT sound on %s (§II-C)\n", strategy.Name, engCfg.Platform)
	}

	if *crash {
		runCrashChaos(engCfg.Mode, engCfg.Platform, *crashCycles, *seed, *crashAsync, *crashSegSize, *crashFuzzy)
		return
	}

	if *retire && *walSegSize <= 0 {
		fmt.Fprintln(os.Stderr, "smallbank: -retire needs a segmented log (-wal-segment-size > 0)")
		os.Exit(2)
	}
	if *archiveDir != "" && !*retire {
		fmt.Fprintln(os.Stderr, "smallbank: -archive needs -retire")
		os.Exit(2)
	}
	if *walPrealloc > 0 && *walSegSize <= 0 {
		fmt.Fprintln(os.Stderr, "smallbank: -wal-prealloc needs a segmented log (-wal-segment-size > 0)")
		os.Exit(2)
	}
	engCfg.WAL.PreallocBytes = *walPrealloc
	engCfg.CheckpointLogBytes = *ckptBytes
	engCfg.CheckpointChainMax = *ckptChain
	engCfg.RetireSegments = *retire
	engCfg.ArchiveDir = *archiveDir

	var policy workload.RetryPolicy
	switch *retryKind {
	case "immediate":
		policy = workload.ImmediatePolicy{MaxRetries: *retries}
	case "backoff":
		policy = workload.BackoffPolicy{
			MaxRetries: *retries, Base: *retryBase, Cap: *retryCap,
			Jitter: *retryJitter, Budget: *retryBudget,
		}
	default:
		fmt.Fprintf(os.Stderr, "smallbank: unknown retry policy %q\n", *retryKind)
		os.Exit(2)
	}

	if *sharedRate > 0 {
		burst := *sharedBurst
		if burst <= 0 {
			burst = *sharedRate
		}
		policy = workload.BudgetedPolicy{Inner: policy, Budget: workload.NewRetryBudget(*sharedRate, burst)}
	}

	engCfg.LockWaitTimeout = *lockTimeout
	if *admit {
		acfg := admission.Config{}
		if *admitLimit > 0 {
			acfg.InitialLimit = *admitLimit
		}
		if *admitQueue > 0 {
			acfg.MaxQueue = *admitQueue
		}
		engCfg.Admission = &acfg
	}
	var faults *faultinject.Registry
	if *chaos {
		faults = faultinject.New(*seed)
		engCfg.Faults = faults
	}

	// The recorder is created disabled so the bulk load below does not
	// fill the rings; it is switched on for the workload run only.
	var rec *trace.Recorder
	if *tracePath != "" {
		rec = trace.New(trace.Options{Disabled: true})
		engCfg.Tracer = rec
	}

	// Load on free hardware, then install the measured profile.
	measured := engCfg.Res
	engCfg.Res.VirtualCPUs = 0

	engCfg.AsyncCommit = *walAsync

	var dev wal.LogDevice
	if *walPath != "" {
		if *walSegSize > 0 {
			// Segmented layout: -wal names a directory of wal.NNNN files.
			sl, serr := wal.OpenSegmentLog(*walPath, *walSegSize)
			if serr != nil {
				fmt.Fprintln(os.Stderr, "smallbank:", serr)
				os.Exit(1)
			}
			defer sl.Close()
			dev = sl
		} else {
			fd, ferr := wal.OpenFileDevice(*walPath)
			if ferr != nil {
				fmt.Fprintln(os.Stderr, "smallbank:", ferr)
				os.Exit(1)
			}
			defer fd.Close()
			dev = fd
		}
		engCfg.WAL.Device = dev
	}

	var db *engine.DB
	if dev != nil && dev.Size() > 0 {
		// The file already holds a database image: rebuild it instead of
		// loading. The customer population is whatever the original run
		// loaded, so derive -customers from the recovered Account table.
		var rep *engine.RecoveryReport
		db, rep, err = engine.Recover(dev, engCfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "smallbank: recover:", err)
			os.Exit(1)
		}
		accounts := 0
		if err := db.ScanLatest(smallbank.TableAccount, func(core.Value, core.Record) bool {
			accounts++
			return true
		}); err != nil {
			fmt.Fprintln(os.Stderr, "smallbank:", err)
			os.Exit(1)
		}
		*customers = accounts
		if *hotspot > *customers {
			*hotspot = *customers
		}
		fmt.Fprintf(os.Stderr,
			"recovered %s: %d segments, %d checkpoint rows, %d commits replayed, %d torn bytes truncated, CSN %d, %d customers\n",
			*walPath, rep.Log.Segments, rep.CheckpointRows, rep.ReplayedCommits, rep.Log.TornBytes, rep.HighCSN, *customers)
	} else {
		db = engine.Open(engCfg)
		if err := smallbank.CreateSchema(db); err != nil {
			fmt.Fprintln(os.Stderr, "smallbank:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "loading %d customers...\n", *customers)
		if _, err := smallbank.Load(db, smallbank.LoadConfig{Customers: *customers, Seed: *seed}); err != nil {
			fmt.Fprintln(os.Stderr, "smallbank:", err)
			os.Exit(1)
		}
	}
	defer db.Close()
	db.SetResources(measured)
	// Armed after the bulk load: the loader's big batch transactions
	// should not burn the measured run's per-transaction budget.
	if *txDeadline > 0 {
		db.SetDefaultTxDeadline(*txDeadline)
	}

	if *pprofAddr != "" {
		// Standard pprof endpoints plus the engine's transaction metrics
		// as an expvar, so `curl host/debug/vars` shows live counters.
		expvar.Publish("sicost_txn_metrics", expvar.Func(func() any { return db.TxnMetrics() }))
		// Durability-lag gauge: how far published commits run ahead of the
		// device (always 0 in sync mode once quiescent; the async mode's
		// exposure window otherwise), plus the raw flush/sync counters.
		expvar.Publish("sicost_wal", expvar.Func(func() any {
			durable, commit := db.DurableSeq(), db.CommitSeq()
			return map[string]any{
				"CommitSeq":     commit,
				"DurableSeq":    durable,
				"DurabilityLag": commit - durable,
				"Stats":         db.WAL().Stats(),
				// Fuzzy-checkpoint gauges: chain shape, dirty-set size,
				// cumulative commit-barrier pause (see OBSERVABILITY.md §9).
				"Checkpoint": db.CheckpointStats(),
			}
		}))
		if lim := db.Admission(); lim != nil {
			// Live admission gauges: concurrency limit, queue depth, shed
			// and deadline-expired counts, breaker state (see
			// OBSERVABILITY.md, sicost_admission).
			expvar.Publish("sicost_admission", expvar.Func(func() any { return lim.Stats() }))
		}
		go func() {
			fmt.Fprintf(os.Stderr, "pprof/expvar: http://%s/debug/pprof http://%s/debug/vars\n", *pprofAddr, *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "smallbank: pprof server:", err)
			}
		}()
	}

	var chk *checker.Checker
	var ochk *onlinecheck.Checker
	if *check && !*chaos {
		// In chaos mode RunChaos attaches its own checker. Outside it,
		// -check runs both verdict paths: the offline MVSG checker fed by
		// the engine observer hooks, and the online windowed checker fed
		// by the live trace stream — each cross-validating the other on
		// the same execution. Under 2PL reads legitimately see versions
		// newer than the begin point, so the SI read/write rules only
		// apply to the snapshot-based modes.
		chk = checker.New()
		db.SetObserver(chk)
		ochk = onlinecheck.New(onlinecheck.Config{SIRules: engCfg.Mode != core.Strict2PL})
		if *pprofAddr != "" {
			expvar.Publish("sicost_onlinecheck", expvar.Func(func() any { return ochk.Stats() }))
		}
	}

	mix := workload.UniformMix()
	if *balMix > 0 {
		mix = workload.BalanceHeavyMix(*balMix)
	} else if *chaos {
		// Leave the mix to RunChaos: its default excludes WriteCheck so
		// the balance-conservation invariant is exactly checkable.
		mix = workload.Mix{}
	}
	if !*open {
		fmt.Fprintf(os.Stderr, "running %s on %s/%s: MPL %d, hotspot %d/%d, %v+%v...\n",
			strategy.Name, *platform, *mode, *mpl, *hotspot, *customers, *ramp, *measure)
	} else {
		fmt.Fprintf(os.Stderr, "running %s on %s/%s (open system)...\n", strategy.Name, *platform, *mode)
	}

	cfg := workload.Config{
		Strategy: strategy, MPL: *mpl, Customers: *customers,
		HotspotSize: *hotspot, HotspotProb: *hotProb, Mix: mix,
		Ramp: *ramp, Measure: *measure, Seed: *seed,
		MaxRetries: *retries, Retry: policy,
		Check: ochk,
	}

	rec.SetEnabled(true) // no-op when -trace is unset (nil recorder)

	if *open {
		if *chaos {
			fmt.Fprintln(os.Stderr, "smallbank: -open and -chaos are mutually exclusive")
			os.Exit(2)
		}
		runOpenSystem(db, openRun{
			cfg: workload.OpenConfig{
				Strategy: strategy, Rate: *rate, Customers: *customers,
				HotspotSize: *hotspot, HotspotProb: *hotProb, Mix: mix,
				Ramp: *ramp, Measure: *measure, Seed: *seed,
				MaxRetries: *retries, Retry: policy,
				MaxInFlight: *maxInFlight,
				Check:       ochk,
			},
			policy:    policy,
			rec:       rec,
			tracePath: *tracePath,
			offline:   chk,
			expectSer: engCfg.Mode != core.SnapshotFUW ||
				(strategy.GuaranteesSerializable() && strategy.SoundOn(engCfg.Platform)),
		})
		return
	}

	var res *workload.Result
	var chaosRep *workload.ChaosReport
	if *chaos {
		// 2PL and SSI guarantee serializable executions regardless of
		// strategy; under plain SI only a sound serializable strategy
		// does. Faults must never change that.
		expectSer := engCfg.Mode != core.SnapshotFUW ||
			(strategy.GuaranteesSerializable() && strategy.SoundOn(engCfg.Platform))
		chaosRep, err = workload.RunChaos(db, cfg, workload.ChaosConfig{
			Specs:              workload.DefaultFaultPlan(),
			Check:              *check,
			ExpectSerializable: expectSer && *check,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "smallbank:", err)
			os.Exit(1)
		}
		res = chaosRep.Result
	} else {
		res, err = workload.Run(db, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "smallbank:", err)
			os.Exit(1)
		}
	}

	fmt.Printf("throughput: %.1f TPS (%d commits, %d aborts in %v)\n",
		res.TPS, res.Commits, res.Aborts, res.Measured)
	fmt.Printf("mean response time: %v\n\n", res.MeanLatency.Round(time.Microsecond))
	fmt.Printf("%-18s %10s %10s %10s %10s %12s %10s\n",
		"type", "commits", "serial", "deadlock", "app", "abort-rate", "p95")
	for t := 0; t < smallbank.NumTxnTypes; t++ {
		st := &res.PerType[t]
		fmt.Printf("%-18s %10d %10d %10d %10d %11.2f%% %10v\n",
			smallbank.TxnType(t).String(), st.Commits,
			st.Aborts[core.AbortSerialization], st.Aborts[core.AbortDeadlock],
			st.Aborts[core.AbortApplication],
			100*st.SerializationAbortRate(),
			st.Latency.Quantile(0.95).Round(time.Microsecond))
	}
	fmt.Printf("\nretries: %d (backoff time %v, give-ups %d, policy %s)\n",
		res.Retries, res.BackoffTime.Round(time.Microsecond), res.GiveUps, policy.Name())

	if *walAsync {
		// Quiesce the async tail so the stats and the checkpoint below
		// cover every published commit.
		db.WAL().Drain()
	}
	ws := db.WAL().Stats()
	fmt.Printf("WAL: %d flushes, %d syncs, %d records (avg batch %.1f, %.1f commits/sync), %d bytes\n",
		ws.Flushes, ws.Syncs, ws.Records, ws.AvgBatch(), ws.CommitsPerSync(), ws.Bytes)
	if *walAsync {
		fmt.Printf("async commit: durable CSN %d / committed CSN %d after drain\n",
			db.DurableSeq(), db.CommitSeq())
	}
	if dev != nil {
		if *ckptBytes > 0 {
			// Fuzzy mode: seal the run with one more incremental link (a
			// full re-root retires covered segments when -retire is on)
			// and report the chain the next -wal run will fold.
			csn, err := db.CheckpointIncremental()
			if err != nil {
				fmt.Fprintln(os.Stderr, "smallbank: checkpoint:", err)
				os.Exit(1)
			}
			cs := db.CheckpointStats()
			ws = db.WAL().Stats()
			fmt.Printf("checkpoint: CSN %d, chain %d links (%d full re-roots of %d total), %d bytes live\n",
				csn, cs.ChainLinks, cs.FullLinks, cs.Links, dev.Size())
			fmt.Printf("checkpoint pauses: %v total (%v last); retired %d segments, archived %d\n",
				time.Duration(cs.PauseNS).Round(time.Microsecond),
				time.Duration(cs.LastPauseNS).Round(time.Microsecond),
				ws.RetiredSegments, ws.ArchivedSegments)
		} else {
			// Bound the log file so the next -wal run recovers from a compact
			// checkpoint instead of replaying this whole run.
			csn, err := db.Checkpoint()
			if err != nil {
				fmt.Fprintln(os.Stderr, "smallbank: checkpoint:", err)
				os.Exit(1)
			}
			fmt.Printf("checkpoint: CSN %d written to %s (%d bytes)\n", csn, *walPath, dev.Size())
		}
	}

	lc := res.Contention.Lock
	maxStripe, maxWaits := 0, uint64(0)
	for i, w := range lc.PerStripeWaits {
		if w > maxWaits {
			maxStripe, maxWaits = i, w
		}
	}
	fmt.Printf("locks: %d stripes, %d fast-path, %d waits (%v blocked), %d deadlock victims",
		lc.Stripes, lc.FastPath, lc.Waits, lc.WaitTime.Round(time.Microsecond), lc.Deadlocks)
	if lc.Waits > 0 {
		fmt.Printf("; hottest stripe %d (%d waits)", maxStripe, maxWaits)
	}
	fmt.Printf("\ncommit sequencer: %d publish waits\n", res.Contention.CommitPublishWaits)

	eng := res.Engine
	fmt.Printf("\nengine aborts by taxonomy reason (attribution %.1f%%):\n", 100*res.AbortAttribution())
	for r := core.AbortNone + 1; r <= core.AbortOther; r++ {
		if n := eng.Aborts[r]; n > 0 {
			fmt.Printf("  %-15s %d\n", r, n)
		}
	}
	if eng.Aborts.Total() == 0 {
		fmt.Println("  (none)")
	}
	if w := eng.LockWait; w.Count > 0 {
		fmt.Printf("lock-wait histogram: %d waits, mean %v, p95 %v, max %v\n",
			w.Count, w.Mean().Round(time.Microsecond),
			w.Quantile(0.95).Round(time.Microsecond), w.Max().Round(time.Microsecond))
	}
	if c := eng.CommitLatency; c.Count > 0 {
		fmt.Printf("commit latency: %d updating commits, mean %v, p95 %v, max %v\n",
			c.Count, c.Mean().Round(time.Microsecond),
			c.Quantile(0.95).Round(time.Microsecond), c.Max().Round(time.Microsecond))
	}

	if rec != nil {
		rec.SetEnabled(false)
		// With -check attached, the run's subscription consumed the rings
		// and handed the delivered stream back via Result.TraceEvents;
		// only post-run events (the checkpoint) are still in the rings.
		events := append(res.TraceEvents, rec.Drain()...)
		if err := writeTrace(events, rec.Dropped(), *tracePath); err != nil {
			fmt.Fprintln(os.Stderr, "smallbank:", err)
			os.Exit(1)
		}
	}

	var offRep *checker.Report
	if chk != nil {
		offRep = chk.Analyze()
		fmt.Printf("\nserializability: %s", offRep.Describe())
	}
	if res.Check != nil {
		fmt.Printf("online check: %s", res.Check.Describe())
		st := res.Check.Stats
		fmt.Printf("online window: %d events, peak %d committed + %d in-flight, %d retired, watermark %d\n",
			st.Events, st.MaxWindow, st.MaxPending, st.Retired, st.Watermark)
		if offRep != nil && offRep.Serializable != res.Check.Serializable {
			fmt.Fprintln(os.Stderr, "warning: online and offline checkers disagree on serializability")
		}
		// A violation verdict fails the run only when the configuration
		// promises serializable executions: 2PL and SSI always, plain SI
		// only under a sound serializable strategy (§II-C). Under bare SI
		// the anomalies ARE the experiment.
		expectSer := engCfg.Mode != core.SnapshotFUW ||
			(strategy.GuaranteesSerializable() && strategy.SoundOn(engCfg.Platform))
		if expectSer && (!res.Check.Serializable || res.Check.SIViolations != 0) {
			fmt.Fprintln(os.Stderr, "smallbank: online checker detected isolation violations")
			os.Exit(1)
		}
	}

	if chaosRep != nil {
		fmt.Printf("\nchaos: %d faults fired\n", chaosRep.Fired())
		for _, fs := range chaosRep.FaultStats {
			fmt.Printf("  %-26s %-6s %8d hits %8d fired\n", fs.Point, fs.Action, fs.Hits, fs.Fired)
		}
		if chaosRep.ConservationChecked {
			fmt.Printf("conservation: initial %d %+d committed = %d final\n",
				chaosRep.InitialTotal, res.CommittedDelta, chaosRep.FinalTotal)
		} else {
			fmt.Println("conservation: not checked (WriteCheck in mix)")
		}
		fmt.Printf("lock audit: %d held, %d queued\n", chaosRep.HeldLocks, chaosRep.QueuedLocks)
		if chaosRep.CheckerReport != nil {
			fmt.Printf("serializability under faults: %s", chaosRep.CheckerReport.Describe())
		}
		if !chaosRep.OK() {
			fmt.Println("\nINVARIANT VIOLATIONS:")
			for _, v := range chaosRep.Violations {
				fmt.Println("  -", v)
			}
			os.Exit(1)
		}
		fmt.Println("invariants: all held")
	}
}

// openRun bundles the open-system mode's configuration.
type openRun struct {
	cfg       workload.OpenConfig
	policy    workload.RetryPolicy
	rec       *trace.Recorder
	tracePath string
	offline   *checker.Checker
	expectSer bool
}

// runOpenSystem drives one open-system run and prints the overload
// accounting: goodput against offered load, shed/deadline/drop
// attribution, response-time quantiles and the admission controller's
// state. It exits non-zero on an admission-gate leak (a waiter or slot
// surviving the run) or on a checker violation the configuration
// promised could not happen — the assertions `make overload` relies on.
func runOpenSystem(db *engine.DB, r openRun) {
	fmt.Fprintf(os.Stderr, "open-system run: %.0f arrivals/s offered, hotspot %d/%d, %v+%v...\n",
		r.cfg.Rate, r.cfg.HotspotSize, r.cfg.Customers, r.cfg.Ramp, r.cfg.Measure)

	res, err := workload.RunOpen(db, r.cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smallbank:", err)
		os.Exit(1)
	}

	offered := float64(res.Arrivals) / res.Measured.Seconds()
	fmt.Printf("offered: %.1f/s (%d arrivals), goodput: %.1f TPS (%d commits, %d aborts in %v)\n",
		offered, res.Arrivals, res.Goodput, res.Commits, res.Aborts, res.Measured)
	fmt.Printf("overload: %d shed, %d deadline-expired, %d dropped at driver backstop, peak %d in flight\n",
		res.Shed, res.DeadlineExpired, res.Dropped, res.InFlightPeak)
	fmt.Printf("retries: %d, give-ups %d (%d by shared budget, policy %s)\n",
		res.Retries, res.GiveUps, res.BudgetGiveUps, r.policy.Name())
	if res.Latency.Count > 0 {
		fmt.Printf("response time: mean %v, p50 %v, p95 %v, p99 %v\n",
			res.Latency.Mean().Round(time.Microsecond),
			res.Latency.Quantile(0.50).Round(time.Microsecond),
			res.Latency.Quantile(0.95).Round(time.Microsecond),
			res.Latency.Quantile(0.99).Round(time.Microsecond))
	}
	fmt.Println("\naborts by taxonomy reason:")
	printed := false
	for rr := core.AbortNone + 1; rr <= core.AbortOther; rr++ {
		if n := res.AbortsByReason[rr]; n > 0 {
			fmt.Printf("  %-15s %d\n", rr, n)
			printed = true
		}
	}
	if !printed {
		fmt.Println("  (none)")
	}

	if lim := db.Admission(); lim != nil {
		st := lim.Stats()
		fmt.Printf("\nadmission: limit %d, breaker %s (%d trips, %d grows, %d shrinks)\n",
			st.Gate.Limit, st.Breaker, st.Trips, st.Grows, st.Shrinks)
		fmt.Printf("admission gate: %d admitted, %d queued (avg wait %v), %d shed, %d expired in queue\n",
			st.Gate.Admitted, st.Gate.Queued, st.Gate.AvgWait.Round(time.Microsecond),
			st.Gate.Shed, st.Gate.Expired)
		// The leak assertion: after RunOpen returns, every virtual client
		// has finished, so a held slot or queued waiter is a bug.
		if st.Gate.InFlight != 0 || st.Gate.QueueDepth != 0 {
			fmt.Fprintf(os.Stderr, "smallbank: admission gate leak: %d in flight, %d queued after drain\n",
				st.Gate.InFlight, st.Gate.QueueDepth)
			os.Exit(1)
		}
	}

	ws := db.WAL().Stats()
	fmt.Printf("\nWAL: %d flushes, %d syncs, %d records (avg batch %.1f), %d bytes\n",
		ws.Flushes, ws.Syncs, ws.Records, ws.AvgBatch(), ws.Bytes)

	if r.rec != nil {
		r.rec.SetEnabled(false)
		events := append(res.TraceEvents, r.rec.Drain()...)
		if err := writeTrace(events, r.rec.Dropped(), r.tracePath); err != nil {
			fmt.Fprintln(os.Stderr, "smallbank:", err)
			os.Exit(1)
		}
	}

	var offRep *checker.Report
	if r.offline != nil {
		offRep = r.offline.Analyze()
		fmt.Printf("\nserializability: %s", offRep.Describe())
	}
	if res.Check != nil {
		fmt.Printf("online check: %s", res.Check.Describe())
		if offRep != nil && offRep.Serializable != res.Check.Serializable {
			fmt.Fprintln(os.Stderr, "warning: online and offline checkers disagree on serializability")
		}
		if r.expectSer && (!res.Check.Serializable || res.Check.SIViolations != 0) {
			fmt.Fprintln(os.Stderr, "smallbank: online checker detected isolation violations")
			os.Exit(1)
		}
	}
}

// runCrashChaos drives the crash/recover harness and prints the
// per-cycle durability audit. Exits non-zero if any cycle violates the
// durability contract.
func runCrashChaos(mode core.CCMode, platform core.Platform, cycles int, seed int64, async bool, segSize int64, fuzzy bool) {
	fmt.Fprintf(os.Stderr, "crash chaos: %d crash/recover cycles, mode %s, seed %d, async %v, segment size %d, fuzzy %v...\n",
		cycles, mode, seed, async, segSize, fuzzy)
	rep, err := workload.RunCrashChaos(workload.CrashChaosConfig{
		Mode: mode, Platform: platform, Cycles: cycles, Seed: seed,
		Async: async, SegmentSize: segSize, Fuzzy: fuzzy,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "smallbank:", err)
		os.Exit(1)
	}
	fmt.Printf("%5s %-22s %6s %8s %8s %6s %8s %8s %8s %5s %5s %5s\n",
		"cycle", "crash point", "fired", "commits", "aborts", "torn", "replayed", "highCSN", "durable", "segs", "ckpt", "chain")
	for _, c := range rep.Cycles {
		ckpt := ""
		if c.Checkpointed {
			ckpt = "yes"
		}
		chain := ""
		if c.ChainLinks > 0 {
			chain = fmt.Sprintf("%d", c.ChainLinks)
		}
		fmt.Printf("%5d %-22s %6d %8d %8d %6d %8d %8d %8d %5d %5s %5s\n",
			c.Cycle, c.Point, c.Fired, c.Commits, c.Aborts,
			c.TornBytes, c.ReplayedCommits, c.HighCSN, c.DurableSeq, c.Segments, ckpt, chain)
	}
	fmt.Printf("\ncrashes fired: %d/%d cycles\n", rep.CrashesFired(), len(rep.Cycles))
	fmt.Printf("conservation: initial %d %+d committed = %d final\n",
		rep.InitialTotal, rep.Ledger, rep.FinalTotal)
	fmt.Printf("post-chaos resume: %d commits\n", rep.ResumeCommits)
	if !rep.OK() {
		fmt.Println("\nDURABILITY VIOLATIONS:")
		for _, v := range rep.Violations {
			fmt.Println("  -", v)
		}
		os.Exit(1)
	}
	fmt.Println("durability contract: held across all cycles")
}

// writeTrace sanity-checks the captured stream against the lifecycle
// invariants and writes it as JSONL. Ring overflow is reported but is
// not an error (the trace just has gaps).
func writeTrace(events []trace.Event, dropped uint64, path string) error {
	// A complete stream must satisfy the strict lifecycle invariants;
	// with ring overflow, only the schema-level checks can hold.
	if err := trace.ValidateWith(events, trace.ValidateOptions{AllowGaps: dropped > 0}); err != nil {
		return fmt.Errorf("trace validation: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteJSONL(f, events); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("\ntrace: %d events -> %s", len(events), path)
	if dropped > 0 {
		fmt.Printf(" (%d dropped on ring overflow)", dropped)
	}
	fmt.Println()
	return nil
}

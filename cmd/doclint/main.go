// Command doclint enforces the repository's documentation floor: every
// package must carry a package doc comment, and the comment must open
// with the godoc convention — "Package <name> ..." for libraries,
// "Command <name> ..." for main packages. `make docs` runs it over the
// whole module alongside go vet.
//
// Usage:
//
//	doclint [root ...]   # default: .
//
// Exit status is 1 if any package is missing or misleads its doc.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	var bad int
	for _, root := range roots {
		problems, err := lint(root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			os.Exit(1)
		}
		for _, p := range problems {
			fmt.Println(p)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d package(s) flagged\n", bad)
		os.Exit(1)
	}
}

// lint walks root and checks every directory holding non-test Go files.
func lint(root string) ([]string, error) {
	dirs := map[string][]string{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			dirs[dir] = append(dirs[dir], path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var sorted []string
	for dir := range dirs {
		sorted = append(sorted, dir)
	}
	sort.Strings(sorted)
	var problems []string
	for _, dir := range sorted {
		if p := lintDir(dir, dirs[dir]); p != "" {
			problems = append(problems, p)
		}
	}
	return problems, nil
}

// lintDir checks one package directory: at least one file must carry a
// package doc comment with the conventional opening.
func lintDir(dir string, files []string) string {
	fset := token.NewFileSet()
	var pkgName string
	var doc string
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			return fmt.Sprintf("%s: %v", path, err)
		}
		pkgName = f.Name.Name
		if f.Doc != nil && doc == "" {
			doc = f.Doc.Text()
		}
	}
	if doc == "" {
		return fmt.Sprintf("%s: package %s has no package doc comment", dir, pkgName)
	}
	want := "Package " + pkgName + " "
	if pkgName == "main" {
		want = "Command "
	}
	if !strings.HasPrefix(doc, want) {
		return fmt.Sprintf("%s: package %s doc must start with %q (got %q)",
			dir, pkgName, strings.TrimSpace(want), firstLine(doc))
	}
	return ""
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

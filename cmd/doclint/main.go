// Command doclint enforces the repository's documentation floor. Two
// layers of checks:
//
// Package docs: every package must carry a package doc comment, and
// the comment must open with the godoc convention — "Package <name>
// ..." for libraries, "Command <name> ..." for main packages.
//
// Docs cross-references: every file under docs/ is checked against the
// code it describes, so the operational guides cannot silently rot:
//
//   - every `internal/...` path mentioned must exist in the repository;
//   - every `-flag` token in inline code spans, and on `./cmd/...`
//     invocation lines inside fenced blocks, must be a flag some
//     command actually registers (flag.String/Bool/... in cmd/);
//   - every `sicost_*` expvar name mentioned must be published by a
//     command (a "sicost_..." string literal in cmd/ sources);
//   - every fault-point name mentioned in an inline code span (a
//     slash-separated lowercase path like `wal/commit` whose first
//     segment is a namespace some Fault* constant declares) must match
//     a declared fault point (`FaultX = "ns/..."` in non-test sources).
//
// `make docs` runs it over the whole module alongside go vet.
//
// Usage:
//
//	doclint [root ...]   # default: .
//
// Exit status is 1 if any package or docs reference is flagged.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	var bad int
	for _, root := range roots {
		problems, err := lint(root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			os.Exit(1)
		}
		docProblems, err := lintDocs(root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			os.Exit(1)
		}
		problems = append(problems, docProblems...)
		for _, p := range problems {
			fmt.Println(p)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d problem(s) flagged\n", bad)
		os.Exit(1)
	}
}

// lint walks root and checks every directory holding non-test Go files.
func lint(root string) ([]string, error) {
	dirs := map[string][]string{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			dirs[dir] = append(dirs[dir], path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var sorted []string
	for dir := range dirs {
		sorted = append(sorted, dir)
	}
	sort.Strings(sorted)
	var problems []string
	for _, dir := range sorted {
		if p := lintDir(dir, dirs[dir]); p != "" {
			problems = append(problems, p)
		}
	}
	return problems, nil
}

// lintDir checks one package directory: at least one file must carry a
// package doc comment with the conventional opening.
func lintDir(dir string, files []string) string {
	fset := token.NewFileSet()
	var pkgName string
	var doc string
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			return fmt.Sprintf("%s: %v", path, err)
		}
		pkgName = f.Name.Name
		if f.Doc != nil && doc == "" {
			doc = f.Doc.Text()
		}
	}
	if doc == "" {
		return fmt.Sprintf("%s: package %s has no package doc comment", dir, pkgName)
	}
	want := "Package " + pkgName + " "
	if pkgName == "main" {
		want = "Command "
	}
	if !strings.HasPrefix(doc, want) {
		return fmt.Sprintf("%s: package %s doc must start with %q (got %q)",
			dir, pkgName, strings.TrimSpace(want), firstLine(doc))
	}
	return ""
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// --- docs/*.md cross-reference checks ---

var (
	internalPathRe = regexp.MustCompile(`internal/[A-Za-z0-9_./-]*[A-Za-z0-9_]`)
	inlineSpanRe   = regexp.MustCompile("`([^`\n]+)`")
	flagTokenRe    = regexp.MustCompile(`(?:^|[\s|\[])(-[a-z][a-z0-9-]*)`)
	flagDeclRe     = regexp.MustCompile(`flag\.[A-Za-z0-9]+\(\s*"([^"]+)"`)
	metricDeclRe   = regexp.MustCompile(`"(sicost_[a-z_]+)"`)
	metricRefRe    = regexp.MustCompile(`sicost_[a-z_]+`)
	faultDeclRe    = regexp.MustCompile(`Fault[A-Za-z0-9]*\s*=\s*"([a-z0-9/-]+)"`)
	faultRefRe     = regexp.MustCompile(`^[a-z][a-z0-9-]*(?:/[a-z0-9-]+)+$`)
)

// lintDocs verifies that every file under <root>/docs references only
// code that exists: internal/ paths, registered cmd flags, published
// sicost_* expvar names. Absent a docs directory it is a no-op.
func lintDocs(root string) ([]string, error) {
	docsDir := filepath.Join(root, "docs")
	entries, err := os.ReadDir(docsDir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	flags, metrics, err := collectCmdDecls(filepath.Join(root, "cmd"))
	if err != nil {
		return nil, err
	}
	faults, err := collectFaultDecls(root)
	if err != nil {
		return nil, err
	}
	var problems []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".md") {
			continue
		}
		path := filepath.Join(docsDir, e.Name())
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		problems = append(problems, lintDoc(root, path, string(b), flags, metrics, faults)...)
	}
	return problems, nil
}

// collectCmdDecls scans cmd/ sources for flag registrations
// (flag.String("name", ...) and friends) and published sicost_*
// expvar names, the ground truth the docs are checked against.
func collectCmdDecls(cmdDir string) (flags, metrics map[string]bool, err error) {
	flags, metrics = map[string]bool{}, map[string]bool{}
	if _, serr := os.Stat(cmdDir); os.IsNotExist(serr) {
		return flags, metrics, nil
	}
	err = filepath.WalkDir(cmdDir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range flagDeclRe.FindAllStringSubmatch(string(b), -1) {
			flags[m[1]] = true
		}
		for _, m := range metricDeclRe.FindAllStringSubmatch(string(b), -1) {
			metrics[m[1]] = true
		}
		return nil
	})
	return flags, metrics, err
}

// collectFaultDecls scans the module's non-test Go sources for
// fault-point constants (FaultX = "ns/point") and returns the declared
// names plus the set of first-segment namespaces they claim; doc spans
// shaped like fault points inside a claimed namespace must resolve
// (spans outside any claimed namespace are left alone — they are paths
// or something else entirely).
func collectFaultDecls(root string) (map[string]bool, error) {
	points := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range faultDeclRe.FindAllStringSubmatch(string(b), -1) {
			if strings.Contains(m[1], "/") {
				points[m[1]] = true
			}
		}
		return nil
	})
	return points, err
}

// faultNamespaces derives the namespace set (first path segment) from
// the declared fault points.
func faultNamespaces(points map[string]bool) map[string]bool {
	ns := map[string]bool{}
	for p := range points {
		ns[p[:strings.IndexByte(p, '/')]] = true
	}
	return ns
}

// lintDoc checks one markdown file. Flag tokens are collected from
// inline code spans and from ./cmd/ invocation lines inside fenced
// blocks (with backslash continuations joined); prose is never
// scanned, so hyphenated English ("point-in-time") cannot false-fire.
func lintDoc(root, path, text string, flags, metrics, faults map[string]bool) []string {
	var problems []string
	flag := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf("%s: ", path)+fmt.Sprintf(format, args...))
	}

	for _, tok := range dedup(internalPathRe.FindAllString(text, -1)) {
		if strings.Contains(tok, "...") {
			continue // "internal/..." wildcard, not a path
		}
		if _, err := os.Stat(filepath.Join(root, tok)); err != nil {
			flag("references %s, which does not exist", tok)
		}
	}

	prose, fenced := splitFences(text)
	var flagToks []string
	for _, span := range inlineSpanRe.FindAllStringSubmatch(prose, -1) {
		for _, m := range flagTokenRe.FindAllStringSubmatch(span[1], -1) {
			flagToks = append(flagToks, m[1])
		}
	}
	for _, line := range fenced {
		if !strings.Contains(line, "./cmd/") {
			continue
		}
		for _, m := range flagTokenRe.FindAllStringSubmatch(line, -1) {
			flagToks = append(flagToks, m[1])
		}
	}
	for _, tok := range dedup(flagToks) {
		if !flags[strings.TrimPrefix(tok, "-")] {
			flag("mentions flag %s, which no command registers", tok)
		}
	}

	for _, tok := range dedup(metricRefRe.FindAllString(text, -1)) {
		if !metrics[tok] {
			flag("mentions expvar %s, which no command publishes", tok)
		}
	}

	// Fault-point spans: an inline code span that looks like a fault
	// point and sits in a namespace some Fault* constant claims must be
	// a declared point, so the docs cannot drift from the injectable
	// surface.
	ns := faultNamespaces(faults)
	var faultToks []string
	for _, span := range inlineSpanRe.FindAllStringSubmatch(prose, -1) {
		tok := span[1]
		if faultRefRe.MatchString(tok) && ns[tok[:strings.IndexByte(tok, '/')]] {
			faultToks = append(faultToks, tok)
		}
	}
	for _, tok := range dedup(faultToks) {
		if !faults[tok] {
			flag("mentions fault point %s, which no Fault constant declares", tok)
		}
	}
	return problems
}

// splitFences separates a markdown document into its prose (fenced
// blocks removed) and the fenced-block logical lines, joining
// backslash-continued command lines so a wrapped invocation's flags
// are checked with it.
func splitFences(text string) (prose string, fenced []string) {
	var keep []string
	inFence := false
	cont := ""
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if !inFence {
			keep = append(keep, line)
			continue
		}
		if strings.HasSuffix(line, "\\") {
			cont += strings.TrimSuffix(line, "\\") + " "
			continue
		}
		fenced = append(fenced, cont+line)
		cont = ""
	}
	if cont != "" {
		fenced = append(fenced, cont)
	}
	return strings.Join(keep, "\n"), fenced
}

func dedup(toks []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, t := range toks {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

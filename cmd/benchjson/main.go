// Command benchjson converts `go test -bench` text output into a stable
// JSON document, so benchmark results can be committed and diffed
// (BENCH_engine.json records the engine's parallel-commit scaling).
//
// Usage:
//
//	go test -bench . ./internal/engine | benchjson -o BENCH.json
//	benchjson -o BENCH.json -note "..." baseline=old.txt current=new.txt
//
// Positional arguments are label=path pairs, each parsed as one labelled
// result set; with no arguments, stdin is parsed under the label
// "bench". Environment header lines (goos, goarch, pkg, cpu) are lifted
// into the document.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// ResultSet is one labelled bench-output file.
type ResultSet struct {
	Label      string      `json:"label"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Document is the emitted JSON root.
type Document struct {
	Note string      `json:"note,omitempty"`
	Sets []ResultSet `json:"sets"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	note := flag.String("note", "", "free-form annotation stored in the document")
	flag.Parse()

	doc := Document{Note: *note}
	if flag.NArg() == 0 {
		set, err := parse("bench", os.Stdin)
		if err != nil {
			fatal(err)
		}
		doc.Sets = append(doc.Sets, set)
	}
	for _, arg := range flag.Args() {
		label, path, ok := strings.Cut(arg, "=")
		if !ok {
			fatal(fmt.Errorf("argument %q is not label=path", arg))
		}
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		set, err := parse(label, f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		doc.Sets = append(doc.Sets, set)
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
}

// parse reads one bench-output stream.
func parse(label string, r io.Reader) (ResultSet, error) {
	set := ResultSet{Label: label}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			set.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			set.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			set.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			set.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok, err := parseLine(line)
			if err != nil {
				return set, err
			}
			if ok {
				set.Benchmarks = append(set.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return set, err
	}
	if len(set.Benchmarks) == 0 {
		return set, fmt.Errorf("no benchmark lines found")
	}
	return set, nil
}

// parseLine parses one result line:
//
//	BenchmarkX/sub-8   1000  1234 ns/op  0.5 aborts/op  64 B/op  2 allocs/op
//
// The -N GOMAXPROCS suffix (absent at GOMAXPROCS=1) is kept as part of
// the name. Lines without a runs column (e.g. "BenchmarkX") are skipped.
func parseLine(line string) (Benchmark, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false, nil
	}
	b := Benchmark{
		Name:    strings.TrimPrefix(fields[0], "Benchmark"),
		Metrics: map[string]float64{},
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false, nil // summary or status line
	}
	b.Runs = runs
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false, fmt.Errorf("bad value in %q: %w", line, err)
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = val
		} else {
			b.Metrics[unit] = val
		}
	}
	if len(b.Metrics) == 0 {
		b.Metrics = nil
	}
	return b, true, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"sicost/internal/server"
)

// TestSisqldEndToEnd drives the real binary over real TCP: build it,
// start it on an ephemeral port, hammer it with SmallBank transfer
// clients, SIGTERM it mid-load, and assert the drain completes with a
// clean exit code and no leak reported. This is the deployment story —
// process boundary, signal handling, socket teardown — that in-process
// tests cannot vouch for.
func TestSisqldEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the sisqld binary")
	}
	bin := filepath.Join(t.TempDir(), "sisqld")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0", "-customers", "100",
		"-idle-timeout", "2s", "-stmt-deadline", "2s", "-drain", "1s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The first stdout line announces the ephemeral address.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no listening line; stderr:\n%s", stderr.String())
	}
	line := sc.Text()
	addr := strings.TrimPrefix(line, "sisqld: listening on ")
	if addr == line {
		t.Fatalf("unexpected first line %q", line)
	}
	// Keep draining stdout so the process never blocks on a full pipe,
	// and capture the drain summary for the final assertions.
	var outMu sync.Mutex
	var outRest []string
	go func() {
		for sc.Scan() {
			outMu.Lock()
			outRest = append(outRest, sc.Text())
			outMu.Unlock()
		}
	}()

	// The load: clients running zero-sum transfers until the server goes
	// away. Tolerant of every failure mode — the assertion is on the
	// server's exit, not on any individual client's fortune.
	var commits atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for id := 0; id < 8; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id) + 1))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if runTransfers(addr, rng, stop, &commits) {
					return // server gone for good
				}
			}
		}(id)
	}

	// Let the storm establish, then deliver the signal under load.
	deadline := time.Now().Add(3 * time.Second)
	for commits.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if commits.Load() == 0 {
		t.Fatalf("no client ever committed; stderr:\n%s", stderr.String())
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	werr := cmd.Wait()
	close(stop)
	wg.Wait()
	if werr != nil {
		t.Fatalf("sisqld exited dirty: %v\nstderr:\n%s", werr, stderr.String())
	}
	outMu.Lock()
	summary := strings.Join(outRest, "\n")
	outMu.Unlock()
	if !strings.Contains(summary, "sisqld: drained:") {
		t.Fatalf("no drain summary in stdout:\n%s\nstderr:\n%s", summary, stderr.String())
	}
	t.Logf("%d commits under load; %s", commits.Load(), summary)
}

// runTransfers runs transfers on one connection until it dies. It
// reports true when the server is unreachable (dial failed), false when
// the connection dropped mid-use (reconnect and continue).
func runTransfers(addr string, rng *rand.Rand, stop <-chan struct{}, commits *atomic.Uint64) bool {
	nc, err := net.DialTimeout("tcp", addr, 300*time.Millisecond)
	if err != nil {
		select {
		case <-stop:
			return true
		default:
			time.Sleep(5 * time.Millisecond)
			return false
		}
	}
	defer nc.Close()
	br := bufio.NewReader(nc)
	send := func(q string) (server.Response, bool) {
		b, _ := json.Marshal(server.Request{Q: q})
		nc.SetDeadline(time.Now().Add(2 * time.Second))
		if _, err := nc.Write(append(b, '\n')); err != nil {
			return server.Response{}, false
		}
		for {
			line, err := br.ReadBytes('\n')
			if err != nil {
				return server.Response{}, false
			}
			var r server.Response
			if json.Unmarshal(line, &r) != nil {
				return server.Response{}, false
			}
			if r.Notice != "" && r.Status == "" && r.Err == "" && !r.Final {
				continue // drain notice
			}
			return r, !r.Final
		}
	}
	for {
		select {
		case <-stop:
			return true
		default:
		}
		a, b := 1+rng.Intn(100), 1+rng.Intn(100)
		if a == b {
			b = a%100 + 1
		}
		ok := true
		for i, q := range []string{
			"BEGIN",
			fmt.Sprintf("UPDATE Checking SET Balance = Balance - 2 WHERE CustomerId = %d", a),
			fmt.Sprintf("UPDATE Checking SET Balance = Balance + 2 WHERE CustomerId = %d", b),
			"COMMIT",
		} {
			r, alive := send(q)
			if !alive {
				return false
			}
			if r.Err != "" {
				if r.InTx {
					send("ROLLBACK")
				}
				ok = false
				break
			}
			if ok && i == 3 {
				commits.Add(1)
			}
		}
	}
}

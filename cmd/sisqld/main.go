// Command sisqld is the long-running network front-end: it loads a
// SmallBank database and serves the newline-delimited JSON SQL protocol
// (docs/SERVER.md) over TCP. Sessions are disconnect-safe — a dropped
// client always rolls back its open transaction — connection admission
// is bounded (-max-conns, excess sheds with a structured retriable
// error), and SIGTERM/SIGINT triggers a graceful drain: stop accepting,
// notify sessions, wait -drain, hard-abort stragglers, then close the
// engine and exit 0.
//
// Examples:
//
//	sisqld -addr :5433 -mode ssi
//	sisqld -addr 127.0.0.1:0 -customers 100      # ephemeral port, printed on stdout
//	sisqld -max-conns 64 -idle-timeout 30s -stmt-deadline 2s
//	sisqld -pprof localhost:6060                 # sicost_server expvar + pprof
//
// Talk to it with netcat:
//
//	printf '%s\n' '{"q":"SELECT * FROM Checking WHERE CustomerId = 1"}' | nc localhost 5433
package main

import (
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the -pprof server
	"os"
	"os/signal"
	"syscall"
	"time"

	"sicost/internal/core"
	"sicost/internal/engine"
	"sicost/internal/experiments"
	"sicost/internal/server"
	"sicost/internal/smallbank"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:5433", "TCP listen address (port 0 picks an ephemeral port)")
		platform     = flag.String("platform", "postgres", "platform profile: postgres or commercial")
		mode         = flag.String("mode", "si", "concurrency control: si, 2pl or ssi")
		customers    = flag.Int("customers", 1000, "SmallBank customers loaded at startup")
		seed         = flag.Int64("seed", 1, "load seed")
		maxConns     = flag.Int("max-conns", server.DefaultMaxConns, "concurrent connection limit (admission gate)")
		connQueue    = flag.Int("conn-queue", 0, "connections allowed to queue for a slot past -max-conns")
		idleTimeout  = flag.Duration("idle-timeout", time.Minute, "close connections idle this long, rolling back open transactions (0 = never)")
		stmtDeadline = flag.Duration("stmt-deadline", server.DefaultStatementDeadline, "per-statement time budget mapped onto the transaction deadline (negative = unbounded)")
		drain        = flag.Duration("drain", server.DefaultDrainWindow, "graceful-drain window on SIGTERM before stragglers are hard-aborted")
		lockTimeout  = flag.Duration("locktimeout", 0, "per-transaction lock-wait timeout (0 = wait forever)")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	var engCfg engine.Config
	switch *platform {
	case "postgres":
		engCfg = experiments.PostgresDB(1.0)
	case "commercial":
		engCfg = experiments.CommercialDB(1.0)
	default:
		fmt.Fprintf(os.Stderr, "sisqld: unknown platform %q\n", *platform)
		os.Exit(2)
	}
	switch *mode {
	case "si":
	case "2pl":
		engCfg.Mode = core.Strict2PL
	case "ssi":
		engCfg.Mode = core.SerializableSI
	default:
		fmt.Fprintf(os.Stderr, "sisqld: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	engCfg.LockWaitTimeout = *lockTimeout
	// Serve on free hardware: the simulated per-operation delays model
	// the paper's measured platforms, which is workload-harness business,
	// not an interactive server's.
	engCfg.Res.VirtualCPUs = 0

	db := engine.Open(engCfg)
	if err := smallbank.CreateSchema(db); err != nil {
		fmt.Fprintln(os.Stderr, "sisqld:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "loading %d customers...\n", *customers)
	if _, err := smallbank.Load(db, smallbank.LoadConfig{Customers: *customers, Seed: *seed}); err != nil {
		fmt.Fprintln(os.Stderr, "sisqld:", err)
		os.Exit(1)
	}

	srv := server.New(server.Config{
		DB:                db,
		MaxConns:          *maxConns,
		ConnQueue:         *connQueue,
		IdleTimeout:       *idleTimeout,
		StatementDeadline: *stmtDeadline,
		DrainWindow:       *drain,
	})

	if *pprofAddr != "" {
		// Live server gauges and counters next to the engine's transaction
		// metrics: `curl host/debug/vars` shows sessions, sheds, drains and
		// aborted-on-disconnect counts (see docs/SERVER.md).
		expvar.Publish("sicost_server", expvar.Func(func() any { return srv.Stats() }))
		expvar.Publish("sicost_txn_metrics", expvar.Func(func() any { return db.TxnMetrics() }))
		go func() {
			fmt.Fprintf(os.Stderr, "pprof/expvar: http://%s/debug/pprof http://%s/debug/vars\n", *pprofAddr, *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "sisqld: pprof server:", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sisqld:", err)
		os.Exit(1)
	}
	// Stdout, unbuffered by line: the e2e harness (and scripts) parse
	// this line for the ephemeral port.
	fmt.Printf("sisqld: listening on %s\n", ln.Addr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	done := make(chan struct{})
	go func() {
		sig := <-sigc
		fmt.Fprintf(os.Stderr, "sisqld: %s: draining (window %v)...\n", sig, *drain)
		srv.Shutdown()
		close(done)
	}()

	if err := srv.Serve(ln); err != nil {
		fmt.Fprintln(os.Stderr, "sisqld: serve:", err)
		os.Exit(1)
	}
	<-done
	db.Close()

	st := srv.Stats()
	fmt.Printf("sisqld: drained: %d conns served, %d drained, %d hard-closed, %d txns aborted on disconnect, %d shed\n",
		st.Accepted, st.Drained, st.HardClosed, st.AbortedOnDisconnect, st.Shed)
	if st.Gate.InFlight != 0 || st.Gate.QueueDepth != 0 {
		fmt.Fprintf(os.Stderr, "sisqld: admission gate leak: %d in flight, %d queued after drain\n",
			st.Gate.InFlight, st.Gate.QueueDepth)
		os.Exit(1)
	}
	if n := db.InFlightTxns(); n != 0 {
		fmt.Fprintf(os.Stderr, "sisqld: transaction leak: %d in flight after drain\n", n)
		os.Exit(1)
	}
}

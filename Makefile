# Development targets for the sicost repo. `make ci` is the gate a
# change must pass before review: build, vet, full tests, and the race
# detector over every package.

GO ?= go

.PHONY: all build test short vet race stress fuzz fuzzsmoke bench chaos crash walfuzz checkfuzz checksmoke docs trace-smoke overload servefuzz servechaos ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Quick loop: skips the stochastic anomaly hunt and long explorations.
short:
	$(GO) test -short ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Concurrency stress suite (goroutine fleets + property-based lock-table
# equivalence, plus the MPL-16 online-checker subscription) under the
# race detector, twice, to vary schedules.
stress:
	$(GO) test -race -count=2 -run 'TestStress|TestQuick' ./internal/storage ./internal/engine ./internal/workload

# Short fuzz smoke on both targets (30s each); CI-friendly bound.
fuzz:
	$(GO) test -fuzz FuzzCheckerHistories -fuzztime 30s ./internal/detsim
	$(GO) test -fuzz FuzzSQLMiniParse -fuzztime 30s ./internal/sqlmini

# Even shorter fuzz pass for the CI gate (10s per target).
fuzzsmoke:
	$(GO) test -fuzz FuzzCheckerHistories -fuzztime 10s ./internal/detsim
	$(GO) test -fuzz FuzzSQLMiniParse -fuzztime 10s ./internal/sqlmini

# Seeded chaos smoke: the default fault plan against a small SmallBank
# under 2PL with the MVSG checker attached; exits nonzero if any
# standing invariant (conservation, lock audit, serializability) breaks.
chaos:
	$(GO) run ./cmd/smallbank -chaos -check -mode 2pl -customers 200 -hotspot 20 \
		-mpl 8 -ramp 100ms -measure 500ms -retry backoff -seed 7 > /dev/null
	$(GO) test -short -count=1 -run 'TestChaos|TestInjected|TestFaulted' ./internal/workload ./internal/detsim

# Crash/recover chaos: rotate a panic fault through the commit path
# (including mid-WAL-flush, inside the coalesced-sync window and at
# segment rotation), recover from the surviving log image after every
# crash and audit the durability contract — acked state survives,
# unacked state vanishes, money is conserved, recovery is idempotent.
# The second smallbank run exercises asynchronous commit on a segmented
# log, auditing the durable-prefix contract instead (acked-durable
# commits survive; only the un-acked tail may vanish).
crash:
	$(GO) run ./cmd/smallbank -crash -crash-cycles 10 -mode 2pl -seed 7 > /dev/null
	$(GO) run ./cmd/smallbank -crash -crash-cycles 10 -crash-async -crash-segment-size 4096 -seed 11 > /dev/null
	$(GO) test -race -count=1 -run TestCrashChaos ./internal/workload

# Fuzz the recovery pipeline: arbitrary bytes through the frame decoder
# and the full engine rebuild, arbitrary multi-segment layouts through
# the segment classifier, and arbitrary strings through the
# segment-name parser; none may panic.
walfuzz:
	$(GO) test -fuzz 'FuzzRecoverLog$$' -fuzztime 10s ./internal/wal
	$(GO) test -fuzz FuzzRecoverSegments -fuzztime 10s ./internal/wal
	$(GO) test -fuzz FuzzParseSegmentName -fuzztime 5s ./internal/wal

# Fuzz the online windowed checker: arbitrary event streams (reordered,
# truncated, duplicated, unknown kinds) must never panic, stay
# deterministic, and never produce a false verdict on a valid stream.
checkfuzz:
	$(GO) test -fuzz FuzzOnlineCheck -fuzztime 10s ./internal/onlinecheck

# Online-checker smoke: short online-checked SmallBank runs across the
# isolation spectrum — bare SI (anomalies allowed and merely reported),
# SFU promotion on the commercial platform, SSI, and S2PL; for the
# serializability-guaranteeing configurations the live verdict gates the
# exit status.
checksmoke:
	$(GO) run ./cmd/smallbank -check -mode si -strategy SI -mpl 8 -customers 300 \
		-hotspot 20 -ramp 50ms -measure 300ms -seed 7 > /dev/null
	$(GO) run ./cmd/smallbank -check -mode si -strategy PromoteWT-sfu -platform commercial \
		-mpl 8 -customers 300 -hotspot 20 -ramp 50ms -measure 300ms -seed 7 > /dev/null
	$(GO) run ./cmd/smallbank -check -mode ssi -mpl 8 -customers 300 \
		-hotspot 20 -ramp 50ms -measure 300ms -seed 7 > /dev/null
	$(GO) run ./cmd/smallbank -check -mode 2pl -mpl 8 -customers 300 \
		-hotspot 20 -ramp 50ms -measure 300ms -seed 7 > /dev/null

# Documentation gate: vet plus cmd/doclint — every package must open
# with a conventional godoc comment, and every docs/*.md
# cross-reference (internal/ paths, cmd flags, sicost_* expvar names)
# must resolve against the code.
docs: vet
	$(GO) run ./cmd/doclint ./

# Trace smoke: a short traced SmallBank run, then full schema +
# lifecycle-invariant validation of the JSONL output (cmd/tracecheck).
trace-smoke:
	$(GO) run ./cmd/smallbank -mpl 8 -customers 500 -hotspot 50 -ramp 50ms \
		-measure 300ms -seed 11 -trace trace_smoke.jsonl > /dev/null
	$(GO) run ./cmd/tracecheck -q trace_smoke.jsonl
	rm -f trace_smoke.jsonl

# Parallel-commit scaling benchmarks; regenerates BENCH_engine.json with
# the committed pre-sharding baseline alongside the current numbers and
# the tracing overhead set (off / installed-but-disabled / capturing).
bench:
	$(GO) test -run XXX -bench 'BenchmarkCommitParallel' -benchtime 1s -benchmem ./internal/engine | tee bench_latest.txt
	$(GO) test -run XXX -bench 'BenchmarkCommitTraced' -benchtime 1s -count 3 -benchmem ./internal/engine | tee bench_traced.txt
	$(GO) test -run XXX -bench 'BenchmarkCommitDurable' -benchtime 1s -count 3 -benchmem ./internal/engine | tee bench_durable.txt
	$(GO) test -run XXX -bench 'BenchmarkOnlineCheck|BenchmarkIngest' -benchtime 1s -count 3 -benchmem ./internal/onlinecheck | tee bench_check.txt
	$(GO) test -run XXX -bench 'BenchmarkBeginAdmitted' -benchtime 1s -count 3 -benchmem ./internal/engine | tee bench_admission.txt
	$(GO) test -run XXX -bench 'BenchmarkCommitCheckpointMPL16' -benchtime 1s -count 3 -benchmem ./internal/engine | tee bench_ckpt.txt
	$(GO) test -run XXX -bench 'BenchmarkServerRoundTrip' -benchtime 1s -count 3 -benchmem ./internal/server | tee bench_server.txt
	$(GO) run ./cmd/benchjson -o BENCH_engine.json \
		-note "Parallel commit benchmark, uniform keys; baseline = pre-sharding global-mutex design. The tracing set measures the serial commit cycle with the lifecycle recorder absent (off), installed-but-disabled (the <=5% budget: one atomic load per emission point), and capturing (enabled). The durable set prices the WAL: latency-only (no device) vs in-memory device (encoding + CRC32C framing) vs real log file (OS write per flushed batch); the CommitDurableMPL16 group prices group commit at 16 committers against a file device with a simulated 200us sync — baseline (one fsync per commit, the pre-coalescing loop) vs coalesced windows vs asynchronous commit vs a segment-rotated log, with commits/sync as the coalescing gauge. The checking set prices the online isolation checker: off/traced/checked time the same commit cycle with ring consumption off-timer (traced->checked is the <=5% commit-path budget), and BenchmarkIngest reports the checker's own off-path cost per event. The admission set prices the adaptive admission gate at Begin: off (Config.Admission nil, one pointer branch — the <=5% acceptance budget against the plain commit cycle) vs on (uncontended fast-path slot acquire/release around each transaction, AIMD controller ticking in the background). The checkpoint set prices checkpoint interference at 16 committers against a file device with a large cold table: none (no checkpoints, the baseline), stw (a stop-the-world Checkpoint every 25ms — commits stall behind the full snapshot and rewrite) and fuzzy (the log-growth scheduler streaming incremental links concurrently with commits); p99-ns is the acceptance gauge — fuzzy must stay within 2x of none, where stw is typically an order of magnitude worse. The server set prices one full network round-trip — request encode, loopback TCP, line parse, statement execute, response encode/decode — through cmd/sisqld's serving stack (internal/server) with an autocommit single-row SELECT." \
		baseline=bench/baseline_preshard.txt sharded=bench_latest.txt tracing=bench_traced.txt durable=bench_durable.txt checking=bench_check.txt admission=bench_admission.txt checkpoint=bench_ckpt.txt server=bench_server.txt
	rm -f bench_latest.txt bench_traced.txt bench_durable.txt bench_check.txt bench_admission.txt bench_ckpt.txt bench_server.txt

# Overload smoke: a short open-system run at an offered load well past
# saturation with the adaptive admission gate and per-transaction
# deadlines on, online-checked. The binary exits nonzero if the
# admission gate leaks a slot or waiter after the drain, or if the
# checker finds an isolation violation; a second run races shutdown
# against a full admission queue under the race detector.
overload:
	$(GO) run ./cmd/smallbank -open -rate 4000 -admission -deadline 50ms \
		-customers 300 -hotspot 20 -ramp 50ms -measure 400ms -seed 7 -check > /dev/null
	$(GO) test -race -count=1 -run 'TestAdmission|TestRunOpen' ./internal/engine ./internal/workload

# Fuzz the network server's wire layer: arbitrary bytes through the
# request decoder and through a full connection drive; the handler must
# neither panic nor wedge, and must leak no transaction on teardown.
servefuzz:
	$(GO) test -fuzz FuzzServerProtocol -fuzztime 10s ./internal/server

# Server chaos gate: repeated cycles of hundreds of churning TCP
# clients (mid-transaction RST kills, idle lapses, slow transactions)
# against a live server with wire faults armed and a mid-storm drain,
# alternating 2PL and SSI. Audits money conservation, zero leaked
# transactions/locks/gate slots, and a clean online-checker verdict.
servechaos:
	SERVECHAOS_FULL=1 $(GO) test -count=1 -timeout 600s -run TestServerChaos ./internal/workload
	$(GO) test -race -count=1 ./internal/server

ci: build docs test race stress fuzzsmoke chaos crash walfuzz checkfuzz checksmoke trace-smoke overload servefuzz servechaos

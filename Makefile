# Development targets for the sicost repo. `make ci` is the gate a
# change must pass before review: build, vet, full tests, and the race
# detector over every package.

GO ?= go

.PHONY: all build test short vet race fuzz bench ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Quick loop: skips the stochastic anomaly hunt and long explorations.
short:
	$(GO) test -short ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Short fuzz smoke on both targets (30s each); CI-friendly bound.
fuzz:
	$(GO) test -fuzz FuzzCheckerHistories -fuzztime 30s ./internal/detsim
	$(GO) test -fuzz FuzzSQLMiniParse -fuzztime 30s ./internal/sqlmini

bench:
	$(GO) test -run XXX -bench 'BenchmarkCommit' -benchmem ./internal/engine

ci: build vet test race

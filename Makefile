# Development targets for the sicost repo. `make ci` is the gate a
# change must pass before review: build, vet, full tests, and the race
# detector over every package.

GO ?= go

.PHONY: all build test short vet race stress fuzz fuzzsmoke bench chaos ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Quick loop: skips the stochastic anomaly hunt and long explorations.
short:
	$(GO) test -short ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Concurrency stress suite (goroutine fleets + property-based lock-table
# equivalence) under the race detector, twice, to vary schedules.
stress:
	$(GO) test -race -count=2 -run 'TestStress|TestQuick' ./internal/storage ./internal/engine

# Short fuzz smoke on both targets (30s each); CI-friendly bound.
fuzz:
	$(GO) test -fuzz FuzzCheckerHistories -fuzztime 30s ./internal/detsim
	$(GO) test -fuzz FuzzSQLMiniParse -fuzztime 30s ./internal/sqlmini

# Even shorter fuzz pass for the CI gate (10s per target).
fuzzsmoke:
	$(GO) test -fuzz FuzzCheckerHistories -fuzztime 10s ./internal/detsim
	$(GO) test -fuzz FuzzSQLMiniParse -fuzztime 10s ./internal/sqlmini

# Seeded chaos smoke: the default fault plan against a small SmallBank
# under 2PL with the MVSG checker attached; exits nonzero if any
# standing invariant (conservation, lock audit, serializability) breaks.
chaos:
	$(GO) run ./cmd/smallbank -chaos -check -mode 2pl -customers 200 -hotspot 20 \
		-mpl 8 -ramp 100ms -measure 500ms -retry backoff -seed 7 > /dev/null
	$(GO) test -short -count=1 -run 'TestChaos|TestInjected|TestFaulted' ./internal/workload ./internal/detsim

# Parallel-commit scaling benchmarks; regenerates BENCH_engine.json with
# the committed pre-sharding baseline alongside the current numbers.
bench:
	$(GO) test -run XXX -bench 'BenchmarkCommitParallel' -benchtime 1s -benchmem ./internal/engine | tee bench_latest.txt
	$(GO) run ./cmd/benchjson -o BENCH_engine.json \
		-note "Parallel commit benchmark, uniform keys; baseline = pre-sharding global-mutex design." \
		baseline=bench/baseline_preshard.txt sharded=bench_latest.txt
	rm -f bench_latest.txt

ci: build vet test race stress fuzzsmoke chaos

package faultinject

import (
	"errors"
	"testing"
	"time"

	"sicost/internal/core"
)

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	if err := r.Fire("x", Ctx{}); err != nil {
		t.Fatalf("nil Fire: %v", err)
	}
	r.FireDelayOnly("x", Ctx{})
	r.Disarm("x")
	r.Reset()
	if s := r.Stats(); s != nil {
		t.Fatalf("nil Stats: %v", s)
	}
	if n := r.Fired("x"); n != 0 {
		t.Fatalf("nil Fired: %d", n)
	}
	if err := r.Arm(Spec{Point: "x"}); err == nil {
		t.Fatal("Arm on nil registry should error")
	}
}

func TestArmValidation(t *testing.T) {
	r := New(1)
	if err := r.Arm(Spec{}); err == nil {
		t.Fatal("empty point accepted")
	}
	if err := r.Arm(Spec{Point: "p", Rate: 1.5}); err == nil {
		t.Fatal("rate > 1 accepted")
	}
	if err := r.Arm(Spec{Point: "p", Action: ActDelay}); err == nil {
		t.Fatal("delay action without Delay accepted")
	}
}

func TestEveryHitTriggers(t *testing.T) {
	r := New(1)
	if err := r.Arm(Spec{Point: "p", Action: ActError}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		err := r.Fire("p", Ctx{})
		if !errors.Is(err, core.ErrInjected) {
			t.Fatalf("hit %d: got %v, want ErrInjected", i, err)
		}
	}
	if got := r.Fired("p"); got != 3 {
		t.Fatalf("Fired = %d, want 3", got)
	}
	if err := r.Fire("other", Ctx{}); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
}

func TestCustomError(t *testing.T) {
	r := New(1)
	custom := errors.New("boom")
	if err := r.Arm(Spec{Point: "p", Action: ActError, Err: custom}); err != nil {
		t.Fatal(err)
	}
	if err := r.Fire("p", Ctx{}); !errors.Is(err, custom) {
		t.Fatalf("got %v, want custom error", err)
	}
}

func TestAfterAndCountGates(t *testing.T) {
	r := New(1)
	// Skip the first 2 hits, then fire at most twice.
	if err := r.Arm(Spec{Point: "p", After: 2, Count: 2, Action: ActError}); err != nil {
		t.Fatal(err)
	}
	var fired int
	for i := 0; i < 10; i++ {
		if r.Fire("p", Ctx{}) != nil {
			if i < 2 {
				t.Fatalf("fired on hit %d despite After=2", i)
			}
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("fired %d times, want 2 (Count gate)", fired)
	}
	st := r.Stats()
	if len(st) != 1 || st[0].Hits != 10 || st[0].Fired != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTableKeyFilter(t *testing.T) {
	r := New(1)
	key := core.Int(7)
	if err := r.Arm(Spec{Point: "p", Table: "T", Key: &key, Action: ActError}); err != nil {
		t.Fatal(err)
	}
	if err := r.Fire("p", Ctx{Table: "U", Key: core.Int(7)}); err != nil {
		t.Fatalf("wrong table fired: %v", err)
	}
	if err := r.Fire("p", Ctx{Table: "T", Key: core.Int(8)}); err != nil {
		t.Fatalf("wrong key fired: %v", err)
	}
	if err := r.Fire("p", Ctx{Table: "T", Key: core.Int(7)}); err == nil {
		t.Fatal("matching hit did not fire")
	}
	// Filtered-out hits must not count toward After/Count gates.
	st := r.Stats()
	if st[0].Hits != 1 {
		t.Fatalf("hits = %d, want 1 (filtered hits excluded)", st[0].Hits)
	}
}

func TestRateIsDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []bool {
		r := New(seed)
		if err := r.Arm(Spec{Point: "p", Rate: 0.3, Action: ActError}); err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 200)
		for i := range out {
			out[i] = r.Fire("p", Ctx{}) != nil
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical trigger streams")
	}
	var fired int
	for _, f := range a {
		if f {
			fired++
		}
	}
	if fired < 30 || fired > 90 {
		t.Fatalf("rate 0.3 over 200 hits fired %d times", fired)
	}
}

func TestDelayAction(t *testing.T) {
	r := New(1)
	if err := r.Arm(Spec{Point: "p", Action: ActDelay, Delay: 20 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := r.Fire("p", Ctx{}); err != nil {
		t.Fatalf("delay returned error: %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("delay too short: %v", d)
	}
}

func TestPanicActionAndAsPanic(t *testing.T) {
	r := New(1)
	if err := r.Arm(Spec{Point: "p", Action: ActPanic}); err != nil {
		t.Fatal(err)
	}
	var recovered *Panic
	func() {
		defer func() {
			p, ok := AsPanic(recover())
			if !ok {
				t.Fatal("recovered value is not a *Panic")
			}
			recovered = p
		}()
		_ = r.Fire("p", Ctx{Tx: 9})
		t.Fatal("Fire returned instead of panicking")
	}()
	if recovered.Point != "p" || recovered.Ctx.Tx != 9 {
		t.Fatalf("panic payload = %+v", recovered)
	}
	if !errors.Is(recovered, core.ErrInjected) {
		t.Fatal("*Panic does not wrap ErrInjected")
	}
	if core.ClassifyAbort(recovered) != core.AbortInjected {
		t.Fatalf("ClassifyAbort(*Panic) = %v", core.ClassifyAbort(recovered))
	}
	if _, ok := AsPanic("unrelated"); ok {
		t.Fatal("AsPanic accepted a non-Panic value")
	}
}

func TestFireDelayOnlySkipsErrors(t *testing.T) {
	r := New(1)
	if err := r.Arm(Spec{Point: "p", Action: ActError}); err != nil {
		t.Fatal(err)
	}
	r.FireDelayOnly("p", Ctx{}) // must not panic or error
	if got := r.Fired("p"); got != 0 {
		t.Fatalf("error spec fired %d times at a delay-only point", got)
	}
	if err := r.Arm(Spec{Point: "p", Action: ActDelay, Delay: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	r.FireDelayOnly("p", Ctx{})
	if got := r.Fired("p"); got != 1 {
		t.Fatalf("delay spec fired %d times, want 1", got)
	}
}

func TestFirstMatchingSpecWins(t *testing.T) {
	r := New(1)
	errA, errB := errors.New("a"), errors.New("b")
	if err := r.Arm(Spec{Point: "p", Count: 1, Action: ActError, Err: errA}); err != nil {
		t.Fatal(err)
	}
	if err := r.Arm(Spec{Point: "p", Action: ActError, Err: errB}); err != nil {
		t.Fatal(err)
	}
	if err := r.Fire("p", Ctx{}); !errors.Is(err, errA) {
		t.Fatalf("first fire: %v, want a", err)
	}
	// First spec exhausted (Count=1): the second takes over.
	if err := r.Fire("p", Ctx{}); !errors.Is(err, errB) {
		t.Fatalf("second fire: %v, want b", err)
	}
}

func TestDisarmAndReset(t *testing.T) {
	r := New(1)
	if err := r.Arm(Spec{Point: "p", Action: ActError}); err != nil {
		t.Fatal(err)
	}
	if err := r.Arm(Spec{Point: "q", Action: ActError}); err != nil {
		t.Fatal(err)
	}
	r.Disarm("p")
	if err := r.Fire("p", Ctx{}); err != nil {
		t.Fatalf("disarmed point fired: %v", err)
	}
	if err := r.Fire("q", Ctx{}); err == nil {
		t.Fatal("q should still be armed")
	}
	r.Reset()
	if err := r.Fire("q", Ctx{}); err != nil {
		t.Fatalf("reset registry fired: %v", err)
	}
	if r.active.Load() != 0 {
		t.Fatalf("active = %d after Reset", r.active.Load())
	}
}

func BenchmarkFireDisabled(b *testing.B) {
	r := New(1)
	ctx := Ctx{Tx: 1, Table: "T"}
	b.Run("empty-registry", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := r.Fire("engine/commit/stamp", ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("nil-registry", func(b *testing.B) {
		var nr *Registry
		for i := 0; i < b.N; i++ {
			if err := nr.Fire("engine/commit/stamp", ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Package faultinject is the engine's deterministic fault-injection
// substrate: a registry of named fault points woven through the hot
// paths of the engine, the storage layer and the simulated WAL. A test
// or chaos run arms specs against those points — trigger by sampling
// rate, by hit count, or filtered to one table/key — and the point
// fires an action when hit: return an error, delay the caller, or
// panic (recoverable via AsPanic, modelling a crashed session).
//
// Determinism: rate-based triggers draw from a registry-owned seeded
// RNG, and hit-count triggers are exact, so a single-threaded driver
// (internal/detsim) replays the same faults on every run. A nil
// *Registry is inert: every method is nil-safe and Fire on a nil or
// disarmed registry is one pointer test plus one atomic load, so the
// hooks compiled into the engine's commit path cost nothing when fault
// injection is disabled (see BenchmarkFireDisabled).
package faultinject

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sicost/internal/core"
)

// Action is what a fault point does when its spec triggers.
type Action uint8

// Actions.
const (
	// ActError makes the fault point return an error (Spec.Err, or a
	// wrapped core.ErrInjected naming the point).
	ActError Action = iota
	// ActDelay stalls the caller for Spec.Delay before continuing
	// normally (lock-holder preemption, slow-disk, GC-pause chaos).
	ActDelay
	// ActPanic panics with a *Panic value, modelling a session that
	// dies mid-operation. Recover it with AsPanic; the engine's
	// transaction programs release their locks on the way out (their
	// deferred Abort runs during unwinding), which the chaos harness's
	// lock-leak invariant pins down.
	ActPanic
)

// String names the action.
func (a Action) String() string {
	switch a {
	case ActError:
		return "error"
	case ActDelay:
		return "delay"
	case ActPanic:
		return "panic"
	default:
		return fmt.Sprintf("action(%d)", uint8(a))
	}
}

// Ctx describes one hit of a fault point: which transaction (0 when not
// attributable) touched which table/key. Specs filter on it.
type Ctx struct {
	Tx    uint64
	Table string
	Key   core.Value
}

// Spec arms one fault against a named point.
type Spec struct {
	// Point is the fault-point name (see DESIGN.md for the full map,
	// e.g. "engine/commit/stamp", "storage/row/read", "wal/flush").
	Point string

	// Rate is the per-hit trigger probability in [0,1]; 0 means the
	// spec triggers on every hit that passes the count gates (pure
	// hit-count triggering).
	Rate float64
	// After skips the first After matching hits before the spec may
	// trigger (fire on the N+1st touch of a key, not the first).
	After uint64
	// Count caps how many times the spec fires; 0 means unlimited.
	Count uint64

	// Table restricts the spec to hits on one table ("" matches any).
	Table string
	// Key restricts the spec to one key (nil matches any).
	Key *core.Value

	// Action selects what happens on trigger.
	Action Action
	// Err overrides the returned error for ActError; nil yields
	// fmt.Errorf("%w at %s", core.ErrInjected, point).
	Err error
	// Delay is the stall duration for ActDelay.
	Delay time.Duration
}

// Panic is the value thrown by ActPanic.
type Panic struct {
	Point string
	Ctx   Ctx
}

// Error makes *Panic usable as the abort error after recovery; it wraps
// core.ErrInjected so core.ClassifyAbort reports AbortInjected.
func (p *Panic) Error() string { return fmt.Sprintf("injected panic at %s", p.Point) }

// Unwrap links the recovered panic into the injected-fault error class.
func (p *Panic) Unwrap() error { return core.ErrInjected }

// AsPanic reports whether a recovered value is an injected panic.
func AsPanic(v any) (*Panic, bool) {
	p, ok := v.(*Panic)
	return p, ok
}

// armed is one Spec with its trigger bookkeeping.
type armed struct {
	Spec
	hits  uint64 // matching hits observed
	fired uint64 // times triggered
}

// PointStats reports one armed spec's activity.
type PointStats struct {
	Point  string
	Action Action
	Hits   uint64 // hits that passed the table/key filter
	Fired  uint64 // hits that triggered the action
}

// Registry holds the armed fault specs. The zero value is not usable;
// call New. All methods are safe for concurrent use and nil-safe, so
// subsystems unconditionally embed a possibly-nil *Registry.
type Registry struct {
	// active is the number of armed specs; Fire's fast path loads it
	// once and returns when zero, keeping disarmed hooks off the hot
	// path's profile.
	active atomic.Int64

	mu    sync.Mutex
	rng   *rand.Rand
	specs map[string][]*armed
}

// New creates an empty registry whose rate-based triggers draw from a
// deterministic stream seeded with seed.
func New(seed int64) *Registry {
	return &Registry{
		rng:   rand.New(rand.NewSource(seed)),
		specs: make(map[string][]*armed),
	}
}

// Arm registers a spec. Multiple specs may target the same point; they
// are evaluated in arming order and the first trigger wins.
func (r *Registry) Arm(s Spec) error {
	if r == nil {
		return fmt.Errorf("faultinject: Arm on nil registry")
	}
	if s.Point == "" {
		return fmt.Errorf("faultinject: spec needs a point name")
	}
	if s.Rate < 0 || s.Rate > 1 {
		return fmt.Errorf("faultinject: rate %v out of [0,1]", s.Rate)
	}
	if s.Action == ActDelay && s.Delay <= 0 {
		return fmt.Errorf("faultinject: delay action needs a positive Delay")
	}
	r.mu.Lock()
	r.specs[s.Point] = append(r.specs[s.Point], &armed{Spec: s})
	r.mu.Unlock()
	r.active.Add(1)
	return nil
}

// Disarm removes every spec armed against point.
func (r *Registry) Disarm(point string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	n := len(r.specs[point])
	delete(r.specs, point)
	r.mu.Unlock()
	r.active.Add(-int64(n))
}

// Reset removes every armed spec (trigger statistics included).
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	n := 0
	for _, as := range r.specs {
		n += len(as)
	}
	r.specs = make(map[string][]*armed)
	r.mu.Unlock()
	r.active.Add(-int64(n))
}

// Stats snapshots per-spec hit/fire counts, sorted by point name (specs
// sharing a point keep arming order).
func (r *Registry) Stats() []PointStats {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	points := make([]string, 0, len(r.specs))
	for p := range r.specs {
		points = append(points, p)
	}
	sort.Strings(points)
	var out []PointStats
	for _, p := range points {
		for _, a := range r.specs[p] {
			out = append(out, PointStats{Point: p, Action: a.Action, Hits: a.hits, Fired: a.fired})
		}
	}
	return out
}

// Fired returns the total trigger count across every spec of point.
func (r *Registry) Fired(point string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var n uint64
	for _, a := range r.specs[point] {
		n += a.fired
	}
	return n
}

// Fire evaluates the named point against ctx and performs the first
// triggered spec's action: it returns the injected error, sleeps the
// injected delay (returning nil), or panics with a *Panic. Nil-safe;
// with nothing armed it is a pointer test plus one atomic load.
func (r *Registry) Fire(point string, ctx Ctx) error {
	if r == nil || r.active.Load() == 0 {
		return nil
	}
	return r.fire(point, ctx, false)
}

// FireDelayOnly is Fire for points past the commit point (CSN already
// published) where an injected error or crash could not be rolled back
// without lying to the client: only ActDelay specs take effect there,
// error/panic specs count a hit but do nothing. Nil-safe.
func (r *Registry) FireDelayOnly(point string, ctx Ctx) {
	if r == nil || r.active.Load() == 0 {
		return
	}
	_ = r.fire(point, ctx, true)
}

func (r *Registry) fire(point string, ctx Ctx, delayOnly bool) error {
	var act *armed
	r.mu.Lock()
	for _, a := range r.specs[point] {
		if a.Table != "" && a.Table != ctx.Table {
			continue
		}
		if a.Key != nil && *a.Key != ctx.Key {
			continue
		}
		a.hits++
		if a.hits <= a.After {
			continue
		}
		if a.Count > 0 && a.fired >= a.Count {
			continue
		}
		if a.Rate > 0 && r.rng.Float64() >= a.Rate {
			continue
		}
		if delayOnly && a.Action != ActDelay {
			continue
		}
		a.fired++
		act = a
		break
	}
	r.mu.Unlock()
	if act == nil {
		return nil
	}
	switch act.Action {
	case ActDelay:
		time.Sleep(act.Delay)
		return nil
	case ActPanic:
		panic(&Panic{Point: point, Ctx: ctx})
	default:
		if act.Err != nil {
			return act.Err
		}
		return fmt.Errorf("%w at %s", core.ErrInjected, point)
	}
}

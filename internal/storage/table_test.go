package storage

import (
	"testing"

	"sicost/internal/core"
)

func checkingSchema() *core.Schema {
	return &core.Schema{
		Name: "Checking",
		Columns: []core.Column{
			{Name: "CustomerID", Kind: core.KindInt, NotNull: true},
			{Name: "Balance", Kind: core.KindInt, NotNull: true},
		},
		PK: 0,
	}
}

func accountSchema() *core.Schema {
	return &core.Schema{
		Name: "Account",
		Columns: []core.Column{
			{Name: "Name", Kind: core.KindString, NotNull: true},
			{Name: "CustomerID", Kind: core.KindInt, NotNull: true},
		},
		PK:     0,
		Unique: []int{1},
	}
}

func TestNewTableRejectsBadSchema(t *testing.T) {
	if _, err := NewTable(&core.Schema{Name: ""}); err == nil {
		t.Fatal("invalid schema accepted")
	}
}

func TestTableEnsureRowIdempotent(t *testing.T) {
	tbl, err := NewTable(checkingSchema())
	if err != nil {
		t.Fatal(err)
	}
	r1 := tbl.EnsureRow(core.Int(1))
	r2 := tbl.EnsureRow(core.Int(1))
	if r1 != r2 {
		t.Fatal("EnsureRow must return the same anchor")
	}
	if tbl.Row(core.Int(1)) != r1 {
		t.Fatal("Row must find the anchor")
	}
	if tbl.Row(core.Int(2)) != nil {
		t.Fatal("missing key must return nil")
	}
	if tbl.RowCount() != 1 {
		t.Fatalf("RowCount = %d", tbl.RowCount())
	}
}

func TestTableKeysSorted(t *testing.T) {
	tbl, _ := NewTable(checkingSchema())
	for _, k := range []int64{5, 1, 3} {
		tbl.EnsureRow(core.Int(k))
	}
	keys := tbl.Keys()
	want := []core.Value{core.Int(1), core.Int(3), core.Int(5)}
	if len(keys) != 3 {
		t.Fatalf("Keys len = %d", len(keys))
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys[%d] = %v, want %v", i, keys[i], want[i])
		}
	}
}

func TestTableIndexesFromSchema(t *testing.T) {
	tbl, err := NewTable(accountSchema())
	if err != nil {
		t.Fatal(err)
	}
	ixs := tbl.Indexes()
	if len(ixs) != 1 {
		t.Fatalf("indexes = %d, want 1", len(ixs))
	}
	if ixs[0].Column() != "CustomerID" || ixs[0].ColPos() != 1 {
		t.Fatalf("index on %s pos %d", ixs[0].Column(), ixs[0].ColPos())
	}
}

func TestStoreCreateAndLookup(t *testing.T) {
	s := NewStore()
	if _, err := s.CreateTable(checkingSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateTable(checkingSchema()); err == nil {
		t.Fatal("duplicate table accepted")
	}
	if _, err := s.Table("Checking"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Table("Nope"); err == nil {
		t.Fatal("missing table lookup succeeded")
	}
	if _, err := s.CreateTable(accountSchema()); err != nil {
		t.Fatal(err)
	}
	names := s.TableNames()
	if len(names) != 2 || names[0] != "Account" || names[1] != "Checking" {
		t.Fatalf("TableNames = %v", names)
	}
	if s.MustTable("Account") == nil {
		t.Fatal("MustTable failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustTable on missing table must panic")
		}
	}()
	s.MustTable("Missing")
}

func TestUniqueIndexLifecycle(t *testing.T) {
	ix := NewUniqueIndex("Account", "CustomerID", 1)

	// tx 1 inserts, visible to itself only.
	if err := ix.Insert(1, core.Int(100), core.Str("alice")); err != nil {
		t.Fatal(err)
	}
	if _, ok := ix.Lookup(0, 1, core.Int(100)); !ok {
		t.Fatal("creator must see own entry")
	}
	if _, ok := ix.Lookup(10, 2, core.Int(100)); ok {
		t.Fatal("uncommitted entry leaked to another txn")
	}

	// Conflicting insert by another in-flight txn is rejected.
	if err := ix.Insert(2, core.Int(100), core.Str("bob")); err != core.ErrUniqueViolation {
		t.Fatalf("conflicting insert err = %v", err)
	}
	// Idempotent re-insert by the creator is allowed.
	if err := ix.Insert(1, core.Int(100), core.Str("alice")); err != nil {
		t.Fatalf("re-insert by creator: %v", err)
	}

	ix.Commit(1, 5)
	if pk, ok := ix.Lookup(5, 9, core.Int(100)); !ok || pk != core.Str("alice") {
		t.Fatalf("post-commit lookup = %v, %v", pk, ok)
	}
	if _, ok := ix.Lookup(4, 9, core.Int(100)); ok {
		t.Fatal("entry visible to pre-commit snapshot")
	}

	// Committed duplicate still rejected.
	if err := ix.Insert(3, core.Int(100), core.Str("carol")); err != core.ErrUniqueViolation {
		t.Fatalf("duplicate vs committed err = %v", err)
	}

	// Delete then reuse the value.
	ix.Delete(4, core.Int(100))
	if _, ok := ix.Lookup(10, 4, core.Int(100)); ok {
		t.Fatal("deleter must see its tombstone")
	}
	if _, ok := ix.Lookup(10, 9, core.Int(100)); !ok {
		t.Fatal("tombstone leaked before commit")
	}
	ix.Commit(4, 6)
	if _, ok := ix.Lookup(6, 9, core.Int(100)); ok {
		t.Fatal("entry visible after committed delete")
	}
	if err := ix.Insert(5, core.Int(100), core.Str("dave")); err != nil {
		t.Fatalf("reuse after committed delete: %v", err)
	}
}

func TestUniqueIndexAbortCleans(t *testing.T) {
	ix := NewUniqueIndex("Account", "CustomerID", 1)
	if err := ix.Insert(1, core.Int(7), core.Str("a")); err != nil {
		t.Fatal(err)
	}
	ix.Abort(1)
	if _, ok := ix.Lookup(100, 1, core.Int(7)); ok {
		t.Fatal("aborted entry survived")
	}
	// Value is free again.
	if err := ix.Insert(2, core.Int(7), core.Str("b")); err != nil {
		t.Fatalf("insert after abort: %v", err)
	}
	ix.Commit(2, 3)
	if pk, ok := ix.Lookup(3, 9, core.Int(7)); !ok || pk != core.Str("b") {
		t.Fatal("post-abort reinsert lost")
	}
}

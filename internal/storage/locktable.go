package storage

import (
	"sync"

	"sicost/internal/core"
)

// LockMode is the strength of a row lock.
type LockMode uint8

// Lock modes: shared (readers under 2PL) and exclusive (writers under
// every mode; select-for-update).
const (
	Shared LockMode = iota
	Exclusive
)

// String names the mode.
func (m LockMode) String() string {
	if m == Shared {
		return "S"
	}
	return "X"
}

// LockKey identifies one lockable resource: a row of a table.
type LockKey struct {
	Table string
	Key   core.Value
}

// waiter is one queued lock request.
type waiter struct {
	tx    uint64
	mode  LockMode
	ready chan error // buffered(1); receives nil on grant
}

// lock is the state of one locked resource.
type lock struct {
	holders map[uint64]LockMode
	queue   []*waiter
}

// compatibleWithHolders reports whether a request by tx at mode can be
// granted given current holders (ignoring any lock tx itself holds).
func (l *lock) compatibleWithHolders(tx uint64, mode LockMode) bool {
	for h, hm := range l.holders {
		if h == tx {
			continue
		}
		if mode == Exclusive || hm == Exclusive {
			return false
		}
	}
	return true
}

// WaitHooks observe the lock manager's blocking points. OnWait fires when
// a request is queued and its transaction is about to block; OnWake fires
// when a queued request is resolved — granted (err == nil) or ejected
// (err != nil, e.g. the transaction was aborted while waiting). OnWake is
// invoked synchronously from the goroutine that resolves the wait (the
// releaser), before that goroutine's own operation returns, which is what
// lets a deterministic scheduler (internal/detsim) attribute every wakeup
// to the exact step that caused it. Hooks run with the table's mutex held
// and must not call back into the LockTable.
type WaitHooks struct {
	OnWait func(tx uint64, key LockKey)
	OnWake func(tx uint64, key LockKey, err error)
}

// LockTable is the engine's lock manager: row-granularity S/X locks with
// FIFO wait queues, lock upgrade, and waits-for deadlock detection that
// aborts the requester closing a cycle (returning core.ErrDeadlock).
type LockTable struct {
	mu    sync.Mutex
	locks map[LockKey]*lock
	held  map[uint64][]LockKey // per-transaction held keys, for ReleaseAll
	hooks WaitHooks
}

// SetHooks installs wait/wake observers (zero value disables). Not safe
// to call while transactions are in flight.
func (lt *LockTable) SetHooks(h WaitHooks) {
	lt.mu.Lock()
	lt.hooks = h
	lt.mu.Unlock()
}

// notifyWait invokes the OnWait hook. Caller holds lt.mu.
func (lt *LockTable) notifyWait(tx uint64, key LockKey) {
	if lt.hooks.OnWait != nil {
		lt.hooks.OnWait(tx, key)
	}
}

// notifyWake invokes the OnWake hook. Caller holds lt.mu.
func (lt *LockTable) notifyWake(tx uint64, key LockKey, err error) {
	if lt.hooks.OnWake != nil {
		lt.hooks.OnWake(tx, key, err)
	}
}

// NewLockTable creates an empty lock manager.
func NewLockTable() *LockTable {
	return &LockTable{
		locks: make(map[LockKey]*lock),
		held:  make(map[uint64][]LockKey),
	}
}

// Acquire obtains the lock on key at the given mode for tx, blocking
// while incompatible holders or earlier waiters exist. It returns
// core.ErrDeadlock when waiting would close a cycle in the waits-for
// graph. Re-acquiring a held lock is a no-op; Shared→Exclusive upgrades
// are honoured (jumping the queue when tx is the sole holder, which is
// how real lock managers avoid trivial upgrade deadlocks).
func (lt *LockTable) Acquire(tx uint64, key LockKey, mode LockMode) error {
	lt.mu.Lock()
	l := lt.locks[key]
	if l == nil {
		l = &lock{holders: make(map[uint64]LockMode)}
		lt.locks[key] = l
	}

	if hm, holds := l.holders[tx]; holds {
		if hm == Exclusive || hm == mode {
			lt.mu.Unlock()
			return nil // already strong enough
		}
		// Shared → Exclusive upgrade.
		if l.compatibleWithHolders(tx, Exclusive) {
			l.holders[tx] = Exclusive
			lt.mu.Unlock()
			return nil
		}
		// Must wait for other shared holders to drain. Upgrades go to
		// the front of the queue.
		w := &waiter{tx: tx, mode: Exclusive, ready: make(chan error, 1)}
		if lt.wouldDeadlock(tx, l) {
			lt.mu.Unlock()
			return core.ErrDeadlock
		}
		l.queue = append([]*waiter{w}, l.queue...)
		lt.notifyWait(tx, key)
		lt.mu.Unlock()
		return <-w.ready
	}

	if len(l.queue) == 0 && l.compatibleWithHolders(tx, mode) {
		l.holders[tx] = mode
		lt.held[tx] = append(lt.held[tx], key)
		lt.mu.Unlock()
		return nil
	}

	w := &waiter{tx: tx, mode: mode, ready: make(chan error, 1)}
	if lt.wouldDeadlock(tx, l) {
		lt.mu.Unlock()
		return core.ErrDeadlock
	}
	l.queue = append(l.queue, w)
	lt.notifyWait(tx, key)
	lt.mu.Unlock()
	return <-w.ready
}

// wouldDeadlock reports whether tx blocking on lock l closes a cycle in
// the waits-for graph. Called with lt.mu held. The requester waits for
// every incompatible holder and every queued waiter of l; transitively, a
// blocked transaction waits for the holders/queue of the lock it is
// queued on.
func (lt *LockTable) wouldDeadlock(tx uint64, l *lock) bool {
	// Build the blocked-on relation lazily over current lock states.
	visited := make(map[uint64]bool)
	var reaches func(from uint64) bool // true if `from` (transitively) waits for tx
	reaches = func(from uint64) bool {
		if from == tx {
			return true
		}
		if visited[from] {
			return false
		}
		visited[from] = true
		for _, lk := range lt.locks {
			for _, w := range lk.queue {
				if w.tx != from {
					continue
				}
				for h := range lk.holders {
					if h != from && reaches(h) {
						return true
					}
				}
				for _, w2 := range lk.queue {
					if w2.tx != from && reaches(w2.tx) {
						return true
					}
				}
			}
		}
		return false
	}
	for h := range l.holders {
		if h != tx && reaches(h) {
			return true
		}
	}
	for _, w := range l.queue {
		if w.tx != tx && reaches(w.tx) {
			return true
		}
	}
	return false
}

// Release drops tx's lock on key (if held) and grants to waiters.
func (lt *LockTable) Release(tx uint64, key LockKey) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	lt.releaseLocked(tx, key)
	keys := lt.held[tx]
	for i, k := range keys {
		if k == key {
			lt.held[tx] = append(keys[:i], keys[i+1:]...)
			break
		}
	}
}

// ReleaseAll drops every lock tx holds and removes tx from any wait
// queues (a belt-and-braces cleanup for aborted transactions).
func (lt *LockTable) ReleaseAll(tx uint64) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	for _, key := range lt.held[tx] {
		lt.releaseLocked(tx, key)
	}
	delete(lt.held, tx)
	// Remove any dangling queued requests by tx (e.g. a racing Acquire
	// that lost to an abort). Grant whatever becomes available.
	for key, l := range lt.locks {
		changed := false
		kept := l.queue[:0]
		for _, w := range l.queue {
			if w.tx == tx {
				lt.notifyWake(w.tx, key, core.ErrDeadlock)
				w.ready <- core.ErrDeadlock
				changed = true
				continue
			}
			kept = append(kept, w)
		}
		l.queue = kept
		if changed {
			lt.grantLocked(key, l)
		}
	}
}

// releaseLocked drops tx's hold on key and promotes waiters. Caller
// holds lt.mu.
func (lt *LockTable) releaseLocked(tx uint64, key LockKey) {
	l := lt.locks[key]
	if l == nil {
		return
	}
	if _, held := l.holders[tx]; !held {
		return
	}
	delete(l.holders, tx)
	lt.grantLocked(key, l)
}

// grantLocked promotes as many queued waiters as compatibility allows:
// the head waiter, then (if it was shared) consecutive shared waiters.
// Caller holds lt.mu.
func (lt *LockTable) grantLocked(key LockKey, l *lock) {
	for len(l.queue) > 0 {
		w := l.queue[0]
		if !l.compatibleWithHolders(w.tx, w.mode) {
			break
		}
		l.queue = l.queue[1:]
		if prev, holds := l.holders[w.tx]; holds {
			// Upgrade grant: strengthen in place (key already in held).
			if w.mode == Exclusive || prev == Exclusive {
				l.holders[w.tx] = Exclusive
			}
		} else {
			l.holders[w.tx] = w.mode
			lt.held[w.tx] = append(lt.held[w.tx], key)
		}
		lt.notifyWake(w.tx, key, nil)
		w.ready <- nil
		if w.mode == Exclusive {
			break
		}
	}
	if len(l.holders) == 0 && len(l.queue) == 0 {
		delete(lt.locks, key)
	}
}

// Holds reports whether tx currently holds key at least at mode.
func (lt *LockTable) Holds(tx uint64, key LockKey, mode LockMode) bool {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	l := lt.locks[key]
	if l == nil {
		return false
	}
	hm, ok := l.holders[tx]
	return ok && (hm == Exclusive || hm == mode)
}

// HeldKeys returns the keys tx holds; diagnostics and tests.
func (lt *LockTable) HeldKeys(tx uint64) []LockKey {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	out := make([]LockKey, len(lt.held[tx]))
	copy(out, lt.held[tx])
	return out
}

// QueueLen returns the number of waiters on key; diagnostics and tests.
func (lt *LockTable) QueueLen(key LockKey) int {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if l := lt.locks[key]; l != nil {
		return len(l.queue)
	}
	return 0
}

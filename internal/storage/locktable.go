package storage

import (
	"sync"
	"time"

	"sicost/internal/core"
	"sicost/internal/metrics"
	"sicost/internal/trace"
)

// LockMode is the strength of a row lock.
type LockMode uint8

// Lock modes: shared (readers under 2PL) and exclusive (writers under
// every mode; select-for-update).
const (
	Shared LockMode = iota
	Exclusive
)

// String names the mode.
func (m LockMode) String() string {
	if m == Shared {
		return "S"
	}
	return "X"
}

// LockKey identifies one lockable resource: a row of a table.
type LockKey struct {
	Table string
	Key   core.Value
}

// waiter is one queued lock request.
type waiter struct {
	tx    uint64
	mode  LockMode
	ready chan error // buffered(1); receives nil on grant
}

// lock is the state of one locked resource.
type lock struct {
	holders map[uint64]LockMode
	queue   []*waiter
}

// compatibleWithHolders reports whether a request by tx at mode can be
// granted given current holders (ignoring any lock tx itself holds).
func (l *lock) compatibleWithHolders(tx uint64, mode LockMode) bool {
	for h, hm := range l.holders {
		if h == tx {
			continue
		}
		if mode == Exclusive || hm == Exclusive {
			return false
		}
	}
	return true
}

// WaitHooks observe the lock manager's blocking points. OnWait fires when
// a request is queued and its transaction is about to block; OnWake fires
// when a queued request is resolved — granted (err == nil) or ejected
// (err != nil, e.g. the transaction was aborted while waiting). OnWake is
// invoked synchronously from the goroutine that resolves the wait (the
// releaser), before that goroutine's own operation returns, which is what
// lets a deterministic scheduler (internal/detsim) attribute every wakeup
// to the exact step that caused it. Hooks run with lock-table stripe
// mutexes held (OnWait with every stripe held, OnWake with the key's
// stripe held) and must not call back into the LockTable.
type WaitHooks struct {
	OnWait func(tx uint64, key LockKey)
	OnWake func(tx uint64, key LockKey, err error)
}

// DefaultLockStripes is the stripe count of NewLockTable: enough that
// independent transactions on a many-core machine rarely collide on a
// stripe mutex, small enough that the all-stripes deadlock-check path
// stays cheap.
const DefaultLockStripes = 64

// lockStripe is one hash partition of the lock table: its own mutex and
// lock map, so lock traffic on rows that hash to different stripes
// never serializes.
type lockStripe struct {
	mu    sync.Mutex
	locks map[LockKey]*lock
}

// txShard holds per-transaction bookkeeping, sharded by transaction id
// (a different hash space than the key stripes): which keys each
// transaction holds and where it has queued waiters. ReleaseAll uses it
// to visit exactly the stripes a transaction touched instead of
// sweeping the whole table.
type txShard struct {
	mu     sync.Mutex
	held   map[uint64][]LockKey
	queued map[uint64][]LockKey
}

// LockTable is the engine's lock manager: row-granularity S/X locks with
// FIFO wait queues, lock upgrade, and waits-for deadlock detection that
// aborts the requester closing a cycle (returning core.ErrDeadlock).
//
// The table is hash-sharded into stripes (PostgreSQL's lock-manager
// partitioning). Grants that do not block touch exactly one stripe plus
// the requester's txShard. A request that must wait takes the slow
// path: it locks every stripe in canonical (index) order — making the
// waits-for edge snapshot globally consistent and the lock order
// cycle-free — re-checks grantability, runs deadlock detection over the
// snapshot, and only then queues. Release and wake-up are per-stripe
// again.
//
// Mutex order: stripe mutexes in ascending index, then txShard
// mutexes. Code holding a txShard mutex never acquires a stripe mutex.
type LockTable struct {
	stripes []*lockStripe
	mask    uint64
	txs     []*txShard
	txMask  uint64
	hooks   WaitHooks

	// lockPool recycles lock entries (with their holder maps) across
	// the acquire/release churn of short transactions.
	lockPool sync.Pool

	// Per-stripe contention counters (shard = stripe index): fastPath
	// counts acquires granted without blocking, waits counts acquires
	// that queued, deadlocks counts requests denied with ErrDeadlock,
	// and waitNanos accumulates blocked time.
	fastPath  *metrics.ContentionCounter
	waits     *metrics.ContentionCounter
	deadlocks *metrics.ContentionCounter
	waitNanos *metrics.ContentionCounter

	// tracer records EvLockWait/EvLockWake lifecycle events; nil
	// disables. Events are emitted only on the blocking slow path, never
	// on the fast path, so the unblocked acquire stays trace-free.
	tracer *trace.Recorder
	// waitHist, when set, receives the duration of every blocked
	// acquire (the engine wires it to its TxnMetrics.LockWait).
	waitHist *metrics.Histogram
}

// NewLockTable creates an empty lock manager with DefaultLockStripes
// stripes.
func NewLockTable() *LockTable { return NewLockTableStriped(DefaultLockStripes) }

// NewLockTableStriped creates a lock manager with at least n stripes
// (rounded up to a power of two, minimum 1). n = 1 degenerates to the
// classic single-mutex lock table; the property tests exploit this to
// check the sharded and unsharded code paths observably agree.
func NewLockTableStriped(n int) *LockTable {
	size := 1
	for size < n {
		size <<= 1
	}
	lt := &LockTable{
		stripes:   make([]*lockStripe, size),
		mask:      uint64(size - 1),
		txs:       make([]*txShard, size),
		txMask:    uint64(size - 1),
		fastPath:  metrics.NewContentionCounter(size),
		waits:     metrics.NewContentionCounter(size),
		deadlocks: metrics.NewContentionCounter(size),
		waitNanos: metrics.NewContentionCounter(size),
	}
	lt.lockPool.New = func() any {
		return &lock{holders: make(map[uint64]LockMode, 2)}
	}
	for i := range lt.stripes {
		lt.stripes[i] = &lockStripe{locks: make(map[LockKey]*lock)}
		lt.txs[i] = &txShard{
			held:   make(map[uint64][]LockKey),
			queued: make(map[uint64][]LockKey),
		}
	}
	return lt
}

// Stripes returns the stripe count (a power of two).
func (lt *LockTable) Stripes() int { return len(lt.stripes) }

// stripeIndex maps a key to its stripe.
func (lt *LockTable) stripeIndex(key LockKey) int {
	return int(hashLockKey(key) & lt.mask)
}

// txShardOf maps a transaction id to its bookkeeping shard. Transaction
// ids are sequential, so the low bits alone spread them evenly.
func (lt *LockTable) txShardOf(tx uint64) *txShard {
	return lt.txs[tx&lt.txMask]
}

// newLock takes a recycled (or fresh) empty lock entry.
func (lt *LockTable) newLock() *lock { return lt.lockPool.Get().(*lock) }

// freeLock recycles an entry that was just removed from a stripe map.
// Caller guarantees holders and queue are empty and no concurrent
// reference exists (entries are only reachable through stripe maps,
// under the stripe mutex).
func (lt *LockTable) freeLock(l *lock) {
	l.queue = nil
	lt.lockPool.Put(l)
}

// addHeld records that tx holds key.
func (lt *LockTable) addHeld(tx uint64, key LockKey) {
	sh := lt.txShardOf(tx)
	sh.mu.Lock()
	sh.held[tx] = append(sh.held[tx], key)
	sh.mu.Unlock()
}

// removeHeld drops one record of tx holding key.
func (lt *LockTable) removeHeld(tx uint64, key LockKey) {
	sh := lt.txShardOf(tx)
	sh.mu.Lock()
	keys := sh.held[tx]
	for i, k := range keys {
		if k == key {
			sh.held[tx] = append(keys[:i], keys[i+1:]...)
			break
		}
	}
	if len(sh.held[tx]) == 0 {
		delete(sh.held, tx)
	}
	sh.mu.Unlock()
}

// addQueued records that tx has a queued waiter on key.
func (lt *LockTable) addQueued(tx uint64, key LockKey) {
	sh := lt.txShardOf(tx)
	sh.mu.Lock()
	sh.queued[tx] = append(sh.queued[tx], key)
	sh.mu.Unlock()
}

// removeQueued drops one record of tx waiting on key.
func (lt *LockTable) removeQueued(tx uint64, key LockKey) {
	sh := lt.txShardOf(tx)
	sh.mu.Lock()
	keys := sh.queued[tx]
	for i, k := range keys {
		if k == key {
			sh.queued[tx] = append(keys[:i], keys[i+1:]...)
			break
		}
	}
	if len(sh.queued[tx]) == 0 {
		delete(sh.queued, tx)
	}
	sh.mu.Unlock()
}

// lockAll acquires every stripe mutex in canonical (ascending index)
// order; unlockAll releases them. All cross-stripe operations use this
// order, so stripe mutexes can never deadlock against each other.
func (lt *LockTable) lockAll() {
	for _, s := range lt.stripes {
		s.mu.Lock()
	}
}

func (lt *LockTable) unlockAll() {
	for i := len(lt.stripes) - 1; i >= 0; i-- {
		lt.stripes[i].mu.Unlock()
	}
}

// SetHooks installs wait/wake observers (zero value disables). Not safe
// to call while transactions are in flight.
func (lt *LockTable) SetHooks(h WaitHooks) {
	lt.lockAll()
	lt.hooks = h
	lt.unlockAll()
}

// SetTracer installs the lifecycle-event recorder (nil disables). Not
// safe to call while transactions are in flight.
func (lt *LockTable) SetTracer(r *trace.Recorder) {
	lt.lockAll()
	lt.tracer = r
	lt.unlockAll()
}

// SetWaitHistogram installs the blocked-acquire duration histogram (nil
// disables). Not safe to call while transactions are in flight.
func (lt *LockTable) SetWaitHistogram(h *metrics.Histogram) {
	lt.lockAll()
	lt.waitHist = h
	lt.unlockAll()
}

// notifyWait invokes the OnWait hook. Caller holds the key's stripe
// mutex (the slow path holds every stripe).
func (lt *LockTable) notifyWait(tx uint64, key LockKey) {
	if lt.hooks.OnWait != nil {
		lt.hooks.OnWait(tx, key)
	}
}

// notifyWake invokes the OnWake hook. Caller holds the key's stripe
// mutex.
func (lt *LockTable) notifyWake(tx uint64, key LockKey, err error) {
	if lt.hooks.OnWake != nil {
		lt.hooks.OnWake(tx, key, err)
	}
}

// tryGrantLocked attempts to grant (tx, key, mode) without waiting:
// re-acquisition of a held lock, sole-holder upgrade, or a fresh grant
// when the queue is empty and every holder is compatible. It mutates
// state only when it grants. Caller holds s.mu.
func (lt *LockTable) tryGrantLocked(s *lockStripe, tx uint64, key LockKey, mode LockMode) bool {
	l := s.locks[key]
	if l == nil {
		l = lt.newLock()
		l.holders[tx] = mode
		s.locks[key] = l
		lt.addHeld(tx, key)
		return true
	}
	if hm, holds := l.holders[tx]; holds {
		if hm == Exclusive || hm == mode {
			return true // already strong enough
		}
		// Shared → Exclusive upgrade: jumps the queue when tx is the
		// sole holder, which is how real lock managers avoid trivial
		// upgrade deadlocks.
		if l.compatibleWithHolders(tx, Exclusive) {
			l.holders[tx] = Exclusive
			return true
		}
		return false
	}
	if len(l.queue) == 0 && l.compatibleWithHolders(tx, mode) {
		l.holders[tx] = mode
		lt.addHeld(tx, key)
		return true
	}
	return false
}

// Acquire obtains the lock on key at the given mode for tx, blocking
// while incompatible holders or earlier waiters exist. It returns
// core.ErrDeadlock when waiting would close a cycle in the waits-for
// graph. Re-acquiring a held lock is a no-op; Shared→Exclusive upgrades
// are honoured (jumping the queue when tx is the sole holder).
func (lt *LockTable) Acquire(tx uint64, key LockKey, mode LockMode) error {
	return lt.AcquireTimeout(tx, key, mode, 0)
}

// AcquireTimeout is Acquire with a lock-wait deadline: a request still
// queued after timeout is withdrawn and fails with core.ErrLockTimeout
// (PostgreSQL's lock_timeout discipline — the statement's transaction
// aborts and the client retries). timeout <= 0 waits forever.
func (lt *LockTable) AcquireTimeout(tx uint64, key LockKey, mode LockMode, timeout time.Duration) error {
	return lt.AcquireUntil(tx, key, mode, timeout, time.Time{})
}

// AcquireUntil is AcquireTimeout generalized with an absolute
// transaction deadline: the wait is bounded by whichever of timeout
// (relative, the lock_timeout discipline) and deadline (absolute, the
// transaction's overall budget) bites first. When the deadline is the
// binding bound its expiry fails with core.ErrTxDeadline — not
// retriable, the transaction's time is spent — while a plain lock
// timeout keeps failing with the retriable core.ErrLockTimeout. A zero
// deadline means no deadline; an already-expired deadline fails without
// touching the queue.
func (lt *LockTable) AcquireUntil(tx uint64, key LockKey, mode LockMode, timeout time.Duration, deadline time.Time) error {
	wait := timeout
	waitErr := core.ErrLockTimeout
	if !deadline.IsZero() {
		rem := time.Until(deadline)
		if rem <= 0 {
			return core.ErrTxDeadline
		}
		if timeout <= 0 || rem < timeout {
			wait = rem
			waitErr = core.ErrTxDeadline
		}
	}
	idx := lt.stripeIndex(key)
	s := lt.stripes[idx]
	s.mu.Lock()
	granted := lt.tryGrantLocked(s, tx, key, mode)
	s.mu.Unlock()
	if granted {
		lt.fastPath.Inc(idx)
		return nil
	}
	return lt.acquireSlow(tx, key, mode, idx, wait, waitErr)
}

// acquireSlow is the blocking path: with every stripe locked in
// canonical order it re-checks grantability (the state may have moved
// between the fast path and here), snapshots the global waits-for
// relation for deadlock detection, and queues the request. The wait
// itself happens with no stripe mutex held. timeoutErr is the verdict a
// timed-out wait fails with (ErrLockTimeout for the lock_timeout bound,
// ErrTxDeadline when the transaction deadline was the binding bound).
func (lt *LockTable) acquireSlow(tx uint64, key LockKey, mode LockMode, idx int, timeout time.Duration, timeoutErr error) error {
	s := lt.stripes[idx]
	lt.lockAll()
	if lt.tryGrantLocked(s, tx, key, mode) {
		lt.unlockAll()
		lt.fastPath.Inc(idx)
		return nil
	}
	l := s.locks[key] // non-nil: tryGrantLocked grants when absent
	if lt.wouldDeadlock(tx, l) {
		lt.unlockAll()
		lt.deadlocks.Inc(idx)
		return core.ErrDeadlock
	}
	_, upgrade := l.holders[tx]
	w := &waiter{tx: tx, mode: mode, ready: make(chan error, 1)}
	if upgrade {
		// Upgrades wait only for the other shared holders to drain and
		// go to the front of the queue.
		w.mode = Exclusive
		l.queue = append([]*waiter{w}, l.queue...)
	} else {
		l.queue = append(l.queue, w)
	}
	lt.addQueued(tx, key)
	lt.notifyWait(tx, key)
	depth := len(l.queue) - 1 // queue position: waiters ahead of this one
	lt.unlockAll()
	lt.waits.Inc(idx)
	// Trace and histogram work happens only here, on the already-blocked
	// path — the fast path above stays free of both.
	if lt.tracer.Enabled() {
		lt.tracer.Emit(trace.Event{
			Kind: trace.EvLockWait, Tx: tx,
			Table: key.Table, Key: key.Key, Depth: depth,
		})
	}
	start := time.Now()
	var err error
	if timeout <= 0 {
		err = <-w.ready
	} else {
		timer := time.NewTimer(timeout)
		select {
		case err = <-w.ready:
			timer.Stop()
		case <-timer.C:
			err = lt.withdraw(s, tx, key, w, timeoutErr)
		}
	}
	elapsed := time.Since(start)
	lt.waitNanos.Add(idx, uint64(elapsed))
	if lt.waitHist != nil {
		lt.waitHist.Record(elapsed)
	}
	if lt.tracer.Enabled() {
		lt.tracer.Emit(trace.Event{
			Kind: trace.EvLockWake, Tx: tx,
			Table: key.Table, Key: key.Key,
			WaitNS: elapsed.Nanoseconds(),
			Reason: uint8(core.ClassifyAbort(err)),
		})
	}
	return err
}

// withdraw removes a timed-out waiter from its queue. The race with a
// concurrent grant or ejection is resolved under the stripe mutex: a
// resolver sends on w.ready (buffered) before releasing the stripe, so
// if w is no longer queued the verdict is already in the channel and
// wins — a granted lock is returned, not leaked.
func (lt *LockTable) withdraw(s *lockStripe, tx uint64, key LockKey, w *waiter, timeoutErr error) error {
	s.mu.Lock()
	if l := s.locks[key]; l != nil {
		for i, q := range l.queue {
			if q != w {
				continue
			}
			l.queue = append(l.queue[:i], l.queue[i+1:]...)
			lt.notifyWake(tx, key, timeoutErr)
			// Removing a waiter (it may have been at the head, holding
			// compatible successors back) can unblock the queue.
			lt.grantLocked(s, key, l)
			s.mu.Unlock()
			lt.removeQueued(tx, key)
			return timeoutErr
		}
	}
	s.mu.Unlock()
	// Already granted or ejected; the resolver's send precedes our
	// failed queue scan, so this receive cannot block.
	return <-w.ready
}

// wouldDeadlock reports whether tx blocking on lock l closes a cycle in
// the waits-for graph. Called with every stripe mutex held, so the edge
// snapshot is globally consistent. The requester waits for every
// incompatible holder and every queued waiter of l; transitively, a
// blocked transaction waits for the holders/queue of the lock it is
// queued on.
func (lt *LockTable) wouldDeadlock(tx uint64, l *lock) bool {
	// Build the blocked-on relation lazily over current lock states.
	visited := make(map[uint64]bool)
	var reaches func(from uint64) bool // true if `from` (transitively) waits for tx
	reaches = func(from uint64) bool {
		if from == tx {
			return true
		}
		if visited[from] {
			return false
		}
		visited[from] = true
		for _, s := range lt.stripes {
			for _, lk := range s.locks {
				for _, w := range lk.queue {
					if w.tx != from {
						continue
					}
					for h := range lk.holders {
						if h != from && reaches(h) {
							return true
						}
					}
					for _, w2 := range lk.queue {
						if w2.tx != from && reaches(w2.tx) {
							return true
						}
					}
				}
			}
		}
		return false
	}
	for h := range l.holders {
		if h != tx && reaches(h) {
			return true
		}
	}
	for _, w := range l.queue {
		if w.tx != tx && reaches(w.tx) {
			return true
		}
	}
	return false
}

// Release drops tx's lock on key (if held) and grants to waiters.
func (lt *LockTable) Release(tx uint64, key LockKey) {
	s := lt.stripes[lt.stripeIndex(key)]
	s.mu.Lock()
	released := lt.releaseLocked(s, tx, key)
	s.mu.Unlock()
	if released {
		lt.removeHeld(tx, key)
	}
}

// ReleaseAll drops every lock tx holds and removes tx from any wait
// queues (a belt-and-braces cleanup for aborted transactions). The
// txShard bookkeeping names exactly the keys involved, so only the
// stripes tx touched are visited. The loop absorbs the one race this
// has: a concurrent releaser may grant tx's queued waiter between the
// snapshot and the ejection, turning a queued entry into a held one —
// the next pass releases it. Each pass strictly shrinks tx's footprint
// (tx issues no new acquires while dying), so the loop terminates.
func (lt *LockTable) ReleaseAll(tx uint64) {
	sh := lt.txShardOf(tx)
	for {
		sh.mu.Lock()
		held := sh.held[tx]
		queued := sh.queued[tx]
		delete(sh.held, tx)
		delete(sh.queued, tx)
		sh.mu.Unlock()
		if len(held) == 0 && len(queued) == 0 {
			return
		}
		// Eject queued requests first (e.g. a racing Acquire that lost
		// to an abort), so a release below can never re-grant to the
		// dying transaction's own queued upgrade.
		for _, key := range queued {
			s := lt.stripes[lt.stripeIndex(key)]
			s.mu.Lock()
			if l := s.locks[key]; l != nil {
				for i, w := range l.queue {
					if w.tx != tx {
						continue
					}
					l.queue = append(l.queue[:i], l.queue[i+1:]...)
					lt.notifyWake(tx, key, core.ErrDeadlock)
					w.ready <- core.ErrDeadlock
					lt.grantLocked(s, key, l)
					break
				}
			}
			s.mu.Unlock()
		}
		for _, key := range held {
			s := lt.stripes[lt.stripeIndex(key)]
			s.mu.Lock()
			lt.releaseLocked(s, tx, key)
			s.mu.Unlock()
		}
	}
}

// releaseLocked drops tx's hold on key and promotes waiters, reporting
// whether tx actually held it. Caller holds s.mu.
func (lt *LockTable) releaseLocked(s *lockStripe, tx uint64, key LockKey) bool {
	l := s.locks[key]
	if l == nil {
		return false
	}
	if _, held := l.holders[tx]; !held {
		return false
	}
	delete(l.holders, tx)
	lt.grantLocked(s, key, l)
	return true
}

// grantLocked promotes as many queued waiters as compatibility allows:
// the head waiter, then (if it was shared) consecutive shared waiters.
// Caller holds s.mu.
func (lt *LockTable) grantLocked(s *lockStripe, key LockKey, l *lock) {
	for len(l.queue) > 0 {
		w := l.queue[0]
		if !l.compatibleWithHolders(w.tx, w.mode) {
			break
		}
		l.queue = l.queue[1:]
		lt.removeQueued(w.tx, key)
		if prev, holds := l.holders[w.tx]; holds {
			// Upgrade grant: strengthen in place (key already in held).
			if w.mode == Exclusive || prev == Exclusive {
				l.holders[w.tx] = Exclusive
			}
		} else {
			l.holders[w.tx] = w.mode
			lt.addHeld(w.tx, key)
		}
		lt.notifyWake(w.tx, key, nil)
		w.ready <- nil
		if w.mode == Exclusive {
			break
		}
	}
	if len(l.holders) == 0 && len(l.queue) == 0 {
		delete(s.locks, key)
		lt.freeLock(l)
	}
}

// Holds reports whether tx currently holds key at least at mode.
func (lt *LockTable) Holds(tx uint64, key LockKey, mode LockMode) bool {
	s := lt.stripes[lt.stripeIndex(key)]
	s.mu.Lock()
	defer s.mu.Unlock()
	l := s.locks[key]
	if l == nil {
		return false
	}
	hm, ok := l.holders[tx]
	return ok && (hm == Exclusive || hm == mode)
}

// HeldKeys returns the keys tx holds; diagnostics and tests.
func (lt *LockTable) HeldKeys(tx uint64) []LockKey {
	sh := lt.txShardOf(tx)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	out := make([]LockKey, len(sh.held[tx]))
	copy(out, sh.held[tx])
	return out
}

// QueueLen returns the number of waiters on key; diagnostics and tests.
func (lt *LockTable) QueueLen(key LockKey) int {
	s := lt.stripes[lt.stripeIndex(key)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if l := s.locks[key]; l != nil {
		return len(l.queue)
	}
	return 0
}

// Outstanding reports the number of granted holds and queued waiters
// across the whole table. Quiescent databases must report 0/0 — the
// chaos harness's lock-leak invariant (a faulted commit or injected
// panic must not strand a lock entry).
func (lt *LockTable) Outstanding() (held, queued int) {
	lt.lockAll()
	for _, s := range lt.stripes {
		for _, l := range s.locks {
			held += len(l.holders)
			queued += len(l.queue)
		}
	}
	lt.unlockAll()
	return held, queued
}

// LockStats is a point-in-time snapshot of the lock manager's
// contention counters: how often acquires were satisfied without
// blocking, how often they queued, how long they waited, and how many
// were denied as deadlock victims — per stripe and in aggregate. The
// experiment harness reports these alongside throughput so lock-wait
// time is attributable per run.
type LockStats struct {
	Stripes   int
	FastPath  uint64        // acquires granted without blocking
	Waits     uint64        // acquires that queued
	Deadlocks uint64        // requests denied with ErrDeadlock
	WaitTime  time.Duration // total blocked time across waiters

	PerStripeWaits []uint64 // queue events by stripe (contention skew)
}

// Stats snapshots the contention counters.
func (lt *LockTable) Stats() LockStats {
	return LockStats{
		Stripes:        len(lt.stripes),
		FastPath:       lt.fastPath.Total(),
		Waits:          lt.waits.Total(),
		Deadlocks:      lt.deadlocks.Total(),
		WaitTime:       time.Duration(lt.waitNanos.Total()),
		PerStripeWaits: lt.waits.PerShard(),
	}
}

// Delta returns s minus an earlier snapshot prev (counter-wise), for
// windowed measurement (e.g. excluding a workload's ramp-up phase).
func (s LockStats) Delta(prev LockStats) LockStats {
	d := LockStats{
		Stripes:   s.Stripes,
		FastPath:  s.FastPath - prev.FastPath,
		Waits:     s.Waits - prev.Waits,
		Deadlocks: s.Deadlocks - prev.Deadlocks,
		WaitTime:  s.WaitTime - prev.WaitTime,
	}
	d.PerStripeWaits = make([]uint64, len(s.PerStripeWaits))
	for i := range d.PerStripeWaits {
		p := uint64(0)
		if i < len(prev.PerStripeWaits) {
			p = prev.PerStripeWaits[i]
		}
		d.PerStripeWaits[i] = s.PerStripeWaits[i] - p
	}
	return d
}

package storage

import (
	"errors"
	"sync"
	"testing"
	"time"

	"sicost/internal/core"
)

func lk(table string, k int64) LockKey {
	return LockKey{Table: table, Key: core.Int(k)}
}

func TestExclusiveBlocksAndReleases(t *testing.T) {
	lt := NewLockTable()
	key := lk("Checking", 1)
	if err := lt.Acquire(1, key, Exclusive); err != nil {
		t.Fatal(err)
	}
	if !lt.Holds(1, key, Exclusive) {
		t.Fatal("holder not recorded")
	}

	got := make(chan error, 1)
	go func() { got <- lt.Acquire(2, key, Exclusive) }()

	select {
	case err := <-got:
		t.Fatalf("tx2 acquired while tx1 holds: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	if lt.QueueLen(key) != 1 {
		t.Fatalf("queue length = %d", lt.QueueLen(key))
	}

	lt.Release(1, key)
	if err := <-got; err != nil {
		t.Fatal(err)
	}
	if !lt.Holds(2, key, Exclusive) {
		t.Fatal("tx2 not promoted to holder")
	}
}

func TestSharedLocksCoexist(t *testing.T) {
	lt := NewLockTable()
	key := lk("Saving", 1)
	for tx := uint64(1); tx <= 3; tx++ {
		if err := lt.Acquire(tx, key, Shared); err != nil {
			t.Fatal(err)
		}
	}
	// An exclusive request must wait.
	got := make(chan error, 1)
	go func() { got <- lt.Acquire(4, key, Exclusive) }()
	select {
	case <-got:
		t.Fatal("exclusive granted alongside shared holders")
	case <-time.After(20 * time.Millisecond):
	}
	lt.Release(1, key)
	lt.Release(2, key)
	lt.Release(3, key)
	if err := <-got; err != nil {
		t.Fatal(err)
	}
}

func TestReacquireIsNoop(t *testing.T) {
	lt := NewLockTable()
	key := lk("T", 1)
	if err := lt.Acquire(1, key, Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := lt.Acquire(1, key, Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := lt.Acquire(1, key, Shared); err != nil {
		t.Fatal(err) // X covers S
	}
	lt.Release(1, key)
	// After the single release, the lock is gone (no double-count).
	if lt.Holds(1, key, Shared) {
		t.Fatal("lock survived release")
	}
}

func TestUpgradeSoleHolder(t *testing.T) {
	lt := NewLockTable()
	key := lk("T", 1)
	if err := lt.Acquire(1, key, Shared); err != nil {
		t.Fatal(err)
	}
	if err := lt.Acquire(1, key, Exclusive); err != nil {
		t.Fatal(err)
	}
	if !lt.Holds(1, key, Exclusive) {
		t.Fatal("upgrade failed")
	}
}

func TestUpgradeWaitsForOtherSharers(t *testing.T) {
	lt := NewLockTable()
	key := lk("T", 1)
	if err := lt.Acquire(1, key, Shared); err != nil {
		t.Fatal(err)
	}
	if err := lt.Acquire(2, key, Shared); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- lt.Acquire(1, key, Exclusive) }()
	select {
	case <-got:
		t.Fatal("upgrade granted while another sharer exists")
	case <-time.After(20 * time.Millisecond):
	}
	lt.Release(2, key)
	if err := <-got; err != nil {
		t.Fatal(err)
	}
	if !lt.Holds(1, key, Exclusive) {
		t.Fatal("upgrade not applied")
	}
}

func TestUpgradeDeadlockDetected(t *testing.T) {
	// Classic upgrade deadlock: both hold S, both want X.
	lt := NewLockTable()
	key := lk("T", 1)
	if err := lt.Acquire(1, key, Shared); err != nil {
		t.Fatal(err)
	}
	if err := lt.Acquire(2, key, Shared); err != nil {
		t.Fatal(err)
	}
	got1 := make(chan error, 1)
	go func() { got1 <- lt.Acquire(1, key, Exclusive) }()
	time.Sleep(10 * time.Millisecond) // let tx1 queue its upgrade

	err2 := lt.Acquire(2, key, Exclusive)
	if !errors.Is(err2, core.ErrDeadlock) {
		t.Fatalf("tx2 upgrade err = %v, want deadlock", err2)
	}
	// tx2 aborts: releases its share; tx1's upgrade proceeds.
	lt.ReleaseAll(2)
	if err := <-got1; err != nil {
		t.Fatal(err)
	}
}

func TestTwoRowDeadlockDetected(t *testing.T) {
	lt := NewLockTable()
	a, b := lk("T", 1), lk("T", 2)
	if err := lt.Acquire(1, a, Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := lt.Acquire(2, b, Exclusive); err != nil {
		t.Fatal(err)
	}
	got1 := make(chan error, 1)
	go func() { got1 <- lt.Acquire(1, b, Exclusive) }() // tx1 waits for tx2
	time.Sleep(10 * time.Millisecond)

	// tx2 requesting a closes the cycle: must get ErrDeadlock at once.
	err := lt.Acquire(2, a, Exclusive)
	if !errors.Is(err, core.ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	lt.ReleaseAll(2) // victim aborts
	if err := <-got1; err != nil {
		t.Fatalf("survivor's acquire failed: %v", err)
	}
}

func TestThreeWayDeadlockDetected(t *testing.T) {
	lt := NewLockTable()
	a, b, c := lk("T", 1), lk("T", 2), lk("T", 3)
	mustAcquire := func(tx uint64, k LockKey) {
		t.Helper()
		if err := lt.Acquire(tx, k, Exclusive); err != nil {
			t.Fatal(err)
		}
	}
	mustAcquire(1, a)
	mustAcquire(2, b)
	mustAcquire(3, c)
	g1 := make(chan error, 1)
	g2 := make(chan error, 1)
	go func() { g1 <- lt.Acquire(1, b, Exclusive) }()
	go func() { g2 <- lt.Acquire(2, c, Exclusive) }()
	time.Sleep(10 * time.Millisecond)
	if err := lt.Acquire(3, a, Exclusive); !errors.Is(err, core.ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	lt.ReleaseAll(3)
	if err := <-g2; err != nil {
		t.Fatal(err)
	}
	lt.ReleaseAll(2)
	if err := <-g1; err != nil {
		t.Fatal(err)
	}
	lt.ReleaseAll(1)
}

func TestFIFOOrdering(t *testing.T) {
	lt := NewLockTable()
	key := lk("T", 1)
	if err := lt.Acquire(1, key, Exclusive); err != nil {
		t.Fatal(err)
	}

	var order []uint64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for tx := uint64(2); tx <= 5; tx++ {
		wg.Add(1)
		go func(tx uint64) {
			defer wg.Done()
			if err := lt.Acquire(tx, key, Exclusive); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, tx)
			mu.Unlock()
			lt.Release(tx, key)
		}(tx)
		time.Sleep(10 * time.Millisecond) // establish arrival order
	}
	lt.Release(1, key)
	wg.Wait()
	for i := 0; i < len(order)-1; i++ {
		if order[i] > order[i+1] {
			t.Fatalf("grants out of FIFO order: %v", order)
		}
	}
}

func TestReleaseAllWakesQueuedSelf(t *testing.T) {
	lt := NewLockTable()
	key := lk("T", 1)
	if err := lt.Acquire(1, key, Exclusive); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- lt.Acquire(2, key, Exclusive) }()
	time.Sleep(10 * time.Millisecond)
	// tx2 is externally aborted while waiting.
	lt.ReleaseAll(2)
	if err := <-got; !errors.Is(err, core.ErrDeadlock) {
		t.Fatalf("queued request after ReleaseAll = %v", err)
	}
	lt.Release(1, key)
}

func TestHoldsAndHeldKeys(t *testing.T) {
	lt := NewLockTable()
	a, b := lk("T", 1), lk("U", 2)
	if err := lt.Acquire(1, a, Shared); err != nil {
		t.Fatal(err)
	}
	if err := lt.Acquire(1, b, Exclusive); err != nil {
		t.Fatal(err)
	}
	if !lt.Holds(1, a, Shared) || lt.Holds(1, a, Exclusive) {
		t.Fatal("Holds mode check wrong for shared lock")
	}
	if !lt.Holds(1, b, Shared) || !lt.Holds(1, b, Exclusive) {
		t.Fatal("exclusive must satisfy both mode checks")
	}
	if got := len(lt.HeldKeys(1)); got != 2 {
		t.Fatalf("HeldKeys = %d", got)
	}
	lt.ReleaseAll(1)
	if len(lt.HeldKeys(1)) != 0 || lt.Holds(1, a, Shared) {
		t.Fatal("ReleaseAll left locks behind")
	}
}

func TestConcurrentAcquireReleaseStress(t *testing.T) {
	lt := NewLockTable()
	const txns = 16
	var wg sync.WaitGroup
	for i := 0; i < txns; i++ {
		wg.Add(1)
		go func(tx uint64) {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				// Each tx locks two keys in a consistent global order, so
				// no deadlock is possible and every acquire must succeed.
				k1, k2 := lk("T", int64(rep%3)), lk("T", int64(rep%3)+10)
				if err := lt.Acquire(tx, k1, Exclusive); err != nil {
					t.Errorf("tx %d: %v", tx, err)
					return
				}
				if err := lt.Acquire(tx, k2, Shared); err != nil {
					t.Errorf("tx %d: %v", tx, err)
					return
				}
				lt.ReleaseAll(tx)
			}
		}(uint64(i + 1))
	}
	wg.Wait()
}

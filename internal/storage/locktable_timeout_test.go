package storage

import (
	"errors"
	"sync"
	"testing"
	"time"

	"sicost/internal/core"
)

func TestAcquireTimeoutExpires(t *testing.T) {
	lt := NewLockTable()
	key := lk("T", 1)
	if err := lt.Acquire(1, key, Exclusive); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := lt.AcquireTimeout(2, key, Exclusive, 15*time.Millisecond)
	if !errors.Is(err, core.ErrLockTimeout) {
		t.Fatalf("got %v, want ErrLockTimeout", err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("returned after only %v", d)
	}
	// The timed-out waiter left no residue: queue empty, holder intact.
	if lt.QueueLen(key) != 0 {
		t.Fatalf("queue length = %d after timeout", lt.QueueLen(key))
	}
	if !lt.Holds(1, key, Exclusive) {
		t.Fatal("holder disturbed by timed-out waiter")
	}
	lt.Release(1, key)
	if held, queued := lt.Outstanding(); held != 0 || queued != 0 {
		t.Fatalf("outstanding = %d/%d", held, queued)
	}
}

func TestAcquireTimeoutZeroWaitsForever(t *testing.T) {
	lt := NewLockTable()
	key := lk("T", 1)
	if err := lt.Acquire(1, key, Exclusive); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- lt.AcquireTimeout(2, key, Exclusive, 0) }()
	select {
	case err := <-got:
		t.Fatalf("untimed waiter returned early: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	lt.Release(1, key)
	if err := <-got; err != nil {
		t.Fatal(err)
	}
	lt.Release(2, key)
}

// TestAcquireTimeoutGrantRace releases the lock right at the deadline,
// many times over: whichever way each race lands, the waiter must end
// up either holding the lock (grant won) or reporting ErrLockTimeout
// with no queue residue — never both, never neither.
func TestAcquireTimeoutGrantRace(t *testing.T) {
	iters := 300
	if testing.Short() {
		iters = 60
	}
	lt := NewLockTable()
	key := lk("T", 1)
	for i := 0; i < iters; i++ {
		if err := lt.Acquire(1, key, Exclusive); err != nil {
			t.Fatal(err)
		}
		const d = 500 * time.Microsecond
		got := make(chan error, 1)
		go func() { got <- lt.AcquireTimeout(2, key, Exclusive, d) }()
		time.Sleep(d) // aim the release at the deadline
		lt.Release(1, key)
		err := <-got
		if err == nil {
			if !lt.Holds(2, key, Exclusive) {
				t.Fatalf("iter %d: grant reported but not held", i)
			}
			lt.Release(2, key)
		} else if errors.Is(err, core.ErrLockTimeout) {
			if lt.Holds(2, key, Exclusive) {
				t.Fatalf("iter %d: timeout reported but lock held", i)
			}
		} else {
			t.Fatalf("iter %d: unexpected verdict %v", i, err)
		}
		if held, queued := lt.Outstanding(); held != 0 || queued != 0 {
			t.Fatalf("iter %d: outstanding %d/%d", i, held, queued)
		}
	}
}

// TestWithdrawWakesSuccessor pins the withdraw path's grant propagation:
// S-waiters queued behind a timed-out X-waiter must be granted when the
// X-waiter withdraws (the X-waiter was the only thing blocking them
// once the S-holder is compatible).
func TestWithdrawWakesSuccessor(t *testing.T) {
	lt := NewLockTable()
	key := lk("T", 1)
	// tx1 holds S; tx2 queues for X (incompatible); tx3 queues for S
	// behind tx2 (FIFO fairness keeps it waiting).
	if err := lt.Acquire(1, key, Shared); err != nil {
		t.Fatal(err)
	}
	xgot := make(chan error, 1)
	go func() { xgot <- lt.AcquireTimeout(2, key, Exclusive, 25*time.Millisecond) }()
	for lt.QueueLen(key) != 1 {
		time.Sleep(time.Millisecond)
	}
	sgot := make(chan error, 1)
	go func() { sgot <- lt.AcquireTimeout(3, key, Shared, 0) }()
	for lt.QueueLen(key) != 2 {
		time.Sleep(time.Millisecond)
	}
	// tx2 times out; its withdrawal must unblock tx3 (S compatible with
	// tx1's S).
	if err := <-xgot; !errors.Is(err, core.ErrLockTimeout) {
		t.Fatalf("x-waiter: %v", err)
	}
	select {
	case err := <-sgot:
		if err != nil {
			t.Fatalf("s-waiter: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("s-waiter not woken by the withdrawal")
	}
	lt.Release(1, key)
	lt.Release(3, key)
	if held, queued := lt.Outstanding(); held != 0 || queued != 0 {
		t.Fatalf("outstanding %d/%d", held, queued)
	}
}

func TestOutstandingCountsHeldAndQueued(t *testing.T) {
	lt := NewLockTable()
	k1, k2 := lk("T", 1), lk("T", 2)
	if err := lt.Acquire(1, k1, Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := lt.Acquire(1, k2, Shared); err != nil {
		t.Fatal(err)
	}
	if err := lt.Acquire(2, k2, Shared); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = lt.AcquireTimeout(3, k1, Exclusive, 50*time.Millisecond)
	}()
	for {
		if _, queued := lt.Outstanding(); queued == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	held, queued := lt.Outstanding()
	if held != 3 || queued != 1 {
		t.Fatalf("outstanding = %d/%d, want 3/1", held, queued)
	}
	wg.Wait()
	lt.ReleaseAll(1)
	lt.ReleaseAll(2)
	if held, queued := lt.Outstanding(); held != 0 || queued != 0 {
		t.Fatalf("outstanding = %d/%d after release", held, queued)
	}
}

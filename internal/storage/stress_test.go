package storage

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"sicost/internal/core"
)

// Stress tests for the sharded lock table. They are written for the
// race detector: the protected state is touched with plain (unsynchronized)
// reads and writes, so a mutual-exclusion bug shows up as a -race report
// even when the final counts happen to be right.

func slk(i int) LockKey { return LockKey{Table: "T", Key: core.Int(int64(i))} }

// TestStressHotKeyMutualExclusion hammers one key with exclusive locks
// from many goroutines. The critical section increments a plain counter
// and checks single-occupancy with a plain flag.
func TestStressHotKeyMutualExclusion(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	lt := NewLockTable()
	const (
		workers = 16
		iters   = 400
	)
	hot := slk(0)
	var (
		counter int   // plain int: -race flags any exclusion bug
		inCrit  int32 // plain flag checked inside the critical section
		wg      sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			tx := uint64(id + 1)
			for i := 0; i < iters; i++ {
				if err := lt.Acquire(tx, hot, Exclusive); err != nil {
					t.Errorf("tx %d: unexpected acquire error: %v", tx, err)
					return
				}
				if inCrit != 0 {
					t.Errorf("tx %d: critical section occupied", tx)
				}
				inCrit = 1
				counter++
				inCrit = 0
				lt.Release(tx, hot)
			}
		}(w)
	}
	wg.Wait()
	if counter != workers*iters {
		t.Fatalf("lost increments: counter = %d, want %d", counter, workers*iters)
	}
	if got := lt.QueueLen(hot); got != 0 {
		t.Fatalf("queue not drained: %d waiters", got)
	}
	st := lt.Stats()
	if st.FastPath+st.Waits != workers*iters {
		t.Fatalf("acquire accounting: fastPath %d + waits %d != %d",
			st.FastPath, st.Waits, workers*iters)
	}
	if st.Deadlocks != 0 {
		t.Fatalf("single-key workload reported %d deadlocks", st.Deadlocks)
	}
}

// TestStressSharedExclusive mixes readers and writers on one key.
// Writers mutate a plain value; readers read it. Correct S/X semantics
// make this race-free; a grant bug makes -race fire.
func TestStressSharedExclusive(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	lt := NewLockTable()
	const (
		readers = 8
		writers = 4
		iters   = 300
	)
	key := slk(7)
	var (
		value int64 // guarded by the S/X lock, not by Go sync
		wg    sync.WaitGroup
	)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			tx := uint64(1000 + id)
			for i := 0; i < iters; i++ {
				if err := lt.Acquire(tx, key, Exclusive); err != nil {
					t.Errorf("writer %d: %v", tx, err)
					return
				}
				value++
				lt.Release(tx, key)
			}
		}(w)
	}
	var reads atomic.Int64
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			tx := uint64(2000 + id)
			for i := 0; i < iters; i++ {
				if err := lt.Acquire(tx, key, Shared); err != nil {
					t.Errorf("reader %d: %v", tx, err)
					return
				}
				if value < 0 {
					t.Errorf("impossible value %d", value)
				}
				reads.Add(1)
				lt.Release(tx, key)
			}
		}(r)
	}
	wg.Wait()
	if value != writers*iters {
		t.Fatalf("lost writer increments: %d, want %d", value, writers*iters)
	}
	if reads.Load() != readers*iters {
		t.Fatalf("reads = %d, want %d", reads.Load(), readers*iters)
	}
}

// TestStressOrderedUniform acquires pairs of uniformly random keys in
// ascending key order. Ordered acquisition cannot deadlock, so every
// acquire must succeed; afterwards the table must be fully drained.
func TestStressOrderedUniform(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	lt := NewLockTable()
	const (
		workers = 16
		iters   = 400
		keys    = 64
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1 + id)))
			tx := uint64(id + 1)
			for i := 0; i < iters; i++ {
				a, b := rng.Intn(keys), rng.Intn(keys)
				if a > b {
					a, b = b, a
				}
				if err := lt.Acquire(tx, slk(a), Exclusive); err != nil {
					t.Errorf("tx %d: acquire %d: %v", tx, a, err)
					return
				}
				if b != a {
					if err := lt.Acquire(tx, slk(b), Exclusive); err != nil {
						t.Errorf("tx %d: acquire %d: %v", tx, b, err)
						lt.ReleaseAll(tx)
						return
					}
				}
				lt.ReleaseAll(tx)
			}
		}(w)
	}
	wg.Wait()
	st := lt.Stats()
	if st.Deadlocks != 0 {
		t.Fatalf("ordered acquisition deadlocked %d times", st.Deadlocks)
	}
	for i := 0; i < keys; i++ {
		if n := lt.QueueLen(slk(i)); n != 0 {
			t.Fatalf("key %d: %d waiters left", i, n)
		}
	}
	for w := 0; w < workers; w++ {
		if held := lt.HeldKeys(uint64(w + 1)); len(held) != 0 {
			t.Fatalf("tx %d still holds %v", w+1, held)
		}
	}
}

// TestStressDeadlockStorm acquires key pairs in random order on a small
// key space, so waits-for cycles form constantly. Victims release and
// retry. The test asserts the system neither wedges nor leaks: every
// worker finishes its quota and the table drains.
func TestStressDeadlockStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	lt := NewLockTable()
	const (
		workers = 12
		iters   = 200
		keys    = 5 // tiny key space: maximum cycle pressure
	)
	var (
		deadlocks atomic.Uint64
		wg        sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + id)))
			tx := uint64(id + 1)
			for i := 0; i < iters; i++ {
				for {
					a := rng.Intn(keys)
					b := (a + 1 + rng.Intn(keys-1)) % keys // distinct, unordered
					if err := lt.Acquire(tx, slk(a), Exclusive); err != nil {
						deadlocks.Add(1)
						lt.ReleaseAll(tx)
						continue
					}
					if err := lt.Acquire(tx, slk(b), Exclusive); err != nil {
						deadlocks.Add(1)
						lt.ReleaseAll(tx)
						continue
					}
					lt.ReleaseAll(tx)
					break
				}
			}
		}(w)
	}
	wg.Wait()
	st := lt.Stats()
	if st.Deadlocks != deadlocks.Load() {
		t.Fatalf("deadlock accounting: stats %d, observed %d", st.Deadlocks, deadlocks.Load())
	}
	for i := 0; i < keys; i++ {
		if n := lt.QueueLen(slk(i)); n != 0 {
			t.Fatalf("key %d: %d waiters left after storm", i, n)
		}
		for w := 0; w < workers; w++ {
			tx := uint64(w + 1)
			if lt.Holds(tx, slk(i), Shared) || lt.Holds(tx, slk(i), Exclusive) {
				t.Fatalf("tx %d leaked a hold on key %d", tx, i)
			}
		}
	}
}

// TestStressStripedStorage hammers Table and UniqueIndex from many
// goroutines: concurrent EnsureRow on overlapping keys, concurrent
// Lookup during Insert/Commit/Abort churn. Invariants: one Row anchor
// per key, and committed index entries resolve correctly.
func TestStressStripedStorage(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	schema := &core.Schema{
		Name: "T",
		Columns: []core.Column{
			{Name: "K", Kind: core.KindInt, NotNull: true},
			{Name: "V", Kind: core.KindInt, NotNull: true},
		},
		PK: 0,
	}
	tbl, err := NewTable(schema)
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers = 8
		iters   = 500
		keys    = 100
	)
	anchors := make([]atomic.Pointer[Row], keys)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(10 + id)))
			for i := 0; i < iters; i++ {
				k := int64(rng.Intn(keys))
				r := tbl.EnsureRow(core.Int(k))
				if prev := anchors[k].Swap(r); prev != nil && prev != r {
					t.Errorf("key %d: two distinct anchors", k)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := tbl.RowCount(); got > keys {
		t.Fatalf("RowCount %d > distinct keys %d", got, keys)
	}

	ix := NewUniqueIndex("T", "C", 1)
	var committed atomic.Uint64
	wg = sync.WaitGroup{}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(20 + id)))
			for i := 0; i < iters; i++ {
				tx := uint64(id*iters + i + 1)
				val := core.Int(int64(id*iters + i)) // distinct values: no unique conflicts
				if err := ix.Insert(tx, val, core.Int(int64(id))); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				if rng.Intn(2) == 0 {
					csn := committed.Add(1)
					ix.Commit(tx, csn)
					if pk, ok := ix.Lookup(^uint64(0), 0, val); !ok || pk != core.Int(int64(id)) {
						t.Errorf("lookup after commit: got %v, %v", pk, ok)
						return
					}
				} else {
					ix.Abort(tx)
					if _, ok := ix.Lookup(^uint64(0), 0, val); ok {
						t.Errorf("aborted entry visible for %v", val)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

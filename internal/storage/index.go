package storage

import (
	"sync"

	"sicost/internal/core"
)

// indexEntry is one versioned mapping from an indexed column value to a
// primary key. Entries carry creator/CSN like row versions so that
// aborted inserts leave no trace and snapshot reads of the index are
// consistent.
type indexEntry struct {
	val     core.Value
	pk      core.Value
	creator uint64
	csn     uint64 // 0 while the creating transaction is in flight
	deleted bool   // tombstone written by a delete
}

// indexStripes is the number of hash partitions of an index's entry
// map. Lookups take a stripe read lock, so the hot read path (SmallBank
// resolves every customer name through the Account index) scales with
// cores instead of serializing on one mutex.
const indexStripes = 16

// indexStripe is one partition of the entry map.
type indexStripe struct {
	mu      sync.RWMutex
	entries map[core.Value][]*indexEntry // newest first
}

// UniqueIndex is a unique secondary index: at most one live committed
// entry per indexed value. SmallBank declares one on Account.CustomerID.
// Entry chains are striped by indexed value; the per-transaction
// pending lists live under their own mutex (they are touched once per
// write and once at commit/abort, never on the read path).
type UniqueIndex struct {
	table  string
	column string
	colPos int

	stripes [indexStripes]indexStripe

	pendMu  sync.Mutex
	pending map[uint64][]*indexEntry // per in-flight transaction
}

// NewUniqueIndex creates an empty index over the column at position
// colPos of the named table.
func NewUniqueIndex(table, column string, colPos int) *UniqueIndex {
	ix := &UniqueIndex{
		table:   table,
		column:  column,
		colPos:  colPos,
		pending: make(map[uint64][]*indexEntry),
	}
	for i := range ix.stripes {
		ix.stripes[i].entries = make(map[core.Value][]*indexEntry)
	}
	return ix
}

// Column returns the indexed column's name.
func (ix *UniqueIndex) Column() string { return ix.column }

// ColPos returns the indexed column's position in the table schema.
func (ix *UniqueIndex) ColPos() int { return ix.colPos }

// stripe returns the partition holding val's entry chain.
func (ix *UniqueIndex) stripe(val core.Value) *indexStripe {
	return &ix.stripes[hashValue(val)&(indexStripes-1)]
}

// addPending records e on tx's pending list.
func (ix *UniqueIndex) addPending(tx uint64, e *indexEntry) {
	ix.pendMu.Lock()
	ix.pending[tx] = append(ix.pending[tx], e)
	ix.pendMu.Unlock()
}

// takePending removes and returns tx's pending list.
func (ix *UniqueIndex) takePending(tx uint64) []*indexEntry {
	ix.pendMu.Lock()
	list := ix.pending[tx]
	delete(ix.pending, tx)
	ix.pendMu.Unlock()
	return list
}

// Insert registers an uncommitted entry mapping val to pk for
// transaction tx. It returns core.ErrUniqueViolation when a conflicting
// entry exists: a committed live entry, or an uncommitted entry from
// another in-flight transaction (the engine does not block on index
// conflicts; the loader and tests are the only writers of indexed
// columns in the benchmark).
func (ix *UniqueIndex) Insert(tx uint64, val, pk core.Value) error {
	s := ix.stripe(val)
	s.mu.Lock()
	for _, e := range s.entries[val] {
		if e.deleted {
			if e.csn != 0 || e.creator == tx {
				// Committed tombstone (or our own): value is free below
				// this point in the chain.
				break
			}
			continue
		}
		if e.creator == tx && e.csn == 0 && e.pk == pk {
			s.mu.Unlock()
			return nil // idempotent re-insert within the transaction
		}
		s.mu.Unlock()
		return core.ErrUniqueViolation
	}
	e := &indexEntry{val: val, pk: pk, creator: tx}
	s.entries[val] = append([]*indexEntry{e}, s.entries[val]...)
	s.mu.Unlock()
	ix.addPending(tx, e)
	return nil
}

// Delete registers an uncommitted tombstone for val written by tx. The
// tombstone becomes effective at commit; abort discards it.
func (ix *UniqueIndex) Delete(tx uint64, val core.Value) {
	s := ix.stripe(val)
	e := &indexEntry{val: val, creator: tx, deleted: true}
	s.mu.Lock()
	s.entries[val] = append([]*indexEntry{e}, s.entries[val]...)
	s.mu.Unlock()
	ix.addPending(tx, e)
}

// Lookup returns the primary key mapped from val as seen by a snapshot,
// honouring the reader's own uncommitted entries.
func (ix *UniqueIndex) Lookup(snapshotCSN, self uint64, val core.Value) (core.Value, bool) {
	s := ix.stripe(val)
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, e := range s.entries[val] {
		visible := e.creator == self || (e.csn != 0 && e.csn <= snapshotCSN)
		if !visible {
			continue
		}
		if e.deleted {
			return core.Value{}, false
		}
		return e.pk, true
	}
	return core.Value{}, false
}

// Commit stamps all of tx's uncommitted entries with csn. Each stamp is
// applied under the entry's stripe lock so concurrent Lookups never see
// a torn CSN.
func (ix *UniqueIndex) Commit(tx, csn uint64) {
	for _, e := range ix.takePending(tx) {
		s := ix.stripe(e.val)
		s.mu.Lock()
		e.csn = csn
		s.mu.Unlock()
	}
}

// Abort removes all of tx's uncommitted entries.
func (ix *UniqueIndex) Abort(tx uint64) {
	for _, pe := range ix.takePending(tx) {
		s := ix.stripe(pe.val)
		s.mu.Lock()
		chain := s.entries[pe.val]
		kept := chain[:0]
		for _, e := range chain {
			if e != pe {
				kept = append(kept, e)
			}
		}
		if len(kept) == 0 {
			delete(s.entries, pe.val)
		} else {
			s.entries[pe.val] = kept
		}
		s.mu.Unlock()
	}
}

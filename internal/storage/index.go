package storage

import (
	"sync"

	"sicost/internal/core"
)

// indexEntry is one versioned mapping from an indexed column value to a
// primary key. Entries carry creator/CSN like row versions so that
// aborted inserts leave no trace and snapshot reads of the index are
// consistent.
type indexEntry struct {
	val     core.Value
	pk      core.Value
	creator uint64
	csn     uint64 // 0 while the creating transaction is in flight
	deleted bool   // tombstone written by a delete
}

// UniqueIndex is a unique secondary index: at most one live committed
// entry per indexed value. SmallBank declares one on Account.CustomerID.
type UniqueIndex struct {
	table  string
	column string
	colPos int

	mu      sync.Mutex
	entries map[core.Value][]*indexEntry // newest first
	pending map[uint64][]*indexEntry     // per in-flight transaction
}

// NewUniqueIndex creates an empty index over the column at position
// colPos of the named table.
func NewUniqueIndex(table, column string, colPos int) *UniqueIndex {
	return &UniqueIndex{
		table:   table,
		column:  column,
		colPos:  colPos,
		entries: make(map[core.Value][]*indexEntry),
		pending: make(map[uint64][]*indexEntry),
	}
}

// Column returns the indexed column's name.
func (ix *UniqueIndex) Column() string { return ix.column }

// ColPos returns the indexed column's position in the table schema.
func (ix *UniqueIndex) ColPos() int { return ix.colPos }

// Insert registers an uncommitted entry mapping val to pk for
// transaction tx. It returns core.ErrUniqueViolation when a conflicting
// entry exists: a committed live entry, or an uncommitted entry from
// another in-flight transaction (the engine does not block on index
// conflicts; the loader and tests are the only writers of indexed
// columns in the benchmark).
func (ix *UniqueIndex) Insert(tx uint64, val, pk core.Value) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for _, e := range ix.entries[val] {
		if e.deleted {
			if e.csn != 0 || e.creator == tx {
				// Committed tombstone (or our own): value is free below
				// this point in the chain.
				break
			}
			continue
		}
		if e.creator == tx && e.csn == 0 && e.pk == pk {
			return nil // idempotent re-insert within the transaction
		}
		return core.ErrUniqueViolation
	}
	e := &indexEntry{val: val, pk: pk, creator: tx}
	ix.entries[val] = append([]*indexEntry{e}, ix.entries[val]...)
	ix.pending[tx] = append(ix.pending[tx], e)
	return nil
}

// Delete registers an uncommitted tombstone for val written by tx. The
// tombstone becomes effective at commit; abort discards it.
func (ix *UniqueIndex) Delete(tx uint64, val core.Value) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	e := &indexEntry{val: val, creator: tx, deleted: true}
	ix.entries[val] = append([]*indexEntry{e}, ix.entries[val]...)
	ix.pending[tx] = append(ix.pending[tx], e)
}

// Lookup returns the primary key mapped from val as seen by a snapshot,
// honouring the reader's own uncommitted entries.
func (ix *UniqueIndex) Lookup(snapshotCSN, self uint64, val core.Value) (core.Value, bool) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for _, e := range ix.entries[val] {
		visible := e.creator == self || (e.csn != 0 && e.csn <= snapshotCSN)
		if !visible {
			continue
		}
		if e.deleted {
			return core.Value{}, false
		}
		return e.pk, true
	}
	return core.Value{}, false
}

// Commit stamps all of tx's uncommitted entries with csn.
func (ix *UniqueIndex) Commit(tx, csn uint64) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for _, e := range ix.pending[tx] {
		e.csn = csn
	}
	delete(ix.pending, tx)
}

// Abort removes all of tx's uncommitted entries.
func (ix *UniqueIndex) Abort(tx uint64) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for _, pe := range ix.pending[tx] {
		chain := ix.entries[pe.val]
		kept := chain[:0]
		for _, e := range chain {
			if e != pe {
				kept = append(kept, e)
			}
		}
		if len(kept) == 0 {
			delete(ix.entries, pe.val)
		} else {
			ix.entries[pe.val] = kept
		}
	}
	delete(ix.pending, tx)
}

package storage

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"sicost/internal/core"
)

// Property-based equivalence: a sharded lock table must be observably
// indistinguishable from the single-mutex degenerate case
// (NewLockTableStriped(1), which is the pre-sharding design). Random
// acquire/release/upgrade/release-all scripts run against both tables in
// lock step; after every operation the outcome (granted / blocked /
// deadlock victim), the wake events it caused, and the complete
// observable state (holds, queue lengths, held-key sets) must agree.
//
// The scripts are driven deterministically from one goroutine: a
// blocking Acquire is detected through the OnWait hook (which fires
// synchronously before the requester parks), and wake-ups only ever
// happen inside a release operation issued by the driver, observed
// synchronously through OnWake. Cross-key wake order is not part of the
// contract (the old design granted in map-iteration order), so wake
// events are compared as sorted sets.

const (
	quickTxns = 4
	quickKeys = 6
)

// qop is one generated script step. testing/quick fills the fields with
// random bytes; the harness reduces them to the valid ranges.
type qop struct {
	Kind uint8 // 0-1: acquire, 2: release, 3: release-all
	Tx   uint8
	Key  uint8
	Mode uint8
}

func (op qop) tx() uint64     { return uint64(op.Tx%quickTxns) + 1 }
func (op qop) key() LockKey   { return slk(int(op.Key % quickKeys)) }
func (op qop) mode() LockMode { return LockMode(op.Mode % 2) }
func (op qop) describe() string {
	switch op.Kind % 4 {
	case 2:
		return fmt.Sprintf("release(t%d,k%d)", op.tx(), op.Key%quickKeys)
	case 3:
		return fmt.Sprintf("releaseAll(t%d)", op.tx())
	default:
		return fmt.Sprintf("acquire(t%d,k%d,%v)", op.tx(), op.Key%quickKeys, op.mode())
	}
}

// qwake is one observed wake event (ejected reports grant-or-eject).
type qwake struct {
	tx      uint64
	key     LockKey
	ejected bool
}

// qpending is one in-flight blocked Acquire.
type qpending struct {
	key  LockKey
	done chan error
}

// qharness drives one lock table through a script.
type qharness struct {
	lt      *LockTable
	waitCh  chan struct{}
	mu      sync.Mutex
	wakes   []qwake
	pending map[uint64]qpending
}

func newQHarness(stripes int) *qharness {
	h := &qharness{
		lt:      NewLockTableStriped(stripes),
		waitCh:  make(chan struct{}, 1),
		pending: make(map[uint64]qpending),
	}
	h.lt.SetHooks(WaitHooks{
		OnWait: func(tx uint64, key LockKey) {
			h.waitCh <- struct{}{}
		},
		OnWake: func(tx uint64, key LockKey, err error) {
			h.mu.Lock()
			h.wakes = append(h.wakes, qwake{tx: tx, key: key, ejected: err != nil})
			h.mu.Unlock()
		},
	})
	return h
}

// takeWakes returns and clears the wake events recorded since the last
// call, sorted (cross-key wake order is not part of the contract).
func (h *qharness) takeWakes() []qwake {
	h.mu.Lock()
	out := h.wakes
	h.wakes = nil
	h.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].tx != out[j].tx {
			return out[i].tx < out[j].tx
		}
		return out[i].key.Key.Less(out[j].key.Key)
	})
	return out
}

// settleWakes receives the completion of every blocked Acquire resolved
// by the last operation, checking grant/eject agreement.
func (h *qharness) settleWakes(wakes []qwake) error {
	for _, w := range wakes {
		p, ok := h.pending[w.tx]
		if !ok {
			return fmt.Errorf("wake for t%d with no pending op", w.tx)
		}
		select {
		case err := <-p.done:
			if (err != nil) != w.ejected {
				return fmt.Errorf("t%d: wake ejected=%v but Acquire returned %v", w.tx, w.ejected, err)
			}
			if err != nil && !errors.Is(err, core.ErrDeadlock) {
				return fmt.Errorf("t%d: ejection returned %v", w.tx, err)
			}
			delete(h.pending, w.tx)
		case <-time.After(5 * time.Second):
			return fmt.Errorf("t%d: woken Acquire did not return", w.tx)
		}
	}
	return nil
}

// acquire runs one Acquire to its synchronous outcome: granted,
// deadlock-denied, or parked in the wait queue.
func (h *qharness) acquire(tx uint64, key LockKey, mode LockMode) (string, error) {
	done := make(chan error, 1)
	go func() { done <- h.lt.Acquire(tx, key, mode) }()
	select {
	case err := <-done:
		if err == nil {
			return "granted", nil
		}
		if errors.Is(err, core.ErrDeadlock) {
			return "deadlock", nil
		}
		return "", fmt.Errorf("unexpected acquire error: %v", err)
	case <-h.waitCh:
		h.pending[tx] = qpending{key: key, done: done}
		return "blocked", nil
	case <-time.After(5 * time.Second):
		return "", fmt.Errorf("acquire(t%d) neither returned nor queued", tx)
	}
}

// step executes one script op and returns its observable outcome,
// including any wake events, as a canonical string.
func (h *qharness) step(op qop) (string, error) {
	switch op.Kind % 4 {
	case 2:
		h.lt.Release(op.tx(), op.key())
	case 3:
		h.lt.ReleaseAll(op.tx())
	default:
		if _, blocked := h.pending[op.tx()]; blocked {
			// A transaction parked in the queue cannot issue statements;
			// the op degenerates to a no-op in both harnesses (pending
			// sets are compared after every step, so this agrees).
			return "skipped", nil
		}
		return h.acquire(op.tx(), op.key(), op.mode())
	}
	wakes := h.takeWakes()
	if err := h.settleWakes(wakes); err != nil {
		return "", err
	}
	return fmt.Sprintf("ok wakes=%v", wakes), nil
}

// observe captures the complete observable state: per-(tx,key) holds,
// per-key queue lengths, sorted held-key sets, and the blocked set.
func (h *qharness) observe() string {
	var b []byte
	for tx := uint64(1); tx <= quickTxns; tx++ {
		for k := 0; k < quickKeys; k++ {
			key := slk(k)
			s, x := h.lt.Holds(tx, key, Shared), h.lt.Holds(tx, key, Exclusive)
			b = append(b, byte('0'+boolBit(s)), byte('0'+boolBit(x)))
		}
		held := h.lt.HeldKeys(tx)
		sort.Slice(held, func(i, j int) bool { return held[i].Key.Less(held[j].Key) })
		b = append(b, fmt.Sprintf("|held%d=%v", tx, held)...)
		if p, ok := h.pending[tx]; ok {
			b = append(b, fmt.Sprintf("|blocked%d@%v", tx, p.key.Key)...)
		}
	}
	for k := 0; k < quickKeys; k++ {
		b = append(b, fmt.Sprintf("|q%d=%d", k, h.lt.QueueLen(slk(k)))...)
	}
	return string(b)
}

func boolBit(v bool) int {
	if v {
		return 1
	}
	return 0
}

// drain ends a script: release everything so no goroutine outlives the
// property, ejecting any still-parked waiters.
func (h *qharness) drain() error {
	for tx := uint64(1); tx <= quickTxns; tx++ {
		h.lt.ReleaseAll(tx)
		if err := h.settleWakes(h.takeWakes()); err != nil {
			return err
		}
	}
	if len(h.pending) != 0 {
		return fmt.Errorf("pending ops survived drain: %v", h.pending)
	}
	return nil
}

// TestQuickShardedEquivalence is the property: for random scripts, the
// sharded table and the single-stripe (pre-sharding) table agree on
// every outcome, every wake, and every observable state — including
// which transaction a deadlock denial picks as victim.
func TestQuickShardedEquivalence(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 60,
		Rand:     rand.New(rand.NewSource(7)),
	}
	if testing.Short() {
		cfg.MaxCount = 10
	}
	property := func(script []qop) bool {
		ref := newQHarness(1) // the classic single-mutex table
		shr := newQHarness(8)
		defer func() {
			if err := ref.drain(); err != nil {
				t.Errorf("ref drain: %v", err)
			}
			if err := shr.drain(); err != nil {
				t.Errorf("sharded drain: %v", err)
			}
		}()
		if len(script) > 64 {
			script = script[:64]
		}
		for i, op := range script {
			refOut, err := ref.step(op)
			if err != nil {
				t.Errorf("step %d %s: ref: %v", i, op.describe(), err)
				return false
			}
			shrOut, err := shr.step(op)
			if err != nil {
				t.Errorf("step %d %s: sharded: %v", i, op.describe(), err)
				return false
			}
			if refOut != shrOut {
				t.Errorf("step %d %s: outcome diverged:\n  ref:     %s\n  sharded: %s",
					i, op.describe(), refOut, shrOut)
				return false
			}
			if refState, shrState := ref.observe(), shr.observe(); refState != shrState {
				t.Errorf("step %d %s: state diverged:\n  ref:     %s\n  sharded: %s",
					i, op.describe(), refState, shrState)
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDeadlockVictimAgreement pins the victim-selection contract
// with a directed script: the transaction whose request closes the
// cycle is denied, in both the sharded and single-stripe tables.
func TestQuickDeadlockVictimAgreement(t *testing.T) {
	for _, stripes := range []int{1, 8, 64} {
		h := newQHarness(stripes)
		mustOutcome := func(want string, op qop) {
			t.Helper()
			got, err := h.step(op)
			if err != nil {
				t.Fatalf("stripes=%d %s: %v", stripes, op.describe(), err)
			}
			if got != want {
				t.Fatalf("stripes=%d %s: got %s, want %s", stripes, op.describe(), got, want)
			}
		}
		mustOutcome("granted", qop{Kind: 0, Tx: 0, Key: 0, Mode: 1})  // t1 X k0
		mustOutcome("granted", qop{Kind: 0, Tx: 1, Key: 1, Mode: 1})  // t2 X k1
		mustOutcome("blocked", qop{Kind: 0, Tx: 0, Key: 1, Mode: 1})  // t1 waits for t2
		mustOutcome("deadlock", qop{Kind: 0, Tx: 1, Key: 0, Mode: 1}) // t2 closes the cycle: victim
		if err := h.drain(); err != nil {
			t.Fatalf("stripes=%d: drain: %v", stripes, err)
		}
	}
}

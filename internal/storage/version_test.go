package storage

import (
	"testing"
	"testing/quick"

	"sicost/internal/core"
)

func rec(balance int64) core.Record {
	return core.Record{core.Int(1), core.Int(balance)}
}

func TestVersionVisibility(t *testing.T) {
	v := &Version{Rec: rec(100), Creator: 7}
	if v.CSN() != 0 {
		t.Fatal("new version must be uncommitted")
	}
	if !v.VisibleTo(0, 7) {
		t.Fatal("creator must see its own uncommitted version")
	}
	if v.VisibleTo(100, 8) {
		t.Fatal("others must not see an uncommitted version")
	}
	v.MarkCommitted(5)
	if !v.VisibleTo(5, 8) || !v.VisibleTo(6, 8) {
		t.Fatal("committed version invisible to later snapshot")
	}
	if v.VisibleTo(4, 8) {
		t.Fatal("committed version visible to earlier snapshot")
	}
}

func TestRowInstallAndVisible(t *testing.T) {
	r := &Row{}
	if r.Visible(10, 1) != nil || r.Head() != nil {
		t.Fatal("empty row must have no visible version")
	}

	v1 := &Version{Rec: rec(100), Creator: 1}
	r.Install(v1)
	v1.MarkCommitted(1)

	v2 := &Version{Rec: rec(200), Creator: 2}
	r.Install(v2)

	// Snapshot at CSN 1: sees v1; creator 2 sees its uncommitted v2.
	if got := r.Visible(1, 99); got != v1 {
		t.Fatalf("snapshot 1 sees %v, want v1", got)
	}
	if got := r.Visible(1, 2); got != v2 {
		t.Fatal("creator must see own uncommitted head")
	}
	if got := r.NewestCommitted(); got != v1 {
		t.Fatal("newest committed must be v1 while v2 is in flight")
	}

	v2.MarkCommitted(2)
	if got := r.Visible(2, 99); got != v2 {
		t.Fatal("snapshot 2 must see v2 after commit")
	}
	if got := r.Visible(1, 99); got != v1 {
		t.Fatal("snapshot 1 must still see v1 after v2 commits")
	}
	if r.ChainLen() != 2 {
		t.Fatalf("chain length = %d", r.ChainLen())
	}
}

func TestRowRemoveUncommitted(t *testing.T) {
	r := &Row{}
	v1 := &Version{Rec: rec(100), Creator: 1}
	r.Install(v1)
	v1.MarkCommitted(1)

	v2 := &Version{Rec: rec(200), Creator: 2}
	r.Install(v2)
	if !r.RemoveUncommitted(2) {
		t.Fatal("RemoveUncommitted must unlink creator's uncommitted head")
	}
	if r.Head() != v1 {
		t.Fatal("head must revert to v1")
	}
	// Second call: nothing to remove.
	if r.RemoveUncommitted(2) {
		t.Fatal("nothing left to remove")
	}
	// Must not remove a committed head.
	if r.RemoveUncommitted(1) {
		t.Fatal("must not remove a committed version")
	}
}

func TestRowSFUCommitMonotonic(t *testing.T) {
	r := &Row{}
	r.NoteSFUCommit(5)
	r.NoteSFUCommit(3) // older commit must not regress the mark
	if got := r.LastSFUCommit(); got != 5 {
		t.Fatalf("LastSFUCommit = %d, want 5", got)
	}
	r.NoteSFUCommit(9)
	if got := r.LastSFUCommit(); got != 9 {
		t.Fatalf("LastSFUCommit = %d, want 9", got)
	}
}

// Property: for any sequence of committed versions with increasing CSNs,
// Visible(snap) returns the version with the largest CSN <= snap.
func TestRowVisibleProperty(t *testing.T) {
	f := func(raw []uint8, snap8 uint8) bool {
		r := &Row{}
		csn := uint64(0)
		var csns []uint64
		for i := range raw {
			csn += uint64(raw[i]%3) + 1
			v := &Version{Rec: rec(int64(csn)), Creator: uint64(i + 1)}
			r.Install(v)
			v.MarkCommitted(csn)
			csns = append(csns, csn)
		}
		snap := uint64(snap8)
		got := r.Visible(snap, 0)
		var want uint64
		for _, c := range csns {
			if c <= snap {
				want = c
			}
		}
		if want == 0 {
			return got == nil
		}
		return got != nil && got.CSN() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

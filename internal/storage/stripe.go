package storage

import "sicost/internal/core"

// stripe.go holds the hashing shared by the sharded lock table and the
// striped row maps: a 64-bit FNV-1a over a Value's kind and payload,
// extended with the table name for lock keys. Inlined by hand (rather
// than hash/fnv) because it sits on the per-statement fast path.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime64
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = fnvByte(h, s[i])
	}
	return h
}

func fnvUint64(h uint64, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(v>>(8*i)))
	}
	return h
}

// hashValue hashes one column value.
func hashValue(v core.Value) uint64 {
	h := fnvByte(fnvOffset64, byte(v.K))
	h = fnvUint64(h, uint64(v.I))
	return fnvString(h, v.S)
}

// hashLockKey hashes a lockable resource (table, row key).
func hashLockKey(k LockKey) uint64 {
	h := fnvString(fnvOffset64, k.Table)
	h = fnvByte(h, byte(k.Key.K))
	h = fnvUint64(h, uint64(k.Key.I))
	return fnvString(h, k.Key.S)
}

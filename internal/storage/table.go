package storage

import (
	"fmt"
	"sort"
	"sync"

	"sicost/internal/core"
	"sicost/internal/faultinject"
)

// tableStripes is the number of hash partitions of a table's row map
// (a power of two). Row lookups take one stripe's read lock, so row
// traffic on different stripes never contends on a map mutex even when
// inserts are growing the table.
const tableStripes = 32

// rowStripe is one partition of the row map.
type rowStripe struct {
	mu   sync.RWMutex
	rows map[core.Value]*Row

	// dirty is the set of keys written by commits published since the
	// last checkpoint epoch swap (SwapDirty). It has its own mutex so
	// the commit publish path never touches the row-map lock: MarkDirty
	// is one map insert under a per-stripe mutex.
	dirtyMu sync.Mutex
	dirty   map[core.Value]struct{}
}

// Table is a versioned heap keyed by primary key, with any declared
// unique secondary indexes attached. The key→row map is hash-striped;
// the Row anchors themselves carry their own synchronization (lock-free
// version chains), so the stripes only guard map access.
type Table struct {
	schema *core.Schema

	stripes [tableStripes]rowStripe

	indexes []*UniqueIndex // parallel to schema.Unique

	// faults is the (possibly nil) fault-injection registry consulted
	// by the ReadRow/WriteRow access paths; installed via
	// Store.SetFaults before transactions run.
	faults *faultinject.Registry
}

// NewTable builds an empty table for a validated schema.
func NewTable(schema *core.Schema) (*Table, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	t := &Table{schema: schema}
	for i := range t.stripes {
		t.stripes[i].rows = make(map[core.Value]*Row)
	}
	for _, col := range schema.Unique {
		t.indexes = append(t.indexes, NewUniqueIndex(schema.Name, schema.Columns[col].Name, col))
	}
	return t, nil
}

// Schema returns the table's schema.
func (t *Table) Schema() *core.Schema { return t.schema }

// Name returns the table name.
func (t *Table) Name() string { return t.schema.Name }

// stripe returns the partition holding key.
func (t *Table) stripe(key core.Value) *rowStripe {
	return &t.stripes[hashValue(key)&(tableStripes-1)]
}

// Row returns the row anchor for key, or nil if the key has never been
// inserted.
func (t *Table) Row(key core.Value) *Row {
	s := t.stripe(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rows[key]
}

// EnsureRow returns the row anchor for key, creating an empty anchor if
// needed (the insert path).
func (t *Table) EnsureRow(key core.Value) *Row {
	s := t.stripe(key)
	s.mu.RLock()
	r := s.rows[key]
	s.mu.RUnlock()
	if r != nil {
		return r
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if r = s.rows[key]; r == nil {
		r = &Row{}
		s.rows[key] = r
	}
	return r
}

// Fault-point names of the storage row-access paths.
const (
	// FaultRowRead fires on every transactional row lookup (engine
	// Get/ReadForUpdate and the read half of updates/deletes).
	FaultRowRead = "storage/row/read"
	// FaultRowWrite fires on every transactional row-write access
	// (engine Update/Insert/Delete, before the version is installed).
	FaultRowWrite = "storage/row/write"
)

// ReadRow is Row behind the FaultRowRead point: the transactional read
// path, so chaos runs can fail or stall point reads per table/key.
func (t *Table) ReadRow(txID uint64, key core.Value) (*Row, error) {
	if t.faults != nil {
		if err := t.faults.Fire(FaultRowRead, faultinject.Ctx{Tx: txID, Table: t.schema.Name, Key: key}); err != nil {
			return nil, err
		}
	}
	return t.Row(key), nil
}

// WriteRow is Row behind the FaultRowWrite point: the update/delete
// write path (the row must already exist).
func (t *Table) WriteRow(txID uint64, key core.Value) (*Row, error) {
	if t.faults != nil {
		if err := t.faults.Fire(FaultRowWrite, faultinject.Ctx{Tx: txID, Table: t.schema.Name, Key: key}); err != nil {
			return nil, err
		}
	}
	return t.Row(key), nil
}

// EnsureWriteRow is EnsureRow behind the FaultRowWrite point: the
// insert path, which creates the anchor when absent.
func (t *Table) EnsureWriteRow(txID uint64, key core.Value) (*Row, error) {
	if t.faults != nil {
		if err := t.faults.Fire(FaultRowWrite, faultinject.Ctx{Tx: txID, Table: t.schema.Name, Key: key}); err != nil {
			return nil, err
		}
	}
	return t.EnsureRow(key), nil
}

// Indexes returns the table's unique secondary indexes.
func (t *Table) Indexes() []*UniqueIndex { return t.indexes }

// Keys returns all primary keys with at least one version, sorted; used
// by scans, the loader's verification pass and tests.
func (t *Table) Keys() []core.Value {
	var keys []core.Value
	for i := range t.stripes {
		s := &t.stripes[i]
		s.mu.RLock()
		for k := range s.rows {
			keys = append(keys, k)
		}
		s.mu.RUnlock()
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	return keys
}

// MarkDirty records that key was written by a published commit. The
// engine calls it on the commit publish path (inside the checkpoint
// barrier's read side), so a checkpoint's epoch swap under the write
// side sees every key dirtied by commits at or before its cut.
func (t *Table) MarkDirty(key core.Value) {
	s := t.stripe(key)
	s.dirtyMu.Lock()
	if s.dirty == nil {
		s.dirty = make(map[core.Value]struct{})
	}
	s.dirty[key] = struct{}{}
	s.dirtyMu.Unlock()
}

// SwapDirty drains and returns the dirty-key set accumulated since the
// previous swap, resetting the epoch. The fuzzy checkpoint calls it
// under the commit barrier's write side: keys dirtied by commits after
// the swap accumulate for the next link.
func (t *Table) SwapDirty() []core.Value {
	var keys []core.Value
	for i := range t.stripes {
		s := &t.stripes[i]
		s.dirtyMu.Lock()
		for k := range s.dirty {
			keys = append(keys, k)
		}
		s.dirty = nil
		s.dirtyMu.Unlock()
	}
	return keys
}

// DirtyCount returns the current dirty-set size (an observability
// gauge; approximate under concurrent commits).
func (t *Table) DirtyCount() int {
	n := 0
	for i := range t.stripes {
		s := &t.stripes[i]
		s.dirtyMu.Lock()
		n += len(s.dirty)
		s.dirtyMu.Unlock()
	}
	return n
}

// RowCount returns the number of row anchors (including tombstoned rows).
func (t *Table) RowCount() int {
	n := 0
	for i := range t.stripes {
		s := &t.stripes[i]
		s.mu.RLock()
		n += len(s.rows)
		s.mu.RUnlock()
	}
	return n
}

// Store is a named collection of tables: one simulated database.
type Store struct {
	mu     sync.RWMutex
	tables map[string]*Table
	faults *faultinject.Registry
}

// SetFaults installs the fault registry on the store and every table,
// current and future. Must be called before transactions are in flight.
func (s *Store) SetFaults(r *faultinject.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults = r
	for _, t := range s.tables {
		t.faults = r
	}
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{tables: make(map[string]*Table)}
}

// CreateTable adds a table for schema; it fails if the name exists.
func (s *Store) CreateTable(schema *core.Schema) (*Table, error) {
	t, err := NewTable(schema)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.tables[schema.Name]; dup {
		return nil, fmt.Errorf("storage: table %s already exists", schema.Name)
	}
	t.faults = s.faults
	s.tables[schema.Name] = t
	return t, nil
}

// Table returns the named table, or an error if absent.
func (s *Store) Table(name string) (*Table, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[name]
	if !ok {
		return nil, fmt.Errorf("storage: no such table %s", name)
	}
	return t, nil
}

// MustTable is Table for callers that know the schema exists (the
// benchmark programs, which create their tables at load time).
func (s *Store) MustTable(name string) *Table {
	t, err := s.Table(name)
	if err != nil {
		panic(err)
	}
	return t
}

// TableNames lists tables in sorted order.
func (s *Store) TableNames() []string {
	s.mu.RLock()
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	return names
}

package storage

import (
	"fmt"
	"sort"
	"sync"

	"sicost/internal/core"
)

// Table is a versioned heap keyed by primary key, with any declared
// unique secondary indexes attached.
type Table struct {
	schema *core.Schema

	mu   sync.RWMutex
	rows map[core.Value]*Row

	indexes []*UniqueIndex // parallel to schema.Unique
}

// NewTable builds an empty table for a validated schema.
func NewTable(schema *core.Schema) (*Table, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		schema: schema,
		rows:   make(map[core.Value]*Row),
	}
	for _, col := range schema.Unique {
		t.indexes = append(t.indexes, NewUniqueIndex(schema.Name, schema.Columns[col].Name, col))
	}
	return t, nil
}

// Schema returns the table's schema.
func (t *Table) Schema() *core.Schema { return t.schema }

// Name returns the table name.
func (t *Table) Name() string { return t.schema.Name }

// Row returns the row anchor for key, or nil if the key has never been
// inserted.
func (t *Table) Row(key core.Value) *Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows[key]
}

// EnsureRow returns the row anchor for key, creating an empty anchor if
// needed (the insert path).
func (t *Table) EnsureRow(key core.Value) *Row {
	t.mu.RLock()
	r := t.rows[key]
	t.mu.RUnlock()
	if r != nil {
		return r
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if r = t.rows[key]; r == nil {
		r = &Row{}
		t.rows[key] = r
	}
	return r
}

// Indexes returns the table's unique secondary indexes.
func (t *Table) Indexes() []*UniqueIndex { return t.indexes }

// Keys returns all primary keys with at least one version, sorted; used
// by scans, the loader's verification pass and tests.
func (t *Table) Keys() []core.Value {
	t.mu.RLock()
	keys := make([]core.Value, 0, len(t.rows))
	for k := range t.rows {
		keys = append(keys, k)
	}
	t.mu.RUnlock()
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	return keys
}

// RowCount returns the number of row anchors (including tombstoned rows).
func (t *Table) RowCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Store is a named collection of tables: one simulated database.
type Store struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{tables: make(map[string]*Table)}
}

// CreateTable adds a table for schema; it fails if the name exists.
func (s *Store) CreateTable(schema *core.Schema) (*Table, error) {
	t, err := NewTable(schema)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.tables[schema.Name]; dup {
		return nil, fmt.Errorf("storage: table %s already exists", schema.Name)
	}
	s.tables[schema.Name] = t
	return t, nil
}

// Table returns the named table, or an error if absent.
func (s *Store) Table(name string) (*Table, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[name]
	if !ok {
		return nil, fmt.Errorf("storage: no such table %s", name)
	}
	return t, nil
}

// MustTable is Table for callers that know the schema exists (the
// benchmark programs, which create their tables at load time).
func (s *Store) MustTable(name string) *Table {
	t, err := s.Table(name)
	if err != nil {
		panic(err)
	}
	return t
}

// TableNames lists tables in sorted order.
func (s *Store) TableNames() []string {
	s.mu.RLock()
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Package storage implements the multi-version storage substrate of the
// sicost engine: versioned tables keyed by primary key, unique secondary
// indexes, and a lock table with FIFO wait queues and deadlock detection.
//
// The design mirrors the parts of PostgreSQL the paper's analysis depends
// on: every update installs a new version (visible to its creator
// immediately, to others only after commit), row-level exclusive locks
// serialize writers, and readers never block. Concurrency control policy
// (snapshot isolation, 2PL, SSI) lives above, in internal/engine.
package storage

import (
	"sync"
	"sync/atomic"

	"sicost/internal/core"
)

// Version is one row image in a version chain. Prev points at the older
// version; chains are newest-first. The commit sequence number (CSN) is
// zero while the creating transaction is in flight and is stamped
// atomically at commit, so readers can traverse chains without locks.
type Version struct {
	// Rec is the row image; nil marks a deletion tombstone.
	Rec core.Record
	// Creator is the transaction id that produced this version.
	Creator uint64
	// Prev is the next older version, immutable once the version is
	// linked into a chain.
	Prev *Version

	csn atomic.Uint64
}

// CSN returns the commit sequence number, or 0 if uncommitted.
func (v *Version) CSN() uint64 { return v.csn.Load() }

// MarkCommitted stamps the version with its creator's commit sequence
// number, making it visible to snapshots taken at or after csn.
func (v *Version) MarkCommitted(csn uint64) { v.csn.Store(csn) }

// VisibleTo reports whether this single version is visible to a reader
// with the given snapshot CSN and transaction id (a transaction always
// sees its own uncommitted writes).
func (v *Version) VisibleTo(snapshotCSN, self uint64) bool {
	if v.Creator == self {
		return true
	}
	c := v.CSN()
	return c != 0 && c <= snapshotCSN
}

// Row is the per-primary-key anchor of a version chain plus the metadata
// the platform variants need (the commercial platform records the commit
// CSN of the last SELECT FOR UPDATE so later concurrent writers conflict
// with it).
type Row struct {
	mu   sync.Mutex
	head atomic.Pointer[Version]

	// lastSFUCommit is the commit CSN of the most recent transaction that
	// select-for-updated this row on the commercial platform. Writers
	// whose snapshot predates it fail with a serialization error, which
	// is the paper's "treated for concurrency control like an Update".
	lastSFUCommit atomic.Uint64
}

// Head returns the newest version (committed or not), or nil for a row
// anchor with no versions yet.
func (r *Row) Head() *Version { return r.head.Load() }

// Visible returns the newest version visible to the given snapshot and
// transaction id, or nil if none is. A nil result or a tombstone
// (Rec == nil) both mean "no row" to the caller.
func (r *Row) Visible(snapshotCSN, self uint64) *Version {
	for v := r.Head(); v != nil; v = v.Prev {
		if v.VisibleTo(snapshotCSN, self) {
			return v
		}
	}
	return nil
}

// NewestCommitted returns the newest committed version, or nil.
func (r *Row) NewestCommitted() *Version {
	for v := r.Head(); v != nil; v = v.Prev {
		if v.CSN() != 0 {
			return v
		}
	}
	return nil
}

// Install links a new uncommitted version at the head of the chain. The
// caller must hold the row's exclusive lock in the lock table, which
// guarantees at most one uncommitted version per row.
func (r *Row) Install(v *Version) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v.Prev = r.head.Load()
	r.head.Store(v)
}

// RemoveUncommitted unlinks the head version if it is an uncommitted
// version created by tx; it is the abort path. It reports whether a
// version was removed.
func (r *Row) RemoveUncommitted(tx uint64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.head.Load()
	if h == nil || h.Creator != tx || h.CSN() != 0 {
		return false
	}
	r.head.Store(h.Prev)
	return true
}

// UpdateOwn replaces the record of the head version when it is an
// uncommitted version created by tx (a transaction updating the same row
// twice); it reports whether the replacement happened.
func (r *Row) UpdateOwn(tx uint64, rec core.Record) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.head.Load()
	if h == nil || h.Creator != tx || h.CSN() != 0 {
		return false
	}
	h.Rec = rec
	return true
}

// NoteSFUCommit records that a commercial-platform select-for-update of
// this row committed at csn.
func (r *Row) NoteSFUCommit(csn uint64) {
	// Monotonic max; concurrent commits race benignly because CSNs only
	// grow and writers compare against their (older) snapshot.
	for {
		cur := r.lastSFUCommit.Load()
		if csn <= cur || r.lastSFUCommit.CompareAndSwap(cur, csn) {
			return
		}
	}
}

// LastSFUCommit returns the commit CSN of the last select-for-update on
// this row (commercial platform), or 0.
func (r *Row) LastSFUCommit() uint64 { return r.lastSFUCommit.Load() }

// ChainLen returns the number of versions in the chain; diagnostics only.
func (r *Row) ChainLen() int {
	n := 0
	for v := r.Head(); v != nil; v = v.Prev {
		n++
	}
	return n
}

package workload

import (
	"fmt"

	"sicost/internal/checker"
	"sicost/internal/engine"
	"sicost/internal/faultinject"
	"sicost/internal/smallbank"
	"sicost/internal/storage"
	"sicost/internal/wal"
)

// ChaosConfig parameterizes a fault-injected workload run.
type ChaosConfig struct {
	// Specs are armed on the database's fault registry for the duration
	// of the run and disarmed afterwards.
	Specs []faultinject.Spec
	// Check attaches the MVSG checker to the run and records its
	// verdict in the report.
	Check bool
	// ExpectSerializable, with Check, makes a non-serializable verdict
	// an invariant violation. Set it when the strategy/mode combination
	// guarantees serializable executions — fault injection must never
	// change that.
	ExpectSerializable bool
}

// ChaosReport is the outcome of one chaos run: the workload result plus
// the standing-invariant audit.
type ChaosReport struct {
	Result *Result
	// InitialTotal and FinalTotal are smallbank.TotalMoney before and
	// after the run; conservation demands
	// FinalTotal == InitialTotal + Result.CommittedDelta.
	InitialTotal, FinalTotal int64
	// ConservationChecked is false when the mix contains WriteCheck,
	// whose overdraft penalty makes the committed delta unknowable to
	// the client.
	ConservationChecked bool
	// HeldLocks and QueuedLocks audit the lock table after the run;
	// both must be zero — an abort path that leaks a lock shows up
	// here.
	HeldLocks, QueuedLocks int
	// FaultStats snapshots per-point trigger counts (captured before
	// the specs are disarmed).
	FaultStats []faultinject.PointStats
	// CheckerReport is the MVSG analysis when ChaosConfig.Check is set.
	CheckerReport *checker.Report
	// Violations lists every invariant the run broke; empty means the
	// engine survived the fault plan cleanly.
	Violations []string
}

// OK reports whether every checked invariant held.
func (r *ChaosReport) OK() bool { return len(r.Violations) == 0 }

// Fired sums fault triggers across all points.
func (r *ChaosReport) Fired() uint64 {
	var n uint64
	for _, s := range r.FaultStats {
		n += s.Fired
	}
	return n
}

// ConservingMix is the chaos harness's default mix: the four programs
// whose committed money movement the client knows exactly (WriteCheck's
// overdraft penalty is unobservable, so it is excluded — see
// Result.CommittedDelta).
func ConservingMix() Mix {
	var m Mix
	m[smallbank.Balance] = 0.25
	m[smallbank.DepositChecking] = 0.30
	m[smallbank.TransactSaving] = 0.30
	m[smallbank.Amalgamate] = 0.15
	return m
}

// RunChaos executes the workload with chaos.Specs armed and audits the
// standing invariants afterwards: money conservation, no leaked locks
// or waiters, and (optionally) an unchanged serializability verdict.
// The database must have been opened with engine.Config.Faults when
// chaos.Specs is non-empty.
func RunChaos(db *engine.DB, cfg Config, chaos ChaosConfig) (*ChaosReport, error) {
	reg := db.Faults()
	if reg == nil && len(chaos.Specs) > 0 {
		return nil, fmt.Errorf("workload: chaos run needs a database opened with engine.Config.Faults")
	}
	var zero Mix
	if cfg.Mix == zero {
		cfg.Mix = ConservingMix()
	}

	initial, err := smallbank.TotalMoney(db)
	if err != nil {
		return nil, fmt.Errorf("workload: initial audit: %w", err)
	}

	var chk *checker.Checker
	if chaos.Check {
		chk = checker.New()
		db.SetObserver(chk)
		defer db.SetObserver(nil)
	}

	for _, s := range chaos.Specs {
		if err := reg.Arm(s); err != nil {
			return nil, fmt.Errorf("workload: arming %q: %w", s.Point, err)
		}
	}

	res, runErr := Run(db, cfg)

	rep := &ChaosReport{Result: res, InitialTotal: initial}
	if reg != nil {
		rep.FaultStats = reg.Stats()
		for _, s := range chaos.Specs {
			reg.Disarm(s.Point)
		}
	}
	if runErr != nil {
		return nil, runErr
	}

	rep.FinalTotal, err = smallbank.TotalMoney(db)
	if err != nil {
		return nil, fmt.Errorf("workload: final audit: %w", err)
	}
	rep.HeldLocks, rep.QueuedLocks = db.LockAudit()

	rep.ConservationChecked = cfg.Mix[smallbank.WriteCheck] == 0
	if rep.ConservationChecked && rep.FinalTotal != rep.InitialTotal+res.CommittedDelta {
		rep.Violations = append(rep.Violations, fmt.Sprintf(
			"conservation: total money %d, want %d (initial %d + committed delta %d)",
			rep.FinalTotal, rep.InitialTotal+res.CommittedDelta, rep.InitialTotal, res.CommittedDelta))
	}
	if rep.HeldLocks != 0 || rep.QueuedLocks != 0 {
		rep.Violations = append(rep.Violations, fmt.Sprintf(
			"lock leak: %d held, %d queued after quiesce", rep.HeldLocks, rep.QueuedLocks))
	}
	if chk != nil {
		rep.CheckerReport = chk.Analyze()
		if chaos.ExpectSerializable && !rep.CheckerReport.Serializable {
			rep.Violations = append(rep.Violations, fmt.Sprintf(
				"serializability lost under faults: %s", rep.CheckerReport.Describe()))
		}
	}
	return rep, nil
}

// DefaultFaultPlan is the fault plan the CLI's -chaos flag arms when no
// custom plan is given: low-rate injected errors on every layer's hot
// path plus occasional commit-stamp failures and WAL flush faults.
func DefaultFaultPlan() []faultinject.Spec {
	return []faultinject.Spec{
		{Point: engine.FaultBegin, Rate: 0.002, Action: faultinject.ActError},
		{Point: engine.FaultLockAcquire, Rate: 0.005, Action: faultinject.ActError},
		{Point: engine.FaultCommitStamp, Rate: 0.01, Action: faultinject.ActError},
		{Point: storage.FaultRowRead, Rate: 0.002, Action: faultinject.ActError},
		{Point: wal.FaultCommit, Rate: 0.005, Action: faultinject.ActError},
	}
}

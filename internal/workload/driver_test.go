package workload

import (
	"math/rand"
	"testing"
	"time"

	"sicost/internal/checker"
	"sicost/internal/core"
	"sicost/internal/engine"
	"sicost/internal/simres"
	"sicost/internal/smallbank"
)

// measure shortens wall-clock measurement intervals under -short: the
// assertions in this package only need "enough commits to count", and a
// quarter of the interval still yields hundreds at zero simulated cost.
func measure(d time.Duration) time.Duration {
	if testing.Short() {
		return d / 4
	}
	return d
}

// loadedDB builds a small loaded bank without simulated costs.
func loadedDB(t *testing.T, mode core.CCMode, customers int) *engine.DB {
	t.Helper()
	db := engine.Open(engine.Config{Mode: mode, Platform: core.PlatformPostgres})
	t.Cleanup(db.Close)
	if err := smallbank.CreateSchema(db); err != nil {
		t.Fatal(err)
	}
	if _, err := smallbank.Load(db, smallbank.LoadConfig{Customers: customers, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestMixes(t *testing.T) {
	if err := UniformMix().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := BalanceHeavyMix(0.6).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Mix{0.5, 0.1}
	if err := bad.Validate(); err == nil {
		t.Fatal("bad mix accepted")
	}
	neg := Mix{-0.1, 0.3, 0.3, 0.3, 0.2}
	if err := neg.Validate(); err == nil {
		t.Fatal("negative mix accepted")
	}

	// Empirical pick distribution roughly matches the mix.
	rng := rand.New(rand.NewSource(1))
	m := BalanceHeavyMix(0.6)
	counts := map[smallbank.TxnType]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[m.pick(rng)]++
	}
	balFrac := float64(counts[smallbank.Balance]) / n
	if balFrac < 0.57 || balFrac > 0.63 {
		t.Fatalf("Balance fraction = %v, want ~0.6", balFrac)
	}
}

func TestConfigValidation(t *testing.T) {
	good := Config{MPL: 2, Customers: 100, HotspotSize: 10, HotspotProb: 0.9, Measure: time.Millisecond}
	if err := (&good).defaults(); err != nil {
		t.Fatal(err)
	}
	if good.Strategy == nil || good.MaxRetries != 50 {
		t.Fatal("defaults not applied")
	}
	bad := []Config{
		{MPL: 0, Customers: 100, HotspotSize: 10, Measure: time.Millisecond},
		{MPL: 1, Customers: 1, HotspotSize: 1, Measure: time.Millisecond},
		{MPL: 1, Customers: 100, HotspotSize: 1000, Measure: time.Millisecond},
		{MPL: 1, Customers: 100, HotspotSize: 10, HotspotProb: 1.5, Measure: time.Millisecond},
		{MPL: 1, Customers: 100, HotspotSize: 10, Measure: 0},
	}
	for i, c := range bad {
		if err := (&c).defaults(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestHotspotDistribution(t *testing.T) {
	cfg := Config{Customers: 1000, HotspotSize: 100, HotspotProb: 0.9}
	rng := rand.New(rand.NewSource(7))
	inHot := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if pickCustomer(cfg, rng) < cfg.HotspotSize {
			inHot++
		}
	}
	frac := float64(inHot) / n
	if frac < 0.87 || frac > 0.93 {
		t.Fatalf("hotspot fraction = %v, want ~0.9", frac)
	}
	// Degenerate case: hotspot == whole table.
	cfg2 := Config{Customers: 50, HotspotSize: 50, HotspotProb: 0.5}
	for i := 0; i < 100; i++ {
		if c := pickCustomer(cfg2, rng); c < 0 || c >= 50 {
			t.Fatalf("customer %d out of range", c)
		}
	}
}

func TestRunProducesThroughput(t *testing.T) {
	db := loadedDB(t, core.SnapshotFUW, 200)
	res, err := Run(db, Config{
		Strategy: smallbank.StrategySI,
		MPL:      4, Customers: 200, HotspotSize: 50, HotspotProb: 0.9,
		Ramp: 20 * time.Millisecond, Measure: measure(150 * time.Millisecond), Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits == 0 || res.TPS <= 0 {
		t.Fatalf("no work done: %+v", res)
	}
	var perTypeSum int64
	for i := range res.PerType {
		perTypeSum += res.PerType[i].Commits
	}
	if perTypeSum != res.Commits {
		t.Fatalf("per-type commits %d != total %d", perTypeSum, res.Commits)
	}
	if res.MeanLatency <= 0 {
		t.Fatal("no latency recorded")
	}
	// All five types should have run at this volume.
	for i := range res.PerType {
		if res.PerType[i].Commits == 0 {
			t.Fatalf("type %d never committed", i)
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	db := loadedDB(t, core.SnapshotFUW, 50)
	if _, err := Run(db, Config{MPL: 0, Customers: 50, HotspotSize: 10, Measure: time.Millisecond}); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestAbortAccountingUnderContention(t *testing.T) {
	// Tiny hotspot + updates-only mix: serialization aborts must appear
	// and be attributed.
	db := loadedDB(t, core.SnapshotFUW, 100)
	var mix Mix
	mix[smallbank.TransactSaving] = 0.5
	mix[smallbank.WriteCheck] = 0.5
	res, err := Run(db, Config{
		Strategy: smallbank.StrategyMaterializeWT,
		MPL:      8, Customers: 100, HotspotSize: 2, HotspotProb: 1.0,
		Mix:  mix,
		Ramp: 10 * time.Millisecond, Measure: measure(200 * time.Millisecond), Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborts == 0 {
		t.Fatal("expected serialization aborts on a 2-customer hotspot with materialized conflicts")
	}
	ser := res.PerType[smallbank.TransactSaving].Aborts[core.AbortSerialization] +
		res.PerType[smallbank.WriteCheck].Aborts[core.AbortSerialization]
	dead := res.PerType[smallbank.TransactSaving].Aborts[core.AbortDeadlock] +
		res.PerType[smallbank.WriteCheck].Aborts[core.AbortDeadlock]
	if ser+dead == 0 {
		t.Fatalf("aborts not classified as serialization/deadlock: %+v", res.PerType)
	}
	rate := res.PerType[smallbank.WriteCheck].SerializationAbortRate()
	if rate < 0 || rate > 1 {
		t.Fatalf("abort rate = %v", rate)
	}
}

// TestEngineMetricsDelta pins the observability contract of Result.Engine:
// it is a delta over the driver's own run (work done before Run is
// excluded), the commit-latency histogram is populated because Run
// switches metering on, and the abort taxonomy attributes essentially
// every abort — the paper-facing acceptance bar is ≥95% on a hotspot mix.
func TestEngineMetricsDelta(t *testing.T) {
	db := loadedDB(t, core.SnapshotFUW, 100)

	// Commit one transaction before the run; the delta must not see it,
	// and the latency histogram must stay empty while metering is off.
	tx := db.Begin()
	if err := smallbank.RunDepositChecking(tx, smallbank.StrategySI, smallbank.Params{N1: smallbank.CustomerName(1), V: 1}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	pre := db.TxnMetrics()
	if pre.CommitLatency.Count != 0 {
		t.Fatalf("commit latency metered outside Run: %d", pre.CommitLatency.Count)
	}

	var mix Mix
	mix[smallbank.TransactSaving] = 0.5
	mix[smallbank.WriteCheck] = 0.5
	res, err := Run(db, Config{
		Strategy: smallbank.StrategySI,
		MPL:      8, Customers: 100, HotspotSize: 2, HotspotProb: 1.0,
		Mix:  mix,
		Ramp: 10 * time.Millisecond, Measure: measure(200 * time.Millisecond), Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine.Commits <= 0 {
		t.Fatal("engine delta saw no commits")
	}
	if int64(res.Engine.Commits) < res.Commits {
		// Engine counts the ramp too, so it can only be >= the measured window.
		t.Fatalf("engine commits %d < measured commits %d", res.Engine.Commits, res.Commits)
	}
	if res.Engine.CommitLatency.Count == 0 {
		t.Fatal("Run did not enable commit-latency metering")
	}
	if res.Engine.Aborts.Total() == 0 {
		t.Fatal("2-customer hotspot produced no engine-level aborts")
	}
	if attr := res.AbortAttribution(); attr < 0.95 {
		t.Fatalf("abort attribution %.3f below the 95%% bar (vector %v)", attr, res.Engine.Aborts)
	}

	// Metering is switched back off when Run returns.
	after := db.TxnMetrics()
	tx2 := db.Begin()
	if err := smallbank.RunDepositChecking(tx2, smallbank.StrategySI, smallbank.Params{N1: smallbank.CustomerName(2), V: 1}); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := db.TxnMetrics().CommitLatency.Count; got != after.CommitLatency.Count {
		t.Fatalf("commit latency still metered after Run: %d -> %d", after.CommitLatency.Count, got)
	}
}

// TestDriverSerializableUnderStrategy runs a full concurrent workload
// with the checker attached: a repair strategy must yield an acyclic
// MVSG even on a pathological hotspot.
func TestDriverSerializableUnderStrategy(t *testing.T) {
	for _, s := range []*smallbank.Strategy{
		smallbank.StrategyMaterializeWT,
		smallbank.StrategyPromoteWTUpd,
		smallbank.StrategyPromoteBWUpd,
	} {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			db := loadedDB(t, core.SnapshotFUW, 60)
			c := checker.New()
			db.SetObserver(c)
			_, err := Run(db, Config{
				Strategy: s,
				MPL:      8, Customers: 60, HotspotSize: 3, HotspotProb: 1.0,
				Measure: measure(250 * time.Millisecond), Seed: 5,
			})
			if err != nil {
				t.Fatal(err)
			}
			rep := c.Analyze()
			if rep.Txns == 0 {
				t.Fatal("nothing recorded")
			}
			if !rep.Serializable {
				t.Fatalf("%s produced a non-serializable execution:\n%s", s.Name, rep.Describe())
			}
		})
	}
}

// TestDriverFindsAnomalyUnderPlainSI stochastically reproduces the
// paper's premise: on a small hotspot, plain SI eventually commits a
// non-serializable execution. The seed and duration are chosen so this
// fires reliably; if the engine's SI were accidentally too strong this
// test would catch it.
func TestDriverFindsAnomalyUnderPlainSI(t *testing.T) {
	if testing.Short() {
		// The deterministic replays in internal/detsim
		// (TestWriteSkewAcrossModes and friends) pin the same property
		// without scheduling luck; skip the stochastic hunt in -short.
		t.Skip("stochastic anomaly search; deterministic version lives in internal/detsim")
	}
	// The anomaly is a scheduling race, so this is probabilistic; each
	// attempt hits with probability well above a third, making ten
	// misses in a row vanishingly unlikely unless SI is accidentally
	// too strong. A free-hardware engine is too fast for its own good
	// here: on one OS CPU a whole transaction can run inside a single
	// scheduling quantum and snapshots stop overlapping, so charge a
	// little simulated per-statement CPU to stretch transaction
	// lifetimes and force genuine concurrency on the hotspot.
	for attempt := 0; attempt < 10; attempt++ {
		db := engine.Open(engine.Config{
			Mode: core.SnapshotFUW, Platform: core.PlatformPostgres,
			Res: simres.Config{VirtualCPUs: 2, StmtCPU: 50 * time.Microsecond},
		})
		t.Cleanup(db.Close)
		if err := smallbank.CreateSchema(db); err != nil {
			t.Fatal(err)
		}
		if _, err := smallbank.Load(db, smallbank.LoadConfig{Customers: 40, Seed: 42}); err != nil {
			t.Fatal(err)
		}
		c := checker.New()
		db.SetObserver(c)
		if _, err := Run(db, Config{
			Strategy: smallbank.StrategySI,
			MPL:      10, Customers: 40, HotspotSize: 2, HotspotProb: 1.0,
			Measure: 500 * time.Millisecond, Seed: int64(attempt * 31),
		}); err != nil {
			t.Fatal(err)
		}
		if rep := c.Analyze(); !rep.Serializable {
			return // anomaly observed, as the theory predicts
		}
	}
	t.Fatal("plain SI never produced a non-serializable execution on a pathological hotspot")
}

package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sicost/internal/core"
	"sicost/internal/engine"
	"sicost/internal/faultinject"
	"sicost/internal/onlinecheck"
	"sicost/internal/server"
	"sicost/internal/smallbank"
	"sicost/internal/trace"
)

// ServerChaosConfig parameterizes the network-server chaos harness: a
// churn of real TCP clients — connecting, transacting, idling, killed
// mid-statement — against a fault-injected server that is drained by
// Shutdown while the storm is still running. Every cycle must end with
// zero leaked transactions, locks, waiters and admission slots, money
// conserved, and a clean online-checker verdict: the server's
// disconnect-safety contract, exercised the hard way.
type ServerChaosConfig struct {
	// Cycles is the number of open/storm/drain/audit rounds.
	Cycles int
	// Clients is the number of concurrent client goroutines per cycle,
	// each cycling through connections on its own schedule.
	Clients int
	// Customers sizes the SmallBank population (the write hotspot).
	Customers int
	// Churn is how long each cycle's storm runs before Shutdown fires
	// mid-load.
	Churn time.Duration
	// Seed derives every cycle's fault registry and client schedules.
	Seed int64
}

func (c *ServerChaosConfig) defaults() {
	if c.Cycles <= 0 {
		c.Cycles = 3
	}
	if c.Clients <= 0 {
		c.Clients = 24
	}
	if c.Customers <= 0 {
		c.Customers = 50
	}
	if c.Churn <= 0 {
		c.Churn = 250 * time.Millisecond
	}
}

// ServerChaosCycle is one cycle's accounting.
type ServerChaosCycle struct {
	Cycle int
	Mode  core.CCMode
	// Commits counts COMMIT acknowledgements clients actually saw;
	// committed transfers whose acknowledgement died on the wire are
	// invisible here (and that is the point — conservation must hold
	// regardless).
	Commits uint64
	// Kills counts abrupt client-side connection kills (RST via
	// SetLinger(0)); Reconnects counts successful dials.
	Kills, Reconnects uint64
	// ShedSeen counts structured overload rejections clients observed.
	ShedSeen uint64
	// FaultsFired sums wire-level fault injections.
	FaultsFired uint64
	// Server is the final server snapshot for the cycle.
	Server server.Stats
}

// ServerChaosReport aggregates the run.
type ServerChaosReport struct {
	Cycles []ServerChaosCycle
	// Violations lists every broken invariant; empty means the server
	// survived the churn cleanly.
	Violations []string
}

// OK reports whether every audited invariant held in every cycle.
func (r *ServerChaosReport) OK() bool { return len(r.Violations) == 0 }

// RunServerChaos executes the harness. Modes alternate between Strict2PL
// and SerializableSI so both lock-heavy and snapshot-heavy teardown
// paths face the churn; both guarantee serializable executions, so the
// online checker's verdict is an invariant, not an observation.
func RunServerChaos(cfg ServerChaosConfig) (*ServerChaosReport, error) {
	cfg.defaults()
	rep := &ServerChaosReport{}
	for cycle := 0; cycle < cfg.Cycles; cycle++ {
		mode := core.Strict2PL
		if cycle%2 == 1 {
			mode = core.SerializableSI
		}
		cr, err := runServerChaosCycle(cfg, cycle, mode, rep)
		if err != nil {
			return nil, err
		}
		rep.Cycles = append(rep.Cycles, *cr)
	}
	return rep, nil
}

func runServerChaosCycle(cfg ServerChaosConfig, cycle int, mode core.CCMode, rep *ServerChaosReport) (*ServerChaosCycle, error) {
	violate := func(format string, a ...any) {
		rep.Violations = append(rep.Violations, fmt.Sprintf("cycle %d: ", cycle)+fmt.Sprintf(format, a...))
	}

	faults := faultinject.New(cfg.Seed + int64(cycle)*7919)
	db := engine.Open(engine.Config{
		Mode: mode, Platform: core.PlatformPostgres,
		LockWaitTimeout: 250 * time.Millisecond,
	})
	if err := smallbank.CreateSchema(db); err != nil {
		return nil, err
	}
	if _, err := smallbank.Load(db, smallbank.LoadConfig{Customers: cfg.Customers, Seed: cfg.Seed}); err != nil {
		return nil, err
	}
	initial, err := smallbank.TotalMoney(db)
	if err != nil {
		return nil, err
	}

	// The online checker rides the server's live trace stream — attached
	// after the bulk load so only served traffic is checked.
	rec := trace.New(trace.Options{})
	db.SetTracer(rec)
	check := onlinecheck.New(onlinecheck.Config{SIRules: mode != core.Strict2PL})
	sub := trace.Subscribe(rec, check.Ingest, trace.SubOptions{})

	// Wire-level fault plan: failed reads, partial writes, mid-statement
	// hangups — each at a rate low enough that most traffic flows.
	for _, s := range []faultinject.Spec{
		{Point: server.FaultConnRead, Rate: 0.01, Action: faultinject.ActError},
		{Point: server.FaultConnWrite, Rate: 0.01, Action: faultinject.ActError},
		{Point: server.FaultConnHangup, Rate: 0.005, Action: faultinject.ActError},
	} {
		if err := faults.Arm(s); err != nil {
			return nil, err
		}
	}

	// MaxConns below the client count so admission sheds under the storm;
	// a short idle timeout so abandoned sessions get reaped within the
	// cycle; a drain window shorter than the churn tail so Shutdown
	// exercises the hard-abort path too.
	srv := server.New(server.Config{
		DB:                db,
		MaxConns:          cfg.Clients*3/4 + 1,
		ConnQueue:         4,
		AcceptTimeout:     20 * time.Millisecond,
		IdleTimeout:       60 * time.Millisecond,
		StatementDeadline: 2 * time.Second,
		DrainWindow:       500 * time.Millisecond,
		Faults:            faults,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go srv.Serve(ln)
	addr := ln.Addr().String()

	cr := &ServerChaosCycle{Cycle: cycle, Mode: mode}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for id := 0; id < cfg.Clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(cycle)*1e6 + int64(id)*104729))
			chaosClient(addr, cfg.Customers, rng, &stop, cr)
		}(id)
	}

	time.Sleep(cfg.Churn)
	// The SIGTERM path: drain mid-storm, stragglers hard-aborted.
	srv.Shutdown()
	stop.Store(true)
	wg.Wait()

	// ---- The audit: nothing leaked, nothing lost, nothing reordered.
	st := srv.Stats()
	cr.Server = st
	for _, fs := range faults.Stats() {
		cr.FaultsFired += fs.Fired
	}
	if st.Gate.InFlight != 0 || st.Gate.QueueDepth != 0 {
		violate("admission gate leak: %d in flight, %d queued after drain", st.Gate.InFlight, st.Gate.QueueDepth)
	}
	if st.Conns != 0 {
		violate("connection leak: %d conns registered after drain", st.Conns)
	}
	if n := db.InFlightTxns(); n != 0 {
		violate("transaction leak: %d in flight after drain", n)
	}
	if held, queued := db.LockAudit(); held != 0 || queued != 0 {
		violate("lock leak: %d held, %d queued after drain", held, queued)
	}
	final, err := smallbank.TotalMoney(db)
	if err != nil {
		return nil, err
	}
	if final != initial {
		violate("conservation: total money %d, want %d (zero-sum transfers only)", final, initial)
	}
	sub.Close()
	check.Ingest(nil)
	verdict := check.Finalize()
	if !verdict.Serializable || verdict.SIViolations != 0 {
		violate("online check under churn: %s", verdict.Describe())
	}
	db.SetTracer(nil)

	// DB.Close under a watchdog: a drain bug that wedges the engine's
	// inflight accounting shows up as a hang here, not a pass.
	closed := make(chan struct{})
	go func() { db.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		violate("db.Close wedged: engine did not quiesce after server drain")
	}
	return cr, nil
}

// chaosClient is one churning client: it cycles through connections
// running zero-sum Checking transfers and balance reads, with random
// fates — clean disconnects, RST kills mid-transaction or right after
// COMMIT, idle lapses past the server's reaper. Every fate is legal;
// the server owns the cleanup.
func chaosClient(addr string, customers int, rng *rand.Rand, stop *atomic.Bool, cr *ServerChaosCycle) {
	for !stop.Load() {
		nc, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err != nil {
			time.Sleep(time.Duration(1+rng.Intn(5)) * time.Millisecond)
			continue
		}
		atomic.AddUint64(&cr.Reconnects, 1)
		chaosConn(nc, customers, rng, stop, cr)
	}
}

// chaosConn drives one connection until a random fate or an error ends
// it.
func chaosConn(nc net.Conn, customers int, rng *rand.Rand, stop *atomic.Bool, cr *ServerChaosCycle) {
	defer nc.Close()
	br := bufio.NewReader(nc)

	send := func(q string) (server.Response, bool) {
		b, _ := json.Marshal(server.Request{Q: q})
		nc.SetWriteDeadline(time.Now().Add(2 * time.Second))
		if _, err := nc.Write(append(b, '\n')); err != nil {
			return server.Response{}, false
		}
		for {
			nc.SetReadDeadline(time.Now().Add(2 * time.Second))
			line, err := br.ReadBytes('\n')
			if err != nil {
				return server.Response{}, false
			}
			var r server.Response
			if json.Unmarshal(line, &r) != nil {
				return server.Response{}, false
			}
			// Unsolicited notices (the drain notification) interleave with
			// response lines; skip them unless they end the connection.
			if r.Notice != "" && r.Status == "" && r.Err == "" {
				if r.Final {
					return r, false
				}
				continue
			}
			if r.Err != "" && r.Abort == core.AbortOverload.String() {
				atomic.AddUint64(&cr.ShedSeen, 1)
			}
			return r, !r.Final
		}
	}
	kill := func() {
		if tc, ok := nc.(*net.TCPConn); ok {
			tc.SetLinger(0) // RST, not FIN: the ungraceful death
		}
		atomic.AddUint64(&cr.Kills, 1)
	}

	for !stop.Load() {
		switch f := rng.Float64(); {
		case f < 0.05:
			// Idle lapse: outlive the server's idle timeout doing nothing.
			time.Sleep(90 * time.Millisecond)
			return
		case f < 0.09:
			// Slow transfer: a long-running transaction trickling zero-sum
			// updates. Active enough to dodge the idle reaper, slow enough
			// to straddle a drain — the straggler the hard-abort path is
			// for. Dying mid-way (or being hard-closed) leaves nothing
			// committed, so conservation is indifferent to its fate.
			a := 1 + rng.Intn(customers)
			b := a%customers + 1
			if _, ok := send("BEGIN"); !ok {
				return
			}
			for i := 0; i < 8; i++ {
				// Both halves must apply (a failed half would break the
				// zero sum — but a failed statement poisons the
				// transaction, so COMMIT below degrades to ROLLBACK).
				r, ok := send(fmt.Sprintf("UPDATE Checking SET Balance = Balance - 1 WHERE CustomerId = %d", a))
				if ok && r.Err == "" {
					r, ok = send(fmt.Sprintf("UPDATE Checking SET Balance = Balance + 1 WHERE CustomerId = %d", b))
				}
				if !ok {
					return
				}
				if r.Err != "" {
					if r.InTx {
						send("ROLLBACK")
					}
					break
				}
				time.Sleep(40 * time.Millisecond)
			}
			if r, ok := send("COMMIT"); !ok {
				return
			} else if r.Err == "" {
				atomic.AddUint64(&cr.Commits, 1)
			}
		case f < 0.28:
			// Autocommit read.
			q := fmt.Sprintf("SELECT Balance FROM Checking WHERE CustomerId = %d", 1+rng.Intn(customers))
			if _, ok := send(q); !ok {
				return
			}
		default:
			// Zero-sum transfer, with a chance of dying at every step.
			a := 1 + rng.Intn(customers)
			b := 1 + rng.Intn(customers)
			if a == b {
				b = a%customers + 1
			}
			v := 1 + rng.Intn(9)
			steps := []string{
				"BEGIN",
				fmt.Sprintf("UPDATE Checking SET Balance = Balance - %d WHERE CustomerId = %d", v, a),
				fmt.Sprintf("UPDATE Checking SET Balance = Balance + %d WHERE CustomerId = %d", v, b),
				"COMMIT",
			}
			for i, q := range steps {
				if rng.Float64() < 0.03 {
					kill()
					return
				}
				r, ok := send(q)
				if !ok {
					return
				}
				if r.Err != "" {
					// Failed statement: abandon the transfer. Retriable or
					// not, ROLLBACK clears the (poisoned) transaction.
					if r.InTx {
						send("ROLLBACK")
					}
					break
				}
				if i == len(steps)-1 {
					atomic.AddUint64(&cr.Commits, 1)
				}
			}
			// Sometimes die right after COMMIT was acknowledged — or just
			// close cleanly and cycle to a fresh connection.
			if rng.Float64() < 0.05 {
				kill()
				return
			}
			if rng.Float64() < 0.1 {
				return
			}
		}
	}
}

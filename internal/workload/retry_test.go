package workload

import (
	"math/rand"
	"testing"
	"time"

	"sicost/internal/core"
)

func TestImmediatePolicy(t *testing.T) {
	p := ImmediatePolicy{MaxRetries: 2}
	rng := rand.New(rand.NewSource(1))
	for n := 1; n <= 2; n++ {
		d, ok := p.Backoff(n, 0, rng)
		if !ok || d != 0 {
			t.Fatalf("failure %d: (%v, %v), want (0, true)", n, d, ok)
		}
	}
	if _, ok := p.Backoff(3, 0, rng); ok {
		t.Fatal("retried past MaxRetries")
	}
	if _, ok := (ImmediatePolicy{}).Backoff(1, 0, rng); ok {
		t.Fatal("zero policy retried")
	}
}

func TestBackoffPolicyGrowthAndCap(t *testing.T) {
	p := BackoffPolicy{MaxRetries: 10, Base: time.Millisecond, Cap: 4 * time.Millisecond}
	rng := rand.New(rand.NewSource(1))
	want := []time.Duration{
		1 * time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond,
		4 * time.Millisecond, 4 * time.Millisecond,
	}
	for i, w := range want {
		d, ok := p.Backoff(i+1, 0, rng)
		if !ok {
			t.Fatalf("failure %d refused", i+1)
		}
		if d != w {
			t.Fatalf("failure %d: backoff %v, want %v", i+1, d, w)
		}
	}
	if _, ok := p.Backoff(11, 0, rng); ok {
		t.Fatal("retried past MaxRetries")
	}
}

func TestBackoffPolicyJitterRange(t *testing.T) {
	p := BackoffPolicy{MaxRetries: 1, Base: 10 * time.Millisecond, Jitter: 0.5}
	rng := rand.New(rand.NewSource(7))
	lo, hi := 5*time.Millisecond, 10*time.Millisecond
	seen := map[time.Duration]bool{}
	for i := 0; i < 100; i++ {
		d, ok := p.Backoff(1, 0, rng)
		if !ok {
			t.Fatal("refused")
		}
		if d < lo || d > hi {
			t.Fatalf("jittered backoff %v outside [%v, %v]", d, lo, hi)
		}
		seen[d] = true
	}
	if len(seen) < 10 {
		t.Fatalf("jitter produced only %d distinct values", len(seen))
	}
}

func TestBackoffPolicyBudget(t *testing.T) {
	p := BackoffPolicy{MaxRetries: 100, Base: 2 * time.Millisecond, Budget: 5 * time.Millisecond}
	rng := rand.New(rand.NewSource(1))
	var spent time.Duration
	retries := 0
	for n := 1; ; n++ {
		d, ok := p.Backoff(n, spent, rng)
		if !ok {
			break
		}
		spent += d
		retries++
		if retries > 50 {
			t.Fatal("budget never exhausted")
		}
	}
	if spent > 5*time.Millisecond {
		t.Fatalf("spent %v past the %v budget", spent, 5*time.Millisecond)
	}
	// Without jitter the steps are 2ms then 4ms: the first fits the 5ms
	// budget, the second would exceed it and is refused.
	if retries != 1 {
		t.Fatalf("retries = %d, want 1", retries)
	}
}

func TestRetryStatsSurfaceInResult(t *testing.T) {
	db := loadedDB(t, core.Strict2PL, 50)
	res, err := Run(db, Config{
		Strategy:    nil, // defaults to SI strategy set
		MPL:         8,
		Customers:   50,
		HotspotSize: 5,
		HotspotProb: 1.0,
		Measure:     measure(400 * time.Millisecond),
		Seed:        1,
		Retry:       DefaultBackoff(50),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits == 0 {
		t.Fatal("no commits")
	}
	// A 5-customer hotspot under 2PL at MPL 8 must produce deadlock
	// aborts and therefore retries with nonzero backoff time.
	if res.Aborts > 0 && res.Retries == 0 && res.GiveUps == 0 {
		t.Fatalf("aborts=%d but no retries and no give-ups recorded", res.Aborts)
	}
	if res.Retries > 0 && res.BackoffTime == 0 {
		t.Fatal("retries recorded but no backoff time under a backoff policy")
	}
	var perTypeRetries int64
	for i := range res.PerType {
		perTypeRetries += res.PerType[i].Retries
	}
	if perTypeRetries != res.Retries {
		t.Fatalf("per-type retries %d != total %d", perTypeRetries, res.Retries)
	}
}

package workload

import (
	"os"
	"testing"
	"time"
)

// TestServerChaos runs the client-churn + wire-fault harness. The
// default shape is CI-sized; SERVECHAOS_FULL=1 (set by `make
// servechaos`) scales it to the acceptance gate: 20 cycles, a couple
// hundred concurrent sockets, drain mid-storm every cycle.
func TestServerChaos(t *testing.T) {
	cfg := ServerChaosConfig{Cycles: 2, Clients: 24, Customers: 50, Churn: 250 * time.Millisecond, Seed: 1}
	if os.Getenv("SERVECHAOS_FULL") != "" {
		cfg = ServerChaosConfig{Cycles: 20, Clients: 220, Customers: 200, Churn: 400 * time.Millisecond, Seed: 1}
	} else if testing.Short() {
		cfg.Cycles = 1
	}

	rep, err := RunServerChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var commits, kills, faults, sheds, aborted uint64
	for _, c := range rep.Cycles {
		commits += c.Commits
		kills += c.Kills
		faults += c.FaultsFired
		sheds += c.Server.Shed
		aborted += c.Server.AbortedOnDisconnect
		t.Logf("cycle %d (%v): %d commits, %d kills, %d reconnects, %d shed, %d faults, %d aborted-on-disconnect, %d drained + %d hard-closed",
			c.Cycle, c.Mode, c.Commits, c.Kills, c.Reconnects, c.Server.Shed,
			c.FaultsFired, c.Server.AbortedOnDisconnect, c.Server.Drained, c.Server.HardClosed)
	}
	if !rep.OK() {
		for _, v := range rep.Violations {
			t.Errorf("violation: %s", v)
		}
	}
	// The harness must actually exercise the adversarial paths, or the
	// invariant audit is vacuous.
	if commits == 0 {
		t.Error("no transfer ever committed: the storm did no work")
	}
	if kills == 0 {
		t.Error("no client was ever killed: the churn is too gentle")
	}
	if faults == 0 {
		t.Error("no wire fault ever fired")
	}
	if aborted == 0 {
		t.Error("no transaction was ever aborted on disconnect: the kill paths missed the sessions")
	}
}

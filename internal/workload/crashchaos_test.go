package workload

import (
	"testing"
	"time"

	"sicost/internal/core"
)

// TestCrashChaosDurabilityContract is the durability story's core
// promise: across ≥20 crash/recover cycles — crashes landing mid-flush,
// inside the WAL commit window, at commit stamping, mid-statement and
// at begin — every acked commit survives recovery, no partial
// transaction becomes visible, money is conserved, CSNs stay monotone,
// recovery is idempotent, and the last survivor still commits.
func TestCrashChaosDurabilityContract(t *testing.T) {
	rep, err := RunCrashChaos(CrashChaosConfig{
		Cycles: 20,
		Seed:   7,
		Burst:  measure(80 * time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("durability invariants violated: %v", rep.Violations)
	}
	if len(rep.Cycles) != 20 {
		t.Fatalf("completed %d cycles, want 20", len(rep.Cycles))
	}
	if rep.CrashesFired() == 0 {
		t.Fatal("no crash fault ever fired")
	}
	if rep.ResumeCommits == 0 {
		t.Fatal("final resume burst committed nothing")
	}
	var commits int64
	var torn, replayed, ckptRows int
	for _, c := range rep.Cycles {
		commits += c.Commits
		torn += c.TornBytes
		replayed += c.ReplayedCommits
		ckptRows += c.CheckpointRows
	}
	if commits == 0 {
		t.Fatal("crash cycles committed nothing")
	}
	// The rotation includes wal/flush panics, which tear the device
	// append; at least one cycle must have exercised torn-tail repair.
	if torn == 0 {
		t.Fatal("no cycle exercised torn-tail truncation")
	}
	if replayed == 0 {
		t.Fatal("no cycle exercised redo replay")
	}
	// CheckpointEvery defaults to 2, so later recoveries must have
	// restored checkpoint rows.
	if ckptRows == 0 {
		t.Fatal("no cycle exercised checkpoint restore")
	}
}

// TestCrashChaosSegmented runs the full 20-cycle rotation on a
// segmented log small enough that every burst rotates several times, so
// crashes land at segment boundaries — including the dedicated
// wal/rotate crash point between sealing a full segment and opening its
// successor — and recovery repeatedly scans multi-segment layouts.
func TestCrashChaosSegmented(t *testing.T) {
	rep, err := RunCrashChaos(CrashChaosConfig{
		Cycles:      20,
		Seed:        13,
		Burst:       measure(60 * time.Millisecond),
		SegmentSize: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("durability invariants violated on segmented log: %v", rep.Violations)
	}
	if rep.CrashesFired() == 0 {
		t.Fatal("no crash fault ever fired")
	}
	var maxSegs int
	for _, c := range rep.Cycles {
		if c.Segments > maxSegs {
			maxSegs = c.Segments
		}
	}
	if maxSegs < 2 {
		t.Fatalf("no recovery ever scanned a multi-segment layout (max %d)", maxSegs)
	}
	if rep.ResumeCommits == 0 {
		t.Fatal("final resume burst committed nothing")
	}
}

// TestCrashChaosAsync runs the rotation in asynchronous-commit mode on
// a segmented log: commits publish before they are durable, so crashes
// inside the coalesced-sync window lose the un-acked tail — and ONLY
// that. Every cycle audits the durable-prefix contract: recovery lands
// exactly on the published state at the recovered high-water mark, and
// no commit whose durability was acknowledged is ever lost.
func TestCrashChaosAsync(t *testing.T) {
	rep, err := RunCrashChaos(CrashChaosConfig{
		Cycles:      20,
		Seed:        17,
		Burst:       measure(60 * time.Millisecond),
		Async:       true,
		SegmentSize: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("async durable-prefix invariants violated: %v", rep.Violations)
	}
	if rep.CrashesFired() == 0 {
		t.Fatal("no crash fault ever fired")
	}
	// The zero-delta mix moves money without creating it: the ledger of
	// every burst must be exactly zero, which is what makes conservation
	// auditable on an arbitrary surviving prefix.
	if rep.Ledger != 0 {
		t.Fatalf("zero-delta mix produced a nonzero ledger: %d", rep.Ledger)
	}
	if rep.ResumeCommits == 0 {
		t.Fatal("final resume burst committed nothing")
	}
}

// TestCrashChaosFuzzy runs the 20-cycle rotation with the fuzzy
// incremental checkpoint machinery live: the log-growth scheduler
// streams delta links concurrently with the burst's commits, full links
// re-root the chain, covered segments retire (with archiving) while the
// workload runs, and the rotation includes the mid-delta
// (wal/ckpt-delta) and mid-retire (wal/retire) crash points. The audit
// is byte-for-byte the same durability contract: recovered state ==
// published state, conservation, monotone CSNs, idempotent recovery.
func TestCrashChaosFuzzy(t *testing.T) {
	rep, err := RunCrashChaos(CrashChaosConfig{
		Cycles:      20,
		Seed:        29,
		Burst:       measure(60 * time.Millisecond),
		SegmentSize: 4096,
		Fuzzy:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("durability invariants violated under fuzzy checkpoints: %v", rep.Violations)
	}
	if rep.CrashesFired() == 0 {
		t.Fatal("no crash fault ever fired")
	}
	var chainRecoveries int
	for _, c := range rep.Cycles {
		if c.ChainLinks > 0 {
			chainRecoveries++
		}
	}
	if chainRecoveries == 0 {
		t.Fatal("no recovery ever folded a fuzzy checkpoint chain")
	}
	if rep.ResumeCommits == 0 {
		t.Fatal("final resume burst committed nothing")
	}
}

// TestCrashChaosModes runs a shorter rotation under the other two
// concurrency-control modes: the durability contract is mode-agnostic.
func TestCrashChaosModes(t *testing.T) {
	for _, mode := range []core.CCMode{core.Strict2PL, core.SerializableSI} {
		t.Run(mode.String(), func(t *testing.T) {
			rep, err := RunCrashChaos(CrashChaosConfig{
				Mode:   mode,
				Cycles: 6,
				Seed:   11,
				Burst:  measure(40 * time.Millisecond),
			})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.OK() {
				t.Fatalf("durability invariants violated under %s: %v", mode, rep.Violations)
			}
			if rep.ResumeCommits == 0 {
				t.Fatal("final resume burst committed nothing")
			}
		})
	}
}

// TestCrashChaosDeadlines runs the rotation with a default transaction
// deadline racing simulated fsync latency: deadlines expire inside
// flush-group waits, so WAL.Withdraw races the flush window's claim
// while crash points fire around both. The audit is unchanged — a
// withdrawn commit must look exactly like an abort (never
// half-published) or the row-for-row state diff catches it.
func TestCrashChaosDeadlines(t *testing.T) {
	rep, err := RunCrashChaos(CrashChaosConfig{
		Cycles:       12,
		Seed:         23,
		Burst:        measure(60 * time.Millisecond),
		TxDeadline:   4 * time.Millisecond,
		FsyncLatency: 3 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("durability invariants violated under deadlines: %v", rep.Violations)
	}
	if rep.CrashesFired() == 0 {
		t.Fatal("no crash fault ever fired")
	}
	var deadline int64
	for _, c := range rep.Cycles {
		deadline += c.DeadlineAborts
	}
	if deadline == 0 {
		t.Fatal("no burst ever expired a deadline — the race was not exercised")
	}
	if rep.ResumeCommits == 0 {
		t.Fatal("final resume burst committed nothing")
	}
}

package workload

import (
	"testing"
	"time"

	"sicost/internal/core"
)

// TestCrashChaosDurabilityContract is the durability story's core
// promise: across ≥20 crash/recover cycles — crashes landing mid-flush,
// inside the WAL commit window, at commit stamping, mid-statement and
// at begin — every acked commit survives recovery, no partial
// transaction becomes visible, money is conserved, CSNs stay monotone,
// recovery is idempotent, and the last survivor still commits.
func TestCrashChaosDurabilityContract(t *testing.T) {
	rep, err := RunCrashChaos(CrashChaosConfig{
		Cycles: 20,
		Seed:   7,
		Burst:  measure(80 * time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("durability invariants violated: %v", rep.Violations)
	}
	if len(rep.Cycles) != 20 {
		t.Fatalf("completed %d cycles, want 20", len(rep.Cycles))
	}
	if rep.CrashesFired() == 0 {
		t.Fatal("no crash fault ever fired")
	}
	if rep.ResumeCommits == 0 {
		t.Fatal("final resume burst committed nothing")
	}
	var commits int64
	var torn, replayed, ckptRows int
	for _, c := range rep.Cycles {
		commits += c.Commits
		torn += c.TornBytes
		replayed += c.ReplayedCommits
		ckptRows += c.CheckpointRows
	}
	if commits == 0 {
		t.Fatal("crash cycles committed nothing")
	}
	// The rotation includes wal/flush panics, which tear the device
	// append; at least one cycle must have exercised torn-tail repair.
	if torn == 0 {
		t.Fatal("no cycle exercised torn-tail truncation")
	}
	if replayed == 0 {
		t.Fatal("no cycle exercised redo replay")
	}
	// CheckpointEvery defaults to 2, so later recoveries must have
	// restored checkpoint rows.
	if ckptRows == 0 {
		t.Fatal("no cycle exercised checkpoint restore")
	}
}

// TestCrashChaosModes runs a shorter rotation under the other two
// concurrency-control modes: the durability contract is mode-agnostic.
func TestCrashChaosModes(t *testing.T) {
	for _, mode := range []core.CCMode{core.Strict2PL, core.SerializableSI} {
		t.Run(mode.String(), func(t *testing.T) {
			rep, err := RunCrashChaos(CrashChaosConfig{
				Mode:   mode,
				Cycles: 6,
				Seed:   11,
				Burst:  measure(40 * time.Millisecond),
			})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.OK() {
				t.Fatalf("durability invariants violated under %s: %v", mode, rep.Violations)
			}
			if rep.ResumeCommits == 0 {
				t.Fatal("final resume burst committed nothing")
			}
		})
	}
}

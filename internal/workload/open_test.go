package workload

import (
	"math/rand"
	"testing"
	"time"

	"sicost/internal/admission"
	"sicost/internal/core"
	"sicost/internal/engine"
	"sicost/internal/smallbank"
)

func TestRunOpenProducesGoodput(t *testing.T) {
	db := loadedDB(t, core.SnapshotFUW, 50)
	res, err := RunOpen(db, OpenConfig{
		Rate:        800,
		Customers:   50,
		HotspotSize: 10,
		HotspotProb: 0.2,
		Ramp:        20 * time.Millisecond,
		Measure:     measure(200 * time.Millisecond),
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits == 0 {
		t.Fatal("open run committed nothing")
	}
	if res.Goodput <= 0 {
		t.Fatalf("goodput = %v", res.Goodput)
	}
	if res.Arrivals == 0 {
		t.Fatal("no measured arrivals")
	}
	// An interaction either commits, gives up, or is dropped at the
	// driver backstop; commits cannot exceed measured arrivals.
	if res.Commits > res.Arrivals {
		t.Fatalf("commits %d > arrivals %d", res.Commits, res.Arrivals)
	}
	if int64(res.Latency.Count) != res.Commits {
		t.Fatalf("latency count %d != commits %d", res.Latency.Count, res.Commits)
	}
	if res.InFlightPeak <= 0 {
		t.Fatal("in-flight peak never recorded")
	}
	if res.Dropped != 0 {
		t.Fatalf("unexpected driver drops: %d", res.Dropped)
	}
}

func TestRunOpenShedAccounting(t *testing.T) {
	// A one-slot gate with a one-deep queue against 800/s offered load:
	// most arrivals must be shed with ErrOverload, and the driver must
	// attribute them (no retry policy, so every shed is terminal).
	db := engine.Open(engine.Config{
		Mode: core.SnapshotFUW, Platform: core.PlatformPostgres,
		Admission: &admission.Config{
			InitialLimit: 1, MinLimit: 1, MaxLimit: 1,
			MaxQueue: 1, Interval: time.Hour,
		},
	})
	t.Cleanup(db.Close)
	if err := smallbank.CreateSchema(db); err != nil {
		t.Fatal(err)
	}
	if _, err := smallbank.Load(db, smallbank.LoadConfig{Customers: 50, Seed: 42}); err != nil {
		t.Fatal(err)
	}

	// Occupy the only slot for the first half of the window: arrivals in
	// that half find the gate full and the one-deep queue occupied, so
	// they shed; after the holder commits, service resumes and commits
	// appear.
	window := measure(200 * time.Millisecond)
	holder := db.Begin()
	timer := time.AfterFunc(window/2, func() { holder.Commit() })
	defer timer.Stop()

	res, err := RunOpen(db, OpenConfig{
		Rate:        800,
		Customers:   50,
		HotspotSize: 10,
		HotspotProb: 0.2,
		Measure:     window,
		Seed:        2,
		MaxRetries:  -1, // ImmediatePolicy(-1): never retry
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed == 0 {
		t.Fatal("no interaction was shed despite a one-slot gate")
	}
	if res.AbortsByReason[core.AbortOverload] < res.Shed {
		t.Fatalf("overload aborts %d < shed verdicts %d",
			res.AbortsByReason[core.AbortOverload], res.Shed)
	}
	if res.Commits == 0 {
		t.Fatal("admitted slot committed nothing")
	}
	s := db.Admission().Stats()
	if s.Gate.Shed == 0 {
		t.Fatal("gate never counted a shed")
	}
	if s.Gate.InFlight != 0 || s.Gate.QueueDepth != 0 {
		t.Fatalf("gate leak after run: %+v", s.Gate)
	}
}

func TestRunOpenRejectsBadConfig(t *testing.T) {
	db := loadedDB(t, core.SnapshotFUW, 10)
	if _, err := RunOpen(db, OpenConfig{Rate: 0, Customers: 10, HotspotSize: 5, Measure: time.Second}); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := RunOpen(db, OpenConfig{Rate: 100, Customers: 1, HotspotSize: 5, Measure: time.Second}); err == nil {
		t.Fatal("single customer accepted")
	}
}

func TestRetryBudgetTokenBucket(t *testing.T) {
	// No refill: exactly burst tokens, then denials.
	b := NewRetryBudget(0, 3)
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("token %d refused with a full bucket", i)
		}
	}
	if b.Allow() {
		t.Fatal("empty bucket granted a token")
	}
	if b.Allow() {
		t.Fatal("empty zero-rate bucket refilled")
	}
	if b.Denied() != 2 {
		t.Fatalf("denied = %d, want 2", b.Denied())
	}
}

func TestRetryBudgetRefills(t *testing.T) {
	b := NewRetryBudget(1000, 1) // 1 token/ms
	if !b.Allow() {
		t.Fatal("initial token refused")
	}
	if b.Allow() {
		t.Fatal("bucket granted past burst")
	}
	time.Sleep(5 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("bucket did not refill")
	}
}

func TestBudgetedPolicyChargesOnlyRealRetries(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := NewRetryBudget(0, 2)
	p := BudgetedPolicy{Inner: ImmediatePolicy{MaxRetries: 1}, Budget: b}

	// n=2 > MaxRetries: the inner policy refuses, so the budget must
	// not be consulted (no token spent, no denial counted).
	if _, ok := p.Backoff(2, 0, rng); ok {
		t.Fatal("inner refusal overridden")
	}
	if b.Denied() != 0 {
		t.Fatalf("denied = %d after inner refusal", b.Denied())
	}
	// Two inner-approved retries drain the bucket; the third becomes a
	// give-up charged as a denial.
	for i := 0; i < 2; i++ {
		if _, ok := p.Backoff(1, 0, rng); !ok {
			t.Fatalf("budgeted retry %d refused with tokens left", i)
		}
	}
	if _, ok := p.Backoff(1, 0, rng); ok {
		t.Fatal("retry granted on an empty budget")
	}
	if b.Denied() != 1 {
		t.Fatalf("denied = %d, want 1", b.Denied())
	}
}

func TestRunSurfacesBudgetGiveUps(t *testing.T) {
	// Hot single-row contention under 2PL with lock timeouts generates
	// retriable aborts; a zero-refill budget of 1 means nearly every
	// retry is denied and the run must surface those give-ups.
	db := loadedDB(t, core.Strict2PL, 20)
	budget := NewRetryBudget(0, 1)
	res, err := Run(db, Config{
		MPL:         8,
		Customers:   20,
		HotspotSize: 2,
		HotspotProb: 1.0,
		Measure:     measure(150 * time.Millisecond),
		Seed:        4,
		MaxRetries:  10,
		Retry:       BudgetedPolicy{Inner: ImmediatePolicy{MaxRetries: 10}, Budget: budget},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BudgetGiveUps != budget.Denied() {
		t.Fatalf("BudgetGiveUps = %d, budget denied %d", res.BudgetGiveUps, budget.Denied())
	}
}

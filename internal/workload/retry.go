package workload

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// RetryPolicy decides how a client reacts to a retriable abort
// (serialization failure, deadlock victim, lock-wait timeout). The
// paper's driver retries immediately in a closed loop; under contention
// storms that turns every hotspot conflict into instant re-conflict,
// which is exactly the regime where backoff pays (the PostgreSQL SSI
// deployment guidance makes the same point about safe retry).
type RetryPolicy interface {
	// Backoff reports whether the n-th consecutive failure of one
	// logical interaction (n starts at 1) should be retried, and how
	// long to back off first. spent is the backoff already slept for
	// this interaction, so budgeted policies can give up.
	Backoff(n int, spent time.Duration, rng *rand.Rand) (time.Duration, bool)
	// Name labels the policy in results and CLI output.
	Name() string
}

// ImmediatePolicy retries instantly up to MaxRetries times — the
// paper's original closed-loop discipline.
type ImmediatePolicy struct {
	// MaxRetries bounds retries per interaction (the initial attempt is
	// not counted); <= 0 never retries.
	MaxRetries int
}

// Backoff implements RetryPolicy.
func (p ImmediatePolicy) Backoff(n int, _ time.Duration, _ *rand.Rand) (time.Duration, bool) {
	return 0, n <= p.MaxRetries
}

// Name implements RetryPolicy.
func (p ImmediatePolicy) Name() string { return fmt.Sprintf("immediate(max=%d)", p.MaxRetries) }

// BackoffPolicy retries after capped exponential backoff with jitter
// and an optional total-backoff budget per interaction.
type BackoffPolicy struct {
	// MaxRetries bounds retries per interaction; <= 0 never retries.
	MaxRetries int
	// Base is the first retry's backoff; doubles per failure up to Cap.
	Base time.Duration
	// Cap bounds one backoff step (0 = uncapped).
	Cap time.Duration
	// Jitter in [0,1] randomizes each step: the slept duration is
	// drawn uniformly from [d*(1-Jitter), d]. 0 is deterministic
	// backoff; 1 is AWS-style full jitter.
	Jitter float64
	// Budget caps the total backoff per interaction; a retry whose
	// backoff would exceed it gives up instead (0 = unlimited).
	Budget time.Duration
}

// DefaultBackoff is the chaos harness's default retry policy: capped
// exponential backoff with half jitter, tuned to the simulated
// engine's sub-millisecond transaction times.
func DefaultBackoff(maxRetries int) BackoffPolicy {
	return BackoffPolicy{
		MaxRetries: maxRetries,
		Base:       200 * time.Microsecond,
		Cap:        20 * time.Millisecond,
		Jitter:     0.5,
	}
}

// Backoff implements RetryPolicy.
func (p BackoffPolicy) Backoff(n int, spent time.Duration, rng *rand.Rand) (time.Duration, bool) {
	if n > p.MaxRetries {
		return 0, false
	}
	d := p.Base
	for i := 1; i < n; i++ {
		d *= 2
		if p.Cap > 0 && d >= p.Cap {
			d = p.Cap
			break
		}
	}
	if p.Cap > 0 && d > p.Cap {
		d = p.Cap
	}
	if p.Jitter > 0 && d > 0 {
		lo := float64(d) * (1 - p.Jitter)
		d = time.Duration(lo + rng.Float64()*(float64(d)-lo))
	}
	if p.Budget > 0 && spent+d > p.Budget {
		return 0, false
	}
	return d, true
}

// Name implements RetryPolicy.
func (p BackoffPolicy) Name() string {
	return fmt.Sprintf("backoff(max=%d base=%v cap=%v jitter=%.2f budget=%v)",
		p.MaxRetries, p.Base, p.Cap, p.Jitter, p.Budget)
}

// RetryBudget is a token bucket shared by every client of a run: each
// retry spends one token, tokens refill at a fixed rate, and a client
// whose retry finds the bucket empty gives the interaction up instead.
// Per-interaction retry bounds cannot stop retries from amplifying
// offered load during overload — N clients each entitled to 50 retries
// is a 50× amplifier exactly when the system can least afford it — but
// a shared budget caps the *aggregate* retry rate: past saturation,
// retries are forfeited rather than compounded. Safe for concurrent
// use.
type RetryBudget struct {
	mu     sync.Mutex
	tokens float64
	burst  float64
	rate   float64 // tokens per second
	last   time.Time
	denied int64
}

// NewRetryBudget builds a budget refilling at ratePerSec tokens per
// second with the given burst capacity (the bucket starts full).
// ratePerSec <= 0 means the bucket never refills: burst tokens total.
func NewRetryBudget(ratePerSec, burst float64) *RetryBudget {
	if burst < 1 {
		burst = 1
	}
	return &RetryBudget{tokens: burst, burst: burst, rate: ratePerSec, last: time.Now()}
}

// Allow spends one token, reporting false (and counting a denial) when
// the bucket is empty.
func (b *RetryBudget) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	if b.rate > 0 {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens < 1 {
		b.denied++
		return false
	}
	b.tokens--
	return true
}

// Denied returns the cumulative count of refused retries.
func (b *RetryBudget) Denied() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.denied
}

// BudgetedPolicy charges every retry its Inner policy would allow
// against a shared RetryBudget; a retry the budget refuses becomes a
// give-up. The budget is consulted *after* the inner policy so denials
// are only counted for retries that would actually have run.
type BudgetedPolicy struct {
	Inner  RetryPolicy
	Budget *RetryBudget
}

// Backoff implements RetryPolicy.
func (p BudgetedPolicy) Backoff(n int, spent time.Duration, rng *rand.Rand) (time.Duration, bool) {
	d, ok := p.Inner.Backoff(n, spent, rng)
	if !ok {
		return 0, false
	}
	if p.Budget != nil && !p.Budget.Allow() {
		return 0, false
	}
	return d, true
}

// Name implements RetryPolicy.
func (p BudgetedPolicy) Name() string {
	return fmt.Sprintf("budgeted(%s)", p.Inner.Name())
}

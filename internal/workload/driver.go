// Package workload implements the paper's test driver (§IV): a closed
// system of MPL concurrent clients with no think time, each running
// randomly chosen SmallBank transactions against the engine — 90% of
// transactions on a hotspot region of the customer table — through a
// ramp-up period followed by a measurement interval, tracking commits,
// aborts (by reason) and response times per transaction type.
package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"sicost/internal/core"
	"sicost/internal/engine"
	"sicost/internal/faultinject"
	"sicost/internal/metrics"
	"sicost/internal/onlinecheck"
	"sicost/internal/smallbank"
	"sicost/internal/trace"
)

// Mix assigns a probability to each smallbank.TxnType; entries must sum
// to (approximately) 1.
type Mix [smallbank.NumTxnTypes]float64

// UniformMix runs the five transactions with equal probability (most
// experiments in the paper).
func UniformMix() Mix {
	var m Mix
	for i := range m {
		m[i] = 1.0 / float64(len(m))
	}
	return m
}

// BalanceHeavyMix runs Balance with probability pBal and splits the rest
// uniformly (the paper's high-contention experiment uses 60% Balance).
func BalanceHeavyMix(pBal float64) Mix {
	var m Mix
	m[smallbank.Balance] = pBal
	rest := (1 - pBal) / float64(len(m)-1)
	for i := 1; i < len(m); i++ {
		m[i] = rest
	}
	return m
}

// Validate checks the mix sums to 1.
func (m Mix) Validate() error {
	sum := 0.0
	for _, p := range m {
		if p < 0 {
			return fmt.Errorf("workload: negative mix probability %v", p)
		}
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("workload: mix sums to %v, want 1", sum)
	}
	return nil
}

// pick draws a transaction type.
func (m Mix) pick(rng *rand.Rand) smallbank.TxnType {
	r := rng.Float64()
	acc := 0.0
	for i, p := range m {
		acc += p
		if r < acc {
			return smallbank.TxnType(i)
		}
	}
	return smallbank.TxnType(len(m) - 1)
}

// Config parameterizes one workload run.
type Config struct {
	Strategy *smallbank.Strategy
	// MPL is the multiprogramming level: the number of concurrent
	// clients.
	MPL int
	// Customers is the loaded table size (18000 in the paper).
	Customers int
	// HotspotSize is the number of customers in the hotspot (1000
	// normally, 10 for high contention).
	HotspotSize int
	// HotspotProb is the fraction of transactions addressing the
	// hotspot (0.9 in the paper).
	HotspotProb float64
	Mix         Mix
	// Ramp is discarded warm-up time; Measure is the measured interval.
	Ramp, Measure time.Duration
	Seed          int64
	// MaxRetries bounds how often one logical transaction is retried
	// after serialization/deadlock aborts before the client gives up
	// and moves on (each attempt's abort is still counted).
	MaxRetries int
	// Retry chooses the retry discipline. Nil means
	// ImmediatePolicy{MaxRetries} — the paper's closed-loop behaviour.
	Retry RetryPolicy
	// Check, when non-nil, subscribes this online windowed isolation
	// checker to the run's live trace stream: Run attaches it to the
	// database's lifecycle recorder (installing a private recorder when
	// none is configured) and finalizes its report into Result.Check
	// after the clients drain. The caller constructs the checker so it
	// can also expose the live Stats (e.g. through expvar) while the
	// run is in flight.
	Check *onlinecheck.Checker
	// CheckInterval is the subscription pump period when Check is set
	// (0 means trace.DefaultSubInterval).
	CheckInterval time.Duration
}

func (c *Config) defaults() error {
	if c.Strategy == nil {
		c.Strategy = smallbank.StrategySI
	}
	if c.MPL <= 0 {
		return fmt.Errorf("workload: MPL must be positive")
	}
	if c.Customers <= 1 {
		return fmt.Errorf("workload: need at least 2 customers")
	}
	if c.HotspotSize <= 1 || c.HotspotSize > c.Customers {
		return fmt.Errorf("workload: hotspot size %d out of range", c.HotspotSize)
	}
	if c.HotspotProb < 0 || c.HotspotProb > 1 {
		return fmt.Errorf("workload: hotspot probability %v out of range", c.HotspotProb)
	}
	var zero Mix
	if c.Mix == zero {
		c.Mix = UniformMix()
	}
	if err := c.Mix.Validate(); err != nil {
		return err
	}
	if c.Measure <= 0 {
		return fmt.Errorf("workload: measurement interval must be positive")
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 50
	}
	if c.Retry == nil {
		c.Retry = ImmediatePolicy{MaxRetries: c.MaxRetries}
	}
	return nil
}

// TypeStats aggregates one transaction type's outcomes during the
// measurement interval.
type TypeStats struct {
	Commits int64
	// Aborts counts attempts that did not commit, by reason.
	Aborts map[core.AbortReason]int64
	// Retries counts re-attempts after retriable aborts.
	Retries int64
	// Backoff is total time spent sleeping between retries.
	Backoff time.Duration
	// GiveUps counts interactions abandoned when the retry policy
	// refused another attempt (retry or budget exhaustion).
	GiveUps int64
	// Latency records the client-perceived response time of each
	// completed interaction (including its retries and backoff).
	Latency metrics.LatencyRecorder
}

// TotalAborts sums aborts across reasons.
func (s *TypeStats) TotalAborts() int64 {
	var n int64
	for _, v := range s.Aborts {
		n += v
	}
	return n
}

// SerializationAbortRate is the fraction of attempts of this type that
// failed with a serialization error — the quantity of the paper's
// Figure 6.
func (s *TypeStats) SerializationAbortRate() float64 {
	attempts := s.Commits + s.TotalAborts()
	if attempts == 0 {
		return 0
	}
	return float64(s.Aborts[core.AbortSerialization]) / float64(attempts)
}

// Result is the outcome of one workload run.
type Result struct {
	Config   Config
	Measured time.Duration
	Commits  int64
	Aborts   int64
	PerType  [smallbank.NumTxnTypes]TypeStats
	// TPS is committed transactions per second over the measurement
	// interval.
	TPS float64
	// MeanLatency is the mean committed-interaction response time.
	MeanLatency time.Duration
	// Retries, BackoffTime and GiveUps aggregate the retry discipline's
	// activity over the measurement interval.
	Retries     int64
	BackoffTime time.Duration
	GiveUps     int64
	// BudgetGiveUps is the subset of give-ups caused by the shared
	// retry budget refusing a token (Config.Retry is a BudgetedPolicy
	// whose bucket ran dry), counted over the whole run. These also
	// appear in GiveUps/PerType.GiveUps when they land in the
	// measurement interval.
	BudgetGiveUps int64
	// CommittedDelta is the net money movement of every committed
	// DepositChecking/TransactSaving over the whole run (ramp included):
	// the amount by which smallbank.TotalMoney should have changed when
	// the mix contains no WriteCheck (whose overdraft penalty the client
	// cannot observe). The chaos harness checks conservation against it.
	CommittedDelta int64
	// Contention is the engine's synchronization-counter delta over the
	// whole run (ramp included): lock fast-path/wait/deadlock counts,
	// blocked time, per-stripe wait skew, commit-sequencer waits.
	Contention engine.ContentionStats
	// Engine is the engine-side transaction-metrics delta over the whole
	// run (ramp included): commit count, the abort taxonomy, and the
	// lock-wait and commit-latency histograms. Commit-latency metering
	// is switched on for the run's duration by Run itself.
	Engine metrics.TxnSnapshot
	// Check is the online checker's finalized report when Config.Check
	// was set: the live serializability/SI verdict over the whole run
	// (ramp included) plus window and retirement statistics.
	Check *onlinecheck.Report
	// TraceEvents is the full trace stream the checker consumed, in
	// delivery order — populated only when Config.Check was set AND the
	// database already had a recorder installed (the subscription takes
	// over that recorder's single-consumer role, so callers that also
	// want the raw stream, e.g. cmd/smallbank -trace -check, read it
	// from here instead of draining the recorder themselves).
	TraceEvents []trace.Event
}

// AbortAttribution is the fraction of the run's engine-side aborts that
// carry a specific taxonomy reason (1 when there were none). The
// observability story treats ≥0.95 as healthy; below that, aborts are
// escaping classification and the taxonomy needs a new class.
func (r *Result) AbortAttribution() float64 {
	return r.Engine.Aborts.AttributionRate()
}

// clientStats is each goroutine's private accumulator.
type clientStats struct {
	perType [smallbank.NumTxnTypes]TypeStats
	// ledger is the client's committed money movement over the whole
	// run (see Result.CommittedDelta).
	ledger int64
}

func newClientStats() *clientStats {
	cs := &clientStats{}
	for i := range cs.perType {
		cs.perType[i].Aborts = make(map[core.AbortReason]int64)
	}
	return cs
}

// Run executes the workload against db (already loaded via
// smallbank.Load with cfg.Customers customers).
func Run(db *engine.DB, cfg Config) (*Result, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}

	contBase := db.Contention()
	// Meter commit latency for the duration of the run (it is off by
	// default to keep the bare commit path clock-free), and snapshot the
	// engine metrics so Result.Engine is this run's delta.
	db.SetMetricsEnabled(true)
	defer db.SetMetricsEnabled(false)
	engineBase := db.TxnMetrics()
	var budget *RetryBudget
	var budgetBase int64
	if bp, ok := cfg.Retry.(BudgetedPolicy); ok && bp.Budget != nil {
		budget = bp.Budget
		budgetBase = budget.Denied()
	}

	// Attach the online checker to the trace stream before any client
	// starts, so the very first begin is observed. When the database has
	// no recorder of its own, install a private one for the run; when it
	// does (the caller also wants the raw stream), reuse it and retain
	// the delivered events for Result.TraceEvents.
	var sub *trace.Subscription
	reuseRec := false
	if cfg.Check != nil {
		rec := db.Tracer()
		reuseRec = rec != nil
		if !reuseRec {
			rec = trace.New(trace.Options{})
			db.SetTracer(rec)
		}
		sub = trace.Subscribe(rec, cfg.Check.Ingest,
			trace.SubOptions{Interval: cfg.CheckInterval, Retain: reuseRec})
	}

	// The clock starts after instrumentation setup: allocating a private
	// recorder's rings is real work (notably under the race detector),
	// and it must not eat into the ramp or the measurement interval.
	start := time.Now()
	measureStart := start.Add(cfg.Ramp)
	deadline := measureStart.Add(cfg.Measure)

	var wg sync.WaitGroup
	stats := make([]*clientStats, cfg.MPL)
	for c := 0; c < cfg.MPL; c++ {
		stats[c] = newClientStats()
		wg.Add(1)
		go func(id int, cs *clientStats) {
			defer wg.Done()
			db.Machine().EnterSession()
			defer db.Machine().LeaveSession()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(id)*7919))
			client(db, cfg, rng, cs, measureStart, deadline)
		}(c, stats[c])
	}
	wg.Wait()

	res := &Result{Config: cfg, Measured: cfg.Measure}
	if sub != nil {
		sub.Close() // final drain: every committed event reaches the checker
		// End-of-stream settle pass: with every terminal delivered and no
		// transaction in flight, the floor reaches the newest published
		// CSN and the whole window retires — Result.Check reports the
		// true memory high-water mark, not a tail of unretired commits.
		cfg.Check.Ingest(nil)
		res.Check = cfg.Check.Finalize()
		if reuseRec {
			res.TraceEvents = sub.Events()
		} else {
			db.SetTracer(nil)
		}
	}
	for i := range res.PerType {
		res.PerType[i].Aborts = make(map[core.AbortReason]int64)
	}
	var lat metrics.LatencyRecorder
	for _, cs := range stats {
		res.CommittedDelta += cs.ledger
		for i := range cs.perType {
			res.PerType[i].Commits += cs.perType[i].Commits
			for r, n := range cs.perType[i].Aborts {
				res.PerType[i].Aborts[r] += n
			}
			res.PerType[i].Retries += cs.perType[i].Retries
			res.PerType[i].Backoff += cs.perType[i].Backoff
			res.PerType[i].GiveUps += cs.perType[i].GiveUps
			res.PerType[i].Latency.Merge(&cs.perType[i].Latency)
			lat.Merge(&cs.perType[i].Latency)
		}
	}
	for i := range res.PerType {
		res.Retries += res.PerType[i].Retries
		res.BackoffTime += res.PerType[i].Backoff
		res.GiveUps += res.PerType[i].GiveUps
	}
	for i := range res.PerType {
		res.Commits += res.PerType[i].Commits
		res.Aborts += res.PerType[i].TotalAborts()
	}
	res.TPS = float64(res.Commits) / cfg.Measure.Seconds()
	res.MeanLatency = lat.Mean()
	res.Contention = db.Contention().Delta(contBase)
	res.Engine = db.TxnMetrics().Delta(engineBase)
	if budget != nil {
		res.BudgetGiveUps = budget.Denied() - budgetBase
	}
	return res, nil
}

// client is one closed-system thread: run a transaction, wait for the
// reply, immediately start the next (§IV: "no think time"), or sleep
// first when the retry policy prescribes backoff.
func client(db *engine.DB, cfg Config, rng *rand.Rand, cs *clientStats, measureStart, deadline time.Time) {
	for {
		now := time.Now()
		if now.After(deadline) {
			return
		}
		measuring := now.After(measureStart)

		typ := cfg.Mix.pick(rng)
		params := pickParams(cfg, rng, typ)

		begin := time.Now()
		committed := false
		var spentBackoff time.Duration
		for failures := 0; ; {
			err := runAttempt(db, cfg.Strategy, typ, params)
			if err == nil {
				committed = true
				cs.ledger += ledgerDelta(typ, params)
				if measuring {
					cs.perType[typ].Commits++
				}
				break
			}
			if measuring {
				cs.perType[typ].Aborts[core.ClassifyAbort(err)]++
			}
			if errors.Is(err, core.ErrShuttingDown) {
				return // database is draining; the client is done
			}
			if !core.IsRetriable(err) {
				break // application rollback or hard error: new params
			}
			failures++
			d, retry := cfg.Retry.Backoff(failures, spentBackoff, rng)
			if !retry {
				if measuring {
					cs.perType[typ].GiveUps++
				}
				break
			}
			if d > 0 {
				time.Sleep(d)
				spentBackoff += d
				if measuring {
					cs.perType[typ].Backoff += d
				}
			}
			if measuring {
				cs.perType[typ].Retries++
			}
			if time.Now().After(deadline) {
				return
			}
		}
		if committed && measuring {
			cs.perType[typ].Latency.Add(time.Since(begin))
		}
	}
}

// runAttempt executes one smallbank attempt, converting an injected
// panic (faultinject.ActPanic) into an ordinary non-retriable error so
// chaos runs keep going; any other panic propagates.
func runAttempt(db *engine.DB, s *smallbank.Strategy, typ smallbank.TxnType, p smallbank.Params) (err error) {
	defer func() {
		if r := recover(); r != nil {
			f, ok := faultinject.AsPanic(r)
			if !ok {
				panic(r)
			}
			err = f
		}
	}()
	return smallbank.Run(db, s, typ, p)
}

// ledgerDelta is the exact change a committed transaction makes to
// smallbank.TotalMoney: deposits add V, TransactSaving moves V (possibly
// negative) in or out, Balance/Amalgamate conserve. WriteCheck is the
// one program whose delta the client cannot know (the overdraft penalty
// depends on state it raced for), so conservation checks require a mix
// without it.
func ledgerDelta(typ smallbank.TxnType, p smallbank.Params) int64 {
	switch typ {
	case smallbank.DepositChecking, smallbank.TransactSaving:
		return p.V
	default:
		return 0
	}
}

// pickParams draws customers (90% hotspot by default) and an amount.
func pickParams(cfg Config, rng *rand.Rand, typ smallbank.TxnType) smallbank.Params {
	c1 := pickCustomer(cfg, rng)
	p := smallbank.Params{N1: smallbank.CustomerName(c1)}
	switch typ {
	case smallbank.Amalgamate:
		c2 := pickCustomer(cfg, rng)
		for c2 == c1 {
			c2 = pickCustomer(cfg, rng)
		}
		p.N2 = smallbank.CustomerName(c2)
	case smallbank.DepositChecking:
		p.V = 1 + rng.Int63n(100_00)
	case smallbank.TransactSaving:
		// Mostly deposits with occasional withdrawals, so application
		// rollbacks (negative balance) stay rare.
		p.V = rng.Int63n(200_00) - 50_00
	case smallbank.WriteCheck:
		p.V = 1 + rng.Int63n(50_00)
	}
	return p
}

// pickCustomer draws from the hotspot with cfg.HotspotProb, else
// uniformly from the remainder of the table (§IV).
func pickCustomer(cfg Config, rng *rand.Rand) int {
	if rng.Float64() < cfg.HotspotProb {
		return rng.Intn(cfg.HotspotSize)
	}
	if cfg.Customers == cfg.HotspotSize {
		return rng.Intn(cfg.HotspotSize)
	}
	return cfg.HotspotSize + rng.Intn(cfg.Customers-cfg.HotspotSize)
}

package workload

import (
	"testing"
	"time"

	"sicost/internal/core"
	"sicost/internal/engine"
	"sicost/internal/faultinject"
	"sicost/internal/smallbank"
)

// faultedDB builds a loaded bank wired to a fault registry.
func faultedDB(t *testing.T, mode core.CCMode, customers int, seed int64) (*engine.DB, *faultinject.Registry) {
	t.Helper()
	reg := faultinject.New(seed)
	db := engine.Open(engine.Config{Mode: mode, Platform: core.PlatformPostgres, Faults: reg})
	t.Cleanup(db.Close)
	if err := smallbank.CreateSchema(db); err != nil {
		t.Fatal(err)
	}
	if _, err := smallbank.Load(db, smallbank.LoadConfig{Customers: customers, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	return db, reg
}

func chaosConfig(measureD time.Duration) Config {
	return Config{
		MPL:         8,
		Customers:   50,
		HotspotSize: 10,
		HotspotProb: 0.9,
		Measure:     measureD,
		Seed:        1,
		Retry:       DefaultBackoff(50),
	}
}

// TestChaosInvariants is the harness's core promise: under a fault plan
// hitting every layer — including injected panics that kill programs
// mid-statement — money is conserved, no lock or waiter leaks, and a
// serializable configuration stays serializable.
func TestChaosInvariants(t *testing.T) {
	for _, mode := range []core.CCMode{core.Strict2PL, core.SerializableSI} {
		t.Run(mode.String(), func(t *testing.T) {
			db, _ := faultedDB(t, mode, 50, 7)
			specs := append(DefaultFaultPlan(),
				faultinject.Spec{Point: engine.FaultCommitStamp, Rate: 0.01, Action: faultinject.ActPanic},
				faultinject.Spec{Point: engine.FaultLockAcquire, Rate: 0.01, Action: faultinject.ActDelay, Delay: 200 * time.Microsecond},
			)
			rep, err := RunChaos(db, chaosConfig(measure(500*time.Millisecond)), ChaosConfig{
				Specs:              specs,
				Check:              true,
				ExpectSerializable: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.OK() {
				t.Fatalf("invariants violated: %v", rep.Violations)
			}
			if rep.Result.Commits == 0 {
				t.Fatal("chaos run committed nothing")
			}
			if rep.Fired() == 0 {
				t.Fatal("fault plan never fired")
			}
			if !rep.ConservationChecked {
				t.Fatal("conservation not checked under the conserving mix")
			}
			if rep.Result.Aborts == 0 {
				t.Fatal("fault plan fired but produced no aborts")
			}
			if n := rep.Result.PerType[smallbank.DepositChecking].Aborts[core.AbortInjected]; n == 0 {
				// Injected faults must be classified as such somewhere in
				// the per-type stats; DC is the most frequent updater.
				var total int64
				for i := range rep.Result.PerType {
					total += rep.Result.PerType[i].Aborts[core.AbortInjected]
				}
				if total == 0 {
					t.Fatal("no aborts classified AbortInjected")
				}
			}
		})
	}
}

// TestChaosDetectsRealLeak simulates a buggy client that holds a write
// lock across the audit window: the audit must notice the leaked lock
// (negative test — the invariant checker itself works). Lock-wait
// timeouts keep the workload's writers from hanging on the leaked row,
// and snapshot reads keep the final money audit from blocking on it.
func TestChaosDetectsRealLeak(t *testing.T) {
	db := engine.Open(engine.Config{
		Mode: core.SnapshotFUW, Platform: core.PlatformPostgres,
		LockWaitTimeout: 5 * time.Millisecond,
	})
	defer db.Close()
	if err := smallbank.CreateSchema(db); err != nil {
		t.Fatal(err)
	}
	if _, err := smallbank.Load(db, smallbank.LoadConfig{Customers: 50, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	leak := db.Begin()
	if err := leak.Update(smallbank.TableChecking, core.Int(0),
		core.Record{core.Int(0), core.Int(12345)}); err != nil {
		t.Fatal(err)
	}
	rep, err := RunChaos(db, Config{
		MPL: 2, Customers: 50, HotspotSize: 10, HotspotProb: 0.9,
		Measure: 50 * time.Millisecond, Seed: 1,
		Retry: ImmediatePolicy{MaxRetries: 1},
	}, ChaosConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("audit missed a leaked lock")
	}
	leak.Abort()
}

func TestRunChaosRequiresRegistry(t *testing.T) {
	db := loadedDB(t, core.SnapshotFUW, 10)
	_, err := RunChaos(db, chaosConfig(10*time.Millisecond), ChaosConfig{
		Specs: DefaultFaultPlan(),
	})
	if err == nil {
		t.Fatal("chaos run without a registry accepted")
	}
	// No specs: plain audited run is fine on a fault-free database.
	rep, err := RunChaos(db, chaosConfig(measure(100*time.Millisecond)), ChaosConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("clean run violated invariants: %v", rep.Violations)
	}
}

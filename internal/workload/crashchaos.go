package workload

import (
	"fmt"
	"time"

	"sicost/internal/core"
	"sicost/internal/engine"
	"sicost/internal/faultinject"
	"sicost/internal/smallbank"
	"sicost/internal/storage"
	"sicost/internal/wal"
)

// CrashChaosConfig parameterizes a crash/recover chaos run: repeated
// cycles of workload → injected crash → recovery → audit → resume
// against one shared log device, the harness behind cmd/smallbank
// -crash and the durability regression tests.
type CrashChaosConfig struct {
	// Mode and Platform configure the engine (defaults: SnapshotFUW on
	// PlatformPostgres, the paper's primary platform).
	Mode     core.CCMode
	Platform core.Platform
	// Cycles is the number of crash/recover rounds (default 20).
	Cycles int
	// Customers is the loaded bank size (default 60; kept small so each
	// cycle's full-state audit is cheap).
	Customers int
	// MPL is the per-burst client count (default 6).
	MPL int
	// Burst is each cycle's measurement interval (default 40ms — long
	// enough for hundreds of commits at zero simulated cost).
	Burst time.Duration
	// Seed derives every cycle's workload seed and the fault registry's
	// RNG stream.
	Seed int64
	// CheckpointEvery takes a checkpoint after every Nth recovery, so
	// later cycles exercise checkpoint+redo recovery rather than pure
	// replay (default 2; negative disables checkpoints entirely).
	CheckpointEvery int
	// Async opts every burst into asynchronous commit
	// (synchronous_commit=off): commits publish before they are durable,
	// so a crash may lose the acked-but-unsynced tail. The audit weakens
	// accordingly — recovery must land exactly on the published state
	// restricted to the recovered high-water mark, and no commit whose
	// durability future resolved may be lost — and the burst switches to
	// a zero-delta mix so money conservation holds on every committed
	// prefix.
	Async bool
	// SegmentSize > 0 replaces the flat log device with a segmented log
	// rotated at SegmentSize bytes, and adds the segment-rotation crash
	// point to the rotation.
	SegmentSize int64
	// Fuzzy runs the fuzzy incremental checkpoint machinery during the
	// bursts: the engine's log-growth scheduler checkpoints with a small
	// threshold (so links land inside bursts, concurrent with commits),
	// segmented runs retire covered segments online with archiving, and
	// the crash rotation gains the mid-delta (wal/ckpt-delta) and
	// mid-retire (wal/retire) points. The per-recovery checkpoint
	// cadence uses CheckpointIncremental instead of the stop-the-world
	// Checkpoint.
	Fuzzy bool
	// TxDeadline > 0 stamps every transaction with a default deadline
	// and adds FsyncLatency of simulated device-sync time, so deadlines
	// expire inside flush-group waits: WAL.Withdraw races the flush
	// window's claim while crash faults fire around both. The audit is
	// unchanged — a withdrawn commit must be indistinguishable from an
	// abort (never half-published), or the state diff catches it.
	TxDeadline   time.Duration
	FsyncLatency time.Duration
}

func (c *CrashChaosConfig) defaults() {
	if c.Cycles == 0 {
		c.Cycles = 20
	}
	if c.Customers == 0 {
		c.Customers = 60
	}
	if c.MPL == 0 {
		c.MPL = 6
	}
	if c.Burst == 0 {
		c.Burst = 40 * time.Millisecond
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 2
	}
}

// CrashCycle records one crash/recover round.
type CrashCycle struct {
	Cycle int
	// Point is the fault point armed as this cycle's crash site; Fired
	// says whether the burst actually hit it (a burst can end before the
	// trigger count is reached — the cycle still crash-recovers, it just
	// exercises a clean-shutdown log tail).
	Point string
	Fired uint64
	// Commits and Aborts summarize the burst before the crash;
	// DeadlineAborts is the subset that expired their transaction
	// deadline (only populated when TxDeadline is set).
	Commits, Aborts int64
	DeadlineAborts  int64
	// TornBytes is the length of the log tail recovery discarded;
	// non-zero only when the crash tore a device append mid-frame.
	TornBytes int
	// CheckpointRows and ReplayedCommits split recovery's work between
	// the checkpoint snapshot and redo replay.
	CheckpointRows  int
	ReplayedCommits int
	// HighCSN is the recovered commit-sequence high-water mark.
	HighCSN uint64
	// DurableSeq is the crashed instance's durability watermark after the
	// burst quiesced: the highest CSN whose commit was acknowledged
	// durable. Recovery must never land below it.
	DurableSeq uint64
	// Segments is the number of log segments recovery scanned (1 for a
	// flat device).
	Segments int
	// ChainLinks is the number of fuzzy-checkpoint delta links recovery
	// folded (0 when it restored a legacy full-image checkpoint).
	ChainLinks int
	// Checkpointed reports whether a checkpoint was taken after this
	// cycle's recovery.
	Checkpointed bool
}

// CrashChaosReport is the outcome of a crash-chaos run.
type CrashChaosReport struct {
	Cycles []CrashCycle
	// InitialTotal is the bank's money after load; FinalTotal after the
	// last resume burst. Conservation demands
	// FinalTotal == InitialTotal + Ledger.
	InitialTotal, FinalTotal int64
	// Ledger is the acked committed money movement summed over every
	// burst (see Result.CommittedDelta).
	Ledger int64
	// ResumeCommits counts the final fault-free burst's commits — proof
	// the last recovered instance still makes progress.
	ResumeCommits int64
	// Violations lists every broken durability invariant; empty means
	// the engine survived every crash cleanly.
	Violations []string
}

// OK reports whether every audited invariant held.
func (r *CrashChaosReport) OK() bool { return len(r.Violations) == 0 }

// CrashesFired sums crash-fault triggers across cycles.
func (r *CrashChaosReport) CrashesFired() uint64 {
	var n uint64
	for _, c := range r.Cycles {
		n += c.Fired
	}
	return n
}

// crashPoints is the rotation of crash sites: a torn mid-flush device
// write, power dying inside the coalesced-sync window, a death inside
// the WAL commit window, a death at the head of commit stamping, a
// death mid-statement while holding row locks, and a death at
// transaction begin. Segmented runs add a crash inside segment
// rotation, between sealing the full segment and opening its
// successor. Together they cover the log tail in every interesting
// state.
func (c *CrashChaosConfig) crashPoints() []string {
	pts := []string{
		wal.FaultFlush,
		wal.FaultSync,
		wal.FaultCommit,
		engine.FaultCommitStamp,
		storage.FaultRowWrite,
		engine.FaultBegin,
	}
	if c.SegmentSize > 0 {
		pts = append(pts, wal.FaultRotate)
	}
	if c.Fuzzy {
		pts = append(pts, wal.FaultCkptDelta)
		if c.SegmentSize > 0 {
			pts = append(pts, wal.FaultRetire)
		}
	}
	return pts
}

// crashSpec picks cycle's crash site and moment: one deterministic
// panic after a varying number of hits, so crashes land at different
// depths of the burst.
func crashSpec(points []string, cycle int) faultinject.Spec {
	p := points[cycle%len(points)]
	after := uint64(2 + 5*(cycle%7))
	// The checkpoint-machinery points fire a handful of times per burst
	// (once per delta batch streamed / segment retired), not hundreds:
	// trigger early so the armed cycle actually crashes inside them.
	if p == wal.FaultCkptDelta || p == wal.FaultRetire {
		after = uint64(cycle % 3)
	}
	return faultinject.Spec{
		Point:  p,
		After:  after,
		Count:  1,
		Action: faultinject.ActPanic,
	}
}

// zeroDeltaMix is the async harness's program mix: Balance and
// Amalgamate only. Both leave total money unchanged, so conservation
// holds on EVERY committed prefix — which is what an async crash
// recovers. A mix with DepositChecking or TransactSaving would need
// the exact set of surviving commits to reconstruct the ledger; a
// zero-delta mix needs nothing.
func zeroDeltaMix() Mix {
	var m Mix
	m[smallbank.Balance] = 0.3
	m[smallbank.Amalgamate] = 0.7
	return m
}

// smallbankTables is the audit's scan set.
var smallbankTables = []string{
	smallbank.TableAccount,
	smallbank.TableSaving,
	smallbank.TableChecking,
	smallbank.TableConflict,
}

// dbState is a full copy of the latest committed record of every row,
// keyed by table then primary key.
type dbState map[string]map[core.Value]core.Record

// captureState snapshots db's committed state for exact comparison.
func captureState(db *engine.DB) (dbState, error) {
	st := make(dbState, len(smallbankTables))
	for _, tbl := range smallbankTables {
		m := make(map[core.Value]core.Record)
		if err := db.ScanLatest(tbl, func(k core.Value, rec core.Record) bool {
			m[k] = rec.Clone()
			return true
		}); err != nil {
			return nil, err
		}
		st[tbl] = m
	}
	return st, nil
}

// captureStateAsOf snapshots the newest committed record of every row
// with CSN ≤ cut — the state an instance published up to that commit.
// Safe on a closed instance: it only walks the in-memory version
// chains.
func captureStateAsOf(db *engine.DB, cut uint64) (dbState, error) {
	st := make(dbState, len(smallbankTables))
	for _, tbl := range smallbankTables {
		m := make(map[core.Value]core.Record)
		if err := db.ScanAsOf(tbl, cut, func(k core.Value, rec core.Record) bool {
			m[k] = rec.Clone()
			return true
		}); err != nil {
			return nil, err
		}
		st[tbl] = m
	}
	return st, nil
}

// diffState returns "" when the two states are identical, else a
// description of the first discrepancy found.
func diffState(want, got dbState) string {
	for tbl, wm := range want {
		gm := got[tbl]
		if len(wm) != len(gm) {
			return fmt.Sprintf("%s: %d rows, want %d", tbl, len(gm), len(wm))
		}
		for k, wr := range wm {
			gr, ok := gm[k]
			if !ok {
				return fmt.Sprintf("%s/%v: row missing", tbl, k)
			}
			if !wr.Equal(gr) {
				return fmt.Sprintf("%s/%v: record %v, want %v", tbl, k, gr, wr)
			}
		}
	}
	return ""
}

// RunCrashChaos drives the durability contract end to end: load a bank
// on a durable in-memory log device, then repeatedly run a short
// SmallBank burst with one crash fault armed, kill the instance,
// recover a fresh instance from the device, and audit it —
//
//   - every acked commit survives and no partial transaction is
//     visible: the recovered state equals, row for row, the state the
//     crashed instance acknowledged (valid because commits are durable
//     before they are visible, and the burst quiesces before capture);
//   - money is conserved: total money equals the initial load plus the
//     acked ledger of every burst so far;
//   - CSNs stay monotone: the recovered high-water mark never exceeds
//     the crashed instance's published sequence, and the revived
//     sequencer resumes exactly at the recovered mark;
//   - recovery is idempotent: recovering an untouched copy of the
//     pre-repair device image yields the identical state.
//
// Checkpoints are taken on a configurable cadence so recovery
// alternates between pure redo and checkpoint+redo. After the last
// cycle a fault-free burst must still commit, proving the survivor
// resumes normal service. Harness failures (a burst that cannot run)
// return an error; broken invariants are reported as Violations.
func RunCrashChaos(cfg CrashChaosConfig) (*CrashChaosReport, error) {
	cfg.defaults()

	var dev wal.LogDevice
	if cfg.SegmentSize > 0 {
		sl, err := wal.NewMemSegmentLog(cfg.SegmentSize)
		if err != nil {
			return nil, err
		}
		dev = sl
	} else {
		dev = wal.NewMemDevice()
	}
	reg := faultinject.New(cfg.Seed)
	ecfg := engine.Config{
		Mode:              cfg.Mode,
		Platform:          cfg.Platform,
		WAL:               wal.Config{Device: dev, FsyncLatency: cfg.FsyncLatency},
		Faults:            reg,
		AsyncCommit:       cfg.Async,
		DefaultTxDeadline: cfg.TxDeadline,
	}
	if cfg.Fuzzy {
		// Small threshold so the scheduler checkpoints inside every
		// burst, and a short chain so full links re-root (and retirement
		// runs) several times over the run.
		ecfg.CheckpointLogBytes = 4096
		ecfg.CheckpointChainMax = 3
		if cfg.SegmentSize > 0 {
			ecfg.RetireSegments = true
			ecfg.ArchiveDir = "archive"
		}
	}

	db := engine.Open(ecfg)
	if err := smallbank.CreateSchema(db); err != nil {
		db.Close()
		return nil, err
	}
	initial, err := smallbank.Load(db, smallbank.LoadConfig{Customers: cfg.Customers, Seed: cfg.Seed})
	if err != nil {
		db.Close()
		return nil, err
	}
	// Compact the load into a checkpoint so the first cycles replay
	// burst commits, not the loader's.
	if _, err := db.Checkpoint(); err != nil {
		db.Close()
		return nil, err
	}

	rep := &CrashChaosReport{InitialTotal: initial}
	violatef := func(format string, args ...any) {
		rep.Violations = append(rep.Violations, fmt.Sprintf(format, args...))
	}

	mix := ConservingMix()
	if cfg.Async {
		mix = zeroDeltaMix()
	}
	wcfg := Config{
		MPL:         cfg.MPL,
		Customers:   cfg.Customers,
		HotspotSize: max(2, cfg.Customers/5),
		HotspotProb: 0.9,
		Mix:         mix,
		Measure:     cfg.Burst,
		MaxRetries:  20,
	}

	points := cfg.crashPoints()
	var ledger int64
	for i := 0; i < cfg.Cycles; i++ {
		cyc := CrashCycle{Cycle: i}
		spec := crashSpec(points, i)
		cyc.Point = spec.Point
		if err := reg.Arm(spec); err != nil {
			db.Close()
			return nil, err
		}
		wcfg.Seed = cfg.Seed + int64(i+1)*7919
		res, runErr := Run(db, wcfg)
		cyc.Fired = reg.Fired(spec.Point)
		reg.Disarm(spec.Point)
		if runErr != nil {
			db.Close()
			return nil, fmt.Errorf("workload: crash cycle %d: %w", i, runErr)
		}
		ledger += res.CommittedDelta
		cyc.Commits, cyc.Aborts = res.Commits, res.Aborts
		for j := range res.PerType {
			cyc.DeadlineAborts += res.PerType[j].Aborts[core.AbortDeadline]
		}

		// Let in-flight flushes resolve so the durability watermark is
		// final (a no-op when the crash already bricked the device), then
		// capture the crashed instance's published state. In sync mode
		// published == acked-durable; in async mode the watermark may
		// trail the published sequence — exactly the tail a crash is
		// allowed to lose.
		db.WAL().Drain()
		cyc.DurableSeq = db.DurableSeq()
		acked, err := captureState(db)
		if err != nil {
			db.Close()
			return nil, fmt.Errorf("workload: crash cycle %d: pre-crash capture: %w", i, err)
		}
		preSeq := db.CommitSeq()
		crashed := db
		db.Close()

		// Pre-repair device image for the idempotence audit, taken before
		// Recover may truncate a torn tail in place.
		img, err := dev.Contents()
		if err != nil {
			return nil, fmt.Errorf("workload: crash cycle %d: device read: %w", i, err)
		}

		db2, rrep, err := engine.Recover(dev, ecfg)
		if err != nil {
			violatef("cycle %d (%s): recovery failed: %v", i, cyc.Point, err)
			rep.Cycles = append(rep.Cycles, cyc)
			return rep, nil
		}
		cyc.TornBytes = rrep.Log.TornBytes
		cyc.CheckpointRows = rrep.CheckpointRows
		cyc.ReplayedCommits = rrep.ReplayedCommits
		cyc.HighCSN = rrep.HighCSN
		cyc.Segments = rrep.Log.Segments
		cyc.ChainLinks = rrep.Log.ChainLinks

		recovered, err := captureState(db2)
		if err != nil {
			db2.Close()
			return nil, fmt.Errorf("workload: crash cycle %d: post-recovery capture: %w", i, err)
		}
		// The durability watermark is a floor in both modes: a commit
		// whose durability was acknowledged — the sync-commit return, or
		// the async future resolving nil — must never be lost.
		if cyc.HighCSN < cyc.DurableSeq {
			violatef("cycle %d (%s): acked-durable commits lost: recovered CSN %d below watermark %d",
				i, cyc.Point, cyc.HighCSN, cyc.DurableSeq)
		}
		if cfg.Async {
			// Async contract: recovery lands exactly on the published
			// state restricted to the recovered high-water mark — the
			// un-acked tail (CSNs above HighCSN) is the ONLY thing lost,
			// and nothing below it is.
			expected, err := captureStateAsOf(crashed, cyc.HighCSN)
			if err != nil {
				db2.Close()
				return nil, fmt.Errorf("workload: crash cycle %d: as-of capture: %w", i, err)
			}
			if d := diffState(expected, recovered); d != "" {
				violatef("cycle %d (%s): async durable-prefix contract broken: %s", i, cyc.Point, d)
			}
		} else if d := diffState(acked, recovered); d != "" {
			violatef("cycle %d (%s): durability contract broken: %s", i, cyc.Point, d)
		}
		total, err := smallbank.TotalMoney(db2)
		if err != nil {
			db2.Close()
			return nil, fmt.Errorf("workload: crash cycle %d: money audit: %w", i, err)
		}
		if total != initial+ledger {
			violatef("cycle %d (%s): conservation: total %d, want %d (initial %d + ledger %d)",
				i, cyc.Point, total, initial+ledger, initial, ledger)
		}
		if rrep.HighCSN > preSeq {
			violatef("cycle %d (%s): recovered CSN %d exceeds crashed instance's published %d",
				i, cyc.Point, rrep.HighCSN, preSeq)
		}
		if got := db2.CommitSeq(); got != rrep.HighCSN {
			violatef("cycle %d (%s): revived sequencer at %d, want recovered high-water %d",
				i, cyc.Point, got, rrep.HighCSN)
		}

		// Idempotence: recovering the untouched pre-repair image must
		// land in the identical state.
		db3, rrep3, err := engine.Recover(wal.NewMemDeviceBytes(img), ecfg)
		if err != nil {
			violatef("cycle %d (%s): re-recovery of pre-repair image failed: %v", i, cyc.Point, err)
		} else {
			again, err := captureState(db3)
			if err != nil {
				db3.Close()
				db2.Close()
				return nil, fmt.Errorf("workload: crash cycle %d: re-recovery capture: %w", i, err)
			}
			if d := diffState(recovered, again); d != "" {
				violatef("cycle %d (%s): recovery not idempotent: %s", i, cyc.Point, d)
			}
			if rrep3.HighCSN != rrep.HighCSN {
				violatef("cycle %d (%s): re-recovery CSN %d, want %d", i, cyc.Point, rrep3.HighCSN, rrep.HighCSN)
			}
			db3.Close()
		}

		db = db2
		if cfg.CheckpointEvery > 0 && (i+1)%cfg.CheckpointEvery == 0 {
			ckpt := db.Checkpoint
			if cfg.Fuzzy {
				ckpt = db.CheckpointIncremental
			}
			if _, err := ckpt(); err != nil {
				violatef("cycle %d (%s): checkpoint after recovery failed: %v", i, cyc.Point, err)
			} else {
				cyc.Checkpointed = true
			}
		}
		rep.Cycles = append(rep.Cycles, cyc)
	}

	// The survivor must resume normal, fault-free service.
	wcfg.Seed = cfg.Seed - 1
	res, err := Run(db, wcfg)
	if err != nil {
		db.Close()
		return nil, fmt.Errorf("workload: resume burst: %w", err)
	}
	ledger += res.CommittedDelta
	rep.ResumeCommits = res.Commits
	if res.Commits == 0 {
		violatef("resume: recovered database committed nothing in a fault-free burst")
	}
	rep.FinalTotal, err = smallbank.TotalMoney(db)
	if err != nil {
		db.Close()
		return nil, fmt.Errorf("workload: final audit: %w", err)
	}
	if rep.FinalTotal != initial+ledger {
		violatef("final conservation: total %d, want %d (initial %d + ledger %d)",
			rep.FinalTotal, initial+ledger, initial, ledger)
	}
	if held, queued := db.LockAudit(); held != 0 || queued != 0 {
		violatef("lock leak after resume: %d held, %d queued", held, queued)
	}
	rep.Ledger = ledger
	db.Close()
	return rep, nil
}

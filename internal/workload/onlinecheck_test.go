package workload

import (
	"testing"
	"time"

	"sicost/internal/core"
	"sicost/internal/onlinecheck"
	"sicost/internal/smallbank"
	"sicost/internal/trace"
)

// TestRunWithOnlineChecker attaches the online windowed checker to a
// workload run on an engine whose mode guarantees serializability (SSI):
// the live verdict must be clean, retirement must be active (memory is
// O(window), not O(history)), and the private recorder Run installed
// must be removed again afterwards.
func TestRunWithOnlineChecker(t *testing.T) {
	db := loadedDB(t, core.SerializableSI, 100)
	chk := onlinecheck.New(onlinecheck.Config{SIRules: true})
	res, err := Run(db, Config{
		Strategy: smallbank.StrategySI,
		MPL:      8, Customers: 100, HotspotSize: 4, HotspotProb: 1.0,
		Ramp: 10 * time.Millisecond, Measure: measure(200 * time.Millisecond), Seed: 3,
		Check: chk,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Check == nil {
		t.Fatal("Config.Check set but Result.Check is nil")
	}
	if res.Check.Txns == 0 {
		t.Fatal("online checker saw no transactions")
	}
	if !res.Check.Serializable || res.Check.SIViolations != 0 {
		t.Fatalf("false verdict on an SSI execution:\n%s", res.Check.Describe())
	}
	st := res.Check.Stats
	if st.Retired != st.Commits {
		t.Fatalf("retired %d of %d commits: %+v", st.Retired, st.Commits, st)
	}
	if st.MaxWindow >= int(st.Commits) {
		t.Fatalf("window peak %d did not stay below commit count %d", st.MaxWindow, st.Commits)
	}
	// Run installed a private recorder: no retained raw stream, and the
	// recorder is uninstalled again when the run ends.
	if res.TraceEvents != nil {
		t.Fatalf("unexpected retained trace (%d events) with a private recorder", len(res.TraceEvents))
	}
	if db.Tracer() != nil {
		t.Fatal("private recorder left installed after Run")
	}
}

// TestRunOnlineCheckerRetainsTrace: when the database already has a
// recorder (the -trace path), the checker subscription takes over its
// single-consumer role and the delivered stream comes back through
// Result.TraceEvents, still passing full lifecycle validation.
func TestRunOnlineCheckerRetainsTrace(t *testing.T) {
	db := loadedDB(t, core.Strict2PL, 100)
	rec := trace.New(trace.Options{})
	db.SetTracer(rec)
	chk := onlinecheck.New(onlinecheck.Config{SIRules: false})
	res, err := Run(db, Config{
		Strategy: smallbank.StrategySI,
		MPL:      4, Customers: 100, HotspotSize: 10, HotspotProb: 0.9,
		Measure: measure(150 * time.Millisecond), Seed: 9,
		Check: chk,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Check.Serializable || res.Check.SIViolations != 0 {
		t.Fatalf("false verdict on a 2PL execution:\n%s", res.Check.Describe())
	}
	if len(res.TraceEvents) == 0 {
		t.Fatal("no retained trace despite a pre-installed recorder")
	}
	if db.Tracer() != rec {
		t.Fatal("pre-installed recorder removed by Run")
	}
	opts := trace.ValidateOptions{AllowGaps: rec.Dropped() > 0}
	if err := trace.ValidateWith(res.TraceEvents, opts); err != nil {
		t.Fatalf("retained stream fails validation: %v", err)
	}
}

// TestStressOnlineCheck is the race-detector stress: MPL 16 on a
// pathological hotspot with the online checker subscribed to the live
// stream, under both serializability-guaranteeing modes. The checker
// must keep its window bounded while thousands of transactions stream
// through, produce zero false verdicts, and lose no events.
func TestStressOnlineCheck(t *testing.T) {
	for _, tc := range []struct {
		name    string
		mode    core.CCMode
		siRules bool
	}{
		{"ssi", core.SerializableSI, true},
		{"2pl", core.Strict2PL, false},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			db := loadedDB(t, tc.mode, 200)
			rec := trace.New(trace.Options{})
			db.SetTracer(rec)
			chk := onlinecheck.New(onlinecheck.Config{SIRules: tc.siRules})
			res, err := Run(db, Config{
				Strategy: smallbank.StrategySI,
				MPL:      16, Customers: 200, HotspotSize: 4, HotspotProb: 1.0,
				Ramp: 20 * time.Millisecond, Measure: measure(400 * time.Millisecond), Seed: 17,
				Check: chk,
			})
			if err != nil {
				t.Fatal(err)
			}
			if d := rec.Dropped(); d != 0 {
				t.Fatalf("recorder dropped %d events under the checker subscription", d)
			}
			if !res.Check.Serializable || res.Check.SIViolations != 0 {
				t.Fatalf("false verdict under %s:\n%s", tc.mode, res.Check.Describe())
			}
			st := res.Check.Stats
			if st.Commits < 100 {
				t.Fatalf("stress produced only %d commits", st.Commits)
			}
			// Memory is O(window), not O(history): the window spans the
			// oldest in-flight snapshot (a transaction parked in a lock
			// wait legitimately pins it — anything committed since its
			// snapshot can still gain an edge from it), so the peak is
			// schedule-dependent; but retirement must have run DURING the
			// run, and the end-of-stream settle must reclaim everything.
			if st.MaxWindow >= int(st.Commits) {
				t.Fatalf("window peak %d never dipped below commit count %d: no live retirement", st.MaxWindow, st.Commits)
			}
			if st.Retired != st.Commits {
				t.Fatalf("retired %d of %d commits; settle pass left a tail", st.Retired, st.Commits)
			}
			if st.Window != 0 {
				t.Fatalf("%d transactions left in the window after settle", st.Window)
			}
			if st.Pending != 0 {
				t.Fatalf("%d transactions still pending after final drain", st.Pending)
			}
		})
	}
}

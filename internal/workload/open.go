package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"sicost/internal/core"
	"sicost/internal/engine"
	"sicost/internal/metrics"
	"sicost/internal/onlinecheck"
	"sicost/internal/smallbank"
	"sicost/internal/trace"
)

// OpenConfig parameterizes an open-system run: instead of MPL clients
// in a closed loop, transactions arrive as a Poisson process at an
// offered rate, each served by its own virtual client. The number of
// in-flight clients is unbounded (up to MaxInFlight, a memory
// backstop), which is exactly what makes overload *visible*: past
// saturation the closed driver just slows its clients down, while the
// open driver keeps offering load and the backlog — queueing delay,
// abort storms, goodput decline — lands on the engine. Pair with
// engine.Config.Admission to measure the peak-then-decline curve
// flattening into a plateau.
type OpenConfig struct {
	Strategy *smallbank.Strategy
	// Rate is the offered load in arrivals per second (Poisson).
	Rate float64
	// Customers, HotspotSize, HotspotProb and Mix are as in Config.
	Customers   int
	HotspotSize int
	HotspotProb float64
	Mix         Mix
	// Ramp is discarded warm-up time; Measure is the measured interval
	// (an interaction is attributed to the window its arrival fell in).
	Ramp, Measure time.Duration
	Seed          int64
	// MaxRetries and Retry are the per-interaction retry discipline,
	// as in Config. Under overload, pair with a BudgetedPolicy so
	// retries cannot amplify the offered rate past the budget.
	MaxRetries int
	Retry      RetryPolicy
	// MaxInFlight caps concurrent virtual clients; arrivals past the
	// cap are dropped client-side and counted in OpenResult.Dropped
	// (default 16384). This is a driver memory backstop, not admission
	// control — the engine's gate is Config.Admission.
	MaxInFlight int
	// Check and CheckInterval attach the online isolation checker to
	// the run's trace stream, as in Config.
	Check         *onlinecheck.Checker
	CheckInterval time.Duration
}

func (c *OpenConfig) defaults() error {
	if c.Strategy == nil {
		c.Strategy = smallbank.StrategySI
	}
	if c.Rate <= 0 {
		return fmt.Errorf("workload: offered rate must be positive")
	}
	if c.Customers <= 1 {
		return fmt.Errorf("workload: need at least 2 customers")
	}
	if c.HotspotSize <= 1 || c.HotspotSize > c.Customers {
		return fmt.Errorf("workload: hotspot size %d out of range", c.HotspotSize)
	}
	if c.HotspotProb < 0 || c.HotspotProb > 1 {
		return fmt.Errorf("workload: hotspot probability %v out of range", c.HotspotProb)
	}
	var zero Mix
	if c.Mix == zero {
		c.Mix = UniformMix()
	}
	if err := c.Mix.Validate(); err != nil {
		return err
	}
	if c.Measure <= 0 {
		return fmt.Errorf("workload: measurement interval must be positive")
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 50
	}
	if c.Retry == nil {
		c.Retry = ImmediatePolicy{MaxRetries: c.MaxRetries}
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 16384
	}
	return nil
}

// OpenResult is the outcome of one open-system run. All interaction
// counters cover the measurement window (attribution by arrival time);
// CommittedDelta, Engine and Check cover the whole run.
type OpenResult struct {
	Config   OpenConfig
	Measured time.Duration
	// Arrivals counts measured arrivals; Dropped the subset discarded
	// client-side at the MaxInFlight backstop.
	Arrivals int64
	Dropped  int64
	// Commits and Aborts count attempts; AbortsByReason attributes the
	// aborts. Shed and DeadlineExpired are the subsets of interactions
	// whose *final* verdict was ErrOverload / ErrTxDeadline.
	Commits         int64
	Aborts          int64
	AbortsByReason  map[core.AbortReason]int64
	Shed            int64
	DeadlineExpired int64
	// Retries, GiveUps and BudgetGiveUps are as in Result.
	Retries       int64
	GiveUps       int64
	BudgetGiveUps int64
	// Goodput is committed interactions per second over the window.
	Goodput float64
	// Latency is the response-time distribution of committed
	// interactions (arrival to commit, retries and backoff included).
	Latency metrics.HistSnapshot
	// InFlightPeak is the high-water mark of concurrent virtual
	// clients — the effective MPL the offered rate induced.
	InFlightPeak int64
	// CommittedDelta is as in Result (whole run, for conservation).
	CommittedDelta int64
	// Engine is the engine-side metrics delta over the whole run.
	Engine metrics.TxnSnapshot
	// Check is the online checker's report when Config.Check was set.
	Check *onlinecheck.Report
	// TraceEvents is the full trace stream the checker consumed, in
	// delivery order, when the caller's own recorder was reused (as in
	// Result.TraceEvents).
	TraceEvents []trace.Event
}

// openCounters is the run's shared accounting; everything atomic
// because virtual clients finish at arbitrary times.
type openCounters struct {
	arrivals, dropped      atomic.Int64
	commits                atomic.Int64
	abortsByReason         [metrics.NumAbortReasons]atomic.Int64
	shed, deadlineExpired  atomic.Int64
	retries, giveUps       atomic.Int64
	ledger                 atomic.Int64
	inFlight, inFlightPeak atomic.Int64
	latency                metrics.Histogram
}

// RunOpen executes an open-system run against db (already loaded via
// smallbank.Load with cfg.Customers customers). It returns after the
// offered-load window closes and every in-flight virtual client has
// finished or given up.
func RunOpen(db *engine.DB, cfg OpenConfig) (*OpenResult, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}

	db.SetMetricsEnabled(true)
	defer db.SetMetricsEnabled(false)
	engineBase := db.TxnMetrics()
	var budget *RetryBudget
	var budgetBase int64
	if bp, ok := cfg.Retry.(BudgetedPolicy); ok && bp.Budget != nil {
		budget = bp.Budget
		budgetBase = budget.Denied()
	}

	var sub *trace.Subscription
	reuseRec := false
	if cfg.Check != nil {
		rec := db.Tracer()
		reuseRec = rec != nil
		if !reuseRec {
			rec = trace.New(trace.Options{})
			db.SetTracer(rec)
		}
		sub = trace.Subscribe(rec, cfg.Check.Ingest,
			trace.SubOptions{Interval: cfg.CheckInterval, Retain: reuseRec})
	}

	ctr := &openCounters{}
	start := time.Now()
	measureStart := start.Add(cfg.Ramp)
	end := measureStart.Add(cfg.Measure)

	// The arrival process: exponential inter-arrival gaps accumulated
	// from the start, so timer jitter does not drift the offered rate.
	arrRng := rand.New(rand.NewSource(cfg.Seed))
	var wg sync.WaitGroup
	next := start
	for id := int64(0); ; id++ {
		gap := arrRng.ExpFloat64() / cfg.Rate
		next = next.Add(time.Duration(gap * float64(time.Second)))
		if next.After(end) {
			break
		}
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		measuring := next.After(measureStart)
		if measuring {
			ctr.arrivals.Add(1)
		}
		// Client-side backstop: past MaxInFlight the arrival is dropped
		// on the floor (it never touches the engine).
		n := ctr.inFlight.Add(1)
		if n > int64(cfg.MaxInFlight) {
			ctr.inFlight.Add(-1)
			if measuring {
				ctr.dropped.Add(1)
			}
			continue
		}
		for {
			peak := ctr.inFlightPeak.Load()
			if n <= peak || ctr.inFlightPeak.CompareAndSwap(peak, n) {
				break
			}
		}
		wg.Add(1)
		go func(id int64, arrived time.Time, measuring bool) {
			defer wg.Done()
			defer ctr.inFlight.Add(-1)
			rng := rand.New(rand.NewSource(cfg.Seed + 1 + id*7919))
			openInteraction(db, cfg, rng, ctr, arrived, measuring, end)
		}(id, next, measuring)
	}
	wg.Wait()

	res := &OpenResult{Config: cfg, Measured: cfg.Measure}
	if sub != nil {
		sub.Close()
		cfg.Check.Ingest(nil)
		res.Check = cfg.Check.Finalize()
		if reuseRec {
			res.TraceEvents = sub.Events()
		} else {
			db.SetTracer(nil)
		}
	}
	res.Arrivals = ctr.arrivals.Load()
	res.Dropped = ctr.dropped.Load()
	res.Commits = ctr.commits.Load()
	res.AbortsByReason = make(map[core.AbortReason]int64)
	for i := range ctr.abortsByReason {
		if n := ctr.abortsByReason[i].Load(); n > 0 {
			res.AbortsByReason[core.AbortReason(i)] = n
			res.Aborts += n
		}
	}
	res.Shed = ctr.shed.Load()
	res.DeadlineExpired = ctr.deadlineExpired.Load()
	res.Retries = ctr.retries.Load()
	res.GiveUps = ctr.giveUps.Load()
	res.Goodput = float64(res.Commits) / cfg.Measure.Seconds()
	res.Latency = ctr.latency.Snapshot()
	res.InFlightPeak = ctr.inFlightPeak.Load()
	res.CommittedDelta = ctr.ledger.Load()
	res.Engine = db.TxnMetrics().Delta(engineBase)
	if budget != nil {
		res.BudgetGiveUps = budget.Denied() - budgetBase
	}
	return res, nil
}

// openInteraction is one virtual client: a session for the duration of
// one logical interaction, retried under the policy. Counters are only
// touched when the arrival fell in the measurement window; hardStop
// bounds retries so the run terminates even when every attempt fails.
func openInteraction(db *engine.DB, cfg OpenConfig, rng *rand.Rand, ctr *openCounters, arrived time.Time, measuring bool, hardStop time.Time) {
	db.Machine().EnterSession()
	defer db.Machine().LeaveSession()

	c := Config{Customers: cfg.Customers, HotspotSize: cfg.HotspotSize, HotspotProb: cfg.HotspotProb}
	typ := cfg.Mix.pick(rng)
	params := pickParams(c, rng, typ)

	var spentBackoff time.Duration
	var lastErr error
	for failures := 0; ; {
		err := runAttempt(db, cfg.Strategy, typ, params)
		if err == nil {
			ctr.ledger.Add(ledgerDelta(typ, params))
			if measuring {
				ctr.commits.Add(1)
				ctr.latency.Record(time.Since(arrived))
			}
			return
		}
		lastErr = err
		if measuring {
			r := core.ClassifyAbort(err)
			i := int(r)
			if i < 0 || i >= len(ctr.abortsByReason) {
				i = int(core.AbortOther)
			}
			ctr.abortsByReason[i].Add(1)
		}
		if errors.Is(err, core.ErrShuttingDown) {
			return
		}
		if !core.IsRetriable(err) {
			break
		}
		failures++
		d, retry := cfg.Retry.Backoff(failures, spentBackoff, rng)
		if !retry || time.Now().After(hardStop) {
			if measuring {
				ctr.giveUps.Add(1)
			}
			break
		}
		if d > 0 {
			time.Sleep(d)
			spentBackoff += d
		}
		if measuring {
			ctr.retries.Add(1)
		}
	}
	if measuring && lastErr != nil {
		switch {
		case errors.Is(lastErr, core.ErrOverload):
			ctr.shed.Add(1)
		case errors.Is(lastErr, core.ErrTxDeadline):
			ctr.deadlineExpired.Add(1)
		}
	}
}

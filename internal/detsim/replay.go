package detsim

import (
	"fmt"
	"sort"

	"sicost/internal/histories"
	"sicost/internal/trace"
)

// ReplayTrace converts a recorded trace into a dispatch order over the
// script transactions in progs — the bridge from a captured concurrent
// run back into the deterministic scheduler. The mapping is symbolic:
// the k-th distinct transaction to emit EvBegin in the stream is bound
// to the k-th script transaction number (ascending), and every
// statement-level event (begin, read, write, sfu, commit, abort)
// contributes one dispatch slot for its transaction. Events of
// transactions beyond the script's population, and slots beyond a
// script transaction's own step count, are dropped.
//
// The trace fixes only the interleaving; the script fixes what each
// step does. Statement events are emitted at operation start (before
// any lock wait), so a transaction's slot order equals its statement
// dispatch order — exactly what dispatchNext consumes.
func ReplayTrace(events []trace.Event, progs map[int][]histories.Step) []int {
	txns := make([]int, 0, len(progs))
	for txn := range progs {
		txns = append(txns, txn)
	}
	sort.Ints(txns)
	bound := make(map[uint64]int, len(txns))
	used := make(map[int]int, len(txns))
	var order []int
	for _, ev := range events {
		switch ev.Kind {
		case trace.EvBegin:
			if _, seen := bound[ev.Tx]; !seen && len(bound) < len(txns) {
				bound[ev.Tx] = txns[len(bound)]
			}
		case trace.EvRead, trace.EvWrite, trace.EvSFU, trace.EvCommit, trace.EvAbort:
			// statement-level: consumes a slot below
		default:
			continue // snapshot, lock, conflict, wal: not dispatch points
		}
		txn, ok := bound[ev.Tx]
		if !ok {
			continue
		}
		if used[txn] >= len(progs[txn]) {
			continue
		}
		used[txn]++
		order = append(order, txn)
	}
	return order
}

// RunTrace replays a recorded event stream as a schedule hint for the
// script: dispatches follow the trace's interleaving, with slots that
// have become invalid — the transaction finished early (the session
// discipline aborts after a retriable failure, emitting an EvAbort the
// script has no step for), is still blocked, or ran out of steps —
// skipped rather than failing the schedule. The skip count lands in
// Result.ReplaySkipped; a small value means the replay tracked the
// recording closely.
func (r Runner) RunTrace(script string, events []trace.Event) (*Result, error) {
	steps, err := histories.Parse(script)
	if err != nil {
		return nil, err
	}
	progs := make(map[int][]histories.Step)
	for _, s := range steps {
		progs[s.Txn] = append(progs[s.Txn], s)
	}
	for txn, prog := range progs {
		if prog[0].Kind != histories.OpBegin {
			return nil, fmt.Errorf("detsim: transaction %d used before begin", txn)
		}
	}
	order := ReplayTrace(events, progs)
	sc, err := newSched(r, progs)
	if err != nil {
		return nil, err
	}
	defer sc.close()
	for _, t := range order {
		st := sc.txns[t]
		if st == nil || st.finished || st.blocked || st.pending >= 0 || st.next >= len(st.prog) {
			sc.res.ReplaySkipped++
			continue
		}
		if err := sc.dispatchNext(t); err != nil {
			return nil, err
		}
	}
	sc.finalize()
	return sc.res, nil
}

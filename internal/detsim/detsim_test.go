package detsim

import (
	"errors"
	"strings"
	"testing"

	"sicost/internal/core"
	"sicost/internal/histories"
)

// modeCase is one (concurrency-control mode, platform) pair the paper
// distinguishes.
type modeCase struct {
	name     string
	mode     core.CCMode
	platform core.Platform
}

var allModes = []modeCase{
	{"si-postgres", core.SnapshotFUW, core.PlatformPostgres},
	{"si-commercial", core.SnapshotFUW, core.PlatformCommercial},
	{"2pl", core.Strict2PL, core.PlatformPostgres},
	{"ssi", core.SerializableSI, core.PlatformPostgres},
}

func mustRun(t *testing.T, s histories.Schedule, mc modeCase) *Result {
	t.Helper()
	res, err := Runner{Mode: mc.mode, Platform: mc.platform, Items: s.Items}.Run(s.Script)
	if err != nil {
		t.Fatalf("%s under %s: %v", s.Name, mc.name, err)
	}
	return res
}

// TestWriteSkewAcrossModes replays the §II-B write-skew interleaving —
// the identical script — under every mode: plain SI admits it on both
// platforms, S2PL and SSI prevent it.
func TestWriteSkewAcrossModes(t *testing.T) {
	s := histories.WriteSkew
	for _, mc := range allModes {
		t.Run(mc.name, func(t *testing.T) {
			res := mustRun(t, s, mc)
			admits := res.Committed[1] && res.Committed[2]
			switch mc.mode {
			case core.SnapshotFUW:
				if !admits {
					t.Fatalf("plain SI must admit write skew; got\n%s", res.Describe())
				}
				if res.Report.Serializable {
					t.Fatalf("checker missed the write-skew cycle:\n%s", res.Report.Describe())
				}
				if got := res.Report.Classify(); got != "write skew" {
					t.Fatalf("Classify() = %q, want %q", got, "write skew")
				}
				if res.Final["x"]+res.Final["y"] != -20 {
					t.Fatalf("final x+y = %d, want -20 (both overdrafts applied)", res.Final["x"]+res.Final["y"])
				}
			default:
				if admits && !res.Report.Serializable {
					t.Fatalf("%s admitted write skew:\n%s", mc.name, res.Describe())
				}
				if !res.Report.Serializable {
					t.Fatalf("%s produced a non-serializable history:\n%s", mc.name, res.Report.Describe())
				}
				if sum := res.Final["x"] + res.Final["y"]; sum < 0 {
					t.Fatalf("%s violated the invariant x+y >= 0: %d", mc.name, sum)
				}
			}
		})
	}
}

// TestWriteSkew2PLDetails pins the exact mechanics under strict 2PL:
// t1's lock upgrade on x blocks behind t2's shared lock, then t2's own
// upgrade on y closes the wait cycle and dies by deadlock detection.
func TestWriteSkew2PLDetails(t *testing.T) {
	res := mustRun(t, histories.WriteSkew, modeCase{"2pl", core.Strict2PL, core.PlatformPostgres})
	// Steps: 0:b1 1:b2 2:r1(x) 3:r1(y) 4:r2(x) 5:r2(y) 6:w1(x,-10) 7:w2(y,-10) 8:c1 9:c2
	if !res.Steps[6].Blocked || res.Steps[6].Status != OK {
		t.Fatalf("w1(x) should block on the upgrade then succeed; got %+v", res.Steps[6])
	}
	if res.Steps[7].Blocked || res.Steps[7].Status != Failed {
		t.Fatalf("w2(y) should fail synchronously by deadlock detection; got %+v", res.Steps[7])
	}
	if !errors.Is(res.Errs[2], core.ErrDeadlock) {
		t.Fatalf("t2 should die by deadlock, got %v", res.Errs[2])
	}
	if !res.Committed[1] || res.Committed[2] {
		t.Fatalf("exactly t1 should commit; got %v", res.Committed)
	}
}

// TestPromotionSFUGap replays the §II-C interleaving — the write-skew
// pair with t1's read of y promoted to SELECT FOR UPDATE — under the
// identical script on every mode. The commercial platform's committed
// SFU acts like a write and kills t2; PostgreSQL's FOR UPDATE leaves no
// trace after commit, so the anomaly still commits: the paper's gap,
// reproduced as a failing-anomaly assertion.
func TestPromotionSFUGap(t *testing.T) {
	s := histories.PromotionSFUGap
	// Steps: 0:b1 1:b2 2:u1(y) 3:r1(x) 4:r2(x) 5:r2(y) 6:w1(x,-10) 7:w2(y,-10) 8:c1 9:c2

	t.Run("si-postgres-gap", func(t *testing.T) {
		res := mustRun(t, s, modeCase{"", core.SnapshotFUW, core.PlatformPostgres})
		if !res.Steps[7].Blocked {
			t.Fatalf("w2(y) must block behind t1's FOR UPDATE lock; got %+v", res.Steps[7])
		}
		if res.Steps[7].Status != OK {
			t.Fatalf("on PostgreSQL the woken write must succeed (no SFU trace); got %+v", res.Steps[7])
		}
		if !res.Committed[1] || !res.Committed[2] {
			t.Fatalf("both must commit on PostgreSQL; got\n%s", res.Describe())
		}
		if res.Report.Serializable {
			t.Fatalf("the committed history is write skew; checker said serializable:\n%s", res.Report.Describe())
		}
		if got := res.Report.Classify(); got != "write skew" {
			t.Fatalf("Classify() = %q, want %q", got, "write skew")
		}
	})

	t.Run("si-commercial-prevented", func(t *testing.T) {
		res := mustRun(t, s, modeCase{"", core.SnapshotFUW, core.PlatformCommercial})
		if !res.Steps[7].Blocked || res.Steps[7].Status != Failed {
			t.Fatalf("w2(y) must block, then fail on wakeup (committed SFU acts like a write); got %+v", res.Steps[7])
		}
		if !errors.Is(res.Errs[2], core.ErrSerialization) {
			t.Fatalf("t2 should die with a serialization failure, got %v", res.Errs[2])
		}
		if !res.Committed[1] || res.Committed[2] {
			t.Fatalf("exactly t1 should commit; got\n%s", res.Describe())
		}
		if !res.Report.Serializable {
			t.Fatalf("committed history should be serializable:\n%s", res.Report.Describe())
		}
	})

	for _, mc := range []modeCase{
		{"2pl", core.Strict2PL, core.PlatformPostgres},
		{"ssi", core.SerializableSI, core.PlatformPostgres},
	} {
		t.Run(mc.name+"-prevented", func(t *testing.T) {
			res := mustRun(t, s, mc)
			if res.Committed[1] && res.Committed[2] && !res.Report.Serializable {
				t.Fatalf("%s admitted the anomaly:\n%s", mc.name, res.Describe())
			}
			if !res.Report.Serializable {
				t.Fatalf("%s produced a non-serializable history:\n%s", mc.name, res.Report.Describe())
			}
		})
	}
}

// TestReadOnlyAnomaly replays the Fekete/O'Neil/O'Neil history: all
// three transactions commit under plain SI and the checker pins the
// cycle on the read-only t3; SSI and 2PL prevent it.
func TestReadOnlyAnomaly(t *testing.T) {
	s := histories.ReadOnlyAnomaly
	for _, mc := range allModes {
		t.Run(mc.name, func(t *testing.T) {
			if mc.mode == core.Strict2PL {
				// Under 2PL the interleaving cannot even be scheduled: t2's
				// write upgrade blocks behind t1's shared lock, so the
				// scripted c2 is undispatchable — prevention by blocking.
				_, err := Runner{Mode: mc.mode, Platform: mc.platform, Items: s.Items}.Run(s.Script)
				if err == nil || !strings.Contains(err.Error(), "blocked") {
					t.Fatalf("2PL should block the interleaving, got err=%v", err)
				}
				return
			}
			res := mustRun(t, s, mc)
			if mc.mode == core.SnapshotFUW {
				if !res.Committed[1] || !res.Committed[2] || !res.Committed[3] {
					t.Fatalf("plain SI must commit all three; got\n%s", res.Describe())
				}
				if res.Report.Serializable {
					t.Fatalf("checker missed the read-only anomaly:\n%s", res.Report.Describe())
				}
				if got := res.Report.Classify(); got != "read-only anomaly" {
					t.Fatalf("Classify() = %q, want %q\n%s", got, "read-only anomaly", res.Report.Describe())
				}
				return
			}
			if !res.Report.Serializable {
				t.Fatalf("%s produced a non-serializable history:\n%s", mc.name, res.Report.Describe())
			}
		})
	}
}

// TestLostUpdateFUW replays the §II-A concurrent-writer script: under
// SI the second writer blocks behind the row lock and aborts on wakeup
// (First-Updater-Wins); under 2PL the same script ends in an upgrade
// deadlock. Either way no update is silently lost.
func TestLostUpdateFUW(t *testing.T) {
	s := histories.LostUpdateFUW
	// Steps: 0:b1 1:b2 2:r1(x) 3:r2(x) 4:w1(x,1) 5:w2(x,2) 6:c1 7:c2
	for _, mc := range allModes {
		t.Run(mc.name, func(t *testing.T) {
			res := mustRun(t, s, mc)
			if res.Committed[1] && res.Committed[2] {
				t.Fatalf("%s committed both concurrent writers:\n%s", mc.name, res.Describe())
			}
			if !res.Report.Serializable {
				t.Fatalf("%s produced a non-serializable history:\n%s", mc.name, res.Report.Describe())
			}
			switch mc.mode {
			case core.Strict2PL:
				// r1/r2 take shared locks; w1 blocks on the upgrade and w2
				// closes the wait cycle — the classic upgrade deadlock.
				if !res.Steps[4].Blocked || res.Steps[4].Status != OK {
					t.Fatalf("w1(x) should block on upgrade then succeed; got %+v", res.Steps[4])
				}
				if !errors.Is(res.Errs[2], core.ErrDeadlock) {
					t.Fatalf("t2 should die by deadlock, got %v", res.Errs[2])
				}
			default:
				// SI modes: no read locks, so w2 blocks behind t1's row
				// lock and fails FUW on wakeup after c1.
				if !res.Steps[5].Blocked || res.Steps[5].Status != Failed {
					t.Fatalf("w2(x) should block then fail FUW; got %+v", res.Steps[5])
				}
				if !errors.Is(res.Errs[2], core.ErrSerialization) {
					t.Fatalf("t2 should die with a serialization failure, got %v", res.Errs[2])
				}
			}
			if !res.Committed[1] || res.Final["x"] != 1 {
				t.Fatalf("t1's update must survive (x=1); got committed=%v final=%v", res.Committed, res.Final)
			}
		})
	}
}

// TestDeterminism re-runs every paper schedule under every mode many
// times and requires bit-identical execution records — the whole point
// of the subsystem.
func TestDeterminism(t *testing.T) {
	render := func(res *Result, err error) string {
		if err != nil {
			// An undispatchable schedule (prevention by blocking) must be
			// undispatchable every time, with the identical error.
			return "error: " + err.Error()
		}
		return res.Describe()
	}
	for _, s := range histories.PaperSchedules() {
		for _, mc := range allModes {
			r := Runner{Mode: mc.mode, Platform: mc.platform, Items: s.Items}
			want := render(r.Run(s.Script))
			for i := 0; i < 20; i++ {
				if got := render(r.Run(s.Script)); got != want {
					t.Fatalf("%s under %s diverged on rerun %d:\n--- first:\n%s--- rerun:\n%s",
						s.Name, mc.name, i, want, got)
				}
			}
		}
	}
}

// TestOracleAgreesOnPaperSchedules cross-checks the engine-executed
// paper histories against the brute-force oracle: the checker and the
// oracle must agree on every one, in every mode.
func TestOracleAgreesOnPaperSchedules(t *testing.T) {
	for _, s := range histories.PaperSchedules() {
		for _, mc := range allModes {
			res, err := Runner{Mode: mc.mode, Platform: mc.platform, Items: s.Items}.Run(s.Script)
			if err != nil {
				// Undispatchable under this mode (prevention by blocking);
				// nothing committed to cross-check.
				continue
			}
			agree, checkerSays, oracleSays := CheckerAgrees(res.Infos)
			if !agree {
				t.Errorf("%s under %s: checker=%v oracle=%v; history:\n%s",
					s.Name, mc.name, checkerSays, oracleSays, FormatHistory(res.Infos))
			}
			if checkerSays != res.Report.Serializable {
				t.Errorf("%s under %s: replayed checker verdict %v != original %v",
					s.Name, mc.name, checkerSays, res.Report.Serializable)
			}
		}
	}
}

// TestStuckStep covers the harness's force-abort path: the schedule
// ends while t1 is still blocked behind t2's row lock, so finalize must
// mark the step stuck and eject it.
func TestStuckStep(t *testing.T) {
	res, err := Runner{Mode: core.SnapshotFUW, Platform: core.PlatformPostgres}.
		Run("b1 b2 w2(x,2) w1(x,1)")
	if err != nil {
		t.Fatal(err)
	}
	// Steps: 0:b1 1:b2 2:w2(x,2) 3:w1(x,1)
	if !res.Steps[3].Blocked || res.Steps[3].Status != Stuck {
		t.Fatalf("w1(x) should end stuck; got %+v", res.Steps[3])
	}
	if res.Committed[1] || res.Committed[2] {
		t.Fatalf("nothing should commit; got %v", res.Committed)
	}
	if res.Final["x"] != 0 {
		t.Fatalf("no write should survive; final=%v", res.Final)
	}
}

// TestScheduleErrors covers structurally invalid schedules: dispatching
// a step of a blocked transaction, or using a transaction before begin.
func TestScheduleErrors(t *testing.T) {
	r := Runner{Mode: core.SnapshotFUW, Platform: core.PlatformPostgres}
	if _, err := r.Run("b1 b2 w1(x,1) w2(x,2) w2(y,1)"); err == nil ||
		!strings.Contains(err.Error(), "blocked") {
		t.Fatalf("dispatching a blocked transaction should fail, got %v", err)
	}
	if _, err := r.Run("r1(x) c1"); err == nil ||
		!strings.Contains(err.Error(), "before begin") {
		t.Fatalf("use before begin should fail, got %v", err)
	}
	if _, err := r.Run("b1 b1"); err == nil {
		t.Fatal("double begin should fail")
	}
	if _, err := r.Run("not a script"); err == nil {
		t.Fatal("parse errors should propagate")
	}
}

// TestExplicitAbortAndValues covers the remaining DSL verbs: explicit
// aborts release locks, and read steps report the value they saw.
func TestExplicitAbortAndValues(t *testing.T) {
	res, err := Runner{Mode: core.SnapshotFUW, Platform: core.PlatformPostgres,
		Items: map[string]int64{"x": 7}}.
		Run("b1 r1(x) w1(x,9) a1 b2 r2(x) c2")
	if err != nil {
		t.Fatal(err)
	}
	// Steps: 0:b1 1:r1(x) 2:w1(x,9) 3:a1 4:b2 5:r2(x) 6:c2
	if res.Value(1) != 7 {
		t.Fatalf("r1(x) = %d, want 7", res.Value(1))
	}
	if res.Value(5) != 7 {
		t.Fatalf("r2(x) after t1's abort = %d, want 7", res.Value(5))
	}
	if res.Committed[1] || !res.Committed[2] {
		t.Fatalf("t1 aborted, t2 committed; got %v", res.Committed)
	}
	if err, ok := res.Errs[1]; !ok || err != nil {
		t.Fatalf("explicit abort should record a nil error; got %v (present=%v)", err, ok)
	}
}

package detsim

import (
	"fmt"
	"sort"
	"strings"

	"sicost/internal/core"
	"sicost/internal/histories"
)

// ExploreConfig describes a small transaction set to explore
// exhaustively.
type ExploreConfig struct {
	Mode     core.CCMode
	Platform core.Platform
	// Items pre-loads the table (default x=y=z=0).
	Items map[string]int64
	// Txns are the transaction programs, one script each in the
	// histories DSL *without* transaction numbers ("r(x) w(y,1)").
	// A begin step is prepended and a commit appended automatically, and
	// both are schedulable steps: where a transaction takes its snapshot
	// and where it commits are exactly the choices SI anomalies hinge on.
	Txns []string
	// MaxSchedules aborts the exploration if the interleaving count
	// exceeds it (default 100000) — a guard against accidentally large
	// inputs, not a sampling knob: within the limit the exploration is
	// exhaustive.
	MaxSchedules int
	// OnlineCheck runs every finalized schedule's trace stream through
	// the online windowed checker too, and fails the exploration with
	// an error if its serializability verdict ever diverges from the
	// post-hoc MVSG analysis — exhaustive cross-validation of the two
	// checkers over every interleaving.
	OnlineCheck bool
}

// Outcome is the observable result of one complete schedule, quotiented
// over everything that should not matter (engine transaction ids,
// wall-clock): which transactions committed, how the others failed, the
// final database state, and the serializability verdict.
type Outcome struct {
	// Committed lists the committed transaction numbers, ascending.
	Committed []int
	// Failed maps failed transaction numbers to the abort class.
	Failed map[int]core.AbortReason
	// Final is the committed end state of every item.
	Final map[string]int64
	// Serializable is the checker's verdict over the committed history.
	Serializable bool
	// Anomaly is the checker's classification when not serializable
	// ("write skew", ...).
	Anomaly string
}

// Signature renders the outcome canonically for deduplication.
func (o Outcome) Signature() string {
	var b strings.Builder
	b.WriteString("committed=")
	for i, t := range o.Committed {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "t%d", t)
	}
	var failed []int
	for t := range o.Failed {
		failed = append(failed, t)
	}
	sort.Ints(failed)
	b.WriteString(" failed=")
	for i, t := range failed {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "t%d:%s", t, o.Failed[t])
	}
	var items []string
	for k := range o.Final {
		items = append(items, k)
	}
	sort.Strings(items)
	b.WriteString(" state=")
	for i, k := range items {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s:%d", k, o.Final[k])
	}
	if o.Serializable {
		b.WriteString(" serializable")
	} else {
		fmt.Fprintf(&b, " anomaly(%s)", o.Anomaly)
	}
	return b.String()
}

// ScheduleOutcome pairs one deduplicated outcome with how often it was
// reached and one witness schedule.
type ScheduleOutcome struct {
	Outcome Outcome
	// Count is the number of distinct interleavings reaching it.
	Count int
	// Example is a witness dispatch order, rendered as a script in the
	// histories DSL — replayable with Runner.Run.
	Example string
}

// ExploreResult aggregates an exhaustive exploration.
type ExploreResult struct {
	// Schedules is the total number of complete interleavings explored.
	Schedules int
	// Outcomes are the distinct outcomes, sorted by signature.
	Outcomes []ScheduleOutcome
}

// NonSerializable returns the outcomes whose committed history the
// checker rejected.
func (r *ExploreResult) NonSerializable() []ScheduleOutcome {
	var out []ScheduleOutcome
	for _, so := range r.Outcomes {
		if !so.Outcome.Serializable {
			out = append(out, so)
		}
	}
	return out
}

// Serializable reports whether every explored interleaving yielded a
// serializable committed history.
func (r *ExploreResult) Serializable() bool { return len(r.NonSerializable()) == 0 }

// Describe renders the exploration summary.
func (r *ExploreResult) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "explored %d interleavings, %d distinct outcomes:\n", r.Schedules, len(r.Outcomes))
	for _, so := range r.Outcomes {
		fmt.Fprintf(&b, "  %6d× %s\n          e.g. %s\n", so.Count, so.Outcome.Signature(), so.Example)
	}
	return b.String()
}

// parsePrograms turns the per-transaction scripts into numbered step
// programs (begin prepended, commit appended).
func parsePrograms(txns []string) (map[int][]histories.Step, error) {
	progs := make(map[int][]histories.Step, len(txns))
	for i, script := range txns {
		txn := i + 1
		var numbered []string
		numbered = append(numbered, fmt.Sprintf("b%d", txn))
		for _, tok := range strings.Fields(script) {
			if len(tok) == 0 {
				continue
			}
			switch tok[0] {
			case 'r', 'w', 'u':
				numbered = append(numbered, fmt.Sprintf("%c%d%s", tok[0], txn, tok[1:]))
			case 'b', 'c', 'a':
				return nil, fmt.Errorf("detsim: program %d: begin/commit/abort are added automatically (got %q)", txn, tok)
			default:
				return nil, fmt.Errorf("detsim: program %d: unknown op %q", txn, tok)
			}
		}
		numbered = append(numbered, fmt.Sprintf("c%d", txn))
		steps, err := histories.Parse(strings.Join(numbered, " "))
		if err != nil {
			return nil, err
		}
		progs[txn] = steps
	}
	return progs, nil
}

// Explore exhaustively runs every interleaving of the configured
// transactions: at each point it branches over every runnable
// transaction (blocked transactions are not schedulable — their pending
// step resolves when another transaction's step wakes them, exactly as
// in the engine). Each complete schedule is executed on a fresh database
// and its Outcome recorded; the result aggregates the distinct outcomes.
//
// This is stateless-model-checking-style exploration by replay: a prefix
// of dispatch choices is deterministic (the scheduler never races), so
// re-running a prefix from scratch reaches the identical state.
func Explore(cfg ExploreConfig) (*ExploreResult, error) {
	if len(cfg.Txns) == 0 {
		return nil, fmt.Errorf("detsim: no transactions to explore")
	}
	progs, err := parsePrograms(cfg.Txns)
	if err != nil {
		return nil, err
	}
	maxSchedules := cfg.MaxSchedules
	if maxSchedules == 0 {
		maxSchedules = 100000
	}
	runner := Runner{Mode: cfg.Mode, Platform: cfg.Platform, Items: cfg.Items, OnlineCheck: cfg.OnlineCheck}

	res := &ExploreResult{}
	seen := make(map[string]*ScheduleOutcome)

	var dfs func(prefix []int) error
	dfs = func(prefix []int) error {
		r, runnable, err := runner.RunSchedule(progs, prefix, true)
		if err != nil {
			return fmt.Errorf("detsim: schedule %v: %w", prefix, err)
		}
		if cfg.OnlineCheck && r.Online != nil && r.Online.Serializable != r.Report.Serializable {
			return fmt.Errorf("detsim: schedule %v: online checker says serializable=%v, MVSG analysis says %v\nonline: %soffline: %s",
				prefix, r.Online.Serializable, r.Report.Serializable, r.Online.Describe(), r.Report.Describe())
		}
		if len(runnable) == 0 {
			// Complete: every transaction finished (a stuck-all-blocked
			// state is impossible with deadlock detection, but would
			// surface here as Stuck steps in the outcome).
			res.Schedules++
			if res.Schedules > maxSchedules {
				return fmt.Errorf("detsim: exploration exceeds %d schedules", maxSchedules)
			}
			o := outcomeOf(r)
			sig := o.Signature()
			if so := seen[sig]; so != nil {
				so.Count++
			} else {
				seen[sig] = &ScheduleOutcome{Outcome: o, Count: 1, Example: renderSchedule(progs, prefix)}
			}
			return nil
		}
		for _, t := range runnable {
			next := append(append([]int(nil), prefix...), t)
			if err := dfs(next); err != nil {
				return err
			}
		}
		return nil
	}
	if err := dfs(nil); err != nil {
		return nil, err
	}

	sigs := make([]string, 0, len(seen))
	for sig := range seen {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	for _, sig := range sigs {
		res.Outcomes = append(res.Outcomes, *seen[sig])
	}
	return res, nil
}

// outcomeOf projects a finalized Result onto its Outcome.
func outcomeOf(r *Result) Outcome {
	o := Outcome{
		Failed:       make(map[int]core.AbortReason),
		Final:        r.Final,
		Serializable: r.Report.Serializable,
	}
	for txn := range r.Committed {
		o.Committed = append(o.Committed, txn)
	}
	sort.Ints(o.Committed)
	for txn, err := range r.Errs {
		if err != nil {
			o.Failed[txn] = core.ClassifyAbort(err)
		} else {
			o.Failed[txn] = core.AbortOther
		}
	}
	if !o.Serializable {
		o.Anomaly = r.Report.Classify()
	}
	return o
}

// renderSchedule turns a dispatch order back into a flat DSL script.
func renderSchedule(progs map[int][]histories.Step, order []int) string {
	next := make(map[int]int, len(progs))
	var toks []string
	for _, t := range order {
		s := progs[t][next[t]]
		next[t]++
		toks = append(toks, formatStep(s))
	}
	return strings.Join(toks, " ")
}

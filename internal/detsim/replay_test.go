package detsim

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"sicost/internal/core"
	"sicost/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace files from the current run")

// fuwScript is a non-blocking First-Updater-Wins conflict: t2 writes and
// commits x before t1's write, so t1's update fails at version-check time
// without ever queueing on the row lock. No lock waits means the trace's
// event order is fully determined by the dispatch order.
const fuwScript = "b1 b2 w2(x,7) c2 w1(x,8) c1"

// recordTrace runs script deterministically with a counter-clock recorder
// installed and returns the drained, validated stream.
func recordTrace(t *testing.T, mode core.CCMode, script string) []trace.Event {
	t.Helper()
	rec := trace.New(trace.Options{Clock: trace.CounterClock()})
	r := Runner{Mode: mode, Platform: core.PlatformPostgres, Tracer: rec}
	if _, err := r.Run(script); err != nil {
		t.Fatal(err)
	}
	evs := rec.Drain()
	if rec.Dropped() != 0 {
		t.Fatalf("recorder dropped %d events", rec.Dropped())
	}
	if err := trace.Validate(evs); err != nil {
		t.Fatalf("recorded trace invalid: %v", err)
	}
	return evs
}

func TestReplayTraceRoundTrip(t *testing.T) {
	evs := recordTrace(t, core.SnapshotFUW, fuwScript)

	// Replaying the recording against a fresh engine must reproduce the
	// original outcome: t2 commits, t1 dies on the FUW check.
	r := Runner{Mode: core.SnapshotFUW, Platform: core.PlatformPostgres}
	res, err := r.RunTrace(fuwScript, evs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed[2] || res.Committed[1] {
		t.Fatalf("committed = %v, want only t2", res.Committed)
	}
	if res.Errs[1] != core.ErrSerialization {
		t.Fatalf("t1 error = %v, want ErrSerialization", res.Errs[1])
	}
	if res.Final["x"] != 7 {
		t.Fatalf("final x = %d, want 7", res.Final["x"])
	}
	// The session discipline auto-aborts t1 after the failed write; its
	// EvAbort slot arrives before the scripted c1, which then finds the
	// transaction finished — exactly one skipped slot.
	if res.ReplaySkipped != 1 {
		t.Fatalf("replay skipped %d slots, want 1", res.ReplaySkipped)
	}
}

func TestReplayTraceBlockingSchedule(t *testing.T) {
	// Under FUW, w2(x) queues behind t1's X lock; c1 wakes it into a
	// serialization failure. The statement events are emitted at dispatch
	// time (before the wait), so the replay dispatches w2 at the same
	// schedule position and reproduces the block.
	const script = "b1 b2 w1(x,1) w2(x,2) c1 c2"
	evs := recordTrace(t, core.SnapshotFUW, script)

	r := Runner{Mode: core.SnapshotFUW, Platform: core.PlatformPostgres}
	res, err := r.RunTrace(script, evs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed[1] || res.Committed[2] {
		t.Fatalf("committed = %v, want only t1", res.Committed)
	}
	if res.Errs[2] != core.ErrSerialization {
		t.Fatalf("t2 error = %v, want ErrSerialization", res.Errs[2])
	}
	var blocked bool
	for _, sr := range res.Steps {
		if sr.Blocked {
			blocked = true
		}
	}
	if !blocked {
		t.Fatal("replay never blocked; the recorded interleaving was not reproduced")
	}
	if res.Final["x"] != 1 {
		t.Fatalf("final x = %d, want 1", res.Final["x"])
	}
}

func TestReplayTraceForeignEventsIgnored(t *testing.T) {
	// Events from transactions beyond the script population (here: a
	// whole third transaction) must not generate dispatches.
	evs := recordTrace(t, core.SnapshotFUW, "b1 b2 b3 w3(y,1) c3 w2(x,7) c2 w1(x,8) c1")
	r := Runner{Mode: core.SnapshotFUW, Platform: core.PlatformPostgres}
	res, err := r.RunTrace(fuwScript, evs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed[2] || res.Committed[1] {
		t.Fatalf("committed = %v, want only t2", res.Committed)
	}
}

// TestTraceGoldenJSONL pins the JSONL wire schema: a fixed deterministic
// schedule, recorded under a counter clock, must serialize byte-for-byte
// to the checked-in golden file. Regenerate with:
//
//	go test ./internal/detsim -run TestTraceGoldenJSONL -update
//
// A diff here means the event schema changed — update the golden file
// AND the schema reference in docs/OBSERVABILITY.md together.
func TestTraceGoldenJSONL(t *testing.T) {
	evs := recordTrace(t, core.SnapshotFUW, fuwScript)
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, evs); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "replay_trace.golden.jsonl")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("JSONL stream diverged from golden file.\ngot:\n%swant:\n%s", buf.Bytes(), want)
	}

	// The golden bytes must themselves parse and re-validate: this is the
	// compatibility contract for external trace consumers.
	parsed, err := trace.ParseJSONL(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Validate(parsed); err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(evs) {
		t.Fatalf("parsed %d events, recorded %d", len(parsed), len(evs))
	}
}

package detsim

import (
	"math/rand"
	"strings"
	"testing"

	"sicost/internal/core"
	"sicost/internal/engine"
	"sicost/internal/histories"
	"sicost/internal/onlinecheck"
	"sicost/internal/trace"
)

// onlineConfigs are the mode/platform combinations the online checker
// is cross-validated under.
var onlineConfigs = []struct {
	mode     core.CCMode
	platform core.Platform
}{
	{core.SnapshotFUW, core.PlatformPostgres},
	{core.SnapshotFUW, core.PlatformCommercial},
	{core.SerializableSI, core.PlatformPostgres},
	{core.Strict2PL, core.PlatformPostgres},
}

// TestOnlineMatchesOfflineOnPaperSchedules runs every history script of
// the paper through the online windowed checker alongside the post-hoc
// MVSG analysis, under every mode/platform, and requires verdict
// equality — the cross-validation half of the acceptance criterion.
func TestOnlineMatchesOfflineOnPaperSchedules(t *testing.T) {
	nonSer := 0
	for _, cfg := range onlineConfigs {
		for _, s := range histories.PaperSchedules() {
			r, err := Runner{
				Mode: cfg.mode, Platform: cfg.platform,
				Items: s.Items, OnlineCheck: true,
			}.Run(s.Script)
			if err != nil {
				// Some scripts are not dispatchable under every mode: a
				// step of a transaction 2PL left blocked cannot be
				// scheduled. That is a property of the schedule, not a
				// checker divergence.
				if strings.Contains(err.Error(), "blocked") {
					continue
				}
				t.Fatalf("%s under %s/%s: %v", s.Name, cfg.mode, cfg.platform, err)
			}
			if r.Online == nil {
				t.Fatalf("%s under %s/%s: no online report", s.Name, cfg.mode, cfg.platform)
			}
			if r.Online.Serializable != r.Report.Serializable {
				t.Fatalf("%s under %s/%s: online=%v offline=%v\nonline: %soffline: %s",
					s.Name, cfg.mode, cfg.platform,
					r.Online.Serializable, r.Report.Serializable,
					r.Online.Describe(), r.Report.Describe())
			}
			if !r.Online.Serializable {
				nonSer++
			}
		}
	}
	if nonSer == 0 {
		t.Fatal("no schedule produced a non-serializable execution; cross-validation is vacuous")
	}
}

// TestOnlineGoldenWriteSkew pins the online checker's structured
// violation report for the paper's write-skew schedule under plain SI:
// the cycle participants, the rw-edge chain, and the classification.
func TestOnlineGoldenWriteSkew(t *testing.T) {
	s := histories.WriteSkew
	r, err := Runner{Mode: core.SnapshotFUW, Items: s.Items, OnlineCheck: true}.Run(s.Script)
	if err != nil {
		t.Fatal(err)
	}
	if r.Online.Serializable {
		t.Fatalf("write skew not detected:\n%s", r.Online.Describe())
	}
	want := `online-checked 2 transactions, 2 edges, window peak 2 (0 retired): NOT serializable (1 cycle(s), 0 SI-rule violation(s))
  cycle (write skew): t3 --rw[H."x"]--> t2 --rw[H."y"]--> t3 [window 2, csn 2..3, watermark 0]
`
	if got := r.Online.Describe(); got != want {
		t.Fatalf("golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestOnlineGoldenReadOnlyAnomaly pins the report for the read-only
// anomaly: a three-transaction cycle through a read-only participant.
func TestOnlineGoldenReadOnlyAnomaly(t *testing.T) {
	s := histories.ReadOnlyAnomaly
	r, err := Runner{Mode: core.SnapshotFUW, Items: s.Items, OnlineCheck: true}.Run(s.Script)
	if err != nil {
		t.Fatal(err)
	}
	if r.Online.Serializable {
		t.Fatalf("read-only anomaly not detected:\n%s", r.Online.Describe())
	}
	got := r.Online.Describe()
	if !strings.Contains(got, "read-only anomaly") {
		t.Fatalf("cycle not classified as read-only anomaly:\n%s", got)
	}
	v := r.Online.Violations[0]
	if len(v.Txs) != 4 || v.Txs[0] != v.Txs[3] {
		t.Fatalf("want a closed 3-transaction cycle, got txs %v", v.Txs)
	}
	if len(v.Edges) != 3 {
		t.Fatalf("want a 3-edge witness chain, got %v", v.Edges)
	}
}

// TestOnlineExploreCrossValidation exhaustively explores small
// transaction sets under every mode with the online checker attached to
// every interleaving: Explore itself errors out on any verdict
// divergence from the MVSG analysis.
func TestOnlineExploreCrossValidation(t *testing.T) {
	sets := [][]string{
		// The write-skew pair.
		{"r(x) r(y) w(x,-10)", "r(x) r(y) w(y,-10)"},
		// Promotion via SFU (platform-sensitive).
		{"u(x) r(y) w(x,-10)", "r(x) r(y) w(y,-10)"},
	}
	for _, cfg := range onlineConfigs {
		for i, txns := range sets {
			res, err := Explore(ExploreConfig{
				Mode: cfg.mode, Platform: cfg.platform,
				Txns: txns, OnlineCheck: true,
			})
			if err != nil {
				t.Fatalf("set %d under %s/%s: %v", i, cfg.mode, cfg.platform, err)
			}
			if res.Schedules == 0 {
				t.Fatalf("set %d under %s/%s explored nothing", i, cfg.mode, cfg.platform)
			}
		}
	}
	// Sanity: plain SI on the write-skew pair must actually reach a
	// non-serializable outcome, or the equality above proves nothing.
	res, err := Explore(ExploreConfig{Mode: core.SnapshotFUW, Txns: sets[0], OnlineCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Serializable() {
		t.Fatal("SI exploration of the write-skew pair found no anomaly")
	}
}

// eventsFromInfos synthesizes a trace stream from a committed history:
// begin, the exact read set, the committed write set, commit — the same
// information the engine emits, so random oracle histories can be
// replayed through the online checker.
func eventsFromInfos(infos []engine.TxInfo) []trace.Event {
	var evs []trace.Event
	ts := int64(0)
	stamp := func(e trace.Event) trace.Event {
		ts++
		e.TS = ts
		return e
	}
	for _, in := range infos {
		evs = append(evs, stamp(trace.Event{Kind: trace.EvBegin, Tx: in.ID, CSN: in.StartCSN}))
		for _, r := range in.Reads {
			evs = append(evs, stamp(trace.Event{Kind: trace.EvReadVer, Tx: in.ID, Table: r.Table, Key: r.Key, CSN: r.CSN}))
		}
		for _, w := range in.Writes {
			evs = append(evs, stamp(trace.Event{Kind: trace.EvWriteVer, Tx: in.ID, Table: w.Table, Key: w.Key, CSN: w.CSN}))
		}
		evs = append(evs, stamp(trace.Event{Kind: trace.EvCommit, Tx: in.ID, CSN: in.CommitCSN}))
	}
	return evs
}

// TestOnlineRandomCrossValidation is the online checker's version of
// the oracle fuzz: random SI-shaped histories (including stale reads no
// correct engine would produce) replayed as event streams must get the
// same serializability verdict as the brute-force serial-order search.
// Single-batch replay — exactness is the unchunked contract; the
// windowed mode is exercised by the live tests.
func TestOnlineRandomCrossValidation(t *testing.T) {
	n := 5000
	if testing.Short() {
		n = 1000
	}
	rng := rand.New(rand.NewSource(20080576))
	gen := HistoryGen{}
	nonSer := 0
	for i := 0; i < n; i++ {
		h := gen.Generate(rng)
		evs := eventsFromInfos(h)
		rep := onlinecheck.Run(evs, onlinecheck.Config{SIRules: true, Batch: len(evs) + 1})
		oracle := SerializableBrute(h)
		if rep.Serializable != oracle {
			t.Fatalf("divergence on history %d: online=%v oracle=%v\nhistory:\n%s\nonline report:\n%s",
				i, rep.Serializable, oracle, FormatHistory(h), rep.Describe())
		}
		if !oracle {
			nonSer++
		}
	}
	if nonSer == 0 || nonSer == n {
		t.Fatalf("degenerate corpus: %d/%d non-serializable", nonSer, n)
	}
	t.Logf("cross-validated %d random histories (%d non-serializable), zero divergence", n, nonSer)
}

// TestOnlineRunnerStrict2PLDisablesSIRules: under 2PL the runner must
// run the online checker without SI rules — 2PL reads newest-committed,
// which would otherwise spray future-read false positives.
func TestOnlineRunnerStrict2PLDisablesSIRules(t *testing.T) {
	s := histories.WriteSkew
	r, err := Runner{Mode: core.Strict2PL, Items: s.Items, OnlineCheck: true}.Run(s.Script)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Online.Serializable {
		t.Fatalf("2PL execution flagged non-serializable:\n%s", r.Online.Describe())
	}
	if r.Online.SIViolations != 0 {
		t.Fatalf("2PL execution flagged SI violations:\n%s", r.Online.Describe())
	}
}

package detsim

import (
	"math/rand"
	"testing"

	"sicost/internal/engine"
	"sicost/internal/histories"
)

// TestCheckerCrossValidation is the property-based fuzzer of the issue:
// it generates random SI-shaped committed histories and requires the
// runtime checker and the independent brute-force MVSG oracle to agree
// on every one. A divergence is minimized before being reported. The
// seed is fixed so CI explores the identical corpus every run.
func TestCheckerCrossValidation(t *testing.T) {
	n := 10000
	if testing.Short() {
		n = 2000
	}
	rng := rand.New(rand.NewSource(20080576))
	gen := HistoryGen{}
	nonSer := 0
	for i := 0; i < n; i++ {
		h := gen.Generate(rng)
		agree, checkerSays, oracleSays := CheckerAgrees(h)
		if !agree {
			min := MinimizeDivergence(h)
			t.Fatalf("divergence on history %d: checker=%v oracle=%v\nminimized counterexample:\n%s\nfull history:\n%s",
				i, checkerSays, oracleSays, FormatHistory(min), FormatHistory(h))
		}
		if !checkerSays {
			nonSer++
		}
	}
	// The generator must actually exercise both verdicts, or the
	// cross-validation is vacuous.
	if nonSer == 0 || nonSer == n {
		t.Fatalf("degenerate corpus: %d/%d non-serializable histories", nonSer, n)
	}
	t.Logf("cross-validated %d histories (%d non-serializable), zero divergence", n, nonSer)
}

// wsHistory is a hand-built write-skew history: both transactions start
// at snapshot 0, read both items at version 0, and write disjoint items.
func wsHistory() []engine.TxInfo {
	r := func(it int, csn uint64) engine.VersionRef {
		return engine.VersionRef{Table: histories.Table, Key: itemKeyVal(it), CSN: csn}
	}
	return []engine.TxInfo{
		{ID: 1, StartCSN: 0, CommitCSN: 1,
			Reads:  []engine.VersionRef{r(0, 0), r(1, 0)},
			Writes: []engine.VersionRef{r(0, 1)}},
		{ID: 2, StartCSN: 0, CommitCSN: 2,
			Reads:  []engine.VersionRef{r(0, 0), r(1, 0)},
			Writes: []engine.VersionRef{r(1, 2)}},
	}
}

// TestOracleKnownVerdicts pins the oracle on histories with known
// answers, independently of the checker.
func TestOracleKnownVerdicts(t *testing.T) {
	if !SerializableBrute(nil) || !SerializableBrute([]engine.TxInfo{{ID: 1}}) {
		t.Fatal("empty and single-transaction histories are vacuously serializable")
	}
	if !SerializableBrute([]engine.TxInfo{{ID: 1}, {ID: 2}}) {
		t.Fatal("two empty transactions must be serializable")
	}
	h := wsHistory()
	if SerializableBrute(h) {
		t.Fatal("oracle must reject write skew")
	}
	agree, checkerSays, _ := CheckerAgrees(h)
	if !agree || checkerSays {
		t.Fatalf("checker must agree write skew is non-serializable (agree=%v checker=%v)", agree, checkerSays)
	}
	// Serial version: t2 starts after t1 committed and reads its write.
	serial := wsHistory()
	serial[1].StartCSN = 1
	serial[1].Reads = []engine.VersionRef{
		{Table: histories.Table, Key: itemKeyVal(0), CSN: 1},
		{Table: histories.Table, Key: itemKeyVal(1), CSN: 0},
	}
	if !SerializableBrute(serial) {
		t.Fatal("oracle must accept the serial history")
	}
	if agree, _, _ := CheckerAgrees(serial); !agree {
		t.Fatal("checker must agree on the serial history")
	}
}

// TestMinimizeDivergenceNoDivergence asserts the minimizer is the
// identity on agreeing histories (it must not "minimize" into a fake
// counterexample).
func TestMinimizeDivergenceNoDivergence(t *testing.T) {
	h := wsHistory()
	got := MinimizeDivergence(h)
	if len(got) != len(h) {
		t.Fatalf("minimizer changed an agreeing history: %d -> %d txns", len(h), len(got))
	}
}

// TestHistoryGenShape sanity-checks the generator output: reads are
// plausible versions, writers have unique ascending commit CSNs, and
// read-only transactions commit at their snapshot.
func TestHistoryGenShape(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	gen := HistoryGen{}
	for i := 0; i < 200; i++ {
		h := gen.Generate(rng)
		if len(h) == 0 {
			t.Fatal("empty history")
		}
		var lastCommit uint64
		for _, in := range h {
			if in.ReadOnly {
				if len(in.Writes) != 0 || in.CommitCSN != in.StartCSN {
					t.Fatalf("bad read-only txn: %+v", in)
				}
				continue
			}
			if len(in.Writes) == 0 {
				t.Fatalf("writer with no writes: %+v", in)
			}
			if in.CommitCSN <= lastCommit {
				t.Fatalf("commit CSNs not ascending: %d after %d", in.CommitCSN, lastCommit)
			}
			lastCommit = in.CommitCSN
			for _, w := range in.Writes {
				if w.CSN != in.CommitCSN {
					t.Fatalf("write CSN %d != commit CSN %d", w.CSN, in.CommitCSN)
				}
			}
		}
	}
}

// TestFormatHistory smoke-tests the failure-report renderer.
func TestFormatHistory(t *testing.T) {
	out := FormatHistory(wsHistory())
	want := "T1[start=0,commit=1] r(a@0) r(b@0) w(a@1)\nT2[start=0,commit=2] r(a@0) r(b@0) w(b@2)\n"
	if out != want {
		t.Fatalf("FormatHistory:\n%q\nwant\n%q", out, want)
	}
}

package detsim

import (
	"strings"
	"testing"

	"sicost/internal/core"
)

// wsTxns is the write-skew transaction pair of §II-B as programs: each
// reads both balances and overdraws one.
var wsTxns = []string{"r(x) r(y) w(x,-10)", "r(x) r(y) w(y,-10)"}

var wsItems = map[string]int64{"x": 50, "y": 50}

// TestExploreWriteSkewSI exhaustively runs every interleaving of the
// write-skew pair under plain SI: some interleavings must reach the
// anomaly (both commit, non-serializable, x+y = -20), and every
// non-serializable outcome must be exactly that write skew.
func TestExploreWriteSkewSI(t *testing.T) {
	for _, platform := range []core.Platform{core.PlatformPostgres, core.PlatformCommercial} {
		t.Run(platform.String(), func(t *testing.T) {
			res, err := Explore(ExploreConfig{
				Mode: core.SnapshotFUW, Platform: platform,
				Items: wsItems, Txns: wsTxns,
			})
			if err != nil {
				t.Fatal(err)
			}
			bad := res.NonSerializable()
			if len(bad) == 0 {
				t.Fatalf("plain SI admits write skew in some interleaving; exploration found none:\n%s", res.Describe())
			}
			for _, so := range bad {
				o := so.Outcome
				if len(o.Committed) != 2 || o.Anomaly != "write skew" ||
					o.Final["x"]+o.Final["y"] != -20 {
					t.Fatalf("unexpected non-serializable outcome: %s", o.Signature())
				}
				// The witness schedule must replay to the same anomaly.
				rep, err := Runner{Mode: core.SnapshotFUW, Platform: platform, Items: wsItems}.Run(so.Example)
				if err != nil {
					t.Fatalf("witness %q does not replay: %v", so.Example, err)
				}
				if rep.Report.Serializable {
					t.Fatalf("witness %q replayed serializable", so.Example)
				}
			}
			// Serial-equivalent executions exist too (e.g. t1 fully before
			// t2): the DSL programs write constants, so those can reach the
			// same final state — only the MVSG verdict separates them.
			serial := 0
			for _, so := range res.Outcomes {
				if so.Outcome.Serializable {
					serial++
				}
			}
			if serial == 0 {
				t.Fatalf("some interleavings are serializable; exploration found none:\n%s", res.Describe())
			}
		})
	}
}

// TestExploreWriteSkewPrevented runs the identical programs under 2PL
// and SSI: no interleaving may commit a non-serializable history.
func TestExploreWriteSkewPrevented(t *testing.T) {
	for _, mc := range []modeCase{
		{"2pl", core.Strict2PL, core.PlatformPostgres},
		{"ssi", core.SerializableSI, core.PlatformPostgres},
	} {
		t.Run(mc.name, func(t *testing.T) {
			res, err := Explore(ExploreConfig{
				Mode: mc.mode, Platform: mc.platform,
				Items: wsItems, Txns: wsTxns,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Serializable() {
				t.Fatalf("%s admitted a non-serializable interleaving:\n%s", mc.name, res.Describe())
			}
			if res.Schedules == 0 {
				t.Fatal("no schedules explored")
			}
		})
	}
}

// TestExplorePromotionGap is the exhaustive version of the §II-C gap:
// with t1's read of y promoted to FOR UPDATE, *no* interleaving reaches
// the anomaly on the commercial platform, while on PostgreSQL some
// still do.
func TestExplorePromotionGap(t *testing.T) {
	promoted := []string{"u(y) r(x) w(x,-10)", "r(x) r(y) w(y,-10)"}

	commercial, err := Explore(ExploreConfig{
		Mode: core.SnapshotFUW, Platform: core.PlatformCommercial,
		Items: wsItems, Txns: promoted,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !commercial.Serializable() {
		t.Fatalf("promotion must close the anomaly on the commercial platform:\n%s", commercial.Describe())
	}

	postgres, err := Explore(ExploreConfig{
		Mode: core.SnapshotFUW, Platform: core.PlatformPostgres,
		Items: wsItems, Txns: promoted,
	})
	if err != nil {
		t.Fatal(err)
	}
	if postgres.Serializable() {
		t.Fatalf("on PostgreSQL the committed FOR UPDATE leaves no trace; some interleaving must still reach write skew:\n%s", postgres.Describe())
	}
	for _, so := range postgres.NonSerializable() {
		if so.Outcome.Anomaly != "write skew" {
			t.Fatalf("unexpected anomaly %q in outcome %s", so.Outcome.Anomaly, so.Outcome.Signature())
		}
	}
}

// TestExploreReadOnlyAnomaly explores the Fekete/O'Neil/O'Neil trio
// (withdrawer, depositor, read-only reporter): under plain SI some
// interleaving commits the read-only anomaly — and nothing worse —
// while SSI closes every interleaving.
func TestExploreReadOnlyAnomaly(t *testing.T) {
	if testing.Short() {
		t.Skip("three-transaction exploration (~10k interleavings per mode)")
	}
	trio := []string{"r(x) w(y,-11)", "w(x,20)", "r(x) r(y)"}
	items := map[string]int64{"x": 0, "y": 0}

	si, err := Explore(ExploreConfig{
		Mode: core.SnapshotFUW, Platform: core.PlatformPostgres,
		Items: items, Txns: trio,
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, so := range si.NonSerializable() {
		if so.Outcome.Anomaly != "read-only anomaly" {
			t.Fatalf("unexpected anomaly %q: %s", so.Outcome.Anomaly, so.Outcome.Signature())
		}
		found = true
	}
	if !found {
		t.Fatalf("no interleaving reached the read-only anomaly:\n%s", si.Describe())
	}

	ssi, err := Explore(ExploreConfig{
		Mode: core.SerializableSI, Platform: core.PlatformPostgres,
		Items: items, Txns: trio,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ssi.Serializable() {
		t.Fatalf("SSI admitted a non-serializable interleaving:\n%s", ssi.Describe())
	}
}

// TestExploreConfigErrors covers the guard rails: empty input, explicit
// begin/commit in programs, unknown ops, and the schedule-count cap.
func TestExploreConfigErrors(t *testing.T) {
	if _, err := Explore(ExploreConfig{}); err == nil {
		t.Fatal("empty config should fail")
	}
	if _, err := Explore(ExploreConfig{Txns: []string{"c"}}); err == nil ||
		!strings.Contains(err.Error(), "automatically") {
		t.Fatalf("explicit commit should be rejected, got %v", err)
	}
	if _, err := Explore(ExploreConfig{Txns: []string{"q(x)"}}); err == nil {
		t.Fatal("unknown op should be rejected")
	}
	if _, err := Explore(ExploreConfig{
		Txns: wsTxns, Items: wsItems, MaxSchedules: 5,
	}); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("schedule cap should trip, got %v", err)
	}
}

// The checker cross-validation oracle: an independent, brute-force
// decision procedure for the same question internal/checker answers —
// is the recorded committed history serializable under the MVSG with
// the engine's commit-order (CSN) version order?
//
// Independence is the point. The checker builds explicit edge lists
// with sorted version arrays, binary searches and the graph package's
// cycle detector; the oracle derives its ordering constraints pairwise,
// straight from the MVSG definition, with naive quadratic loops, and
// decides serializability by exhaustively searching for a serial order
// (backtracking over every admissible next transaction). Any divergence
// between the two is an implementation bug in one of them, which the
// fuzzer (crossval_test.go) reports as a minimized counterexample — the
// black-box-checking methodology of Huang et al. applied to our own
// runtime detector.
package detsim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"sicost/internal/checker"
	"sicost/internal/core"
	"sicost/internal/engine"
	"sicost/internal/histories"
)

// SerializableBrute reports whether the committed history is
// serializable: whether a total order of the transactions exists that
// respects every WR, WW and RW constraint of the multi-version
// serialization graph, with versions ordered by CSN. SFU records are
// ignored, mirroring the checker (they create no versions).
//
// The search is exponential in the worst case; callers keep histories
// small (the fuzzer uses <= 8 transactions).
func SerializableBrute(infos []engine.TxInfo) bool {
	n := len(infos)
	if n <= 1 {
		return true
	}
	// pre[i][j]: transaction i must precede transaction j.
	pre := make([][]bool, n)
	for i := range pre {
		pre[i] = make([]bool, n)
	}
	for i, a := range infos {
		for j, b := range infos {
			if i == j {
				continue
			}
			// WW: a created an older version of an item b also wrote.
			for _, wa := range a.Writes {
				for _, wb := range b.Writes {
					if wa.Table == wb.Table && wa.Key == wb.Key && wa.CSN < wb.CSN {
						pre[i][j] = true
					}
				}
			}
			// WR: b read a version a created.
			for _, wa := range a.Writes {
				for _, rb := range b.Reads {
					if wa.Table == rb.Table && wa.Key == rb.Key && wa.CSN == rb.CSN {
						pre[i][j] = true
					}
				}
			}
			// RW: a read a version older than one b created
			// (antidependency: a must come before the overwriter).
			for _, ra := range a.Reads {
				for _, wb := range b.Writes {
					if ra.Table == wb.Table && ra.Key == wb.Key && wb.CSN > ra.CSN {
						pre[i][j] = true
					}
				}
			}
		}
	}
	// Exhaustive serial-order search: place any transaction all of whose
	// predecessors are already placed; backtrack otherwise.
	placed := make([]bool, n)
	var search func(count int) bool
	search = func(count int) bool {
		if count == n {
			return true
		}
		for cand := 0; cand < n; cand++ {
			if placed[cand] {
				continue
			}
			ok := true
			for other := 0; other < n; other++ {
				if !placed[other] && other != cand && pre[other][cand] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			placed[cand] = true
			if search(count + 1) {
				return true
			}
			placed[cand] = false
		}
		return false
	}
	return search(0)
}

// HistoryGen generates random committed histories shaped like what the
// engine actually emits under snapshot isolation: every transaction
// reads from a start snapshot and commits at an increasing CSN —
// exactly the regime where write skew and read-only anomalies live. A
// stale-read knob injects reads of arbitrary (even nonexistent)
// versions so the comparison also covers histories no correct engine
// would produce.
type HistoryGen struct {
	// MaxTxns bounds the transaction count (default 7 — the oracle is
	// factorial in this).
	MaxTxns int
	// Items is the number of distinct items (default 4).
	Items int
	// MaxOps bounds reads plus writes per transaction (default 5).
	MaxOps int
	// StaleProb is the probability a read ignores the snapshot and
	// picks an arbitrary version (default 0.2).
	StaleProb float64
}

func (g HistoryGen) defaults() HistoryGen {
	if g.MaxTxns == 0 {
		g.MaxTxns = 7
	}
	if g.Items == 0 {
		g.Items = 4
	}
	if g.MaxOps == 0 {
		g.MaxOps = 5
	}
	if g.StaleProb == 0 {
		g.StaleProb = 0.2
	}
	return g
}

// Generate produces one random committed history.
func (g HistoryGen) Generate(rng *rand.Rand) []engine.TxInfo {
	g = g.defaults()
	nTxns := 1 + rng.Intn(g.MaxTxns)
	// committed[i] = CSNs of committed versions of item i, ascending;
	// CSN 0 stands for the pre-loaded initial version.
	committed := make([][]uint64, g.Items)
	for i := range committed {
		committed[i] = []uint64{0}
	}
	commitSeq := uint64(0)
	infos := make([]engine.TxInfo, 0, nTxns)
	for t := 0; t < nTxns; t++ {
		// Start snapshot: any commit point so far — concurrent
		// transactions arise when a later one starts below commitSeq.
		start := uint64(rng.Intn(int(commitSeq) + 1))
		info := engine.TxInfo{ID: uint64(t + 1), StartCSN: start}
		nOps := 1 + rng.Intn(g.MaxOps)
		wrote := make(map[int]bool)
		var writes []int
		for o := 0; o < nOps; o++ {
			it := rng.Intn(g.Items)
			if rng.Intn(2) == 0 && !wrote[it] {
				wrote[it] = true
				writes = append(writes, it)
				continue
			}
			if wrote[it] {
				// The engine never records reads of own writes.
				continue
			}
			var csn uint64
			if rng.Float64() < g.StaleProb {
				// Arbitrary version, possibly nonexistent: the checker
				// must cope with reads outside the recorded window.
				csn = uint64(rng.Intn(int(commitSeq) + 2))
			} else {
				// Snapshot read: newest committed version <= start.
				vs := committed[it]
				k := sort.Search(len(vs), func(i int) bool { return vs[i] > start }) - 1
				csn = vs[k]
			}
			info.Reads = append(info.Reads, engine.VersionRef{
				Table: histories.Table, Key: itemKeyVal(it), CSN: csn,
			})
		}
		if len(writes) > 0 {
			commitSeq++
			for _, it := range writes {
				info.Writes = append(info.Writes, engine.VersionRef{
					Table: histories.Table, Key: itemKeyVal(it), CSN: commitSeq,
				})
				committed[it] = append(committed[it], commitSeq)
			}
			info.CommitCSN = commitSeq
		} else {
			info.ReadOnly = true
			info.CommitCSN = start
		}
		info.Tag = fmt.Sprintf("g%d", t+1)
		infos = append(infos, info)
	}
	return infos
}

func itemKeyVal(i int) core.Value {
	return core.Str(string(rune('a' + i)))
}

// CheckerAgrees runs both deciders on the history and reports whether
// they agree, along with each verdict.
func CheckerAgrees(infos []engine.TxInfo) (agree, checkerSays, oracleSays bool) {
	c := checker.New()
	for _, in := range infos {
		c.OnCommit(in)
	}
	checkerSays = c.Analyze().Serializable
	oracleSays = SerializableBrute(infos)
	return checkerSays == oracleSays, checkerSays, oracleSays
}

// MinimizeDivergence shrinks a history on which checker and oracle
// disagree: it greedily drops whole transactions, then individual reads
// and writes, as long as the divergence persists. The returned history
// still diverges.
func MinimizeDivergence(infos []engine.TxInfo) []engine.TxInfo {
	diverges := func(h []engine.TxInfo) bool {
		agree, _, _ := CheckerAgrees(h)
		return !agree
	}
	if !diverges(infos) {
		return infos
	}
	cur := append([]engine.TxInfo(nil), infos...)
	for changed := true; changed; {
		changed = false
		// Drop transactions.
		for i := 0; i < len(cur); i++ {
			trial := append(append([]engine.TxInfo(nil), cur[:i]...), cur[i+1:]...)
			if diverges(trial) {
				cur = trial
				changed = true
				i--
			}
		}
		// Drop individual reads and writes.
		for i := range cur {
			for j := 0; j < len(cur[i].Reads); j++ {
				trial := cloneInfos(cur)
				trial[i].Reads = append(append([]engine.VersionRef(nil), trial[i].Reads[:j]...), trial[i].Reads[j+1:]...)
				if diverges(trial) {
					cur = trial
					changed = true
					j--
				}
			}
			for j := 0; j < len(cur[i].Writes); j++ {
				trial := cloneInfos(cur)
				trial[i].Writes = append(append([]engine.VersionRef(nil), trial[i].Writes[:j]...), trial[i].Writes[j+1:]...)
				if diverges(trial) {
					cur = trial
					changed = true
					j--
				}
			}
		}
	}
	return cur
}

func cloneInfos(infos []engine.TxInfo) []engine.TxInfo {
	out := make([]engine.TxInfo, len(infos))
	for i, in := range infos {
		out[i] = in
		out[i].Reads = append([]engine.VersionRef(nil), in.Reads...)
		out[i].Writes = append([]engine.VersionRef(nil), in.Writes...)
		out[i].SFU = append([]engine.VersionRef(nil), in.SFU...)
	}
	return out
}

// FormatHistory renders a history for failure reports: one line per
// transaction with its snapshot, reads and writes.
func FormatHistory(infos []engine.TxInfo) string {
	var b strings.Builder
	for _, in := range infos {
		fmt.Fprintf(&b, "T%d[start=%d,commit=%d]", in.ID, in.StartCSN, in.CommitCSN)
		for _, r := range in.Reads {
			fmt.Fprintf(&b, " r(%s@%d)", r.Key.S, r.CSN)
		}
		for _, w := range in.Writes {
			fmt.Fprintf(&b, " w(%s@%d)", w.Key.S, w.CSN)
		}
		b.WriteString("\n")
	}
	return b.String()
}

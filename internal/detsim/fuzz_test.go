package detsim

import (
	"testing"

	"sicost/internal/core"
	"sicost/internal/histories"
)

// FuzzCheckerHistories drives arbitrary interleaving scripts through the
// deterministic scheduler under every concurrency-control mode and
// cross-validates the checker's verdict on the resulting committed
// history against the brute-force oracle. The corpus is seeded with the
// paper's anomaly interleavings; the fuzzer mutates them into the
// blocked/woken/deadlocked corners of the lock paths.
//
// Run with: go test -fuzz FuzzCheckerHistories ./internal/detsim
func FuzzCheckerHistories(f *testing.F) {
	for _, s := range histories.PaperSchedules() {
		f.Add(s.Script)
	}
	f.Add("b1 b2 r1(x) w2(x,1) c2 w1(y,5) c1 b3 r3(y) c3")
	f.Add("b1 u1(x) b2 u2(y) w1(y,1) w2(x,1) c1 c2")
	f.Add("b1 w1(q,1) c1") // unknown item: reads/writes fail cleanly

	f.Fuzz(func(t *testing.T, script string) {
		if len(script) > 256 {
			return
		}
		steps, err := histories.Parse(script)
		if err != nil {
			return
		}
		// Bound the history so the factorial oracle stays cheap.
		if len(steps) > 40 {
			return
		}
		txns := map[int]bool{}
		for _, s := range steps {
			txns[s.Txn] = true
		}
		if len(txns) > 6 {
			return
		}
		for _, mc := range []struct {
			mode     core.CCMode
			platform core.Platform
		}{
			{core.SnapshotFUW, core.PlatformPostgres},
			{core.SnapshotFUW, core.PlatformCommercial},
			{core.Strict2PL, core.PlatformPostgres},
			{core.SerializableSI, core.PlatformPostgres},
		} {
			res, err := Runner{Mode: mc.mode, Platform: mc.platform}.Run(script)
			if err != nil {
				// Structurally invalid under this mode (e.g. a step of a
				// blocked transaction): not a history, nothing to check.
				continue
			}
			agree, checkerSays, oracleSays := CheckerAgrees(res.Infos)
			if !agree {
				min := MinimizeDivergence(res.Infos)
				t.Fatalf("mode=%v platform=%v script=%q: checker=%v oracle=%v\nminimized:\n%s",
					mc.mode, mc.platform, script, checkerSays, oracleSays, FormatHistory(min))
			}
			if checkerSays != res.Report.Serializable {
				t.Fatalf("mode=%v platform=%v script=%q: replayed verdict %v != recorded %v",
					mc.mode, mc.platform, script, checkerSays, res.Report.Serializable)
			}
		}
	})
}

// Package detsim is the deterministic simulation subsystem: it drives N
// scripted transactions through an exact statement-level interleaving of
// the engine, with every block, wakeup and abort attributed to the step
// that caused it — no wall-clock grace periods. It complements the
// stochastic workload driver the way replayable unit tests complement a
// fuzzer: every anomaly interleaving of the paper (§II) becomes a
// reproducible test across all concurrency-control modes.
//
// The scheduler dispatches one step at a time to per-transaction
// goroutines and then waits until the system is quiescent: the step
// either completed, or the engine's WaitObserver hook reported that its
// transaction blocked on a row lock. A later step that releases the lock
// wakes the blocked transaction synchronously (the engine posts the wake
// before the releasing operation returns), so the scheduler knows
// deterministically which pending steps to collect before moving on.
//
// On top of the scheduler, Explore (enumerate.go) exhaustively runs all
// interleavings of small transaction sets, and the checker oracle
// (oracle.go) cross-validates internal/checker against a brute-force
// serialization-order search.
package detsim

import (
	"fmt"
	"sort"
	"strings"

	"sicost/internal/checker"
	"sicost/internal/core"
	"sicost/internal/engine"
	"sicost/internal/faultinject"
	"sicost/internal/histories"
	"sicost/internal/onlinecheck"
	"sicost/internal/trace"
)

// Status is how one dispatched step ended.
type Status uint8

// Step statuses.
const (
	// OK: the step completed successfully (possibly after blocking).
	OK Status = iota
	// Failed: the step returned an error (possibly after blocking).
	Failed
	// Stuck: the step blocked and was never woken before the schedule
	// ended; the harness force-aborted its transaction.
	Stuck
)

// String names the status.
func (s Status) String() string {
	switch s {
	case OK:
		return "ok"
	case Failed:
		return "failed"
	default:
		return "stuck"
	}
}

// StepResult records one dispatched step.
type StepResult struct {
	Step   histories.Step
	Status Status
	// Blocked reports whether the step blocked on a row lock before
	// resolving — the FUW/2PL wait paths the paper's interleavings
	// exercise.
	Blocked bool
	// Err is set when Status != OK.
	Err error
	// Val is the value returned by a completed read or select-for-update.
	Val int64
}

// Result is the execution record of one deterministic schedule.
type Result struct {
	Steps []StepResult
	// Committed reports, per script transaction number, whether its
	// commit succeeded.
	Committed map[int]bool
	// Errs maps script transaction numbers to the error that terminated
	// them (absent for clean commits; nil-valued for explicit aborts).
	Errs map[int]error
	// Report is the serializability analysis of everything that
	// committed (MVSG over the recorded reads/writes).
	Report *checker.Report
	// Online is the online windowed checker's verdict over the
	// schedule's trace stream (Runner.OnlineCheck). Cross-validating it
	// against Report is how the exhaustive interleaving suite proves
	// the incremental checker equivalent to the post-hoc analysis.
	Online *onlinecheck.Report
	// Infos are the raw commit records the Report was computed from
	// (input to the brute-force oracle).
	Infos []engine.TxInfo
	// Final holds the final committed value of every item.
	Final map[string]int64
	// Contention is the engine's lock/sequencer counter snapshot after
	// the schedule ran: in a deterministic schedule, Lock.Waits equals
	// the number of steps that blocked (plus FUW re-waits), making the
	// sharded lock table's accounting directly checkable.
	Contention engine.ContentionStats
	// HeldLocks and QueuedLocks audit the lock table after every
	// transaction has finished; a non-zero value means an abort path —
	// injected or organic — leaked a grant or stranded a waiter.
	HeldLocks, QueuedLocks int
	// ReplaySkipped counts dispatch slots RunTrace dropped because the
	// replayed execution diverged from the recording (zero elsewhere).
	ReplaySkipped int
}

// Value returns the value read by the i-th dispatched step.
func (r *Result) Value(i int) int64 { return r.Steps[i].Val }

// Runner executes schedules deterministically against fresh engines.
type Runner struct {
	Mode     core.CCMode
	Platform core.Platform
	// Items pre-loads the single history table (default x=y=z=0).
	Items map[string]int64
	// Faults, when set, wires the engine's fault points to this registry,
	// making injected failures part of the deterministic schedule. Note
	// the loader's seed commit hits commit-path points too: gate specs
	// with After to skip it.
	Faults *faultinject.Registry
	// Tracer, when set, records the schedule's transaction-lifecycle
	// events (internal/trace). It is installed only after the loader's
	// seed transaction commits, so the stream holds scripted traffic
	// exclusively — pair with trace.CounterClock for runs whose JSONL
	// dump is byte-stable (schedules without lock waits; a blocked
	// step's wait/wake events race the next dispatched step's).
	Tracer *trace.Recorder
	// OnlineCheck additionally runs the schedule's trace stream through
	// the online windowed checker (internal/onlinecheck) and stores the
	// verdict in Result.Online. When Tracer is nil a private
	// deterministic recorder is installed; when Tracer is set its
	// stream is consumed (drained) at finalize. SI-rule checking is on
	// for the snapshot modes and off for Strict2PL.
	OnlineCheck bool
}

// Run parses the script (the histories DSL) and executes it step by
// step: step i+1 is dispatched only once step i has completed or
// provably blocked. It returns an error for structurally invalid
// schedules (a step of a still-blocked transaction, use before begin).
func (r Runner) Run(script string) (*Result, error) {
	steps, err := histories.Parse(script)
	if err != nil {
		return nil, err
	}
	progs := make(map[int][]histories.Step)
	var order []int
	for _, s := range steps {
		progs[s.Txn] = append(progs[s.Txn], s)
		order = append(order, s.Txn)
	}
	for txn, prog := range progs {
		if prog[0].Kind != histories.OpBegin {
			return nil, fmt.Errorf("detsim: transaction %d used before begin", txn)
		}
	}
	sc, err := newSched(r, progs)
	if err != nil {
		return nil, err
	}
	defer sc.close()
	for _, t := range order {
		if err := sc.dispatchNext(t); err != nil {
			return nil, err
		}
	}
	sc.finalize()
	return sc.res, nil
}

// RunSchedule runs pre-parsed per-transaction programs under an explicit
// dispatch order (the enumeration engine's entry point). The order may be
// a prefix of a complete schedule; runnable transaction numbers at the
// end are returned alongside. When finalize is true, leftover
// transactions are aborted and the checker report computed.
func (r Runner) RunSchedule(progs map[int][]histories.Step, order []int, finalize bool) (*Result, []int, error) {
	sc, err := newSched(r, progs)
	if err != nil {
		return nil, nil, err
	}
	defer sc.close()
	for _, t := range order {
		if err := sc.dispatchNext(t); err != nil {
			return nil, nil, err
		}
	}
	runnable := sc.runnable()
	if finalize {
		sc.finalize()
	}
	return sc.res, runnable, nil
}

// event is one lock-table notification.
type event struct {
	txID uint64
	wake bool
	err  error
}

// txnState tracks one scripted transaction.
type txnState struct {
	prog  []histories.Step
	next  int // index of the next undispatched step
	tx    *engine.Tx
	steps chan histories.Step
	// pending is the res.Steps index of the dispatched, unresolved step
	// (-1 when none).
	pending int
	blocked bool
	// finished: committed, aborted, or auto-aborted after a retriable
	// failure; no further steps will be dispatched by Explore.
	finished bool
}

// completion carries a finished step back to the scheduler.
type completion struct {
	txn int
	sr  StepResult
}

// sched is one schedule execution.
type sched struct {
	r           Runner
	db          *engine.DB
	chk         *checker.Checker
	txns        map[int]*txnState
	byID        map[uint64]int
	events      chan event
	completions chan completion
	res         *Result
	// onlineRec is the recorder whose stream feeds the online checker
	// at finalize (Runner.OnlineCheck): the caller's Tracer, or a small
	// private deterministic one.
	onlineRec *trace.Recorder
}

// waitObs adapts the scheduler to engine.WaitObserver. The hooks run
// inside the lock table; they only post to a buffered channel.
type waitObs sched

func (o *waitObs) OnTxWait(txID uint64, table string, key core.Value) {
	o.events <- event{txID: txID, wake: false}
}

func (o *waitObs) OnTxWake(txID uint64, table string, key core.Value, err error) {
	o.events <- event{txID: txID, wake: true, err: err}
}

func newSched(r Runner, progs map[int][]histories.Step) (*sched, error) {
	db := engine.Open(engine.Config{Mode: r.Mode, Platform: r.Platform, Faults: r.Faults})
	schema := &core.Schema{
		Name: histories.Table,
		Columns: []core.Column{
			{Name: "K", Kind: core.KindString, NotNull: true},
			{Name: "V", Kind: core.KindInt, NotNull: true},
		},
		PK: 0,
	}
	if err := db.CreateTable(schema); err != nil {
		db.Close()
		return nil, err
	}
	items := r.Items
	if items == nil {
		items = map[string]int64{"x": 0, "y": 0, "z": 0}
	}
	seed := db.Begin()
	keys := make([]string, 0, len(items))
	for k := range items {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := seed.Insert(histories.Table, core.Record{core.Str(k), core.Int(items[k])}); err != nil {
			seed.Abort()
			db.Close()
			return nil, err
		}
	}
	if err := seed.Commit(); err != nil {
		db.Close()
		return nil, err
	}

	chk := checker.New()
	db.SetObserver(chk)
	sc := &sched{
		r:    r,
		db:   db,
		chk:  chk,
		txns: make(map[int]*txnState, len(progs)),
		byID: make(map[uint64]int, len(progs)),
		// Sized so hook posts can never block the lock table: every
		// dispatched step resolves (draining its events) before the
		// next is dispatched, and one step generates at most a handful
		// of wait/wake notifications.
		events:      make(chan event, 1024),
		completions: make(chan completion, len(progs)),
		res: &Result{
			Committed: make(map[int]bool),
			Errs:      make(map[int]error),
		},
	}
	// The loader committed before the observer hooks were of interest;
	// exclude it from the analyzed window.
	chk.Reset()
	if r.Tracer != nil {
		db.SetTracer(r.Tracer)
	}
	if r.OnlineCheck {
		sc.onlineRec = r.Tracer
		if sc.onlineRec == nil {
			// One small shard: strict global FIFO, and cheap enough to
			// allocate per schedule inside Explore's exhaustive DFS.
			sc.onlineRec = trace.New(trace.Options{Shards: 1, ShardCap: 1 << 12, Clock: trace.CounterClock()})
			db.SetTracer(sc.onlineRec)
		}
	}
	db.SetWaitObserver((*waitObs)(sc))
	for txn, prog := range progs {
		sc.txns[txn] = &txnState{prog: prog, pending: -1}
	}
	return sc, nil
}

// close tears the schedule down. On error paths some transaction may
// still be blocked in the engine; teardown unwinds those before the
// step channels are closed, so no goroutine is left stranded.
func (sc *sched) close() {
	sc.teardown()
	sc.db.SetWaitObserver(nil)
	for _, st := range sc.txns {
		if st.steps != nil {
			close(st.steps)
		}
	}
	sc.db.Close()
}

// teardown aborts every live transaction without ever racing a
// transaction's own goroutine: only transactions with no in-flight step
// are aborted directly (their goroutine is parked on the step channel).
// Aborting a lock holder wakes its blocked waiters, whose steps then
// complete and are collected here — wait chains unwind one abort at a
// time. Chains cannot be circular (the lock table denies deadlocks at
// acquire time), so this terminates.
func (sc *sched) teardown() {
	for {
		// Absorb posted notifications.
		for {
			select {
			case ev := <-sc.events:
				sc.handleEvent(ev)
				continue
			default:
			}
			break
		}
		// Abort idle transactions, in ascending order for reproducibility.
		var txns []int
		for txn := range sc.txns {
			txns = append(txns, txn)
		}
		sort.Ints(txns)
		live, aborted := false, false
		for _, txn := range txns {
			st := sc.txns[txn]
			if st.tx == nil || st.finished {
				continue
			}
			live = true
			if st.pending < 0 {
				st.tx.Abort()
				st.finished = true
				aborted = true
				if _, seen := sc.res.Errs[txn]; !seen {
					sc.res.Errs[txn] = nil
				}
			}
		}
		if !live {
			return
		}
		if aborted {
			// The aborts may have woken blocked steps; re-drain and
			// re-examine before waiting.
			continue
		}
		// Every live transaction has a step in flight; wait for one to
		// resolve (its lock holder died above, or it is still running).
		select {
		case c := <-sc.completions:
			sc.resolve(c)
		case ev := <-sc.events:
			sc.handleEvent(ev)
		}
	}
}

// dispatchNext runs the next undispatched step of txn and settles the
// system (collects the completion, or records a block; collects any
// wakes the step triggered).
func (sc *sched) dispatchNext(txn int) error {
	st := sc.txns[txn]
	if st == nil {
		return fmt.Errorf("detsim: unknown transaction %d", txn)
	}
	if st.blocked {
		return fmt.Errorf("detsim: transaction %d is blocked; schedule cannot dispatch %v", txn, st.prog[st.next])
	}
	if st.next >= len(st.prog) {
		return fmt.Errorf("detsim: transaction %d has no steps left", txn)
	}
	step := st.prog[st.next]
	st.next++

	if step.Kind == histories.OpBegin {
		if st.tx != nil {
			return fmt.Errorf("detsim: transaction %d begun twice", txn)
		}
		// Begin never blocks; run it inline so the snapshot point is
		// exactly this schedule position.
		st.tx = sc.db.Begin()
		st.tx.SetTag(fmt.Sprintf("t%d", txn))
		sc.byID[st.tx.ID()] = txn
		st.steps = make(chan histories.Step)
		go func(t int, s *txnState) {
			for stp := range s.steps {
				sc.completions <- completion{txn: t, sr: execStep(s.tx, stp)}
			}
		}(txn, st)
		sc.res.Steps = append(sc.res.Steps, StepResult{Step: step, Status: OK})
		return nil
	}
	if st.tx == nil {
		return fmt.Errorf("detsim: transaction %d used before begin", txn)
	}
	st.pending = len(sc.res.Steps)
	sc.res.Steps = append(sc.res.Steps, StepResult{Step: step})
	st.steps <- step
	return sc.settle()
}

// settle waits until no transaction is actively executing a step: every
// dispatched step has either completed or blocked. Wakes triggered by a
// completing step re-activate their transaction, so settle keeps
// collecting until the system is quiescent. Determinism: wake events are
// posted by the engine before the causing operation returns, so they are
// observable in the events channel by the time that step's completion is
// received — nothing here depends on timing.
func (sc *sched) settle() error {
	for {
		// Absorb all notifications already posted.
		for {
			select {
			case ev := <-sc.events:
				sc.handleEvent(ev)
				continue
			default:
			}
			break
		}
		if !sc.anyRunning() {
			return nil
		}
		select {
		case c := <-sc.completions:
			sc.resolve(c)
		case ev := <-sc.events:
			sc.handleEvent(ev)
		}
	}
}

// anyRunning reports whether some dispatched step is neither resolved
// nor blocked.
func (sc *sched) anyRunning() bool {
	for _, st := range sc.txns {
		if st.pending >= 0 && !st.blocked {
			return true
		}
	}
	return false
}

func (sc *sched) handleEvent(ev event) {
	txn, ok := sc.byID[ev.txID]
	if !ok {
		return
	}
	st := sc.txns[txn]
	if ev.wake {
		// Granted or ejected: the pending step is running again and
		// will deliver its completion.
		st.blocked = false
		return
	}
	st.blocked = true
	if st.pending >= 0 {
		sc.res.Steps[st.pending].Blocked = true
	}
}

// resolve records a completed step and applies the session discipline: a
// retriable failure aborts the whole transaction immediately (as the
// PostgreSQL client discipline the benchmark uses does), releasing its
// locks — which may wake other blocked steps, collected by settle.
func (sc *sched) resolve(c completion) {
	st := sc.txns[c.txn]
	idx := st.pending
	st.pending = -1
	st.blocked = false
	sr := &sc.res.Steps[idx]
	if sr.Status == Stuck {
		// The step was ejected by finalize's force-abort; keep the Stuck
		// marker, only record what the ejection returned.
		sr.Err = c.sr.Err
		return
	}
	sr.Status, sr.Err, sr.Val = c.sr.Status, c.sr.Err, c.sr.Val

	switch sr.Step.Kind {
	case histories.OpCommit:
		st.finished = true
		if sr.Err == nil {
			sc.res.Committed[c.txn] = true
		} else if _, seen := sc.res.Errs[c.txn]; !seen {
			// Keep the original failure when this commit is the trailing
			// "COMMIT acts as ROLLBACK" of an already-failed transaction.
			sc.res.Errs[c.txn] = sr.Err
		}
	case histories.OpAbort:
		st.finished = true
		if _, seen := sc.res.Errs[c.txn]; !seen {
			sc.res.Errs[c.txn] = nil
		}
	default:
		if sr.Err != nil && core.IsRetriable(sr.Err) {
			sc.res.Errs[c.txn] = sr.Err
			st.tx.Abort()
			st.finished = true
		}
	}
}

// runnable returns the transactions a schedule may dispatch next, in
// ascending order: not finished, not blocked, with steps remaining.
func (sc *sched) runnable() []int {
	var out []int
	for txn, st := range sc.txns {
		if !st.finished && !st.blocked && st.pending < 0 && st.next < len(st.prog) {
			out = append(out, txn)
		}
	}
	sort.Ints(out)
	return out
}

// finalize marks still-blocked steps Stuck (the schedule ended without
// waking them), tears the remaining transactions down, then computes
// the checker report and final item values.
func (sc *sched) finalize() {
	for _, st := range sc.txns {
		if st.blocked && st.pending >= 0 {
			sc.res.Steps[st.pending].Status = Stuck
		}
	}
	sc.teardown()

	sc.res.HeldLocks, sc.res.QueuedLocks = sc.db.LockAudit()
	sc.res.Infos = sc.chk.Infos()
	sc.res.Report = sc.chk.Analyze()
	if sc.onlineRec != nil {
		sc.res.Online = onlinecheck.Run(sc.onlineRec.Drain(),
			onlinecheck.Config{SIRules: sc.r.Mode != core.Strict2PL})
	}
	sc.res.Contention = sc.db.Contention()
	sc.res.Final = make(map[string]int64)
	_ = sc.db.ScanLatest(histories.Table, func(key core.Value, rec core.Record) bool {
		sc.res.Final[key.S] = rec[1].Int64()
		return true
	})
}

// execStep runs one step on its transaction's goroutine.
func execStep(tx *engine.Tx, s histories.Step) StepResult {
	sr := StepResult{Step: s, Status: OK}
	switch s.Kind {
	case histories.OpRead:
		rec, err := tx.Get(histories.Table, core.Str(s.Item))
		if err != nil {
			sr.Status, sr.Err = Failed, err
			return sr
		}
		sr.Val = rec[1].Int64()
	case histories.OpWrite:
		if err := tx.Update(histories.Table, core.Str(s.Item),
			core.Record{core.Str(s.Item), core.Int(s.Val)}); err != nil {
			sr.Status, sr.Err = Failed, err
		}
	case histories.OpSFU:
		rec, err := tx.ReadForUpdate(histories.Table, core.Str(s.Item))
		if err != nil {
			sr.Status, sr.Err = Failed, err
			return sr
		}
		sr.Val = rec[1].Int64()
	case histories.OpCommit:
		if err := tx.Commit(); err != nil {
			sr.Status, sr.Err = Failed, err
		}
	case histories.OpAbort:
		tx.Abort()
	}
	return sr
}

// Describe renders the execution compactly: one line per step with its
// outcome, then per-transaction fates.
func (r *Result) Describe() string {
	var b strings.Builder
	for _, sr := range r.Steps {
		fmt.Fprintf(&b, "%s", formatStep(sr.Step))
		if sr.Blocked {
			b.WriteString(" [blocked]")
		}
		switch {
		case sr.Status == Stuck:
			b.WriteString(" -> stuck")
		case sr.Err != nil:
			fmt.Fprintf(&b, " -> %v", sr.Err)
		case sr.Step.Kind == histories.OpRead || sr.Step.Kind == histories.OpSFU:
			fmt.Fprintf(&b, " -> %d", sr.Val)
		}
		b.WriteString("\n")
	}
	var txns []int
	for txn := range r.Errs {
		txns = append(txns, txn)
	}
	for txn := range r.Committed {
		if _, dup := r.Errs[txn]; !dup {
			txns = append(txns, txn)
		}
	}
	sort.Ints(txns)
	for _, txn := range txns {
		if r.Committed[txn] {
			fmt.Fprintf(&b, "t%d: committed\n", txn)
		} else if err := r.Errs[txn]; err != nil {
			fmt.Fprintf(&b, "t%d: aborted (%v)\n", txn, err)
		} else {
			fmt.Fprintf(&b, "t%d: aborted\n", txn)
		}
	}
	return b.String()
}

func formatStep(s histories.Step) string {
	switch s.Kind {
	case histories.OpBegin:
		return fmt.Sprintf("b%d", s.Txn)
	case histories.OpRead:
		return fmt.Sprintf("r%d(%s)", s.Txn, s.Item)
	case histories.OpWrite:
		return fmt.Sprintf("w%d(%s,%d)", s.Txn, s.Item, s.Val)
	case histories.OpSFU:
		return fmt.Sprintf("u%d(%s)", s.Txn, s.Item)
	case histories.OpCommit:
		return fmt.Sprintf("c%d", s.Txn)
	default:
		return fmt.Sprintf("a%d", s.Txn)
	}
}

package detsim

import (
	"errors"
	"sync"
	"testing"

	"sicost/internal/core"
	"sicost/internal/engine"
	"sicost/internal/faultinject"
)

// TestInjectedCommitFaultWakesWaiters is the deterministic replay of the
// chaos harness's central claim: a commit killed at the stamp point (the
// last clean-abort site, before the CSN exists) releases its locks, its
// blocked waiter wakes and commits in its place, and the lock table ends
// the schedule empty.
func TestInjectedCommitFaultWakesWaiters(t *testing.T) {
	for _, mode := range []core.CCMode{core.SnapshotFUW, core.Strict2PL, core.SerializableSI} {
		t.Run(mode.String(), func(t *testing.T) {
			reg := faultinject.New(1)
			// After:1 skips the loader's seed commit — the first hit on
			// the stamp point — so the fault lands exactly on c1.
			if err := reg.Arm(faultinject.Spec{
				Point:  engine.FaultCommitStamp,
				After:  1,
				Count:  1,
				Action: faultinject.ActError,
			}); err != nil {
				t.Fatal(err)
			}
			r := Runner{Mode: mode, Faults: reg}
			res, err := r.Run("b1 w1(x,1) b2 w2(x,2) c1 c2")
			if err != nil {
				t.Fatal(err)
			}
			if res.Committed[1] {
				t.Fatalf("t1 committed past an injected stamp fault:\n%s", res.Describe())
			}
			if !errors.Is(res.Errs[1], core.ErrInjected) {
				t.Fatalf("t1 error = %v, want ErrInjected", res.Errs[1])
			}
			if core.ClassifyAbort(res.Errs[1]) != core.AbortInjected {
				t.Fatalf("t1 abort class = %v", core.ClassifyAbort(res.Errs[1]))
			}
			// w2 blocked on t1's lock; the injected abort must wake it and
			// let t2 commit.
			if !res.Steps[3].Blocked {
				t.Fatalf("w2 never blocked:\n%s", res.Describe())
			}
			if !res.Committed[2] {
				t.Fatalf("t2 did not commit after t1's injected abort:\n%s", res.Describe())
			}
			if res.Final["x"] != 2 {
				t.Fatalf("final x = %d, want 2", res.Final["x"])
			}
			if res.HeldLocks != 0 || res.QueuedLocks != 0 {
				t.Fatalf("lock leak after faulted schedule: %d held, %d queued",
					res.HeldLocks, res.QueuedLocks)
			}
			if !res.Report.Serializable {
				t.Fatalf("surviving history not serializable: %s", res.Report.Describe())
			}
			if reg.Fired(engine.FaultCommitStamp) != 1 {
				t.Fatalf("stamp fault fired %d times, want 1", reg.Fired(engine.FaultCommitStamp))
			}
		})
	}
}

// TestInjectedFaultScheduleDeterministic replays the same faulted
// schedule twice and demands identical step-level outcomes.
func TestInjectedFaultScheduleDeterministic(t *testing.T) {
	run := func() *Result {
		reg := faultinject.New(99)
		if err := reg.Arm(faultinject.Spec{
			Point: engine.FaultCommitStamp, After: 1, Count: 1, Action: faultinject.ActError,
		}); err != nil {
			t.Fatal(err)
		}
		res, err := Runner{Mode: core.SnapshotFUW, Faults: reg}.
			Run("b1 w1(x,1) b2 w2(y,2) c1 c2")
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Describe() != b.Describe() {
		t.Fatalf("faulted schedule diverged:\n--- first\n%s--- second\n%s", a.Describe(), b.Describe())
	}
}

// TestFaultedCommitStress hammers one engine with concurrent writers
// while a mix of error, panic and delay faults fires on the commit path;
// run under -race (the Makefile's race/stress targets) it doubles as a
// data-race probe of the fault registry and the abort paths. The lock
// table must end empty no matter which commits were killed.
func TestFaultedCommitStress(t *testing.T) {
	reg := faultinject.New(7)
	db := engine.Open(engine.Config{Mode: core.SnapshotFUW, Platform: core.PlatformPostgres, Faults: reg})
	schema := &core.Schema{
		Name: "S",
		Columns: []core.Column{
			{Name: "K", Kind: core.KindInt, NotNull: true},
			{Name: "V", Kind: core.KindInt, NotNull: true},
		},
		PK: 0,
	}
	if err := db.CreateTable(schema); err != nil {
		t.Fatal(err)
	}
	seedKeys := 8
	seed := db.Begin()
	for k := 0; k < seedKeys; k++ {
		if err := seed.Insert("S", core.Record{core.Int(int64(k)), core.Int(0)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}
	// Arm only after the seed commit so the loader runs fault-free.
	for _, s := range []faultinject.Spec{
		{Point: engine.FaultCommitStamp, Rate: 0.2, Action: faultinject.ActError},
		{Point: engine.FaultLockAcquire, Rate: 0.05, Action: faultinject.ActError},
	} {
		if err := reg.Arm(s); err != nil {
			t.Fatal(err)
		}
	}

	workers, iters := 8, 200
	if testing.Short() {
		workers, iters = 4, 50
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				tx := db.Begin()
				k := core.Int(int64((w + i) % seedKeys))
				if err := tx.Update("S", k, core.Record{k, core.Int(int64(i))}); err != nil {
					tx.Abort()
					continue
				}
				if err := tx.Commit(); err != nil {
					tx.Abort()
				}
			}
		}(w)
	}
	wg.Wait()
	if held, queued := db.LockAudit(); held != 0 || queued != 0 {
		t.Fatalf("lock leak under commit faults: %d held, %d queued", held, queued)
	}
	if reg.Fired(engine.FaultCommitStamp) == 0 {
		t.Fatal("stamp fault never fired under stress")
	}
	db.Close()
}

package detsim

import (
	"testing"

	"sicost/internal/core"
	"sicost/internal/histories"
)

// TestContentionAccountingDeterministic cross-checks the sharded lock
// table's counters against the deterministic scheduler's own view of the
// same schedule: every step the harness observed blocking must appear as
// a lock-table wait (FUW waiters that are woken and re-wait on a newer
// version can add more), and a schedule with no blocking steps must
// report zero waits.
func TestContentionAccountingDeterministic(t *testing.T) {
	t.Run("blocking-2pl", func(t *testing.T) {
		// Under strict 2PL the write-skew script blocks w1(x) behind t2's
		// shared lock and kills t2 by deadlock detection.
		res := mustRun(t, histories.WriteSkew, modeCase{"2pl", core.Strict2PL, core.PlatformPostgres})
		blocked := 0
		for _, s := range res.Steps {
			if s.Blocked {
				blocked++
			}
		}
		if blocked == 0 {
			t.Fatal("expected at least one blocked step under 2PL")
		}
		c := res.Contention
		if c.Lock.Waits < uint64(blocked) {
			t.Fatalf("lock table recorded %d waits, scheduler observed %d blocked steps",
				c.Lock.Waits, blocked)
		}
		if c.Lock.Deadlocks != 1 {
			t.Fatalf("deadlocks = %d, want exactly 1 (t2 is the victim)", c.Lock.Deadlocks)
		}
		sum := uint64(0)
		for _, v := range c.Lock.PerStripeWaits {
			sum += v
		}
		if sum != c.Lock.Waits {
			t.Fatalf("per-stripe waits sum %d != total %d", sum, c.Lock.Waits)
		}
	})

	t.Run("non-blocking-si", func(t *testing.T) {
		// Under plain SI the same script never blocks (disjoint write
		// sets): the lock table must report zero queue events.
		res := mustRun(t, histories.WriteSkew, modeCase{"si", core.SnapshotFUW, core.PlatformPostgres})
		for i, s := range res.Steps {
			if s.Blocked {
				t.Fatalf("step %d unexpectedly blocked under SI", i)
			}
		}
		c := res.Contention
		if c.Lock.Waits != 0 || c.Lock.Deadlocks != 0 {
			t.Fatalf("SI write-skew run should be wait-free, got %+v", c.Lock)
		}
		if c.Lock.FastPath == 0 {
			t.Fatal("writes must appear as fast-path acquires")
		}
	})
}

package checker

import (
	"strings"
	"testing"

	"sicost/internal/core"
	"sicost/internal/engine"
)

func kvSchema(name string) *core.Schema {
	return &core.Schema{
		Name: name,
		Columns: []core.Column{
			{Name: "K", Kind: core.KindInt, NotNull: true},
			{Name: "V", Kind: core.KindInt, NotNull: true},
		},
		PK: 0,
	}
}

func kv(k, v int64) core.Record { return core.Record{core.Int(k), core.Int(v)} }

// newDB creates an SI database with table T = {(1,0),(2,0)} and a fresh
// checker recording from after the load.
func newDB(t *testing.T, mode core.CCMode) (*engine.DB, *Checker) {
	t.Helper()
	db := engine.Open(engine.Config{Mode: mode, Platform: core.PlatformPostgres})
	t.Cleanup(db.Close)
	if err := db.CreateTable(kvSchema("T")); err != nil {
		t.Fatal(err)
	}
	seed := db.Begin()
	for k := int64(1); k <= 2; k++ {
		if err := seed.Insert("T", kv(k, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}
	c := New()
	db.SetObserver(c)
	return db, c
}

func get(t *testing.T, tx *engine.Tx, k int64) int64 {
	t.Helper()
	rec, err := tx.Get("T", core.Int(k))
	if err != nil {
		t.Fatal(err)
	}
	return rec[1].Int64()
}

func set(t *testing.T, tx *engine.Tx, k, v int64) {
	t.Helper()
	if err := tx.Update("T", core.Int(k), kv(k, v)); err != nil {
		t.Fatal(err)
	}
}

func commit(t *testing.T, tx *engine.Tx) {
	t.Helper()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestSerialHistoryIsSerializable(t *testing.T) {
	db, c := newDB(t, core.SnapshotFUW)
	for i := int64(0); i < 5; i++ {
		tx := db.Begin()
		v := get(t, tx, 1)
		set(t, tx, 1, v+1)
		commit(t, tx)
	}
	rep := c.Analyze()
	if !rep.Serializable {
		t.Fatalf("serial history flagged: %s", rep.Describe())
	}
	if rep.Txns != 5 {
		t.Fatalf("txns = %d", rep.Txns)
	}
	if rep.Classify() != "serializable" {
		t.Fatal("classification")
	}
	if !strings.Contains(rep.Describe(), "serializable") {
		t.Fatal("describe")
	}
}

func TestWriteSkewDetected(t *testing.T) {
	db, c := newDB(t, core.SnapshotFUW)

	t1 := db.Begin()
	t1.SetTag("left")
	t2 := db.Begin()
	t2.SetTag("right")
	_ = get(t, t1, 1)
	_ = get(t, t1, 2)
	_ = get(t, t2, 1)
	_ = get(t, t2, 2)
	set(t, t1, 1, -1)
	set(t, t2, 2, -1)
	commit(t, t1)
	commit(t, t2)

	rep := c.Analyze()
	if rep.Serializable {
		t.Fatalf("write skew missed: %s", rep.Describe())
	}
	if got := rep.Classify(); got != "write skew" {
		t.Fatalf("Classify = %q", got)
	}
	desc := rep.Describe()
	for _, want := range []string{"NOT serializable", "write skew", "left", "right", "rw"} {
		if !strings.Contains(desc, want) {
			t.Fatalf("describe missing %q:\n%s", want, desc)
		}
	}
}

// TestReadOnlyAnomalyDetected reproduces Fekete/O'Neil/O'Neil (SIGMOD
// Record 2004), the anomaly SmallBank §III-C is built on: a read-only
// transaction makes an otherwise-serializable pair non-serializable.
func TestReadOnlyAnomalyDetected(t *testing.T) {
	db, c := newDB(t, core.SnapshotFUW)

	// Row 1 is the savings account (x), row 2 checking (y); both 0.
	t1 := db.Begin() // WriteCheck: sees x+y=0 < 10, charges penalty
	t1.SetTag("WC")
	t2 := db.Begin() // TransactSaving: deposit 20 into savings
	t2.SetTag("TS")

	_ = get(t, t2, 1)
	set(t, t2, 1, 20)
	commit(t, t2)

	t3 := db.Begin() // Balance: sees TS's deposit but not WC's check
	t3.SetTag("Bal")
	if got := get(t, t3, 1); got != 20 {
		t.Fatalf("Bal sees x=%d, want 20", got)
	}
	if got := get(t, t3, 2); got != 0 {
		t.Fatalf("Bal sees y=%d, want 0", got)
	}
	commit(t, t3)

	// WC still runs on the old snapshot: total 0 < 10 => penalty.
	if x, y := get(t, t1, 1), get(t, t1, 2); x != 0 || y != 0 {
		t.Fatalf("WC snapshot = %d,%d", x, y)
	}
	set(t, t1, 2, -11)
	commit(t, t1)

	rep := c.Analyze()
	if rep.Serializable {
		t.Fatalf("read-only anomaly missed: %s", rep.Describe())
	}
	if got := rep.Classify(); got != "read-only anomaly" {
		t.Fatalf("Classify = %q (%s)", got, rep.Describe())
	}
	// Without the Balance transaction the same pair is serializable —
	// verify the anomaly really hinges on the read-only txn by replaying
	// just T1/T2's dependencies: the cycle must include the reader.
	onCycle := map[string]bool{}
	for _, id := range rep.Cycle {
		onCycle[rep.Tags[id]] = true
	}
	if !onCycle["Bal"] {
		t.Fatalf("cycle misses the read-only transaction: %s", rep.Describe())
	}
}

func TestWithoutReaderPairIsSerializable(t *testing.T) {
	db, c := newDB(t, core.SnapshotFUW)

	t1 := db.Begin()
	t2 := db.Begin()
	_ = get(t, t2, 1)
	set(t, t2, 1, 20)
	commit(t, t2)
	_ = get(t, t1, 1)
	_ = get(t, t1, 2)
	set(t, t1, 2, -11)
	commit(t, t1)

	rep := c.Analyze()
	if !rep.Serializable {
		t.Fatalf("WC/TS without reader must be serializable (T1 before T2): %s", rep.Describe())
	}
}

func TestLostUpdatePreventionKeepsGraphAcyclic(t *testing.T) {
	db, c := newDB(t, core.SnapshotFUW)
	t1 := db.Begin()
	t2 := db.Begin()
	_ = get(t, t1, 1)
	_ = get(t, t2, 1)
	set(t, t1, 1, 10)
	commit(t, t1)
	if err := t2.Update("T", core.Int(1), kv(1, 20)); err == nil {
		t.Fatal("FUW should have fired")
	}
	t2.Abort()
	rep := c.Analyze()
	if !rep.Serializable {
		t.Fatalf("aborted txn contaminated the graph: %s", rep.Describe())
	}
}

func TestWWandWRChains(t *testing.T) {
	db, c := newDB(t, core.SnapshotFUW)
	// Three sequential writers then a reader: WW chain + WR edge.
	for i := int64(1); i <= 3; i++ {
		tx := db.Begin()
		set(t, tx, 1, i)
		commit(t, tx)
	}
	r := db.Begin()
	_ = get(t, r, 1)
	commit(t, r)

	rep := c.Analyze()
	ww, wr := 0, 0
	for _, d := range rep.Edges {
		switch d.Kind {
		case WW:
			ww++
		case WR:
			wr++
		}
	}
	if ww != 2 {
		t.Fatalf("ww edges = %d, want 2", ww)
	}
	if wr != 1 {
		t.Fatalf("wr edges = %d, want 1", wr)
	}
	if !rep.Serializable {
		t.Fatal("chain must be serializable")
	}
}

func TestResetSkipsForeignVersions(t *testing.T) {
	db, c := newDB(t, core.SnapshotFUW)
	w := db.Begin()
	set(t, w, 1, 5)
	commit(t, w)
	c.Reset()
	if c.NumTxns() != 0 {
		t.Fatal("reset failed")
	}
	// A reader of the pre-reset version must not crash or dangle edges.
	r := db.Begin()
	_ = get(t, r, 1)
	commit(t, r)
	rep := c.Analyze()
	if !rep.Serializable || rep.Txns != 1 {
		t.Fatalf("post-reset analysis: %+v", rep)
	}
	for _, d := range rep.Edges {
		if d.Kind == WR {
			t.Fatal("WR edge to an unrecorded writer must be skipped")
		}
	}
}

func TestSSIKeepsHistoryAcyclicUnderWriteSkewLoad(t *testing.T) {
	db, c := newDB(t, core.SerializableSI)
	// Fire many concurrent write-skew attempts; SSI aborts some, and
	// whatever commits must form an acyclic MVSG.
	for round := 0; round < 30; round++ {
		t1 := db.Begin()
		t2 := db.Begin()
		ok1 := txRead(t1, 1) && txRead(t1, 2) && txWrite(t1, 1, int64(round))
		ok2 := txRead(t2, 1) && txRead(t2, 2) && txWrite(t2, 2, int64(round))
		if ok1 {
			_ = t1.Commit()
		} else {
			t1.Abort()
		}
		if ok2 {
			_ = t2.Commit()
		} else {
			t2.Abort()
		}
	}
	rep := c.Analyze()
	if !rep.Serializable {
		t.Fatalf("SSI produced a cycle: %s", rep.Describe())
	}
}

func txRead(tx *engine.Tx, k int64) bool {
	_, err := tx.Get("T", core.Int(k))
	return err == nil
}

func txWrite(tx *engine.Tx, k, v int64) bool {
	return tx.Update("T", core.Int(k), kv(k, v)) == nil
}

func TestDepKindString(t *testing.T) {
	if WR.String() != "wr" || WW.String() != "ww" || RW.String() != "rw" {
		t.Fatal("DepKind names changed")
	}
}

// Package checker validates executions for serializability at runtime.
// It records every committed transaction's read and write versions (via
// the engine's Observer hook), builds the multi-version serialization
// graph (MVSG) — WR, WW and RW (antidependency) edges — and searches it
// for cycles. An acyclic MVSG proves the recorded execution serializable;
// a cycle is a concrete non-serializability witness, such as the write
// skew and read-only anomalies that motivate the paper.
//
// The paper relies on the static theory (internal/sdg) to decide which
// program mixes are safe; this package is the dynamic counterpart the
// test suite uses to confirm the theory end-to-end: plain SI on the
// unmodified SmallBank mix produces cycles, while every repair strategy
// (and 2PL/SSI) never does.
package checker

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"sicost/internal/core"
	"sicost/internal/engine"
	"sicost/internal/graph"
)

// Checker accumulates commit records. It is safe for concurrent use and
// implements engine.Observer.
type Checker struct {
	mu    sync.Mutex
	infos []engine.TxInfo
}

// New creates an empty checker. Install it with db.SetObserver.
func New() *Checker { return &Checker{} }

// OnCommit implements engine.Observer.
func (c *Checker) OnCommit(info engine.TxInfo) {
	c.mu.Lock()
	c.infos = append(c.infos, info)
	c.mu.Unlock()
}

// NumTxns returns the number of recorded commits.
func (c *Checker) NumTxns() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.infos)
}

// Infos returns a copy of the recorded commit history, in commit order.
// The deterministic-simulation oracle (internal/detsim) uses it to
// cross-validate Analyze against an independent brute-force search.
func (c *Checker) Infos() []engine.TxInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]engine.TxInfo, len(c.infos))
	copy(out, c.infos)
	return out
}

// Reset discards all recorded history.
func (c *Checker) Reset() {
	c.mu.Lock()
	c.infos = nil
	c.mu.Unlock()
}

// DepKind labels an MVSG edge.
type DepKind uint8

// MVSG edge kinds.
const (
	WR DepKind = iota // T wrote the version U read
	WW                // T's version precedes U's version of the same item
	RW                // U read a version older than T's (antidependency)
)

// String names the kind.
func (k DepKind) String() string {
	switch k {
	case WR:
		return "wr"
	case WW:
		return "ww"
	default:
		return "rw"
	}
}

// Dep is one MVSG edge with its provenance.
type Dep struct {
	From, To uint64
	Kind     DepKind
	Table    string
	Key      core.Value
}

// Report is the result of an analysis pass.
type Report struct {
	Txns         int
	Edges        []Dep
	Serializable bool
	// Cycle is a witness cycle of transaction ids (first == last) when
	// not serializable.
	Cycle []uint64
	// CycleDeps are the edges along the witness cycle.
	CycleDeps []Dep
	// Tags maps transaction ids on the cycle to their application tags.
	Tags map[uint64]string
	// Writers is the set of transactions that committed at least one
	// write.
	Writers map[uint64]bool
}

// versionRecord is one committed version of one item.
type versionRecord struct {
	csn uint64
	tx  uint64
}

// Analyze builds the MVSG over everything recorded so far and checks it
// for cycles.
func (c *Checker) Analyze() *Report {
	c.mu.Lock()
	infos := make([]engine.TxInfo, len(c.infos))
	copy(infos, c.infos)
	c.mu.Unlock()

	type itemKey struct {
		table string
		key   core.Value
	}
	writers := make(map[itemKey][]versionRecord)
	tags := make(map[uint64]string, len(infos))
	writerSet := make(map[uint64]bool)
	for _, in := range infos {
		tags[in.ID] = in.Tag
		if len(in.Writes) > 0 {
			writerSet[in.ID] = true
		}
		for _, w := range in.Writes {
			k := itemKey{w.Table, w.Key}
			writers[k] = append(writers[k], versionRecord{csn: w.CSN, tx: in.ID})
		}
	}
	for k := range writers {
		vs := writers[k]
		sort.Slice(vs, func(i, j int) bool { return vs[i].csn < vs[j].csn })
		writers[k] = vs
	}

	// nextWriter returns the creator of the first version after csn on
	// item k, or 0.
	nextWriter := func(k itemKey, csn uint64) (uint64, uint64) {
		vs := writers[k]
		i := sort.Search(len(vs), func(i int) bool { return vs[i].csn > csn })
		if i == len(vs) {
			return 0, 0
		}
		return vs[i].tx, vs[i].csn
	}

	var deps []Dep
	seen := make(map[Dep]bool)
	add := func(d Dep) {
		if d.From == d.To {
			return
		}
		if !seen[d] {
			seen[d] = true
			deps = append(deps, d)
		}
	}

	// WW edges: consecutive versions of each item.
	for k, vs := range writers {
		for i := 0; i+1 < len(vs); i++ {
			add(Dep{From: vs[i].tx, To: vs[i+1].tx, Kind: WW, Table: k.table, Key: k.key})
		}
	}
	// WR and RW edges from reads.
	for _, in := range infos {
		for _, r := range in.Reads {
			k := itemKey{r.Table, r.Key}
			// WR: the creator of the version read happens before the
			// reader. Reads of versions created outside the recorded
			// window (e.g. the loader ran before Reset) have no source
			// node; skip those.
			vs := writers[k]
			i := sort.Search(len(vs), func(i int) bool { return vs[i].csn >= r.CSN })
			if i < len(vs) && vs[i].csn == r.CSN {
				add(Dep{From: vs[i].tx, To: in.ID, Kind: WR, Table: k.table, Key: k.key})
			}
			// RW: the reader happens before the creator of the next
			// version (WW edges carry the order to later ones).
			if w, _ := nextWriter(k, r.CSN); w != 0 {
				add(Dep{From: in.ID, To: w, Kind: RW, Table: k.table, Key: k.key})
			}
		}
	}

	g := graph.New()
	for _, in := range infos {
		g.AddNode(txNode(in.ID))
	}
	for _, d := range deps {
		g.AddEdge(txNode(d.From), txNode(d.To))
	}

	rep := &Report{Txns: len(infos), Edges: deps, Serializable: true, Tags: tags, Writers: writerSet}
	cyc := g.FindCycle()
	if cyc == nil {
		return rep
	}
	rep.Serializable = false
	for _, n := range cyc {
		rep.Cycle = append(rep.Cycle, nodeTx(n))
	}
	// Attach one witness edge per cycle step.
	for i := 0; i+1 < len(rep.Cycle); i++ {
		for _, d := range deps {
			if d.From == rep.Cycle[i] && d.To == rep.Cycle[i+1] {
				rep.CycleDeps = append(rep.CycleDeps, d)
				break
			}
		}
	}
	return rep
}

func txNode(id uint64) string { return fmt.Sprintf("t%d", id) }

func nodeTx(n string) uint64 {
	var id uint64
	fmt.Sscanf(n, "t%d", &id)
	return id
}

// Classify inspects a witness cycle and names the anomaly when it has a
// well-known shape: "write skew" (a cycle of two transactions joined by
// two rw antidependencies) or "read-only anomaly" (a cycle in which some
// transaction performed no writes, per Fekete/O'Neil/O'Neil 2004).
// Other shapes report "non-serializable execution".
func (r *Report) Classify() string {
	if r.Serializable {
		return "serializable"
	}
	return ClassifyCycle(r.Cycle, r.CycleDeps, r.Writers)
}

// ClassifyCycle names the anomaly shape of one witness cycle: the
// transaction ids along the cycle (first repeated last), the edge per
// step, and the set of transactions that committed writes. It is the
// shared verdict vocabulary of this offline analyzer and the online
// windowed checker (internal/onlinecheck), so the cross-validation
// suite can compare classifications verbatim.
func ClassifyCycle(cycle []uint64, cycleDeps []Dep, writers map[uint64]bool) string {
	rw := 0
	for _, d := range cycleDeps {
		if d.Kind == RW {
			rw++
		}
	}
	// Distinct transactions on the cycle (cycle repeats the first node).
	distinct := map[uint64]bool{}
	for _, id := range cycle {
		distinct[id] = true
	}
	readOnly := false
	for id := range distinct {
		if !writers[id] {
			readOnly = true
		}
	}
	switch {
	case len(distinct) == 2 && rw == 2:
		return "write skew"
	case readOnly && rw >= 2:
		return "read-only anomaly"
	default:
		return "non-serializable execution"
	}
}

// Describe renders the report for humans.
func (r *Report) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "checked %d transactions, %d dependencies: ", r.Txns, len(r.Edges))
	if r.Serializable {
		b.WriteString("serializable (MVSG acyclic)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "NOT serializable (%s)\n", r.Classify())
	b.WriteString("witness cycle:\n")
	for i, d := range r.CycleDeps {
		from, to := r.Cycle[i], r.Cycle[i+1]
		fmt.Fprintf(&b, "  t%d(%s) --%s[%s.%v]--> t%d(%s)\n",
			from, r.Tags[from], d.Kind, d.Table, d.Key, to, r.Tags[to])
	}
	return b.String()
}

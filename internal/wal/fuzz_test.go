package wal_test

import (
	"testing"

	"sicost/internal/core"
	"sicost/internal/engine"
	"sicost/internal/wal"
)

// FuzzRecoverLog feeds arbitrary bytes to the recovery pipeline: the
// frame decoder (Classify) and the full database rebuild
// (engine.Recover). Neither may ever panic — a corrupt or adversarial
// log image must classify to a valid prefix or fail with an error. The
// Makefile's walfuzz target runs this under go test -fuzz.
func FuzzRecoverLog(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef})
	f.Add(wal.EncodeCommit(&wal.CommitFrame{
		TxID: 7, CSN: 3,
		Rows: []wal.RowImage{{Table: "t", Key: core.Int(1), Rec: core.Record{core.Int(1), core.Int(5)}}},
	}))
	schema := core.Schema{
		Name: "t",
		Columns: []core.Column{
			{Name: "id", Kind: core.KindInt, NotNull: true},
			{Name: "v", Kind: core.KindInt},
		},
		PK: 0,
	}
	f.Add(wal.EncodeSchema(&schema))
	f.Add(wal.EncodeCheckpoint(&wal.Checkpoint{
		CSN: 2,
		Tables: []wal.CheckpointTable{{
			Schema: schema,
			Rows:   []wal.CheckpointRow{{Key: core.Int(1), CSN: 2, Rec: core.Record{core.Int(1), core.Int(9)}}},
		}},
	}))
	// A valid log with a torn tail.
	torn := append(wal.EncodeSchema(&schema), wal.EncodeCommit(&wal.CommitFrame{TxID: 1, CSN: 1})...)
	f.Add(torn[:len(torn)-3])

	f.Fuzz(func(t *testing.T, data []byte) {
		info := wal.Classify(data)
		if info.ValidBytes+info.TornBytes != len(data) {
			t.Fatalf("scan accounting: %d valid + %d torn != %d", info.ValidBytes, info.TornBytes, len(data))
		}
		if info.ValidBytes < 0 || info.TornBytes < 0 {
			t.Fatalf("negative scan accounting: %+v", info)
		}
		// The full rebuild must never panic either: it may reject the
		// image as corrupt (CSN 0, schema/record mismatch, duplicate
		// index values...), but a log that classifies must either open
		// or error.
		db, _, err := engine.Recover(wal.NewMemDeviceBytes(data), engine.Config{})
		if err == nil {
			db.Close()
		}
	})
}

package wal

import (
	"fmt"
	"sort"

	"sicost/internal/core"
)

// RecoveryInfo is the classified result of scanning a log device: the
// snapshot to start from, the redo work after it, and what the scan
// discarded.
type RecoveryInfo struct {
	// Checkpoint is the last checkpoint frame in the valid prefix, or
	// nil when the log has never been checkpointed.
	Checkpoint *Checkpoint
	// Schemas are the table definitions in effect: every schema frame
	// in the valid prefix, deduplicated by table name (last wins),
	// merged with the schemas embedded in the checkpoint.
	Schemas []core.Schema
	// Commits are the redo records to replay: every commit frame whose
	// CSN is beyond the checkpoint, sorted by CSN. The commit-barrier
	// checkpoint protocol (see engine.DB.Checkpoint) guarantees no
	// commit before the checkpoint frame carries a CSN above the cut,
	// so CSN filtering and log-position filtering agree.
	Commits []*CommitFrame
	// HighCSN is the recovered commit-sequence high-water mark; the
	// restarted sequencer continues from HighCSN+1.
	HighCSN uint64
	// Frames counts all valid frames scanned (checkpoint + schema +
	// commit, including pre-checkpoint commits in an untruncated log).
	Frames int
	// ValidBytes is the length of the valid prefix; TornBytes is what
	// the torn-tail rule discarded (0 for a clean log).
	ValidBytes int
	TornBytes  int
	// Repaired reports that the device was rewritten to the valid
	// prefix, so a second recovery sees a clean log.
	Repaired bool
	// Segments is the number of live segments scanned (0 for a flat,
	// unsegmented device).
	Segments int
}

// Recover scans dev, applies the torn-tail rule, and — when a torn or
// corrupt tail was found — repairs the device by rewriting it to the
// valid prefix, so recovery is idempotent at the byte level too. It
// performs no database reconstruction; engine.Recover layers that on
// top.
func Recover(dev LogDevice) (*RecoveryInfo, error) {
	if seg, ok := dev.(Segmented); ok {
		segs, err := seg.Segments()
		if err != nil {
			return nil, fmt.Errorf("wal: recover: %w", err)
		}
		info, err := ClassifySegments(segs)
		if err != nil {
			return nil, fmt.Errorf("wal: recover: %w", err)
		}
		if info.TornBytes > 0 {
			if err := repairTail(dev, int64(info.ValidBytes)); err != nil {
				return nil, fmt.Errorf("wal: recover: torn-tail repair: %w", err)
			}
			info.Repaired = true
		}
		return info, nil
	}
	b, err := dev.Contents()
	if err != nil {
		return nil, fmt.Errorf("wal: recover: %w", err)
	}
	info := Classify(b)
	if info.TornBytes > 0 {
		if err := repairTail(dev, int64(info.ValidBytes)); err != nil {
			return nil, fmt.Errorf("wal: recover: torn-tail repair: %w", err)
		}
		info.Repaired = true
	}
	return info, nil
}

// repairTail truncates the device to the valid prefix, preferring the
// in-place TailTruncator (segmented logs drop tail segments and trim
// one file) over a whole-log Rewrite.
func repairTail(dev LogDevice, valid int64) error {
	if tt, ok := dev.(TailTruncator); ok {
		return tt.TruncateTail(valid)
	}
	b, err := dev.Contents()
	if err != nil {
		return err
	}
	return dev.Rewrite(b[:valid])
}

// ClassifySegments validates a segmented log layout and classifies the
// concatenated stream. The layout rules are strict: segment indices
// must be contiguous (a missing middle segment means durable history is
// gone — that is unrecoverable corruption, not a torn tail), and a torn
// or corrupt tail may only begin inside the final segment. A frame that
// straddles a segment boundary is fine — recovery scans the
// concatenation — because rotation seals segments between appends, not
// mid-frame; a torn frame in a *sealed* segment could only come from
// bit rot or truncation of supposedly immutable data, so it is rejected
// rather than repaired.
func ClassifySegments(segs []SegmentData) (*RecoveryInfo, error) {
	if len(segs) == 0 {
		info := Classify(nil)
		return info, nil
	}
	sorted := append([]SegmentData(nil), segs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Index < sorted[j].Index })
	for i := 1; i < len(sorted); i++ {
		if sorted[i].Index == sorted[i-1].Index {
			return nil, fmt.Errorf("wal: duplicate segment %s", SegmentName(sorted[i].Index))
		}
		if sorted[i].Index != sorted[i-1].Index+1 {
			return nil, fmt.Errorf("wal: segment sequence broken: %s missing (have %s and %s)",
				SegmentName(sorted[i-1].Index+1), SegmentName(sorted[i-1].Index), SegmentName(sorted[i].Index))
		}
	}
	var all []byte
	lastStart := 0
	for i, s := range sorted {
		if i == len(sorted)-1 {
			lastStart = len(all)
		}
		all = append(all, s.Data...)
	}
	info := Classify(all)
	if info.TornBytes > 0 && info.ValidBytes < lastStart {
		return nil, fmt.Errorf("wal: corrupt frame in sealed segment %s (valid prefix %d ends before final segment at %d)",
			SegmentName(sorted[torn(sorted, info.ValidBytes)].Index), info.ValidBytes, lastStart)
	}
	info.Segments = len(sorted)
	return info, nil
}

// torn returns the position (in sorted order) of the segment containing
// byte offset off of the concatenation.
func torn(sorted []SegmentData, off int) int {
	at := 0
	for i, s := range sorted {
		if off < at+len(s.Data) {
			return i
		}
		at += len(s.Data)
	}
	return len(sorted) - 1
}

// Classify scans a raw log image and organizes its valid prefix into a
// RecoveryInfo without touching any device. The fuzz target calls it
// directly with arbitrary bytes.
func Classify(b []byte) *RecoveryInfo {
	frames, validLen := ScanLog(b)
	info := &RecoveryInfo{
		Frames:     len(frames),
		ValidBytes: validLen,
		TornBytes:  len(b) - validLen,
	}

	// The snapshot to restore is the *last* checkpoint in the log.
	for _, f := range frames {
		if f.Checkpoint != nil {
			info.Checkpoint = f.Checkpoint
		}
	}
	cut := uint64(0)
	if info.Checkpoint != nil {
		cut = info.Checkpoint.CSN
		info.HighCSN = cut
	}

	// Schemas: checkpoint-embedded first, then standalone schema
	// frames; last definition of a name wins.
	byName := map[string]int{}
	addSchema := func(s core.Schema) {
		if i, ok := byName[s.Name]; ok {
			info.Schemas[i] = s
			return
		}
		byName[s.Name] = len(info.Schemas)
		info.Schemas = append(info.Schemas, s)
	}
	if info.Checkpoint != nil {
		for _, t := range info.Checkpoint.Tables {
			addSchema(t.Schema)
		}
	}
	for _, f := range frames {
		if f.Schema != nil {
			addSchema(*f.Schema)
		}
	}

	for _, f := range frames {
		if f.Commit == nil {
			continue
		}
		if f.Commit.CSN <= cut {
			continue // already captured by the checkpoint snapshot
		}
		info.Commits = append(info.Commits, f.Commit)
		if f.Commit.CSN > info.HighCSN {
			info.HighCSN = f.Commit.CSN
		}
	}
	if info.Checkpoint != nil {
		for _, t := range info.Checkpoint.Tables {
			for _, r := range t.Rows {
				if r.CSN > info.HighCSN {
					info.HighCSN = r.CSN
				}
			}
		}
	}
	sort.SliceStable(info.Commits, func(i, j int) bool {
		return info.Commits[i].CSN < info.Commits[j].CSN
	})
	return info
}

package wal

import (
	"fmt"
	"sort"

	"sicost/internal/core"
)

// RecoveryInfo is the classified result of scanning a log device: the
// snapshot to start from, the redo work after it, and what the scan
// discarded.
type RecoveryInfo struct {
	// Checkpoint is the last checkpoint frame in the valid prefix, or
	// nil when the log has never been checkpointed.
	Checkpoint *Checkpoint
	// Schemas are the table definitions in effect: every schema frame
	// in the valid prefix, deduplicated by table name (last wins),
	// merged with the schemas embedded in the checkpoint.
	Schemas []core.Schema
	// Commits are the redo records to replay: every commit frame whose
	// CSN is beyond the checkpoint, sorted by CSN. The commit-barrier
	// checkpoint protocol (see engine.DB.Checkpoint) guarantees no
	// commit before the checkpoint frame carries a CSN above the cut,
	// so CSN filtering and log-position filtering agree.
	Commits []*CommitFrame
	// HighCSN is the recovered commit-sequence high-water mark; the
	// restarted sequencer continues from HighCSN+1.
	HighCSN uint64
	// Frames counts all valid frames scanned (checkpoint + schema +
	// commit, including pre-checkpoint commits in an untruncated log).
	Frames int
	// ValidBytes is the length of the valid prefix; TornBytes is what
	// the torn-tail rule discarded (0 for a clean log).
	ValidBytes int
	TornBytes  int
	// Repaired reports that the device was rewritten to the valid
	// prefix, so a second recovery sees a clean log.
	Repaired bool
}

// Recover scans dev, applies the torn-tail rule, and — when a torn or
// corrupt tail was found — repairs the device by rewriting it to the
// valid prefix, so recovery is idempotent at the byte level too. It
// performs no database reconstruction; engine.Recover layers that on
// top.
func Recover(dev LogDevice) (*RecoveryInfo, error) {
	b, err := dev.Contents()
	if err != nil {
		return nil, fmt.Errorf("wal: recover: %w", err)
	}
	info := Classify(b)
	if info.TornBytes > 0 {
		if err := dev.Rewrite(b[:info.ValidBytes]); err != nil {
			return nil, fmt.Errorf("wal: recover: torn-tail repair: %w", err)
		}
		info.Repaired = true
	}
	return info, nil
}

// Classify scans a raw log image and organizes its valid prefix into a
// RecoveryInfo without touching any device. The fuzz target calls it
// directly with arbitrary bytes.
func Classify(b []byte) *RecoveryInfo {
	frames, validLen := ScanLog(b)
	info := &RecoveryInfo{
		Frames:     len(frames),
		ValidBytes: validLen,
		TornBytes:  len(b) - validLen,
	}

	// The snapshot to restore is the *last* checkpoint in the log.
	for _, f := range frames {
		if f.Checkpoint != nil {
			info.Checkpoint = f.Checkpoint
		}
	}
	cut := uint64(0)
	if info.Checkpoint != nil {
		cut = info.Checkpoint.CSN
		info.HighCSN = cut
	}

	// Schemas: checkpoint-embedded first, then standalone schema
	// frames; last definition of a name wins.
	byName := map[string]int{}
	addSchema := func(s core.Schema) {
		if i, ok := byName[s.Name]; ok {
			info.Schemas[i] = s
			return
		}
		byName[s.Name] = len(info.Schemas)
		info.Schemas = append(info.Schemas, s)
	}
	if info.Checkpoint != nil {
		for _, t := range info.Checkpoint.Tables {
			addSchema(t.Schema)
		}
	}
	for _, f := range frames {
		if f.Schema != nil {
			addSchema(*f.Schema)
		}
	}

	for _, f := range frames {
		if f.Commit == nil {
			continue
		}
		if f.Commit.CSN <= cut {
			continue // already captured by the checkpoint snapshot
		}
		info.Commits = append(info.Commits, f.Commit)
		if f.Commit.CSN > info.HighCSN {
			info.HighCSN = f.Commit.CSN
		}
	}
	if info.Checkpoint != nil {
		for _, t := range info.Checkpoint.Tables {
			for _, r := range t.Rows {
				if r.CSN > info.HighCSN {
					info.HighCSN = r.CSN
				}
			}
		}
	}
	sort.SliceStable(info.Commits, func(i, j int) bool {
		return info.Commits[i].CSN < info.Commits[j].CSN
	})
	return info
}

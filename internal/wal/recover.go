package wal

import (
	"fmt"
	"sort"

	"sicost/internal/core"
)

// RecoveryInfo is the classified result of scanning a log device: the
// snapshot to start from, the redo work after it, and what the scan
// discarded.
type RecoveryInfo struct {
	// Checkpoint is the snapshot to restore: the last full-image
	// checkpoint frame in the valid prefix, or — when a fuzzy checkpoint
	// chain is present — the synthetic checkpoint produced by folding
	// the chain (root image plus every complete delta link in order).
	// Nil when the log has never been checkpointed.
	Checkpoint *Checkpoint
	// ChainLinks is the number of complete delta links folded into
	// Checkpoint: 0 for a legacy full-image checkpoint (or none at
	// all). A torn or incomplete final link is not counted — recovery
	// falls back to the chain state before it.
	ChainLinks int
	// Schemas are the table definitions in effect: every schema frame
	// in the valid prefix, deduplicated by table name (last wins),
	// merged with the schemas embedded in the checkpoint.
	Schemas []core.Schema
	// Commits are the redo records to replay: every commit frame whose
	// CSN is beyond the checkpoint, sorted by CSN. The commit-barrier
	// checkpoint protocol (see engine.DB.Checkpoint) guarantees no
	// commit before the checkpoint frame carries a CSN above the cut,
	// so CSN filtering and log-position filtering agree.
	Commits []*CommitFrame
	// HighCSN is the recovered commit-sequence high-water mark; the
	// restarted sequencer continues from HighCSN+1.
	HighCSN uint64
	// Frames counts all valid frames scanned (checkpoint + schema +
	// commit, including pre-checkpoint commits in an untruncated log).
	Frames int
	// ValidBytes is the length of the valid prefix; TornBytes is what
	// the torn-tail rule discarded (0 for a clean log).
	ValidBytes int
	TornBytes  int
	// Repaired reports that the device was rewritten to the valid
	// prefix, so a second recovery sees a clean log.
	Repaired bool
	// Segments is the number of live segments scanned (0 for a flat,
	// unsegmented device).
	Segments int
}

// Recover scans dev, applies the torn-tail rule, and — when a torn or
// corrupt tail was found — repairs the device by rewriting it to the
// valid prefix, so recovery is idempotent at the byte level too. It
// performs no database reconstruction; engine.Recover layers that on
// top.
func Recover(dev LogDevice) (*RecoveryInfo, error) {
	if seg, ok := dev.(Segmented); ok {
		segs, err := seg.Segments()
		if err != nil {
			return nil, fmt.Errorf("wal: recover: %w", err)
		}
		info, err := ClassifySegments(segs)
		if err != nil {
			return nil, fmt.Errorf("wal: recover: %w", err)
		}
		if info.TornBytes > 0 {
			if err := repairTail(dev, int64(info.ValidBytes)); err != nil {
				return nil, fmt.Errorf("wal: recover: torn-tail repair: %w", err)
			}
			info.Repaired = true
		}
		return info, nil
	}
	b, err := dev.Contents()
	if err != nil {
		return nil, fmt.Errorf("wal: recover: %w", err)
	}
	info := Classify(b)
	if info.TornBytes > 0 {
		if err := repairTail(dev, int64(info.ValidBytes)); err != nil {
			return nil, fmt.Errorf("wal: recover: torn-tail repair: %w", err)
		}
		info.Repaired = true
	}
	return info, nil
}

// repairTail truncates the device to the valid prefix, preferring the
// in-place TailTruncator (segmented logs drop tail segments and trim
// one file) over a whole-log Rewrite.
func repairTail(dev LogDevice, valid int64) error {
	if tt, ok := dev.(TailTruncator); ok {
		return tt.TruncateTail(valid)
	}
	b, err := dev.Contents()
	if err != nil {
		return err
	}
	return dev.Rewrite(b[:valid])
}

// ClassifySegments validates a segmented log layout and classifies the
// concatenated stream. The layout rules are strict: segment indices
// must be contiguous (a missing middle segment means durable history is
// gone — that is unrecoverable corruption, not a torn tail), and a torn
// or corrupt tail may only begin inside the final segment. A frame that
// straddles a segment boundary is fine — recovery scans the
// concatenation — because rotation seals segments between appends, not
// mid-frame; a torn frame in a *sealed* segment could only come from
// bit rot or truncation of supposedly immutable data, so it is rejected
// rather than repaired.
func ClassifySegments(segs []SegmentData) (*RecoveryInfo, error) {
	if len(segs) == 0 {
		info := Classify(nil)
		return info, nil
	}
	sorted := append([]SegmentData(nil), segs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Index < sorted[j].Index })
	for i := 1; i < len(sorted); i++ {
		if sorted[i].Index == sorted[i-1].Index {
			return nil, fmt.Errorf("wal: duplicate segment %s", SegmentName(sorted[i].Index))
		}
		if sorted[i].Index != sorted[i-1].Index+1 {
			return nil, fmt.Errorf("wal: segment sequence broken: %s missing (have %s and %s)",
				SegmentName(sorted[i-1].Index+1), SegmentName(sorted[i-1].Index), SegmentName(sorted[i].Index))
		}
	}
	var all []byte
	lastStart := 0
	for i, s := range sorted {
		if i == len(sorted)-1 {
			lastStart = len(all)
		}
		all = append(all, s.Data...)
	}
	info := Classify(all)
	if info.TornBytes > 0 && info.ValidBytes < lastStart {
		return nil, fmt.Errorf("wal: corrupt frame in sealed segment %s (valid prefix %d ends before final segment at %d)",
			SegmentName(sorted[torn(sorted, info.ValidBytes)].Index), info.ValidBytes, lastStart)
	}
	info.Segments = len(sorted)
	return info, nil
}

// chainLink is one complete fuzzy-checkpoint link assembled by the
// classification scan: its begin marker plus every bound rows batch.
type chainLink struct {
	begin *DeltaBegin
	rows  []DeltaRow
}

// foldChain reduces the frame stream's checkpoint structure to one
// synthetic full checkpoint. The scan keeps a running chain — a root
// (either a legacy full-image Checkpoint frame or a complete delta link
// with Base == 0) plus complete delta links each based on the previous
// cut — and a pending link between a begin marker and its end marker.
// A link is complete only when its end marker matches the open begin's
// cut AND its row count; anything else (torn tail inside the link, a
// new begin abandoning the old, a mismatched orphan) discards the
// pending link, so recovery falls back to the chain state before it —
// never a partial fold. Rows batches bind to the pending link by cut;
// unbound batches are ignored (fuzz inputs; a healthy engine never
// interleaves links).
//
// It returns the folded checkpoint (nil when the log has neither a
// checkpoint frame nor a complete rooted chain) and the number of delta
// links folded.
func foldChain(frames []Frame) (*Checkpoint, int) {
	var (
		base    *Checkpoint // legacy full-image root
		chain   []*chainLink
		pending *chainLink
	)
	tailCut := func() uint64 {
		if len(chain) > 0 {
			return chain[len(chain)-1].begin.CSN
		}
		if base != nil {
			return base.CSN
		}
		return 0
	}
	for i := range frames {
		f := &frames[i]
		switch {
		case f.Checkpoint != nil:
			base, chain, pending = f.Checkpoint, nil, nil
		case f.DeltaBegin != nil:
			pending = &chainLink{begin: f.DeltaBegin}
		case f.DeltaRows != nil:
			if pending != nil && f.DeltaRows.CSN == pending.begin.CSN {
				pending.rows = append(pending.rows, f.DeltaRows.Rows...)
			}
		case f.DeltaEnd != nil:
			if pending == nil || f.DeltaEnd.CSN != pending.begin.CSN ||
				f.DeltaEnd.Rows != uint64(len(pending.rows)) {
				pending = nil
				continue
			}
			switch {
			case pending.begin.Base == 0:
				// A full link roots a fresh chain; earlier roots and
				// links are superseded.
				base, chain = nil, []*chainLink{pending}
			case pending.begin.Base == tailCut():
				chain = append(chain, pending)
				// Orphan links whose base matches nothing are dropped: a
				// healthy engine never writes one (it extends only after
				// the previous end marker synced).
			}
			pending = nil
		}
	}
	if len(chain) == 0 {
		return base, 0
	}

	// Fold: start from the root image, apply each link's after-images in
	// order — a tombstone removes the key, a live row installs it.
	live := map[string]map[core.Value]CheckpointRow{}
	if base != nil {
		for _, t := range base.Tables {
			m := make(map[core.Value]CheckpointRow, len(t.Rows))
			for _, r := range t.Rows {
				m[r.Key] = r
			}
			live[t.Schema.Name] = m
		}
	}
	for _, ln := range chain {
		for _, dr := range ln.rows {
			m := live[dr.Table]
			if dr.Rec == nil {
				if m != nil {
					delete(m, dr.Key)
				}
				continue
			}
			if dr.CSN == 0 || dr.CSN > ln.begin.CSN {
				continue // malformed image (fuzz); a real link never streams it
			}
			if m == nil {
				m = map[core.Value]CheckpointRow{}
				live[dr.Table] = m
			}
			m[dr.Key] = CheckpointRow{Key: dr.Key, CSN: dr.CSN, Rec: dr.Rec}
		}
	}

	// Tables come from the last link's embedded schema set — the
	// definitions as of the final cut — so empty tables survive the fold.
	ckpt := &Checkpoint{CSN: tailCut()}
	seen := map[string]bool{}
	addTable := func(s core.Schema) {
		if seen[s.Name] {
			return
		}
		seen[s.Name] = true
		ct := CheckpointTable{Schema: s}
		m := live[s.Name]
		keys := make([]core.Value, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
		for _, k := range keys {
			ct.Rows = append(ct.Rows, m[k])
		}
		ckpt.Tables = append(ckpt.Tables, ct)
	}
	for _, s := range chain[len(chain)-1].begin.Schemas {
		addTable(s)
	}
	// Defensive: tables in the root image missing from the last link's
	// schema set (schemas only grow, so a healthy log never hits this)
	// still fold through rather than vanish.
	if base != nil {
		for _, t := range base.Tables {
			addTable(t.Schema)
		}
	}
	return ckpt, len(chain)
}

// torn returns the position (in sorted order) of the segment containing
// byte offset off of the concatenation.
func torn(sorted []SegmentData, off int) int {
	at := 0
	for i, s := range sorted {
		if off < at+len(s.Data) {
			return i
		}
		at += len(s.Data)
	}
	return len(sorted) - 1
}

// Classify scans a raw log image and organizes its valid prefix into a
// RecoveryInfo without touching any device. The fuzz target calls it
// directly with arbitrary bytes.
func Classify(b []byte) *RecoveryInfo {
	frames, validLen := ScanLog(b)
	info := &RecoveryInfo{
		Frames:     len(frames),
		ValidBytes: validLen,
		TornBytes:  len(b) - validLen,
	}

	// The snapshot to restore: the last full-image checkpoint, with any
	// complete delta chain built on it folded in.
	info.Checkpoint, info.ChainLinks = foldChain(frames)
	cut := uint64(0)
	if info.Checkpoint != nil {
		cut = info.Checkpoint.CSN
		info.HighCSN = cut
	}

	// Schemas: checkpoint-embedded first, then standalone schema
	// frames; last definition of a name wins.
	byName := map[string]int{}
	addSchema := func(s core.Schema) {
		if i, ok := byName[s.Name]; ok {
			info.Schemas[i] = s
			return
		}
		byName[s.Name] = len(info.Schemas)
		info.Schemas = append(info.Schemas, s)
	}
	if info.Checkpoint != nil {
		for _, t := range info.Checkpoint.Tables {
			addSchema(t.Schema)
		}
	}
	for _, f := range frames {
		if f.Schema != nil {
			addSchema(*f.Schema)
		}
	}

	for _, f := range frames {
		if f.Commit == nil {
			continue
		}
		if f.Commit.CSN <= cut {
			continue // already captured by the checkpoint snapshot
		}
		info.Commits = append(info.Commits, f.Commit)
		if f.Commit.CSN > info.HighCSN {
			info.HighCSN = f.Commit.CSN
		}
	}
	if info.Checkpoint != nil {
		for _, t := range info.Checkpoint.Tables {
			for _, r := range t.Rows {
				if r.CSN > info.HighCSN {
					info.HighCSN = r.CSN
				}
			}
		}
	}
	sort.SliceStable(info.Commits, func(i, j int) bool {
		return info.Commits[i].CSN < info.Commits[j].CSN
	})
	return info
}

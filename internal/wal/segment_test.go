package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"sicost/internal/core"
	"sicost/internal/faultinject"
)

func TestParseSegmentName(t *testing.T) {
	cases := []struct {
		name string
		idx  int
		ok   bool
	}{
		{"wal.0000", 0, true},
		{"wal.0001", 1, true},
		{"wal.0042", 42, true},
		{"wal.9999", 9999, true},
		{"wal.10000", 10000, true},
		{"wal.123456789", 123456789, true},
		{"wal.1234567890", 0, false}, // >9 digits
		{"wal.000", 0, false},        // <4 digits
		{"wal.00a0", 0, false},
		{"wal.", 0, false},
		{"wal0000", 0, false},
		{"WAL.0000", 0, false},
		{"wal.0000.tmp", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		idx, ok := ParseSegmentName(c.name)
		if ok != c.ok || (ok && idx != c.idx) {
			t.Errorf("ParseSegmentName(%q) = %d,%v want %d,%v", c.name, idx, ok, c.idx, c.ok)
		}
	}
	for _, i := range []int{0, 7, 9999, 10000, 123456} {
		if idx, ok := ParseSegmentName(SegmentName(i)); !ok || idx != i {
			t.Errorf("round trip %d -> %q -> %d,%v", i, SegmentName(i), idx, ok)
		}
	}
}

// TestSegmentRotation drives enough commits through a small-segment log
// to force several rotations and checks the recovered history is
// complete across segment boundaries.
func TestSegmentRotation(t *testing.T) {
	dev, err := NewMemSegmentLog(256)
	if err != nil {
		t.Fatal(err)
	}
	w := New(Config{Device: dev})
	defer w.Close()

	const n = 20
	for csn := uint64(1); csn <= n; csn++ {
		if err := durableCommit(w, csn); err != nil {
			t.Fatal(err)
		}
	}
	if dev.SegmentCount() < 2 {
		t.Fatalf("no rotation after %d commits into 256-byte segments (%d segment)", n, dev.SegmentCount())
	}
	info, err := Recover(dev)
	if err != nil {
		t.Fatal(err)
	}
	if info.Segments != dev.SegmentCount() {
		t.Fatalf("info.Segments = %d, device has %d", info.Segments, dev.SegmentCount())
	}
	if len(info.Commits) != n || info.HighCSN != n || info.TornBytes != 0 {
		t.Fatalf("recovery across segments: %d commits, HighCSN %d, torn %d", len(info.Commits), info.HighCSN, info.TornBytes)
	}
	if s := w.Stats(); s.Bytes != dev.Size() {
		t.Fatalf("accounted %d bytes, device holds %d", s.Bytes, dev.Size())
	}
}

// TestSegmentRewriteCheckpoint checks checkpoint truncation on a
// segmented log: the snapshot lands in a fresh segment, old segments
// are retired, and post-checkpoint commits recover on top.
func TestSegmentRewriteCheckpoint(t *testing.T) {
	dev, err := NewMemSegmentLog(256)
	if err != nil {
		t.Fatal(err)
	}
	w := New(Config{Device: dev})
	defer w.Close()

	for csn := uint64(1); csn <= 12; csn++ {
		if err := durableCommit(w, csn); err != nil {
			t.Fatal(err)
		}
	}
	preSegs := dev.SegmentCount()
	if preSegs < 2 {
		t.Fatalf("want rotations before the checkpoint, have %d segment", preSegs)
	}
	ckpt := &Checkpoint{CSN: 12, Tables: []CheckpointTable{{Schema: testSchema()}}}
	if err := w.WriteCheckpoint(ckpt); err != nil {
		t.Fatal(err)
	}
	if dev.SegmentCount() != 1 {
		t.Fatalf("checkpoint left %d segments, want 1", dev.SegmentCount())
	}
	for csn := uint64(13); csn <= 16; csn++ {
		if err := durableCommit(w, csn); err != nil {
			t.Fatal(err)
		}
	}
	info, err := Recover(dev)
	if err != nil {
		t.Fatal(err)
	}
	if info.Checkpoint == nil || info.Checkpoint.CSN != 12 {
		t.Fatalf("recovery missed the checkpoint: %+v", info.Checkpoint)
	}
	if len(info.Commits) != 4 || info.HighCSN != 16 {
		t.Fatalf("redo after checkpoint: %d commits, HighCSN %d", len(info.Commits), info.HighCSN)
	}
}

// TestSegmentTornTailRepair tears the final segment and checks Recover
// truncates in place (TruncateTail, not a whole-log Rewrite) and is
// idempotent.
func TestSegmentTornTailRepair(t *testing.T) {
	dev, err := NewMemSegmentLog(256)
	if err != nil {
		t.Fatal(err)
	}
	w := New(Config{Device: dev})
	for csn := uint64(1); csn <= 10; csn++ {
		if err := durableCommit(w, csn); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	segsBefore := dev.SegmentCount()

	// Tear: a garbage tail in the final segment (a crash mid-append).
	if err := dev.Append([]byte{0xde, 0xad, 0xbe, 0xef, 0x01}); err != nil {
		t.Fatal(err)
	}
	info, err := Recover(dev)
	if err != nil {
		t.Fatal(err)
	}
	if info.TornBytes != 5 || !info.Repaired {
		t.Fatalf("torn tail not repaired: %+v", info)
	}
	if len(info.Commits) != 10 || info.HighCSN != 10 {
		t.Fatalf("repair lost commits: %d, HighCSN %d", len(info.Commits), info.HighCSN)
	}
	if dev.SegmentCount() != segsBefore {
		t.Fatalf("in-place repair changed segment count %d -> %d", segsBefore, dev.SegmentCount())
	}
	// Idempotent: a second recovery sees a clean log.
	info2, err := Recover(dev)
	if err != nil {
		t.Fatal(err)
	}
	if info2.TornBytes != 0 || info2.Repaired || len(info2.Commits) != 10 {
		t.Fatalf("second recovery not clean: %+v", info2)
	}
}

// TestSegmentTornTailSpansSegments tears the log so the valid prefix
// ends inside an earlier segment boundary scenario: the whole last
// segment is garbage. The repair must drop the garbage segment's bytes
// but keep every sealed byte.
func TestSegmentTornAtRotationBoundary(t *testing.T) {
	dev, err := NewMemSegmentLog(128)
	if err != nil {
		t.Fatal(err)
	}
	w := New(Config{Device: dev})
	for csn := uint64(1); csn <= 6; csn++ {
		if err := durableCommit(w, csn); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	// Force a rotation by hand, then tear the fresh segment completely:
	// a crash right after rotation, mid-first-append.
	big := make([]byte, 200)
	if err := dev.Append(big); err != nil { // oversized append rotates first
		t.Fatal(err)
	}
	info, err := Recover(dev)
	if err != nil {
		t.Fatal(err)
	}
	if info.TornBytes != len(big) {
		t.Fatalf("torn %d bytes, want %d", info.TornBytes, len(big))
	}
	if len(info.Commits) != 6 || info.HighCSN != 6 {
		t.Fatalf("boundary repair lost commits: %+v", info)
	}
}

func TestClassifySegmentsRejectsMissingMiddle(t *testing.T) {
	frame := EncodeCommit(&CommitFrame{TxID: 1, CSN: 1})
	_, err := ClassifySegments([]SegmentData{
		{Index: 0, Data: frame},
		{Index: 2, Data: frame},
	})
	if err == nil {
		t.Fatal("missing middle segment accepted")
	}
	if _, err := ClassifySegments([]SegmentData{
		{Index: 0, Data: frame},
		{Index: 0, Data: frame},
	}); err == nil {
		t.Fatal("duplicate segment accepted")
	}
}

func TestClassifySegmentsRejectsTornSealedSegment(t *testing.T) {
	frame := EncodeCommit(&CommitFrame{TxID: 1, CSN: 1})
	corrupt := append([]byte(nil), frame...)
	corrupt[len(corrupt)-1] ^= 0xff
	_, err := ClassifySegments([]SegmentData{
		{Index: 0, Data: corrupt},
		{Index: 1, Data: frame},
	})
	if err == nil {
		t.Fatal("corrupt sealed segment accepted as torn tail")
	}
}

// TestClassifySegmentsFrameAcrossBoundary checks that a frame split
// across two segments decodes: recovery scans the concatenation.
func TestClassifySegmentsFrameAcrossBoundary(t *testing.T) {
	f1 := EncodeCommit(&CommitFrame{TxID: 1, CSN: 1})
	f2 := EncodeCommit(&CommitFrame{TxID: 2, CSN: 2})
	cut := len(f1) + len(f2)/2
	all := append(append([]byte(nil), f1...), f2...)
	info, err := ClassifySegments([]SegmentData{
		{Index: 0, Data: all[:cut]},
		{Index: 1, Data: all[cut:]},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Commits) != 2 || info.TornBytes != 0 {
		t.Fatalf("split frame did not decode: %+v", info)
	}
}

// TestFaultRotateCrash pins the rotation crash point: a crash at the
// rotation site fails the append, loses only the unsynced tail, and
// bricks the WAL; every acked commit recovers.
func TestFaultRotateCrash(t *testing.T) {
	dev, err := NewMemSegmentLog(256)
	if err != nil {
		t.Fatal(err)
	}
	w := New(Config{Device: dev})
	reg := faultinject.New(17)
	w.SetFaults(reg)
	defer w.Close()

	var acked []uint64
	for csn := uint64(1); ; csn++ {
		if err := durableCommit(w, csn); err != nil {
			t.Fatal(err)
		}
		acked = append(acked, csn)
		if dev.Size() > 180 { // next commit will trip the rotation
			break
		}
	}
	if err := reg.Arm(faultinject.Spec{Point: FaultRotate, Count: 1, Action: faultinject.ActPanic}); err != nil {
		t.Fatal(err)
	}
	next := acked[len(acked)-1] + 1
	if err := durableCommit(w, next); !errors.Is(err, core.ErrInjected) {
		t.Fatalf("commit through rotation crash = %v, want ErrInjected", err)
	}
	if w.Broken() == nil {
		t.Fatal("rotation crash did not brick the WAL")
	}
	info, err := Recover(dev)
	if err != nil {
		t.Fatal(err)
	}
	if info.HighCSN != acked[len(acked)-1] || len(info.Commits) != len(acked) {
		t.Fatalf("recovery after rotation crash: HighCSN %d commits %d, want %d/%d",
			info.HighCSN, len(info.Commits), acked[len(acked)-1], len(acked))
	}
}

// TestFileSegmentLogReopen exercises the file backend end to end:
// commits across rotations, reopen from the directory, recovery, and
// torn-tail repair on disk.
func TestFileSegmentLogReopen(t *testing.T) {
	dir := t.TempDir()
	dev, err := OpenSegmentLog(dir, 256)
	if err != nil {
		t.Fatal(err)
	}
	w := New(Config{Device: dev})
	for csn := uint64(1); csn <= 15; csn++ {
		if err := durableCommit(w, csn); err != nil {
			t.Fatal(err)
		}
	}
	segs := dev.SegmentCount()
	if segs < 2 {
		t.Fatalf("no rotation on disk: %d segment", segs)
	}
	w.Close()
	dev.Close()

	// Tear the last segment on disk directly.
	last := filepath.Join(dir, SegmentName(segs-1))
	f, err := os.OpenFile(last, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	dev2, err := OpenSegmentLog(dir, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer dev2.Close()
	info, err := Recover(dev2)
	if err != nil {
		t.Fatal(err)
	}
	if info.TornBytes != 3 || !info.Repaired || len(info.Commits) != 15 || info.HighCSN != 15 {
		t.Fatalf("disk recovery: %+v", info)
	}
	// The repair is durable: a third open sees a clean log.
	dev3, err := OpenSegmentLog(dir, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer dev3.Close()
	info3, err := Recover(dev3)
	if err != nil {
		t.Fatal(err)
	}
	if info3.TornBytes != 0 || len(info3.Commits) != 15 {
		t.Fatalf("repair not durable: %+v", info3)
	}
}

// TestFileSegmentLogRejectsGap: a directory with a missing middle
// segment must refuse to open.
func TestFileSegmentLogRejectsGap(t *testing.T) {
	dir := t.TempDir()
	for _, i := range []int{0, 2} {
		if err := os.WriteFile(filepath.Join(dir, SegmentName(i)), nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := OpenSegmentLog(dir, 256); err == nil {
		t.Fatal("gap in segment sequence accepted")
	}
}

package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"sicost/internal/faultinject"
)

// FaultRotate fires inside SegmentLog.Append when the size threshold
// triggers a segment rotation, before the current segment is sealed. An
// injected error fails the append (the WAL bricks on it, as on any
// device error); an ActPanic models the process dying mid-rotation —
// the current segment loses its unsynced tail (page cache) and the
// append is rejected, but every synced byte survives for recovery.
const FaultRotate = "wal/rotate"

// FaultRetire fires inside SegmentLog.RetireSegments once per segment,
// before that segment is archived or unlinked. An injected error or an
// ActPanic (process death mid-retire) stops the sweep with a prefix of
// the eligible segments removed — still a contiguous suffix layout that
// openSegments and recovery accept, because removal runs oldest-first.
const FaultRetire = "wal/retire"

const segPrefix = "wal."

// SegmentName returns the canonical file name of segment index i:
// "wal." plus a four-digit-minimum zero-padded decimal (wal.0000,
// wal.0001, ... wal.10000).
func SegmentName(i int) string { return fmt.Sprintf("%s%04d", segPrefix, i) }

// ParseSegmentName parses a segment file name produced by SegmentName.
// It accepts "wal." followed by 4–9 decimal digits and returns the
// index; anything else — wrong prefix, short or overlong digit runs,
// non-digits — reports ok == false. The digit cap keeps the index well
// inside int range on every platform.
func ParseSegmentName(name string) (idx int, ok bool) {
	if len(name) < len(segPrefix)+4 || len(name) > len(segPrefix)+9 ||
		name[:len(segPrefix)] != segPrefix {
		return 0, false
	}
	n := 0
	for i := len(segPrefix); i < len(name); i++ {
		c := name[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

// SegmentData is one segment's raw image, for classification.
type SegmentData struct {
	Index int
	Data  []byte
}

// Segmented is implemented by devices that store the log as an ordered
// sequence of segments. Recover uses it to validate the layout —
// indices must be contiguous and a torn tail may only appear in the
// final segment — instead of blindly scanning the concatenation.
type Segmented interface {
	Segments() ([]SegmentData, error)
}

// TailTruncator is implemented by devices that can discard everything
// past a logical offset without rewriting the whole log. Recover
// prefers it over Rewrite for torn-tail repair: a segmented log drops
// the tail segments and truncates the one containing the cut.
type TailTruncator interface {
	TruncateTail(valid int64) error
}

// segFile is one open segment of a SegmentLog.
type segFile interface {
	append(b []byte) error
	sync() error
	truncate(n int64) error
	// prealloc extends the segment's physical size to n bytes of zero
	// padding without moving the logical tail, so later appends land in
	// already-allocated blocks instead of growing the file (and its
	// metadata) on every flush. A no-op when n is at or below the
	// current size, and on media without the distinction (memory).
	prealloc(n int64) error
	read() ([]byte, error)
	close() error
}

// segStore is the medium a SegmentLog manages segments on: an in-memory
// map (tests, crash-chaos) or a directory of wal.000N files.
type segStore interface {
	// list returns the indices of existing segments, unsorted.
	list() ([]int, error)
	// open returns an existing segment's handle and size.
	open(idx int) (segFile, int64, error)
	// create makes a new empty segment.
	create(idx int) (segFile, error)
	// remove deletes a segment.
	remove(idx int) error
	// archive durably copies a segment's image into dir before it is
	// removed (the point-in-time-recovery source).
	archive(dir string, idx int, data []byte) error
	// syncDir makes creations/removals durable (file backend).
	syncDir() error
}

// SegmentLog is a LogDevice that stores the byte stream as wal.000N
// segments, rotating to a fresh segment when an append would push the
// current one past the size threshold. Rotation happens only between
// Appends, so one flush group never spans segments — but recovery scans
// the concatenation, so even a frame split across a boundary (e.g. by a
// foreign writer) decodes fine. Rewrite (checkpoint truncation) writes
// the new image as the next segment and then unlinks the old ones
// oldest-first, so a crash at any point leaves a contiguous, decodable
// sequence.
type SegmentLog struct {
	mu      sync.Mutex
	store   segStore
	segSize int64
	// prealloc, when positive, is the physical size segments are created
	// at (see SetPrealloc). Segment sizes in segMeta stay logical: the
	// bytes actually appended, which is what recovery, rotation and
	// Size() reason about.
	prealloc int64
	faults   *faultinject.Registry

	segs      []segMeta // ascending, contiguous indices; last is current
	cur       segFile
	curSynced int64
	total     int64
}

type segMeta struct {
	idx  int
	size int64
}

// openSegments initializes a SegmentLog over a store: existing segments
// are adopted (indices must be contiguous), an empty store gets segment
// 0. Adopted content counts as synced — it is what survived.
func openSegments(store segStore, segSize int64) (*SegmentLog, error) {
	if segSize <= 0 {
		return nil, fmt.Errorf("wal: segment size %d must be positive", segSize)
	}
	l := &SegmentLog{store: store, segSize: segSize}
	idxs, err := store.list()
	if err != nil {
		return nil, err
	}
	sort.Ints(idxs)
	if len(idxs) == 0 {
		f, err := store.create(0)
		if err != nil {
			return nil, err
		}
		if err := store.syncDir(); err != nil {
			f.close()
			return nil, err
		}
		l.segs = []segMeta{{idx: 0}}
		l.cur = f
		return l, nil
	}
	for i := 1; i < len(idxs); i++ {
		if idxs[i] != idxs[i-1]+1 {
			return nil, fmt.Errorf("wal: segment sequence broken: %s missing (have %s and %s)",
				SegmentName(idxs[i-1]+1), SegmentName(idxs[i-1]), SegmentName(idxs[i]))
		}
	}
	for _, idx := range idxs {
		f, size, err := store.open(idx)
		if err != nil {
			return nil, err
		}
		l.segs = append(l.segs, segMeta{idx: idx, size: size})
		l.total += size
		if idx == idxs[len(idxs)-1] {
			l.cur = f
			l.curSynced = size
		} else {
			f.close()
		}
	}
	return l, nil
}

// NewMemSegmentLog returns an in-memory segmented log (tests and the
// crash-chaos harness).
func NewMemSegmentLog(segSize int64) (*SegmentLog, error) {
	return openSegments(&memSegStore{segs: map[int]*memSeg{}}, segSize)
}

// OpenSegmentLog opens (creating if needed) a segmented log in dir.
// Existing wal.000N files are adopted; foreign files are ignored.
func OpenSegmentLog(dir string, segSize int64) (*SegmentLog, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return openSegments(&fileSegStore{dir: dir}, segSize)
}

// SetFaults installs the registry consulted by FaultRotate. The WAL
// propagates its own registry here via wal.SetFaults.
func (l *SegmentLog) SetFaults(r *faultinject.Registry) {
	l.mu.Lock()
	l.faults = r
	l.mu.Unlock()
}

// SetPrealloc makes the log create segments at a physical size of n
// bytes (zero-padded past the logical tail) and applies it to the
// current segment immediately. Appends then overwrite preallocated
// blocks instead of extending the file, sparing the per-flush metadata
// (size) update an append-grown file pays on every fdatasync. The
// logical tail is tracked separately: sealing a segment at rotation
// trims the physical padding away (sealed segments must be exactly
// their valid frames — the torn-tail rule only tolerates garbage in the
// final segment), and a crash with padding still in place is repaired
// by recovery's CRC scan, which cuts the zero tail like any torn write.
// Call it before appends are in flight; n at or below the segment
// threshold is typical (the last append may still overshoot it).
func (l *SegmentLog) SetPrealloc(n int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.prealloc = n
	if n > 0 && l.cur != nil {
		if err := l.cur.prealloc(n); err != nil {
			return fmt.Errorf("wal: segment %s prealloc: %w", SegmentName(l.curMeta().idx), err)
		}
	}
	return nil
}

// fireRotate hits FaultRotate, converting an injected crash panic into
// (err, crashed) like the WAL's own fault sites: the flush goroutine
// must survive to report the failure.
func (l *SegmentLog) fireRotate() (err error, crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			p, ok := faultinject.AsPanic(r)
			if !ok {
				panic(r)
			}
			err, crashed = p, true
		}
	}()
	return l.faults.Fire(FaultRotate, faultinject.Ctx{}), false
}

// cur returns the current (last) segment's meta slot.
func (l *SegmentLog) curMeta() *segMeta { return &l.segs[len(l.segs)-1] }

// Append implements LogDevice, rotating first when the current segment
// is non-empty and b would push it past the threshold. (An oversized
// single append still lands whole in one segment: frames are never
// deliberately split.)
func (l *SegmentLog) Append(b []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	cm := l.curMeta()
	if cm.size > 0 && cm.size+int64(len(b)) > l.segSize {
		if err := l.rotate(); err != nil {
			return err
		}
	}
	if err := l.cur.append(b); err != nil {
		return fmt.Errorf("wal: segment %s append: %w", SegmentName(l.curMeta().idx), err)
	}
	l.curMeta().size += int64(len(b))
	l.total += int64(len(b))
	return nil
}

// rotate seals the current segment and opens the next. The seal is a
// sync — a sealed segment is immutable and fully durable — followed by
// the creation of segment N+1 and a directory sync. A crash anywhere in
// between leaves either [.., N] or [.., N, N+1(empty)], both contiguous
// and decodable.
func (l *SegmentLog) rotate() error {
	if err, crashed := l.fireRotate(); err != nil || crashed {
		if crashed {
			// Process death mid-rotation: the unsynced tail of the
			// current segment is lost with the page cache.
			cm := l.curMeta()
			if cm.size > l.curSynced {
				if terr := l.cur.truncate(l.curSynced); terr == nil {
					l.total -= cm.size - l.curSynced
					cm.size = l.curSynced
				}
			}
		}
		return fmt.Errorf("wal: segment rotation: %w", err)
	}
	if l.prealloc > 0 {
		// Seal-trim: cut the preallocated zero padding so the sealed
		// segment is exactly its logical bytes (sealed segments admit no
		// torn tail).
		if err := l.cur.truncate(l.curMeta().size); err != nil {
			return fmt.Errorf("wal: segment seal trim: %w", err)
		}
	}
	if err := l.cur.sync(); err != nil {
		return fmt.Errorf("wal: segment seal: %w", err)
	}
	next := l.curMeta().idx + 1
	f, err := l.store.create(next)
	if err != nil {
		return fmt.Errorf("wal: segment create: %w", err)
	}
	if l.prealloc > 0 {
		if err := f.prealloc(l.prealloc); err != nil {
			f.close()
			return fmt.Errorf("wal: segment %s prealloc: %w", SegmentName(next), err)
		}
	}
	if err := l.store.syncDir(); err != nil {
		f.close()
		return fmt.Errorf("wal: segment create: %w", err)
	}
	l.cur.close()
	l.cur = f
	l.curSynced = 0
	l.segs = append(l.segs, segMeta{idx: next})
	return nil
}

// Sync implements LogDevice: only the current segment can hold unsynced
// bytes (rotation seals its predecessors).
func (l *SegmentLog) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.cur.sync(); err != nil {
		return fmt.Errorf("wal: segment sync: %w", err)
	}
	l.curSynced = l.curMeta().size
	return nil
}

// DropUnsynced implements VolatileDevice: a power failure loses the
// current segment's unsynced tail.
func (l *SegmentLog) DropUnsynced() (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	cm := l.curMeta()
	dropped := cm.size - l.curSynced
	if dropped <= 0 {
		return 0, nil
	}
	if err := l.cur.truncate(l.curSynced); err != nil {
		return 0, err
	}
	cm.size = l.curSynced
	l.total -= dropped
	return dropped, nil
}

// Contents implements LogDevice: the concatenation of every segment in
// index order.
func (l *SegmentLog) Contents() ([]byte, error) {
	segs, err := l.Segments()
	if err != nil {
		return nil, err
	}
	var all []byte
	for _, s := range segs {
		all = append(all, s.Data...)
	}
	return all, nil
}

// Segments implements Segmented.
func (l *SegmentLog) Segments() ([]SegmentData, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SegmentData, 0, len(l.segs))
	for i, m := range l.segs {
		var (
			b   []byte
			err error
		)
		if i == len(l.segs)-1 {
			b, err = l.cur.read()
		} else {
			f, _, oerr := l.store.open(m.idx)
			if oerr != nil {
				return nil, oerr
			}
			b, err = f.read()
			f.close()
		}
		if err != nil {
			return nil, fmt.Errorf("wal: segment %s read: %w", SegmentName(m.idx), err)
		}
		out = append(out, SegmentData{Index: m.idx, Data: b})
	}
	return out, nil
}

// Rewrite implements LogDevice: checkpoint truncation writes the new
// image as segment N+1 (synced before it counts), then unlinks segments
// oldest-first. A crash after the new segment is durable leaves a
// suffix [k..N+1]; recovery scans the concatenation, and the last
// checkpoint frame — the one just written — wins, so every crash state
// recovers to the same database.
func (l *SegmentLog) Rewrite(b []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	next := l.curMeta().idx + 1
	f, err := l.store.create(next)
	if err != nil {
		return fmt.Errorf("wal: rewrite segment: %w", err)
	}
	if l.prealloc > 0 {
		if err := f.prealloc(l.prealloc); err != nil {
			f.close()
			l.store.remove(next)
			return fmt.Errorf("wal: rewrite segment prealloc: %w", err)
		}
	}
	if err := f.append(b); err != nil {
		f.close()
		l.store.remove(next)
		return fmt.Errorf("wal: rewrite segment: %w", err)
	}
	if err := f.sync(); err != nil {
		f.close()
		return fmt.Errorf("wal: rewrite segment: %w", err)
	}
	if err := l.store.syncDir(); err != nil {
		f.close()
		return fmt.Errorf("wal: rewrite segment: %w", err)
	}
	// The new image is durable; retire the old segments oldest-first so
	// any partial removal still leaves a contiguous index range.
	l.cur.close()
	for _, m := range l.segs {
		if err := l.store.remove(m.idx); err != nil {
			// The old segment sticks around; recovery still lands on the
			// new checkpoint. Report nothing — the log stays correct.
			continue
		}
	}
	_ = l.store.syncDir()
	l.segs = []segMeta{{idx: next, size: int64(len(b))}}
	l.cur = f
	l.curSynced = int64(len(b))
	l.total = int64(len(b))
	return nil
}

// fireRetire hits FaultRetire with the usual panic conversion.
func (l *SegmentLog) fireRetire() (err error, crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			p, ok := faultinject.AsPanic(r)
			if !ok {
				panic(r)
			}
			err, crashed = p, true
		}
	}()
	return l.faults.Fire(FaultRetire, faultinject.Ctx{}), false
}

// RetireSegments implements Retirer: unlink sealed segments with index
// < beforeIdx, oldest first, each optionally copied to archiveDir
// first (copy synced before the unlink, so the archive never misses a
// retired segment). The current segment is never retired. A failure —
// injected or real — stops the sweep mid-way; because removal is
// oldest-first, the survivors [k..N] stay a contiguous index range that
// openSegments and ClassifySegments accept.
func (l *SegmentLog) RetireSegments(beforeIdx int, archiveDir string) (retired, archived int, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.segs) > 1 && l.segs[0].idx < beforeIdx {
		m := l.segs[0]
		ferr, crashed := l.fireRetire()
		if ferr != nil || crashed {
			_ = l.store.syncDir()
			return retired, archived, fmt.Errorf("wal: segment retire %s: %w", SegmentName(m.idx), ferr)
		}
		if archiveDir != "" {
			f, _, oerr := l.store.open(m.idx)
			if oerr != nil {
				return retired, archived, fmt.Errorf("wal: segment retire %s: %w", SegmentName(m.idx), oerr)
			}
			data, rerr := f.read()
			f.close()
			if rerr != nil {
				return retired, archived, fmt.Errorf("wal: segment retire %s: %w", SegmentName(m.idx), rerr)
			}
			if aerr := l.store.archive(archiveDir, m.idx, data); aerr != nil {
				return retired, archived, fmt.Errorf("wal: segment archive %s: %w", SegmentName(m.idx), aerr)
			}
			archived++
		}
		if rerr := l.store.remove(m.idx); rerr != nil {
			return retired, archived, fmt.Errorf("wal: segment retire %s: %w", SegmentName(m.idx), rerr)
		}
		l.total -= m.size
		l.segs = l.segs[1:]
		retired++
	}
	if retired > 0 {
		if serr := l.store.syncDir(); serr != nil {
			return retired, archived, fmt.Errorf("wal: segment retire: %w", serr)
		}
	}
	return retired, archived, nil
}

// TruncateTail implements TailTruncator: discard everything past the
// logical offset valid (torn-tail repair). Later segments are removed
// newest-first, then the segment containing the cut is truncated.
func (l *SegmentLog) TruncateTail(valid int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if valid > l.total {
		return fmt.Errorf("wal: truncate to %d beyond log size %d", valid, l.total)
	}
	// Find the segment containing the cut.
	off := int64(0)
	cutSeg := 0
	for i, m := range l.segs {
		if valid <= off+m.size {
			cutSeg = i
			break
		}
		off += m.size
	}
	// Remove segments after it, newest-first (keeps [0..cut] contiguous
	// if interrupted).
	if cutSeg < len(l.segs)-1 {
		l.cur.close()
		for i := len(l.segs) - 1; i > cutSeg; i-- {
			if err := l.store.remove(l.segs[i].idx); err != nil {
				return fmt.Errorf("wal: truncate: %w", err)
			}
			l.total -= l.segs[i].size
			l.segs = l.segs[:i]
		}
		// Reopen the surviving tail segment as current.
		f, _, err := l.store.open(l.segs[cutSeg].idx)
		if err != nil {
			return fmt.Errorf("wal: truncate: %w", err)
		}
		l.cur = f
	}
	keep := valid - off
	if keep < l.segs[cutSeg].size {
		if err := l.cur.truncate(keep); err != nil {
			return fmt.Errorf("wal: truncate: %w", err)
		}
		if err := l.cur.sync(); err != nil {
			return fmt.Errorf("wal: truncate: %w", err)
		}
		l.total -= l.segs[cutSeg].size - keep
		l.segs[cutSeg].size = keep
	}
	l.curSynced = l.segs[cutSeg].size
	if l.prealloc > 0 {
		// Re-extend the padding the repair just cut: the surviving tail
		// segment is current again and appends resume into it.
		if err := l.cur.prealloc(l.prealloc); err != nil {
			return fmt.Errorf("wal: truncate: %w", err)
		}
	}
	_ = l.store.syncDir()
	return nil
}

// Size implements LogDevice.
func (l *SegmentLog) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// CurrentSegment returns the index of the segment new appends land in.
// The engine samples it while appending a chain root's begin marker
// (under the commit barrier): every earlier segment is covered once
// that chain completes, so the sample is the chain's retirement bound.
func (l *SegmentLog) CurrentSegment() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.curMeta().idx
}

// SegmentCount returns the number of live segments (observability).
func (l *SegmentLog) SegmentCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}

// Close releases the current segment's handle.
func (l *SegmentLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.cur != nil {
		err := l.cur.close()
		l.cur = nil
		return err
	}
	return nil
}

// ---- in-memory backend ----

type memSeg struct {
	mu  sync.Mutex
	buf []byte
}

func (s *memSeg) append(b []byte) error {
	s.mu.Lock()
	s.buf = append(s.buf, b...)
	s.mu.Unlock()
	return nil
}
func (s *memSeg) sync() error { return nil }
func (s *memSeg) truncate(n int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n > int64(len(s.buf)) {
		return fmt.Errorf("wal: mem segment truncate %d > %d", n, len(s.buf))
	}
	s.buf = s.buf[:n]
	return nil
}
func (s *memSeg) prealloc(int64) error { return nil }
func (s *memSeg) read() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.buf...), nil
}
func (s *memSeg) close() error { return nil }

type memSegStore struct {
	mu       sync.Mutex
	segs     map[int]*memSeg
	archived map[int][]byte // retired-segment images, keyed by index
}

func (st *memSegStore) list() ([]int, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]int, 0, len(st.segs))
	for i := range st.segs {
		out = append(out, i)
	}
	return out, nil
}

func (st *memSegStore) open(idx int) (segFile, int64, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.segs[idx]
	if !ok {
		return nil, 0, fmt.Errorf("wal: mem segment %s missing", SegmentName(idx))
	}
	return s, int64(len(s.buf)), nil
}

func (st *memSegStore) create(idx int) (segFile, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.segs[idx]; ok {
		return nil, fmt.Errorf("wal: mem segment %s exists", SegmentName(idx))
	}
	s := &memSeg{}
	st.segs[idx] = s
	return s, nil
}

func (st *memSegStore) remove(idx int) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	delete(st.segs, idx)
	return nil
}

func (st *memSegStore) archive(dir string, idx int, data []byte) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.archived == nil {
		st.archived = map[int][]byte{}
	}
	st.archived[idx] = append([]byte(nil), data...)
	return nil
}

func (st *memSegStore) syncDir() error { return nil }

// ---- file backend ----

type fileSeg struct {
	f    *os.File
	size int64
}

func (s *fileSeg) append(b []byte) error {
	n, err := s.f.WriteAt(b, s.size)
	s.size += int64(n)
	return err
}
func (s *fileSeg) sync() error { return s.f.Sync() }
func (s *fileSeg) truncate(n int64) error {
	if err := s.f.Truncate(n); err != nil {
		return err
	}
	s.size = n
	return nil
}
func (s *fileSeg) prealloc(n int64) error {
	if n <= s.size {
		return nil
	}
	// Zero-extend the physical file; s.size (the logical tail appends
	// write at) is untouched.
	return s.f.Truncate(n)
}
func (s *fileSeg) read() ([]byte, error) {
	buf := make([]byte, s.size)
	if _, err := s.f.ReadAt(buf, 0); err != nil && s.size > 0 {
		return nil, err
	}
	return buf, nil
}
func (s *fileSeg) close() error { return s.f.Close() }

type fileSegStore struct {
	dir string
}

func (st *fileSegStore) list() ([]int, error) {
	ents, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, err
	}
	var out []int
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if idx, ok := ParseSegmentName(e.Name()); ok {
			out = append(out, idx)
		}
	}
	return out, nil
}

func (st *fileSegStore) open(idx int) (segFile, int64, error) {
	f, err := os.OpenFile(filepath.Join(st.dir, SegmentName(idx)), os.O_RDWR, 0o644)
	if err != nil {
		return nil, 0, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	return &fileSeg{f: f, size: fi.Size()}, fi.Size(), nil
}

func (st *fileSegStore) create(idx int) (segFile, error) {
	f, err := os.OpenFile(filepath.Join(st.dir, SegmentName(idx)), os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	return &fileSeg{f: f}, nil
}

func (st *fileSegStore) remove(idx int) error {
	return os.Remove(filepath.Join(st.dir, SegmentName(idx)))
}

func (st *fileSegStore) archive(dir string, idx int, data []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.OpenFile(filepath.Join(dir, SegmentName(idx)), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return syncDir(dir)
}

func (st *fileSegStore) syncDir() error { return syncDir(st.dir) }

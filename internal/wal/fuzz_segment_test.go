package wal_test

import (
	"testing"

	"sicost/internal/core"
	"sicost/internal/engine"
	"sicost/internal/wal"
)

// fuzzSegments splits raw fuzz bytes into a segment layout: the first
// byte pair picks the segment count and a starting index, the rest is
// the stream, cut at positions derived from the data itself. The
// classifier must never panic — it may reject the layout (gaps,
// duplicate indices, torn sealed segments) or classify a valid prefix.
func fuzzSegments(data []byte) []wal.SegmentData {
	if len(data) < 2 {
		return []wal.SegmentData{{Index: 0, Data: data}}
	}
	n := int(data[0]%4) + 1
	start := int(data[1] % 3)
	body := data[2:]
	segs := make([]wal.SegmentData, 0, n)
	for i := 0; i < n; i++ {
		cut := len(body) * (i + 1) / n
		prev := len(body) * i / n
		idx := start + i
		if data[1]&0x80 != 0 && i == n-1 {
			idx++ // sometimes leave a gap before the last segment
		}
		segs = append(segs, wal.SegmentData{Index: idx, Data: body[prev:cut]})
	}
	return segs
}

// FuzzRecoverSegments drives arbitrary multi-segment layouts through
// ClassifySegments and the full engine rebuild. Invariants: never
// panic; when classification succeeds, scan accounting matches the
// concatenated length; rejected layouts (missing middles, corrupt
// sealed segments) error rather than "recover".
func FuzzRecoverSegments(f *testing.F) {
	schema := core.Schema{
		Name: "t",
		Columns: []core.Column{
			{Name: "id", Kind: core.KindInt, NotNull: true},
			{Name: "v", Kind: core.KindInt},
		},
		PK: 0,
	}
	commit := func(csn uint64) []byte {
		return wal.EncodeCommit(&wal.CommitFrame{
			TxID: csn + 10, CSN: csn,
			Rows: []wal.RowImage{{Table: "t", Key: core.Int(1), Rec: core.Record{core.Int(1), core.Int(int64(csn))}}},
		})
	}
	// Torn tail in segment N: two commits then a truncated third.
	stream := append(wal.EncodeSchema(&schema), commit(1)...)
	stream = append(stream, commit(2)...)
	tornTail := append(append([]byte(nil), stream...), commit(3)[:5]...)
	f.Add([]byte{2, 0}, tornTail)        // two segments, torn in the last
	f.Add([]byte{3, 0}, stream)          // three clean segments, frames split at boundaries
	f.Add([]byte{2, 0x80}, stream)       // gap before the last segment: must be rejected
	f.Add([]byte{1, 1}, stream)          // single segment, nonzero start index
	f.Add([]byte{4, 0}, commit(1))       // tiny frames over many segments
	f.Add([]byte{2, 0}, []byte{1, 2, 3}) // garbage
	f.Add([]byte{0, 0}, []byte{})        // empty

	// Fuzzy checkpoint chain layouts: a full root link, a redo commit, a
	// delta link based on it — then the same stream with the last link
	// torn mid-batch, and with the link's frames straddling boundaries.
	link := func(base, cut uint64, rows []wal.DeltaRow) []byte {
		out := wal.EncodeDeltaBegin(&wal.DeltaBegin{CSN: cut, Base: base, Schemas: []core.Schema{schema}})
		out = append(out, wal.EncodeDeltaRows(&wal.DeltaRows{CSN: cut, Rows: rows})...)
		return append(out, wal.EncodeDeltaEnd(&wal.DeltaEnd{CSN: cut, Rows: uint64(len(rows))})...)
	}
	chain := append(wal.EncodeSchema(&schema),
		link(0, 2, []wal.DeltaRow{{Table: "t", Key: core.Int(1), CSN: 2, Rec: core.Record{core.Int(1), core.Int(2)}}})...)
	chain = append(chain, commit(3)...)
	lastLink := link(2, 3, []wal.DeltaRow{
		{Table: "t", Key: core.Int(1), CSN: 3, Rec: core.Record{core.Int(1), core.Int(3)}},
		{Table: "t", Key: core.Int(2)}, // tombstone image
	})
	f.Add([]byte{2, 0}, append(append([]byte(nil), chain...), lastLink...))        // complete chain over two segments
	f.Add([]byte{4, 0}, append(append([]byte(nil), chain...), lastLink...))       // chain frames straddling boundaries
	f.Add([]byte{3, 0}, append(append([]byte(nil), chain...), lastLink[:9]...))   // torn mid-begin of the last link
	f.Add([]byte{2, 0}, append(append([]byte(nil), chain...), lastLink[:len(lastLink)-5]...)) // torn before the end marker

	f.Fuzz(func(t *testing.T, head, body []byte) {
		segs := fuzzSegments(append(append([]byte(nil), head...), body...))
		total := 0
		for _, s := range segs {
			total += len(s.Data)
		}
		info, err := wal.ClassifySegments(segs)
		if err != nil {
			return // rejected layout; no panic is the property
		}
		if info.ValidBytes+info.TornBytes != total {
			t.Fatalf("scan accounting: %d valid + %d torn != %d", info.ValidBytes, info.TornBytes, total)
		}
		if info.Segments != len(segs) {
			t.Fatalf("info.Segments = %d, layout has %d", info.Segments, len(segs))
		}
		// The accepted concatenation must also rebuild (or error) without
		// panicking, exactly like a flat image.
		var all []byte
		for _, s := range segs {
			all = append(all, s.Data...)
		}
		db, _, rerr := engine.Recover(wal.NewMemDeviceBytes(all), engine.Config{})
		if rerr == nil {
			db.Close()
		}
	})
}

// FuzzParseSegmentName pins the segment-name parser: it must never
// panic, must round-trip every canonical name, and must accept only
// strings SegmentName could have produced (modulo zero-padding width).
func FuzzParseSegmentName(f *testing.F) {
	f.Add("wal.0000")
	f.Add("wal.0042")
	f.Add("wal.123456789")
	f.Add("wal.1234567890")
	f.Add("wal.-001")
	f.Add("wal.00.0")
	f.Add("wal.0000.tmp")
	f.Add("")
	f.Add("wal.")
	f.Add("\x00\xff")

	f.Fuzz(func(t *testing.T, name string) {
		idx, ok := wal.ParseSegmentName(name)
		if !ok {
			return
		}
		if idx < 0 || idx > 999999999 {
			t.Fatalf("ParseSegmentName(%q) = %d out of range", name, idx)
		}
		// Accepted names must consist of the prefix plus digits only, and
		// the canonical spelling of idx must parse back to idx.
		if got, ok2 := wal.ParseSegmentName(wal.SegmentName(idx)); !ok2 || got != idx {
			t.Fatalf("round trip %q -> %d -> %q failed", name, idx, wal.SegmentName(idx))
		}
	})
}

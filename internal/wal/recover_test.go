package wal

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"sicost/internal/core"
)

func commitFrameBytes(csn uint64, rows ...RowImage) []byte {
	return EncodeCommit(&CommitFrame{TxID: csn + 1000, CSN: csn, Rows: rows})
}

func TestClassifyCheckpointAndRedo(t *testing.T) {
	ckpt := &Checkpoint{
		CSN: 5,
		Tables: []CheckpointTable{{
			Schema: testSchema(),
			Rows:   []CheckpointRow{{Key: core.Int(1), CSN: 4, Rec: core.Record{core.Int(1), core.Str("a")}}},
		}},
	}
	var log []byte
	log = append(log, EncodeCheckpoint(ckpt)...)
	log = append(log, commitFrameBytes(7)...)
	log = append(log, commitFrameBytes(6)...)
	log = append(log, commitFrameBytes(3)...) // pre-cut commit in an untruncated log

	info := Classify(log)
	if info.Checkpoint == nil || info.Checkpoint.CSN != 5 {
		t.Fatalf("checkpoint: %+v", info.Checkpoint)
	}
	if len(info.Commits) != 2 || info.Commits[0].CSN != 6 || info.Commits[1].CSN != 7 {
		t.Fatalf("redo commits not CSN-sorted past the cut: %+v", info.Commits)
	}
	if info.HighCSN != 7 {
		t.Fatalf("HighCSN = %d, want 7", info.HighCSN)
	}
	if info.TornBytes != 0 || info.ValidBytes != len(log) || info.Frames != 4 {
		t.Fatalf("scan accounting: %+v", info)
	}
	if len(info.Schemas) != 1 || info.Schemas[0].Name != "T" {
		t.Fatalf("checkpoint-embedded schema not extracted: %+v", info.Schemas)
	}
}

func TestClassifyLastCheckpointWins(t *testing.T) {
	var log []byte
	log = append(log, EncodeCheckpoint(&Checkpoint{CSN: 3})...)
	log = append(log, commitFrameBytes(4)...)
	log = append(log, EncodeCheckpoint(&Checkpoint{CSN: 8})...)
	log = append(log, commitFrameBytes(9)...)

	info := Classify(log)
	if info.Checkpoint.CSN != 8 {
		t.Fatalf("checkpoint CSN = %d, want the later one (8)", info.Checkpoint.CSN)
	}
	if len(info.Commits) != 1 || info.Commits[0].CSN != 9 {
		t.Fatalf("commits = %+v, want only CSN 9", info.Commits)
	}
}

func TestClassifySchemaDedupLastWins(t *testing.T) {
	v1 := core.Schema{Name: "T", Columns: []core.Column{{Name: "a", Kind: core.KindInt, NotNull: true}}, PK: 0}
	v2 := v1
	v2.Columns = append([]core.Column{}, v1.Columns...)
	v2.Columns = append(v2.Columns, core.Column{Name: "b", Kind: core.KindString})
	var log []byte
	log = append(log, EncodeSchema(&v1)...)
	log = append(log, EncodeSchema(&v2)...)

	info := Classify(log)
	if len(info.Schemas) != 1 {
		t.Fatalf("schemas = %+v, want 1 deduplicated entry", info.Schemas)
	}
	if len(info.Schemas[0].Columns) != 2 {
		t.Fatalf("dedup kept the older definition: %+v", info.Schemas[0])
	}
}

func TestRecoverRepairsTornTail(t *testing.T) {
	clean := append(commitFrameBytes(1), commitFrameBytes(2)...)
	torn := append(append([]byte{}, clean...), 0xde, 0xad, 0xbe)
	dev := NewMemDeviceBytes(torn)

	info, err := Recover(dev)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Repaired || info.TornBytes != 3 || info.ValidBytes != len(clean) {
		t.Fatalf("first recovery: %+v", info)
	}
	if info.HighCSN != 2 || len(info.Commits) != 2 {
		t.Fatalf("classification: HighCSN=%d commits=%d", info.HighCSN, len(info.Commits))
	}
	if dev.Size() != int64(len(clean)) {
		t.Fatalf("device not truncated to valid prefix: %d, want %d", dev.Size(), len(clean))
	}

	// Second recovery: clean log, identical classification.
	again, err := Recover(dev)
	if err != nil {
		t.Fatal(err)
	}
	if again.Repaired || again.TornBytes != 0 {
		t.Fatalf("second recovery repaired again: %+v", again)
	}
	if again.HighCSN != info.HighCSN || len(again.Commits) != len(info.Commits) {
		t.Fatalf("recovery not idempotent: %+v vs %+v", again, info)
	}
}

// history is a randomly generated commit log: quick.Check drives the
// recovery-idempotence property over it.
type history struct {
	commits []*CommitFrame
	junk    []byte
}

// Generate implements quick.Generator: a random run of commit frames
// with strictly ascending CSNs and random row images, followed by a
// random (possibly torn) tail.
func (history) Generate(r *rand.Rand, size int) reflect.Value {
	h := history{}
	csn := uint64(0)
	for i, n := 0, r.Intn(8); i < n; i++ {
		csn += 1 + uint64(r.Intn(3))
		c := &CommitFrame{TxID: uint64(r.Intn(100) + 1), CSN: csn}
		for j, m := 0, r.Intn(4); j < m; j++ {
			row := RowImage{Table: "t", Key: core.Int(int64(r.Intn(10)))}
			if r.Intn(4) > 0 {
				row.Rec = core.Record{core.Int(int64(r.Intn(10))), core.Int(r.Int63n(1000))}
			}
			c.Rows = append(c.Rows, row)
		}
		h.commits = append(h.commits, c)
	}
	h.junk = make([]byte, r.Intn(24))
	r.Read(h.junk)
	return reflect.ValueOf(h)
}

// TestRecoveryIdempotenceQuick is the property behind engine.Recover's
// idempotence promise, checked at the log layer over random commit
// histories: recovering a device (repairing its torn tail) and then
// recovering it again — or recovering the already-repaired image —
// classifies to the same redo plan, and every acknowledged commit (all
// frames before the junk tail) survives both passes.
func TestRecoveryIdempotenceQuick(t *testing.T) {
	prop := func(h history) bool {
		var log []byte
		for _, c := range h.commits {
			log = append(log, EncodeCommit(c)...)
		}
		clean := len(log)
		log = append(log, h.junk...)

		dev := NewMemDeviceBytes(log)
		first, err := Recover(dev)
		if err != nil {
			return false
		}
		second, err := Recover(dev)
		if err != nil {
			return false
		}
		// Every acked commit survives; the junk tail (which might itself
		// start with bytes that happen to parse) never removes one.
		if len(first.Commits) < len(h.commits) || first.ValidBytes < clean {
			return false
		}
		for i, c := range h.commits {
			if first.Commits[i].CSN != c.CSN || len(first.Commits[i].Rows) != len(c.Rows) {
				return false
			}
		}
		// Idempotence: the repaired log classifies identically.
		return second.TornBytes == 0 &&
			second.HighCSN == first.HighCSN &&
			len(second.Commits) == len(first.Commits) &&
			second.ValidBytes == first.ValidBytes
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

package wal

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"sicost/internal/core"
	"sicost/internal/faultinject"
)

func durableCommit(w *WAL, csn uint64) error {
	return w.Commit(&Record{
		TxID: csn + 100, CSN: csn,
		Rows: []RowImage{{Table: "t", Key: core.Int(int64(csn)), Rec: core.Record{core.Int(int64(csn))}}},
	})
}

func TestDurableCommitPersistsDecodableFrames(t *testing.T) {
	dev := NewMemDevice()
	w := New(Config{Device: dev})
	defer w.Close()

	for csn := uint64(1); csn <= 3; csn++ {
		if err := durableCommit(w, csn); err != nil {
			t.Fatal(err)
		}
	}
	b, err := dev.Contents()
	if err != nil {
		t.Fatal(err)
	}
	frames, valid := ScanLog(b)
	if valid != len(b) {
		t.Fatalf("device holds a torn log after clean commits: %d of %d bytes valid", valid, len(b))
	}
	if len(frames) != 3 {
		t.Fatalf("decoded %d frames, want 3", len(frames))
	}
	for i, f := range frames {
		if f.Commit == nil || f.Commit.CSN != uint64(i+1) {
			t.Fatalf("frame %d: %+v, want commit CSN %d", i, f, i+1)
		}
	}
	if s := w.Stats(); s.Bytes != dev.Size() || s.Records != 3 {
		t.Fatalf("stats %+v disagree with device size %d", s, dev.Size())
	}
}

func TestInjectedFailureKeepsDeviceUntouched(t *testing.T) {
	dev := NewMemDevice()
	w := New(Config{Device: dev})
	defer w.Close()
	boom := errors.New("disk on fire")
	w.InjectFailure(boom)
	if err := durableCommit(w, 1); !errors.Is(err, boom) {
		t.Fatalf("commit = %v, want injected error", err)
	}
	if dev.Size() != 0 {
		t.Fatalf("failed flush wrote %d bytes to the device", dev.Size())
	}
	if s := w.Stats(); s.FailedFlushes != 1 || s.Flushes != 0 {
		t.Fatalf("stats = %+v", s)
	}
	// An injected failure is transient, not a crash: the WAL recovers.
	w.InjectFailure(nil)
	if err := durableCommit(w, 2); err != nil {
		t.Fatalf("after clearing: %v", err)
	}
	if w.Broken() != nil {
		t.Fatalf("transient failure bricked the WAL: %v", w.Broken())
	}
}

// TestFlushCrashTearsAndBricks is the wal/flush ActPanic regression
// test: an injected mid-flush crash must not kill the process (the
// panic fires on the background flush goroutine, where it is
// unrecoverable by any caller), must fail the batch, leave at most a
// strict prefix of the batch's first frame on the device, and brick the
// WAL until recovery.
func TestFlushCrashTearsAndBricks(t *testing.T) {
	dev := NewMemDevice()
	w := New(Config{Device: dev})
	reg := faultinject.New(3)
	w.SetFaults(reg)
	defer w.Close()

	if err := durableCommit(w, 1); err != nil {
		t.Fatal(err)
	}
	cleanSize := dev.Size()

	if err := reg.Arm(faultinject.Spec{Point: FaultFlush, Count: 1, Action: faultinject.ActPanic}); err != nil {
		t.Fatal(err)
	}
	err := durableCommit(w, 2)
	if !errors.Is(err, core.ErrInjected) {
		t.Fatalf("crashed commit = %v, want ErrInjected", err)
	}
	if w.Broken() == nil {
		t.Fatal("mid-flush crash did not brick the WAL")
	}
	if s := w.Stats(); s.FailedFlushes != 1 || s.Records != 1 {
		t.Fatalf("stats after crash = %+v", s)
	}

	// The device may have gained a torn prefix, but never a full new
	// frame: the unacknowledged commit must not be durable.
	b, _ := dev.Contents()
	frames, valid := ScanLog(b)
	if len(frames) != 1 {
		t.Fatalf("device decodes %d frames after crash, want the 1 acked commit", len(frames))
	}
	if valid != int(cleanSize) {
		t.Fatalf("valid prefix %d, want %d (the pre-crash log)", valid, cleanSize)
	}

	// Bricked: the fault is exhausted, yet commits still fail, with the
	// sticky crash error — only Recover may bring the engine back.
	if err := durableCommit(w, 3); !errors.Is(err, core.ErrInjected) {
		t.Fatalf("commit on bricked WAL = %v, want the sticky crash error", err)
	}

	// And the torn image recovers to exactly the acked history.
	info, rerr := Recover(dev)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if len(info.Commits) != 1 || info.Commits[0].CSN != 1 || info.HighCSN != 1 {
		t.Fatalf("recovery after crash: %+v", info)
	}
}

// errDevice fails every operation after a configurable number of
// appends; it models a dying disk rather than an injected fault.
type errDevice struct {
	MemDevice
	fail bool
}

func (d *errDevice) Append(b []byte) error {
	if d.fail {
		return fmt.Errorf("I/O error")
	}
	return d.MemDevice.Append(b)
}

func TestDeviceErrorBricksWAL(t *testing.T) {
	dev := &errDevice{}
	w := New(Config{Device: dev})
	defer w.Close()
	if err := durableCommit(w, 1); err != nil {
		t.Fatal(err)
	}
	dev.fail = true
	if err := durableCommit(w, 2); err == nil {
		t.Fatal("commit succeeded on a failing device")
	}
	if w.Broken() == nil {
		t.Fatal("device error did not brick the WAL (fsyncgate discipline)")
	}
	dev.fail = false
	if err := durableCommit(w, 3); err == nil {
		t.Fatal("bricked WAL accepted a commit after the device 'recovered'")
	}
}

func TestWriteCheckpointTruncatesLog(t *testing.T) {
	dev := NewMemDevice()
	w := New(Config{Device: dev})
	defer w.Close()
	for csn := uint64(1); csn <= 4; csn++ {
		if err := durableCommit(w, csn); err != nil {
			t.Fatal(err)
		}
	}
	ckpt := &Checkpoint{CSN: 4, Tables: []CheckpointTable{{Schema: testSchema()}}}
	if err := w.WriteCheckpoint(ckpt); err != nil {
		t.Fatal(err)
	}
	b, _ := dev.Contents()
	frames, valid := ScanLog(b)
	if valid != len(b) || len(frames) != 1 || frames[0].Checkpoint == nil {
		t.Fatalf("after checkpoint the log must be exactly 1 checkpoint frame; got %d frames", len(frames))
	}
	if frames[0].Checkpoint.CSN != 4 {
		t.Fatalf("checkpoint CSN %d, want 4", frames[0].Checkpoint.CSN)
	}
	if s := w.Stats(); s.Checkpoints != 1 {
		t.Fatalf("stats = %+v, want Checkpoints=1", s)
	}
	// Commits after the checkpoint append beyond it.
	if err := durableCommit(w, 5); err != nil {
		t.Fatal(err)
	}
	b, _ = dev.Contents()
	if frames, _ := ScanLog(b); len(frames) != 2 || frames[1].Commit == nil {
		t.Fatalf("post-checkpoint commit not appended: %d frames", len(frames))
	}
}

func TestAppendSchemaPersistsDDL(t *testing.T) {
	dev := NewMemDevice()
	w := New(Config{Device: dev})
	defer w.Close()
	s := testSchema()
	if err := w.AppendSchema(&s); err != nil {
		t.Fatal(err)
	}
	b, _ := dev.Contents()
	frames, _ := ScanLog(b)
	if len(frames) != 1 || frames[0].Schema == nil || frames[0].Schema.Name != "T" {
		t.Fatalf("DDL frame not persisted: %+v", frames)
	}
	// Without a device DDL is a no-op, not an error.
	w2 := New(Config{FsyncLatency: time.Millisecond})
	defer w2.Close()
	if err := w2.AppendSchema(&s); err != nil {
		t.Fatal(err)
	}
}

// TestDurableCommitStress races committers against injected transient
// failures and a final Close on a device-attached WAL (run under -race
// via the Makefile's race target). Every commit must get exactly one
// verdict, and the device must end with a fully valid log containing
// exactly the acknowledged commits.
func TestDurableCommitStress(t *testing.T) {
	dev := NewMemDevice()
	w := New(Config{Device: dev, MaxBatch: 4})

	const committers = 8
	const perCommitter = 30
	var wg sync.WaitGroup
	acked := make(chan uint64, committers*perCommitter)
	for c := 0; c < committers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perCommitter; i++ {
				csn := uint64(c*1000 + i + 1)
				if err := durableCommit(w, csn); err == nil {
					acked <- csn
				}
			}
		}(c)
	}
	var fg sync.WaitGroup
	fg.Add(1)
	go func() {
		defer fg.Done()
		boom := errors.New("transient")
		for i := 0; i < 20; i++ {
			w.InjectFailure(boom)
			time.Sleep(50 * time.Microsecond)
			w.InjectFailure(nil)
			time.Sleep(150 * time.Microsecond)
		}
	}()
	wg.Wait()
	fg.Wait()
	w.Close()
	close(acked)

	want := map[uint64]bool{}
	for csn := range acked {
		want[csn] = true
	}
	b, err := dev.Contents()
	if err != nil {
		t.Fatal(err)
	}
	frames, valid := ScanLog(b)
	if valid != len(b) {
		t.Fatalf("log torn after clean close: %d of %d bytes valid", valid, len(b))
	}
	got := map[uint64]bool{}
	for _, f := range frames {
		if f.Commit == nil {
			t.Fatalf("non-commit frame in stress log: %+v", f)
		}
		got[f.Commit.CSN] = true
	}
	// Durability: every acked commit is on the device. (The converse —
	// a durable but unacked commit — is possible only for records whose
	// flush group completed while Close raced, which cannot happen here:
	// Close runs after every committer returned.)
	for csn := range want {
		if !got[csn] {
			t.Fatalf("acked commit %d missing from the device", csn)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("device holds %d commits, acked %d — unacked commit became durable", len(got), len(want))
	}
	if s := w.Stats(); int(s.Records) != len(want) {
		t.Fatalf("stats records %d, acked %d", s.Records, len(want))
	}
}

package wal

import (
	"errors"
	"sync"
	"testing"
	"time"

	"sicost/internal/core"
)

// commitN commits a bookkeeping-only record (the latency-simulation
// shape most WAL tests exercise): txID plus an accounted byte size.
func commitN(w *WAL, txID uint64, n int) error {
	return w.Commit(&Record{TxID: txID, Bytes: n})
}

func TestDisabledWALIsFree(t *testing.T) {
	w := New(Config{})
	start := time.Now()
	if err := commitN(w, 1, 100); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 50*time.Millisecond {
		t.Fatal("disabled WAL waited")
	}
	if w.Enabled() {
		t.Fatal("zero-latency WAL must report disabled")
	}
	if s := w.Stats(); s.Flushes != 0 || s.Records != 0 {
		t.Fatalf("disabled WAL recorded stats: %+v", s)
	}
}

func TestCommitWaitsForFsync(t *testing.T) {
	w := New(Config{FsyncLatency: 20 * time.Millisecond})
	defer w.Close()
	start := time.Now()
	if err := commitN(w, 1, 64); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 20*time.Millisecond {
		t.Fatalf("commit returned after %v, before fsync latency", el)
	}
	s := w.Stats()
	if s.Flushes != 1 || s.Records != 1 || s.Bytes != 64 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestGroupCommitAmortizesFlushes(t *testing.T) {
	w := New(Config{FsyncLatency: 30 * time.Millisecond})
	defer w.Close()

	const n = 16
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			if err := commitN(w, id, 10); err != nil {
				t.Error(err)
			}
		}(uint64(i))
	}
	wg.Wait()
	elapsed := time.Since(start)

	s := w.Stats()
	if s.Records != n {
		t.Fatalf("records = %d, want %d", s.Records, n)
	}
	// All 16 commits must share a small number of flushes (at most 3:
	// one for the first arrival, one or two groups for the rest).
	if s.Flushes > 3 {
		t.Fatalf("flushes = %d; group commit not batching", s.Flushes)
	}
	if elapsed > 5*30*time.Millisecond {
		t.Fatalf("16 concurrent commits took %v; not amortized", elapsed)
	}
	if s.AvgBatch() < float64(n)/3 {
		t.Fatalf("avg batch = %.1f, expected large groups", s.AvgBatch())
	}
}

func TestMaxBatchSplitsGroups(t *testing.T) {
	w := New(Config{FsyncLatency: 5 * time.Millisecond, MaxBatch: 2})
	defer w.Close()

	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			if err := commitN(w, id, 1); err != nil {
				t.Error(err)
			}
		}(uint64(i))
	}
	wg.Wait()
	s := w.Stats()
	if s.Records != 6 {
		t.Fatalf("records = %d", s.Records)
	}
	if s.Flushes < 3 {
		t.Fatalf("flushes = %d; MaxBatch=2 should force at least 3 groups for 6 records", s.Flushes)
	}
}

func TestInjectFailure(t *testing.T) {
	w := New(Config{FsyncLatency: time.Millisecond})
	defer w.Close()
	boom := errors.New("log disk failure")
	w.InjectFailure(boom)
	if err := commitN(w, 1, 1); !errors.Is(err, boom) {
		t.Fatalf("Commit err = %v, want injected fault", err)
	}
	// A failed flush is accounted as failed, never as durable work.
	if s := w.Stats(); s.FailedFlushes != 1 || s.Flushes != 0 || s.Records != 0 || s.Bytes != 0 {
		t.Fatalf("stats after failed flush = %+v, want only FailedFlushes=1", s)
	}
	w.InjectFailure(nil)
	if err := commitN(w, 2, 1); err != nil {
		t.Fatalf("after clearing fault: %v", err)
	}
	if s := w.Stats(); s.FailedFlushes != 1 || s.Flushes != 1 || s.Records != 1 {
		t.Fatalf("stats after recovery = %+v, want Flushes=1 Records=1 FailedFlushes=1", s)
	}
}

func TestCloseFailsPendingAndFutureCommits(t *testing.T) {
	w := New(Config{FsyncLatency: 50 * time.Millisecond})

	errc := make(chan error, 1)
	go func() { errc <- commitN(w, 1, 1) }()
	// Let the commit enqueue, then close mid-flight. The in-flight flush
	// group may still succeed; what must hold is that a commit issued
	// after Close fails immediately.
	time.Sleep(5 * time.Millisecond)
	w.Close()
	<-errc // either nil (already in a flush group) or ErrWALClosed

	if err := commitN(w, 2, 1); !errors.Is(err, core.ErrWALClosed) {
		t.Fatalf("commit after close = %v, want ErrWALClosed", err)
	}
	w.Close() // idempotent
}

func TestSequentialCommitsSeparateFlushes(t *testing.T) {
	w := New(Config{FsyncLatency: 5 * time.Millisecond})
	defer w.Close()
	for i := 0; i < 3; i++ {
		if err := commitN(w, uint64(i), 1); err != nil {
			t.Fatal(err)
		}
	}
	s := w.Stats()
	if s.Flushes != 3 {
		t.Fatalf("3 sequential commits produced %d flushes, want 3", s.Flushes)
	}
	if s.AvgBatch() != 1 {
		t.Fatalf("avg batch = %.1f, want 1 for sequential commits", s.AvgBatch())
	}
}

func TestScaledConfig(t *testing.T) {
	c := Config{FsyncLatency: 10 * time.Millisecond}.Scaled(0.5)
	if c.FsyncLatency != 5*time.Millisecond {
		t.Fatalf("Scaled(0.5) = %v", c.FsyncLatency)
	}
}

func TestWithdrawPendingRecord(t *testing.T) {
	w := New(Config{FsyncLatency: 50 * time.Millisecond})
	defer w.Close()

	// Occupy the flusher with a first record so the second stays in
	// pending for the duration of the in-flight window.
	first := make(chan error, 1)
	go func() { first <- commitN(w, 1, 64) }()
	time.Sleep(10 * time.Millisecond)

	rec := &Record{TxID: 2, Bytes: 64, CSN: 7}
	done, err := w.Enqueue(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Withdraw(rec) {
		t.Fatal("record behind a busy flusher should be withdrawable")
	}
	// A withdrawn record's verdict channel never resolves, and the
	// outstanding-record count it held is released so the durability
	// watermark does not wedge on it.
	select {
	case v := <-done:
		t.Fatalf("withdrawn record resolved: %v", v)
	case <-time.After(120 * time.Millisecond):
	}
	if err := <-first; err != nil {
		t.Fatalf("in-flight commit: %v", err)
	}
	if _, outstanding := w.DurableWatermark(); outstanding {
		t.Fatal("withdrawn record left the watermark outstanding")
	}
	// Withdrawing again — or withdrawing a record a window already
	// claimed — reports false.
	if w.Withdraw(rec) {
		t.Fatal("double withdraw succeeded")
	}
	if s := w.Stats(); s.Records != 1 {
		t.Fatalf("withdrawn record was flushed: %+v", s)
	}
}

func TestWithdrawLosesToClaimedWindow(t *testing.T) {
	w := New(Config{FsyncLatency: 30 * time.Millisecond})
	defer w.Close()

	// With an idle flusher the window claims the record immediately.
	rec := &Record{TxID: 1, Bytes: 64}
	done, err := w.Enqueue(rec)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if w.Withdraw(rec) {
		t.Fatal("withdrew a record already claimed by a flush window")
	}
	if v := <-done; v != nil {
		t.Fatalf("claimed record's verdict: %v", v)
	}
}

package wal

import (
	"errors"
	"sync"
	"testing"

	"sicost/internal/core"
	"sicost/internal/faultinject"
)

// gateDevice blocks its first Append until released, so a test can pin
// records into a specific flush window: window 1 is whatever is in
// flight when the gate closes the loop, and everything enqueued while
// it is blocked lands in window 2.
type gateDevice struct {
	MemDevice
	entered chan struct{} // closed when the first Append begins
	release chan struct{} // the first Append blocks until this closes
	first   sync.Once
}

func newGateDevice() *gateDevice {
	return &gateDevice{entered: make(chan struct{}), release: make(chan struct{})}
}

func (d *gateDevice) Append(b []byte) error {
	d.first.Do(func() {
		close(d.entered)
		<-d.release
	})
	return d.MemDevice.Append(b)
}

func enq(t *testing.T, w *WAL, csn uint64) <-chan error {
	t.Helper()
	done, err := w.Enqueue(&Record{
		TxID: csn + 100, CSN: csn,
		Rows: []RowImage{{Table: "t", Key: core.Int(int64(csn)), Rec: core.Record{core.Int(int64(csn))}}},
	})
	if err != nil {
		t.Fatalf("enqueue %d: %v", csn, err)
	}
	return done
}

// TestCoalescedWindowOneSyncManyGroups pins the tentpole contract: a
// window of many MaxBatch-sized flush groups is covered by ONE device
// sync, so CommitsPerSync exceeds the per-group batch bound.
func TestCoalescedWindowOneSyncManyGroups(t *testing.T) {
	dev := newGateDevice()
	w := New(Config{Device: dev, MaxBatch: 2})
	defer w.Close()

	d1 := enq(t, w, 1)
	<-dev.entered
	var dones []<-chan error
	for csn := uint64(2); csn <= 7; csn++ {
		dones = append(dones, enq(t, w, csn))
	}
	close(dev.release)
	if err := <-d1; err != nil {
		t.Fatal(err)
	}
	for i, d := range dones {
		if err := <-d; err != nil {
			t.Fatalf("record %d: %v", i+2, err)
		}
	}

	s := w.Stats()
	// Window 1: one group, one sync. Window 2: six records = three
	// groups of two, one sync.
	if s.Syncs != 2 || s.Flushes != 4 || s.Records != 7 {
		t.Fatalf("stats = %+v, want Syncs=2 Flushes=4 Records=7", s)
	}
	if got := s.CommitsPerSync(); got != 3.5 {
		t.Fatalf("CommitsPerSync = %v, want 3.5", got)
	}
	if s.Bytes != dev.Size() {
		t.Fatalf("Bytes %d != device size %d", s.Bytes, dev.Size())
	}
	if csn, outstanding := w.DurableWatermark(); csn != 7 || outstanding {
		t.Fatalf("watermark = %d/%v, want 7/false", csn, outstanding)
	}
}

// TestSyncEveryGroupBaseline pins the ablation baseline: with
// SyncEveryGroup, every flush group pays its own sync.
func TestSyncEveryGroupBaseline(t *testing.T) {
	dev := newGateDevice()
	w := New(Config{Device: dev, MaxBatch: 2, SyncEveryGroup: true})
	defer w.Close()

	d1 := enq(t, w, 1)
	<-dev.entered
	var dones []<-chan error
	for csn := uint64(2); csn <= 7; csn++ {
		dones = append(dones, enq(t, w, csn))
	}
	close(dev.release)
	if err := <-d1; err != nil {
		t.Fatal(err)
	}
	for _, d := range dones {
		if err := <-d; err != nil {
			t.Fatal(err)
		}
	}
	if s := w.Stats(); s.Syncs != s.Flushes || s.Syncs != 4 || s.Records != 7 {
		t.Fatalf("stats = %+v, want one sync per group (4 each)", s)
	}
}

// TestFailedGroupCountsOnceInWindow is the Flushes/Bytes accounting
// regression test: a flush group rejected by an injected device error
// while the rest of its window proceeds must count exactly once — in
// FailedFlushes — and contribute nothing to Flushes, Records or Bytes.
// (The old accounting charged the group's bytes before the device write
// and again when the remaining groups' sync landed.)
func TestFailedGroupCountsOnceInWindow(t *testing.T) {
	dev := newGateDevice()
	w := New(Config{Device: dev, MaxBatch: 2})
	reg := faultinject.New(11)
	w.SetFaults(reg)
	defer w.Close()

	// Skip window 1's group, then fail exactly one group of window 2.
	if err := reg.Arm(faultinject.Spec{Point: FaultFlush, After: 1, Count: 1, Action: faultinject.ActError}); err != nil {
		t.Fatal(err)
	}

	d1 := enq(t, w, 1)
	<-dev.entered
	var dones []<-chan error
	for csn := uint64(2); csn <= 7; csn++ {
		dones = append(dones, enq(t, w, csn))
	}
	close(dev.release)
	if err := <-d1; err != nil {
		t.Fatal(err)
	}
	// Window 2 groups: {2,3} fails (injected), {4,5} and {6,7} succeed.
	for i, d := range dones {
		csn := uint64(i + 2)
		err := <-d
		if csn <= 3 {
			if !errors.Is(err, core.ErrInjected) {
				t.Fatalf("record %d = %v, want ErrInjected", csn, err)
			}
		} else if err != nil {
			t.Fatalf("record %d: %v", csn, err)
		}
	}

	s := w.Stats()
	if s.FailedFlushes != 1 {
		t.Fatalf("FailedFlushes = %d, want 1", s.FailedFlushes)
	}
	if s.Flushes != 3 || s.Records != 5 || s.Syncs != 2 {
		t.Fatalf("stats = %+v, want Flushes=3 Records=5 Syncs=2", s)
	}
	// The sharp double-count check: accounted bytes must equal what the
	// device actually holds — the failed group's frames never reached it.
	if s.Bytes != dev.Size() {
		t.Fatalf("Bytes %d != device size %d (failed group double-counted)", s.Bytes, dev.Size())
	}
	// The injected error is transient, not a crash; the WAL stays alive
	// and the device log stays fully decodable.
	if w.Broken() != nil {
		t.Fatalf("transient group failure bricked the WAL: %v", w.Broken())
	}
	b, _ := dev.Contents()
	frames, valid := ScanLog(b)
	if valid != len(b) || len(frames) != 5 {
		t.Fatalf("device: %d frames, %d/%d valid — want the 5 acked commits", len(frames), valid, len(b))
	}
	got := map[uint64]bool{}
	for _, f := range frames {
		got[f.Commit.CSN] = true
	}
	for _, csn := range []uint64{1, 4, 5, 6, 7} {
		if !got[csn] {
			t.Fatalf("acked commit %d missing from device", csn)
		}
	}
	if csn, outstanding := w.DurableWatermark(); csn != 7 || outstanding {
		t.Fatalf("watermark = %d/%v, want 7/false", csn, outstanding)
	}
}

// TestSyncCrashLosesWholeWindow pins the FaultSync ActPanic semantics:
// power dying inside the coalesced-sync window loses every unsynced
// append — no record of the window is acknowledged or durable — and the
// WAL bricks.
func TestSyncCrashLosesWholeWindow(t *testing.T) {
	dev := NewMemDevice()
	w := New(Config{Device: dev})
	reg := faultinject.New(13)
	w.SetFaults(reg)
	defer w.Close()

	if err := durableCommit(w, 1); err != nil {
		t.Fatal(err)
	}
	cleanSize := dev.Size()

	if err := reg.Arm(faultinject.Spec{Point: FaultSync, Count: 1, Action: faultinject.ActPanic}); err != nil {
		t.Fatal(err)
	}
	if err := durableCommit(w, 2); !errors.Is(err, core.ErrInjected) {
		t.Fatalf("commit through sync crash = %v, want ErrInjected", err)
	}
	if w.Broken() == nil {
		t.Fatal("sync crash did not brick the WAL")
	}
	if dev.Size() != cleanSize {
		t.Fatalf("unsynced window bytes survived the crash: %d > %d", dev.Size(), cleanSize)
	}
	if s := w.Stats(); s.FailedFlushes != 1 || s.Records != 1 || s.Syncs != 1 {
		t.Fatalf("stats = %+v", s)
	}
	info, err := Recover(dev)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Commits) != 1 || info.HighCSN != 1 {
		t.Fatalf("recovery: %+v, want exactly the acked commit", info)
	}
}

// TestAsyncRecordFailureBricks pins the async contract: a record whose
// committer already published cannot be failed quietly — the WAL must
// brick so the engine knows the published state is no longer
// recoverable.
func TestAsyncRecordFailureBricks(t *testing.T) {
	dev := NewMemDevice()
	w := New(Config{Device: dev})
	defer w.Close()

	boom := errors.New("late disk death")
	w.InjectFailure(boom)
	done, err := w.Enqueue(&Record{TxID: 100, CSN: 1, Async: true,
		Rows: []RowImage{{Table: "t", Key: core.Int(1), Rec: core.Record{core.Int(1)}}}})
	if err != nil {
		t.Fatal(err)
	}
	if ferr := <-done; !errors.Is(ferr, boom) {
		t.Fatalf("future = %v, want injected error", ferr)
	}
	if w.Broken() == nil {
		t.Fatal("failed async record did not brick the WAL")
	}
	// Sync records failing the same way do NOT brick: their committer
	// aborts instead.
	w2 := New(Config{Device: NewMemDevice()})
	defer w2.Close()
	w2.InjectFailure(boom)
	done2, err := w2.Enqueue(&Record{TxID: 101, CSN: 1,
		Rows: []RowImage{{Table: "t", Key: core.Int(1), Rec: core.Record{core.Int(1)}}}})
	if err != nil {
		t.Fatal(err)
	}
	if ferr := <-done2; !errors.Is(ferr, boom) {
		t.Fatalf("future = %v", ferr)
	}
	if w2.Broken() != nil {
		t.Fatalf("failed sync record bricked the WAL: %v", w2.Broken())
	}
}

// TestWaitDurableCSN covers the watermark API: waiting on an
// already-durable CSN returns immediately, a future CSN blocks until
// its record resolves, and a closed WAL releases waiters with
// ErrWALClosed.
func TestWaitDurableCSN(t *testing.T) {
	dev := NewMemDevice()
	w := New(Config{Device: dev})

	if err := durableCommit(w, 1); err != nil {
		t.Fatal(err)
	}
	if err := w.WaitDurableCSN(1); err != nil {
		t.Fatalf("wait on durable CSN: %v", err)
	}

	got := make(chan error, 1)
	go func() { got <- w.WaitDurableCSN(2) }()
	if err := durableCommit(w, 2); err != nil {
		t.Fatal(err)
	}
	if err := <-got; err != nil {
		t.Fatalf("wait released with %v", err)
	}

	go func() { got <- w.WaitDurableCSN(99) }()
	w.Close()
	if err := <-got; !errors.Is(err, core.ErrWALClosed) {
		t.Fatalf("wait on closed WAL = %v, want ErrWALClosed", err)
	}
}

package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"sicost/internal/core"
)

// Log frame format. Every frame is
//
//	[u32 payloadLen][u32 crc32c(payload)][payload]
//
// with all integers little-endian and the checksum CRC32-Castagnoli.
// payload[0] is the frame type; the rest is the type-specific body. A
// frame whose header overruns the log, whose checksum mismatches, or
// whose body fails to decode marks the torn tail: recovery keeps the
// valid prefix and discards everything from that offset on.
const (
	frameHeaderSize = 8

	frameCommit     = 1
	frameCheckpoint = 2
	frameSchema     = 3
	frameDeltaBegin = 4
	frameDeltaRows  = 5
	frameDeltaEnd   = 6
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// RowImage is the after-image of one row written by a committed
// transaction. Rec == nil encodes a tombstone (the commit deleted the
// row).
type RowImage struct {
	Table string
	Key   core.Value
	Rec   core.Record
}

// CommitFrame is the redo record of one committed transaction: its id,
// its commit sequence number, and the after-image of every row it
// wrote. Replaying commit frames in CSN order reproduces the committed
// state.
type CommitFrame struct {
	TxID uint64
	CSN  uint64
	Rows []RowImage
}

// CheckpointRow is one live row in a checkpoint snapshot, with the CSN
// of its newest committed version so recovery restores versions — not
// just values — exactly.
type CheckpointRow struct {
	Key core.Value
	CSN uint64
	Rec core.Record
}

// CheckpointTable is one table's schema plus its full live-row snapshot.
type CheckpointTable struct {
	Schema core.Schema
	Rows   []CheckpointRow
}

// Checkpoint is a point-in-time-consistent snapshot of the database at
// CSN: every commit with csn <= CSN is included, none after. It embeds
// all schemas, so a checkpointed log is self-contained.
type Checkpoint struct {
	CSN    uint64
	Tables []CheckpointTable
}

// DeltaBegin opens one link of a fuzzy checkpoint chain. CSN is the
// cut: the link's row images cover every key dirtied by commits in
// (Base, CSN]. Base is the cut of the previous chain link this delta
// builds on; Base == 0 marks a *full* link (the chain root: every live
// key is streamed, so no older log bytes are needed to fold it). The
// begin marker embeds all table schemas as of the cut, making a chain
// rooted at a full link self-contained the way a Checkpoint frame is.
type DeltaBegin struct {
	CSN     uint64
	Base    uint64
	Schemas []core.Schema
}

// DeltaRow is one dirty-key after-image as of the link's cut: the
// newest committed version with csn <= cut. Rec == nil encodes a
// tombstone — the key was deleted (or never live) at the cut, and the
// fold removes it.
type DeltaRow struct {
	Table string
	Key   core.Value
	CSN   uint64
	Rec   core.Record
}

// DeltaRows is one batch of a link's row images, appended between the
// link's begin and end markers. CSN binds the batch to its link;
// batches whose CSN does not match the open link are ignored by
// classification. Commit frames interleave freely with these batches —
// that is the point of the fuzzy checkpoint.
type DeltaRows struct {
	CSN  uint64
	Rows []DeltaRow
}

// DeltaEnd seals a link. A link is complete — and only then counts for
// the recovery fold — when its end marker is inside the valid prefix
// and Rows matches the total DeltaRow entries streamed since the begin
// marker. A torn or missing end marker discards the whole link:
// recovery falls back to the previous complete chain state.
type DeltaEnd struct {
	CSN  uint64
	Rows uint64
}

// Frame is one decoded log frame; exactly one field is non-nil.
type Frame struct {
	Commit     *CommitFrame
	Checkpoint *Checkpoint
	Schema     *core.Schema
	DeltaBegin *DeltaBegin
	DeltaRows  *DeltaRows
	DeltaEnd   *DeltaEnd
}

// --- encoding -------------------------------------------------------------

func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

func appendValue(b []byte, v core.Value) []byte {
	b = append(b, byte(v.K))
	switch v.K {
	case core.KindInt:
		b = appendU64(b, uint64(v.I))
	case core.KindString:
		b = appendStr(b, v.S)
	}
	return b
}

func appendRecord(b []byte, r core.Record) []byte {
	b = appendU32(b, uint32(len(r)))
	for _, v := range r {
		b = appendValue(b, v)
	}
	return b
}

func appendSchema(b []byte, s *core.Schema) []byte {
	b = appendStr(b, s.Name)
	b = appendU32(b, uint32(len(s.Columns)))
	for _, c := range s.Columns {
		b = appendStr(b, c.Name)
		b = append(b, byte(c.Kind))
		if c.NotNull {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	b = appendU32(b, uint32(s.PK))
	b = appendU32(b, uint32(len(s.Unique)))
	for _, u := range s.Unique {
		b = appendU32(b, uint32(u))
	}
	return b
}

// frame wraps a payload in the length+CRC header.
func frame(payload []byte) []byte {
	out := make([]byte, 0, frameHeaderSize+len(payload))
	out = appendU32(out, uint32(len(payload)))
	out = appendU32(out, crc32.Checksum(payload, castagnoli))
	return append(out, payload...)
}

// EncodeCommit renders a commit frame, header included.
func EncodeCommit(c *CommitFrame) []byte {
	p := []byte{frameCommit}
	p = appendU64(p, c.TxID)
	p = appendU64(p, c.CSN)
	p = appendU32(p, uint32(len(c.Rows)))
	for _, r := range c.Rows {
		p = appendStr(p, r.Table)
		p = appendValue(p, r.Key)
		if r.Rec == nil {
			p = append(p, 0)
		} else {
			p = append(p, 1)
			p = appendRecord(p, r.Rec)
		}
	}
	return frame(p)
}

// EncodeCheckpoint renders a checkpoint frame, header included.
func EncodeCheckpoint(c *Checkpoint) []byte {
	p := []byte{frameCheckpoint}
	p = appendU64(p, c.CSN)
	p = appendU32(p, uint32(len(c.Tables)))
	for i := range c.Tables {
		t := &c.Tables[i]
		p = appendSchema(p, &t.Schema)
		p = appendU32(p, uint32(len(t.Rows)))
		for _, r := range t.Rows {
			p = appendValue(p, r.Key)
			p = appendU64(p, r.CSN)
			p = appendRecord(p, r.Rec)
		}
	}
	return frame(p)
}

// EncodeSchema renders a schema (DDL) frame, header included.
func EncodeSchema(s *core.Schema) []byte {
	p := []byte{frameSchema}
	p = appendSchema(p, s)
	return frame(p)
}

// EncodeDeltaBegin renders a chain-link begin marker, header included.
func EncodeDeltaBegin(d *DeltaBegin) []byte {
	p := []byte{frameDeltaBegin}
	p = appendU64(p, d.CSN)
	p = appendU64(p, d.Base)
	p = appendU32(p, uint32(len(d.Schemas)))
	for i := range d.Schemas {
		p = appendSchema(p, &d.Schemas[i])
	}
	return frame(p)
}

// EncodeDeltaRows renders one batch of link row images, header included.
func EncodeDeltaRows(d *DeltaRows) []byte {
	p := []byte{frameDeltaRows}
	p = appendU64(p, d.CSN)
	p = appendU32(p, uint32(len(d.Rows)))
	for _, r := range d.Rows {
		p = appendStr(p, r.Table)
		p = appendValue(p, r.Key)
		p = appendU64(p, r.CSN)
		if r.Rec == nil {
			p = append(p, 0)
		} else {
			p = append(p, 1)
			p = appendRecord(p, r.Rec)
		}
	}
	return frame(p)
}

// EncodeDeltaEnd renders a chain-link end marker, header included.
func EncodeDeltaEnd(d *DeltaEnd) []byte {
	p := []byte{frameDeltaEnd}
	p = appendU64(p, d.CSN)
	p = appendU64(p, d.Rows)
	return frame(p)
}

// --- decoding -------------------------------------------------------------

// reader is a bounds-checked cursor over a payload. Every method
// returns an error instead of panicking, so arbitrarily corrupted
// bytes (the walfuzz target) can never take the decoder down. It
// never pre-allocates by claimed counts — each loop iteration consumes
// at least one byte, so corrupt counts fail at end-of-payload instead
// of exhausting memory.
type reader struct {
	b   []byte
	off int
}

var errShortFrame = fmt.Errorf("wal: truncated frame body")

func (r *reader) u8() (byte, error) {
	if r.off >= len(r.b) {
		return 0, errShortFrame
	}
	v := r.b[r.off]
	r.off++
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if r.off+4 > len(r.b) {
		return 0, errShortFrame
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if r.off+8 > len(r.b) {
		return 0, errShortFrame
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v, nil
}

func (r *reader) str() (string, error) {
	n, err := r.u32()
	if err != nil {
		return "", err
	}
	if uint64(r.off)+uint64(n) > uint64(len(r.b)) {
		return "", errShortFrame
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

func (r *reader) value() (core.Value, error) {
	k, err := r.u8()
	if err != nil {
		return core.Value{}, err
	}
	switch core.Kind(k) {
	case core.KindNull:
		return core.Null(), nil
	case core.KindInt:
		i, err := r.u64()
		if err != nil {
			return core.Value{}, err
		}
		return core.Int(int64(i)), nil
	case core.KindString:
		s, err := r.str()
		if err != nil {
			return core.Value{}, err
		}
		return core.Str(s), nil
	default:
		return core.Value{}, fmt.Errorf("wal: unknown value kind %d", k)
	}
}

func (r *reader) record() (core.Record, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	var rec core.Record
	for i := uint32(0); i < n; i++ {
		v, err := r.value()
		if err != nil {
			return nil, err
		}
		rec = append(rec, v)
	}
	return rec, nil
}

func (r *reader) schema() (core.Schema, error) {
	var s core.Schema
	var err error
	if s.Name, err = r.str(); err != nil {
		return s, err
	}
	ncols, err := r.u32()
	if err != nil {
		return s, err
	}
	for i := uint32(0); i < ncols; i++ {
		var c core.Column
		if c.Name, err = r.str(); err != nil {
			return s, err
		}
		k, err := r.u8()
		if err != nil {
			return s, err
		}
		c.Kind = core.Kind(k)
		nn, err := r.u8()
		if err != nil {
			return s, err
		}
		c.NotNull = nn != 0
		s.Columns = append(s.Columns, c)
	}
	pk, err := r.u32()
	if err != nil {
		return s, err
	}
	s.PK = int(pk)
	nuniq, err := r.u32()
	if err != nil {
		return s, err
	}
	for i := uint32(0); i < nuniq; i++ {
		u, err := r.u32()
		if err != nil {
			return s, err
		}
		s.Unique = append(s.Unique, int(u))
	}
	if err := s.Validate(); err != nil {
		return s, err
	}
	return s, nil
}

func (r *reader) commitFrame() (*CommitFrame, error) {
	c := &CommitFrame{}
	var err error
	if c.TxID, err = r.u64(); err != nil {
		return nil, err
	}
	if c.CSN, err = r.u64(); err != nil {
		return nil, err
	}
	if c.CSN == 0 {
		// The engine never allocates CSN 0; a frame claiming it is
		// corrupt even when its checksum holds.
		return nil, fmt.Errorf("wal: commit frame with CSN 0")
	}
	nrows, err := r.u32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nrows; i++ {
		var row RowImage
		if row.Table, err = r.str(); err != nil {
			return nil, err
		}
		if row.Key, err = r.value(); err != nil {
			return nil, err
		}
		live, err := r.u8()
		if err != nil {
			return nil, err
		}
		if live != 0 {
			if row.Rec, err = r.record(); err != nil {
				return nil, err
			}
			if row.Rec == nil {
				row.Rec = core.Record{}
			}
		}
		c.Rows = append(c.Rows, row)
	}
	return c, nil
}

func (r *reader) checkpointFrame() (*Checkpoint, error) {
	c := &Checkpoint{}
	var err error
	if c.CSN, err = r.u64(); err != nil {
		return nil, err
	}
	ntables, err := r.u32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < ntables; i++ {
		var t CheckpointTable
		if t.Schema, err = r.schema(); err != nil {
			return nil, err
		}
		nrows, err := r.u32()
		if err != nil {
			return nil, err
		}
		for j := uint32(0); j < nrows; j++ {
			var row CheckpointRow
			if row.Key, err = r.value(); err != nil {
				return nil, err
			}
			if row.CSN, err = r.u64(); err != nil {
				return nil, err
			}
			if row.Rec, err = r.record(); err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, row)
		}
		c.Tables = append(c.Tables, t)
	}
	return c, nil
}

func (r *reader) deltaBeginFrame() (*DeltaBegin, error) {
	d := &DeltaBegin{}
	var err error
	if d.CSN, err = r.u64(); err != nil {
		return nil, err
	}
	if d.Base, err = r.u64(); err != nil {
		return nil, err
	}
	if d.CSN == 0 || d.Base >= d.CSN {
		// The cut is a published CSN (never 0) and a link must advance
		// the chain; a marker violating either is corrupt.
		return nil, fmt.Errorf("wal: delta begin with cut %d, base %d", d.CSN, d.Base)
	}
	nschemas, err := r.u32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nschemas; i++ {
		s, err := r.schema()
		if err != nil {
			return nil, err
		}
		d.Schemas = append(d.Schemas, s)
	}
	return d, nil
}

func (r *reader) deltaRowsFrame() (*DeltaRows, error) {
	d := &DeltaRows{}
	var err error
	if d.CSN, err = r.u64(); err != nil {
		return nil, err
	}
	nrows, err := r.u32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nrows; i++ {
		var row DeltaRow
		if row.Table, err = r.str(); err != nil {
			return nil, err
		}
		if row.Key, err = r.value(); err != nil {
			return nil, err
		}
		if row.CSN, err = r.u64(); err != nil {
			return nil, err
		}
		live, err := r.u8()
		if err != nil {
			return nil, err
		}
		if live != 0 {
			if row.Rec, err = r.record(); err != nil {
				return nil, err
			}
			if row.Rec == nil {
				row.Rec = core.Record{}
			}
		}
		d.Rows = append(d.Rows, row)
	}
	return d, nil
}

func (r *reader) deltaEndFrame() (*DeltaEnd, error) {
	d := &DeltaEnd{}
	var err error
	if d.CSN, err = r.u64(); err != nil {
		return nil, err
	}
	if d.Rows, err = r.u64(); err != nil {
		return nil, err
	}
	if d.CSN == 0 {
		return nil, fmt.Errorf("wal: delta end with CSN 0")
	}
	return d, nil
}

// DecodeFrameAt decodes the frame starting at byte offset off. It
// returns the frame, the total encoded length (header included), and
// an error when the bytes at off do not form a complete, checksummed,
// well-formed frame — the torn-tail condition.
func DecodeFrameAt(b []byte, off int) (Frame, int, error) {
	if off < 0 || off+frameHeaderSize > len(b) {
		return Frame{}, 0, errShortFrame
	}
	plen := binary.LittleEndian.Uint32(b[off:])
	sum := binary.LittleEndian.Uint32(b[off+4:])
	end := uint64(off) + frameHeaderSize + uint64(plen)
	if end > uint64(len(b)) {
		return Frame{}, 0, errShortFrame
	}
	payload := b[off+frameHeaderSize : end]
	if crc32.Checksum(payload, castagnoli) != sum {
		return Frame{}, 0, fmt.Errorf("wal: frame at %d: checksum mismatch", off)
	}
	if len(payload) == 0 {
		return Frame{}, 0, fmt.Errorf("wal: frame at %d: empty payload", off)
	}
	r := &reader{b: payload, off: 1}
	var f Frame
	var err error
	switch payload[0] {
	case frameCommit:
		f.Commit, err = r.commitFrame()
	case frameCheckpoint:
		f.Checkpoint, err = r.checkpointFrame()
	case frameSchema:
		var s core.Schema
		s, err = r.schema()
		if err == nil {
			f.Schema = &s
		}
	case frameDeltaBegin:
		f.DeltaBegin, err = r.deltaBeginFrame()
	case frameDeltaRows:
		f.DeltaRows, err = r.deltaRowsFrame()
	case frameDeltaEnd:
		f.DeltaEnd, err = r.deltaEndFrame()
	default:
		return Frame{}, 0, fmt.Errorf("wal: frame at %d: unknown type %d", off, payload[0])
	}
	if err != nil {
		return Frame{}, 0, fmt.Errorf("wal: frame at %d: %w", off, err)
	}
	if r.off != len(payload) {
		return Frame{}, 0, fmt.Errorf("wal: frame at %d: %d trailing bytes in payload", off, len(payload)-r.off)
	}
	return f, frameHeaderSize + int(plen), nil
}

// ScanLog walks the log from the start, decoding frames until the
// bytes stop parsing. It returns the decoded frames and validLen, the
// offset just past the last valid frame: the torn-tail rule keeps
// [0, validLen) and discards the rest. A fully valid log has
// validLen == len(b).
func ScanLog(b []byte) (frames []Frame, validLen int) {
	off := 0
	for off < len(b) {
		f, n, err := DecodeFrameAt(b, off)
		if err != nil {
			break
		}
		frames = append(frames, f)
		off += n
	}
	return frames, off
}

package wal

import (
	"fmt"
	"os"
	"sync"
)

// LogDevice is the pluggable durable medium behind the WAL. The paper's
// testbed puts the log on a dedicated disk with the write cache
// disabled; here the device is either an in-memory byte log (tests and
// the crash-chaos harness, which simulates process death and torn
// writes) or a real file (cmd/smallbank -wal).
//
// A device carries no framing knowledge: it stores the byte stream the
// WAL appends. A crash may leave the final append incomplete — the
// recovery decoder's torn-tail rule handles that.
type LogDevice interface {
	// Append adds b to the end of the log. The write is durable when
	// Append returns; a crash mid-call may persist any prefix of b.
	Append(b []byte) error
	// Contents returns the entire log. The returned slice must not be
	// mutated by the caller.
	Contents() ([]byte, error)
	// Rewrite atomically replaces the whole log with b. Checkpoint
	// truncation and torn-tail repair use it.
	Rewrite(b []byte) error
	// Size returns the current log length in bytes.
	Size() int64
}

// MemDevice is an in-memory LogDevice for tests and the crash-chaos
// harness. It is safe for concurrent use.
type MemDevice struct {
	mu  sync.Mutex
	buf []byte
}

// NewMemDevice returns an empty in-memory log device.
func NewMemDevice() *MemDevice { return &MemDevice{} }

// NewMemDeviceBytes returns an in-memory device pre-loaded with b (a
// captured log image, e.g. the fuzz target's corpus input).
func NewMemDeviceBytes(b []byte) *MemDevice {
	return &MemDevice{buf: append([]byte(nil), b...)}
}

// Append implements LogDevice.
func (d *MemDevice) Append(b []byte) error {
	d.mu.Lock()
	d.buf = append(d.buf, b...)
	d.mu.Unlock()
	return nil
}

// Contents implements LogDevice.
func (d *MemDevice) Contents() ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]byte(nil), d.buf...), nil
}

// Rewrite implements LogDevice.
func (d *MemDevice) Rewrite(b []byte) error {
	d.mu.Lock()
	d.buf = append(d.buf[:0:0], b...)
	d.mu.Unlock()
	return nil
}

// Size implements LogDevice.
func (d *MemDevice) Size() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return int64(len(d.buf))
}

// FileDevice is a LogDevice backed by one append-only file, synced on
// every append — the "write cache disabled" discipline of the paper's
// log disk. cmd/smallbank -wal uses it.
type FileDevice struct {
	mu   sync.Mutex
	f    *os.File
	size int64
}

// OpenFileDevice opens (creating if absent) the log file at path.
func OpenFileDevice(path string) (*FileDevice, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &FileDevice{f: f, size: st.Size()}, nil
}

// Append implements LogDevice: write at the tail, then fsync.
func (d *FileDevice) Append(b []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	n, err := d.f.WriteAt(b, d.size)
	d.size += int64(n)
	if err != nil {
		return fmt.Errorf("wal: file append: %w", err)
	}
	return d.f.Sync()
}

// Contents implements LogDevice.
func (d *FileDevice) Contents() ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	buf := make([]byte, d.size)
	if _, err := d.f.ReadAt(buf, 0); err != nil {
		return nil, fmt.Errorf("wal: file read: %w", err)
	}
	return buf, nil
}

// Rewrite implements LogDevice: truncate and write the new image.
func (d *FileDevice) Rewrite(b []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: file truncate: %w", err)
	}
	if _, err := d.f.WriteAt(b, 0); err != nil {
		return fmt.Errorf("wal: file rewrite: %w", err)
	}
	d.size = int64(len(b))
	return d.f.Sync()
}

// Size implements LogDevice.
func (d *FileDevice) Size() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.size
}

// Close releases the underlying file.
func (d *FileDevice) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.f.Close()
}

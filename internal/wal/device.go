package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// LogDevice is the pluggable durable medium behind the WAL. The paper's
// testbed puts the log on a dedicated disk with the write cache
// disabled; here the device is either an in-memory byte log (tests and
// the crash-chaos harness, which simulates process death and torn
// writes), a real file (cmd/smallbank -wal), or a segmented directory
// of wal.000N files (SegmentLog).
//
// A device carries no framing knowledge: it stores the byte stream the
// WAL appends. A crash may leave the final append incomplete — the
// recovery decoder's torn-tail rule handles that.
//
// Append and Sync split the durability point: Append buffers bytes at
// the tail (the OS page cache), Sync is the fdatasync-equivalent that
// makes every prior Append durable. The flush loop exploits the split
// to coalesce many flush groups into one device sync; nothing is
// acknowledged to a committer until the Sync covering its append
// returns.
type LogDevice interface {
	// Append adds b to the end of the log. The bytes are buffered, not
	// yet durable: a crash before the next Sync may lose any suffix of
	// the unsynced tail, and a crash mid-Sync may persist any prefix of
	// it.
	Append(b []byte) error
	// Sync makes every byte appended so far durable. A Sync error voids
	// the durability promise of everything since the last successful
	// Sync (the fsyncgate lesson) — the WAL bricks itself on it.
	Sync() error
	// Contents returns the entire log. The returned slice must not be
	// mutated by the caller.
	Contents() ([]byte, error)
	// Rewrite atomically replaces the whole log with b and makes the
	// replacement durable. Checkpoint truncation and torn-tail repair
	// use it.
	Rewrite(b []byte) error
	// Size returns the current log length in bytes.
	Size() int64
}

// VolatileDevice is implemented by devices that model the synced/
// unsynced distinction explicitly and can simulate a power failure
// dropping the page cache. The WAL calls DropUnsynced when an injected
// crash lands between an Append and its covering Sync, so the simulated
// platter holds exactly what a real one would.
type VolatileDevice interface {
	// DropUnsynced discards every byte appended since the last Sync,
	// returning how many were lost.
	DropUnsynced() (int64, error)
}

// MemDevice is an in-memory LogDevice for tests and the crash-chaos
// harness. It is safe for concurrent use and tracks the synced prefix,
// so DropUnsynced can simulate losing the page cache.
type MemDevice struct {
	mu     sync.Mutex
	buf    []byte
	synced int64
}

// NewMemDevice returns an empty in-memory log device.
func NewMemDevice() *MemDevice { return &MemDevice{} }

// NewMemDeviceBytes returns an in-memory device pre-loaded with b (a
// captured log image, e.g. the fuzz target's corpus input). The preload
// counts as synced: a captured image is by definition on the platter.
func NewMemDeviceBytes(b []byte) *MemDevice {
	buf := append([]byte(nil), b...)
	return &MemDevice{buf: buf, synced: int64(len(buf))}
}

// Append implements LogDevice.
func (d *MemDevice) Append(b []byte) error {
	d.mu.Lock()
	d.buf = append(d.buf, b...)
	d.mu.Unlock()
	return nil
}

// Sync implements LogDevice.
func (d *MemDevice) Sync() error {
	d.mu.Lock()
	d.synced = int64(len(d.buf))
	d.mu.Unlock()
	return nil
}

// DropUnsynced implements VolatileDevice.
func (d *MemDevice) DropUnsynced() (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	dropped := int64(len(d.buf)) - d.synced
	d.buf = d.buf[:d.synced]
	return dropped, nil
}

// Contents implements LogDevice.
func (d *MemDevice) Contents() ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]byte(nil), d.buf...), nil
}

// Rewrite implements LogDevice. The replacement is atomic and durable.
func (d *MemDevice) Rewrite(b []byte) error {
	d.mu.Lock()
	d.buf = append(d.buf[:0:0], b...)
	d.synced = int64(len(d.buf))
	d.mu.Unlock()
	return nil
}

// Size implements LogDevice.
func (d *MemDevice) Size() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return int64(len(d.buf))
}

// FileDevice is a LogDevice backed by one append-only file. Append
// writes at the tail without syncing; Sync is the fdatasync that makes
// the tail durable — the flush loop issues one Sync per coalesced
// window, which is the "write cache disabled" discipline of the paper's
// log disk without paying it per flush group. cmd/smallbank -wal uses
// it.
type FileDevice struct {
	mu   sync.Mutex
	path string
	f    *os.File
	size int64
}

// OpenFileDevice opens (creating if absent) the log file at path.
func OpenFileDevice(path string) (*FileDevice, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &FileDevice{path: path, f: f, size: st.Size()}, nil
}

// Append implements LogDevice: write at the tail, durability deferred
// to the next Sync.
func (d *FileDevice) Append(b []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	n, err := d.f.WriteAt(b, d.size)
	d.size += int64(n)
	if err != nil {
		return fmt.Errorf("wal: file append: %w", err)
	}
	return nil
}

// Sync implements LogDevice.
func (d *FileDevice) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.f.Sync(); err != nil {
		return fmt.Errorf("wal: file sync: %w", err)
	}
	return nil
}

// Contents implements LogDevice.
func (d *FileDevice) Contents() ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	buf := make([]byte, d.size)
	if _, err := d.f.ReadAt(buf, 0); err != nil {
		return nil, fmt.Errorf("wal: file read: %w", err)
	}
	return buf, nil
}

// Rewrite implements LogDevice. The replacement must be atomic — a
// checkpoint that truncated in place and crashed mid-write would leave
// an empty or partial log, which the torn-tail rule would "recover" to
// an empty database. So the new image goes to a temp file in the log's
// directory, is fsynced, renamed over the log path (atomic on POSIX),
// and the directory is fsynced to make the rename itself durable; a
// crash at any point leaves either the old complete log or the new one.
func (d *FileDevice) Rewrite(b []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	dir := filepath.Dir(d.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(d.path)+".rewrite-*")
	if err != nil {
		return fmt.Errorf("wal: file rewrite: %w", err)
	}
	tmpPath := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("wal: file rewrite: %w", err)
	}
	if _, err := tmp.Write(b); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmpPath, d.path); err != nil {
		return fail(err)
	}
	if err := syncDir(dir); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: file rewrite: %w", err)
	}
	// tmp's descriptor now names the file at d.path; it becomes the
	// device's handle and the old (unlinked) one is released.
	d.f.Close()
	d.f = tmp
	d.size = int64(len(b))
	return nil
}

// syncDir fsyncs a directory, making a rename inside it durable.
func syncDir(dir string) error {
	df, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer df.Close()
	return df.Sync()
}

// Size implements LogDevice.
func (d *FileDevice) Size() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.size
}

// Close releases the underlying file.
func (d *FileDevice) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.f.Close()
}

package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFileDeviceRewriteAtomic exercises the rename-based Rewrite: the
// log path must always hold a complete image (old or new, never a
// truncated intermediate), the handle must keep working for appends and
// reads after the swap, and no temp file may linger.
func TestFileDeviceRewriteAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "test.wal")
	d, err := OpenFileDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	if err := d.Append([]byte("old-log-contents")); err != nil {
		t.Fatal(err)
	}
	if err := d.Rewrite([]byte("checkpoint")); err != nil {
		t.Fatal(err)
	}

	// The on-disk file and the handle's view must both show the new
	// image in full.
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, []byte("checkpoint")) {
		t.Fatalf("on-disk image %q, want %q", onDisk, "checkpoint")
	}
	got, err := d.Contents()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("checkpoint")) {
		t.Fatalf("Contents() = %q, want %q", got, "checkpoint")
	}

	// Appends after the swap land in the renamed file, not the old
	// unlinked inode.
	if err := d.Append([]byte("+redo")); err != nil {
		t.Fatal(err)
	}
	if onDisk, err = os.ReadFile(path); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, []byte("checkpoint+redo")) {
		t.Fatalf("post-rewrite append: on-disk %q, want %q", onDisk, "checkpoint+redo")
	}
	if d.Size() != int64(len("checkpoint+redo")) {
		t.Fatalf("Size() = %d, want %d", d.Size(), len("checkpoint+redo"))
	}

	// The rename consumed the temp file; nothing else may remain.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".rewrite-") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
}

// TestFileDeviceRewriteReopenCycle round-trips Rewrite through a full
// close/reopen, as a checkpoint followed by a process restart would.
func TestFileDeviceRewriteReopenCycle(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cycle.wal")
	d, err := OpenFileDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Append([]byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	if err := d.Rewrite([]byte("bb")); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenFileDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Size() != 2 {
		t.Fatalf("reopened size %d, want 2", d2.Size())
	}
	got, err := d2.Contents()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("bb")) {
		t.Fatalf("reopened contents %q, want %q", got, "bb")
	}
}

package wal

import (
	"errors"
	"sync"
	"testing"
	"time"

	"sicost/internal/core"
	"sicost/internal/faultinject"
)

// TestCloseConcurrentWithCommits races many committers against several
// concurrent Close calls (run under -race via the Makefile's race
// target). Every Commit must return a verdict — durable or
// ErrWALClosed — no goroutine may hang, and Close must be idempotent.
func TestCloseConcurrentWithCommits(t *testing.T) {
	w := New(Config{FsyncLatency: 100 * time.Microsecond})

	const committers = 16
	const perCommitter = 20
	var wg sync.WaitGroup
	results := make(chan error, committers*perCommitter)
	for c := 0; c < committers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perCommitter; i++ {
				results <- commitN(w, uint64(c*1000+i), 64)
			}
		}(c)
	}
	// Close from multiple goroutines mid-stream.
	var cg sync.WaitGroup
	for i := 0; i < 3; i++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			time.Sleep(500 * time.Microsecond)
			w.Close()
		}()
	}
	wg.Wait()
	cg.Wait()
	close(results)
	var ok, rejected int
	for err := range results {
		switch {
		case err == nil:
			ok++
		case errors.Is(err, core.ErrWALClosed):
			rejected++
		default:
			t.Fatalf("unexpected commit verdict: %v", err)
		}
	}
	if ok+rejected != committers*perCommitter {
		t.Fatalf("lost verdicts: %d ok + %d rejected != %d", ok, rejected, committers*perCommitter)
	}
	if rejected == 0 {
		t.Log("close raced after all commits; nothing rejected (timing-dependent, not a failure)")
	}
	// After close: deterministic rejection, and Close stays idempotent.
	if err := commitN(w, 1, 1); !errors.Is(err, core.ErrWALClosed) {
		t.Fatalf("commit after close: %v", err)
	}
	w.Close()
	w.Close()
}

// TestCloseIdleIdempotent closes a WAL that never flushed anything —
// the flusher-wait path must not deadlock on an idle device.
func TestCloseIdleIdempotent(t *testing.T) {
	w := New(Config{FsyncLatency: time.Millisecond})
	done := make(chan struct{})
	go func() {
		w.Close()
		w.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close hung on an idle WAL")
	}
}

// TestFaultFlushFailsWholeGroup arms the wal/flush point for one flush:
// every record in that device write fails with the injected error,
// subsequent flushes succeed.
func TestFaultFlushFailsWholeGroup(t *testing.T) {
	reg := faultinject.New(1)
	if err := reg.Arm(faultinject.Spec{Point: FaultFlush, Count: 1, Action: faultinject.ActError}); err != nil {
		t.Fatal(err)
	}
	w := New(Config{FsyncLatency: 2 * time.Millisecond})
	w.SetFaults(reg)
	defer w.Close()

	const n = 4
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs <- commitN(w, uint64(i), 32)
		}(i)
	}
	wg.Wait()
	close(errs)
	var failed, succeeded int
	for err := range errs {
		if err != nil {
			if !errors.Is(err, core.ErrInjected) {
				t.Fatalf("unexpected error class: %v", err)
			}
			failed++
		} else {
			succeeded++
		}
	}
	if failed == 0 {
		t.Fatal("injected flush fault failed no commits")
	}
	// The fault is exhausted (Count=1): the device must be healthy again.
	if err := commitN(w, 99, 32); err != nil {
		t.Fatalf("commit after exhausted fault: %v", err)
	}
	s := w.Stats()
	if s.FailedFlushes == 0 {
		t.Fatalf("stats = %+v; the faulted flush must count as failed", s)
	}
	if int(s.Records) != succeeded+1 {
		t.Fatalf("stats = %+v; only acknowledged records may count (want %d)", s, succeeded+1)
	}
}

// TestFaultCommitFiresWithDeviceDisabled pins the documented contract:
// wal/commit fires even at FsyncLatency 0, so chaos plans work against
// latency-free test configurations.
func TestFaultCommitFiresWithDeviceDisabled(t *testing.T) {
	reg := faultinject.New(1)
	if err := reg.Arm(faultinject.Spec{Point: FaultCommit, Action: faultinject.ActError}); err != nil {
		t.Fatal(err)
	}
	w := New(Config{})
	w.SetFaults(reg)
	if err := commitN(w, 1, 8); !errors.Is(err, core.ErrInjected) {
		t.Fatalf("got %v, want ErrInjected", err)
	}
}

package wal

import (
	"os"
	"path/filepath"
	"testing"
)

// physSize is the on-disk size of segment idx in dir.
func physSize(t *testing.T, dir string, idx int) int64 {
	t.Helper()
	fi, err := os.Stat(filepath.Join(dir, SegmentName(idx)))
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// TestPreallocPhysicalVsLogical: with PreallocBytes set, segments are
// created at full physical size while the logical tail tracks only
// appended bytes, and sealing a segment at rotation trims the padding
// away.
func TestPreallocPhysicalVsLogical(t *testing.T) {
	dir := t.TempDir()
	dev, err := OpenSegmentLog(dir, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	w := New(Config{Device: dev, PreallocBytes: 1024}) // plumbs SetPrealloc
	defer w.Close()

	if err := durableCommit(w, 1); err != nil {
		t.Fatal(err)
	}
	logical := dev.Size()
	if logical <= 0 || logical >= 256 {
		t.Fatalf("logical size %d, want one small record", logical)
	}
	if got := physSize(t, dir, 0); got != 1024 {
		t.Fatalf("current segment physical size %d, want preallocated 1024", got)
	}

	// Rotate: keep committing until a second segment appears.
	csn := uint64(2)
	for dev.SegmentCount() < 2 {
		if err := durableCommit(w, csn); err != nil {
			t.Fatal(err)
		}
		csn++
	}
	segs, err := dev.Segments()
	if err != nil {
		t.Fatal(err)
	}
	if got := physSize(t, dir, 0); got != int64(len(segs[0].Data)) {
		t.Fatalf("sealed segment physical size %d, want trimmed to logical %d", got, len(segs[0].Data))
	}
	if got := physSize(t, dir, 1); got != 1024 {
		t.Fatalf("new current segment physical size %d, want preallocated 1024", got)
	}
	// The logical accounting never sees the padding.
	var sum int64
	for _, s := range segs {
		sum += int64(len(s.Data))
	}
	if dev.Size() != sum {
		t.Fatalf("Size() = %d, want logical sum %d", dev.Size(), sum)
	}
}

// TestPreallocCrashRecovery: a crash leaves the current segment's zero
// padding on disk; recovery's torn-tail scan cuts it like any torn
// write, losing no commits, and the repaired log keeps working with
// preallocation re-enabled.
func TestPreallocCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	dev, err := OpenSegmentLog(dir, 256)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.SetPrealloc(1024); err != nil {
		t.Fatal(err)
	}
	w := New(Config{Device: dev})
	for csn := uint64(1); csn <= 10; csn++ {
		if err := durableCommit(w, csn); err != nil {
			t.Fatal(err)
		}
	}
	segs := dev.SegmentCount()
	w.Close()
	dev.Close() // crash: the padded current segment stays on disk

	dev2, err := OpenSegmentLog(dir, 256)
	if err != nil {
		t.Fatal(err)
	}
	info, err := Recover(dev2)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Commits) != 10 || info.HighCSN != 10 {
		t.Fatalf("recovery over padding lost commits: %d, HighCSN %d", len(info.Commits), info.HighCSN)
	}
	if info.TornBytes == 0 || !info.Repaired {
		t.Fatalf("padding not treated as torn tail: %+v", info)
	}
	if got := physSize(t, dir, segs-1); got != int64(info.ValidBytes)-sealedBytes(t, dev2, segs-1) {
		t.Fatalf("repair left physical size %d on the tail segment", got)
	}

	// The repaired log accepts new preallocated traffic.
	w2 := New(Config{Device: dev2, PreallocBytes: 1024})
	if err := durableCommit(w2, 11); err != nil {
		t.Fatal(err)
	}
	if got := physSize(t, dir, segs-1); got != 1024 {
		t.Fatalf("re-preallocation missing: physical size %d, want 1024", got)
	}
	w2.Close()
	dev2.Close()

	// And recovers again, still losing nothing.
	dev3, err := OpenSegmentLog(dir, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer dev3.Close()
	info3, err := Recover(dev3)
	if err != nil {
		t.Fatal(err)
	}
	if len(info3.Commits) != 11 || info3.HighCSN != 11 {
		t.Fatalf("second recovery lost commits: %d, HighCSN %d", len(info3.Commits), info3.HighCSN)
	}
}

// sealedBytes sums the logical bytes of every segment before idx.
func sealedBytes(t *testing.T, dev *SegmentLog, idx int) int64 {
	t.Helper()
	segs, err := dev.Segments()
	if err != nil {
		t.Fatal(err)
	}
	var n int64
	for _, s := range segs {
		if s.Index < idx {
			n += int64(len(s.Data))
		}
	}
	return n
}

// TestPreallocMemNoop: the in-memory backend ignores preallocation;
// sizes stay logical.
func TestPreallocMemNoop(t *testing.T) {
	dev, err := NewMemSegmentLog(256)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.SetPrealloc(4096); err != nil {
		t.Fatal(err)
	}
	w := New(Config{Device: dev})
	defer w.Close()
	if err := durableCommit(w, 1); err != nil {
		t.Fatal(err)
	}
	if dev.Size() >= 256 {
		t.Fatalf("mem log size %d inflated by prealloc", dev.Size())
	}
}

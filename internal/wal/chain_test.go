package wal

import (
	"testing"

	"sicost/internal/core"
)

// deltaLink encodes one complete chain link — begin marker, a rows
// batch per call, end marker — exactly as WAL.BeginDelta/
// AppendDeltaRows/EndDelta lay it out.
func deltaLink(base, cut uint64, schemas []core.Schema, batches ...[]DeltaRow) []byte {
	out := EncodeDeltaBegin(&DeltaBegin{CSN: cut, Base: base, Schemas: schemas})
	rows := uint64(0)
	for _, b := range batches {
		out = append(out, EncodeDeltaRows(&DeltaRows{CSN: cut, Rows: b})...)
		rows += uint64(len(b))
	}
	return append(out, EncodeDeltaEnd(&DeltaEnd{CSN: cut, Rows: rows})...)
}

func TestDeltaFrameRoundTrip(t *testing.T) {
	s := testSchema()
	begin := mustDecodeOne(t, EncodeDeltaBegin(&DeltaBegin{CSN: 9, Base: 5, Schemas: []core.Schema{s}}))
	if begin.DeltaBegin == nil || begin.DeltaBegin.CSN != 9 || begin.DeltaBegin.Base != 5 {
		t.Fatalf("begin round-trip: %+v", begin.DeltaBegin)
	}
	if len(begin.DeltaBegin.Schemas) != 1 || begin.DeltaBegin.Schemas[0].Name != "T" ||
		len(begin.DeltaBegin.Schemas[0].Columns) != 2 {
		t.Fatalf("embedded schema round-trip: %+v", begin.DeltaBegin.Schemas)
	}

	rows := mustDecodeOne(t, EncodeDeltaRows(&DeltaRows{CSN: 9, Rows: []DeltaRow{
		{Table: "T", Key: core.Int(1), CSN: 7, Rec: core.Record{core.Int(1), core.Str("a")}},
		{Table: "T", Key: core.Int(2)}, // tombstone: no live version at the cut
	}}))
	if rows.DeltaRows == nil || rows.DeltaRows.CSN != 9 || len(rows.DeltaRows.Rows) != 2 {
		t.Fatalf("rows round-trip: %+v", rows.DeltaRows)
	}
	if r := rows.DeltaRows.Rows[0]; r.Table != "T" || r.Key != core.Int(1) || r.CSN != 7 ||
		!r.Rec.Equal(core.Record{core.Int(1), core.Str("a")}) {
		t.Fatalf("live image round-trip: %+v", r)
	}
	if r := rows.DeltaRows.Rows[1]; r.Rec != nil || r.CSN != 0 {
		t.Fatalf("tombstone round-trip: %+v", r)
	}

	end := mustDecodeOne(t, EncodeDeltaEnd(&DeltaEnd{CSN: 9, Rows: 2}))
	if end.DeltaEnd == nil || end.DeltaEnd.CSN != 9 || end.DeltaEnd.Rows != 2 {
		t.Fatalf("end round-trip: %+v", end.DeltaEnd)
	}
}

// TestClassifyFoldsChain is the fold's happy path: a full root link plus
// two delta links reduce to one synthetic checkpoint at the tail cut —
// updates overwrite, tombstones delete, keys born in a later link
// appear — and redo starts past the tail cut.
func TestClassifyFoldsChain(t *testing.T) {
	s := testSchema()
	rec := func(k int64, v string) core.Record { return core.Record{core.Int(k), core.Str(v)} }

	var log []byte
	log = append(log, EncodeSchema(&s)...)
	// Root: full link at cut 5 with rows 1 and 2.
	log = append(log, deltaLink(0, 5, []core.Schema{s},
		[]DeltaRow{{Table: "T", Key: core.Int(1), CSN: 4, Rec: rec(1, "a")}},
		[]DeltaRow{{Table: "T", Key: core.Int(2), CSN: 5, Rec: rec(2, "b")}},
	)...)
	log = append(log, commitFrameBytes(6)...)
	log = append(log, commitFrameBytes(7)...)
	// Link 2: update row 1, tombstone row 2, new row 3.
	log = append(log, deltaLink(5, 7, []core.Schema{s}, []DeltaRow{
		{Table: "T", Key: core.Int(1), CSN: 6, Rec: rec(1, "a2")},
		{Table: "T", Key: core.Int(2)},
		{Table: "T", Key: core.Int(3), CSN: 7, Rec: rec(3, "c")},
	})...)
	log = append(log, commitFrameBytes(8)...)
	// Link 3: update row 3 again.
	log = append(log, deltaLink(7, 8, []core.Schema{s}, []DeltaRow{
		{Table: "T", Key: core.Int(3), CSN: 8, Rec: rec(3, "c2")},
	})...)
	log = append(log, commitFrameBytes(9)...)

	info := Classify(log)
	if info.TornBytes != 0 {
		t.Fatalf("clean log classified as torn: %+v", info)
	}
	if info.Checkpoint == nil || info.Checkpoint.CSN != 8 || info.ChainLinks != 3 {
		t.Fatalf("fold: checkpoint %+v, links %d; want cut 8 over 3 links", info.Checkpoint, info.ChainLinks)
	}
	if len(info.Checkpoint.Tables) != 1 {
		t.Fatalf("tables: %+v", info.Checkpoint.Tables)
	}
	rows := info.Checkpoint.Tables[0].Rows
	if len(rows) != 2 {
		t.Fatalf("folded rows: %+v, want rows 1 and 3 (row 2 tombstoned)", rows)
	}
	if rows[0].Key != core.Int(1) || rows[0].CSN != 6 || !rows[0].Rec.Equal(rec(1, "a2")) {
		t.Fatalf("row 1 after fold: %+v", rows[0])
	}
	if rows[1].Key != core.Int(3) || rows[1].CSN != 8 || !rows[1].Rec.Equal(rec(3, "c2")) {
		t.Fatalf("row 3 after fold: %+v", rows[1])
	}
	if len(info.Commits) != 1 || info.Commits[0].CSN != 9 {
		t.Fatalf("redo commits: %+v, want only CSN 9 past the tail cut", info.Commits)
	}
	if info.HighCSN != 9 {
		t.Fatalf("HighCSN = %d, want 9", info.HighCSN)
	}
}

// TestClassifyTornLastLinkFallsBack cuts the log inside the final delta
// link, at every possible byte offset: the fold must land on the chain
// state BEFORE the incomplete link — its rows must never partially
// apply — and the commits it covered become redo work again.
func TestClassifyTornLastLinkFallsBack(t *testing.T) {
	s := testSchema()
	rec := func(k int64, v string) core.Record { return core.Record{core.Int(k), core.Str(v)} }

	var log []byte
	log = append(log, EncodeSchema(&s)...)
	log = append(log, deltaLink(0, 5, []core.Schema{s}, []DeltaRow{
		{Table: "T", Key: core.Int(1), CSN: 5, Rec: rec(1, "a")},
	})...)
	log = append(log, commitFrameBytes(6)...)
	log = append(log, deltaLink(5, 6, []core.Schema{s}, []DeltaRow{
		{Table: "T", Key: core.Int(1), CSN: 6, Rec: rec(1, "a2")},
	})...)
	log = append(log, commitFrameBytes(7)...)
	prefix := len(log)
	last := deltaLink(6, 7, []core.Schema{s}, []DeltaRow{
		{Table: "T", Key: core.Int(1)}, // would tombstone row 1 if folded
		{Table: "T", Key: core.Int(2), CSN: 7, Rec: rec(2, "b")},
	})

	for cut := 0; cut < len(last); cut++ {
		info := Classify(append(log[:prefix:prefix], last[:cut]...))
		if info.Checkpoint == nil || info.Checkpoint.CSN != 6 || info.ChainLinks != 2 {
			t.Fatalf("cut %d: fold = %+v links %d, want fallback to cut 6 over 2 links",
				cut, info.Checkpoint, info.ChainLinks)
		}
		rows := info.Checkpoint.Tables[0].Rows
		if len(rows) != 1 || rows[0].Key != core.Int(1) || !rows[0].Rec.Equal(rec(1, "a2")) {
			t.Fatalf("cut %d: incomplete link partially folded: %+v", cut, rows)
		}
		if len(info.Commits) != 1 || info.Commits[0].CSN != 7 {
			t.Fatalf("cut %d: commit 7 must be redo again: %+v", cut, info.Commits)
		}
	}

	// The complete link, for contrast, folds through.
	info := Classify(append(log[:prefix:prefix], last...))
	if info.Checkpoint.CSN != 7 || info.ChainLinks != 3 {
		t.Fatalf("complete link did not fold: %+v links %d", info.Checkpoint, info.ChainLinks)
	}
	rows := info.Checkpoint.Tables[0].Rows
	if len(rows) != 1 || rows[0].Key != core.Int(2) {
		t.Fatalf("complete fold rows: %+v, want only row 2 (row 1 tombstoned)", rows)
	}
}

// TestFoldChainDropsOrphansAndRowCountMismatch pins the two discard
// rules: a delta link whose Base matches no chain tail is dropped
// whole, and an end marker whose row count disagrees with the streamed
// batches invalidates the link (a lost rows batch must not fold as a
// shorter link).
func TestFoldChainDropsOrphansAndRowCountMismatch(t *testing.T) {
	s := testSchema()
	root := deltaLink(0, 5, []core.Schema{s}, []DeltaRow{
		{Table: "T", Key: core.Int(1), CSN: 5, Rec: core.Record{core.Int(1), core.Str("a")}},
	})

	// Orphan: base 99 matches nothing.
	orphan := append(append([]byte(nil), root...),
		deltaLink(99, 120, []core.Schema{s}, []DeltaRow{{Table: "T", Key: core.Int(1)}})...)
	info := Classify(orphan)
	if info.Checkpoint.CSN != 5 || info.ChainLinks != 1 {
		t.Fatalf("orphan link folded: %+v links %d", info.Checkpoint, info.ChainLinks)
	}

	// Row-count mismatch: end claims 2 rows, only 1 streamed.
	bad := append(append([]byte(nil), root...),
		EncodeDeltaBegin(&DeltaBegin{CSN: 8, Base: 5, Schemas: []core.Schema{s}})...)
	bad = append(bad, EncodeDeltaRows(&DeltaRows{CSN: 8, Rows: []DeltaRow{{Table: "T", Key: core.Int(1)}}})...)
	bad = append(bad, EncodeDeltaEnd(&DeltaEnd{CSN: 8, Rows: 2})...)
	info = Classify(bad)
	if info.Checkpoint.CSN != 5 || info.ChainLinks != 1 {
		t.Fatalf("count-mismatched link folded: %+v links %d", info.Checkpoint, info.ChainLinks)
	}
	if len(info.Checkpoint.Tables[0].Rows) != 1 {
		t.Fatalf("mismatched link's tombstone applied: %+v", info.Checkpoint.Tables[0].Rows)
	}
}

// TestFoldChainExtendsLegacyCheckpoint pins upgrade compatibility: a
// delta link may base on a legacy full-image Checkpoint frame's cut, so
// a log written by the STW checkpointer keeps folding after the engine
// switches to incremental links.
func TestFoldChainExtendsLegacyCheckpoint(t *testing.T) {
	s := testSchema()
	rec := func(k int64, v string) core.Record { return core.Record{core.Int(k), core.Str(v)} }
	var log []byte
	log = append(log, EncodeCheckpoint(&Checkpoint{
		CSN: 5,
		Tables: []CheckpointTable{{
			Schema: s,
			Rows: []CheckpointRow{
				{Key: core.Int(1), CSN: 4, Rec: rec(1, "a")},
				{Key: core.Int(2), CSN: 5, Rec: rec(2, "b")},
			},
		}},
	})...)
	log = append(log, commitFrameBytes(6)...)
	log = append(log, deltaLink(5, 6, []core.Schema{s}, []DeltaRow{
		{Table: "T", Key: core.Int(2)},
	})...)

	info := Classify(log)
	if info.Checkpoint.CSN != 6 || info.ChainLinks != 1 {
		t.Fatalf("legacy root not extended: %+v links %d", info.Checkpoint, info.ChainLinks)
	}
	rows := info.Checkpoint.Tables[0].Rows
	if len(rows) != 1 || rows[0].Key != core.Int(1) {
		t.Fatalf("fold over legacy root: %+v, want row 1 only", rows)
	}
	// A later full link re-roots and supersedes the legacy base entirely.
	log = append(log, deltaLink(0, 9, []core.Schema{s}, []DeltaRow{
		{Table: "T", Key: core.Int(3), CSN: 9, Rec: rec(3, "c")},
	})...)
	info = Classify(log)
	if info.Checkpoint.CSN != 9 || info.ChainLinks != 1 {
		t.Fatalf("full link did not re-root: %+v links %d", info.Checkpoint, info.ChainLinks)
	}
	if rows := info.Checkpoint.Tables[0].Rows; len(rows) != 1 || rows[0].Key != core.Int(3) {
		t.Fatalf("re-rooted fold kept stale rows: %+v", rows)
	}
}

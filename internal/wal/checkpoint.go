package wal

import (
	"sort"

	"sicost/internal/core"
	"sicost/internal/storage"
)

// Snapshot serializes the committed state of store as of cut into a
// checkpoint: for every table, its schema and every live row's newest
// committed version with csn <= cut. Tombstoned rows are simply absent.
//
// The caller must guarantee the cut is stable: no commit may be
// stamping versions in the (allocCSNEnqueue, publishCSN) window while the
// snapshot runs (engine.DB.Checkpoint holds the commit barrier for
// exactly this). Versions newer than cut — uncommitted heads from
// in-flight writers — are skipped, so concurrent reads and writes that
// have not reached their commit point do not perturb the snapshot.
func Snapshot(store *storage.Store, cut uint64) *Checkpoint {
	ckpt := &Checkpoint{CSN: cut}
	for _, name := range store.TableNames() {
		t, err := store.Table(name)
		if err != nil {
			continue // racing DDL; the table is not part of this cut
		}
		ct := CheckpointTable{Schema: *t.Schema()}
		for _, k := range t.Keys() {
			row := t.Row(k)
			if row == nil {
				continue
			}
			var v *storage.Version
			for c := row.Head(); c != nil; c = c.Prev {
				if csn := c.CSN(); csn != 0 && csn <= cut {
					v = c
					break
				}
			}
			if v == nil || v.Rec == nil {
				continue
			}
			ct.Rows = append(ct.Rows, CheckpointRow{Key: k, CSN: v.CSN(), Rec: v.Rec})
		}
		ckpt.Tables = append(ckpt.Tables, ct)
	}
	return ckpt
}

// SnapshotDelta resolves the after-image of every dirty key as of cut:
// the newest committed version with csn <= cut, or a tombstone when the
// key was deleted (or never live) at the cut. Unlike Snapshot it does
// NOT need the commit barrier while it runs — versions with csn <= cut
// are immutable once published, so commits stamping newer versions
// concurrently never perturb the result. The caller guarantees only
// that the dirty set was drained under the barrier at cut (every
// commit <= cut has marked its keys; keys dirtied by later commits
// belong to the next epoch).
//
// Keys are resolved in sorted (table, key) order so the streamed link
// is deterministic for a given dirty set.
func SnapshotDelta(store *storage.Store, dirty map[string][]core.Value, cut uint64) []DeltaRow {
	names := make([]string, 0, len(dirty))
	for name := range dirty {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []DeltaRow
	for _, name := range names {
		t, err := store.Table(name)
		if err != nil {
			continue // table dropped out from under the epoch; nothing to fold
		}
		keys := dirty[name]
		sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
		for _, k := range keys {
			dr := DeltaRow{Table: name, Key: k}
			if row := t.Row(k); row != nil {
				for c := row.Head(); c != nil; c = c.Prev {
					if csn := c.CSN(); csn != 0 && csn <= cut {
						dr.CSN = csn
						dr.Rec = c.Rec // nil for a tombstone version
						break
					}
				}
			}
			out = append(out, dr)
		}
	}
	return out
}

// SnapshotAll streams every live row as of cut as DeltaRow images —
// the payload of a full (Base == 0) chain link. Like SnapshotDelta it
// runs without the commit barrier: versions at or below the cut are
// immutable, and keys born after the cut resolve to nothing. Keys with
// no live version at the cut are skipped entirely — a full link folds
// from an empty map, so a tombstone would carry nothing.
func SnapshotAll(store *storage.Store, cut uint64) []DeltaRow {
	var out []DeltaRow
	for _, name := range store.TableNames() {
		t, err := store.Table(name)
		if err != nil {
			continue
		}
		for _, k := range t.Keys() {
			row := t.Row(k)
			if row == nil {
				continue
			}
			for c := row.Head(); c != nil; c = c.Prev {
				if csn := c.CSN(); csn != 0 && csn <= cut {
					if c.Rec != nil {
						out = append(out, DeltaRow{Table: name, Key: k, CSN: csn, Rec: c.Rec})
					}
					break
				}
			}
		}
	}
	return out
}

// Schemas returns every table schema in the store, sorted by name —
// the set a chain link's begin marker embeds. The caller holds the
// commit barrier (DDL takes its read side), so the set is consistent
// with the cut.
func Schemas(store *storage.Store) []core.Schema {
	var out []core.Schema
	for _, name := range store.TableNames() {
		t, err := store.Table(name)
		if err != nil {
			continue
		}
		out = append(out, *t.Schema())
	}
	return out
}

// Checkpointer couples a WAL with the snapshot procedure: Run captures
// store at cut and writes the result as the log's new truncation point
// (the device is rewritten to the single checkpoint frame, bounding
// replay cost to the commits after it).
type Checkpointer struct {
	Log *WAL
}

// Run snapshots store at cut and installs the checkpoint. It returns
// the serialized checkpoint for inspection.
func (c *Checkpointer) Run(store *storage.Store, cut uint64) (*Checkpoint, error) {
	ckpt := Snapshot(store, cut)
	if err := c.Log.WriteCheckpoint(ckpt); err != nil {
		return nil, err
	}
	return ckpt, nil
}

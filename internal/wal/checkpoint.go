package wal

import (
	"sicost/internal/storage"
)

// Snapshot serializes the committed state of store as of cut into a
// checkpoint: for every table, its schema and every live row's newest
// committed version with csn <= cut. Tombstoned rows are simply absent.
//
// The caller must guarantee the cut is stable: no commit may be
// stamping versions in the (allocCSNEnqueue, publishCSN) window while the
// snapshot runs (engine.DB.Checkpoint holds the commit barrier for
// exactly this). Versions newer than cut — uncommitted heads from
// in-flight writers — are skipped, so concurrent reads and writes that
// have not reached their commit point do not perturb the snapshot.
func Snapshot(store *storage.Store, cut uint64) *Checkpoint {
	ckpt := &Checkpoint{CSN: cut}
	for _, name := range store.TableNames() {
		t, err := store.Table(name)
		if err != nil {
			continue // racing DDL; the table is not part of this cut
		}
		ct := CheckpointTable{Schema: *t.Schema()}
		for _, k := range t.Keys() {
			row := t.Row(k)
			if row == nil {
				continue
			}
			var v *storage.Version
			for c := row.Head(); c != nil; c = c.Prev {
				if csn := c.CSN(); csn != 0 && csn <= cut {
					v = c
					break
				}
			}
			if v == nil || v.Rec == nil {
				continue
			}
			ct.Rows = append(ct.Rows, CheckpointRow{Key: k, CSN: v.CSN(), Rec: v.Rec})
		}
		ckpt.Tables = append(ckpt.Tables, ct)
	}
	return ckpt
}

// Checkpointer couples a WAL with the snapshot procedure: Run captures
// store at cut and writes the result as the log's new truncation point
// (the device is rewritten to the single checkpoint frame, bounding
// replay cost to the commits after it).
type Checkpointer struct {
	Log *WAL
}

// Run snapshots store at cut and installs the checkpoint. It returns
// the serialized checkpoint for inspection.
func (c *Checkpointer) Run(store *storage.Store, cut uint64) (*Checkpoint, error) {
	ckpt := Snapshot(store, cut)
	if err := c.Log.WriteCheckpoint(ckpt); err != nil {
		return nil, err
	}
	return ckpt, nil
}

// Package wal implements the write-ahead log of the engine, modelled on
// the paper's testbed: a dedicated log disk with the write cache
// disabled, so every commit of an updating transaction must wait for a
// real device write — amortized across concurrent committers by group
// commit (the paper configures commit-delay to exploit exactly this).
//
// The log is layered. The latency of the device is simulated
// (Config.FsyncLatency), which is all the throughput experiments need;
// durability is real when a LogDevice is attached (Config.Device): the
// flush loop encodes each commit record — row after-images plus CSN —
// into CRC32-framed binary frames (codec.go), appends each flush group
// to the device, and issues one Sync per coalesced window of groups
// (many appends, one fdatasync). Checkpoint and schema frames share the
// same framing, and Recover (recover.go) classifies a device image back
// into snapshot + redo work with torn-tail truncation; segment.go adds
// the wal.000N segmented layout. Read-only transactions never touch the
// log, which is the mechanism behind the paper's §IV-D observation that
// strategies turning the read-only Balance program into an updater pay
// ~20% at MPL=1 (5/5 instead of 4/5 of transactions must wait for the
// disk).
package wal

import (
	"hash/crc32"
	"sync"
	"time"

	"sicost/internal/core"
	"sicost/internal/faultinject"
	"sicost/internal/trace"
)

// Fault-point names of the log device.
const (
	// FaultCommit fires at the head of Commit, before the record is
	// enqueued (a connection to the log that dies before the write).
	// It fires even when the device is disabled, so chaos runs against
	// latency-free test configurations still exercise commit-path
	// failures. The engine fires it before CSN allocation, so an
	// ActPanic here cannot wedge the sequencer.
	FaultCommit = "wal/commit"
	// FaultFlush fires once per flush-group device write, before any
	// byte of that group reaches the device; an injected error fails
	// every commit record in that group without persisting it (groups
	// already appended in the same window are unaffected, and later
	// groups still flush). An ActPanic spec here models the process
	// dying mid-write: the unsynced appends of earlier groups in the
	// window are lost with the page cache, a torn prefix of the crashed
	// group's first frame reaches the platter (so nothing
	// unacknowledged becomes durable), and the WAL bricks itself —
	// every later commit fails until recovery rebuilds the engine.
	FaultFlush = "wal/flush"
	// FaultSync fires once per coalesced window, after every group's
	// append and before the device Sync. An injected error is a failed
	// fsync: durability of the whole window is unknown, so the WAL
	// bricks (the fsyncgate discipline). An ActPanic models power dying
	// inside the coalesced-sync window: every unsynced append vanishes
	// with the page cache and nothing in the window is acknowledged.
	FaultSync = "wal/sync"
	// FaultCkptDelta fires once per delta-rows append of a fuzzy
	// checkpoint link, before any byte reaches the device. An ActPanic
	// models the process dying mid-delta: unsynced appends are lost, a
	// torn prefix of the batch frame may reach the platter, the WAL
	// bricks — and recovery must discard the incomplete link, falling
	// back to the previous complete chain state.
	FaultCkptDelta = "wal/ckpt-delta"
)

// Config parameterizes the log device.
type Config struct {
	// FsyncLatency is the time one device sync takes. With no Device
	// attached, zero disables the log entirely (commits return
	// immediately), which unit tests use.
	FsyncLatency time.Duration
	// MaxBatch caps the number of commit records appended by a single
	// flush-group device write; 0 means unbounded (pure group commit).
	MaxBatch int
	// SyncEveryGroup restores the pre-coalescing discipline: one device
	// Sync (and one FsyncLatency wait) per flush group. The default
	// coalesces every group pending at the start of a flush window into
	// one Sync — many appends, one fdatasync — which is what lets
	// MaxBatch bound device-write sizes without multiplying syncs.
	SyncEveryGroup bool
	// Device, when non-nil, is the durable medium: every flush encodes
	// its batch and appends the frames to the device before
	// acknowledging. Nil keeps the historical latency-only simulation.
	Device LogDevice
	// PreallocBytes, when positive, asks the device to create log
	// segments at this physical size up front (zero-padded past the
	// logical tail), so steady-state appends overwrite allocated blocks
	// instead of extending the file on every flush. Ignored by devices
	// without the notion (memory, flat files); see
	// SegmentLog.SetPrealloc for the recovery story.
	PreallocBytes int64
}

// Scaled returns the config with FsyncLatency multiplied by f.
func (c Config) Scaled(f float64) Config {
	c.FsyncLatency = time.Duration(float64(c.FsyncLatency) * f)
	return c
}

// Record is one commit log record: the transaction's identity, its
// commit sequence number, and the after-image of every row it wrote.
// With a device attached the record is encoded and persisted; without
// one only Bytes is accounted, preserving the latency-only simulation.
type Record struct {
	TxID uint64
	CSN  uint64
	// Rows are the committed after-images (nil Rec = tombstone),
	// in-transaction write order.
	Rows []RowImage
	// Bytes is the accounted payload size. Callers may pre-fill an
	// estimate for latency-only mode; with a device attached Commit
	// overwrites it with the real encoded frame size.
	Bytes int
	// Async marks a record whose committer did not wait for durability
	// (the commit is already published). A failure resolving an async
	// record cannot be rolled back by aborting the transaction, so it
	// bricks the WAL instead.
	Async bool

	enc  []byte
	done chan error
}

// Stats aggregates device activity; used by tests and by the
// group-commit ablation experiment. Only flush groups whose covering
// Sync succeeded count toward Flushes/Records/Bytes; groups that failed
// (injected error, injected crash, device error, or a failed Sync)
// count in FailedFlushes and contribute nothing else — in particular, a
// group rejected by an injected device error while its window's other
// groups proceed is counted exactly once, as failed.
type Stats struct {
	// Flushes counts flush groups appended and covered by a successful
	// Sync; Syncs counts the device syncs themselves. With coalescing,
	// Flushes/Syncs > 1 is the whole point: many appends, one
	// fdatasync.
	Flushes int64
	Syncs   int64
	Records int64
	Bytes   int64
	// FailedFlushes counts flush groups that failed; their records
	// were rejected, not acknowledged.
	FailedFlushes int64
	// Checkpoints counts checkpoint frames written (each rewrites the
	// device to checkpoint + empty tail).
	Checkpoints int64
	// DeltaCheckpoints counts fuzzy chain links made durable (end
	// marker synced).
	DeltaCheckpoints int64
	// RetiredSegments counts sealed segments unlinked by Retire because
	// the checkpoint chain covers them; ArchivedSegments counts how many
	// of those were copied to the archive directory first.
	RetiredSegments  int64
	ArchivedSegments int64
}

// AvgBatch returns the mean number of commit records per successful
// flush group.
func (s Stats) AvgBatch() float64 {
	if s.Flushes == 0 {
		return 0
	}
	return float64(s.Records) / float64(s.Flushes)
}

// CommitsPerSync returns the mean number of commit records made durable
// per device sync — the coalescing win the async/segmented rework is
// after.
func (s Stats) CommitsPerSync() float64 {
	if s.Syncs == 0 {
		return 0
	}
	return float64(s.Records) / float64(s.Syncs)
}

// WAL is the group-commit log. The zero value is not usable; call New.
type WAL struct {
	cfg    Config
	faults *faultinject.Registry
	tracer *trace.Recorder

	// devMu serializes all device operations (flush appends and syncs,
	// checkpoint rewrites, schema appends) so frames never interleave
	// mid-write.
	devMu sync.Mutex

	mu      sync.Mutex
	idle    sync.Cond // broadcast when the flush loop exits
	durable sync.Cond // broadcast when the durability watermark moves or the WAL dies
	pending []*Record
	flusher bool // a flush loop is running
	closed  bool
	failErr error // injected fault: every subsequent flush fails with it
	broken  error // sticky: the device died (crash or IO error); recovery required
	stats   Stats

	// Durability watermark. The engine enqueues commit records in CSN
	// order (allocation and enqueue share the sequencer's critical
	// section) and the flush loop resolves them in queue order, so
	// durableCSN — the highest CSN acknowledged durable — only ever
	// advances, and everything at or below it is durable.
	// outstandingRecs counts enqueued, unresolved records carrying a
	// CSN; zero means the log has no durability debt.
	durableCSN      uint64
	outstandingRecs int
}

// New creates a WAL. With no device and zero FsyncLatency the log is
// disabled and Commit returns immediately.
func New(cfg Config) *WAL {
	w := &WAL{cfg: cfg}
	w.idle.L = &w.mu
	w.durable.L = &w.mu
	if cfg.PreallocBytes > 0 {
		if d, ok := cfg.Device.(interface{ SetPrealloc(int64) error }); ok {
			// Preallocation is a performance lever, not a correctness one:
			// a device that cannot extend (full disk, odd medium) just
			// runs append-grown.
			_ = d.SetPrealloc(cfg.PreallocBytes)
		}
	}
	return w
}

// SetFaults installs the fault registry consulted by the FaultCommit,
// FaultFlush and FaultSync points (nil disables), propagating it to a
// device that has fault points of its own (SegmentLog's rotation).
// Call before commits are in flight.
func (w *WAL) SetFaults(r *faultinject.Registry) {
	w.faults = r
	if d, ok := w.cfg.Device.(interface {
		SetFaults(*faultinject.Registry)
	}); ok {
		d.SetFaults(r)
	}
}

// SetTracer installs the lifecycle-event recorder for EvWALCommit and
// EvWALFlush (nil disables). Call before commits are in flight.
func (w *WAL) SetTracer(r *trace.Recorder) { w.tracer = r }

// CommitFault fires the wal/commit fault point on behalf of tx. The
// engine calls it before CSN allocation so an ActPanic here unwinds
// with no sequencer state to clean up.
func (w *WAL) CommitFault(tx uint64) error {
	return w.faults.Fire(FaultCommit, faultinject.Ctx{Tx: tx})
}

// Commit appends rec to the log and blocks until it is durable (the
// device sync covering its flush group completed). It returns
// core.ErrWALClosed if the device shuts down first, the injected fault
// if one is set, or the sticky crash error once a flush has torn the
// device.
func (w *WAL) Commit(rec *Record) error {
	if err := w.CommitFault(rec.TxID); err != nil {
		return err
	}
	done, err := w.Enqueue(rec)
	if err != nil {
		return err
	}
	if done == nil {
		return nil
	}
	return <-done
}

// Enqueue appends rec to the flush queue without waiting for
// durability. It returns a buffered channel that receives exactly one
// verdict when the record's flush resolves, or (nil, nil) when the log
// is disabled (the record is trivially "durable"), or a non-nil error
// when the log is closed or broken and nothing was enqueued.
//
// The engine calls Enqueue inside the CSN-allocation critical section,
// so queue order equals CSN order: the durable part of the log is
// always a CSN prefix, which is what makes the durability watermark
// (DurableWatermark, WaitDurableCSN) and async commit's
// lose-only-the-tail recovery guarantee meaningful.
func (w *WAL) Enqueue(rec *Record) (<-chan error, error) {
	if w.cfg.Device != nil {
		rec.enc = EncodeCommit(&CommitFrame{TxID: rec.TxID, CSN: rec.CSN, Rows: rec.Rows})
		rec.Bytes = len(rec.enc)
	}
	if w.tracer.Enabled() {
		w.tracer.Emit(trace.Event{Kind: trace.EvWALCommit, Tx: rec.TxID, Bytes: rec.Bytes})
	}
	if !w.Enabled() {
		return nil, nil
	}
	rec.done = make(chan error, 1)

	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil, core.ErrWALClosed
	}
	if w.broken != nil {
		err := w.broken
		w.mu.Unlock()
		return nil, err
	}
	if rec.CSN != 0 {
		w.outstandingRecs++
	}
	w.pending = append(w.pending, rec)
	if !w.flusher {
		w.flusher = true
		go w.flushLoop()
	}
	w.mu.Unlock()

	return rec.done, nil
}

// Withdraw removes rec from the flush queue if — and only if — no flush
// window has claimed it yet. It reports whether the record was
// withdrawn: true means the record will never reach the device and its
// done channel will never resolve, so the committer may abort cleanly
// (the engine publishes the allocated CSN as an empty slot, the same
// discipline as an enqueue failure — the durability watermark's prefix
// property is unaffected because an empty slot has nothing to lose).
// False means the record is in flight or already resolved: the commit
// can no longer be torn away from the log, and the caller must wait for
// the verdict and complete the commit. This is what bounds a sync
// commit's flush-group wait by the transaction deadline without ever
// leaving a commit half-published.
func (w *WAL) Withdraw(rec *Record) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	for i, r := range w.pending {
		if r != rec {
			continue
		}
		w.pending = append(w.pending[:i], w.pending[i+1:]...)
		if rec.CSN != 0 {
			w.outstandingRecs--
		}
		// Waiters on the watermark may be blocked behind this record's
		// outstanding count.
		w.durable.Broadcast()
		return true
	}
	return false
}

// fireFlush hits the FaultFlush point, converting an injected panic
// (ActPanic modelling a mid-flush crash) into its error value instead
// of letting it kill the background flush goroutine — and with it the
// whole process. crashed reports that conversion, which the flush loop
// turns into a torn device append plus a bricked WAL.
func (w *WAL) fireFlush() (err error, crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			p, ok := faultinject.AsPanic(r)
			if !ok {
				panic(r)
			}
			err, crashed = p, true
		}
	}()
	return w.faults.Fire(FaultFlush, faultinject.Ctx{}), false
}

// fireSync hits the FaultSync point with the same panic conversion.
func (w *WAL) fireSync() (err error, crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			p, ok := faultinject.AsPanic(r)
			if !ok {
				panic(r)
			}
			err, crashed = p, true
		}
	}()
	return w.faults.Fire(FaultSync, faultinject.Ctx{}), false
}

// flushLoop drains pending records window by window. Exactly one loop
// runs at a time; it exits when the queue empties, so an idle log costs
// nothing. In the default coalescing mode a window is everything
// pending at loop-start — split into MaxBatch-sized append groups but
// covered by a single Sync; with SyncEveryGroup each window is one
// group, the pre-coalescing one-sync-per-group discipline.
func (w *WAL) flushLoop() {
	for {
		w.mu.Lock()
		if len(w.pending) == 0 || w.closed {
			w.flusher = false
			// Closing drains remaining waiters in Close; wake it now
			// that no flush is in flight.
			w.idle.Broadcast()
			w.mu.Unlock()
			return
		}
		var window []*Record
		if w.cfg.SyncEveryGroup && w.cfg.MaxBatch > 0 && len(w.pending) > w.cfg.MaxBatch {
			window = w.pending[:w.cfg.MaxBatch:w.cfg.MaxBatch]
			w.pending = w.pending[w.cfg.MaxBatch:]
		} else {
			window = w.pending
			w.pending = nil
		}
		injected := w.failErr
		if injected == nil {
			injected = w.broken
		}
		w.mu.Unlock()

		w.flushWindow(window, injected)
	}
}

// group is one device-write unit inside a flush window.
type group struct {
	recs   []*Record
	frames []byte
	bytes  int
}

// splitGroups cuts a window into MaxBatch-sized flush groups and
// encodes each one's frame block.
func (w *WAL) splitGroups(window []*Record) []group {
	var groups []group
	for len(window) > 0 {
		n := len(window)
		if w.cfg.MaxBatch > 0 && n > w.cfg.MaxBatch {
			n = w.cfg.MaxBatch
		}
		g := group{recs: window[:n]}
		for _, r := range g.recs {
			g.bytes += r.Bytes
			g.frames = append(g.frames, r.enc...)
		}
		groups = append(groups, g)
		window = window[n:]
	}
	return groups
}

// flushWindow appends every group of the window to the device and
// covers them with one Sync. Group-level failures are independent: an
// injected device error rejects exactly that group's records (counted
// once, in FailedFlushes — never also in Flushes/Bytes) while earlier
// appends stay covered by the window's Sync and later groups still
// run. Crashes (injected panics) lose the window's unsynced appends,
// leave at most a torn fragment, and brick the WAL.
func (w *WAL) flushWindow(window []*Record, injected error) {
	groups := w.splitGroups(window)

	// The device sync occupies the log for the configured latency,
	// once per window: every group in the window shares the wait —
	// coalesced group commit.
	time.Sleep(w.cfg.FsyncLatency)

	if injected != nil {
		w.mu.Lock()
		w.stats.FailedFlushes += int64(len(groups))
		w.mu.Unlock()
		for _, g := range groups {
			w.resolve(g.recs, injected)
		}
		return
	}

	var appended []group
	var crashErr error
	failFrom := len(groups) // first group index not appended due to crash
	for gi, g := range groups {
		err, crashed := w.fireFlush()
		if crashed {
			// Mid-write crash: the page cache — earlier groups' unsynced
			// appends — is lost; a torn prefix of this group's first
			// frame made the platter mid-write.
			w.dropUnsynced()
			w.tornAppend(g.frames)
			w.brick(err)
			crashErr, failFrom = err, gi
			break
		}
		if err != nil {
			// Injected device error for this group only: rejected before
			// any byte reached the device; the rest of the window
			// proceeds.
			w.mu.Lock()
			w.stats.FailedFlushes++
			w.mu.Unlock()
			w.resolve(g.recs, err)
			continue
		}
		if derr := w.devAppend(g.frames); derr != nil {
			w.brick(derr)
			crashErr, failFrom = derr, gi
			break
		}
		appended = append(appended, g)
	}

	if crashErr != nil {
		// The crash loses every unacknowledged record of the window:
		// the appended-but-unsynced groups and everything after the
		// crash point.
		w.mu.Lock()
		w.stats.FailedFlushes += int64(len(appended) + len(groups) - failFrom)
		w.mu.Unlock()
		for _, g := range appended {
			w.resolve(g.recs, crashErr)
		}
		for _, g := range groups[failFrom:] {
			w.resolve(g.recs, crashErr)
		}
		return
	}

	if len(appended) == 0 {
		return
	}

	serr, scrashed := w.fireSync()
	if scrashed {
		// Power dies inside the coalesced-sync window, before the sync
		// reaches the device: the whole window's appends sit in the
		// lost page cache.
		w.dropUnsynced()
		w.failWindow(appended, serr)
		return
	}
	if serr == nil {
		serr = w.devSync()
	}
	if serr != nil {
		// Failed fsync: durability of everything since the last
		// successful sync is unknown (fsyncgate) — brick.
		w.failWindow(appended, serr)
		return
	}

	w.mu.Lock()
	w.stats.Syncs++
	for _, g := range appended {
		w.stats.Flushes++
		w.stats.Records += int64(len(g.recs))
		w.stats.Bytes += int64(g.bytes)
	}
	w.mu.Unlock()

	if w.tracer.Enabled() {
		// Device-level events: no transaction; Depth is the group size.
		for _, g := range appended {
			w.tracer.Emit(trace.Event{Kind: trace.EvWALFlush, Depth: len(g.recs), Bytes: g.bytes})
		}
	}

	for _, g := range appended {
		w.resolve(g.recs, nil)
	}
}

// failWindow bricks the WAL with err and rejects every appended group.
func (w *WAL) failWindow(appended []group, err error) {
	w.brick(err)
	w.mu.Lock()
	w.stats.FailedFlushes += int64(len(appended))
	w.mu.Unlock()
	for _, g := range appended {
		w.resolve(g.recs, err)
	}
}

// resolve delivers one verdict to every record of a flush group,
// advancing the durability watermark for successes and bricking the WAL
// when an async (already published) record fails — that loss cannot be
// rolled back by aborting a transaction.
func (w *WAL) resolve(recs []*Record, err error) {
	w.mu.Lock()
	for _, r := range recs {
		if r.CSN != 0 {
			w.outstandingRecs--
		}
		switch {
		case err == nil:
			if r.CSN > w.durableCSN {
				w.durableCSN = r.CSN
			}
		case r.Async:
			if w.broken == nil {
				w.broken = err
			}
		}
	}
	w.durable.Broadcast()
	w.mu.Unlock()
	for _, r := range recs {
		r.done <- err
	}
}

// brick marks the device dead; every later commit fails until recovery.
func (w *WAL) brick(err error) {
	w.mu.Lock()
	if w.broken == nil {
		w.broken = err
	}
	w.durable.Broadcast()
	w.mu.Unlock()
}

// devAppend writes one flush group to the device.
func (w *WAL) devAppend(frames []byte) error {
	if w.cfg.Device == nil || len(frames) == 0 {
		return nil
	}
	w.devMu.Lock()
	defer w.devMu.Unlock()
	return w.cfg.Device.Append(frames)
}

// devSync issues the device sync covering every append since the last.
func (w *WAL) devSync() error {
	if w.cfg.Device == nil {
		return nil
	}
	w.devMu.Lock()
	defer w.devMu.Unlock()
	return w.cfg.Device.Sync()
}

// dropUnsynced simulates losing the page cache on a crash-capable
// device; a no-op for devices without the synced/unsynced distinction.
func (w *WAL) dropUnsynced() {
	if vd, ok := w.cfg.Device.(VolatileDevice); ok {
		w.devMu.Lock()
		_, _ = vd.DropUnsynced()
		w.devMu.Unlock()
	}
}

// tornAppend simulates the crash-interrupted device write: a strict
// prefix of the group's first frame is persisted, deterministically cut
// by the group checksum. Keeping the cut inside the first frame
// guarantees no unacknowledged commit becomes durable, while still
// leaving a genuinely torn tail for recovery to truncate. The fragment
// is synced: it models bytes the platter received mid-write, not page
// cache.
func (w *WAL) tornAppend(frames []byte) {
	if w.cfg.Device == nil || len(frames) == 0 {
		return
	}
	_, first, err := DecodeFrameAt(frames, 0)
	if err != nil || first <= 0 {
		first = len(frames)
	}
	cut := int(crc32.Checksum(frames, castagnoli) % uint32(first))
	w.devMu.Lock()
	_ = w.cfg.Device.Append(frames[:cut])
	_ = w.cfg.Device.Sync()
	w.devMu.Unlock()
}

// DurableWatermark returns the highest CSN acknowledged durable and
// whether any enqueued record is still awaiting its verdict.
func (w *WAL) DurableWatermark() (csn uint64, outstanding bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.durableCSN, w.outstandingRecs > 0
}

// ResumeDurable seeds the durability watermark, used once at recovery:
// every commit the log replayed is durable by construction, so the
// revived WAL's watermark starts at the recovered high-water mark
// instead of re-earning it one flush at a time.
func (w *WAL) ResumeDurable(csn uint64) {
	w.mu.Lock()
	if csn > w.durableCSN {
		w.durableCSN = csn
	}
	w.mu.Unlock()
}

// WaitDurableCSN blocks until the commit with sequence number csn is
// durable (nil), or the WAL dies first — broken returns the sticky
// device error, a close before durability returns core.ErrWALClosed.
// Because enqueue order is CSN order, csn durable implies every logged
// commit at or below csn is durable too.
func (w *WAL) WaitDurableCSN(csn uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.durableCSN < csn && w.broken == nil && !w.closed {
		w.durable.Wait()
	}
	if w.durableCSN >= csn {
		return nil
	}
	if w.broken != nil {
		return w.broken
	}
	return core.ErrWALClosed
}

// Drain blocks until the flush queue is empty and no flush is in
// flight. DB.Close uses it to flush async commits before teardown; the
// caller must guarantee no new Enqueues arrive (a broken WAL still
// drains — its pending records fail fast).
func (w *WAL) Drain() {
	w.mu.Lock()
	for w.flusher || len(w.pending) > 0 {
		w.idle.Wait()
	}
	w.mu.Unlock()
}

// WriteCheckpoint truncates the log to a single checkpoint frame. The
// caller (engine.DB.Checkpoint) must guarantee quiescence: no commit
// may sit between CSN allocation and publication, so every durable
// frame is covered by the snapshot and Rewrite loses nothing. (Async
// records may still be in the flush queue, but the barrier guarantees
// their CSNs are published, hence ≤ the cut: their frames land after
// the checkpoint and recovery skips them as already covered.)
func (w *WAL) WriteCheckpoint(c *Checkpoint) error {
	if w.cfg.Device == nil {
		return core.ErrWALClosed
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return core.ErrWALClosed
	}
	if w.broken != nil {
		err := w.broken
		w.mu.Unlock()
		return err
	}
	w.mu.Unlock()

	enc := EncodeCheckpoint(c)
	w.devMu.Lock()
	err := w.cfg.Device.Rewrite(enc)
	w.devMu.Unlock()

	w.mu.Lock()
	if err == nil {
		w.stats.Checkpoints++
		w.stats.Bytes += int64(len(enc))
	} else {
		w.broken = err
		w.durable.Broadcast()
	}
	w.mu.Unlock()
	return err
}

// AppendSchema persists a DDL frame so a log without a checkpoint can
// still rebuild table definitions. The frame is synced immediately —
// DDL is rare and must not sit in the page cache behind a commit
// window. No-op without a device.
func (w *WAL) AppendSchema(s *core.Schema) error {
	if w.cfg.Device == nil {
		return nil
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return core.ErrWALClosed
	}
	if w.broken != nil {
		err := w.broken
		w.mu.Unlock()
		return err
	}
	w.mu.Unlock()

	enc := EncodeSchema(s)
	w.devMu.Lock()
	err := w.cfg.Device.Append(enc)
	if err == nil {
		err = w.cfg.Device.Sync()
	}
	w.devMu.Unlock()

	w.mu.Lock()
	if err == nil {
		w.stats.Bytes += int64(len(enc))
		w.stats.Syncs++
	} else {
		w.broken = err
		w.durable.Broadcast()
	}
	w.mu.Unlock()
	return err
}

// guardOpen rejects device-side operations on a closed or bricked WAL.
func (w *WAL) guardOpen() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return core.ErrWALClosed
	}
	return w.broken
}

// BeginDelta appends a fuzzy-checkpoint chain-link begin marker. The
// caller (engine.DB.CheckpointIncremental) holds the commit barrier's
// write side across this append, which is the whole point: no commit
// with CSN > d.CSN can precede the marker in the byte stream, so every
// frame before it is covered by the chain once the link completes. The
// marker is NOT synced here — the end marker's sync covers it, and a
// begin lost with the page cache just leaves an incomplete link that
// recovery ignores.
func (w *WAL) BeginDelta(d *DeltaBegin) (int, error) {
	if w.cfg.Device == nil {
		return 0, core.ErrWALClosed
	}
	if err := w.guardOpen(); err != nil {
		return 0, err
	}
	enc := EncodeDeltaBegin(d)
	w.devMu.Lock()
	err := w.cfg.Device.Append(enc)
	w.devMu.Unlock()
	w.mu.Lock()
	if err == nil {
		w.stats.Bytes += int64(len(enc))
	} else if w.broken == nil {
		w.broken = err
		w.durable.Broadcast()
	}
	w.mu.Unlock()
	return len(enc), err
}

// fireCkptDelta hits the FaultCkptDelta point with the flush loop's
// panic conversion: an ActPanic models the process dying mid-delta.
func (w *WAL) fireCkptDelta() (err error, crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			p, ok := faultinject.AsPanic(r)
			if !ok {
				panic(r)
			}
			err, crashed = p, true
		}
	}()
	return w.faults.Fire(FaultCkptDelta, faultinject.Ctx{}), false
}

// AppendDeltaRows appends one batch of a link's after-images. It runs
// WITHOUT the commit barrier — versions at or below the cut are
// immutable, so commits interleave freely with these appends. A crash
// here (FaultCkptDelta with ActPanic) loses unsynced appends, leaves at
// most a torn prefix of this batch on the platter and bricks the WAL:
// recovery sees an incomplete link and falls back to the previous
// complete chain state. Any other append failure also bricks — a
// half-written link whose device state is unknown cannot be reasoned
// about frame by frame.
func (w *WAL) AppendDeltaRows(d *DeltaRows) (int, error) {
	if w.cfg.Device == nil {
		return 0, core.ErrWALClosed
	}
	if err := w.guardOpen(); err != nil {
		return 0, err
	}
	enc := EncodeDeltaRows(d)
	ferr, crashed := w.fireCkptDelta()
	if crashed {
		w.dropUnsynced()
		w.tornAppend(enc)
		w.brick(ferr)
		return 0, ferr
	}
	if ferr == nil {
		ferr = w.devAppend(enc)
	}
	w.mu.Lock()
	if ferr == nil {
		w.stats.Bytes += int64(len(enc))
	} else if w.broken == nil {
		w.broken = ferr
		w.durable.Broadcast()
	}
	w.mu.Unlock()
	if ferr != nil {
		return 0, ferr
	}
	return len(enc), nil
}

// EndDelta appends the link's end marker and syncs: the durability
// point of the whole link (begin, every rows batch, end — appends are
// ordered, one sync covers them all). Only after EndDelta returns nil
// may the engine extend its in-memory chain state or retire segments.
func (w *WAL) EndDelta(d *DeltaEnd) (int, error) {
	if w.cfg.Device == nil {
		return 0, core.ErrWALClosed
	}
	if err := w.guardOpen(); err != nil {
		return 0, err
	}
	enc := EncodeDeltaEnd(d)
	w.devMu.Lock()
	err := w.cfg.Device.Append(enc)
	if err == nil {
		err = w.cfg.Device.Sync()
	}
	w.devMu.Unlock()
	w.mu.Lock()
	if err == nil {
		w.stats.Bytes += int64(len(enc))
		w.stats.Syncs++
		w.stats.DeltaCheckpoints++
	} else if w.broken == nil {
		w.broken = err
		w.durable.Broadcast()
	}
	w.mu.Unlock()
	return len(enc), err
}

// Retirer is implemented by log devices that can unlink sealed segments
// wholly covered by a durable checkpoint chain (the segmented log).
type Retirer interface {
	// RetireSegments removes every sealed segment with index < beforeIdx,
	// oldest first; with archiveDir non-empty each is copied there before
	// the unlink. It returns how many segments were removed and how many
	// of those were archived. A crash mid-retire leaves a shorter prefix
	// removed — still a valid suffix layout.
	RetireSegments(beforeIdx int, archiveDir string) (retired, archived int, err error)
}

// Retire unlinks sealed segments with index < beforeIdx, optionally
// archiving each to archiveDir first (point-in-time-recovery source).
// The caller must only pass a beforeIdx at or below the segment index
// that was current when the chain's ROOT link appended its begin marker
// — everything before that point is reconstructible from the chain. A
// no-op (0, 0, nil) when the device does not support retirement.
func (w *WAL) Retire(beforeIdx int, archiveDir string) (retired, archived int, err error) {
	r, ok := w.cfg.Device.(Retirer)
	if !ok {
		return 0, 0, nil
	}
	if err := w.guardOpen(); err != nil {
		return 0, 0, err
	}
	w.devMu.Lock()
	retired, archived, err = r.RetireSegments(beforeIdx, archiveDir)
	w.devMu.Unlock()
	w.mu.Lock()
	w.stats.RetiredSegments += int64(retired)
	w.stats.ArchivedSegments += int64(archived)
	if err != nil && w.broken == nil {
		w.broken = err
		w.durable.Broadcast()
	}
	w.mu.Unlock()
	return retired, archived, err
}

// InjectFailure makes every subsequent flush window acknowledge its
// records with err (nil clears the fault). Nothing reaches the device
// while the fault is set. Used by failure-injection tests.
func (w *WAL) InjectFailure(err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.failErr = err
}

// Broken returns the sticky device-death error (nil while healthy). A
// broken WAL rejects every commit until the engine is rebuilt from the
// device via Recover.
func (w *WAL) Broken() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.broken
}

// Stats returns a snapshot of device activity.
func (w *WAL) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// Close shuts the device down. Pending, unflushed records fail with
// core.ErrWALClosed; records already in a device write are acknowledged
// by that flush. Close is idempotent, safe against concurrent Commit
// and concurrent Close, and returns only once no flush goroutine is
// running — a closed WAL has no background activity left. (DB.Close
// drains the queue first, so a graceful shutdown flushes async commits
// rather than failing them.)
func (w *WAL) Close() {
	w.mu.Lock()
	w.closed = true
	pending := w.pending
	w.pending = nil
	for w.flusher {
		w.idle.Wait()
	}
	w.durable.Broadcast()
	w.mu.Unlock()
	// The flush loop exited and Enqueue rejects new records once closed,
	// so these drained records are exclusively ours to fail. Each
	// record's done channel is buffered and receives exactly one
	// verdict, so a second racing Close (which drained an empty
	// pending slice) cannot double-send. resolve also pops them from
	// the outstanding count, releasing WaitDurableCSN callers.
	w.resolve(pending, core.ErrWALClosed)
}

// Enabled reports whether commits must wait for the log: either the
// latency simulation or a durable device is active.
func (w *WAL) Enabled() bool { return w.cfg.FsyncLatency > 0 || w.cfg.Device != nil }

// Persistent reports whether a durable device is attached.
func (w *WAL) Persistent() bool { return w.cfg.Device != nil }

// Device returns the attached log device (nil in latency-only mode).
func (w *WAL) Device() LogDevice { return w.cfg.Device }

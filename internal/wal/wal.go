// Package wal simulates the write-ahead log device of the paper's testbed:
// a dedicated log disk with the write cache disabled, so every commit of
// an updating transaction must wait for a real device write — amortized
// across concurrent committers by group commit (the paper configures
// commit-delay to exploit exactly this).
//
// The device is simulated: a flush occupies the log device for a
// configurable latency and durably acknowledges every commit record that
// joined the group. Read-only transactions never touch the log, which is
// the mechanism behind the paper's §IV-D observation that strategies
// turning the read-only Balance program into an updater pay ~20% at
// MPL=1 (5/5 instead of 4/5 of transactions must wait for the disk).
package wal

import (
	"sync"
	"time"

	"sicost/internal/core"
	"sicost/internal/faultinject"
	"sicost/internal/trace"
)

// Fault-point names of the simulated log device.
const (
	// FaultCommit fires at the head of Commit, before the record is
	// enqueued (a connection to the log that dies before the write).
	// It fires even when the simulated device is disabled, so chaos
	// runs against latency-free test configurations still exercise
	// commit-path failures.
	FaultCommit = "wal/commit"
	// FaultFlush fires once per device write; an injected error fails
	// every commit record in that flush group. It generalizes the
	// one-off InjectFailure hook.
	FaultFlush = "wal/flush"
)

// Config parameterizes the simulated log device.
type Config struct {
	// FsyncLatency is the time one device write takes. Zero disables the
	// log entirely (commits return immediately), which unit tests use.
	FsyncLatency time.Duration
	// MaxBatch caps the number of commit records acknowledged by a single
	// flush; 0 means unbounded (pure group commit).
	MaxBatch int
}

// Scaled returns the config with FsyncLatency multiplied by f.
func (c Config) Scaled(f float64) Config {
	c.FsyncLatency = time.Duration(float64(c.FsyncLatency) * f)
	return c
}

// Record is one commit log record. Only bookkeeping fields are kept; the
// engine does not need the row images for the simulation, but their size
// is accounted to make the stats meaningful.
type Record struct {
	TxID  uint64
	Bytes int
	done  chan error
}

// Stats aggregates device activity; used by tests and by the group-commit
// ablation experiment.
type Stats struct {
	Flushes int64
	Records int64
	Bytes   int64
}

// AvgBatch returns the mean number of commit records per device write.
func (s Stats) AvgBatch() float64 {
	if s.Flushes == 0 {
		return 0
	}
	return float64(s.Records) / float64(s.Flushes)
}

// WAL is the simulated group-commit log. The zero value is not usable;
// call New.
type WAL struct {
	cfg    Config
	faults *faultinject.Registry
	tracer *trace.Recorder

	mu      sync.Mutex
	idle    sync.Cond // broadcast when the flush loop exits
	pending []*Record
	flusher bool // a flush loop is running
	closed  bool
	failErr error // injected fault: every subsequent flush fails with it
	stats   Stats
}

// New creates a WAL. If cfg.FsyncLatency is zero the log is disabled and
// Commit returns immediately.
func New(cfg Config) *WAL {
	w := &WAL{cfg: cfg}
	w.idle.L = &w.mu
	return w
}

// SetFaults installs the fault registry consulted by the FaultCommit
// and FaultFlush points (nil disables). Call before commits are in
// flight.
func (w *WAL) SetFaults(r *faultinject.Registry) { w.faults = r }

// SetTracer installs the lifecycle-event recorder for EvWALCommit and
// EvWALFlush (nil disables). Call before commits are in flight.
func (w *WAL) SetTracer(r *trace.Recorder) { w.tracer = r }

// Commit appends a commit record for txID carrying n payload bytes and
// blocks until the record is durable (its flush group's device write
// completed). It returns core.ErrWALClosed if the device shuts down
// first, or the injected fault if one is set.
func (w *WAL) Commit(txID uint64, n int) error {
	if err := w.faults.Fire(FaultCommit, faultinject.Ctx{Tx: txID}); err != nil {
		return err
	}
	if w.tracer.Enabled() {
		w.tracer.Emit(trace.Event{Kind: trace.EvWALCommit, Tx: txID, Bytes: n})
	}
	if w.cfg.FsyncLatency <= 0 {
		return nil
	}
	rec := &Record{TxID: txID, Bytes: n, done: make(chan error, 1)}

	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return core.ErrWALClosed
	}
	w.pending = append(w.pending, rec)
	if !w.flusher {
		w.flusher = true
		go w.flushLoop()
	}
	w.mu.Unlock()

	return <-rec.done
}

// flushLoop drains pending records group by group. Exactly one loop runs
// at a time; it exits when the queue empties, so an idle log costs
// nothing.
func (w *WAL) flushLoop() {
	for {
		w.mu.Lock()
		if len(w.pending) == 0 || w.closed {
			w.flusher = false
			// Closing drains remaining waiters in Close; wake it now
			// that no flush is in flight.
			w.idle.Broadcast()
			w.mu.Unlock()
			return
		}
		batch := w.pending
		if w.cfg.MaxBatch > 0 && len(batch) > w.cfg.MaxBatch {
			batch = batch[:w.cfg.MaxBatch]
			w.pending = w.pending[w.cfg.MaxBatch:]
		} else {
			w.pending = nil
		}
		err := w.failErr
		w.mu.Unlock()

		if err == nil {
			err = w.faults.Fire(FaultFlush, faultinject.Ctx{})
		}

		// The device write. Every record in the batch shares this wait —
		// group commit.
		time.Sleep(w.cfg.FsyncLatency)

		w.mu.Lock()
		w.stats.Flushes++
		w.stats.Records += int64(len(batch))
		batchBytes := 0
		for _, r := range batch {
			w.stats.Bytes += int64(r.Bytes)
			batchBytes += r.Bytes
		}
		w.mu.Unlock()

		if w.tracer.Enabled() {
			// Device-level event: no transaction; Depth is the group size.
			w.tracer.Emit(trace.Event{Kind: trace.EvWALFlush, Depth: len(batch), Bytes: batchBytes})
		}

		for _, r := range batch {
			r.done <- err
		}
	}
}

// InjectFailure makes every subsequent flush acknowledge its batch with
// err (nil clears the fault). Used by failure-injection tests.
func (w *WAL) InjectFailure(err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.failErr = err
}

// Stats returns a snapshot of device activity.
func (w *WAL) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// Close shuts the device down. Pending, unflushed records fail with
// core.ErrWALClosed; records already in a device write are acknowledged
// by that flush. Close is idempotent, safe against concurrent Commit
// and concurrent Close, and returns only once no flush goroutine is
// running — a closed WAL has no background activity left.
func (w *WAL) Close() {
	w.mu.Lock()
	w.closed = true
	pending := w.pending
	w.pending = nil
	for w.flusher {
		w.idle.Wait()
	}
	w.mu.Unlock()
	// The flush loop exited and Commit rejects new records once closed,
	// so these drained records are exclusively ours to fail. Each
	// record's done channel is buffered and receives exactly one
	// verdict, so a second racing Close (which drained an empty
	// pending slice) cannot double-send.
	for _, r := range pending {
		r.done <- core.ErrWALClosed
	}
}

// Enabled reports whether the simulated device is active.
func (w *WAL) Enabled() bool { return w.cfg.FsyncLatency > 0 }

// Package wal implements the write-ahead log of the engine, modelled on
// the paper's testbed: a dedicated log disk with the write cache
// disabled, so every commit of an updating transaction must wait for a
// real device write — amortized across concurrent committers by group
// commit (the paper configures commit-delay to exploit exactly this).
//
// The log is layered. The latency of the device is simulated
// (Config.FsyncLatency), which is all the throughput experiments need;
// durability is real when a LogDevice is attached (Config.Device): the
// flush loop encodes each commit record — row after-images plus CSN —
// into CRC32-framed binary frames (codec.go) and appends the batch to
// the device in one write. Checkpoint and schema frames share the same
// framing, and Recover (recover.go) classifies a device image back into
// snapshot + redo work with torn-tail truncation. Read-only
// transactions never touch the log, which is the mechanism behind the
// paper's §IV-D observation that strategies turning the read-only
// Balance program into an updater pay ~20% at MPL=1 (5/5 instead of 4/5
// of transactions must wait for the disk).
package wal

import (
	"hash/crc32"
	"sync"
	"time"

	"sicost/internal/core"
	"sicost/internal/faultinject"
	"sicost/internal/trace"
)

// Fault-point names of the log device.
const (
	// FaultCommit fires at the head of Commit, before the record is
	// enqueued (a connection to the log that dies before the write).
	// It fires even when the device is disabled, so chaos runs against
	// latency-free test configurations still exercise commit-path
	// failures.
	FaultCommit = "wal/commit"
	// FaultFlush fires once per device write, before any byte reaches
	// the device; an injected error fails every commit record in that
	// flush group without persisting it. An ActPanic spec here models
	// the process dying mid-flush: the WAL recovers the panic, appends
	// a torn prefix of the batch (a strict prefix of its first frame,
	// so nothing unacknowledged becomes durable), and bricks itself —
	// every later commit fails until recovery rebuilds the engine.
	FaultFlush = "wal/flush"
)

// Config parameterizes the log device.
type Config struct {
	// FsyncLatency is the time one device write takes. With no Device
	// attached, zero disables the log entirely (commits return
	// immediately), which unit tests use.
	FsyncLatency time.Duration
	// MaxBatch caps the number of commit records acknowledged by a single
	// flush; 0 means unbounded (pure group commit).
	MaxBatch int
	// Device, when non-nil, is the durable medium: every flush encodes
	// its batch and appends the frames to the device before
	// acknowledging. Nil keeps the historical latency-only simulation.
	Device LogDevice
}

// Scaled returns the config with FsyncLatency multiplied by f.
func (c Config) Scaled(f float64) Config {
	c.FsyncLatency = time.Duration(float64(c.FsyncLatency) * f)
	return c
}

// Record is one commit log record: the transaction's identity, its
// commit sequence number, and the after-image of every row it wrote.
// With a device attached the record is encoded and persisted; without
// one only Bytes is accounted, preserving the latency-only simulation.
type Record struct {
	TxID uint64
	CSN  uint64
	// Rows are the committed after-images (nil Rec = tombstone),
	// in-transaction write order.
	Rows []RowImage
	// Bytes is the accounted payload size. Callers may pre-fill an
	// estimate for latency-only mode; with a device attached Commit
	// overwrites it with the real encoded frame size.
	Bytes int

	enc  []byte
	done chan error
}

// Stats aggregates device activity; used by tests and by the
// group-commit ablation experiment. Only successful flushes count
// toward Flushes/Records/Bytes; flushes that failed (injected error,
// injected crash, or device error) count in FailedFlushes and
// contribute nothing else.
type Stats struct {
	Flushes int64
	Records int64
	Bytes   int64
	// FailedFlushes counts device writes that failed; their batches
	// were rejected, not acknowledged.
	FailedFlushes int64
	// Checkpoints counts checkpoint frames written (each rewrites the
	// device to checkpoint + empty tail).
	Checkpoints int64
}

// AvgBatch returns the mean number of commit records per successful
// device write.
func (s Stats) AvgBatch() float64 {
	if s.Flushes == 0 {
		return 0
	}
	return float64(s.Records) / float64(s.Flushes)
}

// WAL is the group-commit log. The zero value is not usable; call New.
type WAL struct {
	cfg    Config
	faults *faultinject.Registry
	tracer *trace.Recorder

	// devMu serializes all device operations (flush appends, checkpoint
	// rewrites, schema appends) so frames never interleave mid-write.
	devMu sync.Mutex

	mu      sync.Mutex
	idle    sync.Cond // broadcast when the flush loop exits
	pending []*Record
	flusher bool // a flush loop is running
	closed  bool
	failErr error // injected fault: every subsequent flush fails with it
	broken  error // sticky: the device died (crash or IO error); recovery required
	stats   Stats
}

// New creates a WAL. With no device and zero FsyncLatency the log is
// disabled and Commit returns immediately.
func New(cfg Config) *WAL {
	w := &WAL{cfg: cfg}
	w.idle.L = &w.mu
	return w
}

// SetFaults installs the fault registry consulted by the FaultCommit
// and FaultFlush points (nil disables). Call before commits are in
// flight.
func (w *WAL) SetFaults(r *faultinject.Registry) { w.faults = r }

// SetTracer installs the lifecycle-event recorder for EvWALCommit and
// EvWALFlush (nil disables). Call before commits are in flight.
func (w *WAL) SetTracer(r *trace.Recorder) { w.tracer = r }

// Commit appends rec to the log and blocks until it is durable (its
// flush group's device write completed). It returns core.ErrWALClosed
// if the device shuts down first, the injected fault if one is set, or
// the sticky crash error once a flush has torn the device.
func (w *WAL) Commit(rec *Record) error {
	if err := w.faults.Fire(FaultCommit, faultinject.Ctx{Tx: rec.TxID}); err != nil {
		return err
	}
	if w.cfg.Device != nil {
		rec.enc = EncodeCommit(&CommitFrame{TxID: rec.TxID, CSN: rec.CSN, Rows: rec.Rows})
		rec.Bytes = len(rec.enc)
	}
	if w.tracer.Enabled() {
		w.tracer.Emit(trace.Event{Kind: trace.EvWALCommit, Tx: rec.TxID, Bytes: rec.Bytes})
	}
	if !w.Enabled() {
		return nil
	}
	rec.done = make(chan error, 1)

	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return core.ErrWALClosed
	}
	if w.broken != nil {
		err := w.broken
		w.mu.Unlock()
		return err
	}
	w.pending = append(w.pending, rec)
	if !w.flusher {
		w.flusher = true
		go w.flushLoop()
	}
	w.mu.Unlock()

	return <-rec.done
}

// fireFlush hits the FaultFlush point, converting an injected panic
// (ActPanic modelling a mid-flush crash) into its error value instead
// of letting it kill the background flush goroutine — and with it the
// whole process. crashed reports that conversion, which the flush loop
// turns into a torn device append plus a bricked WAL.
func (w *WAL) fireFlush() (err error, crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			p, ok := faultinject.AsPanic(r)
			if !ok {
				panic(r)
			}
			err, crashed = p, true
		}
	}()
	return w.faults.Fire(FaultFlush, faultinject.Ctx{}), false
}

// flushLoop drains pending records group by group. Exactly one loop runs
// at a time; it exits when the queue empties, so an idle log costs
// nothing.
func (w *WAL) flushLoop() {
	for {
		w.mu.Lock()
		if len(w.pending) == 0 || w.closed {
			w.flusher = false
			// Closing drains remaining waiters in Close; wake it now
			// that no flush is in flight.
			w.idle.Broadcast()
			w.mu.Unlock()
			return
		}
		batch := w.pending
		if w.cfg.MaxBatch > 0 && len(batch) > w.cfg.MaxBatch {
			batch = batch[:w.cfg.MaxBatch]
			w.pending = w.pending[w.cfg.MaxBatch:]
		} else {
			w.pending = nil
		}
		err := w.failErr
		if err == nil {
			err = w.broken
		}
		w.mu.Unlock()

		var crashed bool
		if err == nil {
			err, crashed = w.fireFlush()
		}

		// The device write occupies the log for the configured latency.
		// Every record in the batch shares this wait — group commit.
		time.Sleep(w.cfg.FsyncLatency)

		batchBytes := 0
		var frames []byte
		for _, r := range batch {
			batchBytes += r.Bytes
			frames = append(frames, r.enc...)
		}

		if w.cfg.Device != nil {
			switch {
			case crashed:
				// Mid-flush crash: a strict prefix of the first frame
				// reaches the platter (so no record in this batch is
				// durable — none of them will be acknowledged) and the
				// log is torn at that offset until recovery repairs it.
				w.tornAppend(frames)
			case err == nil:
				if derr := w.devAppend(frames); derr != nil {
					// A failed fsync means the device's durability
					// promise is void (the fsyncgate lesson): refuse
					// all further writes until recovery.
					err = derr
					w.mu.Lock()
					w.broken = derr
					w.mu.Unlock()
				}
			}
		}

		w.mu.Lock()
		if err == nil {
			w.stats.Flushes++
			w.stats.Records += int64(len(batch))
			w.stats.Bytes += int64(batchBytes)
		} else {
			w.stats.FailedFlushes++
		}
		if crashed {
			w.broken = err
		}
		w.mu.Unlock()

		if err == nil && w.tracer.Enabled() {
			// Device-level event: no transaction; Depth is the group size.
			w.tracer.Emit(trace.Event{Kind: trace.EvWALFlush, Depth: len(batch), Bytes: batchBytes})
		}

		for _, r := range batch {
			r.done <- err
		}
	}
}

// devAppend writes one flush batch to the device.
func (w *WAL) devAppend(frames []byte) error {
	if len(frames) == 0 {
		return nil
	}
	w.devMu.Lock()
	defer w.devMu.Unlock()
	return w.cfg.Device.Append(frames)
}

// tornAppend simulates the crash-interrupted device write: a strict
// prefix of the batch's first frame is persisted, deterministically cut
// by the batch checksum. Keeping the cut inside the first frame
// guarantees no unacknowledged commit becomes durable, while still
// leaving a genuinely torn tail for recovery to truncate.
func (w *WAL) tornAppend(frames []byte) {
	if len(frames) == 0 {
		return
	}
	_, first, err := DecodeFrameAt(frames, 0)
	if err != nil || first <= 0 {
		first = len(frames)
	}
	cut := int(crc32.Checksum(frames, castagnoli) % uint32(first))
	w.devMu.Lock()
	_ = w.cfg.Device.Append(frames[:cut])
	w.devMu.Unlock()
}

// WriteCheckpoint truncates the log to a single checkpoint frame. The
// caller (engine.DB.Checkpoint) must guarantee quiescence: no commit
// may sit between CSN allocation and publication, so every durable
// frame is covered by the snapshot and Rewrite loses nothing.
func (w *WAL) WriteCheckpoint(c *Checkpoint) error {
	if w.cfg.Device == nil {
		return core.ErrWALClosed
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return core.ErrWALClosed
	}
	if w.broken != nil {
		err := w.broken
		w.mu.Unlock()
		return err
	}
	w.mu.Unlock()

	enc := EncodeCheckpoint(c)
	w.devMu.Lock()
	err := w.cfg.Device.Rewrite(enc)
	w.devMu.Unlock()

	w.mu.Lock()
	if err == nil {
		w.stats.Checkpoints++
		w.stats.Bytes += int64(len(enc))
	} else {
		w.broken = err
	}
	w.mu.Unlock()
	return err
}

// AppendSchema persists a DDL frame so a log without a checkpoint can
// still rebuild table definitions. No-op without a device.
func (w *WAL) AppendSchema(s *core.Schema) error {
	if w.cfg.Device == nil {
		return nil
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return core.ErrWALClosed
	}
	if w.broken != nil {
		err := w.broken
		w.mu.Unlock()
		return err
	}
	w.mu.Unlock()

	enc := EncodeSchema(s)
	w.devMu.Lock()
	err := w.cfg.Device.Append(enc)
	w.devMu.Unlock()

	w.mu.Lock()
	if err == nil {
		w.stats.Bytes += int64(len(enc))
	} else {
		w.broken = err
	}
	w.mu.Unlock()
	return err
}

// InjectFailure makes every subsequent flush acknowledge its batch with
// err (nil clears the fault). Nothing reaches the device while the
// fault is set. Used by failure-injection tests.
func (w *WAL) InjectFailure(err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.failErr = err
}

// Broken returns the sticky device-death error (nil while healthy). A
// broken WAL rejects every commit until the engine is rebuilt from the
// device via Recover.
func (w *WAL) Broken() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.broken
}

// Stats returns a snapshot of device activity.
func (w *WAL) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// Close shuts the device down. Pending, unflushed records fail with
// core.ErrWALClosed; records already in a device write are acknowledged
// by that flush. Close is idempotent, safe against concurrent Commit
// and concurrent Close, and returns only once no flush goroutine is
// running — a closed WAL has no background activity left.
func (w *WAL) Close() {
	w.mu.Lock()
	w.closed = true
	pending := w.pending
	w.pending = nil
	for w.flusher {
		w.idle.Wait()
	}
	w.mu.Unlock()
	// The flush loop exited and Commit rejects new records once closed,
	// so these drained records are exclusively ours to fail. Each
	// record's done channel is buffered and receives exactly one
	// verdict, so a second racing Close (which drained an empty
	// pending slice) cannot double-send.
	for _, r := range pending {
		r.done <- core.ErrWALClosed
	}
}

// Enabled reports whether commits must wait for the log: either the
// latency simulation or a durable device is active.
func (w *WAL) Enabled() bool { return w.cfg.FsyncLatency > 0 || w.cfg.Device != nil }

// Persistent reports whether a durable device is attached.
func (w *WAL) Persistent() bool { return w.cfg.Device != nil }

// Device returns the attached log device (nil in latency-only mode).
func (w *WAL) Device() LogDevice { return w.cfg.Device }

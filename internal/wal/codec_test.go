package wal

import (
	"strings"
	"testing"

	"sicost/internal/core"
)

func testSchema() core.Schema {
	return core.Schema{
		Name: "T",
		Columns: []core.Column{
			{Name: "id", Kind: core.KindInt, NotNull: true},
			{Name: "name", Kind: core.KindString},
		},
		PK:     0,
		Unique: []int{1},
	}
}

func mustDecodeOne(t *testing.T, b []byte) Frame {
	t.Helper()
	f, n, err := DecodeFrameAt(b, 0)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if n != len(b) {
		t.Fatalf("frame length %d, want %d", n, len(b))
	}
	return f
}

func TestCommitFrameRoundTrip(t *testing.T) {
	in := &CommitFrame{
		TxID: 42, CSN: 99,
		Rows: []RowImage{
			{Table: "Saving", Key: core.Int(7), Rec: core.Record{core.Int(7), core.Int(500)}},
			{Table: "Account", Key: core.Str("cust-1"), Rec: core.Record{core.Str("cust-1"), core.Null()}},
			{Table: "Checking", Key: core.Int(-3), Rec: nil}, // tombstone
		},
	}
	f := mustDecodeOne(t, EncodeCommit(in))
	out := f.Commit
	if out == nil {
		t.Fatal("decoded frame is not a commit")
	}
	if out.TxID != in.TxID || out.CSN != in.CSN || len(out.Rows) != len(in.Rows) {
		t.Fatalf("header round-trip: got %+v", out)
	}
	for i, r := range out.Rows {
		w := in.Rows[i]
		if r.Table != w.Table || r.Key != w.Key {
			t.Fatalf("row %d: got %v/%v, want %v/%v", i, r.Table, r.Key, w.Table, w.Key)
		}
		if (r.Rec == nil) != (w.Rec == nil) {
			t.Fatalf("row %d: liveness flipped (got %v, want %v)", i, r.Rec, w.Rec)
		}
		if r.Rec != nil && !r.Rec.Equal(w.Rec) {
			t.Fatalf("row %d: record %v, want %v", i, r.Rec, w.Rec)
		}
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	in := &Checkpoint{
		CSN: 17,
		Tables: []CheckpointTable{{
			Schema: testSchema(),
			Rows: []CheckpointRow{
				{Key: core.Int(1), CSN: 5, Rec: core.Record{core.Int(1), core.Str("a")}},
				{Key: core.Int(2), CSN: 17, Rec: core.Record{core.Int(2), core.Str("b")}},
			},
		}},
	}
	f := mustDecodeOne(t, EncodeCheckpoint(in))
	out := f.Checkpoint
	if out == nil {
		t.Fatal("decoded frame is not a checkpoint")
	}
	if out.CSN != 17 || len(out.Tables) != 1 {
		t.Fatalf("checkpoint header: %+v", out)
	}
	tb := out.Tables[0]
	if tb.Schema.Name != "T" || len(tb.Schema.Columns) != 2 || tb.Schema.PK != 0 ||
		len(tb.Schema.Unique) != 1 || tb.Schema.Unique[0] != 1 {
		t.Fatalf("schema round-trip: %+v", tb.Schema)
	}
	if len(tb.Rows) != 2 || tb.Rows[0].CSN != 5 || !tb.Rows[1].Rec.Equal(in.Tables[0].Rows[1].Rec) {
		t.Fatalf("rows round-trip: %+v", tb.Rows)
	}
}

func TestSchemaFrameRoundTrip(t *testing.T) {
	s := testSchema()
	f := mustDecodeOne(t, EncodeSchema(&s))
	if f.Schema == nil || f.Schema.Name != "T" || len(f.Schema.Columns) != 2 {
		t.Fatalf("schema frame round-trip: %+v", f.Schema)
	}
}

// TestEveryBitFlipIsRejected corrupts a valid commit frame one byte at a
// time: no single-byte corruption may decode successfully — the CRC (or
// a bounds check) must catch it. This is the framing's whole job.
func TestEveryBitFlipIsRejected(t *testing.T) {
	enc := EncodeCommit(&CommitFrame{
		TxID: 1, CSN: 2,
		Rows: []RowImage{{Table: "t", Key: core.Int(1), Rec: core.Record{core.Int(1)}}},
	})
	for i := range enc {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0xff
		if _, n, err := DecodeFrameAt(bad, 0); err == nil && n == len(enc) {
			t.Fatalf("corruption at byte %d decoded as a full valid frame", i)
		}
	}
}

func TestDecodeRejectsMalformedFrames(t *testing.T) {
	valid := EncodeSchema(&core.Schema{
		Name: "x", Columns: []core.Column{{Name: "c", Kind: core.KindInt, NotNull: true}}, PK: 0,
	})
	cases := map[string][]byte{
		"empty":            nil,
		"short header":     valid[:frameHeaderSize-1],
		"truncated body":   valid[:len(valid)-1],
		"length overflow":  {0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0},
		"empty payload":    frame(nil),
		"unknown type":     frame([]byte{9}),
		"trailing payload": frame(append([]byte{frameSchema}, append(valid[frameHeaderSize:], 0)...)),
	}
	for name, b := range cases {
		if _, _, err := DecodeFrameAt(b, 0); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	// An invalid schema (PK out of range) must be rejected even when the
	// checksum is intact: recovery trusts decoded schemas structurally.
	badSchema := core.Schema{Name: "x", Columns: []core.Column{{Name: "c", Kind: core.KindInt, NotNull: true}}, PK: 0}
	p := []byte{frameSchema}
	p = appendStr(p, badSchema.Name)
	p = appendU32(p, 1)
	p = appendStr(p, "c")
	p = append(p, byte(core.KindInt), 1)
	p = appendU32(p, 7) // PK index 7 of a 1-column table
	p = appendU32(p, 0)
	if _, _, err := DecodeFrameAt(frame(p), 0); err == nil {
		t.Error("schema frame with out-of-range PK decoded without error")
	}
}

func TestScanLogStopsAtTornTail(t *testing.T) {
	a := EncodeCommit(&CommitFrame{TxID: 1, CSN: 1})
	b := EncodeCommit(&CommitFrame{TxID: 2, CSN: 2,
		Rows: []RowImage{{Table: strings.Repeat("x", 40), Key: core.Int(9), Rec: core.Record{core.Int(9)}}}})
	log := append(append([]byte{}, a...), b...)
	torn := append(append([]byte{}, log...), b[:len(b)/2]...)

	frames, valid := ScanLog(torn)
	if len(frames) != 2 {
		t.Fatalf("decoded %d frames, want 2", len(frames))
	}
	if valid != len(log) {
		t.Fatalf("valid prefix %d, want %d", valid, len(log))
	}
	// A clean log scans to its full length.
	if _, valid := ScanLog(log); valid != len(log) {
		t.Fatalf("clean log valid prefix %d, want %d", valid, len(log))
	}
}

// Package core defines the shared vocabulary of the sicost system: typed
// column values, records, schemas, concurrency-control modes, platform
// identifiers and the error taxonomy used across the storage engine, the
// benchmark programs and the workload driver.
//
// Everything here is deliberately small and allocation-friendly: records
// are short slices of Value, and Value is a comparable struct so it can be
// used directly as a map key (primary keys, lock-table keys).
package core

import (
	"fmt"
	"strconv"
)

// Kind identifies the dynamic type stored in a Value.
type Kind uint8

// The value kinds supported by the engine. The SmallBank schema only needs
// integers (balances in cents, customer ids) and strings (customer names),
// which matches the paper's schema of numeric balances and name keys.
const (
	KindNull Kind = iota
	KindInt
	KindString
)

// String returns the kind name for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a single typed column value. The zero Value is NULL.
//
// Value is comparable (no pointers, slices or maps), so it can serve as a
// primary-key map key and as a lock-table key without boxing.
type Value struct {
	K Kind
	I int64
	S string
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int wraps an int64 as a Value.
func Int(i int64) Value { return Value{K: KindInt, I: i} }

// String wraps a string as a Value.
func Str(s string) Value { return Value{K: KindString, S: s} }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// Int64 returns the integer payload; it is 0 for non-integer values.
func (v Value) Int64() int64 { return v.I }

// Text returns the string payload; it is "" for non-string values.
func (v Value) Text() string { return v.S }

// String renders the value for logs and test failures.
func (v Value) String() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindString:
		return strconv.Quote(v.S)
	default:
		return fmt.Sprintf("value(kind=%d)", uint8(v.K))
	}
}

// Less orders values of the same kind; NULL sorts first, and values of
// different kinds order by kind. It provides a total order for index scans
// and deterministic test output.
func (v Value) Less(o Value) bool {
	if v.K != o.K {
		return v.K < o.K
	}
	switch v.K {
	case KindInt:
		return v.I < o.I
	case KindString:
		return v.S < o.S
	default:
		return false
	}
}

// Record is one row image: a slice of column values positioned by the
// table schema. Records are copied on write; readers must treat them as
// immutable.
type Record []Value

// Clone returns a deep copy of the record (Value itself is a value type,
// so a slice copy suffices).
func (r Record) Clone() Record {
	if r == nil {
		return nil
	}
	out := make(Record, len(r))
	copy(out, r)
	return out
}

// Equal reports whether two records have identical length and values.
func (r Record) Equal(o Record) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if r[i] != o[i] {
			return false
		}
	}
	return true
}

// String renders the record for diagnostics.
func (r Record) String() string {
	s := "("
	for i, v := range r {
		if i > 0 {
			s += ", "
		}
		s += v.String()
	}
	return s + ")"
}

package core

import (
	"errors"
	"fmt"
	"sort"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if !Null().IsNull() {
		t.Fatal("Null() must be NULL")
	}
	if got := Int(42).Int64(); got != 42 {
		t.Fatalf("Int(42).Int64() = %d", got)
	}
	if got := Str("alice").Text(); got != "alice" {
		t.Fatalf("Str(alice).Text() = %q", got)
	}
	if Int(1).IsNull() || Str("").IsNull() {
		t.Fatal("non-null values reported as NULL")
	}
	// Cross-kind accessors return zero values.
	if Str("x").Int64() != 0 || Int(7).Text() != "" {
		t.Fatal("cross-kind accessors must return zero values")
	}
}

func TestValueComparable(t *testing.T) {
	m := map[Value]int{}
	m[Int(1)] = 1
	m[Str("1")] = 2
	m[Null()] = 3
	if len(m) != 3 {
		t.Fatalf("expected 3 distinct keys, got %d", len(m))
	}
	if m[Int(1)] != 1 || m[Str("1")] != 2 || m[Null()] != 3 {
		t.Fatal("map lookups by Value failed")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{Int(-7), "-7"},
		{Str("bob"), `"bob"`},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestValueLessTotalOrder(t *testing.T) {
	vals := []Value{Str("b"), Int(10), Null(), Str("a"), Int(-3), Int(10)}
	sort.Slice(vals, func(i, j int) bool { return vals[i].Less(vals[j]) })
	want := []Value{Null(), Int(-3), Int(10), Int(10), Str("a"), Str("b")}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("sorted[%d] = %v, want %v", i, vals[i], want[i])
		}
	}
}

func TestValueLessProperties(t *testing.T) {
	// Irreflexivity and asymmetry over random int/string values.
	f := func(a, b int64, s1, s2 string, pick uint8) bool {
		var x, y Value
		switch pick % 3 {
		case 0:
			x, y = Int(a), Int(b)
		case 1:
			x, y = Str(s1), Str(s2)
		default:
			x, y = Int(a), Str(s1)
		}
		if x.Less(x) || y.Less(y) {
			return false
		}
		if x.Less(y) && y.Less(x) {
			return false
		}
		// Trichotomy: exactly one of <, >, == holds.
		n := 0
		if x.Less(y) {
			n++
		}
		if y.Less(x) {
			n++
		}
		if x == y {
			n++
		}
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRecordCloneIsDeep(t *testing.T) {
	r := Record{Int(1), Str("x")}
	c := r.Clone()
	c[0] = Int(99)
	if r[0] != Int(1) {
		t.Fatal("Clone must not alias the original")
	}
	if !r.Equal(Record{Int(1), Str("x")}) {
		t.Fatal("original mutated")
	}
	if Record(nil).Clone() != nil {
		t.Fatal("nil record clones to nil")
	}
}

func TestRecordEqual(t *testing.T) {
	a := Record{Int(1), Str("x")}
	if !a.Equal(Record{Int(1), Str("x")}) {
		t.Fatal("identical records must be equal")
	}
	if a.Equal(Record{Int(1)}) {
		t.Fatal("different arity must not be equal")
	}
	if a.Equal(Record{Int(2), Str("x")}) {
		t.Fatal("different values must not be equal")
	}
}

func TestRecordString(t *testing.T) {
	got := Record{Int(3), Str("n"), Null()}.String()
	want := `(3, "n", NULL)`
	if got != want {
		t.Fatalf("Record.String() = %q, want %q", got, want)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{KindNull: "null", KindInt: "int", KindString: "string", Kind(9): "kind(9)"} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func testSchema() *Schema {
	return &Schema{
		Name: "Account",
		Columns: []Column{
			{Name: "Name", Kind: KindString, NotNull: true},
			{Name: "CustomerID", Kind: KindInt, NotNull: true},
		},
		PK:     0,
		Unique: []int{1},
	}
}

func TestSchemaValidate(t *testing.T) {
	if err := testSchema().Validate(); err != nil {
		t.Fatalf("valid schema rejected: %v", err)
	}
	bad := []*Schema{
		{Name: "", Columns: []Column{{Name: "a", Kind: KindInt}}},
		{Name: "t"},
		{Name: "t", Columns: []Column{{Name: "a", Kind: KindInt}}, PK: 5},
		{Name: "t", Columns: []Column{{Name: "a", Kind: KindInt}, {Name: "a", Kind: KindInt}}},
		{Name: "t", Columns: []Column{{Name: "", Kind: KindInt}}},
		{Name: "t", Columns: []Column{{Name: "a", Kind: KindInt}}, Unique: []int{3}},
		{Name: "t", Columns: []Column{{Name: "a", Kind: KindInt}}, Unique: []int{0}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad schema %d accepted", i)
		}
	}
}

func TestSchemaCheckRecord(t *testing.T) {
	s := testSchema()
	if err := s.CheckRecord(Record{Str("alice"), Int(1)}); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	cases := []Record{
		{Str("alice")},                // wrong arity
		{Str("alice"), Str("notint")}, // wrong kind
		{Null(), Int(1)},              // null PK
		{Str("alice"), Null()},        // null NotNull column
		{Int(5), Int(1)},              // wrong PK kind
	}
	for i, r := range cases {
		if err := s.CheckRecord(r); err == nil {
			t.Errorf("bad record %d accepted: %v", i, r)
		}
	}
}

func TestSchemaColAndKey(t *testing.T) {
	s := testSchema()
	if s.Col("CustomerID") != 1 || s.Col("Name") != 0 {
		t.Fatal("Col lookup failed")
	}
	if s.Col("missing") != -1 {
		t.Fatal("missing column must return -1")
	}
	if got := s.Key(Record{Str("alice"), Int(1)}); got != Str("alice") {
		t.Fatalf("Key = %v", got)
	}
}

func TestErrorClassification(t *testing.T) {
	cases := []struct {
		err  error
		want AbortReason
		retr bool
	}{
		{nil, AbortNone, false},
		{ErrSerialization, AbortSerialization, true},
		{fmt.Errorf("wrapped: %w", ErrSerialization), AbortSerialization, true},
		{ErrDeadlock, AbortDeadlock, true},
		{fmt.Errorf("wrap: %w", ErrDeadlock), AbortDeadlock, true},
		{ErrRollback, AbortApplication, false},
		{errors.New("disk on fire"), AbortOther, false},
		{ErrNotFound, AbortOther, false},
	}
	for _, c := range cases {
		if got := ClassifyAbort(c.err); got != c.want {
			t.Errorf("ClassifyAbort(%v) = %v, want %v", c.err, got, c.want)
		}
		if got := IsRetriable(c.err); got != c.retr {
			t.Errorf("IsRetriable(%v) = %v, want %v", c.err, got, c.retr)
		}
	}
}

func TestAbortReasonString(t *testing.T) {
	for r, want := range map[AbortReason]string{
		AbortNone: "none", AbortSerialization: "serialization",
		AbortDeadlock: "deadlock", AbortApplication: "application",
		AbortOther: "other", AbortReason(99): "abort(99)",
	} {
		if r.String() != want {
			t.Errorf("AbortReason(%d).String() = %q, want %q", r, r.String(), want)
		}
	}
}

func TestModeAndPlatformStrings(t *testing.T) {
	if SnapshotFUW.String() != "si-fuw" || Strict2PL.String() != "2pl" || SerializableSI.String() != "ssi" {
		t.Fatal("CCMode names changed")
	}
	if CCMode(42).String() != "ccmode(42)" {
		t.Fatal("unknown CCMode formatting")
	}
	if PlatformPostgres.String() != "postgres" || PlatformCommercial.String() != "commercial" {
		t.Fatal("Platform names changed")
	}
	if Platform(9).String() != "platform(9)" {
		t.Fatal("unknown Platform formatting")
	}
}

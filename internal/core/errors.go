package core

import (
	"errors"
	"fmt"
)

// Sentinel errors of the transaction engine. Application code (the
// SmallBank programs, the workload driver) distinguishes retriable
// concurrency failures (serialization, deadlock) from semantic rollbacks
// and hard errors.
var (
	// ErrSerialization is the engine's "could not serialize access"
	// failure: under First-Updater-Wins SI the transaction attempted to
	// write (or select-for-update) a row already updated by a concurrent
	// committed transaction, or SSI aborted a dangerous pivot. It is
	// always safe to retry the whole transaction.
	ErrSerialization = errors.New("engine: could not serialize access due to concurrent update")

	// ErrDeadlock is raised when the lock manager chooses the requesting
	// transaction as a deadlock victim. Retriable.
	ErrDeadlock = errors.New("engine: deadlock detected")

	// ErrLockTimeout is raised when a lock wait exceeds the
	// transaction's lock-wait deadline (PostgreSQL's lock_timeout).
	// Retriable: the whole transaction reruns, like a deadlock victim.
	ErrLockTimeout = errors.New("engine: lock wait timeout exceeded")

	// ErrOverload is returned by Begin when the admission gate's wait
	// queue is full and the transaction is shed rather than queued.
	// Retriable: the condition is transient — clients should back off
	// (ideally against a shared retry budget) and resubmit.
	ErrOverload = errors.New("engine: overloaded, transaction shed by admission control")

	// ErrTxDeadline is returned when a transaction's deadline expires —
	// in the admission queue, during a lock wait, between statements, or
	// while waiting for its WAL flush group. Not retriable by default:
	// the interaction's time budget is spent, so rerunning against an
	// already-expired deadline cannot succeed. Callers that set a fresh
	// deadline per attempt may retry explicitly.
	ErrTxDeadline = errors.New("engine: transaction deadline exceeded")

	// ErrShuttingDown is returned by Begin (and every statement of the
	// rejected handle) once DB.Close has started draining. Not
	// retriable: clients should stop submitting work.
	ErrShuttingDown = errors.New("engine: database shutting down")

	// ErrNotFound is returned by point reads that match no visible row.
	ErrNotFound = errors.New("engine: row not found")

	// ErrUniqueViolation is returned when an insert or update would
	// duplicate a unique-constrained value.
	ErrUniqueViolation = errors.New("engine: unique constraint violation")

	// ErrTxDone is returned on any use of a committed or aborted
	// transaction handle.
	ErrTxDone = errors.New("engine: transaction already finished")

	// ErrRollback signals an application-initiated rollback (for example
	// a negative deposit amount in DepositChecking). It is not retriable:
	// the transaction's semantics rejected its inputs.
	ErrRollback = errors.New("engine: transaction rolled back by application")

	// ErrWALClosed is returned when a commit races the shutdown of the
	// simulated log device.
	ErrWALClosed = errors.New("wal: log device closed")

	// ErrInjected is the base error used by failure-injection tests.
	ErrInjected = errors.New("engine: injected fault")
)

// IsRetriable reports whether err indicates a transient concurrency
// failure for which the standard SI discipline is "abort and rerun the
// whole transaction".
func IsRetriable(err error) bool {
	return errors.Is(err, ErrSerialization) || errors.Is(err, ErrDeadlock) ||
		errors.Is(err, ErrLockTimeout) || errors.Is(err, ErrOverload)
}

// AbortReason classifies why a transaction attempt did not commit; the
// workload driver aggregates these per transaction type (Figure 6 of the
// paper counts the ErrSerialization class).
type AbortReason uint8

// Abort reason classes.
const (
	AbortNone AbortReason = iota
	AbortSerialization
	AbortDeadlock
	AbortLockTimeout
	// AbortDeadline: the transaction's deadline expired (admission
	// queue, lock wait, statement, or WAL flush-group wait).
	AbortDeadline
	// AbortOverload: the admission gate shed the transaction because
	// its wait queue was full.
	AbortOverload
	AbortApplication
	AbortWAL
	AbortInjected
	// AbortOther must stay last: metrics counters and the trace
	// validator size and bound their reason tables by it. New classes
	// go above. In-memory renumbering is safe — the JSONL trace wire
	// format carries reason *names*, not ordinals.
	AbortOther
)

// String names the abort class.
func (a AbortReason) String() string {
	switch a {
	case AbortNone:
		return "none"
	case AbortSerialization:
		return "serialization"
	case AbortDeadlock:
		return "deadlock"
	case AbortLockTimeout:
		return "lock-timeout"
	case AbortDeadline:
		return "deadline"
	case AbortOverload:
		return "overload"
	case AbortApplication:
		return "application"
	case AbortWAL:
		return "wal"
	case AbortInjected:
		return "injected"
	case AbortOther:
		return "other"
	default:
		return fmt.Sprintf("abort(%d)", uint8(a))
	}
}

// ClassifyAbort maps an error from a transaction attempt to its class.
// Injected faults are checked before the WAL class so a fault spec that
// wraps both reports as the injection it is.
func ClassifyAbort(err error) AbortReason {
	switch {
	case err == nil:
		return AbortNone
	case errors.Is(err, ErrSerialization):
		return AbortSerialization
	case errors.Is(err, ErrDeadlock):
		return AbortDeadlock
	case errors.Is(err, ErrLockTimeout):
		return AbortLockTimeout
	case errors.Is(err, ErrTxDeadline):
		return AbortDeadline
	case errors.Is(err, ErrOverload):
		return AbortOverload
	case errors.Is(err, ErrRollback):
		return AbortApplication
	case errors.Is(err, ErrInjected):
		return AbortInjected
	case errors.Is(err, ErrWALClosed):
		return AbortWAL
	default:
		return AbortOther
	}
}

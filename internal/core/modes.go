package core

import "fmt"

// CCMode selects the concurrency-control algorithm a database instance
// runs. The paper's platforms use SnapshotFUW (PostgreSQL) and an SI
// variant with different select-for-update semantics (the commercial
// platform); Strict2PL and SerializableSI are the baselines/extensions
// discussed in §II-D and in later work.
type CCMode uint8

// Concurrency-control modes.
const (
	// SnapshotFUW is snapshot isolation with the First-Updater-Wins rule:
	// writers take row locks, block behind concurrent writers, and abort
	// if the row version they would overwrite is newer than their
	// snapshot. This is PostgreSQL's "isolation level serializable" of
	// the paper's era.
	SnapshotFUW CCMode = iota
	// Strict2PL is conventional strict two-phase locking with shared and
	// exclusive row locks and deadlock detection; reads see the latest
	// committed version.
	Strict2PL
	// SerializableSI is SI extended with runtime rw-antidependency
	// tracking (Cahill-style SSI): a transaction with both an incoming
	// and an outgoing vulnerable antidependency aborts. Guarantees
	// serializable executions without application changes.
	SerializableSI
)

// String names the mode.
func (m CCMode) String() string {
	switch m {
	case SnapshotFUW:
		return "si-fuw"
	case Strict2PL:
		return "2pl"
	case SerializableSI:
		return "ssi"
	default:
		return fmt.Sprintf("ccmode(%d)", uint8(m))
	}
}

// Platform selects the behavioural profile of the simulated DBMS: how
// SELECT ... FOR UPDATE interacts with concurrency control and which cost
// model shapes throughput (§IV-F shows the two platforms differ).
type Platform uint8

// Platforms reproduced from the paper.
const (
	// PlatformPostgres models PostgreSQL 8.2: select-for-update only
	// locks (a later writer does not conflict with a committed sfu —
	// the §II-C interleaving is allowed), materialized conflict-table
	// updates carry an extra per-statement cost, throughput plateaus at
	// high MPL.
	PlatformPostgres Platform = iota
	// PlatformCommercial models the unnamed commercial system:
	// select-for-update is treated like an update for concurrency
	// control, promotion by update is comparatively expensive, and
	// throughput peaks near MPL 20-25 then declines due to per-session
	// overhead.
	PlatformCommercial
)

// String names the platform.
func (p Platform) String() string {
	switch p {
	case PlatformPostgres:
		return "postgres"
	case PlatformCommercial:
		return "commercial"
	default:
		return fmt.Sprintf("platform(%d)", uint8(p))
	}
}

package core

import "fmt"

// Column describes one table column.
type Column struct {
	Name string
	Kind Kind
	// NotNull enforces a non-null constraint on writes.
	NotNull bool
}

// Schema describes a table: its columns, which column is the primary key,
// and which columns carry a declared unique constraint (enforced through a
// unique secondary index, like SmallBank's Account.CustomerID).
type Schema struct {
	Name    string
	Columns []Column
	// PK is the index into Columns of the primary-key column.
	PK int
	// Unique lists additional column positions with unique constraints.
	Unique []int
}

// Col returns the position of the named column, or -1 when absent.
func (s *Schema) Col(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Validate checks structural sanity of the schema definition itself.
func (s *Schema) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("core: schema with empty table name")
	}
	if len(s.Columns) == 0 {
		return fmt.Errorf("core: table %s has no columns", s.Name)
	}
	if s.PK < 0 || s.PK >= len(s.Columns) {
		return fmt.Errorf("core: table %s primary key position %d out of range", s.Name, s.PK)
	}
	seen := make(map[string]bool, len(s.Columns))
	for _, c := range s.Columns {
		if c.Name == "" {
			return fmt.Errorf("core: table %s has an unnamed column", s.Name)
		}
		if seen[c.Name] {
			return fmt.Errorf("core: table %s duplicates column %s", s.Name, c.Name)
		}
		seen[c.Name] = true
	}
	for _, u := range s.Unique {
		if u < 0 || u >= len(s.Columns) {
			return fmt.Errorf("core: table %s unique constraint position %d out of range", s.Name, u)
		}
		if u == s.PK {
			return fmt.Errorf("core: table %s declares the primary key column as an extra unique constraint", s.Name)
		}
	}
	return nil
}

// CheckRecord verifies a record against the schema (arity, kinds,
// non-null constraints). The primary key must be non-null regardless of
// the column's NotNull flag.
func (s *Schema) CheckRecord(r Record) error {
	if len(r) != len(s.Columns) {
		return fmt.Errorf("core: table %s expects %d columns, record has %d", s.Name, len(s.Columns), len(r))
	}
	for i, v := range r {
		c := s.Columns[i]
		if v.IsNull() {
			if c.NotNull || i == s.PK {
				return fmt.Errorf("core: table %s column %s must not be NULL", s.Name, c.Name)
			}
			continue
		}
		if v.K != c.Kind {
			return fmt.Errorf("core: table %s column %s expects %s, got %s", s.Name, c.Name, c.Kind, v.K)
		}
	}
	return nil
}

// Key extracts the primary-key value of a record under this schema.
func (s *Schema) Key(r Record) Value { return r[s.PK] }

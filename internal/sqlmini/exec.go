package sqlmini

import (
	"fmt"

	"sicost/internal/core"
	"sicost/internal/engine"
)

// Params binds named parameters for execution.
type Params map[string]core.Value

// Row is one result row: output column values in SELECT order.
type Row []core.Value

// Session executes statements against one database, managing the
// current transaction like a SQL connection: Begin/Commit/Rollback plus
// Exec/Query inside the transaction.
type Session struct {
	db *engine.DB
	tx *engine.Tx
	// txInit, when set, is applied to every transaction the session
	// begins — explicit Begin and the one-statement auto-commit
	// transactions alike. The server layer uses it to stamp per-statement
	// deadlines (Tx.SetDeadline) uniformly on both paths.
	txInit func(*engine.Tx)
}

// NewSession opens a session on db.
func NewSession(db *engine.DB) *Session { return &Session{db: db} }

// SetTxInit installs a hook run on every transaction this session
// begins, right after DB.Begin (nil removes it).
func (s *Session) SetTxInit(fn func(*engine.Tx)) { s.txInit = fn }

// begin starts an engine transaction with the init hook applied.
func (s *Session) begin() *engine.Tx {
	tx := s.db.Begin()
	if s.txInit != nil {
		s.txInit(tx)
	}
	return tx
}

// Begin starts a transaction; it fails if one is open.
func (s *Session) Begin() error {
	if s.tx != nil {
		return fmt.Errorf("sqlmini: transaction already open")
	}
	s.tx = s.begin()
	return nil
}

// Tx exposes the open transaction (for tagging); nil outside one.
func (s *Session) Tx() *engine.Tx { return s.tx }

// Commit commits the open transaction.
func (s *Session) Commit() error {
	if s.tx == nil {
		return fmt.Errorf("sqlmini: no open transaction")
	}
	err := s.tx.Commit()
	s.tx = nil
	return err
}

// Rollback aborts the open transaction (a no-op without one).
func (s *Session) Rollback() {
	if s.tx != nil {
		s.tx.Abort()
		s.tx = nil
	}
}

// autoTx runs fn inside the open transaction, or in a one-statement
// transaction when none is open (auto-commit).
func (s *Session) autoTx(fn func(tx *engine.Tx) error) error {
	if s.tx != nil {
		return fn(s.tx)
	}
	tx := s.begin()
	if err := fn(tx); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

// Query runs a SELECT and returns its rows (single-row point reads in
// this dialect).
func (s *Session) Query(stmt *Stmt, params Params) ([]Row, error) {
	if stmt.Kind != StmtSelect {
		return nil, fmt.Errorf("sqlmini: Query requires a SELECT")
	}
	var rows []Row
	err := s.autoTx(func(tx *engine.Tx) error {
		rec, schema, err := fetch(tx, stmt, params)
		if err != nil {
			return err
		}
		row, err := project(schema, rec, stmt.Cols)
		if err != nil {
			return err
		}
		rows = append(rows, row)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// QueryOne runs a SELECT expected to match exactly one row.
func (s *Session) QueryOne(stmt *Stmt, params Params) (Row, error) {
	rows, err := s.Query(stmt, params)
	if err != nil {
		return nil, err
	}
	return rows[0], nil
}

// Exec runs an UPDATE, INSERT or DELETE and returns the affected-row
// count.
func (s *Session) Exec(stmt *Stmt, params Params) (int, error) {
	affected := 0
	err := s.autoTx(func(tx *engine.Tx) error {
		switch stmt.Kind {
		case StmtUpdate:
			rec, schema, err := fetch(tx, stmt, params)
			if err != nil {
				return err
			}
			out := rec.Clone()
			for _, set := range stmt.Sets {
				pos := schema.Col(set.Col)
				if pos < 0 {
					return fmt.Errorf("sqlmini: no column %s in %s", set.Col, stmt.Table)
				}
				v, err := evalExpr(set.Expr, schema, rec, params)
				if err != nil {
					return err
				}
				out[pos] = v
			}
			if err := tx.Update(stmt.Table, schema.Key(out), out); err != nil {
				return err
			}
			affected = 1
			return nil
		case StmtInsert:
			rec := make(core.Record, len(stmt.Values))
			for i, e := range stmt.Values {
				v, err := evalExpr(e, nil, nil, params)
				if err != nil {
					return err
				}
				rec[i] = v
			}
			if err := tx.Insert(stmt.Table, rec); err != nil {
				return err
			}
			affected = 1
			return nil
		case StmtDelete:
			rec, schema, err := fetch(tx, stmt, params)
			if err != nil {
				return err
			}
			if err := tx.Delete(stmt.Table, schema.Key(rec)); err != nil {
				return err
			}
			affected = 1
			return nil
		default:
			return fmt.Errorf("sqlmini: Exec requires UPDATE/INSERT/DELETE")
		}
	})
	if err != nil {
		return 0, err
	}
	return affected, nil
}

// fetch resolves the WHERE clause to one record: by primary key, or
// through a unique index on the condition column. SELECT ... FOR UPDATE
// routes through the engine's sfu path.
func fetch(tx *engine.Tx, stmt *Stmt, params Params) (core.Record, *core.Schema, error) {
	schema, err := tableSchema(tx, stmt.Table)
	if err != nil {
		return nil, nil, err
	}
	if stmt.Where == nil {
		return nil, nil, fmt.Errorf("sqlmini: statement on %s needs a WHERE clause", stmt.Table)
	}
	val, err := condValue(stmt.Where, params)
	if err != nil {
		return nil, nil, err
	}
	pkCol := schema.Columns[schema.PK].Name
	if equalFold(stmt.Where.Col, pkCol) {
		var rec core.Record
		if stmt.ForUpdate {
			rec, err = tx.ReadForUpdate(stmt.Table, val)
		} else {
			rec, err = tx.Get(stmt.Table, val)
		}
		if err != nil {
			return nil, nil, err
		}
		return rec, schema, nil
	}
	// Unique secondary index path.
	rec, err := tx.GetByIndex(stmt.Table, canonicalCol(schema, stmt.Where.Col), val)
	if err != nil {
		return nil, nil, err
	}
	if stmt.ForUpdate {
		if rec, err = tx.ReadForUpdate(stmt.Table, schema.Key(rec)); err != nil {
			return nil, nil, err
		}
	}
	return rec, schema, nil
}

// tableSchema reaches the schema through a throwaway read; the engine
// does not expose catalog lookups on Tx, so we consult the DB layer via
// a helper on the statement's first use.
func tableSchema(tx *engine.Tx, table string) (*core.Schema, error) {
	return tx.Schema(table)
}

func canonicalCol(schema *core.Schema, col string) string {
	for _, c := range schema.Columns {
		if equalFold(c.Name, col) {
			return c.Name
		}
	}
	return col
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// condValue resolves the WHERE operand.
func condValue(c *Cond, params Params) (core.Value, error) {
	if c.IsLit {
		return litValue(c.Lit), nil
	}
	v, ok := params[c.Param]
	if !ok {
		return core.Value{}, fmt.Errorf("sqlmini: missing parameter :%s", c.Param)
	}
	return v, nil
}

func litValue(l Value) core.Value {
	if l.IsStr {
		return core.Str(l.S)
	}
	return core.Int(l.I)
}

// evalExpr evaluates a SET/VALUES expression. Column references resolve
// against the current record (nil for INSERT). String values admit no
// arithmetic: a single positive term only.
func evalExpr(e Expr, schema *core.Schema, rec core.Record, params Params) (core.Value, error) {
	resolve := func(t Term) (core.Value, error) {
		switch {
		case t.Col != "":
			if schema == nil || rec == nil {
				return core.Value{}, fmt.Errorf("sqlmini: column reference %s outside an UPDATE", t.Col)
			}
			pos := schema.Col(canonicalCol(schema, t.Col))
			if pos < 0 {
				return core.Value{}, fmt.Errorf("sqlmini: no column %s", t.Col)
			}
			return rec[pos], nil
		case t.Param != "":
			v, ok := params[t.Param]
			if !ok {
				return core.Value{}, fmt.Errorf("sqlmini: missing parameter :%s", t.Param)
			}
			return v, nil
		default:
			return litValue(t.Lit), nil
		}
	}
	if len(e.Terms) == 1 && !e.Terms[0].Neg {
		return resolve(e.Terms[0])
	}
	var sum int64
	for _, t := range e.Terms {
		v, err := resolve(t)
		if err != nil {
			return core.Value{}, err
		}
		if v.K != core.KindInt {
			return core.Value{}, fmt.Errorf("sqlmini: arithmetic on non-integer value %s", v)
		}
		if t.Neg {
			sum -= v.Int64()
		} else {
			sum += v.Int64()
		}
	}
	return core.Int(sum), nil
}

// project selects the output columns of a SELECT.
func project(schema *core.Schema, rec core.Record, cols []string) (Row, error) {
	if len(cols) == 1 && cols[0] == "*" {
		return Row(rec.Clone()), nil
	}
	out := make(Row, 0, len(cols))
	for _, c := range cols {
		pos := schema.Col(canonicalCol(schema, c))
		if pos < 0 {
			return nil, fmt.Errorf("sqlmini: no column %s in %s", c, schema.Name)
		}
		out = append(out, rec[pos])
	}
	return out, nil
}

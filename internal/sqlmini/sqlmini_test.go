package sqlmini

import (
	"errors"
	"testing"

	"sicost/internal/core"
	"sicost/internal/engine"
)

func testDB(t *testing.T) *engine.DB {
	t.Helper()
	db := engine.Open(engine.Config{Mode: core.SnapshotFUW})
	t.Cleanup(db.Close)
	for _, s := range []*core.Schema{
		{
			Name: "Account",
			Columns: []core.Column{
				{Name: "Name", Kind: core.KindString, NotNull: true},
				{Name: "CustomerId", Kind: core.KindInt, NotNull: true},
			},
			PK: 0, Unique: []int{1},
		},
		{
			Name: "Checking",
			Columns: []core.Column{
				{Name: "CustomerId", Kind: core.KindInt, NotNull: true},
				{Name: "Balance", Kind: core.KindInt, NotNull: true},
			},
			PK: 0,
		},
	} {
		if err := db.CreateTable(s); err != nil {
			t.Fatal(err)
		}
	}
	sess := NewSession(db)
	if err := sess.Begin(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, sess, `INSERT INTO Account VALUES ('alice', 1)`, nil)
	mustExec(t, sess, `INSERT INTO Checking VALUES (1, 500)`, nil)
	if err := sess.Commit(); err != nil {
		t.Fatal(err)
	}
	return db
}

func mustExec(t *testing.T, sess *Session, src string, params Params) {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	if _, err := sess.Exec(stmt, params); err != nil {
		t.Fatalf("exec %q: %v", src, err)
	}
}

func queryInt(t *testing.T, sess *Session, src string, params Params) int64 {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	row, err := sess.QueryOne(stmt, params)
	if err != nil {
		t.Fatalf("query %q: %v", src, err)
	}
	return row[0].Int64()
}

func TestLexerBasics(t *testing.T) {
	toks, err := lex(`SELECT Balance FROM T WHERE k = :x`)
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 9 { // 6 idents + '=' + param + EOF
		t.Fatalf("tokens = %d: %+v", len(toks), toks)
	}
	if toks[7].kind != tokParam || toks[7].text != "x" {
		t.Fatalf("param token = %+v", toks[7])
	}

	// String escaping.
	toks, err = lex(`'it''s'`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].kind != tokString || toks[0].text != "it's" {
		t.Fatalf("string token = %+v", toks[0])
	}

	// Errors.
	for _, bad := range []string{"'unterminated", ": name", "@x"} {
		if _, err := lex(bad); err == nil {
			t.Errorf("lex(%q) accepted", bad)
		}
	}
}

func TestParseStatements(t *testing.T) {
	s := MustParse(`SELECT Balance, CustomerId FROM Checking WHERE CustomerId = :x FOR UPDATE`)
	if s.Kind != StmtSelect || !s.ForUpdate || len(s.Cols) != 2 || s.Table != "Checking" {
		t.Fatalf("parsed %+v", s)
	}
	u := MustParse(`UPDATE Checking SET Balance = Balance - :V - 1 WHERE CustomerId = :x`)
	if u.Kind != StmtUpdate || len(u.Sets) != 1 || len(u.Sets[0].Expr.Terms) != 3 {
		t.Fatalf("parsed %+v", u)
	}
	if !u.Sets[0].Expr.Terms[1].Neg || !u.Sets[0].Expr.Terms[2].Neg {
		t.Fatal("minus signs lost")
	}
	i := MustParse(`INSERT INTO Account VALUES ('bob', 2)`)
	if i.Kind != StmtInsert || len(i.Values) != 2 {
		t.Fatalf("parsed %+v", i)
	}
	d := MustParse(`DELETE FROM Account WHERE Name = 'bob'`)
	if d.Kind != StmtDelete || !d.Where.IsLit {
		t.Fatalf("parsed %+v", d)
	}
	star := MustParse(`SELECT * FROM Account WHERE Name = :n`)
	if len(star.Cols) != 1 || star.Cols[0] != "*" {
		t.Fatalf("parsed %+v", star)
	}

	bad := []string{
		"", "DROP TABLE x", "SELECT FROM t WHERE k = :x",
		"SELECT a FROM t", "SELECT a FROM t WHERE k > :x",
		"UPDATE t SET WHERE k = :x", "UPDATE t SET a = b",
		"INSERT INTO t (a) VALUES (1)", "INSERT t VALUES (1)",
		"DELETE FROM t", "SELECT a FROM t WHERE k = :x garbage",
		"SELECT a FROM t WHERE k = :x FOR SHARE",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted", src)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse must panic on bad SQL")
		}
	}()
	MustParse("bogus")
}

func TestAutoCommitCRUD(t *testing.T) {
	db := testDB(t)
	sess := NewSession(db)

	if got := queryInt(t, sess, `SELECT Balance FROM Checking WHERE CustomerId = :x`,
		Params{"x": core.Int(1)}); got != 500 {
		t.Fatalf("balance = %d", got)
	}
	mustExec(t, sess, `UPDATE Checking SET Balance = Balance + :V WHERE CustomerId = :x`,
		Params{"x": core.Int(1), "V": core.Int(250)})
	if got := queryInt(t, sess, `SELECT Balance FROM Checking WHERE CustomerId = 1`, nil); got != 750 {
		t.Fatalf("after deposit: %d", got)
	}
	// Arithmetic with two parameters and a literal.
	mustExec(t, sess, `UPDATE Checking SET Balance = Balance - :V - 1 WHERE CustomerId = :x`,
		Params{"x": core.Int(1), "V": core.Int(100)})
	if got := queryInt(t, sess, `SELECT Balance FROM Checking WHERE CustomerId = 1`, nil); got != 649 {
		t.Fatalf("after penalty write: %d", got)
	}

	// Secondary-index WHERE (unique CustomerId on Account).
	stmt := MustParse(`SELECT Name FROM Account WHERE CustomerId = :id`)
	row, err := sess.QueryOne(stmt, Params{"id": core.Int(1)})
	if err != nil {
		t.Fatal(err)
	}
	if row[0].Text() != "alice" {
		t.Fatalf("name = %v", row[0])
	}

	// DELETE and NotFound.
	mustExec(t, sess, `DELETE FROM Account WHERE Name = 'alice'`, nil)
	if _, err := sess.Query(MustParse(`SELECT * FROM Account WHERE Name = 'alice'`), nil); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("after delete: %v", err)
	}
}

func TestExplicitTransaction(t *testing.T) {
	db := testDB(t)
	sess := NewSession(db)
	if err := sess.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Begin(); err == nil {
		t.Fatal("nested begin accepted")
	}
	mustExec(t, sess, `UPDATE Checking SET Balance = 0 WHERE CustomerId = 1`, nil)

	// Another session must not see the uncommitted write.
	other := NewSession(db)
	if got := queryInt(t, other, `SELECT Balance FROM Checking WHERE CustomerId = 1`, nil); got != 500 {
		t.Fatalf("dirty read through SQL: %d", got)
	}
	if err := sess.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := queryInt(t, other, `SELECT Balance FROM Checking WHERE CustomerId = 1`, nil); got != 0 {
		t.Fatalf("after commit: %d", got)
	}
	if err := sess.Commit(); err == nil {
		t.Fatal("commit without transaction accepted")
	}
	sess.Rollback() // no-op
}

func TestRollback(t *testing.T) {
	db := testDB(t)
	sess := NewSession(db)
	if err := sess.Begin(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, sess, `UPDATE Checking SET Balance = 1 WHERE CustomerId = 1`, nil)
	sess.Rollback()
	if got := queryInt(t, sess, `SELECT Balance FROM Checking WHERE CustomerId = 1`, nil); got != 500 {
		t.Fatalf("rollback lost: %d", got)
	}
}

func TestSelectForUpdateSQL(t *testing.T) {
	db := testDB(t)
	sess := NewSession(db)
	if err := sess.Begin(); err != nil {
		t.Fatal(err)
	}
	got := queryInt(t, sess, `SELECT Balance FROM Checking WHERE CustomerId = :x FOR UPDATE`,
		Params{"x": core.Int(1)})
	if got != 500 {
		t.Fatalf("sfu read %d", got)
	}
	// A concurrent writer conflicts after our commit? On PostgreSQL
	// semantics it doesn't — just confirm the lock is held for now by
	// checking a second session's write errors after our commit is a
	// no-op (covered in engine tests). Here: commit cleanly.
	if err := sess.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestExecErrors(t *testing.T) {
	db := testDB(t)
	sess := NewSession(db)
	cases := []struct {
		src    string
		params Params
	}{
		{`SELECT Balance FROM Nope WHERE k = 1`, nil},
		{`SELECT Nope FROM Checking WHERE CustomerId = 1`, nil},
		{`SELECT Balance FROM Checking WHERE Nope = 1`, nil},
		{`SELECT Balance FROM Checking WHERE CustomerId = :missing`, nil},
		{`UPDATE Checking SET Nope = 1 WHERE CustomerId = 1`, nil},
		{`UPDATE Checking SET Balance = Balance + :missing WHERE CustomerId = 1`, nil},
		{`UPDATE Checking SET Balance = Balance + Nope WHERE CustomerId = 1`, nil},
		{`INSERT INTO Checking VALUES (1, 1)`, nil},         // duplicate PK
		{`INSERT INTO Checking VALUES (Balance, 1)`, nil},   // column ref in INSERT
		{`DELETE FROM Checking WHERE CustomerId = 99`, nil}, // missing row
	}
	for _, c := range cases {
		stmt, err := Parse(c.src)
		if err != nil {
			t.Fatalf("parse %q: %v", c.src, err)
		}
		if stmt.Kind == StmtSelect {
			if _, err := sess.Query(stmt, c.params); err == nil {
				t.Errorf("query %q succeeded", c.src)
			}
			continue
		}
		if _, err := sess.Exec(stmt, c.params); err == nil {
			t.Errorf("exec %q succeeded", c.src)
		}
	}
	// Kind mismatches.
	if _, err := sess.Query(MustParse(`UPDATE Checking SET Balance = 1 WHERE CustomerId = 1`), nil); err == nil {
		t.Error("Query accepted an UPDATE")
	}
	if _, err := sess.Exec(MustParse(`SELECT * FROM Checking WHERE CustomerId = 1`), nil); err == nil {
		t.Error("Exec accepted a SELECT")
	}
	// String arithmetic rejected.
	if _, err := sess.Exec(MustParse(`UPDATE Account SET Name = Name + 1 WHERE Name = 'alice'`), nil); err == nil {
		t.Error("string arithmetic accepted")
	}
}

func TestCaseInsensitiveColumns(t *testing.T) {
	db := testDB(t)
	sess := NewSession(db)
	if got := queryInt(t, sess, `SELECT balance FROM Checking WHERE customerid = 1`, nil); got != 500 {
		t.Fatalf("case-folded query = %d", got)
	}
}

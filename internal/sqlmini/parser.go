package sqlmini

import (
	"fmt"
	"strconv"
	"strings"
)

// Expr is a SET/VALUES expression: a left-associative chain of + and −
// over columns, literals and parameters (enough for "Balance = Balance -
// (:V+1)"-style statements once flattened; parentheses are not needed by
// the benchmark's statements and are not supported).
type Expr struct {
	Terms []Term
}

// Term is one signed operand.
type Term struct {
	Neg   bool
	Col   string // column reference when non-empty
	Param string // parameter reference when non-empty
	Lit   Value  // literal otherwise
}

// Value is a SQL literal: int64 or string.
type Value struct {
	IsStr bool
	I     int64
	S     string
}

// Cond is the WHERE clause: column = operand (parameter or literal).
type Cond struct {
	Col   string
	Param string
	Lit   Value
	IsLit bool
}

// Statement kinds.
type StmtKind uint8

// Statement kinds supported by the dialect.
const (
	StmtSelect StmtKind = iota
	StmtUpdate
	StmtInsert
	StmtDelete
)

// Stmt is a parsed statement.
type Stmt struct {
	Kind  StmtKind
	Table string

	// SELECT: output columns ("*" alone means all), ForUpdate flag.
	Cols      []string
	ForUpdate bool

	// UPDATE: SET assignments.
	Sets []Assign

	// INSERT: VALUES expressions, in schema column order.
	Values []Expr

	// Where applies to SELECT/UPDATE/DELETE.
	Where *Cond
}

// Assign is one SET column = expr.
type Assign struct {
	Col  string
	Expr Expr
}

// parser consumes the token stream.
type parser struct {
	toks []token
	i    int
	src  string
}

// Parse parses one statement (an optional trailing semicolon is
// allowed).
func Parse(src string) (*Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	var stmt *Stmt
	switch {
	case p.acceptKeyword("SELECT"):
		stmt, err = p.parseSelect()
	case p.acceptKeyword("UPDATE"):
		stmt, err = p.parseUpdate()
	case p.acceptKeyword("INSERT"):
		stmt, err = p.parseInsert()
	case p.acceptKeyword("DELETE"):
		stmt, err = p.parseDelete()
	default:
		return nil, fmt.Errorf("sqlmini: statement must start with SELECT/UPDATE/INSERT/DELETE: %q", src)
	}
	if err != nil {
		return nil, err
	}
	p.accept(tokPunct, ";")
	if !p.at(tokEOF, "") {
		return nil, fmt.Errorf("sqlmini: trailing input at %d in %q", p.cur().pos, src)
	}
	return stmt, nil
}

// MustParse panics on error; for statically known statement constants.
func MustParse(src string) *Stmt {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}

func (p *parser) cur() token { return p.toks[p.i] }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	if t.kind != kind {
		return false
	}
	if text == "" {
		return true
	}
	if kind == tokIdent {
		return strings.EqualFold(t.text, text)
	}
	return t.text == text
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.i++
		return true
	}
	return false
}

func (p *parser) acceptKeyword(kw string) bool { return p.accept(tokIdent, kw) }

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("sqlmini: expected %s at %d in %q", kw, p.cur().pos, p.src)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", fmt.Errorf("sqlmini: expected identifier at %d in %q", t.pos, p.src)
	}
	p.i++
	return t.text, nil
}

func (p *parser) expectPunct(s string) error {
	if !p.accept(tokPunct, s) {
		return fmt.Errorf("sqlmini: expected %q at %d in %q", s, p.cur().pos, p.src)
	}
	return nil
}

// parseExpr parses term (('+'|'-') term)*.
func (p *parser) parseExpr() (Expr, error) {
	var e Expr
	t, err := p.parseTerm(false)
	if err != nil {
		return e, err
	}
	e.Terms = append(e.Terms, t)
	for {
		switch {
		case p.accept(tokPunct, "+"):
			t, err := p.parseTerm(false)
			if err != nil {
				return e, err
			}
			e.Terms = append(e.Terms, t)
		case p.accept(tokPunct, "-"):
			t, err := p.parseTerm(true)
			if err != nil {
				return e, err
			}
			e.Terms = append(e.Terms, t)
		default:
			return e, nil
		}
	}
}

func (p *parser) parseTerm(neg bool) (Term, error) {
	t := p.cur()
	switch t.kind {
	case tokIdent:
		p.i++
		return Term{Neg: neg, Col: t.text}, nil
	case tokParam:
		p.i++
		return Term{Neg: neg, Param: t.text}, nil
	case tokNumber:
		p.i++
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return Term{}, fmt.Errorf("sqlmini: bad number %q at %d", t.text, t.pos)
		}
		return Term{Neg: neg, Lit: Value{I: n}}, nil
	case tokString:
		p.i++
		return Term{Neg: neg, Lit: Value{IsStr: true, S: t.text}}, nil
	default:
		return Term{}, fmt.Errorf("sqlmini: expected expression term at %d in %q", t.pos, p.src)
	}
}

// parseWhere parses WHERE col = (param|literal).
func (p *parser) parseWhere() (*Cond, error) {
	if err := p.expectKeyword("WHERE"); err != nil {
		return nil, err
	}
	col, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("="); err != nil {
		return nil, err
	}
	t := p.cur()
	switch t.kind {
	case tokParam:
		p.i++
		return &Cond{Col: col, Param: t.text}, nil
	case tokNumber:
		p.i++
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sqlmini: bad number in WHERE at %d", t.pos)
		}
		return &Cond{Col: col, Lit: Value{I: n}, IsLit: true}, nil
	case tokString:
		p.i++
		return &Cond{Col: col, Lit: Value{IsStr: true, S: t.text}, IsLit: true}, nil
	default:
		return nil, fmt.Errorf("sqlmini: WHERE needs a parameter or literal at %d in %q", t.pos, p.src)
	}
}

func (p *parser) parseSelect() (*Stmt, error) {
	s := &Stmt{Kind: StmtSelect}
	if p.accept(tokPunct, "*") {
		s.Cols = []string{"*"}
	} else {
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			s.Cols = append(s.Cols, col)
			if !p.accept(tokPunct, ",") {
				break
			}
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	tbl, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	s.Table = tbl
	w, err := p.parseWhere()
	if err != nil {
		return nil, err
	}
	s.Where = w
	if p.acceptKeyword("FOR") {
		if err := p.expectKeyword("UPDATE"); err != nil {
			return nil, err
		}
		s.ForUpdate = true
	}
	return s, nil
}

func (p *parser) parseUpdate() (*Stmt, error) {
	s := &Stmt{Kind: StmtUpdate}
	tbl, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	s.Table = tbl
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		expr, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Sets = append(s.Sets, Assign{Col: col, Expr: expr})
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	w, err := p.parseWhere()
	if err != nil {
		return nil, err
	}
	s.Where = w
	return s, nil
}

func (p *parser) parseInsert() (*Stmt, error) {
	s := &Stmt{Kind: StmtInsert}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	tbl, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	s.Table = tbl
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for {
		expr, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Values = append(s.Values, expr)
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return s, nil
}

func (p *parser) parseDelete() (*Stmt, error) {
	s := &Stmt{Kind: StmtDelete}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	tbl, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	s.Table = tbl
	w, err := p.parseWhere()
	if err != nil {
		return nil, err
	}
	s.Where = w
	return s, nil
}

// Package sqlmini is a small SQL front-end over the engine, covering the
// dialect the paper's SmallBank programs are written in (§III-B,
// Program 1): single-table point SELECTs (optionally FOR UPDATE),
// UPDATEs with arithmetic SET expressions, INSERTs and DELETEs, with
// named parameters (:x). It exists so the benchmark programs can be
// expressed as the SQL the paper prints, and is deliberately not a
// general query processor: predicates are equality on the primary key or
// on a unique-indexed column, matching the paper's observation that
// "most predicates use a primary key to determine which record to read".
package sqlmini

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokParam // :name
	tokPunct // ( ) , = + - * ;
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer tokenizes one statement.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes src or reports the offending position.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			l.lexIdent()
		case c >= '0' && c <= '9':
			l.lexNumber()
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' && l.prevIsOperand():
			// A '-' directly before a digit is a binary minus when the
			// previous token is an operand; otherwise a negative
			// literal.
			l.emitPunct()
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
			l.lexNumber()
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c == ':':
			if err := l.lexParam(); err != nil {
				return nil, err
			}
		case strings.IndexByte("(),=+-*;", c) >= 0:
			l.emitPunct()
		default:
			return nil, fmt.Errorf("sqlmini: unexpected character %q at %d", c, l.pos)
		}
	}
}

func (l *lexer) prevIsOperand() bool {
	if len(l.toks) == 0 {
		return false
	}
	t := l.toks[len(l.toks)-1]
	return t.kind == tokIdent || t.kind == tokNumber || t.kind == tokParam ||
		(t.kind == tokPunct && t.text == ")")
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexNumber() {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'') // escaped quote
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sqlmini: unterminated string literal at %d", start)
}

func (l *lexer) lexParam() error {
	start := l.pos
	l.pos++ // colon
	if l.pos >= len(l.src) || !isIdentStart(rune(l.src[l.pos])) {
		return fmt.Errorf("sqlmini: bad parameter name at %d", start)
	}
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokParam, text: l.src[start+1 : l.pos], pos: start})
	return nil
}

func (l *lexer) emitPunct() {
	l.toks = append(l.toks, token{kind: tokPunct, text: string(l.src[l.pos]), pos: l.pos})
	l.pos++
}

package sqlmini

import (
	"strings"
	"testing"
)

// FuzzSQLMiniParse throws arbitrary input at the lexer and parser. The
// property under test is robustness, not acceptance: Parse must return
// a statement or an error — never panic, never both nil — and whatever
// it accepts must satisfy the Stmt invariants the executor relies on.
//
// Run with: go test -fuzz FuzzSQLMiniParse ./internal/sqlmini
func FuzzSQLMiniParse(f *testing.F) {
	// Seeds: the dialect's statement shapes, drawn from the SmallBank
	// programs, plus edge cases around each token class.
	for _, src := range []string{
		"SELECT CustomerId FROM Account WHERE Name = :name",
		"SELECT * FROM Savings WHERE CustomerId = :id FOR UPDATE",
		"UPDATE Checking SET Balance = Balance - :v WHERE CustomerId = :id;",
		"UPDATE Savings SET Balance = Balance + :v - 1 WHERE CustomerId = :id",
		"INSERT INTO Conflict VALUES (:id, 0)",
		"DELETE FROM Checking WHERE CustomerId = 7",
		"SELECT Balance FROM Checking WHERE Name = 'alice'",
		"select balance, customerid from checking where customerid = :id",
		"UPDATE t SET a = -:v, b = 'x' WHERE k = :k",
		"SELECT * FROM t",
		"INSERT INTO t VALUES ('it''s', -42)",
		"SELECT :p FROM",
		"UPDATE SET",
		"'unterminated",
	} {
		f.Add(src)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1024 {
			return
		}
		stmt, err := Parse(src)
		if err != nil {
			if stmt != nil {
				t.Fatalf("Parse(%q) returned both a statement and error %v", src, err)
			}
			return
		}
		if stmt == nil {
			t.Fatalf("Parse(%q) returned nil, nil", src)
		}
		if stmt.Table == "" {
			t.Fatalf("Parse(%q) accepted a statement without a table", src)
		}
		switch stmt.Kind {
		case StmtSelect:
			if len(stmt.Cols) == 0 {
				t.Fatalf("Parse(%q): SELECT with no output columns", src)
			}
		case StmtUpdate:
			if len(stmt.Sets) == 0 {
				t.Fatalf("Parse(%q): UPDATE with no assignments", src)
			}
			for _, a := range stmt.Sets {
				if a.Col == "" || len(a.Expr.Terms) == 0 {
					t.Fatalf("Parse(%q): empty SET assignment %+v", src, a)
				}
			}
		case StmtInsert:
			if len(stmt.Values) == 0 {
				t.Fatalf("Parse(%q): INSERT with no values", src)
			}
			for _, e := range stmt.Values {
				if len(e.Terms) == 0 {
					t.Fatalf("Parse(%q): empty VALUES expression", src)
				}
			}
		case StmtDelete:
			// WHERE is optional for the parser; nothing further to hold.
		default:
			t.Fatalf("Parse(%q): unknown statement kind %d", src, stmt.Kind)
		}
		if stmt.Where != nil && stmt.Where.Col == "" {
			t.Fatalf("Parse(%q): WHERE without a column", src)
		}
		// Accepted statements must round-trip through MustParse without
		// panicking (same code path, belt and braces for its callers).
		if got := MustParse(src); got == nil {
			t.Fatalf("MustParse(%q) returned nil", src)
		}
		// A trailing semicolon stays accepted (idempotent termination).
		if !strings.HasSuffix(strings.TrimSpace(src), ";") {
			if _, err := Parse(src + ";"); err != nil {
				t.Fatalf("Parse(%q) accepted but with semicolon failed: %v", src, err)
			}
		}
	})
}

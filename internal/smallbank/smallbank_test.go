package smallbank

import (
	"errors"
	"testing"

	"sicost/internal/core"
	"sicost/internal/engine"
	"sicost/internal/sdg"
)

// testDB loads a small bank for semantics tests: 10 customers with
// deterministic balances (savings 1000, checking 500 by narrowing the
// random ranges to a point).
func testDB(t *testing.T, mode core.CCMode, platform core.Platform) *engine.DB {
	t.Helper()
	db := engine.Open(engine.Config{Mode: mode, Platform: platform})
	t.Cleanup(db.Close)
	if err := CreateSchema(db); err != nil {
		t.Fatal(err)
	}
	_, err := Load(db, LoadConfig{
		Customers: 10, Seed: 1,
		MinSaving: 1000, MaxSaving: 1000,
		MinChecking: 500, MaxChecking: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func balanceOf(t *testing.T, db *engine.DB, cust int) (sav, chk int64) {
	t.Helper()
	tx := db.Begin()
	defer tx.Abort()
	s, err := tx.Get(TableSaving, core.Int(int64(cust)))
	if err != nil {
		t.Fatal(err)
	}
	c, err := tx.Get(TableChecking, core.Int(int64(cust)))
	if err != nil {
		t.Fatal(err)
	}
	return s[1].Int64(), c[1].Int64()
}

func TestLoadPopulatesTables(t *testing.T) {
	db := testDB(t, core.SnapshotFUW, core.PlatformPostgres)
	total, err := TotalMoney(db)
	if err != nil {
		t.Fatal(err)
	}
	if total != 10*(1000+500) {
		t.Fatalf("total = %d", total)
	}
	// Conflict table: one row per customer plus the fixed row.
	n := 0
	if err := db.ScanLatest(TableConflict, func(core.Value, core.Record) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 11 {
		t.Fatalf("conflict rows = %d, want 11", n)
	}
	// Account lookup by name works.
	tx := db.Begin()
	rec, err := tx.Get(TableAccount, core.Str(CustomerName(3)))
	if err != nil {
		t.Fatal(err)
	}
	if rec[1].Int64() != 3 {
		t.Fatalf("customer id = %d", rec[1].Int64())
	}
	tx.Abort()
}

func TestBalanceTransaction(t *testing.T) {
	db := testDB(t, core.SnapshotFUW, core.PlatformPostgres)
	tx := db.Begin()
	got, err := RunBalance(tx, StrategySI, Params{N1: CustomerName(0)})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1500 {
		t.Fatalf("balance = %d", got)
	}
	if !tx.ReadOnly() {
		t.Fatal("plain Balance must be read-only")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Unknown customer rolls back as an application error.
	tx2 := db.Begin()
	if _, err := RunBalance(tx2, StrategySI, Params{N1: "nobody"}); !errors.Is(err, core.ErrRollback) {
		t.Fatalf("unknown name: %v", err)
	}
	tx2.Abort()
}

func TestBalanceStopsBeingReadOnlyUnderBWStrategies(t *testing.T) {
	cases := []*Strategy{StrategyMaterializeBW, StrategyPromoteBWUpd, StrategyPromoteALL, StrategyMaterializeALL}
	for _, s := range cases {
		db := testDB(t, core.SnapshotFUW, core.PlatformPostgres)
		tx := db.Begin()
		if _, err := RunBalance(tx, s, Params{N1: CustomerName(1)}); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if tx.ReadOnly() {
			t.Fatalf("%s: Balance must become an updater (Table I)", s.Name)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		sav, chk := balanceOf(t, db, 1)
		if sav != 1000 || chk != 500 {
			t.Fatalf("%s: identity/conflict updates altered balances: %d/%d", s.Name, sav, chk)
		}
	}
	// The commercial sfu flavour also makes Balance non-read-only (it
	// holds a write-conflicting lock).
	db := testDB(t, core.SnapshotFUW, core.PlatformCommercial)
	tx := db.Begin()
	if _, err := RunBalance(tx, StrategyPromoteBWSfu, Params{N1: CustomerName(1)}); err != nil {
		t.Fatal(err)
	}
	if tx.ReadOnly() {
		t.Fatal("commercial sfu Balance must not count as read-only")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestBalanceStaysReadOnlyUnderWTStrategies(t *testing.T) {
	for _, s := range []*Strategy{StrategyMaterializeWT, StrategyPromoteWTUpd} {
		db := testDB(t, core.SnapshotFUW, core.PlatformPostgres)
		tx := db.Begin()
		if _, err := RunBalance(tx, s, Params{N1: CustomerName(1)}); err != nil {
			t.Fatal(err)
		}
		if !tx.ReadOnly() {
			t.Fatalf("%s: Option WT must keep Balance read-only", s.Name)
		}
		tx.Abort()
	}
}

func TestDepositChecking(t *testing.T) {
	db := testDB(t, core.SnapshotFUW, core.PlatformPostgres)
	if err := Run(db, StrategySI, DepositChecking, Params{N1: CustomerName(2), V: 250}); err != nil {
		t.Fatal(err)
	}
	if _, chk := balanceOf(t, db, 2); chk != 750 {
		t.Fatalf("checking = %d", chk)
	}
	// Negative deposit rolls back.
	err := Run(db, StrategySI, DepositChecking, Params{N1: CustomerName(2), V: -5})
	if !errors.Is(err, core.ErrRollback) {
		t.Fatalf("negative deposit: %v", err)
	}
	if _, chk := balanceOf(t, db, 2); chk != 750 {
		t.Fatal("rolled-back deposit applied")
	}
	// Unknown name rolls back.
	if err := Run(db, StrategySI, DepositChecking, Params{N1: "ghost", V: 5}); !errors.Is(err, core.ErrRollback) {
		t.Fatalf("unknown name: %v", err)
	}
}

func TestTransactSaving(t *testing.T) {
	db := testDB(t, core.SnapshotFUW, core.PlatformPostgres)
	if err := Run(db, StrategySI, TransactSaving, Params{N1: CustomerName(3), V: -400}); err != nil {
		t.Fatal(err)
	}
	if sav, _ := balanceOf(t, db, 3); sav != 600 {
		t.Fatalf("saving = %d", sav)
	}
	// Overdraw rolls back.
	err := Run(db, StrategySI, TransactSaving, Params{N1: CustomerName(3), V: -601})
	if !errors.Is(err, core.ErrRollback) {
		t.Fatalf("overdraw: %v", err)
	}
	if sav, _ := balanceOf(t, db, 3); sav != 600 {
		t.Fatal("rolled-back withdrawal applied")
	}
}

func TestAmalgamate(t *testing.T) {
	db := testDB(t, core.SnapshotFUW, core.PlatformPostgres)
	if err := Run(db, StrategySI, Amalgamate, Params{N1: CustomerName(4), N2: CustomerName(5)}); err != nil {
		t.Fatal(err)
	}
	sav4, chk4 := balanceOf(t, db, 4)
	if sav4 != 0 || chk4 != 0 {
		t.Fatalf("source accounts = %d/%d, want zeroed", sav4, chk4)
	}
	sav5, chk5 := balanceOf(t, db, 5)
	if sav5 != 1000 || chk5 != 500+1500 {
		t.Fatalf("target = %d/%d", sav5, chk5)
	}
	// Total money conserved.
	total, _ := TotalMoney(db)
	if total != 10*1500 {
		t.Fatalf("total = %d", total)
	}
}

func TestWriteCheckPenalty(t *testing.T) {
	db := testDB(t, core.SnapshotFUW, core.PlatformPostgres)
	// Sufficient funds: no penalty.
	if err := Run(db, StrategySI, WriteCheck, Params{N1: CustomerName(6), V: 1200}); err != nil {
		t.Fatal(err)
	}
	if _, chk := balanceOf(t, db, 6); chk != 500-1200 {
		t.Fatalf("checking = %d, want -700 (no penalty: total 1500 >= 1200)", chk)
	}
	// Insufficient funds: one-cent penalty.
	if err := Run(db, StrategySI, WriteCheck, Params{N1: CustomerName(7), V: 2000}); err != nil {
		t.Fatal(err)
	}
	if _, chk := balanceOf(t, db, 7); chk != 500-2001 {
		t.Fatalf("checking = %d, want -1501 (penalty applied)", chk)
	}
}

func TestRunUnknownType(t *testing.T) {
	db := testDB(t, core.SnapshotFUW, core.PlatformPostgres)
	if err := Run(db, StrategySI, TxnType(99), Params{}); err == nil {
		t.Fatal("unknown type accepted")
	}
}

func TestTxnTypeNames(t *testing.T) {
	names := map[TxnType][2]string{
		Balance:         {"Balance", "Bal"},
		DepositChecking: {"DepositChecking", "DC"},
		TransactSaving:  {"TransactSaving", "TS"},
		Amalgamate:      {"Amalgamate", "Amg"},
		WriteCheck:      {"WriteCheck", "WC"},
	}
	for typ, want := range names {
		if typ.String() != want[0] || typ.Short() != want[1] {
			t.Fatalf("%d: %s/%s", typ, typ.String(), typ.Short())
		}
	}
	if TxnType(99).Short() != "?" {
		t.Fatal("unknown Short")
	}
	if NumTxnTypes != 5 {
		t.Fatal("NumTxnTypes")
	}
}

func TestStrategyLookupAndMetadata(t *testing.T) {
	if len(Strategies()) != 10 {
		t.Fatalf("strategies = %d", len(Strategies()))
	}
	seen := map[string]bool{}
	for _, s := range Strategies() {
		if seen[s.Name] {
			t.Fatalf("duplicate strategy name %s", s.Name)
		}
		seen[s.Name] = true
		got, err := ByName(s.Name)
		if err != nil || got != s {
			t.Fatalf("ByName(%s) = %v, %v", s.Name, got, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

// TestExtraUpdatesMatchTable1 checks the strategy decorations against
// the paper's Table I row by row.
func TestExtraUpdatesMatchTable1(t *testing.T) {
	type row map[string][]string
	want := map[string]row{
		"SI":             {},
		"MaterializeWT":  {"WC": {"Conf"}, "TS": {"Conf"}},
		"PromoteWT-upd":  {"WC": {"Sav"}},
		"PromoteWT-sfu":  {"WC": {"Sav(sfu)"}},
		"MaterializeBW":  {"Bal": {"Conf"}, "WC": {"Conf"}},
		"PromoteBW-upd":  {"Bal": {"Check"}},
		"PromoteBW-sfu":  {"Bal": {"Check(sfu)"}},
		"MaterializeALL": {"Bal": {"Conf"}, "WC": {"Conf"}, "TS": {"Conf"}, "DC": {"Conf"}, "Amg": {"Conf×2"}},
		"PromoteALL":     {"Bal": {"Check", "Sav"}, "WC": {"Sav"}},
	}
	for name, wantRow := range want {
		s, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		got := s.ExtraUpdates()
		if len(got) != len(wantRow) {
			t.Fatalf("%s: ExtraUpdates = %v, want %v", name, got, wantRow)
		}
		for txn, tables := range wantRow {
			g := got[txn]
			if len(g) != len(tables) {
				t.Fatalf("%s/%s: %v want %v", name, txn, g, tables)
			}
			for i := range tables {
				if g[i] != tables[i] {
					t.Fatalf("%s/%s: %v want %v", name, txn, g, tables)
				}
			}
		}
	}
}

func TestStrategySoundness(t *testing.T) {
	if StrategySI.SoundOn(core.PlatformPostgres) || StrategySI.GuaranteesSerializable() {
		t.Fatal("SI guarantees nothing")
	}
	for _, s := range []*Strategy{StrategyPromoteWTSfu, StrategyPromoteBWSfu} {
		if s.SoundOn(core.PlatformPostgres) {
			t.Fatalf("%s must be unsound on PostgreSQL", s.Name)
		}
		if !s.SoundOn(core.PlatformCommercial) {
			t.Fatalf("%s must be sound on the commercial platform", s.Name)
		}
	}
	for _, s := range []*Strategy{StrategyMaterializeWT, StrategyPromoteWTUpd, StrategyMaterializeBW,
		StrategyPromoteBWUpd, StrategyMaterializeALL, StrategyPromoteALL, StrategyMaterializeWTFixed} {
		if !s.SoundOn(core.PlatformPostgres) || !s.SoundOn(core.PlatformCommercial) {
			t.Fatalf("%s must be sound on both platforms", s.Name)
		}
	}
}

// TestSDGDerivations ties every strategy to the theory: the derived
// program mixes of all repair strategies are SI-safe; plain SI's is not.
func TestSDGDerivations(t *testing.T) {
	for _, s := range Strategies() {
		progs, err := s.SDGPrograms()
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		g, err := sdg.New(progs...)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name == "SI" {
			if g.IsSafe() {
				t.Fatal("unmodified SmallBank must have a dangerous structure")
			}
			continue
		}
		if !g.IsSafe() {
			t.Fatalf("%s: derived SDG still has dangerous structures:\n%s", s.Name, g.Describe())
		}
	}
}

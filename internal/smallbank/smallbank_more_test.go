package smallbank

import (
	"errors"
	"sync"
	"testing"

	"sicost/internal/checker"
	"sicost/internal/core"
	"sicost/internal/engine"
)

func TestFixedConflictRowStrategyExecution(t *testing.T) {
	db := testDB(t, core.SnapshotFUW, core.PlatformPostgres)
	// Two WCs for DIFFERENT customers must conflict under the fixed-row
	// variant (the whole point of the ablation).
	t1 := db.Begin()
	t2 := db.Begin()
	if err := RunWriteCheck(t1, StrategyMaterializeWTFixed, Params{N1: CustomerName(1), V: 10}); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	err := RunWriteCheck(t2, StrategyMaterializeWTFixed, Params{N1: CustomerName(2), V: 10})
	if !errors.Is(err, core.ErrSerialization) {
		t.Fatalf("fixed-row variant must conflict across customers: %v", err)
	}
	t2.Abort()

	// The per-customer variant does NOT conflict across customers.
	t3 := db.Begin()
	t4 := db.Begin()
	if err := RunWriteCheck(t3, StrategyMaterializeWT, Params{N1: CustomerName(3), V: 10}); err != nil {
		t.Fatal(err)
	}
	if err := t3.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := RunWriteCheck(t4, StrategyMaterializeWT, Params{N1: CustomerName(4), V: 10}); err != nil {
		t.Fatalf("per-customer variant must not conflict across customers: %v", err)
	}
	if err := t4.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestAmalgamateRollbacks(t *testing.T) {
	db := testDB(t, core.SnapshotFUW, core.PlatformPostgres)
	// Unknown names roll back (either position).
	err := Run(db, StrategySI, Amalgamate, Params{N1: "ghost", N2: CustomerName(1)})
	if !errors.Is(err, core.ErrRollback) {
		t.Fatalf("unknown N1: %v", err)
	}
	err = Run(db, StrategySI, Amalgamate, Params{N1: CustomerName(1), N2: "ghost"})
	if !errors.Is(err, core.ErrRollback) {
		t.Fatalf("unknown N2: %v", err)
	}
	// Nothing was changed by the failed attempts.
	sav, chk := balanceOf(t, db, 1)
	if sav != 1000 || chk != 500 {
		t.Fatalf("failed Amalgamate mutated: %d/%d", sav, chk)
	}
}

func TestAmalgamateWithConflictStrategy(t *testing.T) {
	db := testDB(t, core.SnapshotFUW, core.PlatformPostgres)
	if err := Run(db, StrategyMaterializeALL, Amalgamate,
		Params{N1: CustomerName(1), N2: CustomerName(2)}); err != nil {
		t.Fatal(err)
	}
	// Both conflict rows were touched.
	tx := db.Begin()
	defer tx.Abort()
	for _, id := range []int64{1, 2} {
		rec, err := tx.Get(TableConflict, core.Int(id))
		if err != nil {
			t.Fatal(err)
		}
		if rec[1].Int64() != 1 {
			t.Fatalf("conflict row %d = %d, want 1", id, rec[1].Int64())
		}
	}
}

func TestWriteCheckSfuVariant(t *testing.T) {
	db := testDB(t, core.SnapshotFUW, core.PlatformCommercial)
	if err := Run(db, StrategyPromoteWTSfu, WriteCheck, Params{N1: CustomerName(1), V: 100}); err != nil {
		t.Fatal(err)
	}
	if _, chk := balanceOf(t, db, 1); chk != 400 {
		t.Fatalf("checking = %d", chk)
	}
}

func TestLoadDefaultsAndConfig(t *testing.T) {
	cfg := LoadConfig{}
	cfg.defaults()
	if cfg.Customers != 18000 || cfg.BatchSize != 1000 {
		t.Fatalf("defaults = %+v", cfg)
	}
	if cfg.MinSaving >= cfg.MaxSaving || cfg.MinChecking >= cfg.MaxChecking {
		t.Fatal("default balance ranges degenerate")
	}

	// A non-multiple batch size exercises the tail batch.
	db := engine.Open(engine.Config{})
	defer db.Close()
	if err := CreateSchema(db); err != nil {
		t.Fatal(err)
	}
	total, err := Load(db, LoadConfig{Customers: 7, BatchSize: 3, Seed: 9,
		MinSaving: 10, MaxSaving: 20, MinChecking: 1, MaxChecking: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := TotalMoney(db)
	if err != nil {
		t.Fatal(err)
	}
	if got != total {
		t.Fatalf("TotalMoney %d != loader total %d", got, total)
	}
}

func TestCreateSchemaTwiceFails(t *testing.T) {
	db := engine.Open(engine.Config{})
	defer db.Close()
	if err := CreateSchema(db); err != nil {
		t.Fatal(err)
	}
	if err := CreateSchema(db); err == nil {
		t.Fatal("duplicate schema accepted")
	}
}

// TestConcurrentMixedWorkloadConservation: Amalgamate-only traffic must
// conserve total money exactly under concurrency with retries, for every
// strategy that touches Amg.
func TestConcurrentAmalgamateConservation(t *testing.T) {
	for _, s := range []*Strategy{StrategySI, StrategyMaterializeALL} {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			db := testDB(t, core.SnapshotFUW, core.PlatformPostgres)
			before, err := TotalMoney(db)
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(seed int) {
					defer wg.Done()
					for i := 0; i < 30; i++ {
						n1 := (seed + i) % 10
						n2 := (n1 + 1 + i%9) % 10
						for attempt := 0; attempt < 100; attempt++ {
							err := Run(db, s, Amalgamate, Params{
								N1: CustomerName(n1), N2: CustomerName(n2),
							})
							if err == nil || !core.IsRetriable(err) {
								break
							}
						}
					}
				}(w)
			}
			wg.Wait()
			after, err := TotalMoney(db)
			if err != nil {
				t.Fatal(err)
			}
			if after != before {
				t.Fatalf("money not conserved: %d -> %d", before, after)
			}
		})
	}
}

// TestStrategiesSerializableUnderScriptedPairs drives every ordered pair
// of transaction types through a concurrent overlap on one customer and
// asserts the checker never finds a cycle under PromoteALL — a
// pairwise sweep complementing the stochastic driver test.
func TestStrategiesSerializableUnderScriptedPairs(t *testing.T) {
	types := []TxnType{Balance, DepositChecking, TransactSaving, Amalgamate, WriteCheck}
	db := testDB(t, core.SnapshotFUW, core.PlatformPostgres)
	chk := checker.New()
	db.SetObserver(chk)
	name := CustomerName(0)
	other := CustomerName(1)

	runType := func(tx *engine.Tx, typ TxnType) error {
		p := Params{N1: name, N2: other, V: 5}
		switch typ {
		case Balance:
			_, err := RunBalance(tx, StrategyPromoteALL, p)
			return err
		case DepositChecking:
			return RunDepositChecking(tx, StrategyPromoteALL, p)
		case TransactSaving:
			return RunTransactSaving(tx, StrategyPromoteALL, p)
		case Amalgamate:
			return RunAmalgamate(tx, StrategyPromoteALL, p)
		default:
			return RunWriteCheck(tx, StrategyPromoteALL, p)
		}
	}
	for _, a := range types {
		for _, b := range types {
			t1 := db.Begin()
			t1.SetTag(a.Short())
			t2 := db.Begin()
			t2.SetTag(b.Short())
			// t2 runs to completion first, then t1 on its older snapshot.
			if err := runType(t2, b); err != nil {
				t2.Abort()
			} else {
				_ = t2.Commit()
			}
			if err := runType(t1, a); err != nil {
				t1.Abort()
			} else {
				_ = t1.Commit()
			}
		}
	}
	rep := chk.Analyze()
	if !rep.Serializable {
		t.Fatalf("PromoteALL pairwise sweep produced a cycle:\n%s", rep.Describe())
	}
}

package smallbank

import (
	"errors"
	"math/rand"
	"testing"

	"sicost/internal/core"
	"sicost/internal/engine"
)

// TestSQLAndNativeEquivalence runs the same randomized operation
// sequence through Run (native API) and RunSQL (the paper's SQL via
// sqlmini) on twin databases and asserts identical final states —
// including identical application-rollback decisions.
func TestSQLAndNativeEquivalence(t *testing.T) {
	for _, s := range []*Strategy{StrategySI, StrategyPromoteWTUpd, StrategyMaterializeALL} {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			native := testDB(t, core.SnapshotFUW, core.PlatformPostgres)
			viaSQL := testDB(t, core.SnapshotFUW, core.PlatformPostgres)

			rng := rand.New(rand.NewSource(99))
			for i := 0; i < 200; i++ {
				typ := TxnType(rng.Intn(NumTxnTypes))
				n1 := rng.Intn(10)
				n2 := (n1 + 1 + rng.Intn(9)) % 10
				p := Params{
					N1: CustomerName(n1),
					N2: CustomerName(n2),
					V:  rng.Int63n(400) - 100,
				}
				errA := Run(native, s, typ, p)
				errB := RunSQL(viaSQL, s, typ, p)
				if (errA == nil) != (errB == nil) {
					t.Fatalf("op %d %v(%+v): native err %v, sql err %v", i, typ, p, errA, errB)
				}
				if errA != nil && !errors.Is(errA, core.ErrRollback) {
					t.Fatalf("unexpected native error: %v", errA)
				}
				if errB != nil && !errors.Is(errB, core.ErrRollback) {
					t.Fatalf("unexpected sql error: %v", errB)
				}
			}

			for _, table := range []string{TableSaving, TableChecking, TableConflict} {
				stateA := dumpTable(t, native, table)
				stateB := dumpTable(t, viaSQL, table)
				if len(stateA) != len(stateB) {
					t.Fatalf("%s: %d vs %d rows", table, len(stateA), len(stateB))
				}
				for k, v := range stateA {
					if stateB[k] != v {
						t.Fatalf("%s[%d]: native %d, sql %d", table, k, v, stateB[k])
					}
				}
			}
		})
	}
}

func dumpTable(t *testing.T, db *engine.DB, table string) map[int64]int64 {
	t.Helper()
	out := map[int64]int64{}
	if err := db.ScanLatest(table, func(k core.Value, rec core.Record) bool {
		out[k.Int64()] = rec[1].Int64()
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSQLWriteCheckIsProgram1 pins the overdraft-penalty semantics of
// the paper's Program 1 through the SQL path.
func TestSQLWriteCheckIsProgram1(t *testing.T) {
	db := testDB(t, core.SnapshotFUW, core.PlatformPostgres)
	// Customer 0: saving 1000, checking 500. A 1200 check is covered
	// (total 1500): no penalty.
	if err := RunSQL(db, StrategySI, WriteCheck, Params{N1: CustomerName(0), V: 1200}); err != nil {
		t.Fatal(err)
	}
	if _, chk := balanceOf(t, db, 0); chk != 500-1200 {
		t.Fatalf("covered check: %d", chk)
	}
	// Customer 1: a 2000 check is not covered: one-cent penalty.
	if err := RunSQL(db, StrategySI, WriteCheck, Params{N1: CustomerName(1), V: 2000}); err != nil {
		t.Fatal(err)
	}
	if _, chk := balanceOf(t, db, 1); chk != 500-2001 {
		t.Fatalf("overdraft check: %d", chk)
	}
}

// TestSQLStrategySemantics: the SQL-path strategies preserve the
// concurrency behaviour — the dangerous interleaving conflicts under a
// repair, exactly as with the native API.
func TestSQLStrategySemantics(t *testing.T) {
	db := testDB(t, core.SnapshotFUW, core.PlatformPostgres)
	name := CustomerName(0)

	// WC begins first (old snapshot) — driven natively to hold the
	// transaction open, while TS runs via SQL.
	wcTx := db.Begin()
	if err := RunSQL(db, StrategyPromoteWTUpd, TransactSaving, Params{N1: name, V: 500}); err != nil {
		t.Fatal(err)
	}
	err := RunWriteCheck(wcTx, StrategyPromoteWTUpd, Params{N1: name, V: 100})
	if !errors.Is(err, core.ErrSerialization) {
		t.Fatalf("promoted WC vs committed TS: %v", err)
	}
	wcTx.Abort()
}

// TestSQLRollbacks: the SQL programs reproduce the paper's rollback
// rules.
func TestSQLRollbacks(t *testing.T) {
	db := testDB(t, core.SnapshotFUW, core.PlatformPostgres)
	if err := RunSQL(db, StrategySI, DepositChecking, Params{N1: CustomerName(0), V: -1}); !errors.Is(err, core.ErrRollback) {
		t.Fatalf("negative deposit: %v", err)
	}
	if err := RunSQL(db, StrategySI, TransactSaving, Params{N1: CustomerName(0), V: -5000}); !errors.Is(err, core.ErrRollback) {
		t.Fatalf("overdraw savings: %v", err)
	}
	if err := RunSQL(db, StrategySI, Balance, Params{N1: "ghost"}); !errors.Is(err, core.ErrRollback) {
		t.Fatalf("unknown customer: %v", err)
	}
	if err := RunSQL(db, StrategySI, TxnType(99), Params{}); err == nil {
		t.Fatal("unknown type accepted")
	}
}

package smallbank

import (
	"testing"

	"sicost/internal/checker"
	"sicost/internal/core"
	"sicost/internal/engine"
)

// runAnomalyScript drives the §III-C interleaving against a database
// running the given strategy:
//
//	begin(WC) — WC takes its snapshot before TS commits
//	TS deposits into savings and commits
//	Bal reads the customer's total (sees the deposit)
//	WC evaluates the stale snapshot total, charges the overdraft
//	penalty, and tries to commit
//
// Under plain SI all three commit and the execution is the read-only
// anomaly of Fekete/O'Neil/O'Neil. Every repair strategy must instead
// force a serialization failure somewhere. The function returns the
// checker report and whether any step failed with a retriable error.
func runAnomalyScript(t *testing.T, db *engine.DB, s *Strategy) (rep *checker.Report, conflicted bool) {
	t.Helper()
	chk := checker.New()
	db.SetObserver(chk)
	name := CustomerName(0)

	fail := func(err error) bool {
		if err == nil {
			return false
		}
		if core.IsRetriable(err) {
			conflicted = true
			return true
		}
		t.Fatalf("unexpected error: %v", err)
		return true
	}

	// WC begins first: its snapshot predates TS's deposit.
	wcTx := db.Begin()
	wcTx.SetTag("WC")

	// TS deposits 2000 into savings and commits.
	tsTx := db.Begin()
	tsTx.SetTag("TS")
	if err := RunTransactSaving(tsTx, s, Params{N1: name, V: 2000}); err != nil {
		tsTx.Abort()
		if fail(err) {
			wcTx.Abort()
			return chk.Analyze(), conflicted
		}
	} else if err := tsTx.Commit(); fail(err) {
		wcTx.Abort()
		return chk.Analyze(), conflicted
	}

	// Bal reads the total: sees the deposit (snapshot after TS).
	balTx := db.Begin()
	balTx.SetTag("Bal")
	if _, err := RunBalance(balTx, s, Params{N1: name}); err != nil {
		balTx.Abort()
		if fail(err) {
			wcTx.Abort()
			return chk.Analyze(), conflicted
		}
	} else if err := balTx.Commit(); fail(err) {
		wcTx.Abort()
		return chk.Analyze(), conflicted
	}

	// WC writes a check against the stale snapshot: savings 1000 +
	// checking 500 < 1600 => penalty, even though the real total is now
	// 3500.
	if err := RunWriteCheck(wcTx, s, Params{N1: name, V: 1600}); err != nil {
		wcTx.Abort()
		if fail(err) {
			return chk.Analyze(), conflicted
		}
	} else if err := wcTx.Commit(); fail(err) {
		return chk.Analyze(), conflicted
	}

	return chk.Analyze(), conflicted
}

// TestAnomalyUnderPlainSI: the full §III-C scenario commits under SI and
// the checker flags the read-only anomaly.
func TestAnomalyUnderPlainSI(t *testing.T) {
	db := testDB(t, core.SnapshotFUW, core.PlatformPostgres)
	rep, conflicted := runAnomalyScript(t, db, StrategySI)
	if conflicted {
		t.Fatal("plain SI must let every step through")
	}
	if rep.Serializable {
		t.Fatalf("anomaly not detected:\n%s", rep.Describe())
	}
	if got := rep.Classify(); got != "read-only anomaly" {
		t.Fatalf("Classify = %q\n%s", got, rep.Describe())
	}
	// The corrupted state: the penalty was charged even though the
	// balance transaction observed sufficient funds.
	_, chkBal := balanceOf(t, db, 0)
	if chkBal != 500-1601 {
		t.Fatalf("checking = %d, want penalty applied", chkBal)
	}
}

// TestStrategiesPreventAnomaly: every repair strategy must turn the same
// interleaving into a serialization failure, and whatever commits must
// be serializable.
func TestStrategiesPreventAnomaly(t *testing.T) {
	for _, s := range Strategies() {
		if s.Name == "SI" {
			continue
		}
		platform := core.PlatformPostgres
		if !s.SoundOn(core.PlatformPostgres) {
			platform = core.PlatformCommercial
		}
		s := s
		t.Run(s.Name, func(t *testing.T) {
			db := testDB(t, core.SnapshotFUW, platform)
			rep, conflicted := runAnomalyScript(t, db, s)
			if !conflicted {
				t.Fatalf("%s did not force a conflict in the dangerous interleaving", s.Name)
			}
			if !rep.Serializable {
				t.Fatalf("%s committed a non-serializable prefix:\n%s", s.Name, rep.Describe())
			}
		})
	}
}

// TestUnsoundSfuOnPostgres: the paper's §II-C point — promoting with
// select-for-update on PostgreSQL does NOT prevent the anomaly, because
// a committed sfu leaves no conflict trace for later writers.
func TestUnsoundSfuOnPostgres(t *testing.T) {
	db := testDB(t, core.SnapshotFUW, core.PlatformPostgres)
	// PromoteWT-sfu: WC sfu-reads Saving. In our script WC performs its
	// reads after TS committed, so the sfu itself fails (FUW)... unless
	// the interleaving is the other order. Use the §II-C order: WC
	// sfu-reads FIRST, commits nothing yet; then TS writes Saving.
	name := CustomerName(0)
	chk := checker.New()
	db.SetObserver(chk)

	wcTx := db.Begin()
	wcTx.SetTag("WC")
	if err := RunWriteCheck(wcTx, StrategyPromoteWTSfu, Params{N1: name, V: 1600}); err != nil {
		t.Fatalf("WC with sfu: %v", err)
	}

	tsTx := db.Begin()
	tsTx.SetTag("TS")
	errc := make(chan error, 1)
	go func() {
		// TS blocks on the sfu lock until WC commits, then (on
		// PostgreSQL) proceeds without error.
		if err := RunTransactSaving(tsTx, StrategyPromoteWTSfu, Params{N1: name, V: 2000}); err != nil {
			tsTx.Abort()
			errc <- err
			return
		}
		errc <- tsTx.Commit()
	}()

	if err := wcTx.Commit(); err != nil {
		t.Fatalf("WC commit: %v", err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("PostgreSQL must allow TS after the sfu holder commits: %v", err)
	}
	// The vulnerable rw edge WC→TS survived: on PostgreSQL sfu promotion
	// is not a serializability fix. (With only two transactions the
	// execution happens to be serializable; the point is that the edge
	// was exercised without any serialization failure.)
}

// TestCommercialSfuPreventsTheEdge: same interleaving on the commercial
// platform must abort TS, because the committed sfu is treated like a
// write.
func TestCommercialSfuPreventsTheEdge(t *testing.T) {
	db := testDB(t, core.SnapshotFUW, core.PlatformCommercial)
	name := CustomerName(0)

	wcTx := db.Begin()
	if err := RunWriteCheck(wcTx, StrategyPromoteWTSfu, Params{N1: name, V: 1600}); err != nil {
		t.Fatalf("WC with sfu: %v", err)
	}

	tsTx := db.Begin()
	errc := make(chan error, 1)
	go func() {
		err := RunTransactSaving(tsTx, StrategyPromoteWTSfu, Params{N1: name, V: 2000})
		if err != nil {
			tsTx.Abort()
			errc <- err
			return
		}
		errc <- tsTx.Commit()
	}()

	if err := wcTx.Commit(); err != nil {
		t.Fatalf("WC commit: %v", err)
	}
	if err := <-errc; !core.IsRetriable(err) {
		t.Fatalf("commercial platform must abort the concurrent writer: %v", err)
	}
}

// TestSSIPreventsAnomalyWithoutModifications: the engine-level extension
// achieves what the strategies do, with no program changes.
func TestSSIPreventsAnomalyWithoutModifications(t *testing.T) {
	db := testDB(t, core.SerializableSI, core.PlatformPostgres)
	rep, conflicted := runAnomalyScript(t, db, StrategySI)
	if !conflicted {
		t.Fatal("SSI must abort part of the dangerous interleaving")
	}
	if !rep.Serializable {
		t.Fatalf("SSI committed a non-serializable prefix:\n%s", rep.Describe())
	}
}

// TestTwoPLPreventsAnomaly: the classic baseline blocks or aborts the
// interleaving.
func TestTwoPLPreventsAnomaly(t *testing.T) {
	// Under 2PL the script's sequential structure would simply block
	// forever at TS (WC holds read locks), so run a bounded variant:
	// TS's attempt must not succeed while WC is active. We use a
	// goroutine and verify TS cannot commit before WC finishes.
	db := testDB(t, core.Strict2PL, core.PlatformPostgres)
	name := CustomerName(0)

	wcTx := db.Begin()
	if err := RunWriteCheck(wcTx, StrategySI, Params{N1: name, V: 1600}); err != nil {
		t.Fatalf("WC under 2PL: %v", err)
	}

	done := make(chan error, 1)
	go func() {
		err := Run(db, StrategySI, TransactSaving, Params{N1: name, V: 2000})
		done <- err
	}()
	select {
	case err := <-done:
		// TS finished while WC held its locks: only acceptable if it
		// was aborted (deadlock victim).
		if err == nil {
			t.Fatal("TS committed while WC held 2PL locks")
		}
	default:
	}
	if err := wcTx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil && !core.IsRetriable(err) {
		t.Fatalf("TS after WC: %v", err)
	}
}

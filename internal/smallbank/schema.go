// Package smallbank implements the paper's §III benchmark: a small
// banking database with customers holding a savings and a checking
// account, five transaction programs (Balance, DepositChecking,
// TransactSaving, Amalgamate, WriteCheck), and the eight
// program-modification strategies of §III-D that guarantee serializable
// execution on snapshot-isolation platforms.
package smallbank

import (
	"fmt"
	"math/rand"

	"sicost/internal/core"
	"sicost/internal/engine"
)

// Table names.
const (
	TableAccount  = "Account"
	TableSaving   = "Saving"
	TableChecking = "Checking"
	// TableConflict is the dedicated materialization table of §II-B; it
	// is "not used elsewhere in the application".
	TableConflict = "Conflict"
)

// AccountSchema is Account(Name, CustomerID): primary key Name, with a
// DBMS-enforced non-null unique constraint on CustomerID (§III-A).
func AccountSchema() *core.Schema {
	return &core.Schema{
		Name: TableAccount,
		Columns: []core.Column{
			{Name: "Name", Kind: core.KindString, NotNull: true},
			{Name: "CustomerID", Kind: core.KindInt, NotNull: true},
		},
		PK:     0,
		Unique: []int{1},
	}
}

// SavingSchema is Saving(CustomerID, Balance).
func SavingSchema() *core.Schema {
	return &core.Schema{
		Name: TableSaving,
		Columns: []core.Column{
			{Name: "CustomerID", Kind: core.KindInt, NotNull: true},
			{Name: "Balance", Kind: core.KindInt, NotNull: true},
		},
		PK: 0,
	}
}

// CheckingSchema is Checking(CustomerID, Balance).
func CheckingSchema() *core.Schema {
	return &core.Schema{
		Name: TableChecking,
		Columns: []core.Column{
			{Name: "CustomerID", Kind: core.KindInt, NotNull: true},
			{Name: "Balance", Kind: core.KindInt, NotNull: true},
		},
		PK: 0,
	}
}

// ConflictSchema is Conflict(Id, Value), initialized with one row per
// customer (plus the fixed row 0 for the single-row ablation) so the
// materialized programs can use a plain UPDATE (§III-D(a)).
func ConflictSchema() *core.Schema {
	return &core.Schema{
		Name: TableConflict,
		Columns: []core.Column{
			{Name: "Id", Kind: core.KindInt, NotNull: true},
			{Name: "Value", Kind: core.KindInt, NotNull: true},
		},
		PK: 0,
	}
}

// CustomerName renders the account name of customer i, the benchmark's
// parameter space.
func CustomerName(i int) string { return fmt.Sprintf("cust%07d", i) }

// FixedConflictID keys the single shared Conflict row used by the
// fixed-row materialization ablation (§II-B's "simplest approach");
// customer ids are non-negative, so -1 never collides.
const FixedConflictID = int64(-1)

// LoadConfig parameterizes the initial database population.
type LoadConfig struct {
	// Customers is the table size; the paper uses 18000.
	Customers int
	// Seed drives the random initial balances.
	Seed int64
	// MinSaving/MaxSaving and MinChecking/MaxChecking bound the initial
	// balances in cents. Zero values select the defaults.
	MinSaving, MaxSaving     int64
	MinChecking, MaxChecking int64
	// BatchSize is the number of customers inserted per load
	// transaction (default 1000).
	BatchSize int
}

func (c *LoadConfig) defaults() {
	if c.Customers == 0 {
		c.Customers = 18000
	}
	if c.MaxSaving == 0 {
		c.MinSaving, c.MaxSaving = 100_00, 500_00
	}
	if c.MaxChecking == 0 {
		c.MinChecking, c.MaxChecking = 50_00, 200_00
	}
	if c.BatchSize == 0 {
		c.BatchSize = 1000
	}
}

// CreateSchema declares the four benchmark tables on db.
func CreateSchema(db *engine.DB) error {
	for _, s := range []*core.Schema{AccountSchema(), SavingSchema(), CheckingSchema(), ConflictSchema()} {
		if err := db.CreateTable(s); err != nil {
			return err
		}
	}
	return nil
}

// Load populates the database: cfg.Customers accounts with randomly
// generated balances (§IV), one Conflict row per customer and the fixed
// Conflict row 0. It returns the total money loaded (savings plus
// checking), which invariant checks use.
func Load(db *engine.DB, cfg LoadConfig) (total int64, err error) {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	// The fixed conflict row for the single-row materialization ablation.
	tx := db.Begin()
	if err := tx.Insert(TableConflict, core.Record{core.Int(FixedConflictID), core.Int(0)}); err != nil {
		tx.Abort()
		return 0, err
	}
	if err := tx.Commit(); err != nil {
		return 0, err
	}

	for start := 0; start < cfg.Customers; start += cfg.BatchSize {
		end := start + cfg.BatchSize
		if end > cfg.Customers {
			end = cfg.Customers
		}
		tx := db.Begin()
		for i := start; i < end; i++ {
			sav := cfg.MinSaving + rng.Int63n(cfg.MaxSaving-cfg.MinSaving+1)
			chk := cfg.MinChecking + rng.Int63n(cfg.MaxChecking-cfg.MinChecking+1)
			total += sav + chk
			id := int64(i)
			if err := tx.Insert(TableAccount, core.Record{core.Str(CustomerName(i)), core.Int(id)}); err != nil {
				tx.Abort()
				return 0, err
			}
			if err := tx.Insert(TableSaving, core.Record{core.Int(id), core.Int(sav)}); err != nil {
				tx.Abort()
				return 0, err
			}
			if err := tx.Insert(TableChecking, core.Record{core.Int(id), core.Int(chk)}); err != nil {
				tx.Abort()
				return 0, err
			}
			if err := tx.Insert(TableConflict, core.Record{core.Int(id), core.Int(0)}); err != nil {
				tx.Abort()
				return 0, err
			}
		}
		if err := tx.Commit(); err != nil {
			return 0, err
		}
	}
	return total, nil
}

// TotalMoney sums every savings and checking balance of the latest
// committed state; used by conservation invariants (WriteCheck's
// overdraft penalty burns money, so tests account for penalties
// explicitly).
func TotalMoney(db *engine.DB) (int64, error) {
	var total int64
	for _, t := range []string{TableSaving, TableChecking} {
		if err := db.ScanLatest(t, func(_ core.Value, rec core.Record) bool {
			total += rec[1].Int64()
			return true
		}); err != nil {
			return 0, err
		}
	}
	return total, nil
}

package smallbank

import (
	"errors"
	"fmt"

	"sicost/internal/core"
	"sicost/internal/engine"
)

// TxnType identifies one of the five benchmark programs.
type TxnType uint8

// The five SmallBank transaction programs (§III-B).
const (
	Balance TxnType = iota
	DepositChecking
	TransactSaving
	Amalgamate
	WriteCheck
	numTxnTypes
)

// NumTxnTypes is the number of transaction programs.
const NumTxnTypes = int(numTxnTypes)

// String names the program the way the paper's figures do.
func (t TxnType) String() string {
	switch t {
	case Balance:
		return "Balance"
	case DepositChecking:
		return "DepositChecking"
	case TransactSaving:
		return "TransactSaving"
	case Amalgamate:
		return "Amalgamate"
	case WriteCheck:
		return "WriteCheck"
	default:
		return fmt.Sprintf("txn(%d)", uint8(t))
	}
}

// Short returns the paper's abbreviation (Bal, DC, TS, Amg, WC).
func (t TxnType) Short() string {
	switch t {
	case Balance:
		return "Bal"
	case DepositChecking:
		return "DC"
	case TransactSaving:
		return "TS"
	case Amalgamate:
		return "Amg"
	case WriteCheck:
		return "WC"
	default:
		return "?"
	}
}

// Params carries a transaction invocation's arguments: customer name(s)
// and an amount in cents.
type Params struct {
	N1, N2 string
	V      int64
}

// lookupCustomer resolves a customer name to its CustomerID via the
// Account table (the "SELECT CustomerId FROM Account WHERE Name=:N" that
// opens every program).
func lookupCustomer(tx *engine.Tx, name string) (int64, error) {
	rec, err := tx.Get(TableAccount, core.Str(name))
	if err != nil {
		if errors.Is(err, core.ErrNotFound) {
			return 0, fmt.Errorf("%w: unknown customer %q", core.ErrRollback, name)
		}
		return 0, err
	}
	return rec[1].Int64(), nil
}

// touchConflict performs the materialization statement
//
//	UPDATE Conflict SET Value = Value+1 WHERE Id = :x
//
// charging the platform's materialization penalty.
func touchConflict(tx *engine.Tx, s *Strategy, cust int64) error {
	id := cust
	if s.FixedConflictRow {
		id = FixedConflictID
	}
	rec, err := tx.Get(TableConflict, core.Int(id))
	if err != nil {
		return err
	}
	tx.Charge(tx.Cost().MaterializeWrite)
	return tx.Update(TableConflict, core.Int(id),
		core.Record{core.Int(id), core.Int(rec[1].Int64() + 1)})
}

// identityUpdate performs the promotion statement
//
//	UPDATE <table> SET Balance = Balance WHERE CustomerID = :x
//
// charging the platform's promotion penalty. The write changes nothing
// but participates fully in write-conflict detection.
func identityUpdate(tx *engine.Tx, table string, cust int64) error {
	rec, err := tx.Get(table, core.Int(cust))
	if err != nil {
		return err
	}
	tx.Charge(tx.Cost().PromoteUpdate)
	return tx.Update(table, core.Int(cust), rec.Clone())
}

// readBalance reads a Balance column, optionally via select-for-update
// (the commercial platform's promotion flavour).
func readBalance(tx *engine.Tx, table string, cust int64, sfu bool) (int64, error) {
	var rec core.Record
	var err error
	if sfu {
		tx.Charge(tx.Cost().SelectForUpdate)
		rec, err = tx.ReadForUpdate(table, core.Int(cust))
	} else {
		rec, err = tx.Get(table, core.Int(cust))
	}
	if err != nil {
		return 0, err
	}
	return rec[1].Int64(), nil
}

// RunBalance executes Bal(N): return the customer's total balance
// (§III-B). Strategy decorations can add identity updates,
// select-for-updates or a Conflict update, turning the naturally
// read-only program into an updater (Table I).
func RunBalance(tx *engine.Tx, s *Strategy, p Params) (int64, error) {
	cust, err := lookupCustomer(tx, p.N1)
	if err != nil {
		return 0, err
	}
	a, err := readBalance(tx, TableSaving, cust, false)
	if err != nil {
		return 0, err
	}
	b, err := readBalance(tx, TableChecking, cust, s.BalSFUChecking)
	if err != nil {
		return 0, err
	}
	if s.BalPromoteSaving {
		if err := identityUpdate(tx, TableSaving, cust); err != nil {
			return 0, err
		}
	}
	if s.BalPromoteChecking {
		if err := identityUpdate(tx, TableChecking, cust); err != nil {
			return 0, err
		}
	}
	if s.BalConflict {
		if err := touchConflict(tx, s, cust); err != nil {
			return 0, err
		}
	}
	return a + b, nil
}

// RunDepositChecking executes DC(N,V): increase the checking balance by
// V; negative amounts and unknown names roll back (§III-B).
func RunDepositChecking(tx *engine.Tx, s *Strategy, p Params) error {
	if p.V < 0 {
		return fmt.Errorf("%w: negative deposit %d", core.ErrRollback, p.V)
	}
	cust, err := lookupCustomer(tx, p.N1)
	if err != nil {
		return err
	}
	bal, err := readBalance(tx, TableChecking, cust, false)
	if err != nil {
		return err
	}
	if err := tx.Update(TableChecking, core.Int(cust),
		core.Record{core.Int(cust), core.Int(bal + p.V)}); err != nil {
		return err
	}
	if s.DCConflict {
		return touchConflict(tx, s, cust)
	}
	return nil
}

// RunTransactSaving executes TS(N,V): add V (possibly negative) to the
// savings balance; a resulting negative balance rolls back (§III-B).
func RunTransactSaving(tx *engine.Tx, s *Strategy, p Params) error {
	cust, err := lookupCustomer(tx, p.N1)
	if err != nil {
		return err
	}
	bal, err := readBalance(tx, TableSaving, cust, false)
	if err != nil {
		return err
	}
	if bal+p.V < 0 {
		return fmt.Errorf("%w: savings balance would be negative (%d%+d)", core.ErrRollback, bal, p.V)
	}
	if err := tx.Update(TableSaving, core.Int(cust),
		core.Record{core.Int(cust), core.Int(bal + p.V)}); err != nil {
		return err
	}
	if s.TSConflict {
		return touchConflict(tx, s, cust)
	}
	return nil
}

// RunAmalgamate executes Amg(N1,N2): move all funds of customer N1 into
// N2's checking account (§III-B).
func RunAmalgamate(tx *engine.Tx, s *Strategy, p Params) error {
	c1, err := lookupCustomer(tx, p.N1)
	if err != nil {
		return err
	}
	c2, err := lookupCustomer(tx, p.N2)
	if err != nil {
		return err
	}
	sav1, err := readBalance(tx, TableSaving, c1, false)
	if err != nil {
		return err
	}
	chk1, err := readBalance(tx, TableChecking, c1, false)
	if err != nil {
		return err
	}
	if err := tx.Update(TableSaving, core.Int(c1), core.Record{core.Int(c1), core.Int(0)}); err != nil {
		return err
	}
	if err := tx.Update(TableChecking, core.Int(c1), core.Record{core.Int(c1), core.Int(0)}); err != nil {
		return err
	}
	chk2, err := readBalance(tx, TableChecking, c2, false)
	if err != nil {
		return err
	}
	if err := tx.Update(TableChecking, core.Int(c2),
		core.Record{core.Int(c2), core.Int(chk2 + sav1 + chk1)}); err != nil {
		return err
	}
	if s.AmgConflict {
		if err := touchConflict(tx, s, c1); err != nil {
			return err
		}
		if err := touchConflict(tx, s, c2); err != nil {
			return err
		}
	}
	return nil
}

// RunWriteCheck executes WC(N,V) exactly as Program 1 of the paper:
// evaluate the total balance, then decrease checking by V — or by V+1
// (a one-cent overdraft penalty) when the total is insufficient.
func RunWriteCheck(tx *engine.Tx, s *Strategy, p Params) error {
	cust, err := lookupCustomer(tx, p.N1)
	if err != nil {
		return err
	}
	a, err := readBalance(tx, TableSaving, cust, s.WCSFUSaving)
	if err != nil {
		return err
	}
	b, err := readBalance(tx, TableChecking, cust, false)
	if err != nil {
		return err
	}
	amount := p.V
	if a+b < p.V {
		amount = p.V + 1 // overdraft penalty
	}
	if err := tx.Update(TableChecking, core.Int(cust),
		core.Record{core.Int(cust), core.Int(b - amount)}); err != nil {
		return err
	}
	if s.WCPromoteSaving {
		if err := identityUpdate(tx, TableSaving, cust); err != nil {
			return err
		}
	}
	if s.WCConflict {
		return touchConflict(tx, s, cust)
	}
	return nil
}

// Run executes one transaction of the given type under the strategy:
// begin, run, commit — aborting on any error. The returned error is nil
// on commit; retriable concurrency failures satisfy core.IsRetriable.
func Run(db *engine.DB, s *Strategy, typ TxnType, p Params) error {
	tx := db.Begin()
	// Abort after completion is a no-op; this deferred rollback exists
	// for injected panics (faultinject.ActPanic), so a program that
	// dies mid-statement still releases its locks while unwinding.
	defer tx.Abort()
	tx.SetTag(typ.Short())
	var err error
	switch typ {
	case Balance:
		_, err = RunBalance(tx, s, p)
	case DepositChecking:
		err = RunDepositChecking(tx, s, p)
	case TransactSaving:
		err = RunTransactSaving(tx, s, p)
	case Amalgamate:
		err = RunAmalgamate(tx, s, p)
	case WriteCheck:
		err = RunWriteCheck(tx, s, p)
	default:
		err = fmt.Errorf("smallbank: unknown transaction type %d", typ)
	}
	if err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

package smallbank

import (
	"fmt"
	"sort"

	"sicost/internal/core"
	"sicost/internal/sdg"
)

// Strategy selects one of the paper's program-modification schemes. The
// boolean fields are the concrete decorations the transaction programs
// apply; the SDG derivation of each strategy lives in SDGPrograms.
type Strategy struct {
	Name string

	// Balance decorations (Option BW and the ALL strategies).
	BalConflict        bool // MaterializeBW / MaterializeALL
	BalPromoteChecking bool // PromoteBW-upd / PromoteALL
	BalPromoteSaving   bool // PromoteALL
	BalSFUChecking     bool // PromoteBW-sfu (commercial only)

	// WriteCheck decorations (Option WT, Option BW and ALL).
	WCConflict      bool // MaterializeWT / MaterializeBW / MaterializeALL
	WCPromoteSaving bool // PromoteWT-upd / PromoteALL
	WCSFUSaving     bool // PromoteWT-sfu (commercial only)

	// Other programs (ALL strategies only).
	TSConflict  bool
	DCConflict  bool
	AmgConflict bool // Amalgamate updates Conflict rows for both customers

	// FixedConflictRow redirects every Conflict update to the single
	// shared row (the §II-B "simplest approach" ablation).
	FixedConflictRow bool
}

// The strategies evaluated in the paper (§III-D, Table I), plus the base
// SI configuration and the fixed-row ablation.
var (
	// StrategySI is unmodified SmallBank: fast but admits
	// non-serializable executions (the dangerous structure Bal→WC→TS).
	StrategySI = &Strategy{Name: "SI"}

	// StrategyMaterializeWT materializes the WriteCheck→TransactSaving
	// edge: Conflict updates in WC and TS.
	StrategyMaterializeWT = &Strategy{Name: "MaterializeWT", WCConflict: true, TSConflict: true}

	// StrategyPromoteWTUpd promotes the WT edge with an identity update
	// on Saving in WriteCheck.
	StrategyPromoteWTUpd = &Strategy{Name: "PromoteWT-upd", WCPromoteSaving: true}

	// StrategyPromoteWTSfu promotes the WT edge by reading Saving with
	// SELECT...FOR UPDATE in WriteCheck (commercial platform only).
	StrategyPromoteWTSfu = &Strategy{Name: "PromoteWT-sfu", WCSFUSaving: true}

	// StrategyMaterializeBW materializes the Balance→WriteCheck edge:
	// Conflict updates in Bal and WC.
	StrategyMaterializeBW = &Strategy{Name: "MaterializeBW", BalConflict: true, WCConflict: true}

	// StrategyPromoteBWUpd promotes the BW edge with an identity update
	// on Checking in Balance.
	StrategyPromoteBWUpd = &Strategy{Name: "PromoteBW-upd", BalPromoteChecking: true}

	// StrategyPromoteBWSfu promotes the BW edge by reading Checking with
	// SELECT...FOR UPDATE in Balance (commercial platform only).
	StrategyPromoteBWSfu = &Strategy{Name: "PromoteBW-sfu", BalSFUChecking: true}

	// StrategyMaterializeALL materializes every vulnerable edge without
	// SDG analysis: a Conflict update in every program, two in
	// Amalgamate.
	StrategyMaterializeALL = &Strategy{
		Name: "MaterializeALL", BalConflict: true, WCConflict: true,
		TSConflict: true, DCConflict: true, AmgConflict: true,
	}

	// StrategyPromoteALL promotes every vulnerable edge: identity
	// updates on Saving and Checking in Balance and on Saving in
	// WriteCheck.
	StrategyPromoteALL = &Strategy{
		Name: "PromoteALL", BalPromoteChecking: true, BalPromoteSaving: true,
		WCPromoteSaving: true,
	}

	// StrategyMaterializeWTFixed is the single-conflict-row ablation of
	// MaterializeWT: correct, but contends on one row for all customers.
	StrategyMaterializeWTFixed = &Strategy{
		Name: "MaterializeWT-fixed", WCConflict: true, TSConflict: true,
		FixedConflictRow: true,
	}
)

// Strategies lists every predefined strategy in presentation order.
func Strategies() []*Strategy {
	return []*Strategy{
		StrategySI,
		StrategyMaterializeWT, StrategyPromoteWTUpd, StrategyPromoteWTSfu,
		StrategyMaterializeBW, StrategyPromoteBWUpd, StrategyPromoteBWSfu,
		StrategyMaterializeALL, StrategyPromoteALL,
		StrategyMaterializeWTFixed,
	}
}

// ByName resolves a strategy by its display name.
func ByName(name string) (*Strategy, error) {
	for _, s := range Strategies() {
		if s.Name == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("smallbank: unknown strategy %q", name)
}

// SoundOn reports whether the strategy guarantees serializable
// executions on the given platform. The sfu promotions rely on
// select-for-update participating in write-conflict detection, which
// PostgreSQL's implementation does not provide (§II-C).
func (s *Strategy) SoundOn(p core.Platform) bool {
	if s == StrategySI || s.Name == "SI" {
		return false // not a serializability guarantee at all
	}
	if s.BalSFUChecking || s.WCSFUSaving {
		return p == core.PlatformCommercial
	}
	return true
}

// GuaranteesSerializable reports whether the strategy is one of the
// repair schemes (anything but plain SI).
func (s *Strategy) GuaranteesSerializable() bool { return s.Name != "SI" }

// ExtraUpdates summarises, per transaction type, which tables receive
// additional updates under this strategy — the rows of the paper's
// Table I. Select-for-update entries are marked "(sfu)".
func (s *Strategy) ExtraUpdates() map[string][]string {
	out := map[string][]string{}
	add := func(txn, table string) { out[txn] = append(out[txn], table) }
	if s.BalConflict {
		add("Bal", "Conf")
	}
	if s.BalPromoteSaving {
		add("Bal", "Sav")
	}
	if s.BalPromoteChecking {
		add("Bal", "Check")
	}
	if s.BalSFUChecking {
		add("Bal", "Check(sfu)")
	}
	if s.WCConflict {
		add("WC", "Conf")
	}
	if s.WCPromoteSaving {
		add("WC", "Sav")
	}
	if s.WCSFUSaving {
		add("WC", "Sav(sfu)")
	}
	if s.TSConflict {
		add("TS", "Conf")
	}
	if s.DCConflict {
		add("DC", "Conf")
	}
	if s.AmgConflict {
		add("Amg", "Conf×2")
	}
	for k := range out {
		sort.Strings(out[k])
	}
	return out
}

// BasePrograms returns the unmodified SmallBank mix in the SDG model,
// exactly as analysed in §III-C / Figure 1.
func BasePrograms() []*sdg.Program {
	bal := &sdg.Program{Name: "Bal", Accesses: []sdg.Access{
		{Table: TableAccount, Cols: []string{"CustomerID"}, Param: "N", Kind: sdg.Read},
		{Table: TableSaving, Cols: []string{"Balance"}, Param: "x", Kind: sdg.Read},
		{Table: TableChecking, Cols: []string{"Balance"}, Param: "x", Kind: sdg.Read},
	}}
	dc := &sdg.Program{Name: "DC", Accesses: []sdg.Access{
		{Table: TableAccount, Cols: []string{"CustomerID"}, Param: "N", Kind: sdg.Read},
		{Table: TableChecking, Cols: []string{"Balance"}, Param: "x", Kind: sdg.Read},
		{Table: TableChecking, Cols: []string{"Balance"}, Param: "x", Kind: sdg.Write},
	}}
	ts := &sdg.Program{Name: "TS", Accesses: []sdg.Access{
		{Table: TableAccount, Cols: []string{"CustomerID"}, Param: "N", Kind: sdg.Read},
		{Table: TableSaving, Cols: []string{"Balance"}, Param: "x", Kind: sdg.Read},
		{Table: TableSaving, Cols: []string{"Balance"}, Param: "x", Kind: sdg.Write},
	}}
	amg := &sdg.Program{Name: "Amg", Accesses: []sdg.Access{
		{Table: TableAccount, Cols: []string{"CustomerID"}, Param: "N1", Kind: sdg.Read},
		{Table: TableAccount, Cols: []string{"CustomerID"}, Param: "N2", Kind: sdg.Read},
		{Table: TableSaving, Cols: []string{"Balance"}, Param: "x1", Kind: sdg.Read},
		{Table: TableChecking, Cols: []string{"Balance"}, Param: "x1", Kind: sdg.Read},
		{Table: TableSaving, Cols: []string{"Balance"}, Param: "x1", Kind: sdg.Write},
		{Table: TableChecking, Cols: []string{"Balance"}, Param: "x1", Kind: sdg.Write},
		{Table: TableChecking, Cols: []string{"Balance"}, Param: "x2", Kind: sdg.Read},
		{Table: TableChecking, Cols: []string{"Balance"}, Param: "x2", Kind: sdg.Write},
	}}
	wc := &sdg.Program{Name: "WC", Accesses: []sdg.Access{
		{Table: TableAccount, Cols: []string{"CustomerID"}, Param: "N", Kind: sdg.Read},
		{Table: TableSaving, Cols: []string{"Balance"}, Param: "x", Kind: sdg.Read},
		{Table: TableChecking, Cols: []string{"Balance"}, Param: "x", Kind: sdg.Read},
		{Table: TableChecking, Cols: []string{"Balance"}, Param: "x", Kind: sdg.Write},
	}}
	return []*sdg.Program{bal, dc, ts, amg, wc}
}

// SDGPrograms derives the strategy's program mix in the SDG model by
// applying the corresponding repair to the base mix. It ties the
// concrete decorations to the theory: tests assert that every strategy's
// derived SDG is safe (and that plain SI's is not).
func (s *Strategy) SDGPrograms() ([]*sdg.Program, error) {
	base := BasePrograms()
	g, err := sdg.New(base...)
	if err != nil {
		return nil, err
	}
	switch s.Name {
	case "SI":
		return base, nil
	case "MaterializeWT":
		out, _, err := sdg.Neutralize(base, g.Edge("WC", "TS"), sdg.Materialize)
		return out, err
	case "PromoteWT-upd":
		out, _, err := sdg.Neutralize(base, g.Edge("WC", "TS"), sdg.PromoteUpdate)
		return out, err
	case "PromoteWT-sfu":
		out, _, err := sdg.Neutralize(base, g.Edge("WC", "TS"), sdg.PromoteSFU)
		return out, err
	case "MaterializeBW":
		out, _, err := sdg.Neutralize(base, g.Edge("Bal", "WC"), sdg.Materialize)
		return out, err
	case "PromoteBW-upd":
		out, _, err := sdg.Neutralize(base, g.Edge("Bal", "WC"), sdg.PromoteUpdate)
		return out, err
	case "PromoteBW-sfu":
		out, _, err := sdg.Neutralize(base, g.Edge("Bal", "WC"), sdg.PromoteSFU)
		return out, err
	case "MaterializeALL":
		out, _, err := sdg.NeutralizeAll(base, sdg.Materialize)
		return out, err
	case "PromoteALL":
		out, _, err := sdg.NeutralizeAll(base, sdg.PromoteUpdate)
		return out, err
	case "MaterializeWT-fixed":
		out, _, err := sdg.MaterializeFixedRow(base, g.Edge("WC", "TS"))
		return out, err
	default:
		return nil, fmt.Errorf("smallbank: no SDG derivation for strategy %q", s.Name)
	}
}

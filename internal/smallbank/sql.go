package smallbank

import (
	"errors"
	"fmt"

	"sicost/internal/core"
	"sicost/internal/engine"
	"sicost/internal/sqlmini"
)

// sql.go implements the five SmallBank programs in the paper's own SQL
// (§III-B; WriteCheck is Program 1 verbatim, modulo the SELECT ... INTO
// variable binding that the session API returns instead), executed
// through the sqlmini front-end. RunSQL is behaviourally identical to
// Run — a test asserts final-state equivalence — and exists so the
// repository contains the benchmark exactly as the paper prints it.
var (
	qLookup = sqlmini.MustParse(
		`SELECT CustomerId FROM Account WHERE Name = :N`)
	qSaving = sqlmini.MustParse(
		`SELECT Balance FROM Saving WHERE CustomerId = :x`)
	qSavingSFU = sqlmini.MustParse(
		`SELECT Balance FROM Saving WHERE CustomerId = :x FOR UPDATE`)
	qChecking = sqlmini.MustParse(
		`SELECT Balance FROM Checking WHERE CustomerId = :x`)
	qCheckingSFU = sqlmini.MustParse(
		`SELECT Balance FROM Checking WHERE CustomerId = :x FOR UPDATE`)

	uCheckingMinusPenalty = sqlmini.MustParse(
		`UPDATE Checking SET Balance = Balance - :V - 1 WHERE CustomerId = :x`)
	uCheckingMinus = sqlmini.MustParse(
		`UPDATE Checking SET Balance = Balance - :V WHERE CustomerId = :x`)
	uCheckingPlus = sqlmini.MustParse(
		`UPDATE Checking SET Balance = Balance + :V WHERE CustomerId = :x`)
	uSavingPlus = sqlmini.MustParse(
		`UPDATE Saving SET Balance = Balance + :V WHERE CustomerId = :x`)
	uSavingZero = sqlmini.MustParse(
		`UPDATE Saving SET Balance = 0 WHERE CustomerId = :x`)
	uCheckingZero = sqlmini.MustParse(
		`UPDATE Checking SET Balance = 0 WHERE CustomerId = :x`)

	// The promotion identity writes (§II-C) and the materialization
	// statement (§II-B), as printed in the paper.
	uSavingIdentity = sqlmini.MustParse(
		`UPDATE Saving SET Balance = Balance WHERE CustomerId = :x`)
	uCheckingIdentity = sqlmini.MustParse(
		`UPDATE Checking SET Balance = Balance WHERE CustomerId = :x`)
	uConflict = sqlmini.MustParse(
		`UPDATE Conflict SET Value = Value + 1 WHERE Id = :x`)
)

// sqlLookup resolves a customer name, mapping not-found to the
// application rollback the paper specifies.
func sqlLookup(sess *sqlmini.Session, name string) (core.Value, error) {
	row, err := sess.QueryOne(qLookup, sqlmini.Params{"N": core.Str(name)})
	if err != nil {
		if errors.Is(err, core.ErrNotFound) {
			return core.Value{}, fmt.Errorf("%w: unknown customer %q", core.ErrRollback, name)
		}
		return core.Value{}, err
	}
	return row[0], nil
}

func sqlConflict(sess *sqlmini.Session, s *Strategy, cust core.Value) error {
	id := cust
	if s.FixedConflictRow {
		id = core.Int(FixedConflictID)
	}
	sess.Tx().Charge(sess.Tx().Cost().MaterializeWrite)
	_, err := sess.Exec(uConflict, sqlmini.Params{"x": id})
	return err
}

func sqlIdentity(sess *sqlmini.Session, stmt *sqlmini.Stmt, cust core.Value) error {
	sess.Tx().Charge(sess.Tx().Cost().PromoteUpdate)
	_, err := sess.Exec(stmt, sqlmini.Params{"x": cust})
	return err
}

func sqlBalanceOf(sess *sqlmini.Session, stmt *sqlmini.Stmt, cust core.Value, sfu bool) (int64, error) {
	if sfu {
		sess.Tx().Charge(sess.Tx().Cost().SelectForUpdate)
	}
	row, err := sess.QueryOne(stmt, sqlmini.Params{"x": cust})
	if err != nil {
		return 0, err
	}
	return row[0].Int64(), nil
}

// sqlBalance is Bal(N) in SQL.
func sqlBalance(sess *sqlmini.Session, s *Strategy, p Params) (int64, error) {
	cust, err := sqlLookup(sess, p.N1)
	if err != nil {
		return 0, err
	}
	a, err := sqlBalanceOf(sess, qSaving, cust, false)
	if err != nil {
		return 0, err
	}
	chkStmt := qChecking
	if s.BalSFUChecking {
		chkStmt = qCheckingSFU
	}
	b, err := sqlBalanceOf(sess, chkStmt, cust, s.BalSFUChecking)
	if err != nil {
		return 0, err
	}
	if s.BalPromoteSaving {
		if err := sqlIdentity(sess, uSavingIdentity, cust); err != nil {
			return 0, err
		}
	}
	if s.BalPromoteChecking {
		if err := sqlIdentity(sess, uCheckingIdentity, cust); err != nil {
			return 0, err
		}
	}
	if s.BalConflict {
		if err := sqlConflict(sess, s, cust); err != nil {
			return 0, err
		}
	}
	return a + b, nil
}

// sqlDepositChecking is DC(N,V) in SQL.
func sqlDepositChecking(sess *sqlmini.Session, s *Strategy, p Params) error {
	if p.V < 0 {
		return fmt.Errorf("%w: negative deposit %d", core.ErrRollback, p.V)
	}
	cust, err := sqlLookup(sess, p.N1)
	if err != nil {
		return err
	}
	if _, err := sess.Exec(uCheckingPlus, sqlmini.Params{"x": cust, "V": core.Int(p.V)}); err != nil {
		return err
	}
	if s.DCConflict {
		return sqlConflict(sess, s, cust)
	}
	return nil
}

// sqlTransactSaving is TS(N,V) in SQL.
func sqlTransactSaving(sess *sqlmini.Session, s *Strategy, p Params) error {
	cust, err := sqlLookup(sess, p.N1)
	if err != nil {
		return err
	}
	bal, err := sqlBalanceOf(sess, qSaving, cust, false)
	if err != nil {
		return err
	}
	if bal+p.V < 0 {
		return fmt.Errorf("%w: savings balance would be negative (%d%+d)", core.ErrRollback, bal, p.V)
	}
	if _, err := sess.Exec(uSavingPlus, sqlmini.Params{"x": cust, "V": core.Int(p.V)}); err != nil {
		return err
	}
	if s.TSConflict {
		return sqlConflict(sess, s, cust)
	}
	return nil
}

// sqlAmalgamate is Amg(N1,N2) in SQL.
func sqlAmalgamate(sess *sqlmini.Session, s *Strategy, p Params) error {
	c1, err := sqlLookup(sess, p.N1)
	if err != nil {
		return err
	}
	c2, err := sqlLookup(sess, p.N2)
	if err != nil {
		return err
	}
	sav1, err := sqlBalanceOf(sess, qSaving, c1, false)
	if err != nil {
		return err
	}
	chk1, err := sqlBalanceOf(sess, qChecking, c1, false)
	if err != nil {
		return err
	}
	if _, err := sess.Exec(uSavingZero, sqlmini.Params{"x": c1}); err != nil {
		return err
	}
	if _, err := sess.Exec(uCheckingZero, sqlmini.Params{"x": c1}); err != nil {
		return err
	}
	if _, err := sess.Exec(uCheckingPlus, sqlmini.Params{"x": c2, "V": core.Int(sav1 + chk1)}); err != nil {
		return err
	}
	if s.AmgConflict {
		if err := sqlConflict(sess, s, c1); err != nil {
			return err
		}
		if err := sqlConflict(sess, s, c2); err != nil {
			return err
		}
	}
	return nil
}

// sqlWriteCheck is WC(N,V) — the paper's Program 1.
func sqlWriteCheck(sess *sqlmini.Session, s *Strategy, p Params) error {
	cust, err := sqlLookup(sess, p.N1)
	if err != nil {
		return err
	}
	savStmt := qSaving
	if s.WCSFUSaving {
		savStmt = qSavingSFU
	}
	a, err := sqlBalanceOf(sess, savStmt, cust, s.WCSFUSaving)
	if err != nil {
		return err
	}
	b, err := sqlBalanceOf(sess, qChecking, cust, false)
	if err != nil {
		return err
	}
	params := sqlmini.Params{"x": cust, "V": core.Int(p.V)}
	if a+b < p.V {
		_, err = sess.Exec(uCheckingMinusPenalty, params)
	} else {
		_, err = sess.Exec(uCheckingMinus, params)
	}
	if err != nil {
		return err
	}
	if s.WCPromoteSaving {
		if err := sqlIdentity(sess, uSavingIdentity, cust); err != nil {
			return err
		}
	}
	if s.WCConflict {
		return sqlConflict(sess, s, cust)
	}
	return nil
}

// RunSQL executes one transaction through the SQL front-end:
// begin, run the program's SQL, commit — aborting on any error. It is
// the SQL-text twin of Run.
func RunSQL(db *engine.DB, s *Strategy, typ TxnType, p Params) error {
	sess := sqlmini.NewSession(db)
	if err := sess.Begin(); err != nil {
		return err
	}
	sess.Tx().SetTag(typ.Short())
	var err error
	switch typ {
	case Balance:
		_, err = sqlBalance(sess, s, p)
	case DepositChecking:
		err = sqlDepositChecking(sess, s, p)
	case TransactSaving:
		err = sqlTransactSaving(sess, s, p)
	case Amalgamate:
		err = sqlAmalgamate(sess, s, p)
	case WriteCheck:
		err = sqlWriteCheck(sess, s, p)
	default:
		err = fmt.Errorf("smallbank: unknown transaction type %d", typ)
	}
	if err != nil {
		sess.Rollback()
		return err
	}
	return sess.Commit()
}

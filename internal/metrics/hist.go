package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"

	"sicost/internal/core"
)

// HistBuckets is the bucket count of Histogram: fixed power-of-two
// boundaries from 1ns up, HDR-style (constant relative error, here one
// significant bit). Bucket i counts durations in [2^i, 2^(i+1)) ns;
// bucket 0 also absorbs sub-nanosecond samples and the last bucket
// absorbs everything above ~1.5 days, so no sample is ever dropped.
const HistBuckets = 48

// Histogram is a concurrent, allocation-free latency histogram with
// fixed log-spaced buckets. Unlike LatencyRecorder (exact samples,
// single-owner), Histogram is safe for concurrent Record from many
// goroutines — every field is atomic — which is what the engine's hot
// paths need: recording is a few atomic adds plus one CAS loop for the
// maximum, and reading is always a consistent-enough Snapshot.
//
// The zero value is ready to use.
type Histogram struct {
	count    atomic.Uint64
	sumNanos atomic.Uint64
	// maxNanos is maintained with a CAS loop so concurrent recorders
	// cannot lose a maximum to a blind store race.
	maxNanos atomic.Int64
	counts   [HistBuckets]atomic.Uint64
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	n := d.Nanoseconds()
	if n < 1 {
		return 0
	}
	b := bits.Len64(uint64(n)) - 1
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// Record adds one duration sample. Safe for concurrent use.
func (h *Histogram) Record(d time.Duration) {
	n := d.Nanoseconds()
	if n < 0 {
		n = 0
	}
	h.count.Add(1)
	h.sumNanos.Add(uint64(n))
	h.counts[bucketOf(d)].Add(1)
	for {
		cur := h.maxNanos.Load()
		if n <= cur || h.maxNanos.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Snapshot returns a point-in-time copy of the histogram. Concurrent
// Records may land between field loads; the snapshot is monotone (each
// counter individually consistent), which is all windowed deltas need.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Count:    h.count.Load(),
		SumNanos: h.sumNanos.Load(),
		MaxNanos: h.maxNanos.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistSnapshot is an immutable copy of a Histogram, diffable between
// run phases (ramp-up vs measurement) via Delta.
type HistSnapshot struct {
	Count    uint64
	SumNanos uint64
	MaxNanos int64
	Counts   [HistBuckets]uint64
}

// Delta returns s minus an earlier snapshot prev, counter-wise. The
// maximum is not diffable; Delta keeps s's maximum, which upper-bounds
// the window's true maximum.
func (s HistSnapshot) Delta(prev HistSnapshot) HistSnapshot {
	d := HistSnapshot{
		Count:    s.Count - prev.Count,
		SumNanos: s.SumNanos - prev.SumNanos,
		MaxNanos: s.MaxNanos,
	}
	for i := range s.Counts {
		d.Counts[i] = s.Counts[i] - prev.Counts[i]
	}
	return d
}

// Mean returns the average sample (0 when empty).
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNanos / s.Count)
}

// Max returns the largest sample seen (0 when empty).
func (s HistSnapshot) Max() time.Duration { return time.Duration(s.MaxNanos) }

// Quantile returns an estimate of the q-quantile (0 ≤ q ≤ 1) by locating
// the bucket containing the target rank and interpolating linearly
// inside it. The estimate's relative error is bounded by the bucket
// width (a factor of two).
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	if rank < 1 {
		rank = 1
	}
	cum := 0.0
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		lo, hi := bucketBounds(i)
		if cum+float64(c) >= rank {
			frac := (rank - cum) / float64(c)
			est := float64(lo) + frac*float64(hi-lo)
			if m := float64(s.MaxNanos); est > m && m > 0 {
				est = m
			}
			return time.Duration(est)
		}
		cum += float64(c)
	}
	return time.Duration(s.MaxNanos)
}

// bucketBounds returns bucket i's [lo, hi) nanosecond range.
func bucketBounds(i int) (lo, hi int64) {
	lo = int64(1) << uint(i)
	if i == 0 {
		lo = 0
	}
	if i >= 62 {
		return lo, math.MaxInt64
	}
	return lo, int64(1) << uint(i+1)
}

// NumAbortReasons sizes the abort-taxonomy counter array: one slot per
// core.AbortReason value (AbortNone..AbortOther).
const NumAbortReasons = int(core.AbortOther) + 1

// AbortCounters counts transaction aborts by taxonomy reason
// (core.ClassifyAbort). Safe for concurrent use.
type AbortCounters struct {
	counts [NumAbortReasons]atomic.Uint64
}

// Inc counts one abort of the given reason; out-of-range reasons are
// folded into AbortOther so no abort is ever unaccounted.
func (a *AbortCounters) Inc(r core.AbortReason) {
	i := int(r)
	if i < 0 || i >= NumAbortReasons {
		i = int(core.AbortOther)
	}
	a.counts[i].Add(1)
}

// Snapshot copies the counters.
func (a *AbortCounters) Snapshot() AbortSnapshot {
	var s AbortSnapshot
	for i := range a.counts {
		s[i] = a.counts[i].Load()
	}
	return s
}

// AbortSnapshot is an immutable abort-taxonomy count vector, indexed by
// core.AbortReason.
type AbortSnapshot [NumAbortReasons]uint64

// Delta returns s minus prev, counter-wise.
func (s AbortSnapshot) Delta(prev AbortSnapshot) AbortSnapshot {
	var d AbortSnapshot
	for i := range s {
		d[i] = s[i] - prev[i]
	}
	return d
}

// Total sums aborts across every reason except AbortNone (which counts
// voluntary rollbacks of transactions that never failed).
func (s AbortSnapshot) Total() uint64 {
	var n uint64
	for i, v := range s {
		if i == int(core.AbortNone) {
			continue
		}
		n += v
	}
	return n
}

// Attributed returns how many aborts carry a specific taxonomy reason —
// everything except AbortNone and AbortOther.
func (s AbortSnapshot) Attributed() uint64 {
	return s.Total() - s[core.AbortOther]
}

// AttributionRate is Attributed/Total (1 when there were no aborts):
// the fraction of aborts the taxonomy explains. The observability story
// (docs/OBSERVABILITY.md) treats ≥0.95 as healthy.
func (s AbortSnapshot) AttributionRate() float64 {
	t := s.Total()
	if t == 0 {
		return 1
	}
	return float64(s.Attributed()) / float64(t)
}

// TxnMetrics bundles the engine-side transaction metrics: commit and
// abort counts by taxonomy reason, the lock-wait time distribution and
// the updating-commit latency distribution. One instance lives in each
// engine.DB; every field is concurrent-safe.
type TxnMetrics struct {
	// Commits counts committed transactions (read-only included).
	Commits atomic.Uint64
	// Aborts is the abort taxonomy (core.ClassifyAbort classes).
	Aborts AbortCounters
	// LockWait is the distribution of row-lock wait times (blocked
	// acquires only; the fast path records nothing).
	LockWait Histogram
	// CommitLatency is the distribution of updating-commit durations
	// (WAL wait + stamping + publication), recorded only while latency
	// metering is enabled (engine.DB.SetMetricsEnabled).
	CommitLatency Histogram
}

// Snapshot copies every counter; snapshots from two phases of a run
// diff with Delta.
func (m *TxnMetrics) Snapshot() TxnSnapshot {
	return TxnSnapshot{
		Commits:       m.Commits.Load(),
		Aborts:        m.Aborts.Snapshot(),
		LockWait:      m.LockWait.Snapshot(),
		CommitLatency: m.CommitLatency.Snapshot(),
	}
}

// TxnSnapshot is an immutable copy of TxnMetrics.
type TxnSnapshot struct {
	Commits       uint64
	Aborts        AbortSnapshot
	LockWait      HistSnapshot
	CommitLatency HistSnapshot
}

// Delta returns s minus an earlier snapshot prev.
func (s TxnSnapshot) Delta(prev TxnSnapshot) TxnSnapshot {
	return TxnSnapshot{
		Commits:       s.Commits - prev.Commits,
		Aborts:        s.Aborts.Delta(prev.Aborts),
		LockWait:      s.LockWait.Delta(prev.LockWait),
		CommitLatency: s.CommitLatency.Delta(prev.CommitLatency),
	}
}

// Package metrics provides the small statistics toolkit the workload
// driver and experiment harness need: latency recording with quantiles,
// and 95% confidence intervals over repeated runs (the paper plots the
// average of five runs with 95% CI error bars).
package metrics

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// LatencyRecorder accumulates durations. It is NOT safe for concurrent
// use: each workload client owns one and they are merged afterwards
// (via Snapshot or Merge, on the merging goroutine, after the owning
// goroutine has finished). Because the single-owner rule is easy to
// break by accident in driver merge code, every entry point carries a
// lightweight misuse detector: overlapping calls from two goroutines
// panic with a clear message instead of silently corrupting samples.
type LatencyRecorder struct {
	busy    int32 // misuse detector; 1 while a call is in progress
	samples []time.Duration
	// maxNanos tracks the largest sample. It is maintained with a CAS
	// loop (not a blind store) and read with an atomic load, so Max is
	// safe to call from a monitoring goroutine while the owner is still
	// recording — the one concurrent access the recorder supports. A
	// plain read-compare-store here raced Snapshot/Merge and could lose
	// the maximum; the CAS loop cannot.
	maxNanos int64
}

// enter/exit bracket every method. The CAS costs two uncontended
// atomic ops in correct single-owner use; on concurrent use exactly
// one of the racing calls panics before touching the sample slice, so
// the detector itself never introduces a data race.
func (r *LatencyRecorder) enter() {
	if !atomic.CompareAndSwapInt32(&r.busy, 0, 1) {
		panic("metrics: concurrent LatencyRecorder use (it is single-owner; merge via Snapshot after the owner finishes)")
	}
}

func (r *LatencyRecorder) exit() { atomic.StoreInt32(&r.busy, 0) }

// Add records one sample.
func (r *LatencyRecorder) Add(d time.Duration) {
	r.enter()
	defer r.exit()
	r.samples = append(r.samples, d)
	r.bumpMax(d.Nanoseconds())
}

// bumpMax raises maxNanos to at least n via CAS, never lowering it.
func (r *LatencyRecorder) bumpMax(n int64) {
	for {
		cur := atomic.LoadInt64(&r.maxNanos)
		if n <= cur || atomic.CompareAndSwapInt64(&r.maxNanos, cur, n) {
			return
		}
	}
}

// Max returns the largest sample recorded so far (0 when empty). Unlike
// the other accessors it takes no ownership bracket: the atomic load
// makes it safe to call concurrently with the owner's Add, so progress
// monitors can poll it live.
func (r *LatencyRecorder) Max() time.Duration {
	return time.Duration(atomic.LoadInt64(&r.maxNanos))
}

// Count returns the number of samples.
func (r *LatencyRecorder) Count() int {
	r.enter()
	defer r.exit()
	return len(r.samples)
}

// Merge appends another recorder's samples. Both recorders must be
// quiescent (their owners finished); merging a recorder into itself is
// misuse and panics.
func (r *LatencyRecorder) Merge(o *LatencyRecorder) {
	r.enter()
	defer r.exit()
	o.enter()
	defer o.exit()
	r.samples = append(r.samples, o.samples...)
	r.bumpMax(atomic.LoadInt64(&o.maxNanos))
}

// Snapshot returns an independent copy of the recorder. It is the safe
// hand-off point for driver merge paths: the owner goroutine finishes,
// the merger snapshots, and the copy can be merged or inspected without
// aliasing the owner's backing array.
func (r *LatencyRecorder) Snapshot() *LatencyRecorder {
	r.enter()
	defer r.exit()
	out := &LatencyRecorder{
		samples:  make([]time.Duration, len(r.samples)),
		maxNanos: atomic.LoadInt64(&r.maxNanos),
	}
	copy(out.samples, r.samples)
	return out
}

// Mean returns the average latency (0 when empty).
func (r *LatencyRecorder) Mean() time.Duration {
	r.enter()
	defer r.exit()
	if len(r.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range r.samples {
		sum += s
	}
	return sum / time.Duration(len(r.samples))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by nearest-rank; 0 when
// empty.
func (r *LatencyRecorder) Quantile(q float64) time.Duration {
	r.enter()
	defer r.exit()
	if len(r.samples) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(r.samples))
	copy(sorted, r.samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Mean returns the arithmetic mean of xs (0 when empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation (0 for fewer than two
// samples).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// tTable95 holds two-sided 95% Student-t critical values by degrees of
// freedom (1-based); beyond the table the normal approximation is used.
var tTable95 = []float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// CI95 returns the mean of xs and the half-width of its 95% confidence
// interval using the Student-t distribution (the paper's error bars).
// With fewer than two samples the half-width is 0.
func CI95(xs []float64) (mean, halfWidth float64) {
	mean = Mean(xs)
	n := len(xs)
	if n < 2 {
		return mean, 0
	}
	df := n - 1
	t := 1.960
	if df <= len(tTable95) {
		t = tTable95[df-1]
	}
	return mean, t * StdDev(xs) / math.Sqrt(float64(n))
}

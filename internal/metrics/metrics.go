// Package metrics provides the small statistics toolkit the workload
// driver and experiment harness need: latency recording with quantiles,
// and 95% confidence intervals over repeated runs (the paper plots the
// average of five runs with 95% CI error bars).
package metrics

import (
	"math"
	"sort"
	"time"
)

// LatencyRecorder accumulates durations. It is NOT safe for concurrent
// use: each workload client owns one and they are merged afterwards.
type LatencyRecorder struct {
	samples []time.Duration
}

// Add records one sample.
func (r *LatencyRecorder) Add(d time.Duration) { r.samples = append(r.samples, d) }

// Count returns the number of samples.
func (r *LatencyRecorder) Count() int { return len(r.samples) }

// Merge appends another recorder's samples.
func (r *LatencyRecorder) Merge(o *LatencyRecorder) {
	r.samples = append(r.samples, o.samples...)
}

// Mean returns the average latency (0 when empty).
func (r *LatencyRecorder) Mean() time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range r.samples {
		sum += s
	}
	return sum / time.Duration(len(r.samples))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by nearest-rank; 0 when
// empty.
func (r *LatencyRecorder) Quantile(q float64) time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(r.samples))
	copy(sorted, r.samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Mean returns the arithmetic mean of xs (0 when empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation (0 for fewer than two
// samples).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// tTable95 holds two-sided 95% Student-t critical values by degrees of
// freedom (1-based); beyond the table the normal approximation is used.
var tTable95 = []float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// CI95 returns the mean of xs and the half-width of its 95% confidence
// interval using the Student-t distribution (the paper's error bars).
// With fewer than two samples the half-width is 0.
func CI95(xs []float64) (mean, halfWidth float64) {
	mean = Mean(xs)
	n := len(xs)
	if n < 2 {
		return mean, 0
	}
	df := n - 1
	t := 1.960
	if df <= len(tTable95) {
		t = tTable95[df-1]
	}
	return mean, t * StdDev(xs) / math.Sqrt(float64(n))
}

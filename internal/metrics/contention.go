package metrics

import "sync/atomic"

// contentionShard is one counter cell, padded out to a cache line so
// that concurrent increments on different shards do not false-share.
// 64 bytes covers every platform the engine targets; the value sits at
// the start of the line.
type contentionShard struct {
	v atomic.Uint64
	_ [56]byte
}

// ContentionCounter is a sharded monotonic counter for hot-path event
// counting under concurrency: each caller increments its own shard (by
// convention the lock-table stripe or worker index), so counting never
// introduces the cross-core contention it is trying to measure. Reads
// (Total, PerShard) sum over shards and are linearizable per shard but
// only approximately consistent across shards — fine for statistics,
// not for synchronization.
type ContentionCounter struct {
	shards []contentionShard
	mask   uint64
}

// NewContentionCounter creates a counter with at least n shards,
// rounded up to a power of two (minimum 1) so shard selection is a
// mask, not a division.
func NewContentionCounter(n int) *ContentionCounter {
	size := 1
	for size < n {
		size <<= 1
	}
	return &ContentionCounter{
		shards: make([]contentionShard, size),
		mask:   uint64(size - 1),
	}
}

// Shards returns the shard count (a power of two).
func (c *ContentionCounter) Shards() int { return len(c.shards) }

// Inc adds 1 to the given shard (wrapped into range by mask).
func (c *ContentionCounter) Inc(shard int) { c.Add(shard, 1) }

// Add adds n to the given shard (wrapped into range by mask).
func (c *ContentionCounter) Add(shard int, n uint64) {
	c.shards[uint64(shard)&c.mask].v.Add(n)
}

// Get returns one shard's value.
func (c *ContentionCounter) Get(shard int) uint64 {
	return c.shards[uint64(shard)&c.mask].v.Load()
}

// Total sums all shards.
func (c *ContentionCounter) Total() uint64 {
	var sum uint64
	for i := range c.shards {
		sum += c.shards[i].v.Load()
	}
	return sum
}

// PerShard returns a snapshot of every shard's value.
func (c *ContentionCounter) PerShard() []uint64 {
	out := make([]uint64, len(c.shards))
	for i := range c.shards {
		out[i] = c.shards[i].v.Load()
	}
	return out
}

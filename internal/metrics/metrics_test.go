package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestLatencyRecorder(t *testing.T) {
	var r LatencyRecorder
	if r.Count() != 0 || r.Mean() != 0 || r.Quantile(0.5) != 0 {
		t.Fatal("empty recorder must be zero-valued")
	}
	for _, d := range []time.Duration{10, 20, 30, 40, 50} {
		r.Add(d * time.Millisecond)
	}
	if r.Count() != 5 {
		t.Fatalf("Count = %d", r.Count())
	}
	if r.Mean() != 30*time.Millisecond {
		t.Fatalf("Mean = %v", r.Mean())
	}
	if got := r.Quantile(0.5); got != 30*time.Millisecond {
		t.Fatalf("median = %v", got)
	}
	if got := r.Quantile(1.0); got != 50*time.Millisecond {
		t.Fatalf("max = %v", got)
	}
	if got := r.Quantile(0.0); got != 10*time.Millisecond {
		t.Fatalf("min = %v", got)
	}

	var other LatencyRecorder
	other.Add(100 * time.Millisecond)
	r.Merge(&other)
	if r.Count() != 6 {
		t.Fatal("merge failed")
	}
}

func TestMeanStdDev(t *testing.T) {
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{5}) != 0 {
		t.Fatal("empty/singleton cases")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v", got)
	}
	// Sample stddev of that classic set is ~2.138.
	if got := StdDev(xs); math.Abs(got-2.138) > 0.01 {
		t.Fatalf("StdDev = %v", got)
	}
}

func TestCI95(t *testing.T) {
	mean, hw := CI95([]float64{10})
	if mean != 10 || hw != 0 {
		t.Fatalf("singleton CI = %v ± %v", mean, hw)
	}
	// Five identical measurements: zero-width interval.
	mean, hw = CI95([]float64{7, 7, 7, 7, 7})
	if mean != 7 || hw != 0 {
		t.Fatalf("constant CI = %v ± %v", mean, hw)
	}
	// n=5 uses t=2.776: CI half-width = t * s / sqrt(5).
	xs := []float64{10, 12, 14, 16, 18}
	mean, hw = CI95(xs)
	if mean != 14 {
		t.Fatalf("mean = %v", mean)
	}
	want := 2.776 * StdDev(xs) / math.Sqrt(5)
	if math.Abs(hw-want) > 1e-9 {
		t.Fatalf("half-width = %v, want %v", hw, want)
	}
	// Large n falls back to the normal value.
	big := make([]float64, 100)
	for i := range big {
		big[i] = float64(i % 10)
	}
	_, hw = CI95(big)
	want = 1.960 * StdDev(big) / 10
	if math.Abs(hw-want) > 1e-9 {
		t.Fatalf("large-n half-width = %v, want %v", hw, want)
	}
}

// Property: the CI always contains the mean, and widening the spread
// never shrinks the interval.
func TestCI95Property(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		mean, hw := CI95(xs)
		if hw < 0 {
			return false
		}
		scaled := make([]float64, len(xs))
		for i, x := range xs {
			scaled[i] = mean + (x-mean)*2
		}
		_, hw2 := CI95(scaled)
		return hw2 >= hw-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var r LatencyRecorder
		for _, v := range raw {
			r.Add(time.Duration(v))
		}
		prev := time.Duration(-1)
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 1} {
			cur := r.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestContentionCounterRounding(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {9, 16}, {64, 64},
	}
	for _, c := range cases {
		if got := NewContentionCounter(c.in).Shards(); got != c.want {
			t.Errorf("NewContentionCounter(%d).Shards() = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestContentionCounterBasics(t *testing.T) {
	c := NewContentionCounter(4)
	c.Inc(0)
	c.Inc(0)
	c.Add(3, 40)
	c.Inc(7) // out-of-range shard wraps by mask (7&3 == 3)
	if got := c.Get(0); got != 2 {
		t.Errorf("Get(0) = %d, want 2", got)
	}
	if got := c.Get(3); got != 41 {
		t.Errorf("Get(3) = %d, want 41", got)
	}
	if got := c.Total(); got != 43 {
		t.Errorf("Total() = %d, want 43", got)
	}
	per := c.PerShard()
	if len(per) != 4 || per[0] != 2 || per[1] != 0 || per[2] != 0 || per[3] != 41 {
		t.Errorf("PerShard() = %v", per)
	}
}

// TestContentionCounterConcurrent increments from many goroutines; the
// total must be exact (atomic shards) and -race must stay silent.
func TestContentionCounterConcurrent(t *testing.T) {
	c := NewContentionCounter(8)
	const (
		workers = 16
		iters   = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc(id % c.Shards())
			}
		}(w)
	}
	wg.Wait()
	if got := c.Total(); got != workers*iters {
		t.Fatalf("Total() = %d, want %d", got, workers*iters)
	}
	sum := uint64(0)
	for _, v := range c.PerShard() {
		sum += v
	}
	if sum != workers*iters {
		t.Fatalf("PerShard sum = %d, want %d", sum, workers*iters)
	}
}

func TestLatencyRecorderSnapshot(t *testing.T) {
	var r LatencyRecorder
	r.Add(10 * time.Millisecond)
	r.Add(30 * time.Millisecond)
	snap := r.Snapshot()
	r.Add(50 * time.Millisecond) // must not leak into the snapshot
	if snap.Count() != 2 {
		t.Fatalf("snapshot Count = %d, want 2", snap.Count())
	}
	if got := snap.Mean(); got != 20*time.Millisecond {
		t.Fatalf("snapshot Mean = %v, want 20ms", got)
	}
	if r.Count() != 3 {
		t.Fatalf("original Count = %d, want 3", r.Count())
	}
}

// TestLatencyRecorderMisuseDetected pins the guard: a recorder observed
// mid-operation (the bug class the single-owner contract forbids)
// panics instead of corrupting its sample slice.
func TestLatencyRecorderMisuseDetected(t *testing.T) {
	var r LatencyRecorder
	r.enter() // simulate another goroutine inside an operation
	defer func() {
		if recover() == nil {
			t.Fatal("concurrent Add did not panic")
		}
	}()
	r.Add(time.Millisecond)
}

// TestLatencyRecorderSelfMergePanics: Merge(r, r) would deadlock or
// double-count in a lock-based design; the guard turns it into a panic.
func TestLatencyRecorderSelfMergePanics(t *testing.T) {
	var r LatencyRecorder
	r.Add(time.Millisecond)
	defer func() {
		if recover() == nil {
			t.Fatal("self-merge did not panic")
		}
	}()
	r.Merge(&r)
}

// TestLatencyRecorderMergeSnapshot is the sanctioned cross-goroutine
// pattern: workers record privately, the coordinator merges snapshots.
func TestLatencyRecorderMergeSnapshot(t *testing.T) {
	var workers [4]LatencyRecorder
	var wg sync.WaitGroup
	for i := range workers {
		wg.Add(1)
		go func(r *LatencyRecorder) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Add(time.Duration(j) * time.Microsecond)
			}
		}(&workers[i])
	}
	wg.Wait()
	var total LatencyRecorder
	for i := range workers {
		total.Merge(workers[i].Snapshot())
	}
	if total.Count() != 400 {
		t.Fatalf("merged Count = %d, want 400", total.Count())
	}
}

package metrics

import (
	"sync"
	"testing"
	"time"

	"sicost/internal/core"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s.Count != 0 || s.Mean() != 0 || s.Quantile(0.99) != 0 || s.Max() != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
	for _, d := range []time.Duration{time.Microsecond, 2 * time.Microsecond, 4 * time.Microsecond, time.Millisecond} {
		h.Record(d)
	}
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d, want 4", s.Count)
	}
	if s.Max() != time.Millisecond {
		t.Fatalf("max = %v, want 1ms", s.Max())
	}
	if m := s.Mean(); m < 200*time.Microsecond || m > 300*time.Microsecond {
		t.Fatalf("mean = %v, want ~251µs", m)
	}
	// The p50 target rank lands in the 2µs bucket; log buckets bound the
	// estimate within a factor of two.
	if q := s.Quantile(0.5); q < time.Microsecond || q > 4*time.Microsecond {
		t.Fatalf("p50 = %v, want within [1µs, 4µs]", q)
	}
	if q := s.Quantile(1.0); q != time.Millisecond {
		t.Fatalf("p100 = %v, want clamped to max 1ms", q)
	}
}

func TestHistogramExtremes(t *testing.T) {
	var h Histogram
	h.Record(-time.Second) // clamped to 0, bucket 0
	h.Record(0)
	h.Record(time.Duration(1) << 62) // beyond the last bucket boundary
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d, want 3", s.Count)
	}
	if s.Counts[0] != 2 || s.Counts[HistBuckets-1] != 1 {
		t.Fatalf("bucket spread wrong: first=%d last=%d", s.Counts[0], s.Counts[HistBuckets-1])
	}
}

func TestHistogramDelta(t *testing.T) {
	var h Histogram
	h.Record(time.Millisecond)
	base := h.Snapshot()
	h.Record(time.Second)
	h.Record(time.Second)
	d := h.Snapshot().Delta(base)
	if d.Count != 2 {
		t.Fatalf("delta count = %d, want 2", d.Count)
	}
	if d.Mean() != time.Second {
		t.Fatalf("delta mean = %v, want 1s", d.Mean())
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	var h Histogram
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(time.Duration(g*per+i) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*per)
	}
	want := time.Duration(goroutines*per-1) * time.Microsecond
	if s.Max() != want {
		t.Fatalf("max = %v, want %v (CAS loop must not lose the maximum)", s.Max(), want)
	}
}

func TestAbortCounters(t *testing.T) {
	var a AbortCounters
	a.Inc(core.AbortSerialization)
	a.Inc(core.AbortSerialization)
	a.Inc(core.AbortDeadlock)
	a.Inc(core.AbortOther)
	a.Inc(core.AbortReason(200)) // out of range folds into AbortOther
	s := a.Snapshot()
	if s[core.AbortSerialization] != 2 || s[core.AbortDeadlock] != 1 || s[core.AbortOther] != 2 {
		t.Fatalf("counts wrong: %+v", s)
	}
	if s.Total() != 5 {
		t.Fatalf("total = %d, want 5", s.Total())
	}
	if s.Attributed() != 3 {
		t.Fatalf("attributed = %d, want 3", s.Attributed())
	}
	if r := s.AttributionRate(); r != 0.6 {
		t.Fatalf("attribution rate = %v, want 0.6", r)
	}
	var empty AbortSnapshot
	if empty.AttributionRate() != 1 {
		t.Fatal("empty attribution rate must be 1")
	}
	d := s.Delta(AbortSnapshot{core.AbortSerialization: 0, core.AbortDeadlock: 0})
	if d != s {
		t.Fatalf("delta against zero changed the vector: %+v", d)
	}
}

func TestTxnMetricsSnapshotDelta(t *testing.T) {
	var m TxnMetrics
	m.Commits.Add(3)
	m.Aborts.Inc(core.AbortWAL)
	m.LockWait.Record(time.Millisecond)
	base := m.Snapshot()
	m.Commits.Add(2)
	m.Aborts.Inc(core.AbortWAL)
	m.CommitLatency.Record(time.Microsecond)
	d := m.Snapshot().Delta(base)
	if d.Commits != 2 || d.Aborts[core.AbortWAL] != 1 || d.LockWait.Count != 0 || d.CommitLatency.Count != 1 {
		t.Fatalf("delta wrong: %+v", d)
	}
}

// TestLatencyRecorderMaxRace is the -race regression test for the
// max-latency accounting: Max must be readable from a monitor goroutine
// while the owner records, and the final maximum must never be lost.
// Before maxNanos was CAS-maintained, a monitor's read raced the
// owner's update and the race detector flagged it (and a racing
// read-modify-write could publish a stale, smaller maximum).
func TestLatencyRecorderMaxRace(t *testing.T) {
	var r LatencyRecorder
	const n = 5000
	done := make(chan struct{})
	go func() { // monitor: polls Max concurrently with the owner's Adds
		defer close(done)
		var last time.Duration
		for i := 0; i < n; i++ {
			m := r.Max()
			if m < last {
				t.Errorf("Max went backwards: %v after %v", m, last)
				return
			}
			last = m
		}
	}()
	for i := 1; i <= n; i++ { // owner goroutine
		r.Add(time.Duration(i))
	}
	<-done
	if r.Max() != time.Duration(n) {
		t.Fatalf("max = %v, want %v", r.Max(), time.Duration(n))
	}
	snap := r.Snapshot()
	if snap.Max() != time.Duration(n) {
		t.Fatalf("snapshot max = %v, want %v", snap.Max(), time.Duration(n))
	}
	var merged LatencyRecorder
	merged.Add(7 * time.Nanosecond)
	merged.Merge(snap)
	if merged.Max() != time.Duration(n) {
		t.Fatalf("merged max = %v, want %v", merged.Max(), time.Duration(n))
	}
}

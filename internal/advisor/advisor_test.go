package advisor

import (
	"strings"
	"testing"
	"time"

	"sicost/internal/core"
	"sicost/internal/engine"
	"sicost/internal/sdg"
	"sicost/internal/simres"
	"sicost/internal/smallbank"
)

func smallBankWeights(balFrac float64) map[string]float64 {
	rest := (1 - balFrac) / 4
	return map[string]float64{
		"Bal": balFrac, "DC": rest, "TS": rest, "Amg": rest, "WC": rest,
	}
}

// The platform profiles mirror internal/experiments/profiles.go; they
// are duplicated here because experiments imports this package.
func postgresPlatform() Platform {
	return Platform{
		Name: core.PlatformPostgres,
		Res: simres.Config{
			VirtualCPUs: 1,
			TxnCPU:      300 * time.Microsecond,
			StmtCPU:     40 * time.Microsecond,
		},
		Fsync: 2500 * time.Microsecond,
		Cost:  engine.DefaultCostModel(core.PlatformPostgres),
	}
}

func commercialPlatform() Platform {
	return Platform{
		Name: core.PlatformCommercial,
		Res: simres.Config{
			VirtualCPUs:      1,
			TxnCPU:           300 * time.Microsecond,
			StmtCPU:          50 * time.Microsecond,
			UpdaterCommitCPU: 400 * time.Microsecond,
			SessionKnee:      20,
			SessionOverhead:  55 * time.Microsecond,
		},
		Fsync: 2500 * time.Microsecond,
		Cost:  engine.DefaultCostModel(core.PlatformCommercial),
	}
}

func standardWorkload(mpl int) Workload {
	return Workload{
		Weights:     smallBankWeights(0.2),
		HotspotSize: 1000, HotspotProb: 0.9,
		MPL: mpl,
	}
}

func TestPredictBasics(t *testing.T) {
	base := smallbank.BasePrograms()
	w := standardWorkload(20)
	p := Predict(base, nil, w, postgresPlatform())
	if p.TPS <= 0 {
		t.Fatal("no throughput predicted")
	}
	// 4 of 5 programs write.
	if p.UpdaterFraction < 0.79 || p.UpdaterFraction > 0.81 {
		t.Fatalf("updater fraction = %v", p.UpdaterFraction)
	}
	// At MPL 1 throughput is response-time-bound and far below MPL 20.
	low := Predict(base, nil, standardWorkload(1), postgresPlatform())
	if low.TPS >= p.TPS {
		t.Fatalf("MPL1 %v >= MPL20 %v", low.TPS, p.TPS)
	}
	// The MPL=1 prediction should be in the ballpark of the measured
	// engine (~300-350 TPS with the same profile).
	if low.TPS < 150 || low.TPS > 600 {
		t.Fatalf("MPL1 prediction %v implausible", low.TPS)
	}
}

func TestPredictBWBeatsNothingAtMPL1(t *testing.T) {
	// The model must reproduce the paper's §IV-D result: turning
	// Balance into an updater costs ~20% at MPL 1.
	base := smallbank.BasePrograms()
	g := sdg.MustNew(base...)
	bw, mods, err := sdg.Neutralize(base, g.Edge("Bal", "WC"), sdg.PromoteUpdate)
	if err != nil {
		t.Fatal(err)
	}
	w := standardWorkload(1)
	plat := postgresPlatform()
	basePred := Predict(base, nil, w, plat)
	bwPred := Predict(bw, mods, w, plat)
	rel := bwPred.TPS / basePred.TPS
	if rel < 0.7 || rel > 0.92 {
		t.Fatalf("PromoteBW at MPL1 predicted at %.0f%% of SI, want ~80%%", 100*rel)
	}

	// Option WT keeps Balance read-only: nearly free at MPL 1.
	wt, modsWT, err := sdg.Neutralize(base, g.Edge("WC", "TS"), sdg.PromoteUpdate)
	if err != nil {
		t.Fatal(err)
	}
	wtPred := Predict(wt, modsWT, w, plat)
	if wtPred.TPS/basePred.TPS < 0.95 {
		t.Fatalf("PromoteWT at MPL1 predicted at %.0f%% of SI, want ~100%%", 100*wtPred.TPS/basePred.TPS)
	}
}

func TestAdviseRanksWTFirstOnPostgres(t *testing.T) {
	preds, err := Advise(smallbank.BasePrograms(), standardWorkload(20), postgresPlatform())
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) < 4 {
		t.Fatalf("options = %d", len(preds))
	}
	// The paper's guidelines: repair WT rather than BW, promote rather
	// than materialize on PostgreSQL. The top-ranked sound option must
	// be the WT promotion.
	top := preds[0]
	if !top.Sound {
		t.Fatal("top option must be sound")
	}
	if !strings.Contains(top.Option.Name, "WC->TS") || top.Option.Technique != sdg.PromoteUpdate {
		t.Fatalf("top option = %s (%s), want WC->TS promote-upd", top.Option.Name, top.Option.Technique)
	}
	// The ALL strategies must rank below the corresponding targeted
	// repair.
	rank := map[string]int{}
	for i, p := range preds {
		rank[p.Option.Name] = i
	}
	if rank["all:materialize"] < rank["WC->TS:materialize"] {
		t.Fatal("MaterializeALL ranked above MaterializeWT")
	}
	if rank["all:promote-upd"] < rank["WC->TS:promote-upd"] {
		t.Fatal("PromoteALL ranked above PromoteWT")
	}
}

func TestAdviseSfuSoundnessPerPlatform(t *testing.T) {
	pg, err := Advise(smallbank.BasePrograms(), standardWorkload(20), postgresPlatform())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pg {
		if p.Option.Technique == sdg.PromoteSFU && p.Sound {
			t.Fatal("sfu promotion marked sound on PostgreSQL")
		}
	}
	cm, err := Advise(smallbank.BasePrograms(), standardWorkload(20), commercialPlatform())
	if err != nil {
		t.Fatal(err)
	}
	foundSfu := false
	for _, p := range cm {
		if p.Option.Technique == sdg.PromoteSFU {
			foundSfu = true
			if !p.Sound {
				t.Fatal("sfu promotion must be sound on the commercial platform")
			}
		}
	}
	if !foundSfu {
		t.Fatal("no sfu option enumerated")
	}
	// Guideline 4 reversal: on the commercial platform the materialized
	// WT repair must outrank the promoted-update WT repair.
	rank := map[string]int{}
	for i, p := range cm {
		rank[p.Option.Name] = i
	}
	if rank["WC->TS:materialize"] > rank["WC->TS:promote-upd"] {
		t.Fatal("commercial platform must favour materialization over promote-upd")
	}
}

func TestAdviseHighContentionPenalizesMaterializedHotRows(t *testing.T) {
	// At hotspot 10 with 60% Balance, repairs that put writes into
	// Balance (BW) must be predicted well below WT repairs.
	w := Workload{
		Weights:     smallBankWeights(0.6),
		HotspotSize: 10, HotspotProb: 0.9, MPL: 20,
	}
	preds, err := Advise(smallbank.BasePrograms(), w, postgresPlatform())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Prediction{}
	for _, p := range preds {
		byName[p.Option.Name] = p
	}
	wt := byName["WC->TS:promote-upd"]
	bw := byName["Bal->WC:materialize"]
	if wt.TPS == 0 || bw.TPS == 0 {
		t.Fatalf("options missing: %+v", preds)
	}
	if bw.TPS >= wt.TPS {
		t.Fatalf("high contention: BW (%v) predicted >= WT (%v)", bw.TPS, wt.TPS)
	}
	if bw.AbortWaste <= wt.AbortWaste {
		t.Fatalf("BW waste %v <= WT waste %v", bw.AbortWaste, wt.AbortWaste)
	}
}

func TestAdviseSafeMixRejected(t *testing.T) {
	progs, _, err := sdg.NeutralizeAll(smallbank.BasePrograms(), sdg.PromoteUpdate)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Advise(progs, standardWorkload(10), postgresPlatform()); err == nil {
		t.Fatal("safe mix must be rejected")
	}
}

func TestRender(t *testing.T) {
	preds, err := Advise(smallbank.BasePrograms(), standardWorkload(20), postgresPlatform())
	if err != nil {
		t.Fatal(err)
	}
	out := Render(preds)
	for _, want := range []string{"option", "pred. TPS", "WC->TS", "all:materialize"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFixedRowCollisionsDominates(t *testing.T) {
	// The fixed-row materialization must be predicted to waste far more
	// than the per-customer row under contention.
	base := smallbank.BasePrograms()
	g := sdg.MustNew(base...)
	perCust, modsA, err := sdg.Neutralize(base, g.Edge("WC", "TS"), sdg.Materialize)
	if err != nil {
		t.Fatal(err)
	}
	fixed, modsB, err := sdg.MaterializeFixedRow(base, g.Edge("WC", "TS"))
	if err != nil {
		t.Fatal(err)
	}
	w := Workload{Weights: smallBankWeights(0.2), HotspotSize: 10, HotspotProb: 0.9, MPL: 20}
	plat := postgresPlatform()
	a := Predict(perCust, modsA, w, plat)
	b := Predict(fixed, modsB, w, plat)
	if b.TPS >= a.TPS {
		t.Fatalf("fixed row (%v) predicted >= per-customer (%v)", b.TPS, a.TPS)
	}
	if b.AbortWaste <= a.AbortWaste {
		t.Fatalf("fixed-row waste %v <= per-customer %v", b.AbortWaste, a.AbortWaste)
	}
}

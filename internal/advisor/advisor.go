// Package advisor implements the tool the paper's conclusion asks for:
//
//	"In future work, we intend to develop a performance model that can
//	 predict the impact of different mechanisms; we especially hope for
//	 a tool that can suggest which vulnerable edges to deal with, for
//	 least impact on performance."
//
// Given a program mix (in the SDG model), the workload shape (mix
// weights, hotspot, MPL) and a platform profile (the same cost model the
// simulated engine charges), the advisor enumerates the repair options —
// each minimal fix set × each applicable technique, plus the
// no-analysis ALL strategies — predicts the throughput of each with a
// first-order analytic model, and ranks them.
//
// The model is deliberately simple and fully documented:
//
//	service time  S_p = TxnCPU + |accesses_p|·StmtCPU + Σ penalties
//	updater tax   U_p = UpdaterCommitCPU            (if p writes)
//	wal wait      W_p = 1.5·Fsync                   (if p writes; group
//	                                                 commit amortizes
//	                                                 the device, not
//	                                                 the wait)
//	R0   = Σ_p w_p (S_p + U_p + W_p)                (response, no queue)
//	Xcap = 1 / Σ_p w_p (S_p + U_p)                  (one virtual CPU)
//	X(m) = min(m / R0, Xcap) · (1 − waste(m))
//
// where waste(m) accounts for aborted work from write-write collisions
// on the hotspot (First-Updater-Wins aborts plus retries). Predictions
// are for *ranking* repair options; the validation experiment
// (ablation-advisor) compares the predicted ordering against measured
// throughput.
package advisor

import (
	"fmt"
	"sort"
	"time"

	"sicost/internal/core"
	"sicost/internal/engine"
	"sicost/internal/sdg"
	"sicost/internal/simres"
)

// Workload describes the offered load.
type Workload struct {
	// Weights maps program name → fraction of transactions (must sum
	// to ~1 over the mix).
	Weights map[string]float64
	// HotspotSize and HotspotProb shape data contention as in the
	// benchmark driver (90% of transactions on H customers).
	HotspotSize int
	HotspotProb float64
	// MPL is the multiprogramming level the prediction targets.
	MPL int
}

// Platform carries the cost profile the engine charges.
type Platform struct {
	Name  core.Platform
	Res   simres.Config
	Fsync time.Duration
	Cost  engine.CostModel
}

// Option is one candidate repair.
type Option struct {
	// Name identifies the option ("WC->TS:promote-upd", "all:materialize").
	Name string
	// Technique applied.
	Technique sdg.Technique
	// Programs is the repaired mix; Mods the added statements.
	Programs []*sdg.Program
	Mods     []sdg.Modification
}

// Prediction is the model's verdict on one option.
type Prediction struct {
	Option Option
	// TPS is the predicted throughput at the workload's MPL.
	TPS float64
	// RelativeToBase is TPS divided by the unmodified mix's predicted
	// TPS at the same MPL.
	RelativeToBase float64
	// UpdaterFraction is the predicted share of transactions that must
	// write (and therefore wait for the log).
	UpdaterFraction float64
	// AbortWaste is the predicted fraction of work lost to
	// serialization aborts and retries.
	AbortWaste float64
	// Sound is false when the technique does not guarantee
	// serializability on this platform (sfu promotion on PostgreSQL).
	Sound bool
}

// programCost computes the per-transaction costs of one program.
func programCost(p *sdg.Program, mods []sdg.Modification, plat Platform) (service, updaterTax, walWait time.Duration) {
	service = plat.Res.TxnCPU + time.Duration(len(p.Accesses))*plat.Res.StmtCPU
	for _, m := range mods {
		if m.Program != p.Name {
			continue
		}
		switch m.Technique {
		case sdg.Materialize:
			service += plat.Cost.MaterializeWrite
		case sdg.PromoteUpdate:
			service += plat.Cost.PromoteUpdate
		case sdg.PromoteSFU:
			service += plat.Cost.SelectForUpdate
		}
	}
	if !p.ReadOnly() {
		updaterTax = plat.Res.UpdaterCommitCPU
		// Group commit amortizes the device across committers but each
		// committer still waits ~1–2 flush intervals; 1.5 is the mean
		// for a random arrival against a busy flusher.
		walWait = time.Duration(1.5 * float64(plat.Fsync))
	}
	return service, updaterTax, walWait
}

// collisionRate estimates, for one transaction of program P, the
// expected number of concurrent transactions holding a write-write
// conflict with it (the FUW abort driver). Two instances collide when
// they write a common table with parameters that can coincide — on the
// hotspot that happens with probability hotProb²/H per pair (or 1 for a
// shared fixed row).
func collisionRate(p *sdg.Program, progs map[string]*sdg.Program, w Workload) float64 {
	if w.HotspotSize <= 0 {
		return 0
	}
	perPair := w.HotspotProb * w.HotspotProb / float64(w.HotspotSize)
	rate := 0.0
	for qName, weight := range w.Weights {
		q := progs[qName]
		if q == nil {
			continue
		}
		pairProb := 0.0
		for _, wp := range p.Writes() {
			for _, wq := range q.Writes() {
				if wp.Table != wq.Table {
					continue
				}
				if wp.Fixed && wq.Fixed {
					if wp.Param == wq.Param {
						pairProb = 1 // shared fixed row: always collide
					}
					continue
				}
				if pairProb < perPair {
					pairProb = perPair
				}
			}
		}
		rate += weight * pairProb
	}
	return rate
}

// Predict evaluates the model for one program mix.
func Predict(progs []*sdg.Program, mods []sdg.Modification, w Workload, plat Platform) Prediction {
	byName := make(map[string]*sdg.Program, len(progs))
	for _, p := range progs {
		byName[p.Name] = p
	}
	var r0, cpu float64 // seconds
	updFrac := 0.0
	for name, weight := range w.Weights {
		p := byName[name]
		if p == nil {
			continue
		}
		s, u, wl := programCost(p, mods, plat)
		r0 += weight * (s + u + wl).Seconds()
		cpu += weight * (s + u).Seconds()
		if !p.ReadOnly() {
			updFrac += weight
		}
	}
	if cpu <= 0 || r0 <= 0 {
		return Prediction{}
	}
	x := float64(w.MPL) / r0
	if cap := 1.0 / cpu; x > cap {
		x = cap
	}
	// Abort waste: each in-flight transaction sees ~(MPL−1) concurrent
	// peers over its response time; every ww collision forces one abort
	// and retry, wasting roughly one service time.
	waste := 0.0
	for name, weight := range w.Weights {
		p := byName[name]
		if p == nil || p.ReadOnly() {
			continue
		}
		waste += weight * collisionRate(p, byName, w) * float64(w.MPL-1)
	}
	if waste > 0.9 {
		waste = 0.9
	}
	x *= 1 - waste
	return Prediction{TPS: x, UpdaterFraction: updFrac, AbortWaste: waste}
}

// Advise enumerates repair options for the mix and ranks them by
// predicted throughput at the workload's MPL (descending). The base
// (unrepaired) mix's prediction anchors RelativeToBase.
func Advise(base []*sdg.Program, w Workload, plat Platform) ([]Prediction, error) {
	g, err := sdg.New(base...)
	if err != nil {
		return nil, err
	}
	basePred := Predict(base, nil, w, plat)
	if g.IsSafe() {
		return nil, fmt.Errorf("advisor: the mix is already SI-safe; nothing to repair")
	}

	var out []Prediction
	techniques := []sdg.Technique{sdg.Materialize, sdg.PromoteUpdate, sdg.PromoteSFU}

	addOption := func(name string, tech sdg.Technique, progs []*sdg.Program, mods []sdg.Modification) {
		pred := Predict(progs, mods, w, plat)
		pred.Option = Option{Name: name, Technique: tech, Programs: progs, Mods: mods}
		pred.Sound = tech.SoundOn(plat.Name)
		if basePred.TPS > 0 {
			pred.RelativeToBase = pred.TPS / basePred.TPS
		}
		out = append(out, pred)
	}

	for _, fixSet := range g.MinimalFixSets() {
		for _, tech := range techniques {
			progs := base
			var allMods []sdg.Modification
			ok := true
			for _, edgeID := range fixSet {
				gg, err := sdg.New(progs...)
				if err != nil {
					return nil, err
				}
				var edge *sdg.Edge
				for _, e := range gg.Edges() {
					if e.ID() == edgeID {
						edge = e
						break
					}
				}
				if edge == nil {
					ok = false
					break
				}
				next, mods, err := sdg.Neutralize(progs, edge, tech)
				if err != nil {
					ok = false // e.g. promotion vs predicate read
					break
				}
				progs = next
				allMods = append(allMods, mods...)
			}
			if !ok {
				continue
			}
			name := fmt.Sprintf("%s:%s", joinIDs(fixSet), tech)
			addOption(name, tech, progs, allMods)
		}
	}

	// The no-analysis ALL strategies, for comparison.
	for _, tech := range []sdg.Technique{sdg.Materialize, sdg.PromoteUpdate} {
		progs, mods, err := sdg.NeutralizeAll(base, tech)
		if err != nil {
			continue
		}
		addOption(fmt.Sprintf("all:%s", tech), tech, progs, mods)
	}

	sort.SliceStable(out, func(i, j int) bool {
		// Sound options first, then by predicted TPS.
		if out[i].Sound != out[j].Sound {
			return out[i].Sound
		}
		return out[i].TPS > out[j].TPS
	})
	return out, nil
}

func joinIDs(ids []string) string {
	s := ""
	for i, id := range ids {
		if i > 0 {
			s += "+"
		}
		s += id
	}
	return s
}

// Render formats a ranked advice list.
func Render(preds []Prediction) string {
	s := fmt.Sprintf("%-34s %-6s %10s %8s %9s %7s\n",
		"option", "sound", "pred. TPS", "vs base", "updaters", "waste")
	for _, p := range preds {
		s += fmt.Sprintf("%-34s %-6v %10.0f %7.0f%% %8.0f%% %6.1f%%\n",
			p.Option.Name, p.Sound, p.TPS, 100*p.RelativeToBase,
			100*p.UpdaterFraction, 100*p.AbortWaste)
	}
	return s
}

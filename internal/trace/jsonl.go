package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"sicost/internal/core"
)

// jsonEvent is the JSONL wire form of an Event: stable field names,
// enums as strings, zero-valued fields omitted. One event per line.
type jsonEvent struct {
	TS     int64    `json:"ts"`
	Tx     uint64   `json:"tx,omitempty"`
	Kind   string   `json:"kind"`
	Table  string   `json:"table,omitempty"`
	Key    *jsonKey `json:"key,omitempty"`
	CSN    uint64   `json:"csn,omitempty"`
	Depth  int      `json:"depth,omitempty"`
	WaitNS int64    `json:"wait_ns,omitempty"`
	Reason string   `json:"reason,omitempty"`
	Bytes  int      `json:"bytes,omitempty"`
}

// jsonKey is the wire form of a core.Value key: exactly one of the
// fields is set (a NULL key is encoded as an absent "key").
type jsonKey struct {
	Int *int64  `json:"int,omitempty"`
	Str *string `json:"str,omitempty"`
}

// kindByName inverts kindNames for parsing.
var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, len(kindNames))
	for i, n := range kindNames {
		m[n] = Kind(i)
	}
	return m
}()

// conflictByName inverts conflictNames for parsing.
var conflictByName = func() map[string]uint8 {
	m := make(map[string]uint8, len(conflictNames))
	for i, n := range conflictNames {
		m[n] = uint8(i)
	}
	return m
}()

// abortByName maps core.AbortReason wire names back to their values.
var abortByName = func() map[string]core.AbortReason {
	m := make(map[string]core.AbortReason)
	for r := core.AbortNone; r <= core.AbortOther; r++ {
		m[r.String()] = r
	}
	return m
}()

// MarshalEvent encodes one event as a single JSON line (no trailing
// newline).
func MarshalEvent(ev Event) ([]byte, error) {
	if int(ev.Kind) >= len(kindNames) {
		return nil, fmt.Errorf("trace: cannot marshal unknown kind %d", ev.Kind)
	}
	je := jsonEvent{
		TS:     ev.TS,
		Tx:     ev.Tx,
		Kind:   ev.Kind.String(),
		Table:  ev.Table,
		CSN:    ev.CSN,
		Depth:  ev.Depth,
		WaitNS: ev.WaitNS,
		Bytes:  ev.Bytes,
	}
	switch ev.Key.K {
	case core.KindInt:
		i := ev.Key.I
		je.Key = &jsonKey{Int: &i}
	case core.KindString:
		s := ev.Key.S
		je.Key = &jsonKey{Str: &s}
	}
	switch ev.Kind {
	case EvAbort, EvLockWake:
		je.Reason = core.AbortReason(ev.Reason).String()
	case EvConflict:
		je.Reason = ConflictName(ev.Reason)
	}
	return json.Marshal(je)
}

// UnmarshalEvent decodes one JSON line produced by MarshalEvent. Unknown
// kind or reason names are errors — the schema is closed, which is what
// lets Validate promise that every abort reason is in the taxonomy.
func UnmarshalEvent(line []byte) (Event, error) {
	var je jsonEvent
	if err := json.Unmarshal(line, &je); err != nil {
		return Event{}, fmt.Errorf("trace: bad event line: %w", err)
	}
	kind, ok := kindByName[je.Kind]
	if !ok {
		return Event{}, fmt.Errorf("trace: unknown event kind %q", je.Kind)
	}
	ev := Event{
		TS:     je.TS,
		Tx:     je.Tx,
		Kind:   kind,
		Table:  je.Table,
		CSN:    je.CSN,
		Depth:  je.Depth,
		WaitNS: je.WaitNS,
		Bytes:  je.Bytes,
	}
	if je.Key != nil {
		switch {
		case je.Key.Int != nil:
			ev.Key = core.Int(*je.Key.Int)
		case je.Key.Str != nil:
			ev.Key = core.Str(*je.Key.Str)
		}
	}
	if je.Reason != "" {
		switch kind {
		case EvAbort, EvLockWake:
			r, ok := abortByName[je.Reason]
			if !ok {
				return Event{}, fmt.Errorf("trace: abort reason %q not in taxonomy", je.Reason)
			}
			ev.Reason = uint8(r)
		case EvConflict:
			c, ok := conflictByName[je.Reason]
			if !ok {
				return Event{}, fmt.Errorf("trace: unknown conflict cause %q", je.Reason)
			}
			ev.Reason = c
		default:
			return Event{}, fmt.Errorf("trace: %s event cannot carry reason %q", kind, je.Reason)
		}
	}
	return ev, nil
}

// WriteJSONL streams events to w, one JSON object per line — the
// format behind cmd/smallbank's -trace flag.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	for i := range events {
		line, err := MarshalEvent(events[i])
		if err != nil {
			return err
		}
		if _, err := bw.Write(line); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseJSONL reads a JSONL event stream back. Blank lines are skipped;
// any malformed line fails the parse with its line number.
func ParseJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var out []Event
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		ev, err := UnmarshalEvent(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading JSONL: %w", err)
	}
	return out, nil
}

// Package trace is the transaction-lifecycle event recorder: a
// low-overhead, lock-free, ring-buffered capture of everything that
// happens to a transaction — begin, snapshot acquisition, per-table-key
// reads and writes, lock waits with queue depth, conflict detection,
// aborts with their taxonomy reason, and commits with their CSN — with
// monotonic timestamps, flushed on demand to a central collector.
//
// Design constraints, in order:
//
//  1. Disabled tracing costs one atomic load (plus a nil test) on the
//     hot path: every emission site is `if rec.Enabled() { rec.Emit(…) }`
//     and Enabled on a nil or disabled recorder does no other work.
//  2. Enabled tracing never blocks a transaction: events go into
//     bounded lock-free rings (Vyukov MPMC queues), sharded by
//     transaction id so concurrent producers rarely contend on a CAS;
//     a full shard drops the event and counts the drop rather than
//     stalling the engine.
//  3. The collector (Drain) merges the shards and orders events by
//     timestamp, yielding one coherent stream for the JSONL dump
//     (WriteJSONL), the invariant validator (Validate) and the detsim
//     replay hint (detsim.ReplayTrace).
//
// Timestamps are monotonic nanoseconds since the recorder's epoch by
// default; deterministic consumers (the golden-file schema test)
// install a logical clock via Options.Clock.
package trace

import (
	"sort"
	"sync/atomic"
	"time"

	"sicost/internal/core"
)

// Kind identifies a lifecycle event type.
type Kind uint8

// Lifecycle event kinds, in the order they can occur within one
// transaction.
const (
	// EvBegin: a transaction started. CSN carries the snapshot it reads
	// from (the newest published commit at begin time).
	EvBegin Kind = iota
	// EvSnapshot: the snapshot point itself — emitted with EvBegin in
	// this engine (snapshot acquisition is one atomic load inside
	// Begin) but kept distinct so engines with deferred snapshots can
	// reuse the schema.
	EvSnapshot
	// EvRead: a point read (Get/GetByIndex) of Table/Key, emitted at
	// statement start (before any 2PL shared-lock wait) so each
	// transaction's event order equals its statement dispatch order.
	EvRead
	// EvWrite: a write access (Update/Insert/Delete) to Table/Key,
	// emitted before the row lock is taken so the event order matches
	// dispatch order even when the write blocks.
	EvWrite
	// EvSFU: SELECT ... FOR UPDATE on Table/Key, emitted like EvWrite.
	EvSFU
	// EvLockWait: the transaction queued on the row lock of Table/Key.
	// Depth is the wait-queue length at the moment of blocking
	// (excluding this waiter).
	EvLockWait
	// EvLockWake: the queued request resolved. WaitNS is the blocked
	// time; Reason is AbortNone for a grant, or the abort class of the
	// ejection error (deadlock victim, lock timeout, eviction by
	// ReleaseAll).
	EvLockWake
	// EvConflict: concurrency control detected a conflict that dooms
	// the statement. Reason is a Conflict* cause.
	EvConflict
	// EvAbort: the transaction rolled back. Reason is the
	// core.ClassifyAbort class of the terminating error, or AbortNone
	// for a voluntary rollback.
	EvAbort
	// EvCommit: the transaction committed. CSN is the commit sequence
	// number (for read-only transactions, the snapshot they logically
	// committed at).
	EvCommit
	// EvWALCommit: an updating commit enqueued its commit record on the
	// simulated log device. Bytes is the record payload.
	EvWALCommit
	// EvWALFlush: the log device completed one group-commit write. Tx
	// is zero; Depth is the number of commit records acknowledged and
	// Bytes their total payload.
	EvWALFlush
	// EvCheckpoint: the engine wrote a checkpoint frame, truncating the
	// log. Tx is zero; CSN is the snapshot cut and Bytes the encoded
	// frame size.
	EvCheckpoint
	// EvRecovery: a database was rebuilt from a log device. Tx is zero;
	// CSN is the recovered high-water mark, Depth the number of commit
	// frames replayed and Bytes the valid log prefix length.
	EvRecovery
	// EvReadVer: the version actually read by a point read of Table/Key —
	// CSN is the commit sequence number of that version (0 for rows
	// created before tracing was enabled). Unlike EvRead (statement
	// start), this is emitted after visibility resolution and skips reads
	// of the transaction's own writes, so a transaction's read-ver events
	// are exactly its dependency-relevant read set (engine.TxInfo.Reads).
	// Appended after the device-level kinds to keep their wire values
	// stable; within a transaction it occurs between begin and commit.
	EvReadVer
	// EvWriteVer: one committed version created by the transaction on
	// Table/Key, CSN = the commit CSN. Emitted inside Commit after the
	// CSN is allocated, one event per written row, before EvCommit —
	// unlike EvWrite (statement start), which over-approximates the
	// write set (a statement can fail without dooming the transaction).
	// The write-ver events are exactly engine.TxInfo.Writes.
	EvWriteVer
	// EvCkptBegin: a fuzzy incremental checkpoint opened its delta link.
	// Tx is zero; CSN is the begin cut (the chain link's CSN) and Depth
	// the number of dirty keys the link will stream. Appended after
	// EvWriteVer to keep earlier wire values stable.
	EvCkptBegin
	// EvCkptEnd: the delta link's end marker is durable. Tx is zero; CSN
	// is the cut, Depth the chain length including this link, Bytes the
	// total encoded size of the link's frames.
	EvCkptEnd

	numKinds
)

// kindNames is the JSONL wire name of each kind; Validate rejects
// anything else.
var kindNames = [numKinds]string{
	"begin", "snapshot", "read", "write", "sfu",
	"lock-wait", "lock-wake", "conflict", "abort", "commit",
	"wal-commit", "wal-flush", "checkpoint", "recovery",
	"read-ver", "write-ver", "ckpt-begin", "ckpt-end",
}

// NumKinds returns the number of defined event kinds. Consumers that
// must tolerate streams from newer schemas (the online checker) compare
// Kind values against it instead of panicking on unknowns.
func NumKinds() int { return int(numKinds) }

// String returns the wire name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Conflict causes carried in EvConflict.Reason: which concurrency-control
// rule detected the conflict.
const (
	// ConflictFUW: First-Updater-Wins — the newest committed version of
	// the target row postdates the writer's snapshot.
	ConflictFUW uint8 = iota
	// ConflictSFUCommit: commercial-platform semantics — a concurrent
	// committed SELECT FOR UPDATE counts as a write against this writer.
	ConflictSFUCommit
	// ConflictSSI: serializable SI aborted a dangerous rw-antidependency
	// structure (this transaction was the pivot or read/wrote into one).
	ConflictSSI

	numConflicts
)

// conflictNames is the JSONL wire name of each conflict cause.
var conflictNames = [numConflicts]string{"fuw", "sfu-commit", "ssi"}

// ConflictName returns the wire name of a conflict cause.
func ConflictName(c uint8) string {
	if int(c) < len(conflictNames) {
		return conflictNames[c]
	}
	return "unknown"
}

// Event is one recorded lifecycle event. Unused fields are zero; the
// JSONL encoding omits them. Events are plain values — safe to copy,
// sort and batch.
type Event struct {
	// TS is the event timestamp: monotonic nanoseconds since the
	// recorder's epoch (or a logical counter under a custom clock).
	TS int64
	// Tx is the engine transaction id (0 for device-level events).
	Tx uint64
	// Kind is the event type.
	Kind Kind
	// Table and Key name the row for data and lock events.
	Table string
	Key   core.Value
	// CSN is the snapshot CSN (EvBegin/EvSnapshot) or commit CSN
	// (EvCommit).
	CSN uint64
	// Depth is the lock queue depth (EvLockWait) or the flush-group
	// size (EvWALFlush).
	Depth int
	// WaitNS is the blocked time in nanoseconds (EvLockWake).
	WaitNS int64
	// Reason is kind-dependent: a core.AbortReason for
	// EvAbort/EvLockWake, a Conflict* cause for EvConflict.
	Reason uint8
	// Bytes is the WAL payload size (EvWALCommit, EvWALFlush).
	Bytes int
}

// DefaultShards is the recorder's shard count: enough that concurrent
// clients rarely collide on one ring's tail CAS.
const DefaultShards = 16

// DefaultShardCap is each shard's ring capacity. 16 shards × 64k events
// ≈ one million buffered events (~100 MB-scale runs flush between
// phases; cmd/smallbank drains once at the end).
const DefaultShardCap = 1 << 16

// Options configures a Recorder.
type Options struct {
	// Shards is the ring count (rounded up to a power of two); 0 means
	// DefaultShards.
	Shards int
	// ShardCap is each ring's capacity (rounded up to a power of two);
	// 0 means DefaultShardCap.
	ShardCap int
	// Clock, when non-nil, replaces the monotonic wall clock — the
	// deterministic tests install an atomic counter so event streams
	// are bit-identical across runs.
	Clock func() int64
	// Disabled creates the recorder switched off (SetEnabled turns it
	// on later); by default New returns an enabled recorder.
	Disabled bool
}

// Recorder collects lifecycle events. Emission is concurrent-safe and
// non-blocking; Drain is the single-consumer flush point. A nil
// *Recorder is a valid always-disabled recorder, which is how the
// engine compiles tracing down to a pointer test when unused.
type Recorder struct {
	enabled atomic.Bool
	epoch   time.Time
	clock   func() int64
	shards  []*ring
	mask    uint64
	dropped atomic.Uint64
}

// New creates a Recorder.
func New(opts Options) *Recorder {
	n := opts.Shards
	if n <= 0 {
		n = DefaultShards
	}
	size := 1
	for size < n {
		size <<= 1
	}
	capacity := opts.ShardCap
	if capacity <= 0 {
		capacity = DefaultShardCap
	}
	r := &Recorder{
		epoch:  time.Now(),
		clock:  opts.Clock,
		shards: make([]*ring, size),
		mask:   uint64(size - 1),
	}
	for i := range r.shards {
		r.shards[i] = newRing(capacity)
	}
	r.enabled.Store(!opts.Disabled)
	return r
}

// Enabled reports whether events should be emitted. This is the hot-path
// guard: a nil receiver or a disabled recorder costs one pointer test
// plus one atomic load, nothing else.
func (r *Recorder) Enabled() bool {
	return r != nil && r.enabled.Load()
}

// SetEnabled flips event capture on or off. Emissions racing the flip
// may or may not be recorded; the switch itself is always safe.
func (r *Recorder) SetEnabled(on bool) {
	if r != nil {
		r.enabled.Store(on)
	}
}

// now returns the next timestamp.
func (r *Recorder) now() int64 {
	if r.clock != nil {
		return r.clock()
	}
	return int64(time.Since(r.epoch))
}

// Emit records one event, stamping TS if the caller left it zero. The
// shard is chosen by transaction id, so one transaction's events are
// FIFO within their shard even under timestamp ties. Emit never blocks:
// a full shard counts a drop instead.
func (r *Recorder) Emit(ev Event) {
	if !r.Enabled() {
		return
	}
	if ev.TS == 0 {
		ev.TS = r.now()
	}
	if !r.shards[ev.Tx&r.mask].push(ev) {
		r.dropped.Add(1)
	}
}

// Dropped returns how many events were discarded because their shard's
// ring was full. A non-zero value means the trace has gaps; Validate
// relaxes its pairing invariants accordingly only if the caller asks.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped.Load()
}

// Drain flushes every shard into one timestamp-ordered slice and leaves
// the rings empty. It is the central collector: call it between run
// phases (the per-phase diff) or once at the end. Drain is not
// concurrent-safe against itself; producers may keep emitting, and
// their in-flight events simply land in the next drain.
func (r *Recorder) Drain() []Event {
	if r == nil {
		return nil
	}
	// Take a consistent cut before popping anything: snapshot every
	// shard's occupancy first, then collect at most that much from each.
	// Popping shard by shard to exhaustion instead would admit events
	// emitted *during* the drain into late shards but not early ones —
	// a skew of whole scheduler quanta on a busy box — and a subscriber
	// deriving a watermark from the stream (the online checker) would
	// see transactions whose begin made the cut but whose commit did
	// not, pinning its window to the skew. The cut loop is a handful of
	// atomic loads; events racing it land in the next drain.
	counts := make([]int, len(r.shards))
	total := 0
	for i, s := range r.shards {
		counts[i] = int(s.tail.Load() - s.head.Load())
		total += counts[i]
	}
	out := make([]Event, 0, total)
	for i, s := range r.shards {
		for n := counts[i]; n > 0; n-- {
			ev, ok := s.pop()
			if !ok {
				// A producer claimed a ticket inside the cut but has not
				// published the event yet; it belongs to the next drain.
				break
			}
			out = append(out, ev)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out
}

// CounterClock returns a Clock producing 1, 2, 3, … — a deterministic
// logical clock for reproducible event streams (safe for concurrent
// use; in concurrent runs it provides uniqueness, not global order).
func CounterClock() func() int64 {
	var c atomic.Int64
	return func() int64 { return c.Add(1) }
}

package trace

import (
	"sync"
	"time"
)

// DefaultSubInterval is how often a Subscription drains the recorder
// when the caller does not choose an interval: fast enough that the
// rings never approach capacity under the stress workloads, slow
// enough that an idle subscription costs nothing measurable.
const DefaultSubInterval = time.Millisecond

// SubOptions configures a Subscription.
type SubOptions struct {
	// Interval is the pump period (0 means DefaultSubInterval).
	Interval time.Duration
	// Retain additionally accumulates every delivered event, so a
	// caller that also wants the full stream (e.g. cmd/smallbank
	// -trace alongside -check) can fetch it with Events after Close —
	// a subscription otherwise consumes the recorder's rings.
	Retain bool
}

// Subscription pumps a Recorder's rings into a sink on a background
// goroutine, turning the pull-style Drain into a live event feed. It
// takes over the single-consumer role: while a subscription is open,
// nothing else may call Drain on the recorder.
//
// Delivery contract, which the online checker's retirement rule leans
// on:
//
//   - each sink call receives one complete drain pass, timestamp-sorted,
//     with per-transaction FIFO order preserved (one transaction's
//     events share a shard);
//   - an Emit that returned before a pass started is delivered by that
//     pass — so any transaction still unseen after pass P began after
//     pass P-1's events were published.
//
// The sink runs on the pump goroutine; it must not call back into the
// subscription (except Flush from another goroutine, which serializes
// through the same mutex).
type Subscription struct {
	rec      *Recorder
	sink     func([]Event)
	interval time.Duration

	// mu serializes drain passes (the ticker loop, Flush and the final
	// Close pass) — Drain itself is single-consumer.
	mu       sync.Mutex
	retain   bool
	retained []Event
	closed   bool

	stop chan struct{}
	done chan struct{}
}

// Subscribe attaches sink to rec and starts the pump. Close it to stop
// pumping and deliver the final drain. A nil recorder yields a
// subscription whose pump never delivers anything (Close is still
// valid), mirroring the nil-Recorder convention.
func Subscribe(rec *Recorder, sink func([]Event), opts SubOptions) *Subscription {
	s := &Subscription{
		rec:      rec,
		sink:     sink,
		interval: opts.Interval,
		retain:   opts.Retain,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if s.interval <= 0 {
		s.interval = DefaultSubInterval
	}
	go s.loop()
	return s
}

// loop is the pump goroutine: drain on a ticker until stopped.
func (s *Subscription) loop() {
	defer close(s.done)
	tick := time.NewTicker(s.interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			s.Flush()
		case <-s.stop:
			return
		}
	}
}

// Flush synchronously runs one drain pass and delivers it to the sink
// (also the deterministic tests' way to force delivery without waiting
// for the ticker). Safe to call concurrently with the pump; passes are
// serialized. Flushing a closed subscription is a no-op.
func (s *Subscription) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
}

func (s *Subscription) flushLocked() {
	if s.closed || s.rec == nil {
		return
	}
	evs := s.rec.Drain()
	if s.retain {
		s.retained = append(s.retained, evs...)
	}
	// Deliver even empty passes: the pass boundary itself is information
	// (the online checker advances its retirement watermark on it).
	s.sink(evs)
}

// Close stops the pump, runs one final drain pass (so events emitted
// before Close are delivered) and returns. Idempotent.
func (s *Subscription) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return
	}
	s.flushLocked()
	s.closed = true
	s.mu.Unlock()
	close(s.stop)
	<-s.done
}

// Events returns the retained stream (SubOptions.Retain), in delivery
// order. Call after Close; calling earlier returns a snapshot of what
// has been delivered so far.
func (s *Subscription) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.retained))
	copy(out, s.retained)
	return out
}

package trace

import "sync/atomic"

// cell is one slot of the bounded ring. seq is the slot's turn number in
// the Vyukov MPMC protocol: a slot is writable by the producer holding
// ticket t when seq == t, and readable by the consumer holding ticket t
// when seq == t+1.
type cell struct {
	seq atomic.Uint64
	ev  Event
}

// ring is a bounded lock-free multi-producer queue (Dmitry Vyukov's
// MPMC array queue, consume side used single-threaded by Drain). A full
// ring rejects the enqueue instead of blocking or overwriting — event
// recording must never stall a transaction's hot path — and the
// recorder counts the drop.
type ring struct {
	mask  uint64
	cells []cell
	// head and tail are padded apart so producers and the consumer do
	// not false-share a cache line.
	_    [56]byte
	tail atomic.Uint64 // next ticket to produce
	_    [56]byte
	head atomic.Uint64 // next ticket to consume
}

// newRing creates a ring with capacity cap (rounded up to a power of
// two, minimum 2).
func newRing(capacity int) *ring {
	size := 2
	for size < capacity {
		size <<= 1
	}
	r := &ring{mask: uint64(size - 1), cells: make([]cell, size)}
	for i := range r.cells {
		r.cells[i].seq.Store(uint64(i))
	}
	return r
}

// push enqueues ev; it reports false when the ring is full.
func (r *ring) push(ev Event) bool {
	for {
		pos := r.tail.Load()
		c := &r.cells[pos&r.mask]
		seq := c.seq.Load()
		switch {
		case seq == pos:
			if r.tail.CompareAndSwap(pos, pos+1) {
				c.ev = ev
				c.seq.Store(pos + 1)
				return true
			}
		case seq < pos:
			// The slot still holds an unconsumed event from mask+1
			// tickets ago: the ring is full.
			return false
		}
		// seq > pos: another producer advanced tail; retry with a fresh
		// ticket.
	}
}

// pop dequeues the oldest event; ok is false when the ring is empty.
// Drain is the only consumer, but the protocol is safe even if two
// drains raced.
func (r *ring) pop() (ev Event, ok bool) {
	for {
		pos := r.head.Load()
		c := &r.cells[pos&r.mask]
		seq := c.seq.Load()
		switch {
		case seq == pos+1:
			if r.head.CompareAndSwap(pos, pos+1) {
				ev = c.ev
				c.seq.Store(pos + r.mask + 1)
				return ev, true
			}
		case seq < pos+1:
			return Event{}, false
		}
	}
}

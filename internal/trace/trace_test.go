package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"sicost/internal/core"
)

func TestRingFIFOAndFull(t *testing.T) {
	r := newRing(4)
	for i := 0; i < 4; i++ {
		if !r.push(Event{TS: int64(i + 1)}) {
			t.Fatalf("push %d rejected on non-full ring", i)
		}
	}
	if r.push(Event{TS: 99}) {
		t.Fatal("push accepted on full ring (drop-newest policy broken)")
	}
	for i := 0; i < 4; i++ {
		ev, ok := r.pop()
		if !ok || ev.TS != int64(i+1) {
			t.Fatalf("pop %d = (%v, %v), want TS %d", i, ev.TS, ok, i+1)
		}
	}
	if _, ok := r.pop(); ok {
		t.Fatal("pop on empty ring returned an event")
	}
	// Wrap around: slots must be reusable after consumption.
	if !r.push(Event{TS: 42}) {
		t.Fatal("push rejected after drain")
	}
	if ev, ok := r.pop(); !ok || ev.TS != 42 {
		t.Fatalf("wrap-around pop = (%v, %v)", ev.TS, ok)
	}
}

func TestRingConcurrentPush(t *testing.T) {
	r := newRing(1 << 12)
	const producers, per = 8, 400
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if !r.push(Event{TS: int64(p*per + i + 1)}) {
					t.Errorf("push rejected below capacity")
					return
				}
			}
		}(p)
	}
	wg.Wait()
	seen := make(map[int64]bool)
	for {
		ev, ok := r.pop()
		if !ok {
			break
		}
		if seen[ev.TS] {
			t.Fatalf("duplicate event TS %d", ev.TS)
		}
		seen[ev.TS] = true
	}
	if len(seen) != producers*per {
		t.Fatalf("drained %d events, want %d", len(seen), producers*per)
	}
}

func TestRecorderDisabledAndNil(t *testing.T) {
	var nilRec *Recorder
	if nilRec.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	nilRec.Emit(Event{Kind: EvBegin, Tx: 1}) // must not panic
	nilRec.SetEnabled(true)                  // must not panic
	if got := nilRec.Drain(); got != nil {
		t.Fatalf("nil drain = %v", got)
	}
	if nilRec.Dropped() != 0 {
		t.Fatal("nil dropped != 0")
	}

	r := New(Options{Disabled: true, Clock: CounterClock()})
	r.Emit(Event{Kind: EvBegin, Tx: 1})
	if evs := r.Drain(); len(evs) != 0 {
		t.Fatalf("disabled recorder captured %d events", len(evs))
	}
	r.SetEnabled(true)
	r.Emit(Event{Kind: EvBegin, Tx: 1})
	if evs := r.Drain(); len(evs) != 1 {
		t.Fatalf("enabled recorder captured %d events, want 1", len(evs))
	}
}

func TestRecorderDrainOrdersAndStamps(t *testing.T) {
	r := New(Options{Shards: 4, ShardCap: 16, Clock: CounterClock()})
	// Different tx ids land in different shards; Drain must merge by TS.
	for tx := uint64(1); tx <= 6; tx++ {
		r.Emit(Event{Kind: EvBegin, Tx: tx})
	}
	for tx := uint64(1); tx <= 6; tx++ {
		r.Emit(Event{Kind: EvCommit, Tx: tx, CSN: tx})
	}
	evs := r.Drain()
	if len(evs) != 12 {
		t.Fatalf("drained %d events, want 12", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].TS < evs[i-1].TS {
			t.Fatalf("events out of TS order at %d: %d after %d", i, evs[i].TS, evs[i-1].TS)
		}
	}
	for i, ev := range evs {
		if ev.TS != int64(i+1) {
			t.Fatalf("event %d stamped TS %d, want %d", i, ev.TS, i+1)
		}
	}
	if evs[0].Kind != EvBegin || evs[11].Kind != EvCommit {
		t.Fatalf("merge order wrong: first=%s last=%s", evs[0].Kind, evs[11].Kind)
	}
	// Drain leaves the rings empty.
	if evs := r.Drain(); len(evs) != 0 {
		t.Fatalf("second drain returned %d events", len(evs))
	}
}

func TestRecorderDropsWhenFull(t *testing.T) {
	r := New(Options{Shards: 1, ShardCap: 4, Clock: CounterClock()})
	for i := 0; i < 10; i++ {
		r.Emit(Event{Kind: EvRead, Tx: 1})
	}
	if d := r.Dropped(); d != 6 {
		t.Fatalf("dropped = %d, want 6", d)
	}
	if evs := r.Drain(); len(evs) != 4 {
		t.Fatalf("kept %d events, want 4 (oldest-first)", len(evs))
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	events := []Event{
		{TS: 1, Tx: 7, Kind: EvBegin, CSN: 12},
		{TS: 2, Tx: 7, Kind: EvSnapshot, CSN: 12},
		{TS: 3, Tx: 7, Kind: EvRead, Table: "checking", Key: core.Int(42), Depth: 3},
		{TS: 4, Tx: 7, Kind: EvWrite, Table: "checking", Key: core.Str("alice")},
		{TS: 5, Tx: 7, Kind: EvSFU, Table: "savings", Key: core.Int(9)},
		{TS: 6, Tx: 7, Kind: EvLockWait, Table: "checking", Key: core.Int(42), Depth: 2},
		{TS: 7, Tx: 7, Kind: EvLockWake, Table: "checking", Key: core.Int(42), WaitNS: 1500, Reason: uint8(core.AbortNone)},
		{TS: 8, Tx: 7, Kind: EvConflict, Table: "checking", Key: core.Int(42), Reason: ConflictFUW},
		{TS: 9, Tx: 7, Kind: EvAbort, Reason: uint8(core.AbortSerialization)},
		{TS: 10, Tx: 8, Kind: EvBegin, CSN: 12},
		{TS: 11, Tx: 8, Kind: EvCommit, CSN: 13},
		{TS: 12, Tx: 8, Kind: EvWALCommit, Bytes: 96},
		{TS: 13, Kind: EvWALFlush, Depth: 2, Bytes: 192},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ParseJSONL(&buf)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(got) != len(events) {
		t.Fatalf("round trip length %d, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d round trip mismatch:\n got %+v\nwant %+v", i, got[i], events[i])
		}
	}
}

func TestJSONLRejectsBadInput(t *testing.T) {
	for _, bad := range []string{
		`{"ts":1,"kind":"teleport"}`,
		`{"ts":1,"tx":1,"kind":"abort","reason":"cosmic-rays"}`,
		`{"ts":1,"tx":1,"kind":"conflict","reason":"vibes"}`,
		`{"ts":1,"tx":1,"kind":"read","reason":"fuw"}`,
		`{not json}`,
	} {
		if _, err := ParseJSONL(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseJSONL accepted %s", bad)
		}
	}
}

// validStream is a minimal stream satisfying every invariant.
func validStream() []Event {
	return []Event{
		{TS: 1, Tx: 1, Kind: EvBegin, CSN: 5},
		{TS: 2, Tx: 1, Kind: EvWrite, Table: "t", Key: core.Int(1)},
		{TS: 3, Tx: 2, Kind: EvBegin, CSN: 5},
		{TS: 4, Tx: 2, Kind: EvWrite, Table: "t", Key: core.Int(1)},
		{TS: 5, Tx: 2, Kind: EvLockWait, Table: "t", Key: core.Int(1), Depth: 0},
		{TS: 6, Tx: 1, Kind: EvCommit, CSN: 6},
		{TS: 7, Tx: 2, Kind: EvLockWake, Table: "t", Key: core.Int(1), WaitNS: 100},
		{TS: 8, Tx: 2, Kind: EvConflict, Table: "t", Key: core.Int(1), Reason: ConflictFUW},
		{TS: 9, Tx: 2, Kind: EvAbort, Reason: uint8(core.AbortSerialization)},
		{TS: 10, Kind: EvWALFlush, Depth: 1, Bytes: 64},
	}
}

func TestValidateAcceptsValidStream(t *testing.T) {
	if err := Validate(validStream()); err != nil {
		t.Fatalf("valid stream rejected: %v", err)
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	cases := map[string][]Event{
		"commit without begin": {
			{TS: 1, Tx: 1, Kind: EvCommit, CSN: 2},
		},
		"event after terminal": {
			{TS: 1, Tx: 1, Kind: EvBegin},
			{TS: 2, Tx: 1, Kind: EvCommit, CSN: 2},
			{TS: 3, Tx: 1, Kind: EvRead, Table: "t", Key: core.Int(1)},
		},
		"double begin": {
			{TS: 1, Tx: 1, Kind: EvBegin},
			{TS: 2, Tx: 1, Kind: EvBegin},
		},
		"commit and abort": {
			{TS: 1, Tx: 1, Kind: EvBegin},
			{TS: 2, Tx: 1, Kind: EvCommit, CSN: 2},
			{TS: 3, Tx: 1, Kind: EvAbort},
		},
		"wake without wait": {
			{TS: 1, Tx: 1, Kind: EvBegin},
			{TS: 2, Tx: 1, Kind: EvLockWake, Table: "t", Key: core.Int(1)},
		},
		"wait never woke": {
			{TS: 1, Tx: 1, Kind: EvBegin},
			{TS: 2, Tx: 1, Kind: EvLockWait, Table: "t", Key: core.Int(1)},
		},
		"abort reason out of taxonomy": {
			{TS: 1, Tx: 1, Kind: EvBegin},
			{TS: 2, Tx: 1, Kind: EvAbort, Reason: 200},
		},
		"conflict cause unknown": {
			{TS: 1, Tx: 1, Kind: EvBegin},
			{TS: 2, Tx: 1, Kind: EvConflict, Reason: 77},
		},
		"tx-scoped event with tx 0": {
			{TS: 1, Tx: 0, Kind: EvBegin},
		},
		"negative wait": {
			{TS: 1, Tx: 1, Kind: EvBegin},
			{TS: 2, Tx: 1, Kind: EvLockWake, WaitNS: -1},
		},
	}
	for name, evs := range cases {
		if err := Validate(evs); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// AllowGaps relaxes pairing but not schema checks.
	gappy := []Event{{TS: 1, Tx: 1, Kind: EvCommit, CSN: 2}}
	if err := ValidateWith(gappy, ValidateOptions{AllowGaps: true}); err != nil {
		t.Errorf("AllowGaps still rejected unpaired commit: %v", err)
	}
	bad := []Event{{TS: 1, Tx: 1, Kind: EvAbort, Reason: 200}}
	if err := ValidateWith(bad, ValidateOptions{AllowGaps: true}); err == nil {
		t.Error("AllowGaps accepted an out-of-taxonomy reason")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(validStream())
	if s.Events != 10 || s.TxBegun != 2 || s.TxCommitted != 1 || s.TxAborted != 1 {
		t.Fatalf("summary wrong: %+v", s)
	}
	if s.AbortReasons["serialization"] != 1 {
		t.Fatalf("abort reasons wrong: %+v", s.AbortReasons)
	}
	if s.Conflicts["fuw"] != 1 {
		t.Fatalf("conflicts wrong: %+v", s.Conflicts)
	}
	if str := s.String(); !strings.Contains(str, "serialization=1") || !strings.Contains(str, "begun=2") {
		t.Fatalf("summary string missing fields: %q", str)
	}
}

func BenchmarkEmitDisabled(b *testing.B) {
	r := New(Options{Disabled: true})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Emit(Event{Kind: EvRead, Tx: uint64(i)})
	}
}

func BenchmarkEmitEnabled(b *testing.B) {
	r := New(Options{ShardCap: 1 << 10})
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		tx := uint64(0)
		for pb.Next() {
			tx++
			r.Emit(Event{Kind: EvRead, Tx: tx, Table: "t", Key: core.Int(int64(tx))})
			if tx%512 == 0 {
				// keep the rings from saturating so the benchmark
				// measures push, not drop
				b.StopTimer()
				r.Drain()
				b.StartTimer()
			}
		}
	})
}

// TestJSONLAbortReasonsGolden pins the abort-reason wire format: every
// reason in the taxonomy round-trips, and the exact JSONL lines for the
// newest reasons are frozen as goldens. The wire format carries names,
// not ordinals, so renumbering the in-memory enum can never corrupt
// archived traces — but renaming a reason (or emitting one this parser
// rejects, which would make cmd/tracecheck refuse live engine output)
// must fail here first.
func TestJSONLAbortReasonsGolden(t *testing.T) {
	var events []Event
	for r := core.AbortNone; r <= core.AbortOther; r++ {
		events = append(events, Event{TS: int64(r) + 1, Tx: 1, Kind: EvAbort, Reason: uint8(r)})
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatalf("write: %v", err)
	}
	wire := buf.String()
	got, err := ParseJSONL(strings.NewReader(wire))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(got) != len(events) {
		t.Fatalf("round trip length %d, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("reason %s mismatch:\n got %+v\nwant %+v",
				core.AbortReason(events[i].Reason), got[i], events[i])
		}
	}

	// Golden lines for the overload-robustness reasons: the exact bytes
	// a trace consumer sees.
	for _, golden := range []string{
		`{"ts":5,"tx":1,"kind":"abort","reason":"deadline"}`,
		`{"ts":6,"tx":1,"kind":"abort","reason":"overload"}`,
	} {
		if !strings.Contains(wire, golden) {
			t.Errorf("wire format drifted: %s not found in:\n%s", golden, wire)
		}
		evs, err := ParseJSONL(strings.NewReader(golden))
		if err != nil {
			t.Errorf("golden line rejected: %v", err)
		} else if len(evs) != 1 || evs[0].Kind != EvAbort {
			t.Errorf("golden line parsed to %+v", evs)
		}
	}

	// A full stream containing the new reasons must also pass the
	// validator (what cmd/tracecheck runs), not just the codec.
	stream := []Event{
		{TS: 1, Tx: 1, Kind: EvBegin, CSN: 1},
		{TS: 2, Tx: 1, Kind: EvAbort, Reason: uint8(core.AbortDeadline)},
		{TS: 3, Tx: 2, Kind: EvBegin, CSN: 1},
		{TS: 4, Tx: 2, Kind: EvAbort, Reason: uint8(core.AbortOverload)},
	}
	if err := Validate(stream); err != nil {
		t.Fatalf("validator rejects new abort reasons: %v", err)
	}
}

package trace

import (
	"fmt"

	"sicost/internal/core"
)

// ValidateOptions tunes Validate's strictness.
type ValidateOptions struct {
	// AllowGaps relaxes the pairing invariants (begin-before-use, one
	// terminal event, wait/wake matching) for traces recorded with
	// Recorder.Dropped() > 0, where events are legitimately missing.
	// Schema-level checks (known kinds, taxonomy reasons, non-negative
	// depths and waits) still apply.
	AllowGaps bool
}

// lockKey identifies one row lock inside one transaction for wait/wake
// pairing.
type lockKey struct {
	tx    uint64
	table string
	key   core.Value
}

// txState tracks per-transaction lifecycle progress during validation.
type txState struct {
	begun      bool
	terminated Kind // EvCommit or EvAbort once seen
	hasTerm    bool
}

// Validate checks the lifecycle invariants of an event stream (as
// drained from a Recorder or parsed from JSONL):
//
//   - every event kind and reason code is within the schema;
//   - every transaction-scoped event follows that transaction's EvBegin;
//   - each transaction begins at most once and terminates at most once
//     (one EvCommit or one EvAbort, never both);
//   - every EvLockWake matches an outstanding EvLockWait by the same
//     transaction on the same table/key;
//   - queue depths, wait times and byte counts are non-negative.
//
// The stream must be in recorded order (Drain's output order). It
// returns nil when every invariant holds, or an error naming the first
// violating event.
func Validate(events []Event) error {
	return ValidateWith(events, ValidateOptions{})
}

// ValidateWith is Validate with options.
func ValidateWith(events []Event, opts ValidateOptions) error {
	txs := make(map[uint64]*txState)
	waits := make(map[lockKey]int)
	for i := range events {
		ev := &events[i]
		if int(ev.Kind) >= int(numKinds) {
			return fmt.Errorf("event %d: unknown kind %d", i, ev.Kind)
		}
		if ev.Depth < 0 || ev.WaitNS < 0 || ev.Bytes < 0 {
			return fmt.Errorf("event %d (%s): negative magnitude (depth=%d wait=%d bytes=%d)",
				i, ev.Kind, ev.Depth, ev.WaitNS, ev.Bytes)
		}
		switch ev.Kind {
		case EvAbort, EvLockWake:
			if ev.Reason > uint8(core.AbortOther) {
				return fmt.Errorf("event %d (%s): reason %d outside the abort taxonomy", i, ev.Kind, ev.Reason)
			}
		case EvConflict:
			if ev.Reason >= numConflicts {
				return fmt.Errorf("event %d (conflict): unknown conflict cause %d", i, ev.Reason)
			}
		}
		if ev.Kind == EvWALFlush || ev.Kind == EvCheckpoint || ev.Kind == EvRecovery ||
			ev.Kind == EvCkptBegin || ev.Kind == EvCkptEnd {
			continue // device-level: not transaction-scoped
		}
		if ev.Tx == 0 {
			return fmt.Errorf("event %d (%s): transaction-scoped event with tx id 0", i, ev.Kind)
		}
		st := txs[ev.Tx]
		if st == nil {
			st = &txState{}
			txs[ev.Tx] = st
		}
		if ev.Kind == EvBegin {
			if st.begun && !opts.AllowGaps {
				return fmt.Errorf("event %d: duplicate begin for tx %d", i, ev.Tx)
			}
			st.begun = true
			continue
		}
		if !st.begun && !opts.AllowGaps {
			return fmt.Errorf("event %d (%s): tx %d has no preceding begin", i, ev.Kind, ev.Tx)
		}
		if st.hasTerm && !opts.AllowGaps {
			return fmt.Errorf("event %d (%s): tx %d already terminated with %s", i, ev.Kind, ev.Tx, st.terminated)
		}
		switch ev.Kind {
		case EvCommit, EvAbort:
			st.hasTerm = true
			st.terminated = ev.Kind
		case EvLockWait:
			waits[lockKey{ev.Tx, ev.Table, ev.Key}]++
		case EvLockWake:
			k := lockKey{ev.Tx, ev.Table, ev.Key}
			if waits[k] == 0 {
				if !opts.AllowGaps {
					return fmt.Errorf("event %d: lock-wake for tx %d on %s/%s without outstanding lock-wait",
						i, ev.Tx, ev.Table, ev.Key)
				}
			} else {
				waits[k]--
			}
		}
	}
	if !opts.AllowGaps {
		for k, n := range waits {
			if n > 0 {
				return fmt.Errorf("tx %d: %d lock-wait(s) on %s/%s never woke", k.tx, n, k.table, k.key)
			}
		}
	}
	return nil
}

// Summary aggregates an event stream for human-readable reporting
// (cmd/tracecheck, the observability walkthrough).
type Summary struct {
	// Events is the total event count; PerKind breaks it down.
	Events  int
	PerKind [numKinds]int
	// TxBegun/TxCommitted/TxAborted count distinct transactions by
	// outcome.
	TxBegun     int
	TxCommitted int
	TxAborted   int
	// AbortReasons counts EvAbort events by taxonomy reason name.
	AbortReasons map[string]int
	// Conflicts counts EvConflict events by cause name.
	Conflicts map[string]int
}

// Summarize tallies an event stream.
func Summarize(events []Event) Summary {
	s := Summary{
		AbortReasons: make(map[string]int),
		Conflicts:    make(map[string]int),
	}
	for i := range events {
		ev := &events[i]
		s.Events++
		if int(ev.Kind) < int(numKinds) {
			s.PerKind[ev.Kind]++
		}
		switch ev.Kind {
		case EvBegin:
			s.TxBegun++
		case EvCommit:
			s.TxCommitted++
		case EvAbort:
			s.TxAborted++
			s.AbortReasons[core.AbortReason(ev.Reason).String()]++
		case EvConflict:
			s.Conflicts[ConflictName(ev.Reason)]++
		}
	}
	return s
}

// String renders the summary as a short multi-line report.
func (s Summary) String() string {
	out := fmt.Sprintf("events=%d tx: begun=%d committed=%d aborted=%d\n",
		s.Events, s.TxBegun, s.TxCommitted, s.TxAborted)
	out += "per-kind:"
	for k := Kind(0); k < numKinds; k++ {
		if s.PerKind[k] > 0 {
			out += fmt.Sprintf(" %s=%d", k, s.PerKind[k])
		}
	}
	if len(s.AbortReasons) > 0 {
		out += "\nabort-reasons:"
		for r := core.AbortNone; r <= core.AbortOther; r++ {
			if n := s.AbortReasons[r.String()]; n > 0 {
				out += fmt.Sprintf(" %s=%d", r, n)
			}
		}
	}
	if len(s.Conflicts) > 0 {
		out += "\nconflicts:"
		for c := uint8(0); c < numConflicts; c++ {
			if n := s.Conflicts[ConflictName(c)]; n > 0 {
				out += fmt.Sprintf(" %s=%d", ConflictName(c), n)
			}
		}
	}
	return out
}

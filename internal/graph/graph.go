// Package graph is a small directed-graph library used by the SDG
// analysis (internal/sdg) and the runtime serializability checker
// (internal/checker): reachability, cycle detection, strongly connected
// components, and witness-path extraction.
package graph

import "sort"

// Digraph is a directed graph over string node ids. The zero value is
// not usable; call New.
type Digraph struct {
	nodes map[string]bool
	succ  map[string]map[string]bool
}

// New creates an empty digraph.
func New() *Digraph {
	return &Digraph{
		nodes: make(map[string]bool),
		succ:  make(map[string]map[string]bool),
	}
}

// AddNode ensures a node exists.
func (g *Digraph) AddNode(id string) {
	if !g.nodes[id] {
		g.nodes[id] = true
		g.succ[id] = make(map[string]bool)
	}
}

// AddEdge adds a directed edge from → to, creating nodes as needed.
// Self-edges are allowed.
func (g *Digraph) AddEdge(from, to string) {
	g.AddNode(from)
	g.AddNode(to)
	g.succ[from][to] = true
}

// HasEdge reports whether the edge exists.
func (g *Digraph) HasEdge(from, to string) bool {
	return g.succ[from] != nil && g.succ[from][to]
}

// Nodes returns all node ids in sorted order.
func (g *Digraph) Nodes() []string {
	out := make([]string, 0, len(g.nodes))
	for n := range g.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Succ returns the successors of id in sorted order.
func (g *Digraph) Succ(id string) []string {
	out := make([]string, 0, len(g.succ[id]))
	for n := range g.succ[id] {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NumEdges counts edges.
func (g *Digraph) NumEdges() int {
	n := 0
	for _, s := range g.succ {
		n += len(s)
	}
	return n
}

// Reachable reports whether `to` is reachable from `from` following one
// or more edges (so Reachable(x, x) is true only if x lies on a cycle).
func (g *Digraph) Reachable(from, to string) bool {
	seen := make(map[string]bool)
	stack := make([]string, 0, 8)
	for s := range g.succ[from] {
		stack = append(stack, s)
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == to {
			return true
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		for s := range g.succ[n] {
			stack = append(stack, s)
		}
	}
	return false
}

// Path returns a shortest path from → to (inclusive of both endpoints,
// following at least one edge), or nil when unreachable. When from == to
// it returns a shortest cycle through the node.
func (g *Digraph) Path(from, to string) []string {
	type step struct {
		node string
		prev int
	}
	steps := []step{}
	seen := make(map[string]bool)
	for s := range g.succ[from] {
		if !seen[s] {
			seen[s] = true
			steps = append(steps, step{s, -1})
		}
	}
	for i := 0; i < len(steps); i++ {
		cur := steps[i]
		if cur.node == to {
			// Reconstruct.
			rev := []string{cur.node}
			for p := cur.prev; p >= 0; p = steps[p].prev {
				rev = append(rev, steps[p].node)
			}
			path := []string{from}
			for j := len(rev) - 1; j >= 0; j-- {
				path = append(path, rev[j])
			}
			return path
		}
		for s := range g.succ[cur.node] {
			if !seen[s] {
				seen[s] = true
				steps = append(steps, step{s, i})
			}
		}
	}
	return nil
}

// SCCs returns the strongly connected components (Tarjan), each sorted,
// with the list ordered by each component's smallest element. Components
// of size one are included only if the node has a self-edge.
func (g *Digraph) SCCs() [][]string {
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var comps [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for w := range g.succ[v] {
			if _, visited := index[w]; !visited {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			if len(comp) > 1 || g.HasEdge(v, v) {
				sort.Strings(comp)
				comps = append(comps, comp)
			}
		}
	}
	for _, v := range g.Nodes() {
		if _, visited := index[v]; !visited {
			strongconnect(v)
		}
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })
	return comps
}

// HasCycle reports whether the graph contains any cycle.
func (g *Digraph) HasCycle() bool { return len(g.SCCs()) > 0 }

// FindCycle returns one witness cycle as a node sequence whose last
// element equals the first, or nil when acyclic.
func (g *Digraph) FindCycle() []string {
	sccs := g.SCCs()
	if len(sccs) == 0 {
		return nil
	}
	start := sccs[0][0]
	cyc := g.Path(start, start)
	return cyc
}

// Clone returns a deep copy.
func (g *Digraph) Clone() *Digraph {
	c := New()
	for n := range g.nodes {
		c.AddNode(n)
	}
	for from, tos := range g.succ {
		for to := range tos {
			c.AddEdge(from, to)
		}
	}
	return c
}

package graph

import (
	"reflect"
	"testing"
	"testing/quick"
)

func buildDiamond() *Digraph {
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("a", "c")
	g.AddEdge("b", "d")
	g.AddEdge("c", "d")
	return g
}

func TestNodesAndEdges(t *testing.T) {
	g := buildDiamond()
	if got := g.Nodes(); !reflect.DeepEqual(got, []string{"a", "b", "c", "d"}) {
		t.Fatalf("Nodes = %v", got)
	}
	if got := g.Succ("a"); !reflect.DeepEqual(got, []string{"b", "c"}) {
		t.Fatalf("Succ(a) = %v", got)
	}
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	if !g.HasEdge("a", "b") || g.HasEdge("b", "a") {
		t.Fatal("HasEdge wrong")
	}
	g.AddEdge("a", "b") // duplicate is idempotent
	if g.NumEdges() != 4 {
		t.Fatal("duplicate edge counted")
	}
	g.AddNode("isolated")
	if len(g.Nodes()) != 5 {
		t.Fatal("AddNode failed")
	}
}

func TestReachability(t *testing.T) {
	g := buildDiamond()
	if !g.Reachable("a", "d") {
		t.Fatal("a must reach d")
	}
	if g.Reachable("d", "a") {
		t.Fatal("d must not reach a")
	}
	// Reachable(x,x) requires a cycle.
	if g.Reachable("a", "a") {
		t.Fatal("a is not on a cycle")
	}
	g.AddEdge("d", "a")
	if !g.Reachable("a", "a") {
		t.Fatal("a is on a cycle now")
	}
}

func TestPath(t *testing.T) {
	g := buildDiamond()
	p := g.Path("a", "d")
	if len(p) != 3 || p[0] != "a" || p[2] != "d" {
		t.Fatalf("Path(a,d) = %v", p)
	}
	if p := g.Path("d", "a"); p != nil {
		t.Fatalf("Path(d,a) = %v, want nil", p)
	}
	// Shortest cycle through a node.
	g.AddEdge("d", "a")
	cyc := g.Path("a", "a")
	if len(cyc) < 2 || cyc[0] != "a" || cyc[len(cyc)-1] != "a" {
		t.Fatalf("cycle = %v", cyc)
	}
	// Self-loop: shortest cycle has length 2 (x, x).
	g2 := New()
	g2.AddEdge("x", "x")
	if got := g2.Path("x", "x"); len(got) != 2 {
		t.Fatalf("self-loop path = %v", got)
	}
}

func TestSCCs(t *testing.T) {
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	g.AddEdge("c", "a") // {a,b,c}
	g.AddEdge("c", "d")
	g.AddEdge("d", "e")
	g.AddEdge("e", "d") // {d,e}
	g.AddEdge("e", "f") // f alone, no self-loop
	g.AddEdge("g", "g") // self-loop

	sccs := g.SCCs()
	want := [][]string{{"a", "b", "c"}, {"d", "e"}, {"g"}}
	if !reflect.DeepEqual(sccs, want) {
		t.Fatalf("SCCs = %v, want %v", sccs, want)
	}
	if !g.HasCycle() {
		t.Fatal("graph has cycles")
	}
	cyc := g.FindCycle()
	if len(cyc) < 2 || cyc[0] != cyc[len(cyc)-1] {
		t.Fatalf("FindCycle = %v", cyc)
	}
}

func TestAcyclic(t *testing.T) {
	g := buildDiamond()
	if g.HasCycle() {
		t.Fatal("diamond is acyclic")
	}
	if g.FindCycle() != nil {
		t.Fatal("FindCycle on acyclic graph")
	}
	if len(g.SCCs()) != 0 {
		t.Fatal("acyclic graph has no SCCs of interest")
	}
}

func TestClone(t *testing.T) {
	g := buildDiamond()
	c := g.Clone()
	c.AddEdge("d", "a")
	if g.HasEdge("d", "a") {
		t.Fatal("clone aliases original")
	}
	if !c.HasEdge("a", "b") {
		t.Fatal("clone lost edges")
	}
}

// Property: FindCycle's witness is a real cycle (consecutive edges exist)
// and HasCycle agrees with SCC non-emptiness on random graphs.
func TestCycleWitnessProperty(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e", "f"}
	f := func(edges []uint16) bool {
		g := New()
		for _, e := range edges {
			from := names[int(e)%len(names)]
			to := names[int(e/8)%len(names)]
			g.AddEdge(from, to)
		}
		cyc := g.FindCycle()
		if (cyc != nil) != g.HasCycle() {
			return false
		}
		if cyc == nil {
			return true
		}
		if len(cyc) < 2 || cyc[0] != cyc[len(cyc)-1] {
			return false
		}
		for i := 0; i+1 < len(cyc); i++ {
			if !g.HasEdge(cyc[i], cyc[i+1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

package engine

import (
	"sync"
	"testing"
	"time"

	"sicost/internal/core"
	"sicost/internal/storage"
	"sicost/internal/trace"
)

// traceDB builds a DB with a deterministic-clock recorder installed and
// table T preloaded with rows [0, rows). The seed transaction's events
// are drained away so tests see only their own traffic.
func traceDB(t *testing.T, mode core.CCMode, rows int64) (*DB, *trace.Recorder) {
	t.Helper()
	rec := trace.New(trace.Options{Clock: trace.CounterClock()})
	db := Open(Config{Mode: mode, Platform: core.PlatformPostgres, Tracer: rec})
	if err := db.CreateTable(kvSchema("T")); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	for k := int64(0); k < rows; k++ {
		if err := tx.Insert("T", kv(k, k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	rec.Drain()
	t.Cleanup(db.Close)
	return db, rec
}

// countKinds tallies an event stream by kind.
func countKinds(evs []trace.Event) map[trace.Kind]int {
	m := make(map[trace.Kind]int)
	for _, ev := range evs {
		m[ev.Kind]++
	}
	return m
}

func TestTraceCommitLifecycle(t *testing.T) {
	db, rec := traceDB(t, core.SnapshotFUW, 4)
	tx := db.Begin()
	if _, err := tx.Get("T", core.Int(0)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Update("T", core.Int(1), kv(1, 99)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	evs := rec.Drain()
	if err := trace.Validate(evs); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	kinds := countKinds(evs)
	for _, want := range []trace.Kind{trace.EvBegin, trace.EvSnapshot, trace.EvRead, trace.EvWrite, trace.EvCommit} {
		if kinds[want] != 1 {
			t.Fatalf("kind %s count = %d, want 1 (stream: %+v)", want, kinds[want], evs)
		}
	}
	// The commit event carries the allocated CSN (seed committed CSN 1).
	last := evs[len(evs)-1]
	if last.Kind != trace.EvCommit || last.CSN != 2 {
		t.Fatalf("last event = %+v, want commit with CSN 2", last)
	}
	m := db.TxnMetrics()
	if m.Commits != 2 { // seed + this one
		t.Fatalf("commits = %d, want 2", m.Commits)
	}
}

func TestTraceConflictAndAbortTaxonomy(t *testing.T) {
	db, rec := traceDB(t, core.SnapshotFUW, 4)

	// t1 snapshots, then t2 updates row 0 and commits, then t1 updates
	// row 0: First-Updater-Wins serialization failure for t1.
	t1 := db.Begin()
	t2 := db.Begin()
	if err := t2.Update("T", core.Int(0), kv(0, 7)); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	err := t1.Update("T", core.Int(0), kv(0, 8))
	if err != core.ErrSerialization {
		t.Fatalf("err = %v, want ErrSerialization", err)
	}
	if err := t1.Commit(); err != core.ErrSerialization {
		t.Fatalf("commit err = %v, want ErrSerialization", err)
	}

	evs := rec.Drain()
	if err := trace.Validate(evs); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	var conflict, abort *trace.Event
	for i := range evs {
		switch evs[i].Kind {
		case trace.EvConflict:
			conflict = &evs[i]
		case trace.EvAbort:
			abort = &evs[i]
		}
	}
	if conflict == nil || conflict.Reason != trace.ConflictFUW || conflict.Key != core.Int(0) {
		t.Fatalf("FUW conflict event missing or wrong: %+v", conflict)
	}
	if abort == nil || abort.Reason != uint8(core.AbortSerialization) {
		t.Fatalf("abort event missing or unattributed: %+v", abort)
	}

	m := db.TxnMetrics()
	if m.Aborts[core.AbortSerialization] != 1 {
		t.Fatalf("serialization aborts = %d, want 1 (vector %v)", m.Aborts[core.AbortSerialization], m.Aborts)
	}
	if r := m.Aborts.AttributionRate(); r != 1 {
		t.Fatalf("attribution rate = %v, want 1", r)
	}
}

func TestTraceLockWaitEvents(t *testing.T) {
	db, rec := traceDB(t, core.SnapshotFUW, 4)

	// t1 X-locks row 0; t2 blocks behind it, then t1 commits and t2's
	// FUW check fails. The trace must pair the lock-wait with its wake.
	t1 := db.Begin()
	if err := t1.Update("T", core.Int(0), kv(0, 1)); err != nil {
		t.Fatal(err)
	}
	t2 := db.Begin()
	var wg sync.WaitGroup
	wg.Add(1)
	blocked := make(chan struct{})
	go func() {
		defer wg.Done()
		close(blocked)
		if err := t2.Update("T", core.Int(0), kv(0, 2)); err != core.ErrSerialization {
			t.Errorf("t2 update err = %v, want ErrSerialization", err)
		}
		t2.Abort()
	}()
	<-blocked
	// Wait until t2 is queued on the row lock before committing t1.
	for db.locks.QueueLen(storage.LockKey{Table: "T", Key: core.Int(0)}) == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	evs := rec.Drain()
	if err := trace.Validate(evs); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	kinds := countKinds(evs)
	if kinds[trace.EvLockWait] != 1 || kinds[trace.EvLockWake] != 1 {
		t.Fatalf("lock wait/wake = %d/%d, want 1/1", kinds[trace.EvLockWait], kinds[trace.EvLockWake])
	}
	for _, ev := range evs {
		if ev.Kind == trace.EvLockWake && ev.WaitNS <= 0 {
			t.Fatalf("lock-wake without wait time: %+v", ev)
		}
	}
	// The blocked acquire must land in the lock-wait histogram.
	if w := db.TxnMetrics().LockWait; w.Count != 1 {
		t.Fatalf("lock-wait histogram count = %d, want 1", w.Count)
	}
}

func TestCommitLatencyMeteringGated(t *testing.T) {
	db, _ := traceDB(t, core.SnapshotFUW, 4)
	run := func() {
		tx := db.Begin()
		if err := tx.Update("T", core.Int(0), kv(0, 1)); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	run()
	if c := db.TxnMetrics().CommitLatency.Count; c != 0 {
		t.Fatalf("latency recorded while metering disabled: count %d", c)
	}
	db.SetMetricsEnabled(true)
	run()
	if c := db.TxnMetrics().CommitLatency.Count; c != 1 {
		t.Fatalf("latency count = %d, want 1 after enabling", c)
	}
	db.SetMetricsEnabled(false)
	run()
	if c := db.TxnMetrics().CommitLatency.Count; c != 1 {
		t.Fatalf("latency count = %d, want still 1 after disabling", c)
	}
}

func TestTraceDisabledRecorderCapturesNothing(t *testing.T) {
	rec := trace.New(trace.Options{Disabled: true})
	db := Open(Config{Mode: core.SnapshotFUW, Platform: core.PlatformPostgres, Tracer: rec})
	defer db.Close()
	if err := db.CreateTable(kvSchema("T")); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	if err := tx.Insert("T", kv(0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if evs := rec.Drain(); len(evs) != 0 {
		t.Fatalf("disabled recorder captured %d events", len(evs))
	}
}

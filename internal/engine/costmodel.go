package engine

import (
	"time"

	"sicost/internal/core"
)

// CostModel holds the per-platform execution-cost penalties of the three
// program-modification techniques. The paper observes, without a
// mechanistic explanation for PostgreSQL (§IV-D), that materialization is
// slower than promotion on PostgreSQL while the commercial platform shows
// the reverse (§IV-F, guideline 4 of §IV-G). We model these measured
// differences as explicit per-statement penalties charged by the modified
// programs; they are knobs of the platform profile, not emergent
// behaviour, and DESIGN.md documents them as such.
type CostModel struct {
	// MaterializeWrite is the extra cost of the UPDATE on the dedicated
	// Conflict table (round trip, extra table's buffer/index path).
	MaterializeWrite time.Duration
	// PromoteUpdate is the extra cost of an identity update (col = col)
	// on a base table beyond a normal statement.
	PromoteUpdate time.Duration
	// SelectForUpdate is the extra cost of upgrading a SELECT into
	// SELECT ... FOR UPDATE.
	SelectForUpdate time.Duration
}

// DefaultCostModel returns the platform profile used by the experiments.
// The magnitudes are calibrated (see EXPERIMENTS.md) so that the measured
// relative-throughput curves land in the bands the paper reports; the
// *signs* of the differences are the paper's own findings.
func DefaultCostModel(p core.Platform) CostModel {
	switch p {
	case core.PlatformCommercial:
		return CostModel{
			MaterializeWrite: 25 * time.Microsecond,
			PromoteUpdate:    200 * time.Microsecond,
			SelectForUpdate:  10 * time.Microsecond,
		}
	default: // PlatformPostgres
		return CostModel{
			MaterializeWrite: 110 * time.Microsecond,
			PromoteUpdate:    0,
			SelectForUpdate:  15 * time.Microsecond,
		}
	}
}

// Scaled multiplies all penalties by f, matching simres.Config.Scaled.
func (c CostModel) Scaled(f float64) CostModel {
	s := func(d time.Duration) time.Duration { return time.Duration(float64(d) * f) }
	return CostModel{
		MaterializeWrite: s(c.MaterializeWrite),
		PromoteUpdate:    s(c.PromoteUpdate),
		SelectForUpdate:  s(c.SelectForUpdate),
	}
}

package engine

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"sicost/internal/core"
	"sicost/internal/faultinject"
	"sicost/internal/wal"
)

// openDurableKV builds a DB on an in-memory log device with table T
// preloaded with (1,100) and (2,200).
func openDurableKV(t *testing.T, dev wal.LogDevice) *DB {
	t.Helper()
	db := Open(Config{WAL: wal.Config{Device: dev}})
	if err := db.CreateTable(kvSchema("T")); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	for k, v := range map[int64]int64{1: 100, 2: 200} {
		if err := tx.Insert("T", kv(k, v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return db
}

// scanT reads T's latest committed state into a map.
func scanT(t *testing.T, db *DB) map[int64]int64 {
	t.Helper()
	m := map[int64]int64{}
	if err := db.ScanLatest("T", func(k core.Value, rec core.Record) bool {
		m[k.Int64()] = rec[1].Int64()
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return m
}

func commitUpdate(t *testing.T, db *DB, k, v int64) {
	t.Helper()
	tx := db.Begin()
	mustSetV(t, tx, k, v)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverWithoutCheckpoint rebuilds a never-checkpointed log: table
// definitions come from durable DDL frames, state from pure redo.
func TestRecoverWithoutCheckpoint(t *testing.T) {
	dev := wal.NewMemDevice()
	db := openDurableKV(t, dev)
	commitUpdate(t, db, 1, 111)
	tx := db.Begin()
	if err := tx.Delete("T", core.Int(2)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	preSeq := db.CommitSeq()
	db.Close()

	db2, rep, err := Recover(dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if rep.Tables != 1 || rep.CheckpointRows != 0 {
		t.Fatalf("report = %+v, want 1 table from DDL frames, no checkpoint", rep)
	}
	if rep.ReplayedCommits != 3 {
		t.Fatalf("replayed %d commits, want 3", rep.ReplayedCommits)
	}
	if got := scanT(t, db2); len(got) != 1 || got[1] != 111 {
		t.Fatalf("recovered state %v, want {1:111} (row 2 tombstoned)", got)
	}
	if db2.CommitSeq() != preSeq {
		t.Fatalf("recovered CSN %d, want %d", db2.CommitSeq(), preSeq)
	}
}

// TestCheckpointRecoverRoundTrip checkpoints mid-history: recovery must
// restore the snapshot and replay only the commits after the cut.
func TestCheckpointRecoverRoundTrip(t *testing.T) {
	dev := wal.NewMemDevice()
	db := openDurableKV(t, dev)
	commitUpdate(t, db, 1, 111)
	cut, err := db.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if cut != db.CommitSeq() {
		t.Fatalf("checkpoint cut %d, want current CommitSeq %d", cut, db.CommitSeq())
	}
	commitUpdate(t, db, 2, 222)
	preSeq := db.CommitSeq()
	db.Close()

	db2, rep, err := Recover(dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if rep.CheckpointRows != 2 {
		t.Fatalf("restored %d checkpoint rows, want 2", rep.CheckpointRows)
	}
	if rep.ReplayedCommits != 1 {
		t.Fatalf("replayed %d commits, want only the post-checkpoint one", rep.ReplayedCommits)
	}
	if got := scanT(t, db2); got[1] != 111 || got[2] != 222 {
		t.Fatalf("recovered state %v, want {1:111 2:222}", got)
	}
	if db2.CommitSeq() != preSeq {
		t.Fatalf("recovered CSN %d, want %d", db2.CommitSeq(), preSeq)
	}

	// The revived instance must serve transactions: snapshot reads see
	// recovered versions, and the CSN stream continues past the mark.
	tx := db2.Begin()
	if v := mustGetV(t, tx, 2); v != 222 {
		t.Fatalf("post-recovery read = %d, want 222", v)
	}
	mustSetV(t, tx, 2, 333)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if db2.CommitSeq() != preSeq+1 {
		t.Fatalf("post-recovery commit got CSN %d, want %d", db2.CommitSeq(), preSeq+1)
	}
}

// TestRecoverTruncatesTornTail appends garbage to a clean log: recovery
// must discard it, repair the device, and keep every durable commit.
func TestRecoverTruncatesTornTail(t *testing.T) {
	dev := wal.NewMemDevice()
	db := openDurableKV(t, dev)
	commitUpdate(t, db, 1, 111)
	db.Close()

	if err := dev.Append([]byte{0xba, 0xdb, 0xad}); err != nil {
		t.Fatal(err)
	}
	db2, rep, err := Recover(dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if rep.Log.TornBytes != 3 || !rep.Log.Repaired {
		t.Fatalf("torn tail not repaired: %+v", rep.Log)
	}
	if got := scanT(t, db2); got[1] != 111 || got[2] != 200 {
		t.Fatalf("recovered state %v", got)
	}
	if dev.Size() != int64(rep.Log.ValidBytes) {
		t.Fatalf("device still %d bytes, want repaired %d", dev.Size(), rep.Log.ValidBytes)
	}
}

// TestRecoverRebuildsIndexes recovers a table with a unique secondary
// index and checks both lookups and the uniqueness constraint survive.
func TestRecoverRebuildsIndexes(t *testing.T) {
	dev := wal.NewMemDevice()
	db := Open(Config{WAL: wal.Config{Device: dev}})
	schema := &core.Schema{
		Name: "U",
		Columns: []core.Column{
			{Name: "K", Kind: core.KindInt, NotNull: true},
			{Name: "V", Kind: core.KindInt, NotNull: true},
		},
		PK:     0,
		Unique: []int{1},
	}
	if err := db.CreateTable(schema); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	if err := tx.Insert("U", kv(1, 10)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("U", kv(2, 20)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, _, err := Recover(dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	// The rebuilt index must enforce uniqueness against recovered rows.
	tx = db2.Begin()
	if err := tx.Insert("U", kv(3, 10)); err == nil {
		t.Fatal("recovered unique index admitted a duplicate")
	}
	tx.Abort()
}

// TestWALCommitFailureDoesNotWedgeSequencer arms an error at the WAL
// commit point: the failed transaction must abort cleanly, publish its
// empty CSN slot, and leave the commit sequencer and the checkpoint
// barrier fully operational.
func TestWALCommitFailureDoesNotWedgeSequencer(t *testing.T) {
	dev := wal.NewMemDevice()
	reg := faultinject.New(1)
	db := Open(Config{WAL: wal.Config{Device: dev}, Faults: reg})
	defer db.Close()
	if err := db.CreateTable(kvSchema("T")); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	if err := tx.Insert("T", kv(1, 100)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	if err := reg.Arm(faultinject.Spec{Point: wal.FaultCommit, Count: 1, Action: faultinject.ActError}); err != nil {
		t.Fatal(err)
	}
	tx = db.Begin()
	mustSetV(t, tx, 1, 101)
	if err := tx.Commit(); !errors.Is(err, core.ErrInjected) {
		t.Fatalf("commit = %v, want injected WAL failure", err)
	}
	reg.Disarm(wal.FaultCommit)

	// The failed commit's CSN slot must be published (empty), or this
	// commit would hang behind it forever.
	commitUpdate(t, db, 1, 102)
	tx = db.Begin()
	if v := mustGetV(t, tx, 1); v != 102 {
		t.Fatalf("read %d, want 102 — failed commit leaked state or blocked successor", v)
	}
	tx.Abort()

	// The checkpoint barrier must be free too (a leaked read-hold on
	// ckptMu would deadlock here).
	if _, err := db.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after failed WAL commit: %v", err)
	}
}

// TestWALCommitPanicPublishesSlot is the crash variant: an injected
// panic inside the WAL commit window must still publish the empty slot
// and release the checkpoint barrier while the panic unwinds to the
// caller.
func TestWALCommitPanicPublishesSlot(t *testing.T) {
	dev := wal.NewMemDevice()
	reg := faultinject.New(1)
	db := Open(Config{WAL: wal.Config{Device: dev}, Faults: reg})
	defer db.Close()
	if err := db.CreateTable(kvSchema("T")); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	if err := tx.Insert("T", kv(1, 100)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	if err := reg.Arm(faultinject.Spec{Point: wal.FaultCommit, Count: 1, Action: faultinject.ActPanic}); err != nil {
		t.Fatal(err)
	}
	func() {
		tx := db.Begin()
		defer tx.Abort() // the deferred rollback every program carries
		defer func() {
			if r := recover(); r == nil {
				t.Fatal("injected panic did not propagate")
			} else if _, ok := faultinject.AsPanic(r); !ok {
				panic(r)
			}
		}()
		mustSetV(t, tx, 1, 101)
		_ = tx.Commit()
	}()
	reg.Disarm(wal.FaultCommit)

	commitUpdate(t, db, 1, 102)
	if _, err := db.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after mid-commit crash: %v", err)
	}
}

// TestSSIDoomedCommitLogsNothing pins the durable-WAL ordering of an
// SSI commit: precommit must run before the commit frame is written, so
// a transaction doomed during commit makes nothing durable. There is no
// abort/compensation record — a frame logged before the doom was
// discovered would be replayed after a crash and resurrect the aborted
// transaction's writes.
func TestSSIDoomedCommitLogsNothing(t *testing.T) {
	dev := wal.NewMemDevice()
	db := Open(Config{Mode: core.SerializableSI, WAL: wal.Config{Device: dev}})
	if err := db.CreateTable(kvSchema("T")); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	if err := tx.Insert("T", kv(1, 100)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Doom the victim after its last statement, as a concurrent
	// transaction's rw-antidependency would. The dead flag channel is
	// left open so the cheap doomed() poll at the head of Commit does
	// not fire and the doom is only discovered at precommit — the exact
	// window the WAL ordering protects.
	victim := db.Begin()
	mustSetV(t, victim, 1, 666)
	db.ssi.mu.Lock()
	victim.ssi.dead = true
	db.ssi.mu.Unlock()
	if err := victim.Commit(); !errors.Is(err, core.ErrSerialization) {
		t.Fatalf("doomed commit = %v, want ErrSerialization", err)
	}
	db.Close()

	db2, rep, err := Recover(dev, Config{Mode: core.SerializableSI})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if rep.ReplayedCommits != 1 {
		t.Fatalf("replayed %d commits, want only the insert — the doomed commit reached the log", rep.ReplayedCommits)
	}
	if got := scanT(t, db2); got[1] != 100 {
		t.Fatalf("recovered state %v — aborted transaction's write resurrected", got)
	}
}

// TestCreateTableCheckpointRace races DDL against checkpoint rewrites.
// CreateTable holds the checkpoint barrier across the store create and
// the DDL append; without it a checkpoint can cut between the two,
// snapshot the store without the table, and Rewrite the log — the
// schema frame is gone, and recovery fails on the table's commits.
func TestCreateTableCheckpointRace(t *testing.T) {
	dev := wal.NewMemDevice()
	db := openDurableKV(t, dev)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := db.Checkpoint(); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	const tables = 24
	for i := 0; i < tables; i++ {
		name := fmt.Sprintf("R%d", i)
		if err := db.CreateTable(kvSchema(name)); err != nil {
			t.Fatal(err)
		}
		tx := db.Begin()
		if err := tx.Insert(name, kv(1, int64(i))); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	db.Close()

	db2, _, err := Recover(dev, Config{})
	if err != nil {
		t.Fatalf("recovery after DDL/checkpoint race: %v", err)
	}
	defer db2.Close()
	for i := 0; i < tables; i++ {
		name := fmt.Sprintf("R%d", i)
		found := false
		if err := db2.ScanLatest(name, func(k core.Value, rec core.Record) bool {
			found = rec[1].Int64() == int64(i)
			return false
		}); err != nil {
			t.Fatalf("table %s lost its schema frame: %v", name, err)
		}
		if !found {
			t.Fatalf("table %s lost its committed row", name)
		}
	}
}

// TestRecoverRejectsCorruptPayloads covers the decoder-level corruption
// engine.Recover must reject rather than crash on: a record that does
// not match its schema, and a commit frame with CSN 0.
func TestRecoverRejectsCorruptPayloads(t *testing.T) {
	schema := kvSchema("T")
	// Schema mismatch: 1-column record in a 2-column NotNull table.
	var log []byte
	log = append(log, wal.EncodeSchema(schema)...)
	log = append(log, wal.EncodeCommit(&wal.CommitFrame{
		TxID: 1, CSN: 1,
		Rows: []wal.RowImage{{Table: "T", Key: core.Int(1), Rec: core.Record{core.Int(1)}}},
	})...)
	if _, _, err := Recover(wal.NewMemDeviceBytes(log), Config{}); err == nil {
		t.Fatal("schema-mismatched row image accepted")
	}

	// A CSN-0 commit frame is corrupt even with a valid checksum: the
	// decoder treats it as the torn tail, so it is never replayed.
	log = append([]byte{}, wal.EncodeSchema(schema)...)
	log = append(log, wal.EncodeCommit(&wal.CommitFrame{TxID: 1, CSN: 0})...)
	db, rep, err := Recover(wal.NewMemDeviceBytes(log), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Log.TornBytes == 0 || rep.ReplayedCommits != 0 {
		t.Fatalf("CSN-0 frame not truncated: %+v", rep)
	}
	db.Close()

	// Row image whose primary key disagrees with its logged key.
	log = append([]byte{}, wal.EncodeSchema(schema)...)
	log = append(log, wal.EncodeCommit(&wal.CommitFrame{
		TxID: 1, CSN: 1,
		Rows: []wal.RowImage{{Table: "T", Key: core.Int(2), Rec: core.Record{core.Int(1), core.Int(5)}}},
	})...)
	if _, _, err := Recover(wal.NewMemDeviceBytes(log), Config{}); err == nil {
		t.Fatal("key-mismatched row image accepted")
	}
}

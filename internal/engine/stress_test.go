package engine

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"sicost/internal/core"
)

// Stress tests for the engine under real goroutine concurrency (the
// detsim suite covers exact interleavings; these cover volume + -race).
// Every mode must preserve the two invariants the paper's anomalies
// would violate: no lost updates on a hot row (FUW / 2PL / SSI all
// forbid them) and conservation of a total that transactions only move
// between rows.

// stressModes are the concurrency-control modes under test.
var stressModes = []struct {
	name string
	mode core.CCMode
}{
	{"SI", core.SnapshotFUW},
	{"S2PL", core.Strict2PL},
	{"SSI", core.SerializableSI},
}

// runRetry executes f as one transaction, retrying retriable failures
// (deadlock victims, FUW/SSI aborts). Returns the number of attempts.
func runRetry(t *testing.T, db *DB, f func(tx *Tx) error) int {
	t.Helper()
	for attempt := 1; ; attempt++ {
		tx := db.Begin()
		err := f(tx)
		if err == nil {
			err = tx.Commit()
		} else {
			tx.Abort()
		}
		if err == nil {
			return attempt
		}
		if !core.IsRetriable(err) {
			t.Errorf("non-retriable error: %v", err)
			return attempt
		}
	}
}

// TestStressHotRowNoLostUpdates runs goroutine fleets incrementing one
// row. Final value must equal the number of successful commits exactly:
// a lost update under FUW (SI), 2PL, or SSI is a correctness bug.
func TestStressHotRowNoLostUpdates(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	for _, m := range stressModes {
		t.Run(m.name, func(t *testing.T) {
			db := Open(Config{Mode: m.mode, Platform: core.PlatformPostgres})
			defer db.Close()
			if err := db.CreateTable(kvSchema("T")); err != nil {
				t.Fatal(err)
			}
			seed := db.Begin()
			if err := seed.Insert("T", kv(0, 0)); err != nil {
				t.Fatal(err)
			}
			if err := seed.Commit(); err != nil {
				t.Fatal(err)
			}

			const (
				workers = 8
				iters   = 150
			)
			var (
				wg      sync.WaitGroup
				retries atomic.Int64
			)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						n := runRetry(t, db, func(tx *Tx) error {
							rec, err := tx.Get("T", core.Int(0))
							if err != nil {
								return err
							}
							return tx.Update("T", core.Int(0), kv(0, rec[1].Int64()+1))
						})
						retries.Add(int64(n - 1))
					}
				}()
			}
			wg.Wait()

			check := db.Begin()
			rec, err := check.Get("T", core.Int(0))
			if err != nil {
				t.Fatal(err)
			}
			check.Abort()
			if got, want := rec[1].Int64(), int64(workers*iters); got != want {
				t.Fatalf("lost updates: counter = %d, want %d (retries %d)",
					got, want, retries.Load())
			}
			commits, _ := db.Stats()
			// workers*iters increments + the seed transaction.
			if commits != uint64(workers*iters)+1 {
				t.Fatalf("commit count %d, want %d", commits, workers*iters+1)
			}
		})
	}
}

// TestStressTransfersConserveTotal runs concurrent transfers between
// uniformly random rows; the grand total must be conserved under every
// mode. Transfers acquire their two rows in random order, so under 2PL
// the deadlock detector is exercised continuously.
func TestStressTransfersConserveTotal(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	for _, m := range stressModes {
		t.Run(m.name, func(t *testing.T) {
			db := Open(Config{Mode: m.mode, Platform: core.PlatformPostgres})
			defer db.Close()
			if err := db.CreateTable(kvSchema("T")); err != nil {
				t.Fatal(err)
			}
			const (
				rows    = 32
				initial = 100
				workers = 8
				iters   = 120
			)
			seed := db.Begin()
			for k := 0; k < rows; k++ {
				if err := seed.Insert("T", kv(int64(k), initial)); err != nil {
					t.Fatal(err)
				}
			}
			if err := seed.Commit(); err != nil {
				t.Fatal(err)
			}

			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(7 + id)))
					for i := 0; i < iters; i++ {
						from := int64(rng.Intn(rows))
						to := int64(rng.Intn(rows))
						if to == from {
							to = (to + 1) % rows
						}
						amount := int64(rng.Intn(5) + 1)
						runRetry(t, db, func(tx *Tx) error {
							src, err := tx.Get("T", core.Int(from))
							if err != nil {
								return err
							}
							dst, err := tx.Get("T", core.Int(to))
							if err != nil {
								return err
							}
							if err := tx.Update("T", core.Int(from), kv(from, src[1].Int64()-amount)); err != nil {
								return err
							}
							return tx.Update("T", core.Int(to), kv(to, dst[1].Int64()+amount))
						})
					}
				}(w)
			}
			wg.Wait()

			total := int64(0)
			if err := db.ScanLatest("T", func(_ core.Value, rec core.Record) bool {
				total += rec[1].Int64()
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if want := int64(rows * initial); total != want {
				t.Fatalf("total not conserved: %d, want %d", total, want)
			}
			cont := db.Contention()
			if m.mode == core.Strict2PL && cont.Lock.Deadlocks == 0 {
				t.Logf("note: no deadlocks observed under 2PL (scheduling-dependent)")
			}
			if cont.Lock.FastPath == 0 {
				t.Fatalf("no fast-path acquires recorded: %+v", cont.Lock)
			}
		})
	}
}

// TestStressCommitVisibility checks the commit sequencer's session
// guarantee under load: after Commit returns, a transaction begun by
// the same goroutine must see the committed value (publishCSN blocks
// until the CSN is visible, even when commits publish out of order).
func TestStressCommitVisibility(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	db := Open(Config{Mode: core.SnapshotFUW, Platform: core.PlatformPostgres})
	defer db.Close()
	if err := db.CreateTable(kvSchema("T")); err != nil {
		t.Fatal(err)
	}
	const workers = 8
	seed := db.Begin()
	for k := 0; k < workers; k++ {
		if err := seed.Insert("T", kv(int64(k), 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			k := int64(id) // private row: no conflicts, pure sequencer load
			for i := int64(1); i <= 300; i++ {
				runRetry(t, db, func(tx *Tx) error {
					return tx.Update("T", core.Int(k), kv(k, i))
				})
				tx := db.Begin()
				rec, err := tx.Get("T", core.Int(k))
				tx.Abort()
				if err != nil {
					t.Errorf("worker %d: %v", id, err)
					return
				}
				if got := rec[1].Int64(); got != i {
					t.Errorf("worker %d: committed %d but next snapshot read %d", id, i, got)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

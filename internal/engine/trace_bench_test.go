package engine

import (
	"testing"

	"sicost/internal/core"
	"sicost/internal/trace"
)

// benchCommitTrace measures the benchCommit cycle (begin, read, update,
// commit) with a recorder in the given state. "off" (no recorder) is
// the PR-3 baseline path; "disabled" is the acceptance gauge for the
// tracing tentpole — a recorder installed but switched off must stay
// within 5% of it, because every emission point then costs one pointer
// test plus one atomic load.
func benchCommitTrace(b *testing.B, rec *trace.Recorder) {
	const rows = 1024
	db := Open(Config{Mode: core.SnapshotFUW, Platform: core.PlatformPostgres, Tracer: rec})
	if err := db.CreateTable(kvSchema("T")); err != nil {
		b.Fatal(err)
	}
	tx := db.Begin()
	for k := int64(0); k < rows; k++ {
		if err := tx.Insert("T", kv(k, k)); err != nil {
			b.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(db.Close)
	rec.Drain()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := int64(i) % rows
		tx := db.Begin()
		if _, err := tx.Get("T", core.Int(k)); err != nil {
			b.Fatal(err)
		}
		wk := (k + 1) % rows
		if err := tx.Update("T", core.Int(wk), kv(wk, int64(i))); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
		if rec.Enabled() && i%4096 == 0 {
			// Keep the rings from filling so the enabled case measures
			// emission, not drop accounting.
			b.StopTimer()
			rec.Drain()
			b.StartTimer()
		}
	}
}

// BenchmarkCommitTraced compares the commit cycle with tracing absent,
// installed-but-disabled, and capturing. off vs disabled is the ≤5%
// budget; disabled vs enabled is the price of turning capture on.
func BenchmarkCommitTraced(b *testing.B) {
	b.Run("off", func(b *testing.B) {
		benchCommitTrace(b, nil)
	})
	b.Run("disabled", func(b *testing.B) {
		benchCommitTrace(b, trace.New(trace.Options{Disabled: true}))
	})
	b.Run("enabled", func(b *testing.B) {
		benchCommitTrace(b, trace.New(trace.Options{}))
	})
}

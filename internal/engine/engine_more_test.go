package engine

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"sicost/internal/core"
	"sicost/internal/wal"
)

// walConfigForTest returns a fast-but-real log device config.
func walConfigForTest() wal.Config {
	return wal.Config{FsyncLatency: 2 * time.Millisecond}
}

func TestGetByIndex(t *testing.T) {
	db := Open(Config{Mode: core.SnapshotFUW, Platform: core.PlatformPostgres})
	defer db.Close()
	schema := &core.Schema{
		Name: "Account",
		Columns: []core.Column{
			{Name: "Name", Kind: core.KindString, NotNull: true},
			{Name: "CustomerID", Kind: core.KindInt, NotNull: true},
		},
		PK:     0,
		Unique: []int{1},
	}
	if err := db.CreateTable(schema); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	if err := tx.Insert("Account", core.Record{core.Str("alice"), core.Int(7)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	rd := db.Begin()
	rec, err := rd.GetByIndex("Account", "CustomerID", core.Int(7))
	if err != nil {
		t.Fatal(err)
	}
	if rec[0] != core.Str("alice") {
		t.Fatalf("record = %v", rec)
	}
	if _, err := rd.GetByIndex("Account", "CustomerID", core.Int(404)); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("missing index value: %v", err)
	}
	if _, err := rd.GetByIndex("Account", "Name", core.Str("alice")); err == nil {
		t.Fatal("lookup by non-indexed column accepted")
	}
	rd.Abort()

	// Duplicate unique value must be rejected.
	dup := db.Begin()
	err = dup.Insert("Account", core.Record{core.Str("bob"), core.Int(7)})
	if !errors.Is(err, core.ErrUniqueViolation) {
		t.Fatalf("duplicate CustomerID: %v", err)
	}
	dup.Abort()
}

func TestTwoPLReadersBlockWriters(t *testing.T) {
	db := openKV(t, core.Strict2PL, core.PlatformPostgres)

	reader := db.Begin()
	_ = mustGetV(t, reader, 1) // S lock held

	writer := db.Begin()
	errc := make(chan error, 1)
	go func() { errc <- writer.Update("T", core.Int(1), kv(1, 5)) }()
	select {
	case err := <-errc:
		t.Fatalf("writer did not block behind reader: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	if err := reader.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if err := writer.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestTwoPLReadsLatestCommitted(t *testing.T) {
	db := openKV(t, core.Strict2PL, core.PlatformPostgres)

	t1 := db.Begin()
	mustSetV(t, t1, 1, 111)
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	// A transaction that began before t1 committed still reads the
	// latest committed value under 2PL (no snapshot semantics). We open
	// it after commit here because blocking semantics are covered above;
	// the point is the read path returns the newest committed version.
	t2 := db.Begin()
	if got := mustGetV(t, t2, 1); got != 111 {
		t.Fatalf("2PL read = %d", got)
	}
	t2.Abort()
}

func TestSSIReadOnlyNotDisturbedWhenSerializable(t *testing.T) {
	// A plain read-only transaction with no dangerous structure must
	// commit fine under SSI.
	db := openKV(t, core.SerializableSI, core.PlatformPostgres)
	tx := db.Begin()
	_ = mustGetV(t, tx, 1)
	_ = mustGetV(t, tx, 2)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestSSISequentialUpdatesAllowed(t *testing.T) {
	// Non-overlapping transactions never conflict under SSI.
	db := openKV(t, core.SerializableSI, core.PlatformPostgres)
	for i := int64(0); i < 5; i++ {
		tx := db.Begin()
		v := mustGetV(t, tx, 1)
		mustSetV(t, tx, 1, v+1)
		if err := tx.Commit(); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
	chk := db.Begin()
	if got := mustGetV(t, chk, 1); got != 105 {
		t.Fatalf("value = %d", got)
	}
	chk.Abort()
}

// TestMoneyConservationUnderConcurrency is the core integration property:
// concurrent random transfers with retries must conserve the total
// balance under every concurrency-control mode.
func TestMoneyConservationUnderConcurrency(t *testing.T) {
	modes := []core.CCMode{core.SnapshotFUW, core.Strict2PL, core.SerializableSI}
	for _, mode := range modes {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			t.Parallel()
			db := Open(Config{Mode: mode, Platform: core.PlatformPostgres})
			defer db.Close()
			if err := db.CreateTable(kvSchema("T")); err != nil {
				t.Fatal(err)
			}
			const rows, perRow = 8, 1000
			seed := db.Begin()
			for k := int64(0); k < rows; k++ {
				if err := seed.Insert("T", kv(k, perRow)); err != nil {
					t.Fatal(err)
				}
			}
			if err := seed.Commit(); err != nil {
				t.Fatal(err)
			}

			const workers, transfers = 8, 60
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < transfers; i++ {
						from := rng.Int63n(rows)
						to := (from + 1 + rng.Int63n(rows-1)) % rows
						amt := rng.Int63n(20) + 1
						for attempt := 0; attempt < 200; attempt++ {
							if transferOnce(db, from, to, amt) {
								break
							}
						}
					}
				}(int64(w + 1))
			}
			wg.Wait()

			var total int64
			if err := db.ScanLatest("T", func(_ core.Value, rec core.Record) bool {
				total += rec[1].Int64()
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if total != rows*perRow {
				t.Fatalf("money not conserved: total = %d, want %d", total, rows*perRow)
			}
		})
	}
}

// transferOnce attempts one transfer; reports whether it completed
// (committed or legitimately skipped). Retriable failures return false.
func transferOnce(db *DB, from, to, amt int64) bool {
	tx := db.Begin()
	a, err := tx.Get("T", core.Int(from))
	if err != nil {
		tx.Abort()
		return !core.IsRetriable(err)
	}
	b, err := tx.Get("T", core.Int(to))
	if err != nil {
		tx.Abort()
		return !core.IsRetriable(err)
	}
	if a[1].Int64() < amt {
		tx.Abort()
		return true
	}
	if err := tx.Update("T", core.Int(from), kv(from, a[1].Int64()-amt)); err != nil {
		tx.Abort()
		return !core.IsRetriable(err)
	}
	if err := tx.Update("T", core.Int(to), kv(to, b[1].Int64()+amt)); err != nil {
		tx.Abort()
		return !core.IsRetriable(err)
	}
	return tx.Commit() == nil
}

func TestConcurrentIncrementsNeverLost(t *testing.T) {
	// N workers × M increments with retry; the final value must be
	// exactly N*M under SI (lost updates impossible).
	db := openKV(t, core.SnapshotFUW, core.PlatformPostgres)
	const workers, increments = 6, 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < increments; i++ {
				for {
					tx := db.Begin()
					v := mustGetVQuiet(tx, 1)
					if v < 0 {
						tx.Abort()
						continue
					}
					if err := tx.Update("T", core.Int(1), kv(1, v+1)); err != nil {
						tx.Abort()
						continue
					}
					if tx.Commit() == nil {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	chk := db.Begin()
	got := mustGetV(t, chk, 1)
	chk.Abort()
	if got != 100+workers*increments {
		t.Fatalf("final = %d, want %d", got, 100+workers*increments)
	}
}

// mustGetVQuiet is mustGetV without the testing.T (for retry loops).
// Returns -1 on error.
func mustGetVQuiet(tx *Tx, k int64) int64 {
	rec, err := tx.Get("T", core.Int(k))
	if err != nil {
		return -1
	}
	return rec[1].Int64()
}

func TestDefaultCostModels(t *testing.T) {
	pg := DefaultCostModel(core.PlatformPostgres)
	cm := DefaultCostModel(core.PlatformCommercial)
	// The paper's guideline 4: promotion faster than materialization on
	// PostgreSQL, the reverse on the commercial platform.
	if pg.PromoteUpdate >= pg.MaterializeWrite {
		t.Fatal("postgres cost model must favour promotion")
	}
	if cm.MaterializeWrite >= cm.PromoteUpdate {
		t.Fatal("commercial cost model must favour materialization")
	}
	s := pg.Scaled(2)
	if s.MaterializeWrite != 2*pg.MaterializeWrite || s.SelectForUpdate != 2*pg.SelectForUpdate {
		t.Fatal("Scaled broken")
	}
}

func TestConfigCostOverride(t *testing.T) {
	custom := CostModel{MaterializeWrite: time.Second}
	db := Open(Config{Mode: core.SnapshotFUW, Cost: &custom})
	defer db.Close()
	if db.Cost().MaterializeWrite != time.Second {
		t.Fatal("cost override ignored")
	}
}

func TestCommitSeqMonotonic(t *testing.T) {
	db := openKV(t, core.SnapshotFUW, core.PlatformPostgres)
	before := db.CommitSeq()
	tx := db.Begin()
	mustSetV(t, tx, 1, 1)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if after := db.CommitSeq(); after != before+1 {
		t.Fatalf("CommitSeq %d -> %d", before, after)
	}
	// Read-only commits do not advance the sequence.
	ro := db.Begin()
	_ = mustGetV(t, ro, 1)
	if err := ro.Commit(); err != nil {
		t.Fatal(err)
	}
	if db.CommitSeq() != before+1 {
		t.Fatal("read-only commit advanced CommitSeq")
	}
}

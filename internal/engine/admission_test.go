package engine

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sicost/internal/admission"
	"sicost/internal/core"
	"sicost/internal/wal"
)

// admDB builds a DB with a fixed-limit admission gate (controller
// effectively frozen by a huge interval) and table T preloaded.
func admDB(t *testing.T, limit, maxQueue int) *DB {
	t.Helper()
	db := Open(Config{
		Mode: core.SnapshotFUW,
		Admission: &admission.Config{
			InitialLimit: limit, MinLimit: limit, MaxLimit: limit,
			MaxQueue: maxQueue, Interval: time.Hour,
		},
	})
	if err := db.CreateTable(kvSchema("T")); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	for k := int64(0); k < 8; k++ {
		if err := tx.Insert("T", kv(k, k*100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestAdmissionLimitsConcurrency(t *testing.T) {
	db := admDB(t, 2, 8)
	defer db.Close()

	// Two admitted transactions fill the gate.
	tx1, tx2 := db.Begin(), db.Begin()
	if _, err := tx1.Get("T", core.Int(1)); err != nil {
		t.Fatal(err)
	}
	s := db.Admission().Stats()
	if s.Gate.InFlight != 2 {
		t.Fatalf("inflight = %d, want 2", s.Gate.InFlight)
	}

	// The third queues; it is admitted once a slot frees.
	done := make(chan error, 1)
	go func() {
		tx3 := db.Begin()
		_, err := tx3.Get("T", core.Int(1))
		tx3.Abort()
		done <- err
	}()
	waitCond(t, func() bool { return db.Admission().Stats().Gate.QueueDepth == 1 })
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("queued begin: %v", err)
	}
	tx2.Abort()
	if s := db.Admission().Stats(); s.Gate.InFlight != 0 {
		t.Fatalf("inflight after drain = %d", s.Gate.InFlight)
	}
}

func TestAdmissionShedsWithOverload(t *testing.T) {
	db := admDB(t, 1, 1)
	defer db.Close()

	tx1 := db.Begin() // holds the slot
	queued := make(chan error, 1)
	go func() {
		tx := db.Begin()
		err := tx.Update("T", core.Int(1), kv(1, 1))
		tx.Abort()
		queued <- err
	}()
	waitCond(t, func() bool { return db.Admission().Stats().Gate.QueueDepth == 1 })

	// Queue full: this Begin is shed. The handle is poisoned with the
	// retriable ErrOverload on every statement and on Commit.
	shed := db.Begin()
	if _, err := shed.Get("T", core.Int(1)); !errors.Is(err, core.ErrOverload) {
		t.Fatalf("shed statement: got %v, want ErrOverload", err)
	}
	if err := shed.Commit(); !errors.Is(err, core.ErrOverload) {
		t.Fatalf("shed commit: got %v, want ErrOverload", err)
	}
	if !core.IsRetriable(core.ErrOverload) {
		t.Fatal("ErrOverload must be retriable")
	}
	if s := db.Admission().Stats(); s.Gate.Shed != 1 {
		t.Fatalf("shed counter = %d, want 1", s.Gate.Shed)
	}
	tx1.Commit()
	if err := <-queued; err != nil {
		t.Fatalf("queued txn: %v", err)
	}
}

// TestAdmissionCloseWakesQueuedBegins is the shutdown-drain regression
// test (run under -race by `make race`): Close must wake every Begin
// queued at the gate with ErrShuttingDown — no goroutine may stay
// parked and no slot may leak — even while other Begins race in.
func TestAdmissionCloseWakesQueuedBegins(t *testing.T) {
	db := admDB(t, 2, 64)

	// Occupy both slots so every following Begin queues.
	held := []*Tx{db.Begin(), db.Begin()}

	const racers = 32
	var wg sync.WaitGroup
	var admitted, rejected atomic.Int64
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tx := db.Begin()
			_, err := tx.Get("T", core.Int(1))
			switch {
			case err == nil:
				admitted.Add(1)
			case errors.Is(err, core.ErrShuttingDown):
				rejected.Add(1)
			default:
				t.Errorf("raced begin: unexpected %v", err)
			}
			tx.Abort()
		}()
	}
	// Wait until the queue has genuinely formed, then race Close
	// against the remaining Begins and the holders' aborts.
	waitCond(t, func() bool { return db.Admission().Stats().Gate.QueueDepth > 0 })
	closed := make(chan struct{})
	go func() { db.Close(); close(closed) }()
	for _, tx := range held {
		tx.Abort()
	}
	wg.Wait()
	<-closed

	if admitted.Load()+rejected.Load() != racers {
		t.Fatalf("admitted %d + rejected %d != %d", admitted.Load(), rejected.Load(), racers)
	}
	s := db.Admission().Stats()
	if s.Gate.InFlight != 0 || s.Gate.QueueDepth != 0 {
		t.Fatalf("gate leak after close: %+v", s.Gate)
	}
}

func TestDeadlineExpiresBetweenStatements(t *testing.T) {
	db := openKV(t, core.SnapshotFUW, core.PlatformPostgres)
	defer db.Close()

	tx := db.Begin()
	tx.SetDeadline(time.Now().Add(5 * time.Millisecond))
	if _, err := tx.Get("T", core.Int(1)); err != nil {
		t.Fatalf("statement before deadline: %v", err)
	}
	time.Sleep(10 * time.Millisecond)
	if _, err := tx.Get("T", core.Int(2)); !errors.Is(err, core.ErrTxDeadline) {
		t.Fatalf("statement past deadline: got %v, want ErrTxDeadline", err)
	}
	// The handle is poisoned; Commit rolls back and reports the cause.
	if err := tx.Commit(); !errors.Is(err, core.ErrTxDeadline) {
		t.Fatalf("commit past deadline: got %v", err)
	}
	snap := db.TxnMetrics()
	if snap.Aborts[core.AbortDeadline] != 1 {
		t.Fatalf("AbortDeadline count = %d, want 1 (aborts: %v)", snap.Aborts[core.AbortDeadline], snap.Aborts)
	}
}

func TestDeadlineBoundsLockWait(t *testing.T) {
	db := openKV(t, core.SnapshotFUW, core.PlatformPostgres)
	defer db.Close()

	holder := db.Begin()
	if err := holder.Update("T", core.Int(1), kv(1, 101)); err != nil {
		t.Fatal(err)
	}

	waiter := db.Begin()
	waiter.SetDeadline(time.Now().Add(10 * time.Millisecond))
	start := time.Now()
	err := waiter.Update("T", core.Int(1), kv(1, 102))
	if !errors.Is(err, core.ErrTxDeadline) {
		t.Fatalf("lock wait past deadline: got %v, want ErrTxDeadline", err)
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("deadline did not bound the wait: %v", el)
	}
	waiter.Abort()
	if err := holder.Commit(); err != nil {
		t.Fatal(err)
	}
	if snap := db.TxnMetrics(); snap.Aborts[core.AbortDeadline] != 1 {
		t.Fatalf("AbortDeadline count = %d (aborts: %v)", snap.Aborts[core.AbortDeadline], snap.Aborts)
	}
	held, queued := db.LockAudit()
	if held != 0 || queued != 0 {
		t.Fatalf("lock leak: held=%d queued=%d", held, queued)
	}
}

func TestLockTimeoutStillLockTimeout(t *testing.T) {
	// With a lock timeout tighter than the deadline, the binding bound
	// is the lock timeout and the error class must stay retriable.
	db := openKV(t, core.SnapshotFUW, core.PlatformPostgres)
	defer db.Close()

	holder := db.Begin()
	if err := holder.Update("T", core.Int(1), kv(1, 101)); err != nil {
		t.Fatal(err)
	}
	waiter := db.Begin()
	waiter.SetLockWaitTimeout(5 * time.Millisecond)
	waiter.SetDeadline(time.Now().Add(time.Minute))
	if err := waiter.Update("T", core.Int(1), kv(1, 102)); !errors.Is(err, core.ErrLockTimeout) {
		t.Fatalf("got %v, want ErrLockTimeout", err)
	}
	waiter.Abort()
	holder.Abort()
}

func TestDefaultTxDeadlineFromConfig(t *testing.T) {
	db := Open(Config{Mode: core.SnapshotFUW, DefaultTxDeadline: 5 * time.Millisecond})
	defer db.Close()
	if err := db.CreateTable(kvSchema("T")); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	if tx.Deadline().IsZero() {
		t.Fatal("default deadline not stamped")
	}
	time.Sleep(10 * time.Millisecond)
	if err := tx.Insert("T", kv(1, 1)); !errors.Is(err, core.ErrTxDeadline) {
		t.Fatalf("got %v, want ErrTxDeadline", err)
	}
	tx.Abort()
}

// TestDeadlineDuringFlushGroupSync covers the WAL flush-group wait: a
// sync commit whose record is still queued behind a busy flusher when
// the deadline fires must withdraw and abort cleanly — versions
// unstamped, sequencer not wedged, nothing durable — while a record
// already claimed by a flush window completes fully durable.
func TestDeadlineDuringFlushGroupSync(t *testing.T) {
	dev := wal.NewMemDevice()
	db := Open(Config{
		Mode: core.SnapshotFUW,
		WAL:  wal.Config{Device: dev, FsyncLatency: 60 * time.Millisecond},
	})
	defer db.Close()
	if err := db.CreateTable(kvSchema("T")); err != nil {
		t.Fatal(err)
	}
	seed := db.Begin()
	if err := seed.Insert("T", kv(1, 100)); err != nil {
		t.Fatal(err)
	}
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}

	// tx1 occupies the flusher for ~60ms.
	tx1 := db.Begin()
	if err := tx1.Update("T", core.Int(1), kv(1, 101)); err != nil {
		t.Fatal(err)
	}
	tx1Done := make(chan error, 1)
	go func() { tx1Done <- tx1.Commit() }()
	time.Sleep(10 * time.Millisecond) // let the flush window claim tx1's record

	// tx2's record lands in pending behind the busy flusher; its
	// deadline fires mid-wait and the record is withdrawn.
	tx2 := db.Begin()
	if err := tx2.Insert("T", kv(2, 200)); err != nil {
		t.Fatal(err)
	}
	tx2.SetDeadline(time.Now().Add(15 * time.Millisecond))
	if err := tx2.Commit(); !errors.Is(err, core.ErrTxDeadline) {
		t.Fatalf("flush-wait commit: got %v, want ErrTxDeadline", err)
	}

	// tx1 was already in flight: it must complete durable.
	if err := <-tx1Done; err != nil {
		t.Fatalf("in-flight commit: %v", err)
	}

	// The sequencer is not wedged (tx2's CSN published as empty slot)
	// and tx2's write is fully rolled back.
	tx3 := db.Begin()
	if _, err := tx3.Get("T", core.Int(2)); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("withdrawn write visible: err=%v", err)
	}
	if err := tx3.Update("T", core.Int(1), kv(1, 102)); err != nil {
		t.Fatal(err)
	}
	if err := tx3.Commit(); err != nil {
		t.Fatalf("post-withdraw commit: %v", err)
	}

	// Recovery from the device must see tx1 and tx3 but never tx2:
	// fully durable or cleanly aborted, no half-published state.
	rdb, _, err := Recover(dev, Config{Mode: core.SnapshotFUW})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer rdb.Close()
	rtx := rdb.Begin()
	if rec, err := rtx.Get("T", core.Int(1)); err != nil || rec[1].Int64() != 102 {
		t.Fatalf("recovered row 1 = %v, %v; want 102", rec, err)
	}
	if _, err := rtx.Get("T", core.Int(2)); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("withdrawn commit resurrected after recovery: err=%v", err)
	}
	rtx.Abort()
}

// TestDeadlineDuringFlushGroupInFlight: when the deadline fires after
// the record has been claimed by a flush window (withdraw loses), the
// commit must wait out the verdict and succeed — late but fully
// durable, never half-published.
func TestDeadlineDuringFlushGroupInFlight(t *testing.T) {
	dev := wal.NewMemDevice()
	db := Open(Config{
		Mode: core.SnapshotFUW,
		WAL:  wal.Config{Device: dev, FsyncLatency: 40 * time.Millisecond},
	})
	defer db.Close()
	if err := db.CreateTable(kvSchema("T")); err != nil {
		t.Fatal(err)
	}

	tx := db.Begin()
	if err := tx.Insert("T", kv(1, 100)); err != nil {
		t.Fatal(err)
	}
	// The deadline expires inside the 40ms flush, but the record is
	// claimed by the flush window the moment it is enqueued (idle
	// flusher): withdraw must lose and the commit complete.
	tx.SetDeadline(time.Now().Add(10 * time.Millisecond))
	if err := tx.Commit(); err != nil {
		t.Fatalf("in-flight commit past deadline: %v", err)
	}
	if err := db.WaitDurable(tx.CommitCSN()); err != nil {
		t.Fatalf("durability: %v", err)
	}

	rdb, _, err := Recover(dev, Config{Mode: core.SnapshotFUW})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer rdb.Close()
	rtx := rdb.Begin()
	if rec, err := rtx.Get("T", core.Int(1)); err != nil || rec[1].Int64() != 100 {
		t.Fatalf("recovered row = %v, %v; want 100", rec, err)
	}
	rtx.Abort()
}

// TestDeadlineAsyncCommitNeverHalfPublished: an async commit checks the
// deadline before publishing; once published it owes durability and the
// deadline can no longer tear it. Either outcome is all-or-nothing.
func TestDeadlineAsyncCommitNeverHalfPublished(t *testing.T) {
	dev := wal.NewMemDevice()
	db := Open(Config{
		Mode:        core.SnapshotFUW,
		WAL:         wal.Config{Device: dev, FsyncLatency: 30 * time.Millisecond},
		AsyncCommit: true,
	})
	defer db.Close()
	if err := db.CreateTable(kvSchema("T")); err != nil {
		t.Fatal(err)
	}

	// Expired before commit: aborts cleanly, nothing published.
	tx1 := db.Begin()
	if err := tx1.Insert("T", kv(1, 100)); err != nil {
		t.Fatal(err)
	}
	tx1.SetDeadline(time.Now().Add(-time.Millisecond))
	if err := tx1.Commit(); !errors.Is(err, core.ErrTxDeadline) {
		t.Fatalf("expired async commit: got %v, want ErrTxDeadline", err)
	}

	// Deadline expiring during the flush: the commit already published
	// and returns success; the durability future resolves.
	tx2 := db.Begin()
	if err := tx2.Insert("T", kv(2, 200)); err != nil {
		t.Fatal(err)
	}
	tx2.SetDeadline(time.Now().Add(5 * time.Millisecond))
	if err := tx2.Commit(); err != nil {
		t.Fatalf("async commit: %v", err)
	}
	if err := <-tx2.Durable(); err != nil {
		t.Fatalf("durability future: %v", err)
	}

	rdb, _, err := Recover(dev, Config{Mode: core.SnapshotFUW})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer rdb.Close()
	rtx := rdb.Begin()
	if _, err := rtx.Get("T", core.Int(1)); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("aborted async commit resurrected: err=%v", err)
	}
	if rec, err := rtx.Get("T", core.Int(2)); err != nil || rec[1].Int64() != 200 {
		t.Fatalf("recovered row 2 = %v, %v; want 200", rec, err)
	}
	rtx.Abort()
}

func waitCond(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 2s")
		}
		time.Sleep(100 * time.Microsecond)
	}
}

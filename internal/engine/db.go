// Package engine implements the transactional database engines the paper
// evaluates on: snapshot isolation with the First-Updater-Wins rule (the
// PostgreSQL platform), the commercial platform's SI variant (where
// SELECT ... FOR UPDATE participates in write-conflict detection), strict
// two-phase locking, and — as a forward-looking extension — serializable
// SI (runtime rw-antidependency detection).
//
// The engine is an in-memory multiversion system over internal/storage.
// Simulated hardware costs (CPU service time, WAL fsyncs with group
// commit) are charged at the points where the real systems pay them, so
// the workload driver reproduces the paper's throughput shapes.
package engine

import (
	"sync"
	"sync/atomic"
	"time"

	"sicost/internal/admission"
	"sicost/internal/core"
	"sicost/internal/faultinject"
	"sicost/internal/metrics"
	"sicost/internal/simres"
	"sicost/internal/storage"
	"sicost/internal/trace"
	"sicost/internal/wal"
)

// Fault-point names of the engine's hot paths. Points past the commit
// point (CSN allocation and publication) are delay-only: an injected
// error there could not be rolled back without acknowledging a lie, so
// only stalls are honoured (see faultinject.FireDelayOnly).
const (
	// FaultBegin fires when a transaction starts, before its snapshot
	// is taken. An injected error poisons the handle (every statement
	// and the commit return it); a delay stalls the snapshot point.
	FaultBegin = "engine/begin"
	// FaultLockAcquire fires before every row-lock acquisition (the
	// 2PL read path and the write/select-for-update paths of every
	// mode).
	FaultLockAcquire = "engine/lock/acquire"
	// FaultCommitStamp fires at the head of an updating commit's
	// stamping phase, before the CSN is allocated — the last point
	// where the commit can still abort cleanly (locks released,
	// versions unlinked).
	FaultCommitStamp = "engine/commit/stamp"
	// FaultCSNAlloc fires inside CSN allocation (delay-only): a stall
	// here backs up every concurrent committer behind the sequencer.
	FaultCSNAlloc = "engine/commit/csn-alloc"
	// FaultCSNPublish fires after the commit's CSN is published but
	// before its locks release (delay-only): a stall here holds row
	// locks across an already-visible commit, the regime FUW waiters
	// suffer under a slow committer.
	FaultCSNPublish = "engine/commit/csn-publish"
)

// Config assembles one database instance.
type Config struct {
	// Mode selects the concurrency-control algorithm.
	Mode core.CCMode
	// Platform selects behavioural details (select-for-update semantics,
	// cost model defaults) for SI modes.
	Platform core.Platform
	// Res parameterizes the simulated machine; zero disables the model.
	Res simres.Config
	// WAL parameterizes the simulated log device; zero disables it.
	WAL wal.Config
	// AsyncCommit makes Commit return as soon as the commit is
	// published, without waiting for its WAL record to reach the platter
	// (PostgreSQL's synchronous_commit=off). The commit is visible to
	// other transactions immediately; durability arrives later and can
	// be awaited via Tx.Durable or DB.WaitDurable. A crash may lose the
	// tail of acknowledged-but-not-yet-durable commits — never a commit
	// whose durability future has resolved. Per-transaction override:
	// Tx.SetAsync.
	AsyncCommit bool
	// Cost overrides the per-strategy statement penalties; when zero,
	// platform defaults apply (see DefaultCostModel).
	Cost *CostModel
	// LockWaitTimeout bounds every row-lock wait; a wait that exceeds
	// it fails with core.ErrLockTimeout (retriable). Zero waits
	// forever. Transactions can override per-handle with
	// Tx.SetLockWaitTimeout.
	LockWaitTimeout time.Duration
	// Admission, when non-nil, puts an adaptive concurrency gate in
	// front of Begin: at most limit transactions execute at once, up
	// to MaxQueue more wait FIFO, and the rest are shed with
	// core.ErrOverload. An AIMD controller moves the limit from
	// commit-latency and abort-attribution deltas; enabling admission
	// therefore also enables commit-latency metering (two clock reads
	// per updating commit — see SetMetricsEnabled).
	Admission *admission.Config
	// DefaultTxDeadline, when positive, stamps every transaction with
	// deadline = Begin time + DefaultTxDeadline. The deadline is
	// honoured in the admission queue, between statements, in lock
	// waits (bounding them alongside LockWaitTimeout) and in the
	// sync-commit WAL flush-group wait; expiry fails the transaction
	// with core.ErrTxDeadline (classified AbortDeadline). Transactions
	// can override per-handle with Tx.SetDeadline.
	DefaultTxDeadline time.Duration
	// CheckpointLogBytes, when positive, runs a background scheduler
	// that takes a fuzzy incremental checkpoint (CheckpointIncremental)
	// whenever the log has grown by at least this many bytes since the
	// last checkpoint. Requires a durable device; ignored otherwise.
	CheckpointLogBytes int64
	// CheckpointChainMax bounds the delta chain: every
	// CheckpointChainMax-th link is written as a full (base-0) link,
	// re-rooting the chain and advancing the segment-retirement bound.
	// Zero means DefaultCheckpointChainMax.
	CheckpointChainMax int
	// RetireSegments unlinks sealed segments wholly covered by the
	// checkpoint chain after each completed link (segmented devices
	// only), bounding log size online without the stop-the-world
	// Rewrite.
	RetireSegments bool
	// ArchiveDir, when non-empty, copies each retired segment there
	// before the unlink — the point-in-time-recovery source.
	ArchiveDir string
	// Faults is the fault-injection registry consulted by the engine,
	// storage and WAL fault points; nil (the default) compiles every
	// hook down to a pointer test.
	Faults *faultinject.Registry
	// Tracer records transaction-lifecycle events (internal/trace); nil
	// (the default) compiles every emission point down to a pointer
	// test, and a disabled recorder costs one extra atomic load.
	Tracer *trace.Recorder
}

// VersionRef identifies a version a transaction read or wrote, for the
// serializability checker.
type VersionRef struct {
	Table string
	Key   core.Value
	// CSN is the commit sequence number of the version read (for reads)
	// or created (for writes; filled at commit).
	CSN uint64
}

// TxInfo is the post-commit summary handed to the Observer.
type TxInfo struct {
	ID        uint64
	StartCSN  uint64
	CommitCSN uint64
	ReadOnly  bool
	// Tag is application-provided (the SmallBank driver stores the
	// transaction type) for anomaly reports.
	Tag string
	// Reads lists versions read (excluding reads of the txn's own
	// writes). Writes lists versions created.
	Reads  []VersionRef
	Writes []VersionRef
	// SFU lists rows select-for-updated (commercial platform semantics
	// make these behave like writes for concurrency control).
	SFU []VersionRef
}

// Observer receives every commit, in commit order for updating
// transactions. The serializability checker implements it.
type Observer interface {
	OnCommit(TxInfo)
}

// WaitObserver is the engine's step-yield hook: it is told whenever a
// transaction blocks on a row lock (the FUW and 2PL wait paths) and
// whenever a blocked transaction is resolved — woken with the lock
// granted (err == nil) or ejected because it aborted while queued
// (err != nil). Wake notifications fire synchronously inside the
// operation that causes them (a commit, abort or failed statement of
// another transaction), before that operation returns, so a scripted
// scheduler (internal/detsim) can drive transactions through exact
// statement-level interleavings without wall-clock grace periods.
// Callbacks run with the lock table's mutex held: they must be quick and
// must not call back into the database.
type WaitObserver interface {
	OnTxWait(txID uint64, table string, key core.Value)
	OnTxWake(txID uint64, table string, key core.Value, err error)
}

// DB is one simulated database instance.
type DB struct {
	cfg     Config
	cost    CostModel
	store   *storage.Store
	locks   *storage.LockTable
	log     *wal.WAL
	machine *simres.Machine

	// Commit sequencing. The old design held one RWMutex across the
	// whole stamping loop (every snapshot blocked behind every commit);
	// the sequencer now has two short phases. allocCSNEnqueue hands out the
	// next CSN under seqMu; the committer stamps its versions with no
	// global lock held (write conflicts are already excluded per row by
	// the sharded lock table — the stamped rows are X-locked by this
	// transaction); publishCSN then advances visibleCSN in CSN order, so
	// a snapshot (an atomic load of visibleCSN) can never observe a
	// half-stamped commit: versions with CSN > visibleCSN are simply
	// not visible yet.
	seqMu      sync.Mutex
	seqWaiters map[uint64]chan struct{} // csn → its committer's wait channel
	nextCSN    uint64                   // last allocated CSN; guarded by seqMu
	visibleCSN atomic.Uint64
	// ckptMu is the checkpoint barrier: every updating commit holds the
	// read side across its allocCSNEnqueue→publishCSN window (WAL enqueue
	// included), so Checkpoint's write side opens only when no commit is
	// between allocation and publication. At that instant every
	// allocated CSN is published, which is what lets the checkpoint
	// rewrite (truncate) the log without losing redo work: sync commits
	// are durable before they publish, and an async commit's pending
	// frame carries a CSN ≤ the cut, so the snapshot already covers it
	// (recovery skips the late frame).
	ckptMu sync.RWMutex
	// Fuzzy incremental checkpoint state. ckptRunMu serializes whole
	// checkpoint runs (STW and incremental — a run spans the barrier
	// cut, the streamed link and the end-marker sync); ckptStateMu
	// guards the chain bookkeeping those runs update.
	ckptRunMu   sync.Mutex
	ckptStateMu sync.Mutex
	// chainBase is the cut of the newest durable chain link (0: no
	// chain — the next link must be full); chainLinks the chain length
	// including the root; chainRootSeg the segment index sampled while
	// appending the root's begin marker — the retirement bound (0
	// disables retirement until the next full link re-roots).
	chainBase    uint64
	chainLinks   int
	chainRootSeg int
	// ckptPauseNS accumulates commit-barrier hold time across
	// checkpoints; lastPauseNS is the most recent hold. incrCkpts and
	// fullLinks count completed links and chain re-roots.
	ckptPauseNS atomic.Int64
	lastPauseNS atomic.Int64
	incrCkpts   atomic.Int64
	fullLinks   atomic.Int64
	// ckptStop/ckptDone manage the log-growth checkpoint scheduler.
	ckptStop chan struct{}
	ckptDone chan struct{}
	ckptOnce sync.Once
	// seqWaits counts commits that had to wait in publishCSN for an
	// earlier CSN to publish (commit-sequencer contention).
	seqWaits atomic.Uint64

	nextTxID atomic.Uint64

	faults *faultinject.Registry

	// Shutdown: Close flips closing under closeMu, then waits for the
	// in-flight transaction count to drain. Begin registers new
	// transactions under the same mutex, so no registration can slip
	// past a started drain.
	closeMu  sync.Mutex
	closing  bool
	inflight sync.WaitGroup
	// inflightN mirrors the WaitGroup as a readable gauge: the number of
	// registered (begun, not yet ended) transactions. The server layer's
	// leak audits assert it returns to zero after a drain.
	inflightN atomic.Int64

	// gate is the admission limiter (nil when Config.Admission is nil).
	// Begin acquires a slot before registering with the shutdown drain;
	// endTx releases it. Close closes the gate first, so every queued
	// Begin wakes with ErrShuttingDown before the drain waits.
	gate    *admission.Limiter
	admStop chan struct{}
	admDone chan struct{}
	admOnce sync.Once

	// defaultDeadline is Config.DefaultTxDeadline as live state
	// (nanoseconds), so SetDefaultTxDeadline can arm or disarm the
	// per-transaction budget on a running database — e.g. load without
	// deadlines, then measure with them.
	defaultDeadline atomic.Int64

	obsMu    sync.Mutex
	observer Observer

	ssi *ssiState

	commits atomic.Uint64
	aborts  atomic.Uint64

	// tracer records lifecycle events; nil disables every emission point.
	tracer *trace.Recorder
	// txnMetrics holds the abort taxonomy and the lock-wait/commit-latency
	// histograms; always allocated (recording into it is atomic adds).
	txnMetrics metrics.TxnMetrics
	// meterCommitLatency gates the commit-latency histogram's time.Now
	// calls: the workload driver enables it for measured runs, keeping
	// the default commit path free of clock reads.
	meterCommitLatency atomic.Bool
}

// Open creates a database instance from cfg.
func Open(cfg Config) *DB {
	cost := DefaultCostModel(cfg.Platform)
	if cfg.Cost != nil {
		cost = *cfg.Cost
	}
	db := &DB{
		cfg:     cfg,
		cost:    cost,
		store:   storage.NewStore(),
		locks:   storage.NewLockTable(),
		log:     wal.New(cfg.WAL),
		machine: simres.New(cfg.Res),
		faults:  cfg.Faults,
	}
	if cfg.Faults != nil {
		db.store.SetFaults(cfg.Faults)
		db.log.SetFaults(cfg.Faults)
	}
	db.locks.SetWaitHistogram(&db.txnMetrics.LockWait)
	if cfg.Tracer != nil {
		db.setTracer(cfg.Tracer)
	}
	db.seqWaiters = make(map[uint64]chan struct{})
	if cfg.Mode == core.SerializableSI {
		db.ssi = newSSIState()
	}
	db.defaultDeadline.Store(int64(cfg.DefaultTxDeadline))
	if cfg.Admission != nil {
		db.gate = admission.New(*cfg.Admission)
		// The controller steers by commit latency; metering must be on.
		db.meterCommitLatency.Store(true)
		db.admStop = make(chan struct{})
		db.admDone = make(chan struct{})
		go db.admissionLoop()
	}
	if cfg.CheckpointLogBytes > 0 && db.log.Persistent() {
		db.ckptStop = make(chan struct{})
		db.ckptDone = make(chan struct{})
		go db.ckptLoop()
	}
	return db
}

// admissionLoop is the controller tick: every limiter interval it feeds
// the AIMD controller the metrics delta since the previous tick —
// commits, storm aborts (serialization + deadlock + lock-timeout, the
// classes that feed retry storms) and the commit-latency quantiles.
func (db *DB) admissionLoop() {
	defer close(db.admDone)
	prev := db.txnMetrics.Snapshot()
	t := time.NewTicker(db.gate.Interval())
	defer t.Stop()
	for {
		select {
		case <-db.admStop:
			return
		case <-t.C:
			cur := db.txnMetrics.Snapshot()
			d := cur.Delta(prev)
			prev = cur
			lat := d.CommitLatency
			db.gate.Observe(admission.Observation{
				Commits: d.Commits,
				StormAborts: d.Aborts[core.AbortSerialization] +
					d.Aborts[core.AbortDeadlock] +
					d.Aborts[core.AbortLockTimeout],
				CommitP50: lat.Quantile(0.50),
				CommitP99: lat.Quantile(0.99),
			})
		}
	}
}

// Admission returns the admission limiter, nil when admission control
// is disabled. The cmd layer publishes its Stats as the
// sicost_admission expvar.
func (db *DB) Admission() *admission.Limiter { return db.gate }

// allocCSNEnqueue allocates the next CSN and enqueues the commit's WAL
// record under the same seqMu critical section, so the log's enqueue
// order is exactly CSN order. That invariant is what makes the WAL's
// durability watermark a prefix property: when CSN n is durable, every
// logged commit ≤ n is durable too (the foundation of WaitDurable and
// of async-commit recovery losing only a tail). On enqueue failure the
// CSN is still returned — the committer must publish it as an empty
// slot so the publication sequence stays gapless.
func (db *DB) allocCSNEnqueue(rec *wal.Record) (uint64, <-chan error, error) {
	db.faults.FireDelayOnly(FaultCSNAlloc, faultinject.Ctx{})
	db.seqMu.Lock()
	db.nextCSN++
	csn := db.nextCSN
	rec.CSN = csn
	done, err := db.log.Enqueue(rec)
	db.seqMu.Unlock()
	return csn, done, err
}

// publishCSN makes csn visible to new snapshots, in CSN order: a
// committer whose predecessor is still stamping waits here. The wait is
// bounded — between allocCSNEnqueue and publishCSN a committer only stamps
// already-X-locked rows and index entries, never blocks on a lock — so
// the sequencer cannot deadlock. Publication is an exact handoff, not a
// broadcast: a committer that arrives early parks on its own channel,
// and whoever publishes csn-1 closes it — each advance wakes exactly
// the one goroutine that can make progress.
func (db *DB) publishCSN(csn uint64) {
	db.seqMu.Lock()
	if db.visibleCSN.Load() != csn-1 {
		db.seqWaits.Add(1)
		ch := make(chan struct{})
		db.seqWaiters[csn] = ch
		db.seqMu.Unlock()
		<-ch // closed by csn-1's publisher, after visibleCSN reaches csn-1
		db.seqMu.Lock()
	}
	db.visibleCSN.Store(csn)
	if ch, ok := db.seqWaiters[csn+1]; ok {
		delete(db.seqWaiters, csn+1)
		close(ch)
	}
	db.seqMu.Unlock()
}

// Close shuts the database down: new Begins are rejected with a handle
// poisoned by core.ErrShuttingDown, in-flight transactions are drained
// (Close blocks until each has committed or aborted), and the simulated
// log device is closed last, so no draining commit races the WAL
// teardown. Idempotent; concurrent Closes all block until the drain
// completes.
func (db *DB) Close() {
	db.closeMu.Lock()
	db.closing = true
	db.closeMu.Unlock()
	if db.gate != nil {
		// Wake every queued Begin with ErrShuttingDown before waiting
		// on the drain: queued waiters are not registered in-flight, so
		// without this they would hang forever (and with it, none can
		// slip past — a waiter granted concurrently with Close loses to
		// the closing flag above and releases its slot).
		db.gate.Close()
		db.admOnce.Do(func() { close(db.admStop) })
		<-db.admDone
	}
	db.inflight.Wait()
	if db.ckptStop != nil {
		db.ckptOnce.Do(func() { close(db.ckptStop) })
		<-db.ckptDone
	}
	// Drain before Close: with async commit, acknowledged transactions
	// may still have records in the flush queue — a graceful shutdown
	// makes them durable instead of failing them.
	db.log.Drain()
	db.log.Close()
}

// WaitDurable blocks until the commit with sequence number csn is
// durable on the log device. It returns immediately for csn 0 (a
// read-only commit has nothing to persist) and when no log is attached
// (every commit is trivially "as durable as it will ever get"). With a
// broken device it returns the sticky error: the commit is visible but
// will not survive a crash.
func (db *DB) WaitDurable(csn uint64) error {
	if csn == 0 || !db.log.Enabled() {
		return nil
	}
	return db.log.WaitDurableCSN(csn)
}

// DurableSeq returns the newest CSN such that every acked commit at or
// below it is both visible and durable. Without a log that is simply
// the visible high-water mark; otherwise it is the log's acked-durable
// watermark capped by visibility. The cap matters in both directions: a
// sync commit is durable before it publishes (durable briefly leads
// visible), while an async commit publishes before its flush lands
// (visible leads durable — the durability lag CommitSeq − DurableSeq
// measures). Visible alone is never a safe answer while the log is
// enabled: a CSN published as an empty slot — a commit withdrawn from
// the flush queue at its deadline, or torn off by an enqueue failure —
// was never acknowledged and never reaches the device, so the visible
// mark can overshoot what recovery is able to find.
func (db *DB) DurableSeq() uint64 {
	visible := db.visibleCSN.Load()
	if !db.log.Enabled() {
		return visible
	}
	durable, _ := db.log.DurableWatermark()
	if durable < visible {
		return durable
	}
	return visible
}

// LockAudit reports the lock table's outstanding grants and queued
// waiters. A quiescent database must report 0/0; the chaos harness's
// lock-leak invariant checks exactly that after a faulted run.
func (db *DB) LockAudit() (held, queued int) { return db.locks.Outstanding() }

// Faults returns the fault-injection registry the database was opened
// with (nil when fault injection is disabled).
func (db *DB) Faults() *faultinject.Registry { return db.faults }

// CreateTable declares a table. With a durable log attached the schema
// is appended as a DDL frame, so a log that has never been checkpointed
// still rebuilds its table definitions on recovery. The create and the
// DDL append run under the checkpoint barrier's read side: a checkpoint
// cutting between them could snapshot the store without the table and
// then Rewrite the log, discarding the schema frame permanently — later
// commit frames for the table would then fail recovery.
func (db *DB) CreateTable(schema *core.Schema) error {
	db.ckptMu.RLock()
	defer db.ckptMu.RUnlock()
	if _, err := db.store.CreateTable(schema); err != nil {
		return err
	}
	return db.log.AppendSchema(schema)
}

// DefaultCheckpointChainMax is the chain-length bound applied when
// Config.CheckpointChainMax is zero: the 8th link after a re-root is
// written full again, advancing the segment-retirement bound.
const DefaultCheckpointChainMax = 8

// Checkpoint serializes a consistent snapshot of the database at the
// current commit high-water mark and truncates the log to it, bounding
// recovery's replay cost. It requires a durable log device. The
// snapshot is point-in-time consistent: it is taken under the commit
// barrier (see ckptMu) — every commit stalls for the whole snapshot
// and rewrite, the stop-the-world cost CheckpointIncremental exists to
// avoid. Returns the cut.
func (db *DB) Checkpoint() (uint64, error) {
	if !db.log.Persistent() {
		return 0, core.ErrWALClosed
	}
	db.ckptRunMu.Lock()
	defer db.ckptRunMu.Unlock()
	start := time.Now()
	db.ckptMu.Lock()
	cut := db.visibleCSN.Load()
	// The full image supersedes the dirty epochs; drain them so the
	// next incremental link is not bloated with keys the image covers.
	for _, name := range db.store.TableNames() {
		if t, terr := db.store.Table(name); terr == nil {
			t.SwapDirty()
		}
	}
	ckpt, err := (&wal.Checkpointer{Log: db.log}).Run(db.store, cut)
	sample := 0
	if err == nil {
		if sl, ok := db.log.Device().(*wal.SegmentLog); ok {
			sample = sl.CurrentSegment()
		}
	}
	db.ckptMu.Unlock()
	pause := time.Since(start).Nanoseconds()
	db.ckptPauseNS.Add(pause)
	db.lastPauseNS.Store(pause)
	if err != nil {
		db.resetChain()
		return 0, err
	}
	// The checkpoint frame is a valid chain root: delta links may build
	// on its cut (foldChain accepts Base == the frame's CSN).
	db.ckptStateMu.Lock()
	db.chainBase, db.chainLinks, db.chainRootSeg = cut, 1, sample
	db.ckptStateMu.Unlock()
	if db.tracer.Enabled() {
		db.tracer.Emit(trace.Event{Kind: trace.EvCheckpoint, CSN: cut, Bytes: len(wal.EncodeCheckpoint(ckpt))})
	}
	return cut, nil
}

// CheckpointIncremental takes one fuzzy checkpoint: a delta link over
// the keys dirtied since the previous link (or a full base-0 link when
// there is no chain, or the chain reached CheckpointChainMax). The
// commit barrier is held only for the cut — read the visible CSN, swap
// the dirty epochs, append the begin marker, sample the retirement
// bound — while the expensive parts (resolving after-images, streaming
// them, the end-marker sync) run concurrently with commits: versions
// at or below the cut are immutable, and appending the begin marker
// under the barrier guarantees no commit with CSN > cut precedes it in
// the byte stream. After a full link completes, segments wholly behind
// the chain root are retired when Config.RetireSegments is set.
// Returns the cut (unchanged and without writing anything when no
// commit landed since the previous link).
func (db *DB) CheckpointIncremental() (uint64, error) {
	if !db.log.Persistent() {
		return 0, core.ErrWALClosed
	}
	db.ckptRunMu.Lock()
	defer db.ckptRunMu.Unlock()

	db.ckptStateMu.Lock()
	base, links := db.chainBase, db.chainLinks
	sample := db.chainRootSeg
	db.ckptStateMu.Unlock()
	chainMax := db.cfg.CheckpointChainMax
	if chainMax <= 0 {
		chainMax = DefaultCheckpointChainMax
	}
	full := base == 0 || links >= chainMax

	start := time.Now()
	db.ckptMu.Lock()
	cut := db.visibleCSN.Load()
	if cut == 0 || (!full && cut <= base) {
		db.ckptMu.Unlock()
		return cut, nil // nothing committed since the previous link
	}
	dirty := make(map[string][]core.Value)
	for _, name := range db.store.TableNames() {
		t, terr := db.store.Table(name)
		if terr != nil {
			continue
		}
		keys := t.SwapDirty()
		if !full && len(keys) > 0 {
			dirty[name] = keys
		}
	}
	begin := &wal.DeltaBegin{CSN: cut, Schemas: wal.Schemas(db.store)}
	if !full {
		begin.Base = base
	}
	if full {
		// Sampled before the append: if the begin itself triggers a
		// rotation the marker lands one segment later, so the bound only
		// ever errs conservative (one extra segment kept).
		sample = 0
		if sl, ok := db.log.Device().(*wal.SegmentLog); ok {
			sample = sl.CurrentSegment()
		}
	}
	linkBytes, err := db.log.BeginDelta(begin)
	db.ckptMu.Unlock()
	pause := time.Since(start).Nanoseconds()
	db.ckptPauseNS.Add(pause)
	db.lastPauseNS.Store(pause)
	if err != nil {
		db.resetChain()
		return 0, err
	}

	var rows []wal.DeltaRow
	if full {
		rows = wal.SnapshotAll(db.store, cut)
	} else {
		rows = wal.SnapshotDelta(db.store, dirty, cut)
	}
	if db.tracer.Enabled() {
		db.tracer.Emit(trace.Event{Kind: trace.EvCkptBegin, CSN: cut, Depth: len(rows)})
	}
	const deltaBatch = 256
	for off := 0; off < len(rows); off += deltaBatch {
		end := off + deltaBatch
		if end > len(rows) {
			end = len(rows)
		}
		n, derr := db.log.AppendDeltaRows(&wal.DeltaRows{CSN: cut, Rows: rows[off:end]})
		if derr != nil {
			db.resetChain()
			return 0, derr
		}
		linkBytes += n
	}
	n, err := db.log.EndDelta(&wal.DeltaEnd{CSN: cut, Rows: uint64(len(rows))})
	if err != nil {
		db.resetChain()
		return 0, err
	}
	linkBytes += n

	db.incrCkpts.Add(1)
	if full {
		db.fullLinks.Add(1)
	}
	db.ckptStateMu.Lock()
	db.chainBase = cut
	if full {
		db.chainLinks = 1
		db.chainRootSeg = sample
	} else {
		db.chainLinks++
	}
	links = db.chainLinks
	bound := db.chainRootSeg
	db.ckptStateMu.Unlock()
	if db.tracer.Enabled() {
		db.tracer.Emit(trace.Event{Kind: trace.EvCkptEnd, CSN: cut, Depth: links, Bytes: linkBytes})
	}
	if db.cfg.RetireSegments && bound > 0 {
		if _, _, rerr := db.log.Retire(bound, db.cfg.ArchiveDir); rerr != nil {
			return cut, rerr
		}
	}
	return cut, nil
}

// resetChain abandons the in-memory chain state after a failed link:
// whatever the log holds, the next checkpoint starts a fresh full link
// (which also covers the dirty epoch the failed run drained).
func (db *DB) resetChain() {
	db.ckptStateMu.Lock()
	db.chainBase, db.chainLinks, db.chainRootSeg = 0, 0, 0
	db.ckptStateMu.Unlock()
}

// ckptLoopInterval is the checkpoint scheduler's poll period.
const ckptLoopInterval = 5 * time.Millisecond

// ckptLoop is the log-growth checkpoint scheduler: whenever the device
// has accumulated Config.CheckpointLogBytes of appends since the last
// completed checkpoint, it takes an incremental one. Failures are left
// for the next tick (a bricked WAL fails fast until recovery).
func (db *DB) ckptLoop() {
	defer close(db.ckptDone)
	t := time.NewTicker(ckptLoopInterval)
	defer t.Stop()
	last := db.log.Stats().Bytes
	for {
		select {
		case <-db.ckptStop:
			return
		case <-t.C:
			if db.log.Broken() != nil {
				continue
			}
			if db.log.Stats().Bytes-last < db.cfg.CheckpointLogBytes {
				continue
			}
			if _, err := db.CheckpointIncremental(); err != nil {
				continue
			}
			last = db.log.Stats().Bytes
		}
	}
}

// CheckpointStats reports the engine-side fuzzy-checkpoint counters;
// the WAL-side view (delta links durable, retired and archived
// segments) lives in wal.Stats.
type CheckpointStats struct {
	// Links counts completed incremental links, FullLinks the chain
	// re-roots among them (STW checkpoints count in neither — see
	// wal.Stats.Checkpoints).
	Links     int64
	FullLinks int64
	// ChainLinks and ChainBase describe the current chain: its length
	// including the root, and the newest durable cut.
	ChainLinks int
	ChainBase  uint64
	// DirtyKeys is the dirty-set size across all tables (a gauge,
	// approximate under concurrent commits).
	DirtyKeys int
	// PauseNS is the cumulative commit-barrier hold time across
	// checkpoints (an STW run counts its whole snapshot and rewrite);
	// LastPauseNS the most recent hold.
	PauseNS     int64
	LastPauseNS int64
}

// CheckpointStats snapshots the fuzzy-checkpoint counters.
func (db *DB) CheckpointStats() CheckpointStats {
	s := CheckpointStats{
		Links:       db.incrCkpts.Load(),
		FullLinks:   db.fullLinks.Load(),
		PauseNS:     db.ckptPauseNS.Load(),
		LastPauseNS: db.lastPauseNS.Load(),
	}
	db.ckptStateMu.Lock()
	s.ChainLinks, s.ChainBase = db.chainLinks, db.chainBase
	db.ckptStateMu.Unlock()
	for _, name := range db.store.TableNames() {
		if t, err := db.store.Table(name); err == nil {
			s.DirtyKeys += t.DirtyCount()
		}
	}
	return s
}

// Mode returns the configured concurrency-control mode.
func (db *DB) Mode() core.CCMode { return db.cfg.Mode }

// Platform returns the configured platform profile.
func (db *DB) Platform() core.Platform { return db.cfg.Platform }

// Cost returns the active strategy cost model.
func (db *DB) Cost() CostModel { return db.cost }

// Machine exposes the simulated hardware (the workload driver registers
// its sessions on it).
func (db *DB) Machine() *simres.Machine { return db.machine }

// SetResources replaces the simulated hardware. The experiment harness
// loads the database on a free machine and installs the measured
// resource model afterwards; it must not be called while transactions
// are in flight.
func (db *DB) SetResources(cfg simres.Config) { db.machine = simres.New(cfg) }

// WAL exposes the simulated log device for stats and fault injection.
func (db *DB) WAL() *wal.WAL { return db.log }

// SetObserver installs the commit observer (nil disables).
func (db *DB) SetObserver(o Observer) {
	db.obsMu.Lock()
	db.observer = o
	db.obsMu.Unlock()
}

// SetWaitObserver installs the lock wait/wake observer (nil disables).
// Must not be called while transactions are in flight.
func (db *DB) SetWaitObserver(o WaitObserver) {
	if o == nil {
		db.locks.SetHooks(storage.WaitHooks{})
		return
	}
	db.locks.SetHooks(storage.WaitHooks{
		OnWait: func(tx uint64, key storage.LockKey) {
			o.OnTxWait(tx, key.Table, key.Key)
		},
		OnWake: func(tx uint64, key storage.LockKey, err error) {
			o.OnTxWake(tx, key.Table, key.Key, err)
		},
	})
}

// CommitSeq returns the current global commit sequence number (the
// newest published CSN).
func (db *DB) CommitSeq() uint64 { return db.visibleCSN.Load() }

// ContentionStats aggregates the engine's synchronization counters: the
// sharded lock table's per-stripe wait/deadlock statistics and the
// commit sequencer's publish waits. The workload driver reports the
// delta over a measurement interval alongside throughput.
type ContentionStats struct {
	Lock storage.LockStats
	// CommitPublishWaits counts commits that waited for an earlier CSN
	// to finish stamping before publishing their own.
	CommitPublishWaits uint64
}

// Delta returns s minus an earlier snapshot.
func (s ContentionStats) Delta(prev ContentionStats) ContentionStats {
	return ContentionStats{
		Lock:               s.Lock.Delta(prev.Lock),
		CommitPublishWaits: s.CommitPublishWaits - prev.CommitPublishWaits,
	}
}

// Contention snapshots the engine's contention counters.
func (db *DB) Contention() ContentionStats {
	return ContentionStats{
		Lock:               db.locks.Stats(),
		CommitPublishWaits: db.seqWaits.Load(),
	}
}

// Stats returns cumulative commit and abort counts.
func (db *DB) Stats() (commits, aborts uint64) {
	return db.commits.Load(), db.aborts.Load()
}

// setTracer wires a recorder into every emission layer (engine, lock
// table, WAL).
func (db *DB) setTracer(r *trace.Recorder) {
	db.tracer = r
	db.locks.SetTracer(r)
	db.log.SetTracer(r)
}

// SetTracer installs (or, with nil, removes) the lifecycle-event
// recorder after Open. Must not be called while transactions are in
// flight; to pause and resume capture on a live database, keep the
// recorder installed and use its SetEnabled switch instead.
func (db *DB) SetTracer(r *trace.Recorder) { db.setTracer(r) }

// Tracer returns the installed lifecycle recorder (nil when tracing is
// not configured).
func (db *DB) Tracer() *trace.Recorder { return db.tracer }

// TxnMetrics snapshots the engine's transaction metrics: commit count,
// the abort taxonomy, and the lock-wait and commit-latency histograms.
// Snapshots from two points of a run diff with TxnSnapshot.Delta.
func (db *DB) TxnMetrics() metrics.TxnSnapshot { return db.txnMetrics.Snapshot() }

// SetMetricsEnabled gates the commit-latency histogram (it needs two
// clock reads per updating commit, which the ≤5%-overhead budget keeps
// off the default path). Abort taxonomy and lock-wait metrics are
// always on: they only touch cold paths.
func (db *DB) SetMetricsEnabled(on bool) { db.meterCommitLatency.Store(on) }

// SetDefaultTxDeadline changes the per-transaction time budget stamped
// on every future Begin (0 disarms it). In-flight transactions keep the
// deadline they began with.
func (db *DB) SetDefaultTxDeadline(d time.Duration) { db.defaultDeadline.Store(int64(d)) }

// Begin starts a transaction. The returned Tx must be finished with
// Commit or Abort; it is not safe for concurrent use by multiple
// goroutines (like a SQL session).
func (db *DB) Begin() *Tx {
	// The begin fault fires before the transaction is registered, so an
	// injected panic here unwinds without leaving shutdown bookkeeping
	// behind.
	beginErr := db.faults.Fire(FaultBegin, faultinject.Ctx{})

	var deadline time.Time
	if d := time.Duration(db.defaultDeadline.Load()); d > 0 {
		deadline = time.Now().Add(d)
	}

	// The admission gate sits before shutdown registration: a queued
	// Begin holds no engine resources, and Close wakes the whole queue
	// with ErrShuttingDown before draining registered transactions.
	admitted := false
	if db.gate != nil {
		if aerr := db.gate.Acquire(deadline); aerr != nil {
			// Rejected handle: shed (ErrOverload), expired
			// (ErrTxDeadline) or shutdown. Every statement and the
			// commit return the error; Abort is a cheap cleanup.
			return &Tx{db: db, failedErr: aerr}
		}
		admitted = true
	}

	db.closeMu.Lock()
	if db.closing {
		db.closeMu.Unlock()
		if admitted {
			db.gate.Release()
		}
		// Rejected handle: every statement and the commit return
		// ErrShuttingDown; Abort is a cheap no-op-ish cleanup.
		return &Tx{db: db, failedErr: core.ErrShuttingDown}
	}
	db.inflight.Add(1)
	db.inflightN.Add(1)
	db.closeMu.Unlock()

	// Per-transaction base CPU (parse, plan, session round trip), plus
	// the commercial platform's per-session overhead at the current MPL.
	// Charged before the snapshot is taken, as in the real systems where
	// it precedes the first data access.
	db.machine.UseCPU(db.machine.TxnCost(0))

	// The snapshot point is one atomic load: every CSN ≤ visibleCSN is
	// fully stamped (publishCSN advances in order, after stamping).
	start := db.visibleCSN.Load()

	tx := &Tx{
		db:       db,
		id:       db.nextTxID.Add(1),
		start:    start,
		reg:      true,
		admitted: admitted,
		lockWait: db.cfg.LockWaitTimeout,
		deadline: deadline,
	}
	if beginErr != nil {
		tx.failedErr = beginErr
	}
	if db.ssi != nil {
		db.ssi.begin(tx)
	}
	if db.tracer.Enabled() {
		db.tracer.Emit(trace.Event{Kind: trace.EvBegin, Tx: tx.id, CSN: start})
		db.tracer.Emit(trace.Event{Kind: trace.EvSnapshot, Tx: tx.id, CSN: start})
	}
	return tx
}

// endTx retires a registered transaction from the shutdown drain.
// Called exactly once per registered handle, from Commit or Abort.
func (db *DB) endTx(tx *Tx) {
	if tx.reg {
		tx.reg = false
		if tx.admitted {
			tx.admitted = false
			db.gate.Release()
		}
		db.inflightN.Add(-1)
		db.inflight.Done()
	}
}

// InFlightTxns returns the number of registered transactions that have
// begun and not yet committed or aborted. A quiescent database reports
// zero; the server chaos harness's leaked-transaction invariant checks
// exactly that after every drain.
func (db *DB) InFlightTxns() int64 { return db.inflightN.Load() }

// ScanLatest iterates the newest committed record of every row of the
// named table, in key order. It bypasses transactions and is intended
// for loaders, invariant verification and tests.
func (db *DB) ScanLatest(table string, fn func(key core.Value, rec core.Record) bool) error {
	t, err := db.store.Table(table)
	if err != nil {
		return err
	}
	for _, k := range t.Keys() {
		row := t.Row(k)
		if row == nil {
			continue
		}
		v := row.NewestCommitted()
		if v == nil || v.Rec == nil {
			continue
		}
		if !fn(k, v.Rec) {
			break
		}
	}
	return nil
}

// ScanAsOf iterates the newest record of every row of the named table
// whose commit CSN is at or below cut, walking version chains past
// newer commits — the state a recovery limited to the durable prefix
// [1, cut] rebuilds. The async crash-consistency audits use it to
// compute "published state restricted to acked-durable CSNs" from the
// live database, without replaying the log. Like ScanLatest it bypasses
// transactions; versions of in-flight transactions (CSN 0) are skipped.
func (db *DB) ScanAsOf(table string, cut uint64, fn func(key core.Value, rec core.Record) bool) error {
	t, err := db.store.Table(table)
	if err != nil {
		return err
	}
	for _, k := range t.Keys() {
		row := t.Row(k)
		if row == nil {
			continue
		}
		v := row.Head()
		for v != nil {
			if c := v.CSN(); c != 0 && c <= cut {
				break
			}
			v = v.Prev
		}
		if v == nil || v.Rec == nil {
			continue
		}
		if !fn(k, v.Rec) {
			break
		}
	}
	return nil
}

// notifyCommit delivers the commit record to the observer if installed.
func (db *DB) notifyCommit(info TxInfo) {
	db.obsMu.Lock()
	o := db.observer
	db.obsMu.Unlock()
	if o != nil {
		o.OnCommit(info)
	}
}

package engine

import (
	"sync"

	"sicost/internal/core"
	"sicost/internal/storage"
)

// ssi.go implements the SerializableSI mode: snapshot isolation extended
// with runtime read-write antidependency tracking in the style of Cahill,
// Röhm and Fekete's Serializable Snapshot Isolation (which PostgreSQL 9.1
// later adopted). It is the engine-level alternative to the paper's
// application-level program modifications and powers the extension
// experiments.
//
// The algorithm is the "essential dangerous structure" approximation:
// every transaction tracks whether it has an incoming and an outgoing
// rw-antidependency with a concurrent transaction. A transaction that
// acquires both is a potential pivot of a dangerous structure and is
// aborted (or, when it can no longer be aborted because it is committing
// or committed, the transaction that would complete the structure is
// aborted instead). This is conservative — false positives abort some
// serializable executions — but admits no non-serializable execution,
// which the checker-based tests assert.

// ssiTxn is the SSI bookkeeping attached to one transaction.
type ssiTxn struct {
	id    uint64
	start uint64

	// All fields below are guarded by ssiState.mu.
	in, out    bool
	dead       bool
	committing bool
	finished   bool
	commitCSN  uint64 // 0 if active or aborted

	deadFlag chan struct{} // closed on doom, for cheap polling
}

// unabortable reports whether this transaction can no longer be chosen
// as the abort victim.
func (t *ssiTxn) unabortable() bool {
	return t.committing || (t.finished && t.commitCSN != 0)
}

// doomed is polled by the transaction's own goroutine without the state
// lock.
func (t *ssiTxn) isDoomed() bool {
	select {
	case <-t.deadFlag:
		return true
	default:
		return false
	}
}

// ssiState is the per-database SSI side structure.
type ssiState struct {
	mu      sync.Mutex
	active  map[uint64]*ssiTxn
	readers map[storage.LockKey][]*ssiTxn // SIREAD marks
	writers map[storage.LockKey][]*ssiTxn
	sweeps  int
}

func newSSIState() *ssiState {
	return &ssiState{
		active:  make(map[uint64]*ssiTxn),
		readers: make(map[storage.LockKey][]*ssiTxn),
		writers: make(map[storage.LockKey][]*ssiTxn),
	}
}

// begin registers tx and attaches its SSI record.
func (s *ssiState) begin(tx *Tx) {
	t := &ssiTxn{id: tx.id, start: tx.start, deadFlag: make(chan struct{})}
	tx.ssi = t
	s.mu.Lock()
	s.active[tx.id] = t
	s.mu.Unlock()
}

// concurrent reports whether u overlapped t (t is active). Committing
// transactions are conservatively treated as concurrent.
func concurrent(t, u *ssiTxn) bool {
	if !u.finished {
		return true
	}
	if u.commitCSN == 0 {
		return false // aborted: no dependency survives
	}
	return u.commitCSN > t.start
}

// doom marks victim dead; when victim can no longer abort, fallback dies
// instead. Caller holds s.mu.
func doom(victim, fallback *ssiTxn) {
	if victim.unabortable() {
		victim = fallback
	}
	if victim.unabortable() || victim.dead {
		return
	}
	victim.dead = true
	close(victim.deadFlag)
}

// setRW records an antidependency reader→writer and aborts any pivot it
// creates. Caller holds s.mu.
func setRW(reader, writer *ssiTxn) {
	reader.out = true
	writer.in = true
	if reader.in && reader.out {
		doom(reader, writer)
	}
	if writer.in && writer.out {
		doom(writer, reader)
	}
}

// onRead registers an SIREAD mark for tx on the row and flags
// antidependencies to concurrent writers of that row.
func (s *ssiState) onRead(tx *Tx, table string, key core.Value, _ *storage.Row) error {
	k := storage.LockKey{Table: table, Key: key}
	me := tx.ssi
	s.mu.Lock()
	defer s.mu.Unlock()
	s.readers[k] = addTxn(s.pruneLocked(s.readers, k), me)
	for _, w := range s.writers[k] {
		if w.id != me.id && concurrent(me, w) && concurrentBack(w, me) {
			setRW(me, w)
		}
	}
	if me.dead {
		return core.ErrSerialization
	}
	return nil
}

// onWrite registers tx as a writer of the row and flags antidependencies
// from concurrent readers.
func (s *ssiState) onWrite(tx *Tx, table string, key core.Value) error {
	k := storage.LockKey{Table: table, Key: key}
	me := tx.ssi
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writers[k] = addTxn(s.pruneLocked(s.writers, k), me)
	for _, r := range s.readers[k] {
		if r.id != me.id && concurrent(me, r) && concurrentBack(r, me) {
			setRW(r, me)
		}
	}
	if me.dead {
		return core.ErrSerialization
	}
	return nil
}

// concurrentBack checks overlap from the finished side: u (possibly
// finished) overlapped the active transaction t only if u did not commit
// before t began — that is handled by concurrent(t, u) — and t did not
// begin after u committed. For an active t both reduce to the same CSN
// comparison, so this simply mirrors concurrent for symmetry of intent.
func concurrentBack(t, u *ssiTxn) bool { return concurrent(t, u) }

// precommit transitions tx into the committing state; from here on it
// cannot be chosen as an abort victim. Returns ErrSerialization if tx
// was already doomed.
func (s *ssiState) precommit(tx *Tx) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if tx.ssi.dead {
		return core.ErrSerialization
	}
	tx.ssi.committing = true
	return nil
}

// finish records tx's commit CSN and deregisters it from the active set.
func (s *ssiState) finish(tx *Tx, csn uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tx.ssi.finished = true
	tx.ssi.committing = false
	tx.ssi.commitCSN = csn
	delete(s.active, tx.id)
	s.maybeSweepLocked()
}

// abort deregisters an aborted tx.
func (s *ssiState) abort(tx *Tx) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tx.ssi.finished = true
	tx.ssi.committing = false
	tx.ssi.commitCSN = 0
	delete(s.active, tx.id)
	s.maybeSweepLocked()
}

// minActiveStart returns the smallest snapshot among active transactions,
// or ^uint64(0) when none are active. Caller holds s.mu.
func (s *ssiState) minActiveStart() uint64 {
	min := ^uint64(0)
	for _, t := range s.active {
		if t.start < min {
			min = t.start
		}
	}
	return min
}

// removable reports whether a list entry can never matter again: the
// transaction finished and no active (or future) transaction can be
// concurrent with it. Caller holds s.mu.
func (s *ssiState) removable(t *ssiTxn, minStart uint64) bool {
	if !t.finished {
		return false
	}
	if t.commitCSN == 0 {
		return true // aborted
	}
	return t.commitCSN <= minStart
}

// pruneLocked compacts one key's list. Caller holds s.mu.
func (s *ssiState) pruneLocked(m map[storage.LockKey][]*ssiTxn, k storage.LockKey) []*ssiTxn {
	list := m[k]
	minStart := s.minActiveStart()
	kept := list[:0]
	for _, t := range list {
		if !s.removable(t, minStart) {
			kept = append(kept, t)
		}
	}
	if len(kept) == 0 {
		delete(m, k)
		return nil
	}
	m[k] = kept
	return kept
}

// maybeSweepLocked performs a full prune of both maps every few hundred
// transaction completions, bounding memory on long runs. Caller holds
// s.mu.
func (s *ssiState) maybeSweepLocked() {
	s.sweeps++
	if s.sweeps%512 != 0 {
		return
	}
	minStart := s.minActiveStart()
	for _, m := range []map[storage.LockKey][]*ssiTxn{s.readers, s.writers} {
		for k, list := range m {
			kept := list[:0]
			for _, t := range list {
				if !s.removable(t, minStart) {
					kept = append(kept, t)
				}
			}
			if len(kept) == 0 {
				delete(m, k)
			} else {
				m[k] = kept
			}
		}
	}
}

// addTxn appends t if absent.
func addTxn(list []*ssiTxn, t *ssiTxn) []*ssiTxn {
	for _, e := range list {
		if e == t {
			return list
		}
	}
	return append(list, t)
}

// doomed is the cheap per-statement check used by Tx.stmt.
func (t *ssiTxn) doomed() bool { return t.isDoomed() }

package engine

import (
	"errors"
	"testing"
	"time"

	"sicost/internal/core"
)

// kvSchema is a minimal two-column table used throughout the tests.
func kvSchema(name string) *core.Schema {
	return &core.Schema{
		Name: name,
		Columns: []core.Column{
			{Name: "K", Kind: core.KindInt, NotNull: true},
			{Name: "V", Kind: core.KindInt, NotNull: true},
		},
		PK: 0,
	}
}

func kv(k, v int64) core.Record { return core.Record{core.Int(k), core.Int(v)} }

// openKV builds a DB in the given mode/platform with table T preloaded
// with (1,100) and (2,200). No simulated costs: pure semantics tests.
func openKV(t *testing.T, mode core.CCMode, platform core.Platform) *DB {
	t.Helper()
	db := Open(Config{Mode: mode, Platform: platform})
	if err := db.CreateTable(kvSchema("T")); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	for k, v := range map[int64]int64{1: 100, 2: 200} {
		if err := tx.Insert("T", kv(k, v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	return db
}

func mustGetV(t *testing.T, tx *Tx, k int64) int64 {
	t.Helper()
	rec, err := tx.Get("T", core.Int(k))
	if err != nil {
		t.Fatalf("Get(%d): %v", k, err)
	}
	return rec[1].Int64()
}

func mustSetV(t *testing.T, tx *Tx, k, v int64) {
	t.Helper()
	if err := tx.Update("T", core.Int(k), kv(k, v)); err != nil {
		t.Fatalf("Update(%d,%d): %v", k, v, err)
	}
}

func TestBasicCRUDAndVisibility(t *testing.T) {
	db := openKV(t, core.SnapshotFUW, core.PlatformPostgres)

	// Uncommitted insert invisible to a concurrent snapshot.
	tx1 := db.Begin()
	if err := tx1.Insert("T", kv(3, 300)); err != nil {
		t.Fatal(err)
	}
	tx2 := db.Begin()
	if _, err := tx2.Get("T", core.Int(3)); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("uncommitted insert visible: %v", err)
	}
	// But visible to its creator.
	if got := mustGetV(t, tx1, 3); got != 300 {
		t.Fatalf("own insert = %d", got)
	}
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	// Still invisible to tx2 (snapshot predates commit).
	if _, err := tx2.Get("T", core.Int(3)); !errors.Is(err, core.ErrNotFound) {
		t.Fatal("snapshot must not move forward")
	}
	tx2.Abort()

	// A fresh snapshot sees it.
	tx3 := db.Begin()
	if got := mustGetV(t, tx3, 3); got != 300 {
		t.Fatalf("committed insert = %d", got)
	}
	// Delete, then a point read fails.
	if err := tx3.Delete("T", core.Int(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := tx3.Get("T", core.Int(3)); !errors.Is(err, core.ErrNotFound) {
		t.Fatal("own delete must hide the row")
	}
	if err := tx3.Commit(); err != nil {
		t.Fatal(err)
	}
	tx4 := db.Begin()
	if _, err := tx4.Get("T", core.Int(3)); !errors.Is(err, core.ErrNotFound) {
		t.Fatal("committed delete must hide the row")
	}
	tx4.Abort()
}

func TestRepeatableReads(t *testing.T) {
	db := openKV(t, core.SnapshotFUW, core.PlatformPostgres)

	reader := db.Begin()
	if got := mustGetV(t, reader, 1); got != 100 {
		t.Fatal("setup")
	}

	writer := db.Begin()
	mustSetV(t, writer, 1, 111)
	if err := writer.Commit(); err != nil {
		t.Fatal(err)
	}

	// SI: the reader's second read must see the snapshot value.
	if got := mustGetV(t, reader, 1); got != 100 {
		t.Fatalf("non-repeatable read: %d", got)
	}
	reader.Abort()

	fresh := db.Begin()
	if got := mustGetV(t, fresh, 1); got != 111 {
		t.Fatalf("new snapshot = %d", got)
	}
	fresh.Abort()
}

func TestInconsistentReadPrevented(t *testing.T) {
	// A transfer moves 50 from row 1 to row 2; a concurrent reader must
	// see either both effects or neither (here: neither, by snapshot).
	db := openKV(t, core.SnapshotFUW, core.PlatformPostgres)

	reader := db.Begin()
	v1 := mustGetV(t, reader, 1)

	transfer := db.Begin()
	mustSetV(t, transfer, 1, 50)
	mustSetV(t, transfer, 2, 250)
	if err := transfer.Commit(); err != nil {
		t.Fatal(err)
	}

	v2 := mustGetV(t, reader, 2)
	if v1+v2 != 300 {
		t.Fatalf("inconsistent read: %d + %d", v1, v2)
	}
	reader.Abort()
}

func TestFirstUpdaterWinsAfterCommit(t *testing.T) {
	db := openKV(t, core.SnapshotFUW, core.PlatformPostgres)

	t1 := db.Begin()
	t2 := db.Begin()
	mustSetV(t, t1, 1, 101)
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	// t2 is concurrent with t1 and writes the same row: must fail.
	err := t2.Update("T", core.Int(1), kv(1, 102))
	if !errors.Is(err, core.ErrSerialization) {
		t.Fatalf("err = %v, want ErrSerialization", err)
	}
	t2.Abort()

	t3 := db.Begin()
	if got := mustGetV(t, t3, 1); got != 101 {
		t.Fatalf("value = %d, want t1's write", got)
	}
	t3.Abort()
}

func TestFUWBlockThenAbortOnCommit(t *testing.T) {
	db := openKV(t, core.SnapshotFUW, core.PlatformPostgres)

	t1 := db.Begin()
	t2 := db.Begin()
	mustSetV(t, t1, 1, 101) // t1 holds the row lock

	errc := make(chan error, 1)
	go func() {
		errc <- t2.Update("T", core.Int(1), kv(1, 102))
	}()
	select {
	case err := <-errc:
		t.Fatalf("t2 did not block: %v", err)
	case <-time.After(20 * time.Millisecond):
	}

	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; !errors.Is(err, core.ErrSerialization) {
		t.Fatalf("after holder commit: %v, want ErrSerialization", err)
	}
	t2.Abort()
}

func TestFUWBlockThenProceedOnAbort(t *testing.T) {
	db := openKV(t, core.SnapshotFUW, core.PlatformPostgres)

	t1 := db.Begin()
	t2 := db.Begin()
	mustSetV(t, t1, 1, 101)

	errc := make(chan error, 1)
	go func() {
		errc <- t2.Update("T", core.Int(1), kv(1, 102))
	}()
	time.Sleep(10 * time.Millisecond)

	t1.Abort()
	if err := <-errc; err != nil {
		t.Fatalf("after holder abort, waiter must proceed: %v", err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}

	t3 := db.Begin()
	if got := mustGetV(t, t3, 1); got != 102 {
		t.Fatalf("value = %d, want waiter's write", got)
	}
	t3.Abort()
}

func TestLostUpdatePrevented(t *testing.T) {
	// Two increments race; SI guarantees one aborts rather than losing
	// an update.
	db := openKV(t, core.SnapshotFUW, core.PlatformPostgres)

	t1 := db.Begin()
	t2 := db.Begin()
	v1 := mustGetV(t, t1, 1)
	v2 := mustGetV(t, t2, 1)
	mustSetV(t, t1, 1, v1+10)
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	err := t2.Update("T", core.Int(1), kv(1, v2+10))
	if !errors.Is(err, core.ErrSerialization) {
		t.Fatalf("lost update not prevented: %v", err)
	}
	t2.Abort()
}

func TestWriteSkewAllowedUnderSI(t *testing.T) {
	// The anomaly the whole paper is about: disjoint writes after
	// overlapping reads both commit under plain SI.
	db := openKV(t, core.SnapshotFUW, core.PlatformPostgres)

	t1 := db.Begin()
	t2 := db.Begin()
	s1 := mustGetV(t, t1, 1) + mustGetV(t, t1, 2)
	s2 := mustGetV(t, t2, 1) + mustGetV(t, t2, 2)
	if s1 != 300 || s2 != 300 {
		t.Fatal("setup")
	}
	mustSetV(t, t1, 1, -50) // each alone keeps sum >= 0
	mustSetV(t, t2, 2, -50)
	if err := t1.Commit(); err != nil {
		t.Fatalf("t1: %v", err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatalf("t2 must also commit under SI (write skew): %v", err)
	}

	t3 := db.Begin()
	if sum := mustGetV(t, t3, 1) + mustGetV(t, t3, 2); sum != -100 {
		t.Fatalf("final sum = %d; write skew should have corrupted to -100", sum)
	}
	t3.Abort()
}

func TestWriteSkewPreventedUnderSSI(t *testing.T) {
	db := openKV(t, core.SerializableSI, core.PlatformPostgres)

	t1 := db.Begin()
	t2 := db.Begin()
	_ = mustGetV(t, t1, 1)
	_ = mustGetV(t, t1, 2)
	_ = mustGetV(t, t2, 1)
	_ = mustGetV(t, t2, 2)

	err1 := t1.Update("T", core.Int(1), kv(1, -50))
	err2 := t2.Update("T", core.Int(2), kv(2, -50))
	var err3, err4 error
	if err1 == nil {
		err3 = t1.Commit()
	} else {
		t1.Abort()
	}
	if err2 == nil {
		err4 = t2.Commit()
	} else {
		t2.Abort()
	}
	failures := 0
	for _, e := range []error{err1, err2, err3, err4} {
		if errors.Is(e, core.ErrSerialization) {
			failures++
		}
	}
	if failures == 0 {
		t.Fatal("SSI allowed write skew: no serialization failure raised")
	}
}

func TestWriteSkewPreventedUnder2PL(t *testing.T) {
	db := openKV(t, core.Strict2PL, core.PlatformPostgres)

	// Run the two halves concurrently with retries; 2PL must serialize
	// them (via blocking and deadlock aborts) so the sum constraint
	// "withdraw only if total >= withdrawal" holds.
	run := func(readK, writeK int64, done chan<- error) {
		for {
			tx := db.Begin()
			a, err := tx.Get("T", core.Int(readK))
			if err != nil {
				tx.Abort()
				if core.IsRetriable(err) {
					continue
				}
				done <- err
				return
			}
			b, err := tx.Get("T", core.Int(writeK))
			if err != nil {
				tx.Abort()
				if core.IsRetriable(err) {
					continue
				}
				done <- err
				return
			}
			total := a[1].Int64() + b[1].Int64()
			if total < 250 {
				tx.Abort()
				done <- nil
				return
			}
			if err := tx.Update("T", core.Int(writeK), kv(writeK, b[1].Int64()-250)); err != nil {
				tx.Abort()
				if core.IsRetriable(err) {
					continue
				}
				done <- err
				return
			}
			if err := tx.Commit(); err != nil {
				if core.IsRetriable(err) {
					continue
				}
				done <- err
				return
			}
			done <- nil
			return
		}
	}
	d1, d2 := make(chan error, 1), make(chan error, 1)
	go run(2, 1, d1)
	go run(1, 2, d2)
	if err := <-d1; err != nil {
		t.Fatal(err)
	}
	if err := <-d2; err != nil {
		t.Fatal(err)
	}

	tx := db.Begin()
	sum := mustGetV(t, tx, 1) + mustGetV(t, tx, 2)
	tx.Abort()
	// Initial sum 300; each withdrawal of 250 requires total >= 250.
	// Serial execution permits exactly one withdrawal: sum = 50.
	if sum != 50 {
		t.Fatalf("2PL let both withdrawals through: sum = %d, want 50", sum)
	}
}

func TestSelectForUpdatePostgresInterleaving(t *testing.T) {
	// §II-C: in PostgreSQL the interleaving begin(T) begin(U)
	// read-sfu(T,x) commit(T) write(U,x) commit(U) is ALLOWED even
	// though it leaves a vulnerable rw edge from T to U.
	db := openKV(t, core.SnapshotFUW, core.PlatformPostgres)

	T := db.Begin()
	U := db.Begin()
	if _, err := T.ReadForUpdate("T", core.Int(1)); err != nil {
		t.Fatal(err)
	}
	if err := T.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := U.Update("T", core.Int(1), kv(1, 999)); err != nil {
		t.Fatalf("PostgreSQL sfu must not block a later writer: %v", err)
	}
	if err := U.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestSelectForUpdateCommercialConflicts(t *testing.T) {
	// The commercial platform treats sfu like an update: the same
	// interleaving must raise a serialization failure for U.
	db := openKV(t, core.SnapshotFUW, core.PlatformCommercial)

	T := db.Begin()
	U := db.Begin()
	if _, err := T.ReadForUpdate("T", core.Int(1)); err != nil {
		t.Fatal(err)
	}
	if err := T.Commit(); err != nil {
		t.Fatal(err)
	}
	err := U.Update("T", core.Int(1), kv(1, 999))
	if !errors.Is(err, core.ErrSerialization) {
		t.Fatalf("commercial sfu must conflict with a concurrent writer: %v", err)
	}
	U.Abort()

	// And the other direction: a commercial sfu against a concurrently
	// committed write fails too.
	T2 := db.Begin()
	W := db.Begin()
	mustSetV(t, W, 1, 7)
	if err := W.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := T2.ReadForUpdate("T", core.Int(1)); !errors.Is(err, core.ErrSerialization) {
		t.Fatalf("sfu after concurrent committed write: %v", err)
	}
	T2.Abort()
}

func TestSelectForUpdateBlocksWhileHeld(t *testing.T) {
	for _, platform := range []core.Platform{core.PlatformPostgres, core.PlatformCommercial} {
		db := openKV(t, core.SnapshotFUW, platform)
		T := db.Begin()
		if _, err := T.ReadForUpdate("T", core.Int(1)); err != nil {
			t.Fatal(err)
		}
		U := db.Begin()
		errc := make(chan error, 1)
		go func() { errc <- U.Update("T", core.Int(1), kv(1, 5)) }()
		select {
		case err := <-errc:
			t.Fatalf("%v: writer did not block behind sfu: %v", platform, err)
		case <-time.After(20 * time.Millisecond):
		}
		T.Abort() // releases the lock without a conflict mark
		if err := <-errc; err != nil {
			t.Fatalf("%v: writer after sfu abort: %v", platform, err)
		}
		U.Abort()
		db.Close()
	}
}

func TestDeadlockDetectedUnderSI(t *testing.T) {
	db := openKV(t, core.SnapshotFUW, core.PlatformPostgres)

	t1 := db.Begin()
	t2 := db.Begin()
	mustSetV(t, t1, 1, 11)
	mustSetV(t, t2, 2, 22)

	errc := make(chan error, 1)
	go func() { errc <- t1.Update("T", core.Int(2), kv(2, 12)) }()
	time.Sleep(10 * time.Millisecond)
	err := t2.Update("T", core.Int(1), kv(1, 21))
	if !errors.Is(err, core.ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	t2.Abort()
	if err := <-errc; err != nil {
		t.Fatalf("survivor: %v", err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestTxDoneSemantics(t *testing.T) {
	db := openKV(t, core.SnapshotFUW, core.PlatformPostgres)
	tx := db.Begin()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, core.ErrTxDone) {
		t.Fatalf("double commit: %v", err)
	}
	if _, err := tx.Get("T", core.Int(1)); !errors.Is(err, core.ErrTxDone) {
		t.Fatalf("use after commit: %v", err)
	}
	tx.Abort() // no-op, must not panic or double-count
	commits, aborts := db.Stats()
	// openKV's loader commit + this commit; no aborts.
	if commits != 2 || aborts != 0 {
		t.Fatalf("stats = %d commits, %d aborts", commits, aborts)
	}
}

func TestAbortRestoresState(t *testing.T) {
	db := openKV(t, core.SnapshotFUW, core.PlatformPostgres)
	tx := db.Begin()
	mustSetV(t, tx, 1, 999)
	if err := tx.Insert("T", kv(9, 900)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete("T", core.Int(2)); err != nil {
		t.Fatal(err)
	}
	tx.Abort()

	chk := db.Begin()
	if got := mustGetV(t, chk, 1); got != 100 {
		t.Fatalf("update survived abort: %d", got)
	}
	if got := mustGetV(t, chk, 2); got != 200 {
		t.Fatalf("delete survived abort: %d", got)
	}
	if _, err := chk.Get("T", core.Int(9)); !errors.Is(err, core.ErrNotFound) {
		t.Fatal("insert survived abort")
	}
	chk.Abort()
}

func TestUpdateValidation(t *testing.T) {
	db := openKV(t, core.SnapshotFUW, core.PlatformPostgres)
	tx := db.Begin()
	defer tx.Abort()
	if err := tx.Update("T", core.Int(1), kv(2, 5)); err == nil {
		t.Fatal("primary key change accepted")
	}
	if err := tx.Update("T", core.Int(1), core.Record{core.Int(1)}); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if err := tx.Update("T", core.Int(42), kv(42, 5)); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("update missing row: %v", err)
	}
	if err := tx.Update("Missing", core.Int(1), kv(1, 5)); err == nil {
		t.Fatal("missing table accepted")
	}
	if _, err := tx.Get("Missing", core.Int(1)); err == nil {
		t.Fatal("get from missing table accepted")
	}
	if err := tx.Delete("T", core.Int(42)); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("delete missing row: %v", err)
	}
	if err := tx.Insert("T", kv(1, 5)); !errors.Is(err, core.ErrUniqueViolation) {
		t.Fatalf("duplicate PK insert: %v", err)
	}
}

func TestDoubleWriteSameRowInTxn(t *testing.T) {
	db := openKV(t, core.SnapshotFUW, core.PlatformPostgres)
	tx := db.Begin()
	mustSetV(t, tx, 1, 110)
	mustSetV(t, tx, 1, 120)
	if got := mustGetV(t, tx, 1); got != 120 {
		t.Fatalf("second write lost within txn: %d", got)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	chk := db.Begin()
	if got := mustGetV(t, chk, 1); got != 120 {
		t.Fatalf("committed value = %d", got)
	}
	chk.Abort()
	// The version chain must not contain two uncommitted leftovers.
}

func TestWALFailureAbortsCommit(t *testing.T) {
	db := Open(Config{
		Mode: core.SnapshotFUW, Platform: core.PlatformPostgres,
		WAL: walConfigForTest(),
	})
	defer db.Close()
	if err := db.CreateTable(kvSchema("T")); err != nil {
		t.Fatal(err)
	}
	seed := db.Begin()
	if err := seed.Insert("T", kv(1, 100)); err != nil {
		t.Fatal(err)
	}
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}

	db.WAL().InjectFailure(core.ErrInjected)
	tx := db.Begin()
	mustSetV(t, tx, 1, 999)
	if err := tx.Commit(); !errors.Is(err, core.ErrInjected) {
		t.Fatalf("commit with failing WAL: %v", err)
	}
	db.WAL().InjectFailure(nil)

	chk := db.Begin()
	if got := mustGetV(t, chk, 1); got != 100 {
		t.Fatalf("failed commit leaked: %d", got)
	}
	chk.Abort()
}

func TestReadOnlyCommitSkipsWAL(t *testing.T) {
	db := Open(Config{
		Mode: core.SnapshotFUW, Platform: core.PlatformPostgres,
		WAL: walConfigForTest(),
	})
	defer db.Close()
	if err := db.CreateTable(kvSchema("T")); err != nil {
		t.Fatal(err)
	}
	seed := db.Begin()
	if err := seed.Insert("T", kv(1, 100)); err != nil {
		t.Fatal(err)
	}
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}
	before := db.WAL().Stats().Records

	ro := db.Begin()
	_ = mustGetV(t, ro, 1)
	if !ro.ReadOnly() {
		t.Fatal("reader must be read-only")
	}
	if err := ro.Commit(); err != nil {
		t.Fatal(err)
	}
	if after := db.WAL().Stats().Records; after != before {
		t.Fatalf("read-only commit wrote %d WAL records", after-before)
	}
}

func TestScanLatest(t *testing.T) {
	db := openKV(t, core.SnapshotFUW, core.PlatformPostgres)
	var keys []int64
	var sum int64
	err := db.ScanLatest("T", func(k core.Value, rec core.Record) bool {
		keys = append(keys, k.Int64())
		sum += rec[1].Int64()
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] != 1 || keys[1] != 2 || sum != 300 {
		t.Fatalf("scan = keys %v sum %d", keys, sum)
	}
	if err := db.ScanLatest("Missing", func(core.Value, core.Record) bool { return true }); err == nil {
		t.Fatal("scan of missing table accepted")
	}
}

func TestObserverReceivesCommitInfo(t *testing.T) {
	db := openKV(t, core.SnapshotFUW, core.PlatformPostgres)
	var infos []TxInfo
	db.SetObserver(observerFunc(func(info TxInfo) { infos = append(infos, info) }))

	tx := db.Begin()
	tx.SetTag("demo")
	_ = mustGetV(t, tx, 1)
	mustSetV(t, tx, 2, 222)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	if len(infos) != 1 {
		t.Fatalf("observer calls = %d", len(infos))
	}
	info := infos[0]
	if info.Tag != "demo" || info.ReadOnly {
		t.Fatalf("info = %+v", info)
	}
	if len(info.Reads) != 1 || info.Reads[0].Key != core.Int(1) {
		t.Fatalf("reads = %+v", info.Reads)
	}
	if len(info.Writes) != 1 || info.Writes[0].Key != core.Int(2) || info.Writes[0].CSN != info.CommitCSN {
		t.Fatalf("writes = %+v", info.Writes)
	}
	if info.CommitCSN <= info.StartCSN {
		t.Fatalf("CSNs: start %d commit %d", info.StartCSN, info.CommitCSN)
	}
}

// observerFunc adapts a function to the Observer interface.
type observerFunc func(TxInfo)

func (f observerFunc) OnCommit(info TxInfo) { f(info) }
